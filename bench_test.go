// Package repro's root benchmarks regenerate every table and figure of
// the paper (see the per-experiment index in DESIGN.md). Each benchmark
// drives the same code path as the cmd/yybench and cmd/yyviz tools and
// reports the headline quantity of its experiment as a custom metric, so
// `go test -bench=. -benchmem` prints the reproduced numbers next to the
// Go-level costs.
package repro

import (
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/decomp"
	"repro/internal/es"
	"repro/internal/grid"
	"repro/internal/latlon"
	"repro/internal/mhd"
	"repro/internal/mpi"
	"repro/internal/overset"
	"repro/internal/viz"
)

// BenchmarkTable1Specs — experiment T1: Earth Simulator specification.
func BenchmarkTable1Specs(b *testing.B) {
	m := es.EarthSimulator()
	for i := 0; i < b.N; i++ {
		_ = m.TableI()
	}
	b.ReportMetric(m.TotalPeakFlops()/1e12, "peak-Tflops")
}

// BenchmarkTable2Scaling — experiment T2: the six scaling rows of Table
// II through the calibrated machine model. The headline metric is the
// modelled flagship throughput (paper: 15.2 TFlops).
func BenchmarkTable2Scaling(b *testing.B) {
	m := es.EarthSimulator()
	mp := es.DefaultModelParams()
	prof := es.ReferenceProfile()
	var flagship float64
	for i := 0; i < b.N; i++ {
		rows, err := es.TableII(m, mp, prof)
		if err != nil {
			b.Fatal(err)
		}
		flagship = rows[0].ModelTFlops
	}
	b.ReportMetric(flagship, "model-Tflops-4096")
	b.ReportMetric(15.2, "paper-Tflops-4096")
}

// BenchmarkTable3Comparison — experiment T3: the cross-SC-paper
// comparison; metric is yycore's sustained flops per grid point
// (paper: 19K).
func BenchmarkTable3Comparison(b *testing.B) {
	m := es.EarthSimulator()
	mp := es.DefaultModelParams()
	prof := es.ReferenceProfile()
	var fpg float64
	for i := 0; i < b.N; i++ {
		rows, err := es.TableIII(m, mp, prof)
		if err != nil {
			b.Fatal(err)
		}
		fpg = rows[len(rows)-1].FlopsPerGP
	}
	b.ReportMetric(fpg/1e3, "Kflops-per-gridpoint")
}

// BenchmarkList1Proginf — experiment L1: the MPIPROGINF report; metric
// is the Overall GFLOPS figure (paper: 15181.807).
func BenchmarkList1Proginf(b *testing.B) {
	m := es.EarthSimulator()
	mp := es.DefaultModelParams()
	prof := es.ReferenceProfile()
	p, err := es.Predict(m, mp, prof, es.RunConfig{Spec: es.PaperSpec(511), Procs: 4096})
	if err != nil {
		b.Fatal(err)
	}
	steps := int(453.0 / p.StepTime)
	var g float64
	for i := 0; i < b.N; i++ {
		rep := es.BuildProginf(m, mp, prof, p, steps)
		_ = rep.Format()
		g = rep.OverallGFLOPS
	}
	b.ReportMetric(g, "overall-GFLOPS")
}

// BenchmarkFig1Coverage — experiment F1: the Yin-Yang coverage map;
// metric is the overlap fraction (paper: about 6%).
func BenchmarkFig1Coverage(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		im := viz.CoverageMap(180, 360)
		frac = viz.OverlapPixelFraction(im)
	}
	b.ReportMetric(frac*100, "overlap-pct")
}

// BenchmarkFig2ConvectionStep — experiment F2: the cost of one full RK4
// step of the rotating-convection workload behind Fig. 2, on the real
// serial two-panel solver.
func BenchmarkFig2ConvectionStep(b *testing.B) {
	sv, err := mhd.NewSolver(grid.NewSpec(17, 17), mhd.Default(), mhd.DefaultIC())
	if err != nil {
		b.Fatal(err)
	}
	dt := sv.EstimateDT(0.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sv.Advance(dt)
	}
	pts := float64(sv.Spec.TotalPoints())
	b.ReportMetric(float64(b.N)*pts/b.Elapsed().Seconds()/1e6, "Mpoints/s")
}

// BenchmarkDynamoStep — experiment S1: a stepping benchmark with the
// magnetic field active (induction + Lorentz paths hot).
func BenchmarkDynamoStep(b *testing.B) {
	ic := mhd.DefaultIC()
	ic.SeedBAmp = 0.05
	sv, err := mhd.NewSolver(grid.NewSpec(17, 17), mhd.Default(), ic)
	if err != nil {
		b.Fatal(err)
	}
	dt := sv.EstimateDT(0.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sv.Advance(dt)
	}
}

// BenchmarkSectionVDataVolume — experiment S2: the I/O bookkeeping;
// metric is the subsampled snapshot volume (paper: about 500 GB).
func BenchmarkSectionVDataVolume(b *testing.B) {
	var v bench.IOVolume
	for i := 0; i < b.N; i++ {
		v = bench.ComputeIOVolume()
	}
	b.ReportMetric(float64(v.SubsampledBytes)/1e9, "GB")
}

// BenchmarkYinYangVsLatLon — ablation A1: per-step cost of the same
// surface problem on the two grids at matched resolution; sub-benchmarks
// report each grid separately.
func BenchmarkYinYangVsLatLon(b *testing.B) {
	const kappa = 0.01
	b.Run("latlon", func(b *testing.B) {
		g, err := latlon.NewSurfaceGrid(64, 128)
		if err != nil {
			b.Fatal(err)
		}
		s := latlon.NewHeatSolver(g, kappa, 1)
		s.SetFromFunc(func(th, ph float64) float64 { return math.Sin(th) * math.Cos(ph) })
		dt := g.MaxStableDt(kappa, 1) * 0.5
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Step(dt)
		}
		b.ReportMetric(dt, "stable-dt")
	})
	b.Run("yinyang", func(b *testing.B) {
		s, err := latlon.NewYYSurface(33, kappa, 1)
		if err != nil {
			b.Fatal(err)
		}
		dt := s.MaxStableDt(kappa, 1) * 0.5
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Step(dt)
		}
		b.ReportMetric(dt, "stable-dt")
	})
}

// BenchmarkBankConflict — ablation A2: modelled throughput with the
// radial extent at vs just below the vector register length.
func BenchmarkBankConflict(b *testing.B) {
	m := es.EarthSimulator()
	mp := es.DefaultModelParams()
	prof := es.ReferenceProfile()
	for _, nr := range []int{255, 256, 511, 512} {
		nr := nr
		b.Run(sizeName(nr), func(b *testing.B) {
			var p es.Prediction
			for i := 0; i < b.N; i++ {
				var err error
				p, err = es.Predict(m, mp, prof, es.RunConfig{Spec: es.PaperSpec(nr), Procs: 2560})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(p.TFlops, "model-Tflops")
		})
	}
}

func sizeName(nr int) string {
	return "Nr" + string(rune('0'+nr/100)) + string(rune('0'+nr/10%10)) + string(rune('0'+nr%10))
}

// BenchmarkPoleCFL — ablation A3: wall-clock cost of integrating the
// surface problem to a fixed physical time on each grid: the pole-bound
// time step forces the lat-lon grid to take far more steps.
func BenchmarkPoleCFL(b *testing.B) {
	const kappa, tEnd = 0.01, 0.02
	b.Run("latlon", func(b *testing.B) {
		g, err := latlon.NewSurfaceGrid(48, 96)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			s := latlon.NewHeatSolver(g, kappa, 1)
			s.SetFromFunc(func(th, ph float64) float64 { return math.Cos(th) })
			dt := g.MaxStableDt(kappa, 1) * 0.5
			steps := int(math.Ceil(tEnd / dt))
			for n := 0; n < steps; n++ {
				s.Step(tEnd / float64(steps))
			}
			b.ReportMetric(float64(steps), "steps")
		}
	})
	b.Run("yinyang", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := latlon.NewYYSurface(25, kappa, 1)
			if err != nil {
				b.Fatal(err)
			}
			dt := s.MaxStableDt(kappa, 1) * 0.5
			steps := int(math.Ceil(tEnd / dt))
			for n := 0; n < steps; n++ {
				s.Step(tEnd / float64(steps))
			}
			b.ReportMetric(float64(steps), "steps")
		}
	})
}

// BenchmarkDecompositionShape — ablation A4: modelled efficiency of the
// auto-chosen 2-D process grid versus a 1-D slab decomposition.
func BenchmarkDecompositionShape(b *testing.B) {
	m := es.EarthSimulator()
	mp := es.DefaultModelParams()
	prof := es.ReferenceProfile()
	for _, cse := range []struct {
		name string
		dims [2]int
	}{
		{"auto", [2]int{0, 0}},
		{"slab1x256", [2]int{1, 256}},
		{"slab256x1", [2]int{256, 1}},
	} {
		cse := cse
		b.Run(cse.name, func(b *testing.B) {
			var p es.Prediction
			for i := 0; i < b.N; i++ {
				var err error
				p, err = es.Predict(m, mp, prof,
					es.RunConfig{Spec: es.PaperSpec(511), Procs: 512, ForceDims: cse.dims})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(p.Efficiency*100, "model-eff-pct")
		})
	}
}

// BenchmarkOversetExchange: the Yin<->Yang rim interpolation cost per
// application, serial two-panel path.
func BenchmarkOversetExchange(b *testing.B) {
	s := grid.NewSpec(33, 33)
	plan, err := overset.NewPlan(s)
	if err != nil {
		b.Fatal(err)
	}
	ex := overset.NewExchanger(plan, 1)
	yin := grid.NewPatch(s, grid.Yin, 1).NewScalar()
	yang := grid.NewPatch(s, grid.Yang, 1).NewScalar()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.ExchangeScalar(yin, yang)
	}
}

// BenchmarkParallelStep: one RK4 step on 8 goroutine ranks including all
// halo and overset communication, amortized over a short run.
func BenchmarkParallelStep(b *testing.B) {
	spec := grid.NewSpec(17, 17)
	layout, err := decomp.NewLayout(spec, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	err = mpi.Run(8, func(w *mpi.Comm) {
		r, err := decomp.NewRank(w, layout, mhd.Default(), mhd.DefaultIC())
		if err != nil {
			b.Fatal(err)
		}
		dt := r.EstimateDT(0.3)
		for i := 0; i < b.N; i++ {
			r.Advance(dt)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkStepOverlap: one RK4 step on 4 goroutine ranks with the
// interior/rim overlapped halo schedule on and off. On a 1-CPU host the
// goroutine transport completes instantly, so the pair mostly bounds the
// scheduling overhead of the split; the latency-hiding win needs real
// wire time (see DESIGN.md).
func BenchmarkStepOverlap(b *testing.B) {
	spec := grid.NewSpec(17, 17)
	layout, err := decomp.NewLayout(spec, 4)
	if err != nil {
		b.Fatal(err)
	}
	for _, cse := range []struct {
		name    string
		overlap bool
	}{
		{"overlap", true},
		{"sequential", false},
	} {
		cse := cse
		b.Run(cse.name, func(b *testing.B) {
			err := mpi.Run(4, func(w *mpi.Comm) {
				r, err := decomp.NewRank(w, layout, mhd.Default(), mhd.DefaultIC())
				if err != nil {
					b.Fatal(err)
				}
				r.SetOverlap(cse.overlap)
				dt := r.EstimateDT(0.3)
				for i := 0; i < b.N; i++ {
					r.Advance(dt)
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkRHS: one full right-hand-side evaluation (the solver's hot
// loop) on a single panel.
func BenchmarkRHS(b *testing.B) {
	sv, err := mhd.NewSolver(grid.NewSpec(33, 33), mhd.Default(), mhd.DefaultIC())
	if err != nil {
		b.Fatal(err)
	}
	pl := sv.Panels[0]
	out := mhd.NewState(pl.Patch.Shape)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mhd.ComputeVTB(pl, &pl.U)
		mhd.FinishRHS(pl, sv.Prm, &pl.U, &out, nil)
	}
	pts := float64(pl.Patch.Nr) * float64(pl.Patch.Nt) * float64(pl.Patch.Np)
	b.ReportMetric(float64(b.N)*pts/b.Elapsed().Seconds()/1e6, "Mpoints/s")
}
