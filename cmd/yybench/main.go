// Command yybench regenerates the paper's performance evaluation: the
// Earth Simulator specification (Table I), the yycore scaling results
// (Table II), the cross-paper comparison (Table III), the MPIPROGINF
// report (List 1), the section-V I/O bookkeeping, and the design-choice
// ablations of DESIGN.md.
//
// Examples:
//
//	yybench -table 2            # paper-vs-model scaling table
//	yybench -list1              # MPIPROGINF, List 1 layout
//	yybench -all -measure       # everything, with a live profile
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/grid"
)

func main() {
	var (
		table     = flag.Int("table", 0, "print table 1, 2 or 3")
		list1     = flag.Bool("list1", false, "print the MPIPROGINF report (List 1)")
		io        = flag.Bool("io", false, "print the section-V data volume bookkeeping")
		ablations = flag.Bool("ablations", false, "print the design-choice ablations A1-A8")
		scaling   = flag.Bool("scaling", false, "print the model strong-scaling sweep")
		all       = flag.Bool("all", false, "print everything")
		measure   = flag.Bool("measure", false, "re-measure the step profile from the live solver instead of the baked reference")
		jsonDir   = flag.String("json", "", "run the kernel, halo and observability benchmarks and write BENCH_kernels.json/BENCH_halo.json/BENCH_obs.json into this directory")
		gate      = flag.String("gate", "", "re-run the halo benchmarks and fail if allocs/op regresses above this baseline BENCH_halo.json")
		gateObs   = flag.String("gate-obs", "", "re-run the observability benchmarks and fail if allocs/op (strict) or ns/op (10x slack) regresses above this baseline BENCH_obs.json")
		gateStep  = flag.String("gate-step", "", "check the committed fused-RHS speedup in this baseline BENCH_kernels.json and re-measure fused vs reference as a live tripwire")
		gateStore = flag.String("gate-store", "", "re-run the run-ledger store benchmarks and fail if the dedup blob-write path allocates or regresses above this baseline BENCH_store.json")
	)
	flag.Parse()

	w := os.Stdout
	ran := false
	sep := func() { fmt.Fprintln(w) }
	check := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "yybench:", err)
			os.Exit(1)
		}
	}
	if *jsonDir != "" {
		s := grid.NewSpec(17, 17)
		check(bench.WriteBenchJSON(*jsonDir, s, []int{1, 2, 4}))
		check(bench.WriteStoreBenchJSON(*jsonDir))
		fmt.Fprintf(w, "wrote %s/BENCH_kernels.json, %s/BENCH_halo.json, %s/BENCH_obs.json and %s/BENCH_store.json\n", *jsonDir, *jsonDir, *jsonDir, *jsonDir)
		ran = true
	}
	if *gate != "" {
		check(bench.GateHaloAllocs(*gate, grid.NewSpec(17, 17)))
		fmt.Fprintf(w, "halo alloc gate passed against %s\n", *gate)
		ran = true
	}
	if *gateObs != "" {
		check(bench.GateObsOverhead(*gateObs))
		fmt.Fprintf(w, "observability overhead gate passed against %s\n", *gateObs)
		ran = true
	}
	if *gateStep != "" {
		check(bench.GateStep(*gateStep, grid.NewSpec(17, 17)))
		fmt.Fprintf(w, "fused-RHS step gate passed against %s\n", *gateStep)
		ran = true
	}
	if *gateStore != "" {
		check(bench.GateStoreAllocs(*gateStore))
		fmt.Fprintf(w, "run-ledger store gate passed against %s\n", *gateStore)
		ran = true
	}
	if *all || *table == 1 {
		bench.RunTable1(w)
		sep()
		ran = true
	}
	if *all || *table == 2 {
		check(bench.RunTable2(w, *measure))
		sep()
		ran = true
	}
	if *all || *table == 3 {
		check(bench.RunTable3(w, *measure))
		sep()
		ran = true
	}
	if *all || *list1 {
		check(bench.RunList1(w, *measure))
		sep()
		ran = true
	}
	if *all || *io {
		bench.RunIOVolume(w)
		sep()
		ran = true
	}
	if *all || *ablations {
		bench.AblationA1(w)
		sep()
		check(bench.AblationA2(w, *measure))
		sep()
		check(bench.AblationA3(w))
		sep()
		check(bench.AblationA4(w, *measure))
		sep()
		check(bench.AblationA5(w, *measure))
		sep()
		bench.AblationA6(w)
		sep()
		check(bench.AblationA7(w, *measure))
		sep()
		check(bench.AblationA8(w))
		sep()
		check(bench.RunWallClock(w, *measure))
		ran = true
	}
	if *all || *scaling {
		check(bench.RunScalingCurve(w, *measure))
		sep()
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
