// Command yychaos drives the seeded chaos fuzzer over full decomposed
// solver runs: randomized drop/delay/duplicate/kill schedules, with
// liveness, safety (golden-checkpoint byte-identity) and recoverability
// checked per scenario. Exit status 0 means every scenario passed
// (success or clean abort), 1 means at least one property violation,
// 2 means the harness itself failed.
//
// Usage:
//
//	yychaos [-seeds 25] [-seed0 0] [-steps 5] [-nprocs 2] [-nr 9] [-nt 13] [-artifacts dir] [-v]
//	yychaos -corpus internal/chaos/testdata/corpus.json
//	yychaos -corpus internal/chaos/testdata/corpus_replace.json
//	yychaos -store-seeds 10
//	yychaos -store-corpus internal/chaos/testdata/corpus_store.json
//
// The second corpus replays the rank-replacement regression scenarios
// (kill → heartbeat confirm → surgical respawn). The -store-seeds and
// -store-corpus modes drive the storage arm instead: seeded filesystem
// faults (torn writes, bit rot, ENOSPC, crash points) against the
// durable run ledger, with the detect → scrub → re-derive pipeline
// checked per scenario. With -artifacts set, any violating campaign
// leaves its postmortem.txt and event timeline — or, for the store
// arm, its verify and scrub reports — in that directory for CI to
// upload.
//
// A violating seed is minimized to a locally minimal reproducer and
// printed as a ready-to-commit corpus entry.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/chaos"
)

func main() {
	var (
		seeds       = flag.Int("seeds", 25, "number of seeded scenarios to run")
		seed0       = flag.Uint64("seed0", 0, "first seed")
		steps       = flag.Int("steps", 5, "solver steps per scenario")
		nprocs      = flag.Int("nprocs", 2, "world size")
		nr          = flag.Int("nr", 9, "radial grid size")
		nt          = flag.Int("nt", 13, "latitudinal grid size")
		corpus      = flag.String("corpus", "", "replay a committed corpus file instead of fuzzing seeds")
		storeSeeds  = flag.Int("store-seeds", 0, "fuzz this many seeded store-fault scenarios instead of message faults")
		storeCorpus = flag.String("store-corpus", "", "replay a committed store-fault corpus file")
		artifacts   = flag.String("artifacts", "", "directory collecting postmortem + event-timeline artifacts of violating scenarios")
		verbose     = flag.Bool("v", false, "print one line per scenario")
	)
	flag.Parse()

	r := chaos.NewRunner(chaos.Config{NProcs: *nprocs, Steps: *steps, Nr: *nr, Nt: *nt, ArtifactDir: *artifacts})
	switch {
	case *storeCorpus != "":
		os.Exit(replayStore(r, *storeCorpus, *verbose))
	case *storeSeeds > 0:
		os.Exit(fuzzStore(r, *seed0, *storeSeeds, *verbose))
	case *corpus != "":
		os.Exit(replay(r, *corpus, *verbose))
	}
	os.Exit(fuzz(r, *seed0, *seeds, *verbose))
}

// fuzz runs the seed range and reports the first violation, minimized.
func fuzz(r *chaos.Runner, seed0 uint64, seeds int, verbose bool) int {
	start := time.Now()
	counts := map[chaos.Verdict]int{}
	for i := 0; i < seeds; i++ {
		seed := seed0 + uint64(i)
		o := r.RunSeed(seed)
		counts[o.Verdict]++
		if verbose {
			fmt.Printf("seed %-6d %-15s %8s  %s\n", seed, o.Verdict, o.Elapsed.Round(time.Millisecond), o.Scenario)
		}
		if o.Verdict.Violation() {
			fmt.Printf("yychaos: VIOLATION at seed %d: %s\nscenario: %s\n%s\n", seed, o.Verdict, o.Scenario, o.Detail)
			minimize(r, o)
			return 1
		}
	}
	fmt.Printf("yychaos: %d scenarios, %d ok, %d clean-abort, 0 violations (%s)\n",
		seeds, counts[chaos.OK], counts[chaos.CleanAbort], time.Since(start).Round(time.Millisecond))
	return 0
}

// replay re-executes a committed corpus and demands recorded verdicts.
func replay(r *chaos.Runner, path string, verbose bool) int {
	entries, err := chaos.LoadCorpus(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "yychaos: %v\n", err)
		return 2
	}
	bad := 0
	for _, e := range entries {
		o := r.Run(e.Scenario)
		if verbose || o.Verdict != e.Want {
			fmt.Printf("%-32s %-15s want %s\n", e.Scenario.Name, o.Verdict, e.Want)
		}
		if o.Verdict != e.Want {
			fmt.Printf("yychaos: corpus entry %q: verdict %s, want %s\n%s\n", e.Scenario.Name, o.Verdict, e.Want, o.Detail)
			bad++
		}
	}
	if bad > 0 {
		fmt.Printf("yychaos: %d/%d corpus entries failed\n", bad, len(entries))
		return 1
	}
	fmt.Printf("yychaos: corpus ok (%d entries)\n", len(entries))
	return 0
}

// fuzzStore runs the storage arm over a seed range: filesystem faults
// against the durable run ledger, durability checked per scenario.
// Store scenarios are at most two faults, so violations are committed
// as-is rather than minimized.
func fuzzStore(r *chaos.Runner, seed0 uint64, seeds int, verbose bool) int {
	start := time.Now()
	counts := map[chaos.Verdict]int{}
	for i := 0; i < seeds; i++ {
		seed := seed0 + uint64(i)
		o := r.RunStoreSeed(seed)
		counts[o.Verdict]++
		if verbose {
			fmt.Printf("seed %-6d %-15s %8s  %s\n", seed, o.Verdict, o.Elapsed.Round(time.Millisecond), o.Scenario)
		}
		if o.Verdict.Violation() {
			fmt.Printf("yychaos: STORE VIOLATION at seed %d: %s\nscenario: %s\n%s\n", seed, o.Verdict, o.Scenario, o.Detail)
			entry := chaos.StoreCorpusEntry{Scenario: o.Scenario, Want: chaos.OK,
				Note: fmt.Sprintf("seed %d (%s)", o.Scenario.Seed, o.Verdict)}
			if data, err := json.MarshalIndent([]chaos.StoreCorpusEntry{entry}, "", "  "); err == nil {
				fmt.Printf("reproducer (commit to internal/chaos/testdata/corpus_store.json once fixed):\n%s\n", data)
			}
			return 1
		}
	}
	fmt.Printf("yychaos: %d store scenarios, %d ok, %d clean-abort, 0 violations (%s)\n",
		seeds, counts[chaos.OK], counts[chaos.CleanAbort], time.Since(start).Round(time.Millisecond))
	return 0
}

// replayStore re-executes a committed store corpus and demands
// recorded verdicts.
func replayStore(r *chaos.Runner, path string, verbose bool) int {
	entries, err := chaos.LoadStoreCorpus(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "yychaos: %v\n", err)
		return 2
	}
	bad := 0
	for _, e := range entries {
		o := r.RunStore(e.Scenario)
		if verbose || o.Verdict != e.Want {
			fmt.Printf("%-32s %-15s want %s\n", e.Scenario.Name, o.Verdict, e.Want)
		}
		if o.Verdict != e.Want {
			fmt.Printf("yychaos: store corpus entry %q: verdict %s, want %s\n%s\n", e.Scenario.Name, o.Verdict, e.Want, o.Detail)
			bad++
		}
	}
	if bad > 0 {
		fmt.Printf("yychaos: %d/%d store corpus entries failed\n", bad, len(entries))
		return 1
	}
	fmt.Printf("yychaos: store corpus ok (%d entries)\n", len(entries))
	return 0
}

// minimize shrinks a violating scenario and prints it as a corpus
// entry (want set to the verdict a fixed transport should produce).
func minimize(r *chaos.Runner, o chaos.Outcome) {
	fmt.Println("yychaos: minimizing...")
	min := chaos.Minimize(o.Scenario, func(s chaos.Scenario) bool {
		return r.Run(s).Verdict == o.Verdict
	})
	min.Name = fmt.Sprintf("seed-%d-minimized", o.Scenario.Seed)
	entry := chaos.CorpusEntry{Scenario: min, Want: chaos.OK, Note: fmt.Sprintf("minimized from seed %d (%s)", o.Scenario.Seed, o.Verdict)}
	data, err := json.MarshalIndent([]chaos.CorpusEntry{entry}, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "yychaos: marshaling minimized scenario: %v\n", err)
		return
	}
	fmt.Printf("minimal reproducer (commit to internal/chaos/testdata/corpus.json once fixed):\n%s\n", data)
}
