// Command yycore runs the Yin-Yang geodynamo simulation: thermal
// convection of a rotating, electrically conducting compressible fluid in
// a spherical shell, with a seed magnetic field amplified by dynamo
// action (the paper's simulation, scaled to the local machine).
//
// Examples:
//
//	yycore -nr 25 -nt 25 -steps 200 -every 20
//	yycore -nr 17 -nt 17 -steps 100 -procs 8       # goroutine-parallel
//	yycore -nr 25 -nt 25 -steps 300 -slice out.ppm # equatorial T slice
//	yycore -nr 9 -nt 13 -steps 10 -store run.store # campaign on the durable run ledger
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/mhd"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/perfcount"
	"repro/internal/resilience"
	"repro/internal/sph"
	"repro/internal/store"
	"repro/internal/viz"
)

func main() {
	var (
		nr      = flag.Int("nr", 17, "radial nodes per panel")
		nt      = flag.Int("nt", 17, "latitudinal nodes per panel (longitudinal = 3(nt-1)+1)")
		steps   = flag.Int("steps", 100, "time steps to run")
		every   = flag.Int("every", 10, "diagnostics interval in steps")
		procs   = flag.Int("procs", 0, "run decomposed over this many goroutine ranks (0 = serial)")
		slice   = flag.String("slice", "", "write an equatorial temperature slice PPM at the end")
		ckptOut = flag.String("checkpoint", "", "write a restart checkpoint at the end")
		restore = flag.String("restore", "", "restore from a checkpoint instead of initializing")
		export  = flag.String("export", "", "write a section-V visualization export at the end")
		sliceQ  = flag.String("quantity", "T", "slice quantity: T, rho, p, vr, vphi, vortz, br")
		omega   = flag.Float64("omega", mhd.Default().Omega, "rotation rate")
		tin     = flag.Float64("tin", mhd.Default().TIn, "inner-wall temperature (outer = 1)")
		mu      = flag.Float64("mu", mhd.Default().Mu, "viscosity")
		kappa   = flag.Float64("kappa", mhd.Default().Kappa, "thermal conductivity")
		eta     = flag.Float64("eta", mhd.Default().Eta, "resistivity")
		seedB   = flag.Float64("seedb", mhd.DefaultIC().SeedBAmp, "magnetic seed amplitude")
		perturb = flag.Float64("perturb", mhd.DefaultIC().PerturbAmp, "temperature perturbation amplitude")

		campaign  = flag.String("campaign", "", "run a fault-tolerant checkpointed campaign in this directory (resumes if checkpoints exist)")
		storeDir  = flag.String("store", "", "campaign: commit checkpoints to the content-addressed run-ledger store at this directory instead of loose files (audit with yystore)")
		runID     = flag.String("runid", "", "campaign: run name inside the store's ref namespace (default campaign)")
		ckptEvery = flag.Int("ckpt-every", 50, "campaign: steps between checkpoints")
		retries   = flag.Int("retries", 3, "campaign: retry budget per segment")
		backoff   = flag.Float64("backoff", 0.5, "campaign: dt multiplier per blow-up retry")
		deadline  = flag.Duration("deadline", 0, "campaign: per-call communication deadline (0 = none)")
		replace   = flag.Bool("replace", false, "campaign: respawn a confirmed-dead rank from the segment checkpoint instead of rolling the whole segment back")
		hbEvery   = flag.Duration("hb", 0, "campaign: heartbeat interval for silent-death detection (0 = off)")

		trace     = flag.String("trace", "", "record per-rank phase spans and write a Chrome trace_event JSON here (view in ui.perfetto.dev)")
		runreport = flag.String("runreport", "", "write a PROGINF-style run report here at the end (\"-\" = stdout)")
	)
	flag.Parse()

	prm := mhd.Default()
	prm.Omega = *omega
	prm.TIn = *tin
	prm.Mu = *mu
	prm.Kappa = *kappa
	prm.Eta = *eta
	ic := mhd.DefaultIC()
	ic.SeedBAmp = *seedB
	ic.PerturbAmp = *perturb
	cfg := core.Config{Nr: *nr, Nt: *nt, Params: &prm, IC: &ic}

	// Observability: one recorder and one event log for whichever run
	// mode executes below; exported at the end by writeObs.
	var rec *obs.Recorder
	var events *mpi.EventLog
	perf0 := perfcount.Read()
	if *trace != "" || *runreport != "" {
		rec = obs.New(obs.Config{})
		events = mpi.NewEventLog()
		cfg.Obs = rec
	}

	if *campaign != "" || *storeDir != "" {
		np := *procs
		if np == 0 {
			np = 2
		}
		where := *campaign
		if where == "" {
			where = "store " + *storeDir
		}
		fmt.Printf("campaign: %d steps on %d ranks, checkpoint every %d steps in %s\n",
			*steps, np, *ckptEvery, where)
		rcfg := resilience.Config{
			Core:            cfg,
			NProcs:          np,
			Steps:           *steps,
			CheckpointEvery: *ckptEvery,
			Dir:             *campaign,
			MaxRetries:      *retries,
			Backoff:         *backoff,
			Deadline:        *deadline,
			Obs:             rec,
			Events:          events,
		}
		if *storeDir != "" {
			backend, err := store.NewDirBackend(*storeDir)
			if err != nil {
				fail(err)
			}
			st, err := store.Open(backend)
			if err != nil {
				fail(err)
			}
			rcfg.Store = st
			rcfg.RunID = *runID
		}
		if *hbEvery > 0 {
			rcfg.Heartbeat = &mpi.Heartbeat{Interval: *hbEvery}
		}
		if *replace {
			rcfg.Replace = &mpi.Elastic{}
		}
		res, err := resilience.RunCampaign(rcfg)
		if res != nil {
			if res.Resumed {
				fmt.Printf("resumed from checkpoint at step %d\n", res.StartStep)
			}
			for i, d := range res.Diags {
				fmt.Printf("%s dt=%.4g\n", d, res.DTs[i])
			}
			if res.Retries > 0 {
				fmt.Printf("recovered from %d failed segment attempt(s)\n", res.Retries)
			}
			for _, rd := range res.Recoveries {
				fmt.Printf("recovery: %s\n", rd)
			}
		}
		if err != nil {
			fail(err)
		}
		fmt.Printf("campaign complete at step %d\n", res.FinalStep)
		writeObs(*trace, *runreport, rec, events, perf0)
		return
	}

	if *procs > 0 {
		fmt.Printf("running %d steps on %d goroutine ranks (2 panels x 2-D grid)\n", *steps, *procs)
		hist, err := core.RunParallel(cfg, *procs, *steps, *every, 0)
		if err != nil {
			fail(err)
		}
		for _, d := range hist {
			fmt.Println(d)
		}
		writeObs(*trace, *runreport, rec, events, perf0)
		return
	}

	var sim *core.Simulation
	var err error
	if *restore != "" {
		f, ferr := os.Open(*restore)
		if ferr != nil {
			fail(ferr)
		}
		sim, err = core.Restore(f)
		f.Close()
		if err == nil {
			fmt.Printf("restored checkpoint at t=%.5f step=%d\n", sim.Time(), sim.Solver.Step)
		}
	} else {
		sim, err = core.New(cfg)
	}
	if err != nil {
		fail(err)
	}
	spec := sim.Solver.Spec
	runPrm := sim.Solver.Prm
	fmt.Printf("yycore: grid %d x %d x %d x 2 = %d points, Ra~%.3g, Ekman~%.3g\n",
		spec.Nr, spec.Nt, spec.Np, spec.TotalPoints(),
		runPrm.RayleighEstimate(spec.RO-spec.RI), runPrm.Ekman(spec.RO-spec.RI))
	fmt.Println(sim.Diagnostics())
	for done := 0; done < *steps; done += *every {
		n := *every
		if *steps-done < n {
			n = *steps - done
		}
		if err := sim.Step(n); err != nil {
			fail(err)
		}
		d := sim.Diagnostics()
		m := sph.MagneticMoment(sim.Solver)
		fmt.Printf("%s dipole=%.4g\n", d, sph.MomentMagnitude(m))
	}

	if *ckptOut != "" {
		f, err := os.Create(*ckptOut)
		if err != nil {
			fail(err)
		}
		if err := sim.WriteCheckpoint(f); err != nil {
			fail(err)
		}
		f.Close()
		fmt.Printf("wrote checkpoint %s\n", *ckptOut)
	}
	if *export != "" {
		f, err := os.Create(*export)
		if err != nil {
			fail(err)
		}
		if err := sim.ExportViz(f, 2); err != nil {
			fail(err)
		}
		f.Close()
		fmt.Printf("wrote viz export %s\n", *export)
	}
	if *slice != "" {
		q := map[string]viz.Quantity{
			"T": viz.Temperature, "rho": viz.Density, "p": viz.Pressure,
			"vr": viz.VRadial, "vphi": viz.VPhi, "vortz": viz.VortZ, "br": viz.BRadial,
		}[*sliceQ]
		f, err := os.Create(*slice)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := sim.WriteEquatorialPPM(f, q, 256); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *slice)
	}
	sim.Close()
	writeObs(*trace, *runreport, rec, events, perf0)
}

// writeObs exports the run's observability products: the Perfetto trace
// (with the event log merged as instants) and/or the PROGINF-style run
// report. A nil recorder means neither flag was set.
func writeObs(tracePath, reportPath string, rec *obs.Recorder, events *mpi.EventLog, perf0 perfcount.Snapshot) {
	if rec == nil {
		return
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			fail(err)
		}
		if err := core.WriteTrace(f, rec, events); err != nil {
			fail(err)
		}
		f.Close()
		fmt.Printf("wrote trace %s (open in https://ui.perfetto.dev)\n", tracePath)
	}
	if reportPath != "" {
		w := os.Stdout
		if reportPath != "-" {
			f, err := os.Create(reportPath)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			w = f
		}
		if err := core.WriteRunReport(w, rec, perfcount.Read().Sub(perf0)); err != nil {
			fail(err)
		}
		if reportPath != "-" {
			fmt.Printf("wrote run report %s\n", reportPath)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "yycore:", err)
	os.Exit(1)
}
