// Command yycore runs the Yin-Yang geodynamo simulation: thermal
// convection of a rotating, electrically conducting compressible fluid in
// a spherical shell, with a seed magnetic field amplified by dynamo
// action (the paper's simulation, scaled to the local machine).
//
// Examples:
//
//	yycore -nr 25 -nt 25 -steps 200 -every 20
//	yycore -nr 17 -nt 17 -steps 100 -procs 8       # goroutine-parallel
//	yycore -nr 25 -nt 25 -steps 300 -slice out.ppm # equatorial T slice
//	yycore -nr 9 -nt 13 -steps 10 -store run.store # campaign on the durable run ledger
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/mhd"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/perfcount"
	"repro/internal/resilience"
	"repro/internal/sph"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/viz"
)

func main() {
	var (
		nr      = flag.Int("nr", 17, "radial nodes per panel")
		nt      = flag.Int("nt", 17, "latitudinal nodes per panel (longitudinal = 3(nt-1)+1)")
		steps   = flag.Int("steps", 100, "time steps to run")
		every   = flag.Int("every", 10, "diagnostics interval in steps")
		procs   = flag.Int("procs", 0, "run decomposed over this many goroutine ranks (0 = serial)")
		slice   = flag.String("slice", "", "write an equatorial temperature slice PPM at the end")
		ckptOut = flag.String("checkpoint", "", "write a restart checkpoint at the end")
		restore = flag.String("restore", "", "restore from a checkpoint instead of initializing")
		export  = flag.String("export", "", "write a section-V visualization export at the end")
		sliceQ  = flag.String("quantity", "T", "slice quantity: T, rho, p, vr, vphi, vortz, br")
		omega   = flag.Float64("omega", mhd.Default().Omega, "rotation rate")
		tin     = flag.Float64("tin", mhd.Default().TIn, "inner-wall temperature (outer = 1)")
		mu      = flag.Float64("mu", mhd.Default().Mu, "viscosity")
		kappa   = flag.Float64("kappa", mhd.Default().Kappa, "thermal conductivity")
		eta     = flag.Float64("eta", mhd.Default().Eta, "resistivity")
		seedB   = flag.Float64("seedb", mhd.DefaultIC().SeedBAmp, "magnetic seed amplitude")
		perturb = flag.Float64("perturb", mhd.DefaultIC().PerturbAmp, "temperature perturbation amplitude")

		campaign  = flag.String("campaign", "", "run a fault-tolerant checkpointed campaign in this directory (resumes if checkpoints exist)")
		storeDir  = flag.String("store", "", "campaign: commit checkpoints to the content-addressed run-ledger store at this directory instead of loose files (audit with yystore)")
		runID     = flag.String("runid", "", "campaign: run name inside the store's ref namespace (default campaign)")
		ckptEvery = flag.Int("ckpt-every", 50, "campaign: steps between checkpoints")
		retries   = flag.Int("retries", 3, "campaign: retry budget per segment")
		backoff   = flag.Float64("backoff", 0.5, "campaign: dt multiplier per blow-up retry")
		deadline  = flag.Duration("deadline", 0, "campaign: per-call communication deadline (0 = none)")
		replace   = flag.Bool("replace", false, "campaign: respawn a confirmed-dead rank from the segment checkpoint instead of rolling the whole segment back")
		hbEvery   = flag.Duration("hb", 0, "campaign: heartbeat interval for silent-death detection (0 = off)")

		trace     = flag.String("trace", "", "record per-rank phase spans and write a Chrome trace_event JSON here (view in ui.perfetto.dev)")
		runreport = flag.String("runreport", "", "write a PROGINF-style run report here at the end (\"-\" = stdout)")

		teleAddr   = flag.String("telemetry", "", "serve live telemetry at this host:port (\":0\" picks a free port): /metrics, /progress, /events, /debug/pprof; watch with yywatch")
		teleFile   = flag.String("telemetry-addr-file", "", "write the bound telemetry address to this file (scripts scraping a :0 server)")
		linger     = flag.Duration("linger", 0, "keep the telemetry server up this long after the run finishes")
		killSilent = flag.String("inject-kill-silent", "", "campaign: script a silent rank death as rank@step (fault-injection testing; pair with -hb/-replace)")
	)
	flag.Parse()

	prm := mhd.Default()
	prm.Omega = *omega
	prm.TIn = *tin
	prm.Mu = *mu
	prm.Kappa = *kappa
	prm.Eta = *eta
	ic := mhd.DefaultIC()
	ic.SeedBAmp = *seedB
	ic.PerturbAmp = *perturb
	cfg := core.Config{Nr: *nr, Nt: *nt, Params: &prm, IC: &ic}

	// Observability: one recorder and one event log for whichever run
	// mode executes below; exported at the end by writeObs.
	var rec *obs.Recorder
	var events *mpi.EventLog
	perf0 := perfcount.Read()
	if *trace != "" || *runreport != "" || *teleAddr != "" {
		rec = obs.New(obs.Config{})
		events = mpi.NewEventLog()
		cfg.Obs = rec
	}

	// Live telemetry: serve the pull-based plane for the whole run. The
	// plane reads shared memory the ranks publish into lock-free slots;
	// scraping it never perturbs the physics.
	var plane *telemetry.Plane
	if *teleAddr != "" {
		plane = telemetry.New(telemetry.Config{})
		addr, err := plane.Serve(*teleAddr)
		if err != nil {
			fail(err)
		}
		fmt.Printf("telemetry: serving http://%s (metrics, progress, events, debug/pprof)\n", addr)
		if *teleFile != "" {
			if err := store.WriteFileAtomic(*teleFile, []byte(addr+"\n"), 0o644); err != nil {
				fail(err)
			}
		}
		cfg.Telemetry = plane
		defer func() {
			if *linger > 0 {
				fmt.Printf("telemetry: lingering %s for late scrapes\n", *linger)
				time.Sleep(*linger)
			}
			plane.Close()
		}()
	}

	if *campaign != "" || *storeDir != "" {
		np := *procs
		if np == 0 {
			np = 2
		}
		where := *campaign
		if where == "" {
			where = "store " + *storeDir
		}
		fmt.Printf("campaign: %d steps on %d ranks, checkpoint every %d steps in %s\n",
			*steps, np, *ckptEvery, where)
		rcfg := resilience.Config{
			Core:            cfg,
			NProcs:          np,
			Steps:           *steps,
			CheckpointEvery: *ckptEvery,
			Dir:             *campaign,
			MaxRetries:      *retries,
			Backoff:         *backoff,
			Deadline:        *deadline,
			Obs:             rec,
			Events:          events,
			Telemetry:       plane,
		}
		if *killSilent != "" {
			rank, step, err := parseRankStep(*killSilent)
			if err != nil {
				fail(err)
			}
			rcfg.Faults = mpi.NewFaultPlan().KillSilent(rank, step)
			fmt.Printf("fault injection: silent death of rank %d at step %d\n", rank, step)
		}
		if *storeDir != "" {
			backend, err := store.NewDirBackend(*storeDir)
			if err != nil {
				fail(err)
			}
			st, err := store.Open(backend)
			if err != nil {
				fail(err)
			}
			rcfg.Store = st
			rcfg.RunID = *runID
		}
		if *hbEvery > 0 {
			rcfg.Heartbeat = &mpi.Heartbeat{Interval: *hbEvery}
		}
		if *replace {
			rcfg.Replace = &mpi.Elastic{}
		}
		res, err := resilience.RunCampaign(rcfg)
		if res != nil {
			if res.Resumed {
				fmt.Printf("resumed from checkpoint at step %d\n", res.StartStep)
			}
			for i, d := range res.Diags {
				fmt.Printf("%s dt=%.4g\n", d, res.DTs[i])
			}
			if res.Retries > 0 {
				fmt.Printf("recovered from %d failed segment attempt(s)\n", res.Retries)
			}
			for _, rd := range res.Recoveries {
				fmt.Printf("recovery: %s\n", rd)
			}
		}
		if err != nil {
			fail(err)
		}
		fmt.Printf("campaign complete at step %d\n", res.FinalStep)
		writeObs(*trace, *runreport, rec, events, perf0, plane, rcfg.Store, rcfg.RunID, res.FinalStep)
		return
	}

	if *procs > 0 {
		fmt.Printf("running %d steps on %d goroutine ranks (2 panels x 2-D grid)\n", *steps, *procs)
		plane.Attach(telemetry.Campaign{Run: "yycore", TotalSteps: *steps, Events: events, Recorder: rec})
		hist, err := core.RunParallel(cfg, *procs, *steps, *every, 0)
		if err != nil {
			fail(err)
		}
		plane.Finish(*steps)
		for _, d := range hist {
			fmt.Println(d)
		}
		writeObs(*trace, *runreport, rec, events, perf0, plane, nil, "", *steps)
		return
	}

	var sim *core.Simulation
	var err error
	if *restore != "" {
		f, ferr := os.Open(*restore)
		if ferr != nil {
			fail(ferr)
		}
		sim, err = core.Restore(f)
		f.Close()
		if err == nil {
			fmt.Printf("restored checkpoint at t=%.5f step=%d\n", sim.Time(), sim.Solver.Step)
		}
	} else {
		sim, err = core.New(cfg)
	}
	if err != nil {
		fail(err)
	}
	spec := sim.Solver.Spec
	runPrm := sim.Solver.Prm
	fmt.Printf("yycore: grid %d x %d x %d x 2 = %d points, Ra~%.3g, Ekman~%.3g\n",
		spec.Nr, spec.Nt, spec.Np, spec.TotalPoints(),
		runPrm.RayleighEstimate(spec.RO-spec.RI), runPrm.Ekman(spec.RO-spec.RI))
	fmt.Println(sim.Diagnostics())
	plane.Attach(telemetry.Campaign{Run: "yycore", TotalSteps: *steps, Events: events, Recorder: rec})
	for done := 0; done < *steps; done += *every {
		n := *every
		if *steps-done < n {
			n = *steps - done
		}
		if err := sim.Step(n); err != nil {
			fail(err)
		}
		plane.Commit(done + n)
		d := sim.Diagnostics()
		m := sph.MagneticMoment(sim.Solver)
		fmt.Printf("%s dipole=%.4g\n", d, sph.MomentMagnitude(m))
	}
	plane.Finish(*steps)

	if *ckptOut != "" {
		f, err := os.Create(*ckptOut)
		if err != nil {
			fail(err)
		}
		if err := sim.WriteCheckpoint(f); err != nil {
			fail(err)
		}
		f.Close()
		fmt.Printf("wrote checkpoint %s\n", *ckptOut)
	}
	if *export != "" {
		f, err := os.Create(*export)
		if err != nil {
			fail(err)
		}
		if err := sim.ExportViz(f, 2); err != nil {
			fail(err)
		}
		f.Close()
		fmt.Printf("wrote viz export %s\n", *export)
	}
	if *slice != "" {
		q := map[string]viz.Quantity{
			"T": viz.Temperature, "rho": viz.Density, "p": viz.Pressure,
			"vr": viz.VRadial, "vphi": viz.VPhi, "vortz": viz.VortZ, "br": viz.BRadial,
		}[*sliceQ]
		f, err := os.Create(*slice)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := sim.WriteEquatorialPPM(f, q, 256); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *slice)
	}
	sim.Close()
	writeObs(*trace, *runreport, rec, events, perf0, plane, nil, "", *steps)
}

// parseRankStep parses a "rank@step" fault-injection site.
func parseRankStep(s string) (rank, step int, err error) {
	at := strings.IndexByte(s, '@')
	if at < 0 {
		return 0, 0, fmt.Errorf("yycore: fault site %q is not rank@step", s)
	}
	rank, err = strconv.Atoi(s[:at])
	if err == nil {
		step, err = strconv.Atoi(s[at+1:])
	}
	if err != nil || rank < 0 || step < 0 {
		return 0, 0, fmt.Errorf("yycore: fault site %q is not rank@step", s)
	}
	return rank, step, nil
}

// writeObs exports the run's observability products: the Perfetto trace
// (with the event log merged as instants) and/or the PROGINF-style run
// report (with the telemetry plane's latched alerts in its health
// header). A nil recorder means none of the obs flags were set. When
// the run committed to a store, the trace and report are additionally
// rendered (even without their file flags) and pinned into the run's
// ledger next to the checkpoints, so `yystore ls` shows them and gc
// protects them.
func writeObs(tracePath, reportPath string, rec *obs.Recorder, events *mpi.EventLog, perf0 perfcount.Snapshot, plane *telemetry.Plane, st *store.Store, runID string, step int) {
	if rec == nil {
		return
	}
	commit := st != nil
	var arts []resilience.Artifact
	if tracePath != "" || commit {
		var buf bytes.Buffer
		if err := core.WriteTrace(&buf, rec, events); err != nil {
			fail(err)
		}
		if tracePath != "" {
			if err := store.WriteFileAtomic(tracePath, buf.Bytes(), 0o644); err != nil {
				fail(err)
			}
			fmt.Printf("wrote trace %s (open in https://ui.perfetto.dev)\n", tracePath)
		}
		arts = append(arts, resilience.Artifact{Name: "trace.json", Role: "trace", Data: buf.Bytes()})
	}
	if reportPath != "" || commit {
		var buf bytes.Buffer
		if err := core.WriteRunReport(&buf, rec, perfcount.Read().Sub(perf0), events, plane.AlertStrings()); err != nil {
			fail(err)
		}
		switch reportPath {
		case "":
		case "-":
			io.Copy(os.Stdout, bytes.NewReader(buf.Bytes())) //nolint:errcheck
		default:
			if err := store.WriteFileAtomic(reportPath, buf.Bytes(), 0o644); err != nil {
				fail(err)
			}
			fmt.Printf("wrote run report %s\n", reportPath)
		}
		arts = append(arts, resilience.Artifact{Name: "report.txt", Role: "report", Data: buf.Bytes()})
	}
	if commit && len(arts) > 0 {
		if err := resilience.CommitArtifacts(st, runID, step, "run-artifacts", arts); err != nil {
			fmt.Fprintln(os.Stderr, "yycore: committing run artifacts:", err)
			return
		}
		fmt.Printf("committed %d run artifact(s) into the store ledger\n", len(arts))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "yycore:", err)
	os.Exit(1)
}
