// Command yyrepro runs the complete paper reproduction in one shot and
// writes a report directory: every table, the MPIPROGINF listing, the
// ablations, both figures as PPM images, and the physics experiment
// summaries. This is the "make everything" entry point of the
// repository.
//
//	yyrepro -out report/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bench"
	"repro/internal/grid"
	"repro/internal/viz"
)

func main() {
	var (
		out     = flag.String("out", "report", "output directory")
		measure = flag.Bool("measure", true, "measure the live step profile (slower, more faithful)")
		nr      = flag.Int("nr", 17, "physics-run radial nodes")
		nt      = flag.Int("nt", 17, "physics-run latitudinal nodes")
		steps   = flag.Int("steps", 120, "physics-run steps")
	)
	flag.Parse()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}

	// Performance section.
	withFile(*out, "table1.txt", func(f *os.File) error {
		bench.RunTable1(f)
		return nil
	})
	withFile(*out, "table2.txt", func(f *os.File) error {
		return bench.RunTable2(f, *measure)
	})
	withFile(*out, "table3.txt", func(f *os.File) error {
		return bench.RunTable3(f, *measure)
	})
	withFile(*out, "list1.txt", func(f *os.File) error {
		return bench.RunList1(f, *measure)
	})
	withFile(*out, "io_volume.txt", func(f *os.File) error {
		bench.RunIOVolume(f)
		return nil
	})
	withFile(*out, "scaling.txt", func(f *os.File) error {
		return bench.RunScalingCurve(f, *measure)
	})
	withFile(*out, "ablations.txt", func(f *os.File) error {
		bench.AblationA1(f)
		fmt.Fprintln(f)
		if err := bench.AblationA2(f, *measure); err != nil {
			return err
		}
		fmt.Fprintln(f)
		if err := bench.AblationA3(f); err != nil {
			return err
		}
		fmt.Fprintln(f)
		if err := bench.AblationA4(f, *measure); err != nil {
			return err
		}
		fmt.Fprintln(f)
		if err := bench.AblationA5(f, *measure); err != nil {
			return err
		}
		fmt.Fprintln(f)
		bench.AblationA6(f)
		fmt.Fprintln(f)
		if err := bench.AblationA7(f, *measure); err != nil {
			return err
		}
		fmt.Fprintln(f)
		if err := bench.AblationA8(f); err != nil {
			return err
		}
		fmt.Fprintln(f)
		return bench.RunWallClock(f, *measure)
	})

	// Figure 1.
	im := viz.CoverageMap(256, 512)
	withFile(*out, "fig1-coverage.ppm", func(f *os.File) error {
		return viz.WritePPM(f, im)
	})
	withFile(*out, "fig1-summary.txt", func(f *os.File) error {
		fmt.Fprintf(f, "Yin-Yang coverage: overlap %.4f of sphere (analytic %.4f; paper: about 6%%)\n",
			viz.OverlapPixelFraction(im), grid.OverlapFraction())
		return nil
	})

	// Figure 2 + section V physics.
	res, err := bench.RunFig2(*nr, *nt, *steps, 256)
	if err != nil {
		fail(err)
	}
	withFile(*out, "fig2-vortz.ppm", func(f *os.File) error {
		return viz.WritePPM(f, res.VortSlice)
	})
	withFile(*out, "fig2-temperature.ppm", func(f *os.File) error {
		return viz.WritePPM(f, res.TempSlice)
	})
	withFile(*out, "fig2-summary.txt", func(f *os.File) error {
		fmt.Fprintf(f, "steps=%d kineticE=%.4g columns: %d cyclonic, %d anti-cyclonic\n",
			res.Steps, res.KineticEnergy, res.Cyclonic, res.Anticyclonic)
		return nil
	})
	hist, err := bench.RunEnergyGrowth(*nr, *nt, *steps, 10)
	if err != nil {
		fail(err)
	}
	withFile(*out, "energy_series.csv", func(f *os.File) error {
		bench.FormatEnergySeries(f, hist)
		return nil
	})

	fmt.Printf("reproduction report written to %s/\n", *out)
}

func withFile(dir, name string, fn func(*os.File) error) {
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	if err := fn(f); err != nil {
		fail(fmt.Errorf("%s: %w", name, err))
	}
	fmt.Println("wrote", path)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "yyrepro:", err)
	os.Exit(1)
}
