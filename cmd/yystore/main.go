// Command yystore audits and maintains a durable run-ledger store: the
// content-addressed artifact directory campaigns write through
// resilience.Config.Store (yycore -store) and the chaos storage arm
// exercises under injected filesystem faults.
//
// Usage:
//
//	yystore -root dir verify            # full walk: objects, refs, ledger chain, Merkle roots, anchor
//	yystore -root dir scrub             # verify + orphan-temp sweep, no mutation of damage
//	yystore -root dir repair [-replica dir,...]  # scrub with repair: restore from replicas, quarantine, re-anchor
//	yystore -root dir gc                # sweep objects unreachable from ledger and refs
//	yystore -root dir ls                # print the ledger chain and refs
//
// With -o the machine-readable JSON report is additionally committed
// (atomically) to the given path for CI to upload. Exit status 0 means
// the store is sound (severe findings absent, or for repair, all
// repaired); 1 means severe damage or unrepaired objects remain; 2
// means the harness itself failed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/store"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut *os.File) int {
	fs := flag.NewFlagSet("yystore", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		root     = fs.String("root", "", "store root directory (required)")
		replicas = fs.String("replica", "", "comma-separated replica roots repair may restore objects from")
		report   = fs.String("o", "", "write the JSON report here (atomic commit)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	cmd := fs.Arg(0)
	if len(fs.Args()) > 1 {
		// Flags are accepted after the subcommand too (yystore -root d
		// repair -replica m): re-parse the remainder.
		if err := fs.Parse(fs.Args()[1:]); err != nil {
			return 2
		}
	}
	if *root == "" || cmd == "" {
		fmt.Fprintln(errOut, "usage: yystore -root dir [-replica dir,...] [-o report.json] <verify|scrub|repair|gc|ls>")
		return 2
	}

	primary, err := store.NewDirBackend(*root)
	if err != nil {
		fmt.Fprintf(errOut, "yystore: %v\n", err)
		return 2
	}
	var reps []store.Backend
	for _, r := range strings.Split(*replicas, ",") {
		if r == "" {
			continue
		}
		b, err := store.NewDirBackend(r)
		if err != nil {
			fmt.Fprintf(errOut, "yystore: replica %s: %v\n", r, err)
			return 2
		}
		reps = append(reps, b)
	}
	st, err := store.Open(primary, reps...)
	if err != nil {
		fmt.Fprintf(errOut, "yystore: opening store: %v\n", err)
		return 2
	}

	switch cmd {
	case "verify":
		rep, err := st.Verify()
		if err != nil {
			fmt.Fprintf(errOut, "yystore: verify: %v\n", err)
			return 2
		}
		printReport(out, rep)
		if !writeReport(*report, rep, errOut) {
			return 2
		}
		if rep.Severe() > 0 {
			return 1
		}
		return 0
	case "scrub", "repair":
		rep, err := st.Scrub(cmd == "repair")
		if err != nil {
			fmt.Fprintf(errOut, "yystore: %s: %v\n", cmd, err)
			return 2
		}
		printReport(out, rep)
		if !writeReport(*report, rep, errOut) {
			return 2
		}
		if cmd == "repair" {
			if len(rep.Unrepaired) > 0 {
				return 1
			}
			return 0
		}
		if rep.Verify.Severe() > 0 {
			return 1
		}
		return 0
	case "gc":
		rep, err := st.GC()
		if err != nil {
			fmt.Fprintf(errOut, "yystore: gc: %v\n", err)
			return 2
		}
		printReport(out, rep)
		if !writeReport(*report, rep, errOut) {
			return 2
		}
		return 0
	case "ls":
		if code := ls(st, out, errOut); code != 0 {
			return code
		}
		return 0
	default:
		fmt.Fprintf(errOut, "yystore: unknown command %q (verify|scrub|repair|gc|ls)\n", cmd)
		return 2
	}
}

// ls prints the ledger chain then the ref namespace.
func ls(st *store.Store, out, errOut *os.File) int {
	entries, err := st.Entries()
	if err != nil {
		fmt.Fprintf(errOut, "yystore: reading ledger: %v\n", err)
		return 2
	}
	for _, m := range entries {
		extra := ""
		if len(m.Recoveries) > 0 {
			extra = "  recoveries: " + strings.Join(m.Recoveries, ", ")
		}
		fmt.Fprintf(out, "ledger %3d  run %-12s step %4d  %-10s %d artifact(s)  root %s%s\n",
			m.Seq, m.Run, m.Step, m.Note, len(m.Artifacts), m.Root.Short(), extra)
	}
	refs, err := st.Refs("")
	if err != nil {
		fmt.Fprintf(errOut, "yystore: reading refs: %v\n", err)
		return 2
	}
	for _, r := range refs {
		if r.Err != nil {
			fmt.Fprintf(out, "ref %-40s DAMAGED: %v\n", r.Name, r.Err)
			continue
		}
		fmt.Fprintf(out, "ref %-40s %s\n", r.Name, r.Hash.Short())
	}
	fmt.Fprintf(out, "%d ledger entries, %d refs, %d objects\n", len(entries), len(refs), st.Objects())
	return 0
}

// printReport writes a report's human rendering with exactly one
// trailing newline (the String() forms differ).
func printReport(out *os.File, rep fmt.Stringer) {
	s := rep.String()
	if !strings.HasSuffix(s, "\n") {
		s += "\n"
	}
	fmt.Fprint(out, s)
}

// writeReport commits the JSON form of rep to path (no-op for ""),
// reporting success.
func writeReport(path string, rep any, errOut *os.File) bool {
	if path == "" {
		return true
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(errOut, "yystore: marshaling report: %v\n", err)
		return false
	}
	if err := store.WriteFileAtomic(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(errOut, "yystore: writing report: %v\n", err)
		return false
	}
	return true
}
