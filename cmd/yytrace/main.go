// Command yytrace merges and summarizes Chrome trace_event JSON files
// produced by yycore -trace (or any tool emitting the same format).
//
// Summarize one trace (per-track span totals and percentages):
//
//	yytrace run.json
//
// Merge several runs into one file, each input on its own process row
// in Perfetto:
//
//	yytrace -o merged.json run1.json run2.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

// event mirrors the trace_event fields our tools emit, keeping unknown
// args intact for round-tripping.
type event struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit,omitempty"`
}

func main() {
	var (
		out     = flag.String("o", "", "write the merged trace here instead of summarizing")
		summary = flag.Bool("summary", false, "print the per-track summary (default when -o is not given)")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: yytrace [-o merged.json] [-summary] trace.json...")
		os.Exit(2)
	}

	merged, err := merge(flag.Args())
	if err != nil {
		fail(err)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		enc := json.NewEncoder(f)
		if err := enc.Encode(traceFile{TraceEvents: merged, DisplayTimeUnit: "ms"}); err != nil {
			fail(err)
		}
		f.Close()
		fmt.Printf("wrote %s (%d events from %d files)\n", *out, len(merged), flag.NArg())
		if !*summary {
			return
		}
	}
	summarize(os.Stdout, merged)
}

// merge loads every input and reassigns each file's events to its own
// process row, so merged runs do not collide on (pid, tid) — even when
// the inputs were all recorded as the same pid.
func merge(paths []string) ([]event, error) {
	var merged []event
	for i, path := range paths {
		tf, err := load(path)
		if err != nil {
			return nil, err
		}
		for _, ev := range tf.TraceEvents {
			ev.PID = i
			merged = append(merged, ev)
		}
	}
	return merged, nil
}

func load(path string) (traceFile, error) {
	var tf traceFile
	data, err := os.ReadFile(path)
	if err != nil {
		return tf, err
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		// Also accept the bare-array form of the format.
		var evs []event
		if aerr := json.Unmarshal(data, &evs); aerr != nil {
			return tf, fmt.Errorf("%s: %v", path, err)
		}
		tf.TraceEvents = evs
	}
	return tf, nil
}

type trackKey struct{ pid, tid int }
type rowKey struct {
	trackKey
	name string
}

// summarize prints, per track, each span name's count, total time and
// share of the track's wall span, plus the instants seen.
func summarize(w io.Writer, evs []event) {
	names := map[trackKey]string{}
	rows := map[rowKey]*struct {
		count int
		total float64
	}{}
	walls := map[trackKey][2]float64{} // min ts, max ts+dur
	instants := map[string]int{}
	for _, ev := range evs {
		tk := trackKey{ev.PID, ev.TID}
		switch ev.Phase {
		case "M":
			if ev.Name == "thread_name" && ev.Args != nil {
				if n, ok := ev.Args["name"].(string); ok {
					names[tk] = n
				}
			}
		case "X":
			rk := rowKey{tk, ev.Name}
			r := rows[rk]
			if r == nil {
				r = &struct {
					count int
					total float64
				}{}
				rows[rk] = r
			}
			r.count++
			r.total += ev.Dur
			span, ok := walls[tk]
			if !ok {
				span = [2]float64{ev.TS, ev.TS + ev.Dur}
			}
			if ev.TS < span[0] {
				span[0] = ev.TS
			}
			if ev.TS+ev.Dur > span[1] {
				span[1] = ev.TS + ev.Dur
			}
			walls[tk] = span
		case "i":
			instants[ev.Name]++
		}
	}

	tracks := make([]trackKey, 0, len(walls))
	for tk := range walls {
		tracks = append(tracks, tk)
	}
	sort.Slice(tracks, func(i, j int) bool {
		if tracks[i].pid != tracks[j].pid {
			return tracks[i].pid < tracks[j].pid
		}
		return tracks[i].tid < tracks[j].tid
	})
	for _, tk := range tracks {
		label := names[tk]
		if label == "" {
			label = fmt.Sprintf("tid %d", tk.tid)
		}
		wall := walls[tk][1] - walls[tk][0]
		fmt.Fprintf(w, "\n[pid %d] %s  (wall %.3f ms)\n", tk.pid, label, wall/1e3)
		fmt.Fprintf(w, "  %-18s %8s %14s %8s\n", "span", "count", "total(ms)", "%wall")
		type line struct {
			name  string
			count int
			total float64
		}
		var lines []line
		for rk, r := range rows {
			if rk.trackKey == tk {
				lines = append(lines, line{rk.name, r.count, r.total})
			}
		}
		sort.Slice(lines, func(i, j int) bool { return lines[i].total > lines[j].total })
		for _, l := range lines {
			pct := 0.0
			if wall > 0 {
				pct = 100 * l.total / wall
			}
			fmt.Fprintf(w, "  %-18s %8d %14.3f %8.2f\n", l.name, l.count, l.total/1e3, pct)
		}
	}
	if len(instants) > 0 {
		fmt.Fprintf(w, "\nInstants:\n")
		keys := make([]string, 0, len(instants))
		for k := range instants {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "  %-24s %6d\n", k, instants[k])
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "yytrace:", err)
	os.Exit(1)
}
