package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTrace(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLoadEmptyTrace: a trace with no events is valid input, not an
// error — a run can legitimately record nothing.
func TestLoadEmptyTrace(t *testing.T) {
	for name, body := range map[string]string{
		"object":     `{"traceEvents":[]}`,
		"bare array": `[]`,
	} {
		tf, err := load(writeTrace(t, "empty.json", body))
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if len(tf.TraceEvents) != 0 {
			t.Errorf("%s: %d events from an empty trace", name, len(tf.TraceEvents))
		}
	}
	var sb strings.Builder
	summarize(&sb, nil)
	if sb.Len() != 0 {
		t.Errorf("empty summary rendered output: %q", sb.String())
	}
}

// TestLoadTruncatedJSON: a trace cut off mid-write (the crash case the
// tool exists to diagnose) must fail loudly, not silently drop events.
func TestLoadTruncatedJSON(t *testing.T) {
	for name, body := range map[string]string{
		"mid object": `{"traceEvents":[{"name":"step","ph":"X","ts":1,`,
		"mid array":  `[{"name":"step","ph":"X"`,
		"not json":   `hello`,
	} {
		if _, err := load(writeTrace(t, "trunc.json", body)); err == nil {
			t.Errorf("%s: truncated trace loaded without error", name)
		}
	}
	if _, err := load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file loaded without error")
	}
}

// TestMergeSingleRank: a one-input merge is the identity apart from the
// pid rewrite to row 0.
func TestMergeSingleRank(t *testing.T) {
	in := writeTrace(t, "one.json",
		`{"traceEvents":[{"name":"step","ph":"X","ts":10,"dur":5,"pid":7,"tid":2}]}`)
	evs, err := merge([]string{in})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].PID != 0 || evs[0].TID != 2 || evs[0].Name != "step" {
		t.Fatalf("merged = %+v", evs)
	}
}

// TestMergeDuplicatePID: two runs recorded as the same pid must land on
// distinct process rows instead of colliding into one track.
func TestMergeDuplicatePID(t *testing.T) {
	body := `{"traceEvents":[` +
		`{"name":"thread_name","ph":"M","pid":0,"tid":1,"args":{"name":"rank 0"}},` +
		`{"name":"step","ph":"X","ts":0,"dur":10,"pid":0,"tid":1}]}`
	a := writeTrace(t, "a.json", body)
	b := writeTrace(t, "b.json", body)
	evs, err := merge([]string{a, b})
	if err != nil {
		t.Fatal(err)
	}
	pids := map[int]int{}
	for _, ev := range evs {
		pids[ev.PID]++
	}
	if len(pids) != 2 || pids[0] != 2 || pids[1] != 2 {
		t.Fatalf("pid distribution = %v, want both files on their own row", pids)
	}
	var sb strings.Builder
	summarize(&sb, evs)
	out := sb.String()
	if !strings.Contains(out, "[pid 0] rank 0") || !strings.Contains(out, "[pid 1] rank 0") {
		t.Fatalf("summary lost a track:\n%s", out)
	}
}

// TestSummarizeTracksAndInstants: span totals, percentages and instant
// counts all surface in the text summary.
func TestSummarizeTracksAndInstants(t *testing.T) {
	evs := []event{
		{Name: "thread_name", Phase: "M", PID: 0, TID: 1, Args: map[string]any{"name": "rank 0"}},
		{Name: "step", Phase: "X", TS: 0, Dur: 8000, PID: 0, TID: 1},
		{Name: "halo", Phase: "X", TS: 8000, Dur: 2000, PID: 0, TID: 1},
		{Name: "ckpt.commit", Phase: "i", TS: 9000, PID: 0, TID: 1},
		{Name: "ckpt.commit", Phase: "i", TS: 9500, PID: 0, TID: 1},
	}
	var sb strings.Builder
	summarize(&sb, evs)
	out := sb.String()
	for _, want := range []string{"rank 0", "step", "halo", "Instants:", "ckpt.commit"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary lacks %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "80.00") {
		t.Errorf("step should be 80%% of wall:\n%s", out)
	}
}
