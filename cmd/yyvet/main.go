// Command yyvet runs the repository's static-analysis suite
// (internal/analyze) over every package of the module and prints one
// `file:line:col: analyzer: message` line per finding, exiting non-zero
// when anything is found.
//
// Usage:
//
//	yyvet [-list] [-p N] [-json file] [-github] [pattern ...]
//
// Patterns are directory-style package selectors relative to the
// current directory: "./..." (the default) selects the whole module,
// "./internal/mpi" one package, "./internal/..." a subtree. Analysis is
// package-parallel; -p caps the workers (default GOMAXPROCS). -json
// additionally writes the findings as a machine-readable JSON array to
// the given file ("-" for stdout), and -github emits GitHub Actions
// workflow annotations alongside the plain lines, so CI surfaces each
// finding on the offending diff line. Findings are suppressed with a
// justification comment:
//
//	//yyvet:ignore analyzer-name why this is safe
//
// on the finding's line or the line directly above it. Stale or
// unjustified directives are themselves findings (ignore-audit).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analyze"
	"repro/internal/store"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the machine-readable finding shape CI consumes.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// run is the testable driver body; it returns the process exit code:
// 0 clean, 1 findings, 2 usage or load failure.
func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("yyvet", flag.ContinueOnError)
	fs.SetOutput(errOut)
	list := fs.Bool("list", false, "list the analyzers and exit")
	workers := fs.Int("p", 0, "package-analysis parallelism (0 = GOMAXPROCS)")
	jsonOut := fs.String("json", "", "also write findings as JSON to this file (\"-\" for stdout)")
	github := fs.Bool("github", false, "also emit GitHub Actions ::error annotations")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyze.All() {
			fmt.Fprintf(out, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(errOut, "yyvet: %v\n", err)
		return 2
	}
	root, err := analyze.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintf(errOut, "yyvet: %v\n", err)
		return 2
	}
	pkgs, err := analyze.LoadModule(root)
	if err != nil {
		fmt.Fprintf(errOut, "yyvet: %v\n", err)
		return 2
	}
	selected, err := filterPackages(pkgs, patterns, cwd)
	if err != nil {
		fmt.Fprintf(errOut, "yyvet: %v\n", err)
		return 2
	}

	findings, err := analyze.RunN(selected, analyze.All(), *workers)
	if err != nil {
		fmt.Fprintf(errOut, "yyvet: %v\n", err)
		return 2
	}

	// With -json - the JSON array is the stdout payload; keep the
	// human-readable lines off it so the output stays parseable.
	plain := *jsonOut != "-"
	jfs := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		pos := f.Pos
		if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		if plain {
			fmt.Fprintf(out, "%s:%d:%d: %s: %s\n", pos.Filename, pos.Line, pos.Column, f.Analyzer, f.Message)
		}
		if *github {
			// Workflow-command grammar: property values use URL-style
			// escapes for , and %, the message escapes newlines too.
			fmt.Fprintf(out, "::error file=%s,line=%d,col=%d,title=yyvet %s::%s\n",
				escapeProp(pos.Filename), pos.Line, pos.Column, escapeProp(f.Analyzer), escapeData(f.Message))
		}
		jfs = append(jfs, jsonFinding{
			File: pos.Filename, Line: pos.Line, Col: pos.Column,
			Analyzer: f.Analyzer, Message: f.Message,
		})
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, jfs, out); err != nil {
			fmt.Fprintf(errOut, "yyvet: %v\n", err)
			return 2
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(errOut, "yyvet: %d finding(s) in %d package(s)\n", len(findings), len(selected))
		return 1
	}
	return 0
}

// writeJSON marshals the findings (an empty run is [], never null) to
// path, or to out for "-".
func writeJSON(path string, jfs []jsonFinding, out io.Writer) error {
	data, err := json.MarshalIndent(jfs, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = out.Write(data)
		return err
	}
	return store.WriteFileAtomic(path, data, 0o644)
}

// escapeProp escapes a workflow-command property value.
func escapeProp(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, ",", "%2C")
	s = strings.ReplaceAll(s, ":", "%3A")
	return s
}

// escapeData escapes a workflow-command message.
func escapeData(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// filterPackages keeps the packages whose directory matches any of the
// directory-style patterns, resolved relative to cwd.
func filterPackages(pkgs []*analyze.Package, patterns []string, cwd string) ([]*analyze.Package, error) {
	var out []*analyze.Package
	for _, p := range pkgs {
		matched := false
		for _, pat := range patterns {
			ok, err := matchPattern(p.Dir, pat, cwd)
			if err != nil {
				return nil, err
			}
			if ok {
				matched = true
				break
			}
		}
		if matched {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no packages match %v", patterns)
	}
	return out, nil
}

// matchPattern reports whether the package directory dir falls under
// pattern: an exact directory, or a "/..." suffix selecting a subtree.
func matchPattern(dir, pattern, cwd string) (bool, error) {
	subtree := false
	if rest, ok := strings.CutSuffix(pattern, "/..."); ok {
		subtree = true
		pattern = rest
		if pattern == "" || pattern == "." {
			pattern = "."
		}
	}
	base := pattern
	if !filepath.IsAbs(base) {
		base = filepath.Join(cwd, base)
	}
	base, err := filepath.Abs(base)
	if err != nil {
		return false, err
	}
	dir, err = filepath.Abs(dir)
	if err != nil {
		return false, err
	}
	if dir == base {
		return true, nil
	}
	return subtree && strings.HasPrefix(dir, base+string(filepath.Separator)), nil
}
