package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// badModuleWants is one pinned finding per seeded bug in the known-bad
// fixture module, covering every analyzer that has a seeded trigger.
var badModuleWants = []string{
	// v1 per-function analyzers.
	"comm/comm.go:22:2: irecv-wait: result of Irecv is discarded",
	"comm/comm.go:36:3: cond-wait-loop: sync.Cond.Wait is not guarded by a for loop",
	"fd/fd.go:6:25: pow2-stride: slice dimension 256 is a power of two",
	"fd/fd.go:10:11: float-eq: floating-point values compared with ==",
	// Stale-directive audit.
	"fd/fd.go:14:2: ignore-audit: //yyvet:ignore float-eq suppresses nothing",
	// Tag-space: unused allocation, step-path tag outside the
	// allocation, cross-package collision (reported at both uses), and a
	// negative tag that only a parameter summary can see.
	"decomp/decomp.go:12:1: tag-space: ExchangeTags() allocates tag 9",
	"decomp/decomp.go:23:12: tag-space: Send on the step path uses tag 3",
	"decomp/decomp.go:29:12: tag-space: tag 0 (from decomp.tagBase+0) collides across subsystems",
	// Overlap-order: a read of the in-flight halo array inside the
	// haloStart..haloFinish window.
	"decomp/decomp.go:55:7: overlap-order: r.b is read between haloStart and haloFinish",
	"relay/relay.go:17:12: tag-space: tag 0 (from 0) collides across subsystems",
	"relay/relay.go:17:12: tag-space: Send uses negative tag -2",
	// Buffer lifetime: the three diagnosable misuses.
	"mpi/mpi.go:25:9: buf-lifetime: b is used after being released with putBuf",
	"mpi/mpi.go:31:13: buf-lifetime: b was already released with putBuf",
	"mpi/mpi.go:37:3: buf-lifetime: b acquired from getBuf leaks on this return path",
	// Determinism purity.
	"mhd/mhd.go:10:9: det-purity: time.Now in deterministic package mhd",
	"mhd/mhd.go:16:2: det-purity: range over map in deterministic package mhd",
	// Pool tile disjointness.
	"par/par.go:18:4: pool-disjoint: accumulation into captured sum",
	"par/par.go:27:3: pool-disjoint: write into out inside a Pool.For tile closure",
}

// TestBadModuleFindings: the driver on the known-bad fixture module
// reports each analyzer's expected finding and exits 1.
func TestBadModuleFindings(t *testing.T) {
	t.Chdir("testdata/badmod")
	var out, errOut strings.Builder
	code := run([]string{"./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	got := out.String()
	for _, want := range badModuleWants {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q\ngot:\n%s", want, got)
		}
	}
	if n := strings.Count(got, "\n"); n != len(badModuleWants) {
		t.Errorf("expected exactly %d findings, got %d:\n%s", len(badModuleWants), n, got)
	}
}

// TestBadModuleSinglePackage: a narrower pattern only reports that
// package's findings.
func TestBadModuleSinglePackage(t *testing.T) {
	t.Chdir("testdata/badmod")
	var out, errOut strings.Builder
	code := run([]string{"./comm"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, errOut.String())
	}
	got := out.String()
	if strings.Contains(got, "fd/fd.go") {
		t.Errorf("pattern ./comm leaked fd findings:\n%s", got)
	}
	if !strings.Contains(got, "irecv-wait") {
		t.Errorf("pattern ./comm missed its findings:\n%s", got)
	}
}

// TestGoodModuleClean: the clean fixture module exits 0 with no output.
// The module deliberately exercises the interprocedural machinery on
// the happy path: release-through-wrapper, tag bases flowing through
// helper parameters, and a justified live suppression.
func TestGoodModuleClean(t *testing.T) {
	t.Chdir("testdata/goodmod")
	var out, errOut strings.Builder
	code := run([]string{"./..."}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean module produced output:\n%s", out.String())
	}
}

// TestJSONOutput: -json writes a machine-readable array carrying the
// same findings as the plain lines.
func TestJSONOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "findings.json")
	t.Chdir("testdata/badmod")
	var out, errOut strings.Builder
	code := run([]string{"-json", path, "./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, errOut.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var jfs []jsonFinding
	if err := json.Unmarshal(data, &jfs); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, data)
	}
	if len(jfs) != len(badModuleWants) {
		t.Fatalf("JSON carries %d findings, want %d", len(jfs), len(badModuleWants))
	}
	seen := false
	for _, f := range jfs {
		if f.File == "mpi/mpi.go" && f.Line == 37 && f.Analyzer == "buf-lifetime" {
			seen = true
		}
	}
	if !seen {
		t.Errorf("JSON missing the mpi leak finding:\n%s", data)
	}
}

// TestJSONStdout: -json - makes the array the stdout payload and drops
// the plain lines so the stream stays parseable.
func TestJSONStdout(t *testing.T) {
	t.Chdir("testdata/badmod")
	var out, errOut strings.Builder
	code := run([]string{"-json", "-", "./mhd"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, errOut.String())
	}
	var jfs []jsonFinding
	if err := json.Unmarshal([]byte(out.String()), &jfs); err != nil {
		t.Fatalf("stdout is not a bare JSON array: %v\n%s", err, out.String())
	}
	if len(jfs) != 2 {
		t.Errorf("got %d findings for ./mhd, want 2", len(jfs))
	}
}

// TestJSONEmptyArray: a clean run writes [], never null, so downstream
// jq/actions steps need no null guard.
func TestJSONEmptyArray(t *testing.T) {
	t.Chdir("testdata/goodmod")
	var out, errOut strings.Builder
	code := run([]string{"-json", "-", "./..."}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr:\n%s", code, errOut.String())
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Errorf("clean -json - output = %q, want []", got)
	}
}

// TestGithubAnnotations: -github interleaves ::error workflow commands
// with the escaped position properties.
func TestGithubAnnotations(t *testing.T) {
	t.Chdir("testdata/badmod")
	var out, errOut strings.Builder
	code := run([]string{"-github", "./mhd"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, errOut.String())
	}
	got := out.String()
	if !strings.Contains(got, "::error file=mhd/mhd.go,line=10,col=9,title=yyvet det-purity::") {
		t.Errorf("missing ::error annotation:\n%s", got)
	}
	// The plain line must still be there for humans reading the log.
	if !strings.Contains(got, "mhd/mhd.go:10:9: det-purity:") {
		t.Errorf("plain line dropped in -github mode:\n%s", got)
	}
}

// TestParallelMatchesSerial: -p 1 and -p 8 produce identical output;
// the package-parallel scheduler must not perturb finding order.
func TestParallelMatchesSerial(t *testing.T) {
	t.Chdir("testdata/badmod")
	var serial, parallel, errOut strings.Builder
	if code := run([]string{"-p", "1", "./..."}, &serial, &errOut); code != 1 {
		t.Fatalf("serial exit code = %d, want 1\nstderr:\n%s", code, errOut.String())
	}
	if code := run([]string{"-p", "8", "./..."}, &parallel, &errOut); code != 1 {
		t.Fatalf("parallel exit code = %d, want 1\nstderr:\n%s", code, errOut.String())
	}
	if serial.String() != parallel.String() {
		t.Errorf("-p 1 and -p 8 disagree:\nserial:\n%s\nparallel:\n%s", serial.String(), parallel.String())
	}
}

// TestListFlag: -list names the analyzers, old and new, and exits 0.
func TestListFlag(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-list"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{
		"irecv-wait", "pow2-stride", "float-eq", "cond-wait-loop",
		"tag-space", "buf-lifetime", "det-purity", "pool-disjoint", "ignore-audit",
		"overlap-order",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

// TestNoMatchingPackages: a pattern that selects nothing is a usage
// error, not a silent pass.
func TestNoMatchingPackages(t *testing.T) {
	t.Chdir("testdata/badmod")
	var out, errOut strings.Builder
	code := run([]string{"./nonexistent"}, &out, &errOut)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "no packages match") {
		t.Errorf("stderr = %q", errOut.String())
	}
}
