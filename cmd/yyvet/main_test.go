package main

import (
	"strings"
	"testing"
)

// TestBadModuleFindings: the driver on the known-bad fixture module
// reports each analyzer's expected finding and exits 1.
func TestBadModuleFindings(t *testing.T) {
	t.Chdir("testdata/badmod")
	var out, errOut strings.Builder
	code := run([]string{"./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	got := out.String()
	for _, want := range []string{
		"comm/comm.go:22:2: irecv-wait: result of Irecv is discarded",
		"comm/comm.go:36:3: cond-wait-loop: sync.Cond.Wait is not guarded by a for loop",
		"fd/fd.go:6:25: pow2-stride: slice dimension 256 is a power of two",
		"fd/fd.go:10:11: float-eq: floating-point values compared with ==",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q\ngot:\n%s", want, got)
		}
	}
	if n := strings.Count(got, "\n"); n != 4 {
		t.Errorf("expected exactly 4 findings, got %d:\n%s", n, got)
	}
}

// TestBadModuleSinglePackage: a narrower pattern only reports that
// package's findings.
func TestBadModuleSinglePackage(t *testing.T) {
	t.Chdir("testdata/badmod")
	var out, errOut strings.Builder
	code := run([]string{"./comm"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, errOut.String())
	}
	got := out.String()
	if strings.Contains(got, "fd/fd.go") {
		t.Errorf("pattern ./comm leaked fd findings:\n%s", got)
	}
	if !strings.Contains(got, "irecv-wait") {
		t.Errorf("pattern ./comm missed its findings:\n%s", got)
	}
}

// TestGoodModuleClean: the clean fixture module exits 0 with no output.
func TestGoodModuleClean(t *testing.T) {
	t.Chdir("testdata/goodmod")
	var out, errOut strings.Builder
	code := run([]string{"./..."}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean module produced output:\n%s", out.String())
	}
}

// TestListFlag: -list names all four analyzers and exits 0.
func TestListFlag(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-list"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{"irecv-wait", "pow2-stride", "float-eq", "cond-wait-loop"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

// TestNoMatchingPackages: a pattern that selects nothing is a usage
// error, not a silent pass.
func TestNoMatchingPackages(t *testing.T) {
	t.Chdir("testdata/badmod")
	var out, errOut strings.Builder
	code := run([]string{"./nonexistent"}, &out, &errOut)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "no packages match") {
		t.Errorf("stderr = %q", errOut.String())
	}
}
