// Package comm is the known-bad smoke fixture for the irecv-wait and
// cond-wait-loop analyzers.
package comm

import "sync"

// Comm mimics the mpi surface.
type Comm struct{}

// Request mimics mpi.Request.
type Request struct{ done chan int }

// Wait completes the receive.
func (r *Request) Wait() int { return <-r.done }

// Irecv mimics the non-blocking receive.
func (c *Comm) Irecv(src, tag int, buf []float64) *Request {
	return &Request{done: make(chan int, 1)}
}

func droppedRequest(c *Comm, halo []float64) float64 {
	c.Irecv(0, 1, halo) // irecv-wait should fire here
	return halo[0]
}

type box struct {
	mu    sync.Mutex
	cond  *sync.Cond
	ready bool
}

func (b *box) bareWait() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.ready {
		b.cond.Wait() // cond-wait-loop should fire here
	}
}
