// Package decomp is the known-bad smoke fixture for the tag-space
// analyzer's ExchangeTags checks: a step-path send outside the
// allocation, an allocated tag nothing uses, and (with package relay)
// a cross-subsystem collision on tag 0.
package decomp

import "badmod/mpi"

const tagBase = 0

// ExchangeTags allocates tags 0, 1 and 9; 9 is never used anywhere.
func ExchangeTags() []int {
	tags := make([]int, 0, 3)
	for d := 0; d < 2; d++ {
		tags = append(tags, tagBase+d)
	}
	return append(tags, 9)
}

// AdvanceScheme is the step-path root.
func AdvanceScheme(c *mpi.Comm) {
	exchange(c, tagBase)
	c.Send(1, 3, nil) // tag-space: 3 is outside the allocation
}

// exchange receives its tag base as a parameter; the analyzer resolves
// the base through the call graph.
func exchange(c *mpi.Comm, base int) {
	c.Send(1, base+0, nil)
	c.Send(1, base+1, nil)
}
