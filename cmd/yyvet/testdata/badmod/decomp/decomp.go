// Package decomp is the known-bad smoke fixture for the tag-space
// analyzer's ExchangeTags checks: a step-path send outside the
// allocation, an allocated tag nothing uses, and (with package relay)
// a cross-subsystem collision on tag 0.
package decomp

import "badmod/mpi"

const tagBase = 0

// ExchangeTags allocates tags 0, 1 and 9; 9 is never used anywhere.
func ExchangeTags() []int {
	tags := make([]int, 0, 3)
	for d := 0; d < 2; d++ {
		tags = append(tags, tagBase+d)
	}
	return append(tags, 9)
}

// AdvanceScheme is the step-path root.
func AdvanceScheme(c *mpi.Comm) {
	exchange(c, tagBase)
	c.Send(1, 3, nil) // tag-space: 3 is outside the allocation
}

// exchange receives its tag base as a parameter; the analyzer resolves
// the base through the call graph.
func exchange(c *mpi.Comm, base int) {
	c.Send(1, base+0, nil)
	c.Send(1, base+1, nil)
}

// The overlap-order seed: a miniature of the overlapped halo schedule
// that reads the in-flight array before the finish.

type scalar struct{ data []float64 }

type region struct{ j0, j1 int }

type halo struct{ fields []*scalar }

type rank struct {
	interior region
	b        *scalar
}

func (r *rank) haloStart(fields []*scalar, tag int) halo { return halo{fields: fields} }

func (r *rank) haloFinish(ov *halo) {}

// overlapStep reads the exchanged array inside the overlap window
// instead of routing it through an interior-region kernel.
func (r *rank) overlapStep() float64 {
	ov := r.haloStart([]*scalar{r.b}, tagBase)
	x := r.b.data[0] // overlap-order: read between the post and the wait
	r.haloFinish(&ov)
	return x
}
