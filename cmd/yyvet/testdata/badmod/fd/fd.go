// Package fd is the known-bad smoke fixture for the pow2-stride (hot
// package name) and float-eq analyzers.
package fd

func pow2Column() []float64 {
	return make([]float64, 256) // pow2-stride should fire here
}

func exactCompare(a, b float64) bool {
	return a == b // float-eq should fire here
}

func staleSuppression() []float64 {
	//yyvet:ignore float-eq nothing on the next line compares floats
	return make([]float64, 257) // ignore-audit: the directive suppresses nothing
}
