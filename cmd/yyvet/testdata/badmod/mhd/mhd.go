// Package mhd is the known-bad smoke fixture for the det-purity
// analyzer: wall-clock reads and map-order-dependent iteration inside a
// deterministic package.
package mhd

import "time"

// Stamp reads the wall clock from numerics code.
func Stamp() int64 {
	return time.Now().UnixNano() // det-purity: wall clock
}

// Sum folds map values in iteration order.
func Sum(m map[int]float64) float64 {
	var s float64
	for _, v := range m { // det-purity: map order reaches the sum
		s += v
	}
	return s
}
