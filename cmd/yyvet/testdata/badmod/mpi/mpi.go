// Package mpi is the known-bad smoke fixture for the buf-lifetime
// analyzer: it mirrors the real runtime's free-list surface (getBuf /
// putBuf) and misuses it in the three diagnosable ways.
package mpi

// Comm mimics the point-to-point surface the tag-space analyzer keys
// on (a Send/Recv method set declared in a package named mpi).
type Comm struct{}

// Send mimics the tagged send.
func (c *Comm) Send(dst, tag int, data []float64) {}

// Recv mimics the tagged receive.
func (c *Comm) Recv(src, tag int, buf []float64) int { return 0 }

type context struct{ pool [][]float64 }

func (ctx *context) getBuf(n int) []float64 { return make([]float64, n) }

func (ctx *context) putBuf(b []float64) { ctx.pool = append(ctx.pool, b) }

func useAfterPut(ctx *context) float64 {
	b := ctx.getBuf(8)
	ctx.putBuf(b)
	return b[0] // buf-lifetime: read after release
}

func doublePut(ctx *context) {
	b := ctx.getBuf(8)
	ctx.putBuf(b)
	ctx.putBuf(b) // buf-lifetime: released twice
}

func leakOnEarlyReturn(ctx *context, short bool) int {
	b := ctx.getBuf(8)
	if short {
		return 0 // buf-lifetime: b leaks on this path
	}
	ctx.putBuf(b)
	return 0
}

func cleanRoundTrip(ctx *context) {
	b := ctx.getBuf(8)
	b[0] = 1
	ctx.putBuf(b)
}
