// Package par is the known-bad smoke fixture for the pool-disjoint
// analyzer: a Pool.For mimic plus the two closure shapes that break the
// tile-disjointness contract.
package par

// Pool mimics the worker pool.
type Pool struct{}

// For mimics the tiled parallel-for.
func (p *Pool) For(n int, fn func(lo, hi int)) { fn(0, n) }

// SumBad accumulates into a captured scalar from inside the tile
// closure.
func SumBad(p *Pool, xs []float64) float64 {
	var sum float64
	p.For(len(xs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum += xs[i] // pool-disjoint: captured-scalar accumulation
		}
	})
	return sum
}

// FillBad writes a fixed element of a captured slice from every tile.
func FillBad(p *Pool, out []float64) {
	p.For(len(out), func(lo, hi int) {
		out[0] = 1 // pool-disjoint: not indexed by the tile range
	})
}

// FillGood writes only tile-owned elements.
func FillGood(p *Pool, out []float64) {
	p.For(len(out), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = 1
		}
	})
}
