// Package relay is the known-bad smoke fixture for tag-space's
// cross-subsystem and negative-tag checks: it reuses decomp's tag 0
// from a different package, and propagates a negative tag through a
// helper parameter.
package relay

import "badmod/mpi"

// Push sends on a tag decomp also uses (collision) and on a negative
// tag (reserved space), both through the send helper.
func Push(c *mpi.Comm) {
	send(c, 0)
	send(c, -2)
}

func send(c *mpi.Comm, tag int) {
	c.Send(1, tag, nil)
}
