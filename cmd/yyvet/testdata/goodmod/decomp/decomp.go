// Package decomp is the known-good smoke fixture for tag-space: every
// step-path tag is inside the ExchangeTags allocation, every allocated
// tag is used, and the tag base flows through a helper parameter so the
// check exercises the interprocedural propagation.
package decomp

import "goodmod/mpi"

const tagBase = 4

// ExchangeTags allocates exactly the tags the step path uses.
func ExchangeTags() []int {
	tags := make([]int, 0, 2)
	for d := 0; d < 2; d++ {
		tags = append(tags, tagBase+d)
	}
	return tags
}

// AdvanceScheme is the step-path root.
func AdvanceScheme(c *mpi.Comm) {
	exchange(c, tagBase)
}

func exchange(c *mpi.Comm, base int) {
	c.Send(1, base+0, nil)
	c.Send(1, base+1, nil)
}

// The overlap-order happy path: inside the window the exchanged array
// only feeds a kernel on the declared interior region; the rim kernel
// runs after the finish.

type scalar struct{ data []float64 }

type region struct{ j0, j1 int }

type halo struct{ fields []*scalar }

type rank struct {
	interior region
	rim      region
	b        *scalar
}

func (r *rank) haloStart(fields []*scalar, tag int) halo { return halo{fields: fields} }

func (r *rank) haloFinish(ov *halo) {}

func kernel(f *scalar, reg region) {}

func (r *rank) overlapStep() {
	ov := r.haloStart([]*scalar{r.b}, tagBase)
	kernel(r.b, r.interior)
	r.haloFinish(&ov)
	kernel(r.b, r.rim)
}
