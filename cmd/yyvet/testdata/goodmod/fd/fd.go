// Package fd is the known-clean smoke fixture: hot package name, but
// padded dimensions and tolerated comparisons only.
package fd

import "math"

func paddedColumn() []float64 {
	return make([]float64, 257)
}

func approxEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}
