// Package mhd is the known-good smoke fixture for det-purity: the one
// map iteration sorts its keys before anything order-dependent happens,
// and says so in a justified suppression (which the ignore-audit must
// accept as live, not stale).
package mhd

import "sort"

// SortedSum folds map values in ascending key order.
func SortedSum(m map[int]float64) float64 {
	keys := make([]int, 0, len(m))
	//yyvet:ignore det-purity keys are sorted below before any order-dependent use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var s float64
	for _, k := range keys {
		s += m[k]
	}
	return s
}
