// Package mpi is the known-good smoke fixture: the free-list handles
// are released on every path, including through a wrapper whose release
// the summary pass has to discover.
package mpi

// Comm mimics the point-to-point surface.
type Comm struct{}

// Send mimics the tagged send.
func (c *Comm) Send(dst, tag int, data []float64) {}

// Recv mimics the tagged receive.
func (c *Comm) Recv(src, tag int, buf []float64) int { return 0 }

type context struct{ pool [][]float64 }

func (ctx *context) getBuf(n int) []float64 { return make([]float64, n) }

func (ctx *context) putBuf(b []float64) { ctx.pool = append(ctx.pool, b) }

// release is a wrapper; callers releasing through it are clean only if
// the callee-first summary pass sees through the indirection.
func release(ctx *context, b []float64) {
	ctx.putBuf(b)
}

func roundTripDirect(ctx *context) {
	b := ctx.getBuf(8)
	b[0] = 1
	ctx.putBuf(b)
}

func roundTripViaWrapper(ctx *context) float64 {
	b := ctx.getBuf(8)
	v := b[0]
	release(ctx, b)
	return v
}

func handoff(ctx *context, sink chan []float64) {
	b := ctx.getBuf(8)
	sink <- b // ownership transferred; not a leak
}
