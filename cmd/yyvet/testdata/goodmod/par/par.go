// Package par is the known-good smoke fixture for pool-disjoint: every
// closure write is indexed by the tile range, including the per-tile
// partial reduction shape.
package par

// Pool mimics the worker pool.
type Pool struct{}

// For mimics the tiled parallel-for.
func (p *Pool) For(n int, fn func(lo, hi int)) { fn(0, n) }

// Fill writes only tile-owned elements.
func Fill(p *Pool, out []float64) {
	p.For(len(out), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = 1
		}
	})
}

// Sum reduces with per-tile partials combined in tile order.
func Sum(p *Pool, xs []float64) float64 {
	partials := make([]float64, len(xs))
	p.For(len(xs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			partials[i] = xs[i] * xs[i]
		}
	})
	var s float64
	for _, v := range partials {
		s += v
	}
	return s
}
