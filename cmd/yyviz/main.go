// Command yyviz regenerates the paper's figures: the Yin-Yang grid
// coverage of Fig. 1 and the columnar convection structure of Fig. 2,
// written as PPM images plus a textual summary.
//
// Examples:
//
//	yyviz -fig 1 -out fig1.ppm
//	yyviz -fig 2 -out fig2 -nr 21 -nt 21 -steps 150
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/grid"
	"repro/internal/viz"
)

func main() {
	var (
		fig   = flag.Int("fig", 1, "figure to regenerate: 1 or 2")
		out   = flag.String("out", "fig", "output path (fig 1) or prefix (fig 2)")
		nr    = flag.Int("nr", 17, "radial nodes (fig 2)")
		nt    = flag.Int("nt", 17, "latitudinal nodes (fig 2)")
		steps = flag.Int("steps", 80, "spin-up steps (fig 2)")
		pix   = flag.Int("pix", 256, "image size in pixels")
	)
	flag.Parse()

	switch *fig {
	case 1:
		im := viz.CoverageMap(*pix/2, *pix)
		frac := viz.OverlapPixelFraction(im)
		fmt.Printf("Fig 1: Yin-Yang coverage map; overlap fraction %.4f (analytic %.4f, paper: about 6%%)\n",
			frac, grid.OverlapFraction())
		writePPM(*out, im)
	case 2:
		res, err := bench.RunFig2(*nr, *nt, *steps, *pix)
		if err != nil {
			fail(err)
		}
		fmt.Printf("Fig 2: %d steps, kinetic energy %.4g\n", res.Steps, res.KineticEnergy)
		fmt.Printf("  convection columns in the equatorial plane: %d cyclonic, %d anti-cyclonic\n",
			res.Cyclonic, res.Anticyclonic)
		writePPM(*out+"-vortz.ppm", res.VortSlice)
		writePPM(*out+"-temperature.ppm", res.TempSlice)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func writePPM(path string, im *viz.Image) {
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	if err := viz.WritePPM(f, im); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s (%dx%d)\n", path, im.W, im.H)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "yyviz:", err)
	os.Exit(1)
}
