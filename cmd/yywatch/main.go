// Command yywatch is the terminal client of the live telemetry plane a
// running campaign serves (yycore -telemetry): it tails /progress into
// one-line status updates, streams the /events fault timeline, dumps or
// sanity-checks the /metrics Prometheus exposition, and can assert that
// a given anomaly rule fired (the teeth of the CI telemetry smoke).
//
// Usage:
//
//	yywatch -addr host:port                # follow progress until the run is done
//	yywatch -addr host:port -once          # one progress line, then exit
//	yywatch -addr host:port -events        # stream the event timeline instead
//	yywatch -addr host:port -metrics       # dump the /metrics exposition
//	yywatch -addr host:port -check         # parse-validate the exposition, print a summary
//	yywatch -addr host:port -expect-alert rank-dead   # exit 1 unless the rule fired
//
// -addr-file reads the address from a file yycore -telemetry-addr-file
// wrote (racing the server start is fine: the read retries until
// -timeout). Exit status: 0 ok/done, 1 a -expect-alert assertion
// failed, 2 the scrape itself failed.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("yywatch", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		addr     = fs.String("addr", "", "telemetry address (host:port) of a yycore -telemetry run")
		addrFile = fs.String("addr-file", "", "read the telemetry address from this file (yycore -telemetry-addr-file)")
		interval = fs.Duration("interval", time.Second, "progress poll interval")
		timeout  = fs.Duration("timeout", 2*time.Minute, "give up after this long")
		once     = fs.Bool("once", false, "print one progress line and exit")
		events   = fs.Bool("events", false, "stream the /events timeline instead of progress")
		metrics  = fs.Bool("metrics", false, "dump the raw /metrics exposition and exit")
		check    = fs.Bool("check", false, "fetch /metrics and /progress, validate both parse, print a summary")
		expect   = fs.String("expect-alert", "", "comma-separated anomaly rules that must have fired (exit 1 otherwise)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	deadline := time.Now().Add(*timeout)
	base, err := resolveAddr(*addr, *addrFile, deadline)
	if err != nil {
		fmt.Fprintln(errOut, "yywatch:", err)
		return 2
	}

	switch {
	case *metrics:
		body, err := get(base + "/metrics")
		if err != nil {
			fmt.Fprintln(errOut, "yywatch:", err)
			return 2
		}
		fmt.Fprint(out, string(body))
		return 0
	case *check || *expect != "":
		return checkPlane(base, *expect, out, errOut)
	case *events:
		if err := streamEvents(base, deadline, out); err != nil {
			fmt.Fprintln(errOut, "yywatch:", err)
			return 2
		}
		return 0
	}

	// Progress mode: poll /progress, render one line per change, stop
	// at done (or immediately under -once).
	var last string
	for {
		info, err := progress(base)
		if err != nil {
			fmt.Fprintln(errOut, "yywatch:", err)
			return 2
		}
		if line := progressLine(info); line != last {
			fmt.Fprintln(out, line)
			last = line
		}
		if *once || info.Done {
			return 0
		}
		if time.Now().After(deadline) {
			fmt.Fprintln(errOut, "yywatch: timed out before the run finished")
			return 2
		}
		time.Sleep(*interval)
	}
}

// resolveAddr picks the telemetry base URL from -addr or -addr-file,
// retrying a missing/empty address file until the deadline (the file
// race: yywatch often starts before yycore has bound its port).
func resolveAddr(addr, addrFile string, deadline time.Time) (string, error) {
	if addr == "" && addrFile == "" {
		return "", fmt.Errorf("need -addr or -addr-file")
	}
	if addr == "" {
		for {
			raw, err := os.ReadFile(addrFile)
			if err == nil && len(strings.TrimSpace(string(raw))) > 0 {
				addr = strings.TrimSpace(string(raw))
				break
			}
			if time.Now().After(deadline) {
				return "", fmt.Errorf("no address appeared in %s", addrFile)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	addr = strings.TrimPrefix(addr, "http://")
	return "http://" + addr, nil
}

func get(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	return body, nil
}

func progress(base string) (telemetry.ProgressInfo, error) {
	var info telemetry.ProgressInfo
	body, err := get(base + "/progress")
	if err != nil {
		return info, err
	}
	if err := json.Unmarshal(body, &info); err != nil {
		return info, fmt.Errorf("/progress JSON: %w", err)
	}
	return info, nil
}

func progressLine(info telemetry.ProgressInfo) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: step %d/%d", info.Run, info.CommittedStep, info.TotalSteps)
	if info.LiveStep > info.CommittedStep {
		fmt.Fprintf(&b, " (live %d)", info.LiveStep)
	}
	fmt.Fprintf(&b, " seg %d", info.Segment)
	if info.Retries > 0 {
		fmt.Fprintf(&b, " retries %d", info.Retries)
	}
	if info.RateStepsPerSec > 0 {
		fmt.Fprintf(&b, " %.1f steps/s", info.RateStepsPerSec)
		if info.ETASec > 0 {
			fmt.Fprintf(&b, " eta %s", (time.Duration(info.ETASec * float64(time.Second))).Round(time.Second))
		}
	}
	if info.Alerts > 0 {
		fmt.Fprintf(&b, " ALERTS %d", info.Alerts)
	}
	if info.Done {
		b.WriteString(" done")
	}
	return b.String()
}

// checkPlane is the CI smoke: both endpoints must parse, and every
// -expect-alert rule must appear with a nonzero yy_alerts_total count.
func checkPlane(base, expect string, out, errOut io.Writer) int {
	body, err := get(base + "/metrics")
	if err != nil {
		fmt.Fprintln(errOut, "yywatch:", err)
		return 2
	}
	families, samples, alerts, err := parseExposition(strings.NewReader(string(body)))
	if err != nil {
		fmt.Fprintln(errOut, "yywatch: /metrics exposition:", err)
		return 2
	}
	info, err := progress(base)
	if err != nil {
		fmt.Fprintln(errOut, "yywatch:", err)
		return 2
	}
	fmt.Fprintf(out, "ok: %d metric families, %d samples; run %s at step %d/%d, %d alert rule(s) fired\n",
		families, samples, info.Run, info.CommittedStep, info.TotalSteps, len(alerts))
	code := 0
	if expect != "" {
		for _, rule := range strings.Split(expect, ",") {
			rule = strings.TrimSpace(rule)
			if alerts[rule] > 0 {
				fmt.Fprintf(out, "alert fired: %s (count %d)\n", rule, alerts[rule])
				continue
			}
			fmt.Fprintf(errOut, "yywatch: expected alert %q never fired\n", rule)
			code = 1
		}
	}
	return code
}

// parseExposition walks a Prometheus text-format (0.0.4) document,
// counting HELP/TYPE families and samples and collecting
// yy_alerts_total{rule=...} counts. Malformed lines are errors: the
// smoke exists to catch a writer regression, not to forgive one.
func parseExposition(r io.Reader) (families, samples int, alerts map[string]int, err error) {
	alerts = map[string]int{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	typed := map[string]bool{}
	for n := 1; sc.Scan(); n++ {
		line := sc.Text()
		switch {
		case line == "":
		case strings.HasPrefix(line, "# HELP "):
		case strings.HasPrefix(line, "# TYPE "):
			f := strings.Fields(line)
			if len(f) != 4 {
				return 0, 0, nil, fmt.Errorf("line %d: malformed TYPE: %q", n, line)
			}
			typed[f[2]] = true
			families++
		case strings.HasPrefix(line, "#"):
		default:
			name, labels, value, perr := parseSample(line)
			if perr != nil {
				return 0, 0, nil, fmt.Errorf("line %d: %v", n, perr)
			}
			if !typed[name] {
				return 0, 0, nil, fmt.Errorf("line %d: sample %s has no preceding TYPE", n, name)
			}
			samples++
			if name == "yy_alerts_total" {
				alerts[labels["rule"]] = int(value)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return 0, 0, nil, err
	}
	if families == 0 {
		return 0, 0, nil, fmt.Errorf("no metric families in the document")
	}
	return families, samples, alerts, nil
}

// parseSample splits one `name{k="v",...} value` exposition line.
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	labels = map[string]string{}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample: %q", line)
	} else {
		name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return "", nil, 0, fmt.Errorf("unterminated label set: %q", line)
		}
		for _, pair := range splitLabels(rest[1:end]) {
			k, v, ok := strings.Cut(pair, "=")
			if !ok || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				return "", nil, 0, fmt.Errorf("malformed label %q in %q", pair, line)
			}
			labels[k] = strings.NewReplacer(`\"`, `"`, `\\`, `\`, `\n`, "\n").Replace(v[1 : len(v)-1])
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	if _, err := fmt.Sscanf(rest, "%g", &value); err != nil {
		return "", nil, 0, fmt.Errorf("malformed value %q in %q", rest, line)
	}
	return name, labels, value, nil
}

// splitLabels splits a label body on commas outside quoted values.
func splitLabels(s string) []string {
	var out []string
	var cur strings.Builder
	inQuote, escaped := false, false
	for _, r := range s {
		switch {
		case escaped:
			escaped = false
			cur.WriteRune(r)
		case r == '\\':
			escaped = true
			cur.WriteRune(r)
		case r == '"':
			inQuote = !inQuote
			cur.WriteRune(r)
		case r == ',' && !inQuote:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteRune(r)
		}
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

// streamEvents tails the SSE /events stream, printing one line per
// event, until the stream closes or the deadline passes.
func streamEvents(base string, deadline time.Time, out io.Writer) error {
	req, err := http.NewRequest(http.MethodGet, base+"/events", nil)
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: time.Until(deadline)}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s/events: %s", base, resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var id, kind string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			id = line[len("id: "):]
		case strings.HasPrefix(line, "event: "):
			kind = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			fmt.Fprintf(out, "%6s %-18s %s\n", id, kind, line[len("data: "):])
		}
	}
	// A cut stream (server closed after the run) is a normal ending.
	if err := sc.Err(); err != nil && !strings.Contains(err.Error(), "closed") {
		return err
	}
	return nil
}
