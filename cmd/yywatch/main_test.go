package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/telemetry"
)

// servePlane stands up a real telemetry plane for the client to watch:
// two ranks, a latched span-drops alert, a finished run.
func servePlane(t *testing.T) string {
	t.Helper()
	p := telemetry.New(telemetry.Config{Interval: 50 * time.Millisecond})
	events := mpi.NewEventLog()
	p.Attach(telemetry.Campaign{Run: "watchtest", TotalSteps: 40, Events: events})
	p.Rank(0).Publish(telemetry.Snapshot{Step: 40, DT: 0.5, SpanDropped: 3})
	p.Rank(1).Publish(telemetry.Snapshot{Step: 40, DT: 0.5})
	p.Finish(40)
	addr, err := p.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return addr
}

func runWatch(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut strings.Builder
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

// TestWatchOnce: one progress line, exit 0.
func TestWatchOnce(t *testing.T) {
	addr := servePlane(t)
	code, out, errOut := runWatch(t, "-addr", addr, "-once")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"watchtest", "step 40/40", "done"} {
		if !strings.Contains(out, want) {
			t.Errorf("progress line %q lacks %q", out, want)
		}
	}
}

// TestWatchFollowUntilDone: the default mode returns once /progress
// reports done.
func TestWatchFollowUntilDone(t *testing.T) {
	addr := servePlane(t)
	code, out, errOut := runWatch(t, "-addr", addr, "-interval", "10ms", "-timeout", "5s")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "done") {
		t.Fatalf("follow never reported done: %q", out)
	}
}

// TestWatchMetricsDump: -metrics relays the raw exposition.
func TestWatchMetricsDump(t *testing.T) {
	addr := servePlane(t)
	code, out, _ := runWatch(t, "-addr", addr, "-metrics")
	if code != 0 || !strings.Contains(out, "yy_progress_total_steps 40") {
		t.Fatalf("exit %d out %q", code, out)
	}
}

// TestWatchCheckAndExpectAlert: -check validates both endpoints;
// -expect-alert is satisfied by the latched span-drops alert and
// fails on a rule that never fired.
func TestWatchCheckAndExpectAlert(t *testing.T) {
	addr := servePlane(t)
	code, out, errOut := runWatch(t, "-addr", addr, "-check")
	if code != 0 {
		t.Fatalf("check: exit %d, stderr %s", code, errOut)
	}
	if !strings.Contains(out, "metric families") {
		t.Fatalf("check summary: %q", out)
	}
	code, out, _ = runWatch(t, "-addr", addr, "-expect-alert", "span-drops")
	if code != 0 || !strings.Contains(out, "alert fired: span-drops") {
		t.Fatalf("expected alert: exit %d out %q", code, out)
	}
	code, _, errOut = runWatch(t, "-addr", addr, "-expect-alert", "rank-dead")
	if code != 1 || !strings.Contains(errOut, "rank-dead") {
		t.Fatalf("missing alert: exit %d stderr %q", code, errOut)
	}
}

// TestWatchAddrFile: the address is read (with retries) from the file
// yycore -telemetry-addr-file writes.
func TestWatchAddrFile(t *testing.T) {
	addr := servePlane(t)
	file := filepath.Join(t.TempDir(), "addr")
	if err := os.WriteFile(file, []byte(addr+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := runWatch(t, "-addr-file", file, "-once")
	if code != 0 || !strings.Contains(out, "watchtest") {
		t.Fatalf("exit %d out %q stderr %q", code, out, errOut)
	}
}

// TestWatchBadInvocations: missing address and unreachable server are
// harness errors (exit 2), not silent successes.
func TestWatchBadInvocations(t *testing.T) {
	if code, _, _ := runWatch(t, "-once"); code != 2 {
		t.Fatalf("no addr: exit %d", code)
	}
	if code, _, _ := runWatch(t, "-addr", "127.0.0.1:1", "-once", "-timeout", "1s"); code != 2 {
		t.Fatalf("unreachable: exit %d", code)
	}
}

// TestParseExposition: the validating parser accepts the plane's own
// output shape and rejects malformed documents.
func TestParseExposition(t *testing.T) {
	good := "# HELP yy_x helps\n# TYPE yy_x gauge\nyy_x 1\n" +
		"# HELP yy_alerts_total a\n# TYPE yy_alerts_total counter\n" +
		"yy_alerts_total{rule=\"span-drops\"} 3\n"
	families, samples, alerts, err := parseExposition(strings.NewReader(good))
	if err != nil || families != 2 || samples != 2 || alerts["span-drops"] != 3 {
		t.Fatalf("good doc: fam=%d samp=%d alerts=%v err=%v", families, samples, alerts, err)
	}
	for name, bad := range map[string]string{
		"empty":       "",
		"untyped":     "yy_x 1\n",
		"no value":    "# TYPE yy_x gauge\nyy_x\n",
		"bad value":   "# TYPE yy_x gauge\nyy_x pancake\n",
		"open labels": "# TYPE yy_x gauge\nyy_x{rule=\"a\" 1\n",
		"short TYPE":  "# TYPE yy_x\nyy_x 1\n",
	} {
		if _, _, _, err := parseExposition(strings.NewReader(bad)); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
}

// TestParseSampleLabels: escaped quotes and commas inside label values
// survive the split.
func TestParseSampleLabels(t *testing.T) {
	name, labels, v, err := parseSample(`yy_x{a="x,y",b="q\"z"} 2.5`)
	if err != nil {
		t.Fatal(err)
	}
	if name != "yy_x" || labels["a"] != "x,y" || labels["b"] != `q"z` || v != 2.5 {
		t.Fatalf("parsed %s %v %v", name, labels, v)
	}
}
