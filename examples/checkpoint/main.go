// Checkpoint: demonstrates the restart workflow of long geodynamo
// campaigns (the paper's production runs spanned many six-hour windows).
// The example runs a simulation, checkpoints it mid-flight, continues
// both the original and a restored copy, and verifies they remain
// bit-identical — a restart is invisible to the physics.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	sim, err := core.New(core.Config{Nr: 13, Nt: 13})
	if err != nil {
		log.Fatal(err)
	}
	if err := sim.Step(20); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran to t=%.5f; checkpointing\n", sim.Time())

	var ckpt bytes.Buffer
	if err := sim.WriteCheckpoint(&ckpt); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint: %d bytes (%d fields x 2 panels, interior-only, CRC-verified)\n",
		ckpt.Len(), 8)

	restored, err := core.Restore(bytes.NewReader(ckpt.Bytes()))
	if err != nil {
		log.Fatal(err)
	}

	// Continue both with the same fixed step.
	const dt = 2e-3
	for n := 0; n < 15; n++ {
		sim.Solver.Advance(dt)
		restored.Solver.Advance(dt)
	}

	// Compare the interiors: checkpoints carry only interior nodes (the
	// padded rim is rebuilt from them on restore), so that is the
	// physically meaningful state a restart must preserve exactly.
	diffs := 0
	for pi := range sim.Solver.Panels {
		a := sim.Solver.Panels[pi].U.Scalars()
		b := restored.Solver.Panels[pi].U.Scalars()
		for vi := range a {
			bs := b[vi]
			a[vi].EachInteriorRow(func(i0 int, row []float64) {
				for off := range row {
					//yyvet:ignore float-eq the demo asserts bit-exact restart: any ULP difference must count
					if row[off] != bs.Data[i0+off] {
						diffs++
					}
				}
			})
		}
	}
	if diffs != 0 {
		log.Fatalf("after 15 more steps on both: %d differing interior values — restart is NOT bit-exact", diffs)
	}
	fmt.Printf("after 15 more steps on both: %d differing values (restart is bit-exact)\n", diffs)
	fmt.Println(sim.Diagnostics())

	// A section-V style visualization export from the running state.
	var viz bytes.Buffer
	if err := sim.ExportViz(&viz, 2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("viz export (Cartesian B, v, omega, T; 2x2 subsampled): %d bytes\n", viz.Len())
}
