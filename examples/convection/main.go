// Convection: the workload of the paper's Fig. 2. Runs rotating thermal
// convection (no magnetic seed) until columnar cells organize, then
// extracts the equatorial-plane structure: a vorticity slice with
// cyclonic/anti-cyclonic column counts, and a temperature slice, both
// written as PPM images.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/coords"
	"repro/internal/core"
	"repro/internal/mhd"
	"repro/internal/viz"
)

func main() {
	var (
		nr    = flag.Int("nr", 21, "radial nodes")
		nt    = flag.Int("nt", 21, "latitudinal nodes")
		steps = flag.Int("steps", 150, "spin-up steps")
		out   = flag.String("out", "convection", "output image prefix")
	)
	flag.Parse()

	prm := mhd.Default()
	ic := mhd.DefaultIC()
	ic.SeedBAmp = 0 // pure hydrodynamic convection
	sim, err := core.New(core.Config{Nr: *nr, Nt: *nt, Params: &prm, IC: &ic})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("convection: Ra~%.3g Ekman~%.3g, %d steps\n",
		prm.RayleighEstimate(0.65), prm.Ekman(0.65), *steps)

	for done := 0; done < *steps; done += 10 {
		if err := sim.Step(10); err != nil {
			log.Fatal(err)
		}
		d := sim.Diagnostics()
		fmt.Printf("step %4d  t=%.4f  Ek=%.4g  maxV=%.3g\n", d.Step, d.Time, d.KineticE, d.MaxV)
	}

	s := sim.Sampler()
	vort := viz.EquatorialSlice(s, viz.VortZ, 256)
	cyc, anti := viz.CountColumns(vort, 0.1)
	fmt.Printf("equatorial convection columns: %d cyclonic, %d anti-cyclonic (Fig. 2c)\n", cyc, anti)

	write(*out+"-vortz.ppm", vort)
	write(*out+"-temperature.ppm", viz.EquatorialSlice(s, viz.Temperature, 256))

	// Streamlines (Fig. 2b style): trace particles seeded on two rings.
	tr := viz.NewTracer(s)
	var paths [][]coords.Cartesian
	dtTrace := 0.02 / (1e-6 + sim.Diagnostics().MaxV)
	for _, ring := range []float64{0.5, 0.75} {
		for _, p0 := range viz.SeedEquatorialRing(ring, 12) {
			paths = append(paths, tr.Path(p0, dtTrace, 300))
		}
	}
	write(*out+"-streamlines.ppm", viz.DrawPathsEquatorial(s, paths, 256))
}

func write(path string, im *viz.Image) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := viz.WritePPM(f, im); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote", path)
}
