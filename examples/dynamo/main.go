// Dynamo: the paper's section-V experiment at laptop scale. Follows the
// time development of the MHD system from an infinitesimal magnetic seed
// and a random temperature perturbation, printing the kinetic and
// magnetic energy series and the dipole moment — the quantities whose
// growth toward a saturated, balanced level section V describes.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/mhd"
	"repro/internal/sph"
)

func main() {
	var (
		nr    = flag.Int("nr", 17, "radial nodes")
		nt    = flag.Int("nt", 17, "latitudinal nodes")
		steps = flag.Int("steps", 200, "steps to run")
		batch = flag.Int("batch", 20, "diagnostics batch")
	)
	flag.Parse()

	ic := mhd.DefaultIC()
	ic.SeedBAmp = 1e-3
	sim, err := core.New(core.Config{Nr: *nr, Nt: *nt, IC: &ic})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("step,time,kineticE,magneticE,dipole,tiltDeg")
	report := func() {
		d := sim.Diagnostics()
		m := sph.MagneticMoment(sim.Solver)
		coeffs := sph.AnalyzeSurface(sim.Solver, func(pl *mhd.Panel, j, k int) float64 {
			// Radial field just below the outer wall.
			return pl.B.R.At(pl.Patch.H+pl.Patch.Nr-2, j, k)
		})
		fmt.Printf("%d,%.5g,%.5g,%.5g,%.5g,%.1f\n",
			d.Step, d.Time, d.KineticE, d.MagneticE,
			sph.MomentMagnitude(m), coeffs.DipoleTiltDeg())
	}
	report()
	for done := 0; done < *steps; done += *batch {
		if err := sim.Step(*batch); err != nil {
			log.Fatal(err)
		}
		report()
	}

	hist := sim.History()
	if len(hist) > 3 {
		rate := bench.GrowthRate(hist, func(d mhd.Diagnostics) float64 { return d.KineticE },
			1, len(hist)-1)
		fmt.Printf("# kinetic energy growth rate over the run: %.4g /time\n", rate)
	}
}
