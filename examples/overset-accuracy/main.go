// Overset-accuracy: a numerical study of the Yin-Yang machinery itself.
// Solves the same surface advection-diffusion problem on the traditional
// lat-lon grid and on the Yin-Yang pair, comparing accuracy against the
// analytic solution at several resolutions, and reports the stable
// time-step advantage of the pole-free patches — the quantitative form of
// the paper's motivation (section II).
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/coords"
	"repro/internal/latlon"
)

func main() {
	const kappa = 0.02
	const tEnd = 0.5

	fmt.Println("Surface diffusion of the dipole harmonic Y10 (exact decay exp(-2 kappa t)):")
	fmt.Printf("%-8s %-14s %-14s %-12s %-12s\n", "nt", "latlon err", "yinyang err", "latlon dt", "yinyang dt")
	for _, nt := range []int{16, 32, 64} {
		llErr, llDt := runLatLon(nt, kappa, tEnd)
		yyErr, yyDt := runYinYang(nt/2+1, kappa, tEnd)
		fmt.Printf("%-8d %-14.3e %-14.3e %-12.3e %-12.3e\n", nt, llErr, yyErr, llDt, yyDt)
	}

	fmt.Println()
	fmt.Println("Stable time-step ratio (Yin-Yang / lat-lon) with advection, growing with resolution:")
	for _, nt := range []int{32, 64, 128, 256} {
		g, err := latlon.NewSurfaceGrid(nt, 2*nt)
		if err != nil {
			log.Fatal(err)
		}
		yy, err := latlon.NewYYSurface(nt/2+1, kappa, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  nt=%-4d ratio=%.1f\n", nt, yy.MaxStableDt(kappa, 1)/g.MaxStableDt(kappa, 1))
	}
}

func runLatLon(nt int, kappa, tEnd float64) (maxErr, dt float64) {
	g, err := latlon.NewSurfaceGrid(nt, 2*nt)
	if err != nil {
		log.Fatal(err)
	}
	s := latlon.NewHeatSolver(g, kappa, 0)
	s.SetFromFunc(func(th, ph float64) float64 { return math.Cos(th) })
	dt = g.MaxStableDt(kappa, 0) * 0.5
	steps := int(math.Ceil(tEnd / dt))
	dt = tEnd / float64(steps)
	for n := 0; n < steps; n++ {
		s.Step(dt)
	}
	decay := math.Exp(-2 * kappa * tEnd)
	for j := 0; j < g.Nt; j++ {
		for k := 0; k < g.Np; k++ {
			want := math.Cos(g.Theta[j]) * decay
			if e := math.Abs(s.F[j*g.Np+k] - want); e > maxErr {
				maxErr = e
			}
		}
	}
	return maxErr, dt
}

func runYinYang(nt int, kappa, tEnd float64) (maxErr, dt float64) {
	yy, err := latlon.NewYYSurface(nt, kappa, 0)
	if err != nil {
		log.Fatal(err)
	}
	yy.SetFromGlobalFunc(func(c coords.Cartesian) float64 { return c.Z })
	dt = yy.MaxStableDt(kappa, 0) * 0.5
	steps := int(math.Ceil(tEnd / dt))
	dt = tEnd / float64(steps)
	for n := 0; n < steps; n++ {
		yy.Step(dt)
	}
	decay := math.Exp(-2 * kappa * tEnd)
	for _, pt := range [][2]float64{
		{0.3, 0.1}, {0.8, 1.2}, {1.5, -2.5}, {2.1, 3.0}, {2.8, 0.0}, {1.0, -0.5},
	} {
		want := math.Cos(pt[0]) * decay
		if e := math.Abs(yy.SampleAt(pt[0], pt[1]) - want); e > maxErr {
			maxErr = e
		}
	}
	return maxErr, dt
}
