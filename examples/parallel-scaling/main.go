// Parallel-scaling: measures the strong scaling of THIS implementation —
// the goroutine-rank decomposed solver on the host machine — next to the
// Earth Simulator model's prediction for the same decomposition
// structure. The Go runtime is not a vector supercomputer, but the same
// effects appear: throughput grows with ranks until the per-rank blocks
// are too small and communication/synchronization dominates.
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"

	"repro/internal/decomp"
	"repro/internal/grid"
	"repro/internal/mhd"
	"repro/internal/mpi"
)

func main() {
	var (
		nr    = flag.Int("nr", 21, "radial nodes")
		nt    = flag.Int("nt", 21, "latitudinal nodes")
		steps = flag.Int("steps", 10, "steps per measurement")
	)
	flag.Parse()

	spec := grid.NewSpec(*nr, *nt)
	points := float64(spec.TotalPoints())
	fmt.Printf("strong scaling, grid %d x %d x %d x 2 = %.3g points, %d host cores\n",
		spec.Nr, spec.Nt, spec.Np, points, runtime.NumCPU())
	fmt.Printf("%-8s %-12s %-14s %-10s\n", "ranks", "s/step", "Mpoints/s", "speedup")

	var base float64
	haveBase := false
	for _, nProcs := range []int{2, 4, 8, 16} {
		layout, err := decomp.NewLayout(spec, nProcs)
		if err != nil {
			fmt.Printf("%-8d (does not tile: %v)\n", nProcs, err)
			continue
		}
		start := time.Now()
		err = mpi.Run(nProcs, func(w *mpi.Comm) {
			r, err := decomp.NewRank(w, layout, mhd.Default(), mhd.DefaultIC())
			if err != nil {
				log.Fatal(err)
			}
			dt := r.EstimateDT(0.3)
			for n := 0; n < *steps; n++ {
				r.Advance(dt)
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		perStep := time.Since(start).Seconds() / float64(*steps)
		rate := points / perStep / 1e6
		if !haveBase {
			base = perStep
			haveBase = true
		}
		fmt.Printf("%-8d %-12.4f %-14.2f %-10.2f\n", nProcs, perStep, rate, base/perStep)
	}
}
