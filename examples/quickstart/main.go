// Quickstart: the smallest complete yygo run. Builds a laptop-sized
// Yin-Yang geodynamo simulation with default parameters, advances it,
// and prints the global diagnostics — total mass, kinetic / magnetic /
// internal energy, peak speeds — after each batch of steps.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	sim, err := core.New(core.Config{Nr: 17, Nt: 17})
	if err != nil {
		log.Fatal(err)
	}
	spec := sim.Cfg.Spec()
	fmt.Printf("quickstart: Yin-Yang grid %d x %d x %d x 2 (%d points)\n",
		spec.Nr, spec.Nt, spec.Np, spec.TotalPoints())

	for batch := 0; batch < 5; batch++ {
		if err := sim.Step(10); err != nil {
			log.Fatal(err)
		}
		fmt.Println(sim.Diagnostics())
	}

	// The two component grids hold a "double solution" in their overlap;
	// the paper notes it stays within discretization error.
	fmt.Printf("double-solution disagreement in the overlap: %.2e (relative)\n",
		sim.OverlapDisagreement())
}
