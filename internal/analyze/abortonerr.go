package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AbortOnErr reports rank functions (func literals passed to mpi.Run /
// mpi.RunWith) that capture an error into a variable shared with the
// driver and then keep running.
//
// Paper provenance: every rank of the goroutine runtime participates in
// collectives and paired sends/receives. A rank that stores its error
// into a captured variable and carries on either computes with a broken
// state or — worse — stops sending while its peers stay blocked in
// Recv, turning one rank's failure into a whole-run wedge. The capture
// must be followed on the same path by `return` or, better, by
// Comm.Abort(err), which wakes every waiter with the cause.
var AbortOnErr = &Analyzer{
	Name: "abort-on-err",
	Doc: "an error captured into a shared variable inside an mpi.Run rank " +
		"function must be followed by return or Comm.Abort on the same path; " +
		"a rank that keeps running after recording its failure wedges its peers",
	Run: runAbortOnErr,
}

func runAbortOnErr(pass *Pass) error {
	for _, file := range pass.Files {
		inspectWithParents(file, func(n ast.Node, parents []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name := calleeName(call); name != "Run" && name != "RunWith" {
				return true
			}
			for _, arg := range call.Args {
				if fl, ok := arg.(*ast.FuncLit); ok && isRankFn(pass, fl) {
					checkRankFn(pass, fl)
				}
			}
			return true
		})
	}
	return nil
}

// calleeName returns the bare name of the called function ("Run" for
// both mpi.Run and a dot-imported or fixture-local Run).
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// isRankFn recognizes the rank-function shape: exactly one parameter
// whose type is a pointer to a named type with an Abort method (i.e.
// *mpi.Comm or a fixture equivalent).
func isRankFn(pass *Pass, fl *ast.FuncLit) bool {
	tv, ok := pass.TypesInfo.Types[fl]
	if !ok {
		return false
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok || sig.Params().Len() != 1 {
		return false
	}
	ptr, ok := sig.Params().At(0).Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == "Abort" {
			return true
		}
	}
	return false
}

// checkRankFn inspects one rank function body for shared-error captures
// whose path does not terminate.
func checkRankFn(pass *Pass, rankFn *ast.FuncLit) {
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	inspectWithParents(rankFn.Body, func(n ast.Node, parents []ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || assign.Tok != token.ASSIGN {
			return true
		}
		for _, lhs := range assign.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil {
				continue
			}
			v, ok := obj.(*types.Var)
			if !ok || !types.Implements(v.Type(), errType) {
				continue
			}
			// Captured: declared outside the rank function's body.
			if v.Pos() >= rankFn.Body.Pos() && v.Pos() <= rankFn.Body.End() {
				continue
			}
			if !pathTerminates(assign, parents) {
				pass.Reportf(assign.Pos(),
					"error captured into shared variable %s is not followed by return or Abort on this path; the rank keeps running and its peers can wedge", id.Name)
			}
		}
		return true
	})
}

// pathTerminates walks outward from the capturing assignment: at each
// enclosing statement list it scans the statements after the current
// position for a terminator. Reaching a for/range ancestor without one
// means the rank loops on; reaching the rank function's end is the
// implicit return, acceptable only if nothing but terminators and
// block exits stood between the capture and it.
func pathTerminates(assign ast.Stmt, parents []ast.Node) bool {
	sawFollowing := false
	scan := func(list []ast.Stmt, cur ast.Stmt) (done, ok bool) {
		idx := -1
		for i, s := range list {
			if s == cur {
				idx = i
				break
			}
		}
		if idx < 0 {
			return false, false
		}
		for _, s := range list[idx+1:] {
			if isTerminator(s) {
				return true, true
			}
			sawFollowing = true
		}
		return false, false
	}
	var cur ast.Stmt = assign
	for i := len(parents) - 1; i >= 0; i-- {
		switch p := parents[i].(type) {
		case *ast.BlockStmt:
			if done, ok := scan(p.List, cur); done {
				return ok
			}
		case *ast.CaseClause:
			if done, ok := scan(p.Body, cur); done {
				return ok
			}
		case *ast.CommClause:
			if done, ok := scan(p.Body, cur); done {
				return ok
			}
		case *ast.ForStmt, *ast.RangeStmt:
			return false
		case *ast.FuncLit:
			// A nested closure's control flow is its caller's business;
			// stay quiet rather than guess. (rankFn itself is the walk
			// root and never appears in the parent stack.)
			return true
		}
		if s, ok := parents[i].(ast.Stmt); ok {
			cur = s
		}
	}
	// Fell off the rank function's body: the implicit return, fine only
	// when the capture sat in tail position.
	return !sawFollowing
}

// isTerminator reports whether s ends the current path: return, break,
// goto, panic, Comm.Abort, or a fatal exit.
func isTerminator(s ast.Stmt) bool {
	switch st := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return st.Tok == token.BREAK || st.Tok == token.GOTO
	case *ast.ExprStmt:
		call, ok := st.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			return fun.Name == "panic"
		case *ast.SelectorExpr:
			switch fun.Sel.Name {
			case "Abort", "Exit", "Goexit", "Fatal", "Fatalf":
				return true
			}
		}
	}
	return false
}
