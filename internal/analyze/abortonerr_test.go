package analyze

import "testing"

// TestAbortOnErr runs the analyzer over its fixture: captures that fall
// through to more rank work or loop on are true positives; captures
// followed by return, Abort or break, tail-position captures, local
// error variables, non-rank callbacks and suppressed sites are clean.
func TestAbortOnErr(t *testing.T) {
	runFixture(t, "abortonerr", AbortOnErr)
}
