// Package analyze is a static-analysis framework for this module, built
// only on the standard library's go/ast, go/parser, go/token and
// go/types. It exists because the solver's correctness and Earth
// Simulator performance rest on invariants the Go compiler cannot check:
// every posted mpi.Irecv must be completed with Wait before its halo
// buffer is read, hot-loop array dimensions must avoid the power-of-two
// strides that trigger memory-bank conflicts (modeled in internal/es),
// floating-point values must not be compared with == outside designated
// tolerance helpers, message tags must stay inside their allocated
// spaces, and recycled payload buffers must never be touched after
// release.
//
// Two analyzer shapes exist. Per-package analyzers (Run) see one
// type-checked package at a time and walk its ASTs. Interprocedural
// analyzers (RunModule) see the whole module through a ModulePass and
// build on the engine in callgraph.go (repo-wide call graph), cfg.go
// (per-function control-flow graphs), dataflow.go (a forward dataflow
// solver), and consts.go (interprocedural constant propagation with
// one-iteration call-site summaries). Engine artifacts are computed at
// most once per run and shared between analyzers through Module.Fact.
//
// Each invariant is an Analyzer; cmd/yyvet loads every package of the
// module and runs them all, package-parallel. A finding can be
// suppressed with a directive comment on the same line or the line
// directly above:
//
//	//yyvet:ignore analyzer-name[,analyzer-name...] justification
//
// The justification text is mandatory: the ignore-audit phase flags
// directives that omit it, name an unknown analyzer, or suppress
// nothing.
package analyze

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"sync"
)

// An Analyzer checks one invariant. Exactly one of Run and RunModule is
// set: Run analyzers see one package per call, RunModule analyzers see
// the whole module at once (call graph, cross-package summaries).
type Analyzer struct {
	// Name identifies the analyzer in findings and ignore directives,
	// e.g. "irecv-wait".
	Name string
	// Doc is a one-paragraph description of the invariant and why it
	// matters for the reproduction.
	Doc string
	// Run inspects the package behind pass and reports findings via
	// pass.Reportf.
	Run func(pass *Pass) error
	// RunModule inspects every selected package at once; use it when
	// the invariant needs the call graph or cross-package dataflow.
	RunModule func(mp *ModulePass) error
}

// A Finding is one rule violation at a source position.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	// TestFiles holds the package's in-package _test.go files. Most
	// analyzers target production invariants and range over Files only;
	// test-targeted analyzers (runwith-deadline) range over TestFiles.
	TestFiles []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	module *Module
}

// Reportf records a finding at pos unless an ignore directive for this
// analyzer covers the position.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.module.report(p.Analyzer.Name, p.Fset.Position(pos), fmt.Sprintf(format, args...))
}

// A ModulePass carries one interprocedural analyzer's view of the whole
// selected module.
type ModulePass struct {
	Analyzer *Analyzer
	Module   *Module
}

// Packages lists the selected packages in import-path order.
func (mp *ModulePass) Packages() []*Package { return mp.Module.Pkgs }

// Reportf records a finding at pos in pkg unless an ignore directive
// for this analyzer covers the position.
func (mp *ModulePass) Reportf(pkg *Package, pos token.Pos, format string, args ...any) {
	mp.Module.report(mp.Analyzer.Name, pkg.Fset.Position(pos), fmt.Sprintf(format, args...))
}

// Module is the shared state of one analysis run: the selected
// packages, the suppression-directive registry, the finding sink, and
// the memoized engine facts (call graph, constant propagation, ...).
type Module struct {
	Pkgs []*Package

	directives *directiveSet

	mu       sync.Mutex
	findings []Finding

	factMu sync.Mutex
	facts  map[string]*factEntry
}

type factEntry struct {
	once sync.Once
	val  any
	err  error
}

func newModule(pkgs []*Package) *Module {
	return &Module{
		Pkgs:       pkgs,
		directives: buildDirectiveSet(pkgs),
		facts:      map[string]*factEntry{},
	}
}

// Fact memoizes one engine artifact per run so independent analyzers
// share a single call graph, constant-propagation result, etc. The
// build function runs at most once per key; concurrent callers block on
// the first.
func (m *Module) Fact(key string, build func() (any, error)) (any, error) {
	m.factMu.Lock()
	e := m.facts[key]
	if e == nil {
		e = &factEntry{}
		m.facts[key] = e
	}
	m.factMu.Unlock()
	e.once.Do(func() { e.val, e.err = build() })
	return e.val, e.err
}

// callGraph returns the module-wide call graph fact.
func (m *Module) callGraph() (*CallGraph, error) {
	v, err := m.Fact("callgraph", func() (any, error) {
		return buildCallGraph(m.Pkgs), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*CallGraph), nil
}

// constProp returns the interprocedural parameter-constant fact.
func (m *Module) constProp() (*ConstProp, error) {
	g, err := m.callGraph()
	if err != nil {
		return nil, err
	}
	v, err := m.Fact("constprop", func() (any, error) {
		return buildConstProp(g), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*ConstProp), nil
}

// report appends one finding unless a directive suppresses it.
func (m *Module) report(analyzer string, pos token.Position, msg string) {
	if m.directives.suppress(pos, analyzer) {
		return
	}
	m.mu.Lock()
	m.findings = append(m.findings, Finding{Pos: pos, Analyzer: analyzer, Message: msg})
	m.mu.Unlock()
}

// Run applies every analyzer to every package with the default
// parallelism and returns the combined findings sorted by position then
// analyzer name.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	return RunN(pkgs, analyzers, 0)
}

// RunN is Run with an explicit worker count for the analysis phase
// (workers <= 0 selects GOMAXPROCS). Per-package analyzers fan out over
// (analyzer, package) pairs; each module analyzer is one task. Findings
// are accumulated under a lock and sorted, so the output is
// deterministic regardless of schedule.
func RunN(pkgs []*Package, analyzers []*Analyzer, workers int) ([]Finding, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	m := newModule(pkgs)

	audit := false
	runSet := map[string]bool{}
	var tasks []func() error
	for _, a := range analyzers {
		a := a
		runSet[a.Name] = true
		switch {
		case a == IgnoreAudit:
			audit = true
		case a.RunModule != nil:
			tasks = append(tasks, func() error {
				mp := &ModulePass{Analyzer: a, Module: m}
				if err := a.RunModule(mp); err != nil {
					return fmt.Errorf("analyze: %s: %w", a.Name, err)
				}
				return nil
			})
		case a.Run != nil:
			for _, pkg := range pkgs {
				pkg := pkg
				tasks = append(tasks, func() error {
					pass := &Pass{
						Analyzer:  a,
						Fset:      pkg.Fset,
						Files:     pkg.Files,
						TestFiles: pkg.TestFiles,
						Pkg:       pkg.Types,
						TypesInfo: pkg.Info,
						module:    m,
					}
					if err := a.Run(pass); err != nil {
						return fmt.Errorf("analyze: %s on %s: %w", a.Name, pkg.Path, err)
					}
					return nil
				})
			}
		}
	}

	if err := runTasks(tasks, workers); err != nil {
		return nil, err
	}

	// The audit phase runs strictly after every analyzer has finished,
	// so a directive's used-flag is final when inspected.
	if audit {
		m.directives.audit(m, runSet, knownAnalyzerNames())
	}

	findings := m.findings
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	// Dataflow analyzers can reach one defect along several paths;
	// collapse exact duplicates.
	dedup := findings[:0]
	for i, f := range findings {
		if i > 0 && f == findings[i-1] {
			continue
		}
		dedup = append(dedup, f)
	}
	return dedup, nil
}

// runTasks executes the tasks over a bounded worker pool, returning the
// first error (all workers drain before return).
func runTasks(tasks []func() error, workers int) error {
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		for _, t := range tasks {
			if err := t(); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	ch := make(chan func() error)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range ch {
				if err := t(); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for _, t := range tasks {
		ch <- t
	}
	close(ch)
	wg.Wait()
	return firstErr
}

// inspectWithParents walks root in depth-first order calling fn with
// each node and the stack of its ancestors (outermost first, root
// excluded from its own stack). If fn returns false the node's children
// are skipped.
func inspectWithParents(root ast.Node, fn func(n ast.Node, parents []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}

// enclosingFuncName returns the name of the nearest enclosing FuncDecl
// in the parent stack, or "" when the node sits inside an anonymous
// function only (or at package level).
func enclosingFuncName(parents []ast.Node) string {
	for i := len(parents) - 1; i >= 0; i-- {
		if fd, ok := parents[i].(*ast.FuncDecl); ok {
			return fd.Name.Name
		}
	}
	return ""
}
