// Package analyze is a small static-analysis framework for this module,
// built only on the standard library's go/ast, go/parser, go/token and
// go/types. It exists because the solver's correctness and Earth
// Simulator performance rest on invariants the Go compiler cannot check:
// every posted mpi.Irecv must be completed with Wait before its halo
// buffer is read, hot-loop array dimensions must avoid the power-of-two
// strides that trigger memory-bank conflicts (modeled in internal/es),
// floating-point values must not be compared with == outside designated
// tolerance helpers, and sync.Cond.Wait must sit in a predicate loop.
//
// Each invariant is an Analyzer; cmd/yyvet loads every package of the
// module and runs them all. A finding can be suppressed with a directive
// comment on the same line or the line directly above:
//
//	//yyvet:ignore analyzer-name[,analyzer-name...] justification
//
// The justification text is free-form but should always be present.
package analyze

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer checks one invariant across a single package.
type Analyzer struct {
	// Name identifies the analyzer in findings and ignore directives,
	// e.g. "irecv-wait".
	Name string
	// Doc is a one-paragraph description of the invariant and why it
	// matters for the reproduction.
	Doc string
	// Run inspects the package behind pass and reports findings via
	// pass.Reportf.
	Run func(pass *Pass) error
}

// A Finding is one rule violation at a source position.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	// TestFiles holds the package's in-package _test.go files. Most
	// analyzers target production invariants and range over Files only;
	// test-targeted analyzers (runwith-deadline) range over TestFiles.
	TestFiles []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	ignores  ignoreIndex
	findings *[]Finding
}

// Reportf records a finding at pos unless an ignore directive for this
// analyzer covers the position.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.ignores.covers(position, p.Analyzer.Name) {
		return
	}
	*p.findings = append(*p.findings, Finding{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ignoreIndex maps filename -> line -> analyzer names suppressed there.
type ignoreIndex map[string]map[int][]string

const ignoreDirective = "yyvet:ignore"

// buildIgnoreIndex scans the comments of every file for ignore
// directives. A directive on line L covers findings on line L (trailing
// comment) and line L+1 (comment on its own line above the statement).
func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) ignoreIndex {
	idx := ignoreIndex{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+ignoreDirective)
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = map[int][]string{}
					idx[pos.Filename] = byLine
				}
				names := strings.Split(fields[0], ",")
				byLine[pos.Line] = append(byLine[pos.Line], names...)
			}
		}
	}
	return idx
}

func (idx ignoreIndex) covers(pos token.Position, analyzer string) bool {
	byLine := idx[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, name := range byLine[line] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

// Run applies every analyzer to every package and returns the combined
// findings sorted by position then analyzer name.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		scanned := make([]*ast.File, 0, len(pkg.Files)+len(pkg.TestFiles))
		scanned = append(scanned, pkg.Files...)
		scanned = append(scanned, pkg.TestFiles...)
		idx := buildIgnoreIndex(pkg.Fset, scanned)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				TestFiles: pkg.TestFiles,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				ignores:   idx,
				findings:  &findings,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyze: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// inspectWithParents walks root in depth-first order calling fn with
// each node and the stack of its ancestors (outermost first, root
// excluded from its own stack). If fn returns false the node's children
// are skipped.
func inspectWithParents(root ast.Node, fn func(n ast.Node, parents []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}

// enclosingFuncName returns the name of the nearest enclosing FuncDecl
// in the parent stack, or "" when the node sits inside an anonymous
// function only (or at package level).
func enclosingFuncName(parents []ast.Node) string {
	for i := len(parents) - 1; i >= 0; i-- {
		if fd, ok := parents[i].(*ast.FuncDecl); ok {
			return fd.Name.Name
		}
	}
	return ""
}
