package analyze

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the quoted message substrings of a `// want "..."`
// expectation comment.
var wantRe = regexp.MustCompile(`"([^"]*)"`)

// expectation is one `// want` annotation in a fixture file.
type expectation struct {
	file string
	line int
	sub  string // message substring that must appear
}

// runFixture loads the fixture package in testdata/<dir>, runs the
// given analyzers and checks the findings against the fixture's
// `// want "substring"` comments: every annotated line must produce a
// finding containing the substring, and no unannotated finding may
// appear.
func runFixture(t *testing.T, dir string, analyzers ...*Analyzer) {
	t.Helper()
	path := filepath.Join("testdata", dir)
	pkg, err := LoadDir(path, "fixture/"+dir)
	if err != nil {
		t.Fatalf("loading %s: %v", path, err)
	}
	findings, err := Run([]*Package{pkg}, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", path, err)
	}

	wants := collectWants(t, path)
	matched := make([]bool, len(findings))
	for _, w := range wants {
		found := false
		for i, f := range findings {
			if matched[i] || filepath.Base(f.Pos.Filename) != w.file || f.Pos.Line != w.line {
				continue
			}
			if strings.Contains(f.Message, w.sub) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: expected finding containing %q, got none", w.file, w.line, w.sub)
		}
	}
	for i, f := range findings {
		if !matched[i] {
			t.Errorf("unexpected finding: %s", f)
		}
	}
}

// collectWants re-parses the fixture files for want annotations.
func collectWants(t *testing.T, dir string) []expectation {
	t.Helper()
	fset := token.NewFileSet()
	files, testFiles, err := parseDir(fset, dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []expectation
	for _, f := range append(files, testFiles...) {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(text, -1) {
					wants = append(wants, expectation{
						file: filepath.Base(pos.Filename),
						line: pos.Line,
						sub:  m[1],
					})
				}
			}
		}
	}
	return wants
}

// TestSuppression: a finding covered by //yyvet:ignore on the same or
// the preceding line is dropped; other findings in the file survive.
func TestSuppression(t *testing.T) {
	runFixture(t, "ignore", FloatEq)
}

// TestDirectiveScope verifies the line arithmetic of the directive
// registry directly: a directive covers its own line and the line
// below, for exactly the analyzers it names.
func TestDirectiveScope(t *testing.T) {
	d := &directive{
		pos:   token.Position{Filename: "f.go", Line: 10},
		names: []string{"float-eq", "pow2-stride"},
		used:  map[string]bool{},
	}
	ds := &directiveSet{
		byFile: map[string]map[int][]*directive{"f.go": {10: {d}}},
		all:    []*directive{d},
	}
	cases := []struct {
		line     int
		analyzer string
		want     bool
	}{
		{10, "float-eq", true},    // same line
		{11, "float-eq", true},    // directive on line above
		{12, "float-eq", false},   // out of range
		{9, "float-eq", false},    // directive below the finding
		{10, "irecv-wait", false}, // different analyzer
		{11, "pow2-stride", true}, // second name in the list
	}
	for _, c := range cases {
		pos := token.Position{Filename: "f.go", Line: c.line}
		if got := ds.suppress(pos, c.analyzer); got != c.want {
			t.Errorf("suppress(line %d, %s) = %v, want %v", c.line, c.analyzer, got, c.want)
		}
	}
	// Suppressions were recorded: both names fired above.
	if !d.used["float-eq"] || !d.used["pow2-stride"] {
		t.Errorf("used-flags not recorded: %v", d.used)
	}
}

// TestLoadModuleSelf loads this repository's own module and checks a
// few known packages arrive type-checked.
func TestLoadModuleSelf(t *testing.T) {
	if testing.Short() {
		t.Skip("module-wide type-check is slow")
	}
	pkgs, err := LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, p := range pkgs {
		seen[p.Path] = true
		if p.Types == nil || p.Info == nil {
			t.Errorf("%s loaded without type information", p.Path)
		}
	}
	for _, want := range []string{"repro/internal/mpi", "repro/internal/fd", "repro/cmd/yyvet"} {
		if !seen[want] {
			t.Errorf("LoadModule missed %s (got %d packages)", want, len(pkgs))
		}
	}
}

// TestFindingString pins the file:line:col: analyzer: message format the
// driver prints.
func TestFindingString(t *testing.T) {
	f := Finding{
		Pos:      token.Position{Filename: "a/b.go", Line: 3, Column: 7},
		Analyzer: "float-eq",
		Message:  "msg",
	}
	if got, want := f.String(), "a/b.go:3:7: float-eq: msg"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
