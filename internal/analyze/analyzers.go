package analyze

// All returns every analyzer of the suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AbortOnErr,
		CondWaitLoop,
		FloatEq,
		IrecvWait,
		Pow2Stride,
		RunWithDeadline,
		SpanEnd,
	}
}
