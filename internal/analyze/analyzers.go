package analyze

// All returns every analyzer of the suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AbortOnErr,
		AtomicArtifact,
		BufLifetime,
		CondWaitLoop,
		DetPurity,
		FloatEq,
		IgnoreAudit,
		IrecvWait,
		OverlapOrder,
		PoolDisjoint,
		Pow2Stride,
		RunWithDeadline,
		SpanEnd,
		TagSpace,
		TypedErr,
	}
}
