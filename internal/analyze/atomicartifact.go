package analyze

import (
	"go/ast"
	"go/types"
)

// AtomicArtifact reports production code that writes run artifacts
// outside the atomic commit path: a direct os.WriteFile, or an
// os.Rename that commits a file no preceding Sync made durable.
//
// Paper provenance: the durable run ledger's integrity guarantee rests
// on a single write discipline — temp file in the target directory,
// write, fsync, rename, dir-fsync. os.WriteFile truncates the final
// name first and writes in place, so a crash mid-write leaves a torn
// file under a committed name that verification can only call corrupt;
// a rename without a prior fsync can commit a name whose data never
// left the page cache, so a host crash yields a whole-looking,
// zero-length or stale artifact. Production artifacts must go through
// store.WriteFileAtomic (or a store backend Put). Test files are out
// of scope: tests tamper with committed files on purpose.
var AtomicArtifact = &Analyzer{
	Name: "atomic-artifact",
	Doc: "artifact written outside the atomic temp-fsync-rename-dirfsync path; " +
		"os.WriteFile tears under crash and an unsynced rename commits page-cache " +
		"data — use store.WriteFileAtomic",
	Run: runAtomicArtifact,
}

func runAtomicArtifact(pass *Pass) error {
	for _, file := range pass.Files {
		inspectWithParents(file, func(n ast.Node, parents []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !isOsPackage(pass, sel.X) {
				return true
			}
			switch sel.Sel.Name {
			case "WriteFile":
				pass.Reportf(call.Pos(),
					"os.WriteFile writes in place: a crash mid-write leaves a torn file under the final name; use store.WriteFileAtomic")
			case "Rename":
				if !syncPrecedes(call, parents) {
					pass.Reportf(call.Pos(),
						"os.Rename commits a file with no preceding Sync in this function: a crash can commit data that never left the page cache; fsync the temp file first")
				}
			}
			return true
		})
	}
	return nil
}

// isOsPackage reports whether e names the imported "os" package.
func isOsPackage(pass *Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pkgName.Imported().Path() == "os"
}

// syncPrecedes reports whether a .Sync() call appears before the rename
// inside the nearest enclosing function body. Positional, not
// path-sensitive: the write discipline puts the fsync straight-line
// above the rename, so a Sync anywhere earlier in the same function is
// accepted as the durability point.
func syncPrecedes(rename *ast.CallExpr, parents []ast.Node) bool {
	var body *ast.BlockStmt
	for i := len(parents) - 1; i >= 0; i-- {
		switch fn := parents[i].(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		}
		if body != nil {
			break
		}
	}
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || (n != nil && n.Pos() >= rename.Pos()) {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Sync" && len(call.Args) == 0 {
			found = true
		}
		return true
	})
	return found
}
