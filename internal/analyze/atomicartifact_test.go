package analyze

import "testing"

// TestAtomicArtifact runs the analyzer over its fixture: direct
// os.WriteFile and unsynced renames in production code are true
// positives; the full commit discipline, a Sync inside the renaming
// closure, non-os lookalikes, suppressions and test files are clean.
func TestAtomicArtifact(t *testing.T) {
	runFixture(t, "atomicartifact", AtomicArtifact)
}
