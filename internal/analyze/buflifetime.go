package analyze

import (
	"go/ast"
	"go/types"
	"strings"
)

// Lifetime bits for a tracked buffer handle.
const (
	bufLive uint8 = 1 << iota // acquired on some path, not yet released
	bufRel                    // released (putBuf) on some path
	bufEsc                    // escaped: stored, returned, or passed on
)

// BufLifetime tracks recycled payload buffers through each function:
// handles acquired from the mpi free list (getBuf) and from the
// decomp.HaloBufs staging arena (Pack*/Recv*). For free-list handles it
// runs a forward may-dataflow over the control-flow graph and flags
// use-after-put, double-put, and acquisitions that leak on some return
// path; releases through helper calls are resolved with one pass of
// callee-first summaries, so a wrapper that putBufs its parameter
// counts as a release at its call sites. Arena handles are checked
// whole-function: a packed or posted staging buffer that no call ever
// consumes is dead packing work and almost always a dropped exchange.
var BufLifetime = &Analyzer{
	Name: "buf-lifetime",
	Doc: "free-list buffers (mpi getBuf/putBuf) must not be used after release, released twice, " +
		"or leaked on a return path; HaloBufs arena handles must be consumed by the exchange that packed them.",
	RunModule: runBufLifetime,
}

func runBufLifetime(mp *ModulePass) error {
	g, err := mp.Module.callGraph()
	if err != nil {
		return err
	}
	summaries := releaseSummaries(g)
	for _, n := range g.Nodes() {
		checkFreelist(mp, g, n, summaries)
		checkArena(mp, n)
	}
	return nil
}

// releaseSummaries computes, callee-first in one pass, which parameters
// each function releases back to the free list (directly via putBuf or
// transitively through a releasing callee).
func releaseSummaries(g *CallGraph) map[*FuncNode][]bool {
	sum := map[*FuncNode][]bool{}
	for _, scc := range g.SCCs() {
		for _, n := range scc {
			sig := n.Obj.Type().(*types.Signature)
			rel := make([]bool, sig.Params().Len())
			params := map[types.Object]int{}
			for i := 0; i < sig.Params().Len(); i++ {
				if obj := paramDefObj(n, i); obj != nil {
					params[obj] = i
				}
			}
			ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
				call, ok := node.(*ast.CallExpr)
				if !ok {
					return true
				}
				for ai, arg := range call.Args {
					id, ok := ast.Unparen(arg).(*ast.Ident)
					if !ok {
						continue
					}
					pi, ok := params[n.Pkg.Info.Uses[id]]
					if !ok {
						continue
					}
					if releasesArg(g, n.Pkg.Info, call, ai, sum) {
						rel[pi] = true
					}
				}
				return true
			})
			sum[n] = rel
		}
	}
	return sum
}

// releasesArg reports whether passing a handle as the ai-th argument of
// call releases it: the callee is putBuf itself, or a function whose
// summary releases that parameter.
func releasesArg(g *CallGraph, info *types.Info, call *ast.CallExpr, ai int, sum map[*FuncNode][]bool) bool {
	fn := calleeObj(info, call)
	if fn == nil {
		return false
	}
	if fn.Name() == "putBuf" {
		return ai == 0
	}
	if node := g.Node(fn); node != nil {
		if rel := sum[node]; ai < len(rel) {
			return rel[ai]
		}
	}
	return false
}

// checkFreelist runs the use-after-put / double-put / leak dataflow for
// getBuf handles declared in n.
func checkFreelist(mp *ModulePass, g *CallGraph, n *FuncNode, sum map[*FuncNode][]bool) {
	info := n.Pkg.Info

	// Tracked objects: locals bound by `x := <...>.getBuf(...)`.
	tracked := map[types.Object]*ast.Ident{}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		as, ok := node.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		if !isNamedCall(info, as.Rhs[0], "getBuf") {
			return true
		}
		var obj types.Object
		if def := info.Defs[id]; def != nil {
			obj = def
		} else {
			obj = info.Uses[id]
		}
		if obj != nil {
			tracked[obj] = id
		}
		return true
	})
	if len(tracked) == 0 {
		return
	}
	cfg := buildCFG(n.Decl.Body)
	if cfg == nil {
		return // goto: unmodeled, skip the function
	}

	// Defers run on every exit path; a deferred putBuf(x) releases x for
	// the whole function, so fold deferred releases in as an initial REL
	// exemption for the leak check (but not for use-after-put: the defer
	// fires last).
	deferRel := map[types.Object]bool{}
	for _, d := range cfg.Defers {
		for ai, arg := range d.Call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil && tracked[obj] != nil {
					if releasesArg(g, info, d.Call, ai, sum) {
						deferRel[obj] = true
					}
				}
			}
		}
	}

	transfer := func(report bool) transferFunc {
		return func(b *Block, i int, state flowState) {
			stmt := b.Stmts[i]
			// Acquisition rebinds the handle fresh.
			if as, ok := stmt.(*ast.AssignStmt); ok && len(as.Lhs) == 1 && len(as.Rhs) == 1 {
				if id, ok := as.Lhs[0].(*ast.Ident); ok && isNamedCall(info, as.Rhs[0], "getBuf") {
					obj := info.Defs[id]
					if obj == nil {
						obj = info.Uses[id]
					}
					if obj != nil && tracked[obj] != nil {
						state[obj] = bufLive
						return
					}
				}
			}
			inspectWithParents(stmt, func(node ast.Node, parents []ast.Node) bool {
				if _, ok := node.(*ast.DeferStmt); ok {
					return false // deferred calls run at exit, handled above
				}
				id, ok := node.(*ast.Ident)
				if !ok {
					return true
				}
				obj := info.Uses[id]
				if obj == nil || tracked[obj] == nil {
					return true
				}
				bits := state[obj]
				role, relArg := identRole(g, info, id, parents, sum)
				if bits&bufRel != 0 && report {
					switch {
					case relArg:
						mp.Reportf(n.Pkg, id.Pos(),
							"%s was already released with putBuf on a path reaching this statement; double release corrupts the free list", id.Name)
					default:
						mp.Reportf(n.Pkg, id.Pos(),
							"%s is used after being released with putBuf on a path reaching this statement", id.Name)
					}
				}
				switch {
				case relArg:
					state[obj] = bits | bufRel
				case role == roleEscape:
					state[obj] = bits | bufEsc
				}
				return true
			})
		}
	}

	entries, _, _ := solveForward(cfg, flowState{}, transfer(false))
	// Replay with converged entry states to emit use/double-put reports.
	rep := transfer(true)
	for _, b := range cfg.Blocks {
		state := entries[b.Index].clone()
		for i := range b.Stmts {
			rep(b, i, state)
		}
		// Leak check at every path end: returns and the fall-off exit.
		atEnd := b.Term != nil
		if !atEnd {
			for _, s := range b.Succs {
				if s == cfg.Exit {
					atEnd = true
				}
			}
		}
		if atEnd {
			for obj, bits := range state {
				if bits&bufLive != 0 && bits&(bufRel|bufEsc) == 0 && !deferRel[obj] {
					pos := n.Decl.End()
					if b.Term != nil {
						pos = b.Term.Pos()
					}
					mp.Reportf(n.Pkg, pos,
						"%s acquired from getBuf leaks on this return path; release it with putBuf or hand it off", obj.Name())
				}
			}
		}
	}
}

type identUseRole int

const (
	roleRead identUseRole = iota
	roleEscape
)

// identRole classifies one appearance of a tracked handle: a releasing
// call argument, an escaping position (stored, returned, passed on,
// appended, captured in a composite literal), or a plain read.
func identRole(g *CallGraph, info *types.Info, id *ast.Ident, parents []ast.Node, sum map[*FuncNode][]bool) (identUseRole, bool) {
	if len(parents) == 0 {
		return roleRead, false
	}
	p := parents[len(parents)-1]
	switch p := p.(type) {
	case *ast.CallExpr:
		for ai, arg := range p.Args {
			if ast.Unparen(arg) != ast.Node(id) {
				continue
			}
			if releasesArg(g, info, p, ai, sum) {
				return roleRead, true
			}
			if fn, ok := ast.Unparen(p.Fun).(*ast.Ident); ok {
				switch fn.Name {
				case "copy", "len", "cap":
					return roleRead, false
				}
			}
			return roleEscape, false
		}
		return roleRead, false
	case *ast.CompositeLit, *ast.ReturnStmt, *ast.KeyValueExpr, *ast.SendStmt:
		return roleEscape, false
	case *ast.SliceExpr:
		if p.X == ast.Node(id) {
			return roleEscape, false // the alias may outlive our tracking
		}
		return roleRead, false
	case *ast.AssignStmt:
		for _, rhs := range p.Rhs {
			if ast.Unparen(rhs) == ast.Node(id) {
				return roleEscape, false // flows into another variable
			}
		}
		return roleRead, false
	}
	return roleRead, false
}

// isNamedCall reports whether e is a direct call of a function or
// method with the given name.
func isNamedCall(info *types.Info, e ast.Expr, name string) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeObj(info, call)
	return fn != nil && fn.Name() == name
}

// checkArena flags HaloBufs staging handles that no call consumes.
func checkArena(mp *ModulePass, n *FuncNode) {
	info := n.Pkg.Info
	acquired := map[types.Object]*ast.Ident{}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		as, ok := node.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok || !isArenaCall(info, rhs) {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj != nil {
				acquired[obj] = id
			}
		}
		return true
	})
	if len(acquired) == 0 {
		return
	}
	consumed := map[types.Object]bool{}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					consumed[obj] = true
				}
			}
		}
		return true
	})
	for obj, id := range acquired {
		if !consumed[obj] {
			mp.Reportf(n.Pkg, id.Pos(),
				"HaloBufs handle %s is packed or posted but never consumed by any call; the exchange drops it", id.Name)
		}
	}
}

// isArenaCall recognizes the HaloBufs acquisition methods: Pack* and
// Recv* on a receiver whose named type is HaloBufs.
func isArenaCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeObj(info, call)
	if fn == nil {
		return false
	}
	name := fn.Name()
	if !strings.HasPrefix(name, "Pack") && !strings.HasPrefix(name, "Recv") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "HaloBufs"
}
