package analyze

import "testing"

// TestBufLifetime: use-after-put, double-put (direct and through a
// releasing wrapper), and per-return-path leaks are flagged; deferred
// releases, wrapper releases, and ownership handoffs are not.
func TestBufLifetime(t *testing.T) {
	runFixture(t, "buflifetime", BufLifetime)
}
