package analyze

import (
	"go/ast"
	"go/types"
	"sort"
)

// CallGraph is the static, repo-wide call graph over every function
// declaration of the selected packages' production files. Nodes are
// keyed by the symbol's types.Func FullName rather than object
// identity: packages with in-package test files are type-checked twice
// (load.go phase 2), so the object a cross-package caller resolves to
// and the object the declaring package carries are distinct values for
// the same symbol.
//
// Edges are the statically resolvable calls only: direct function
// calls, method calls through a concrete receiver, and qualified
// package calls. Calls through interfaces, function values and
// closures stay unresolved (CallSite.Callee == nil); analyzers must
// treat them conservatively. Calls inside function literals are
// attributed to the enclosing declaration, which matches how the
// literal's free variables bind.
type CallGraph struct {
	nodes map[string]*FuncNode
}

// FuncNode is one declared function or method.
type FuncNode struct {
	Obj   *types.Func
	Decl  *ast.FuncDecl
	Pkg   *Package
	Calls []*CallSite // outgoing, in source order

	callers []*CallSite
}

// CallSite is one call expression inside Caller.
type CallSite struct {
	Caller *FuncNode
	Callee *FuncNode // nil when the target cannot be resolved statically
	Call   *ast.CallExpr
}

// Node returns the graph node declaring obj (matched by symbol name),
// or nil.
func (g *CallGraph) Node(obj *types.Func) *FuncNode {
	if obj == nil {
		return nil
	}
	return g.nodes[obj.FullName()]
}

// Nodes returns every node sorted by symbol name (deterministic).
func (g *CallGraph) Nodes() []*FuncNode {
	out := make([]*FuncNode, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Obj.FullName() < out[j].Obj.FullName() })
	return out
}

// Callers returns the resolved call sites targeting n.
func (g *CallGraph) Callers(n *FuncNode) []*CallSite { return n.callers }

// buildCallGraph indexes every FuncDecl of the packages' production
// files and resolves their static call edges.
func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{nodes: map[string]*FuncNode{}}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.nodes[obj.FullName()] = &FuncNode{Obj: obj, Decl: fd, Pkg: pkg}
			}
		}
	}
	for _, caller := range g.nodes {
		pkg := caller.Pkg
		ast.Inspect(caller.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			site := &CallSite{Caller: caller, Call: call}
			if callee := g.Node(calleeObj(pkg.Info, call)); callee != nil {
				site.Callee = callee
				callee.callers = append(callee.callers, site)
			}
			caller.Calls = append(caller.Calls, site)
			return true
		})
	}
	// Deterministic caller lists regardless of map iteration order.
	for _, n := range g.nodes {
		sort.Slice(n.callers, func(i, j int) bool {
			a, b := n.callers[i], n.callers[j]
			if a.Caller != b.Caller {
				return a.Caller.Obj.FullName() < b.Caller.Obj.FullName()
			}
			return a.Call.Pos() < b.Call.Pos()
		})
	}
	return g
}

// calleeObj resolves the *types.Func a call expression statically
// targets, or nil (builtins, conversions, function values, interface
// methods).
func calleeObj(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			fn, _ := sel.Obj().(*types.Func)
			if fn != nil && types.IsInterface(sel.Recv()) {
				return nil // dynamic dispatch
			}
			return fn
		}
		// Qualified package call (pkg.F).
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// SCCs returns the strongly connected components of the resolved call
// graph in callee-first order: every component appears before any
// component that calls into it. Reverse the slice for caller-first
// order. Within a component the node order is deterministic.
func (g *CallGraph) SCCs() [][]*FuncNode {
	nodes := g.Nodes()
	index := map[*FuncNode]int{}
	lowlink := map[*FuncNode]int{}
	onStack := map[*FuncNode]bool{}
	var stack []*FuncNode
	var sccs [][]*FuncNode
	next := 0

	// Iterative Tarjan: each frame remembers how far through the node's
	// call list it has advanced.
	type frame struct {
		n  *FuncNode
		ci int
	}
	for _, root := range nodes {
		if _, seen := index[root]; seen {
			continue
		}
		frames := []frame{{n: root}}
		index[root], lowlink[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			advanced := false
			for f.ci < len(f.n.Calls) {
				site := f.n.Calls[f.ci]
				f.ci++
				w := site.Callee
				if w == nil {
					continue
				}
				if _, seen := index[w]; !seen {
					index[w], lowlink[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{n: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < lowlink[f.n] {
					lowlink[f.n] = index[w]
				}
			}
			if advanced {
				continue
			}
			if lowlink[f.n] == index[f.n] {
				var scc []*FuncNode
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == f.n {
						break
					}
				}
				sort.Slice(scc, func(i, j int) bool { return scc[i].Obj.FullName() < scc[j].Obj.FullName() })
				sccs = append(sccs, scc)
			}
			done := f.n
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if lowlink[done] < lowlink[p.n] {
					lowlink[p.n] = lowlink[done]
				}
			}
		}
	}
	// Tarjan emits components in callee-first order already: a
	// component is finalized only after everything it reaches has been.
	return sccs
}

// ReachableFrom returns the set of nodes reachable from roots through
// resolved call edges, roots included.
func (g *CallGraph) ReachableFrom(roots []*FuncNode) map[*FuncNode]bool {
	seen := map[*FuncNode]bool{}
	var stack []*FuncNode
	for _, r := range roots {
		if r != nil && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, site := range n.Calls {
			if site.Callee != nil && !seen[site.Callee] {
				seen[site.Callee] = true
				stack = append(stack, site.Callee)
			}
		}
	}
	return seen
}
