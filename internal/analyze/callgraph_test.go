package analyze

import (
	"go/types"
	"path/filepath"
	"testing"
)

// loadEngineFixture loads testdata/engine and builds its call graph.
func loadEngineFixture(t *testing.T) (*Package, *CallGraph) {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", "engine"), "fixture/engine")
	if err != nil {
		t.Fatal(err)
	}
	return pkg, buildCallGraph([]*Package{pkg})
}

// fixtureFunc resolves a top-level function of the fixture to its node.
func fixtureFunc(t *testing.T, pkg *Package, g *CallGraph, name string) *FuncNode {
	t.Helper()
	obj, ok := pkg.Types.Scope().Lookup(name).(*types.Func)
	if !ok {
		t.Fatalf("fixture has no function %s", name)
	}
	n := g.Node(obj)
	if n == nil {
		t.Fatalf("call graph has no node for %s", name)
	}
	return n
}

func calls(n *FuncNode, callee *FuncNode) bool {
	for _, site := range n.Calls {
		if site.Callee == callee {
			return true
		}
	}
	return false
}

func TestCallGraphEdges(t *testing.T) {
	pkg, g := loadEngineFixture(t)
	a := fixtureFunc(t, pkg, g, "A")
	b := fixtureFunc(t, pkg, g, "B")
	c := fixtureFunc(t, pkg, g, "C")
	if !calls(a, b) || !calls(b, c) {
		t.Error("missing A→B or B→C edge")
	}
	if calls(a, c) {
		t.Error("spurious A→C edge")
	}
	// Caller edges mirror the call sites.
	sawA := false
	for _, site := range g.Callers(b) {
		if site.Caller == a {
			sawA = true
		}
	}
	if !sawA {
		t.Error("Callers(B) does not include the site in A")
	}
}

func TestCallGraphClosureAttribution(t *testing.T) {
	pkg, g := loadEngineFixture(t)
	cl := fixtureFunc(t, pkg, g, "Closure")
	c := fixtureFunc(t, pkg, g, "C")
	if !calls(cl, c) {
		t.Error("call inside a func literal not attributed to the enclosing declaration")
	}
}

func TestCallGraphSCCs(t *testing.T) {
	pkg, g := loadEngineFixture(t)
	a := fixtureFunc(t, pkg, g, "A")
	b := fixtureFunc(t, pkg, g, "B")
	c := fixtureFunc(t, pkg, g, "C")
	loop := fixtureFunc(t, pkg, g, "Loop")
	loop2 := fixtureFunc(t, pkg, g, "Loop2")

	sccs := g.SCCs()
	index := map[*FuncNode]int{}
	for i, scc := range sccs {
		for _, n := range scc {
			index[n] = i
		}
	}
	// Callee-first: C's component before B's before A's.
	if !(index[c] < index[b] && index[b] < index[a]) {
		t.Errorf("SCC order not callee-first: C=%d B=%d A=%d", index[c], index[b], index[a])
	}
	if index[loop] != index[loop2] {
		t.Errorf("mutual recursion split across SCCs: Loop=%d Loop2=%d", index[loop], index[loop2])
	}
}

func TestCallGraphReachableFrom(t *testing.T) {
	pkg, g := loadEngineFixture(t)
	a := fixtureFunc(t, pkg, g, "A")
	c := fixtureFunc(t, pkg, g, "C")
	d := fixtureFunc(t, pkg, g, "D")
	reach := g.ReachableFrom([]*FuncNode{a})
	if !reach[a] || !reach[c] {
		t.Error("ReachableFrom(A) misses A or its transitive callee C")
	}
	if reach[d] {
		t.Error("ReachableFrom(A) includes D, which only Mut calls")
	}
}
