package analyze

import (
	"go/ast"
	"go/token"
)

// CFG is an intraprocedural control-flow graph over statements. It is
// deliberately coarse: a block holds a run of statements ending at a
// branch point, edges capture may-flow between runs, and expression-
// level short-circuit control flow is NOT modeled (a statement's
// side-effects are treated as unordered within the statement). That is
// enough for the lifetime analyses here, which track identifiers
// across statements.
//
// Conventions:
//   - Entry is block 0; Exit is the distinguished fall-off block.
//   - A return statement's block has NO successor: analyzers inspect
//     Returns directly so per-return-path checks (leaks) fire with the
//     state that reaches that return, not a join over all of them.
//   - Exit's predecessors are only the paths that fall off the end of
//     the function body.
//   - panic(...) and calls to runtime-terminating helpers end their
//     block with no successor.
//   - Defers holds every defer statement of the function regardless of
//     position, since deferred calls run on every exiting path.
type CFG struct {
	Blocks  []*Block
	Entry   *Block
	Exit    *Block
	Returns []*Block // blocks ending in a *ast.ReturnStmt (Term)
	Defers  []*ast.DeferStmt
}

// Block is one straight-line run of statements.
type Block struct {
	Index int
	Stmts []ast.Stmt
	Succs []*Block
	Preds []*Block
	// Term is the return statement ending this block, if any.
	Term *ast.ReturnStmt
}

type cfgBuilder struct {
	cfg *CFG
	// break/continue targets, innermost last. Labeled statements map the
	// label name to the same targets.
	breaks    []*Block
	continues []*Block
	labelBrk  map[string]*Block
	labelCont map[string]*Block
	bailed    bool // goto seen: graph would be wrong, caller gets nil
}

// buildCFG constructs the CFG of a function body. It returns nil when
// the body uses goto, which this builder does not model; analyzers
// must skip such functions (none exist in this module).
func buildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:       &CFG{},
		labelBrk:  map[string]*Block{},
		labelCont: map[string]*Block{},
	}
	entry := b.newBlock()
	b.cfg.Entry = entry
	exit := b.newBlock()
	b.cfg.Exit = exit
	last := b.stmts(entry, body.List)
	if b.bailed {
		return nil
	}
	if last != nil {
		b.edge(last, exit)
	}
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// stmts appends the statement list to cur, returning the block that
// control falls out of, or nil when every path diverts (return, panic,
// break, ...).
func (b *cfgBuilder) stmts(cur *Block, list []ast.Stmt) *Block {
	for _, s := range list {
		if cur == nil {
			// Unreachable code after a terminator; still collect defers
			// and nested returns conservatively? No: unreachable is
			// unreachable, skip.
			break
		}
		cur = b.stmt(cur, s)
		if b.bailed {
			return nil
		}
	}
	return cur
}

func (b *cfgBuilder) stmt(cur *Block, s ast.Stmt) *Block {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		cur.Stmts = append(cur.Stmts, s)
		cur.Term = s
		b.cfg.Returns = append(b.cfg.Returns, cur)
		return nil

	case *ast.DeferStmt:
		b.cfg.Defers = append(b.cfg.Defers, s)
		cur.Stmts = append(cur.Stmts, s)
		return cur

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			var t *Block
			if s.Label != nil {
				t = b.labelBrk[s.Label.Name]
			} else if len(b.breaks) > 0 {
				t = b.breaks[len(b.breaks)-1]
			}
			b.edge(cur, t)
			return nil
		case token.CONTINUE:
			var t *Block
			if s.Label != nil {
				t = b.labelCont[s.Label.Name]
			} else if len(b.continues) > 0 {
				t = b.continues[len(b.continues)-1]
			}
			b.edge(cur, t)
			return nil
		case token.GOTO:
			b.bailed = true
			return nil
		case token.FALLTHROUGH:
			// Handled by the switch builder (clause blocks are chained);
			// treated as plain fallthrough to the next clause there.
			return cur
		}
		return cur

	case *ast.LabeledStmt:
		// Pre-register the label's targets lazily inside the loop/switch
		// builders: for a labeled loop, break/continue to the label mean
		// the loop's targets. We peek at the labeled statement kind.
		switch inner := s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			return b.labeled(cur, s.Label.Name, inner)
		default:
			return b.stmt(cur, s.Stmt)
		}

	case *ast.BlockStmt:
		return b.stmts(cur, s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			cur = b.stmt(cur, s.Init)
			if cur == nil {
				return nil
			}
		}
		cur.Stmts = append(cur.Stmts, &ast.ExprStmt{X: s.Cond})
		after := b.newBlock()
		thenB := b.newBlock()
		b.edge(cur, thenB)
		if out := b.stmts(thenB, s.Body.List); out != nil {
			b.edge(out, after)
		}
		if s.Else != nil {
			elseB := b.newBlock()
			b.edge(cur, elseB)
			if out := b.stmt(elseB, s.Else); out != nil {
				b.edge(out, after)
			}
		} else {
			b.edge(cur, after)
		}
		if len(after.Preds) == 0 {
			return nil
		}
		return after

	case *ast.ForStmt:
		return b.forStmt(cur, s, "", "")

	case *ast.RangeStmt:
		return b.rangeStmt(cur, s, "", "")

	case *ast.SwitchStmt:
		return b.switchStmt(cur, s.Init, s.Tag, s.Body, "")

	case *ast.TypeSwitchStmt:
		var tag ast.Expr
		return b.switchStmt(cur, s.Init, tag, s.Body, "")

	case *ast.SelectStmt:
		return b.selectStmt(cur, s, "")

	case *ast.ExprStmt:
		cur.Stmts = append(cur.Stmts, s)
		if isPanicCall(s.X) {
			return nil
		}
		return cur

	default:
		cur.Stmts = append(cur.Stmts, s)
		return cur
	}
}

func (b *cfgBuilder) labeled(cur *Block, label string, s ast.Stmt) *Block {
	switch s := s.(type) {
	case *ast.ForStmt:
		return b.forStmt(cur, s, label, label)
	case *ast.RangeStmt:
		return b.rangeStmt(cur, s, label, label)
	case *ast.SwitchStmt:
		return b.switchStmt(cur, s.Init, s.Tag, s.Body, label)
	case *ast.TypeSwitchStmt:
		var tag ast.Expr
		return b.switchStmt(cur, s.Init, tag, s.Body, label)
	case *ast.SelectStmt:
		return b.selectStmt(cur, s, label)
	}
	return b.stmt(cur, s)
}

func (b *cfgBuilder) forStmt(cur *Block, s *ast.ForStmt, brkLabel, contLabel string) *Block {
	if s.Init != nil {
		cur = b.stmt(cur, s.Init)
		if cur == nil {
			return nil
		}
	}
	head := b.newBlock()
	after := b.newBlock()
	post := b.newBlock()
	b.edge(cur, head)
	if s.Cond != nil {
		head.Stmts = append(head.Stmts, &ast.ExprStmt{X: s.Cond})
		b.edge(head, after)
	}
	b.pushLoop(after, post, brkLabel, contLabel)
	body := b.newBlock()
	b.edge(head, body)
	out := b.stmts(body, s.Body.List)
	b.popLoop(brkLabel, contLabel)
	if out != nil {
		b.edge(out, post)
	}
	if s.Post != nil {
		post.Stmts = append(post.Stmts, s.Post)
	}
	b.edge(post, head)
	if len(after.Preds) == 0 {
		return nil
	}
	return after
}

func (b *cfgBuilder) rangeStmt(cur *Block, s *ast.RangeStmt, brkLabel, contLabel string) *Block {
	head := b.newBlock()
	after := b.newBlock()
	b.edge(cur, head)
	// The range head both evaluates X and assigns the iteration vars.
	head.Stmts = append(head.Stmts, &ast.ExprStmt{X: s.X})
	if s.Key != nil || s.Value != nil {
		head.Stmts = append(head.Stmts, s) // analyzers see key/value defs here
	}
	b.edge(head, after) // zero iterations
	b.pushLoop(after, head, brkLabel, contLabel)
	body := b.newBlock()
	b.edge(head, body)
	out := b.stmts(body, s.Body.List)
	b.popLoop(brkLabel, contLabel)
	if out != nil {
		b.edge(out, head)
	}
	return after
}

func (b *cfgBuilder) switchStmt(cur *Block, init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, label string) *Block {
	if init != nil {
		cur = b.stmt(cur, init)
		if cur == nil {
			return nil
		}
	}
	if tag != nil {
		cur.Stmts = append(cur.Stmts, &ast.ExprStmt{X: tag})
	}
	after := b.newBlock()
	b.pushSwitch(after, label)
	hasDefault := false
	// Build clause entry blocks first so fallthrough can chain.
	var entries []*Block
	var clauses []*ast.CaseClause
	for _, cs := range body.List {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		clauses = append(clauses, cc)
		e := b.newBlock()
		b.edge(cur, e)
		entries = append(entries, e)
		if cc.List == nil {
			hasDefault = true
		}
	}
	for i, cc := range clauses {
		out := b.stmts(entries[i], cc.Body)
		if out == nil {
			continue
		}
		if endsInFallthrough(cc.Body) && i+1 < len(entries) {
			b.edge(out, entries[i+1])
		} else {
			b.edge(out, after)
		}
	}
	b.popSwitch(label)
	if !hasDefault {
		b.edge(cur, after)
	}
	if len(after.Preds) == 0 {
		return nil
	}
	return after
}

func (b *cfgBuilder) selectStmt(cur *Block, s *ast.SelectStmt, label string) *Block {
	after := b.newBlock()
	b.pushSwitch(after, label)
	hasDefault := false
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		e := b.newBlock()
		b.edge(cur, e)
		if cc.Comm != nil {
			e.Stmts = append(e.Stmts, cc.Comm)
		} else {
			hasDefault = true
		}
		if out := b.stmts(e, cc.Body); out != nil {
			b.edge(out, after)
		}
	}
	b.popSwitch(label)
	_ = hasDefault // a select with no default still always takes some clause
	if len(after.Preds) == 0 {
		return nil
	}
	return after
}

func (b *cfgBuilder) pushLoop(brk, cont *Block, brkLabel, contLabel string) {
	b.breaks = append(b.breaks, brk)
	b.continues = append(b.continues, cont)
	if brkLabel != "" {
		b.labelBrk[brkLabel] = brk
	}
	if contLabel != "" {
		b.labelCont[contLabel] = cont
	}
}

func (b *cfgBuilder) popLoop(brkLabel, contLabel string) {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	if brkLabel != "" {
		delete(b.labelBrk, brkLabel)
	}
	if contLabel != "" {
		delete(b.labelCont, contLabel)
	}
}

func (b *cfgBuilder) pushSwitch(brk *Block, label string) {
	b.breaks = append(b.breaks, brk)
	if label != "" {
		b.labelBrk[label] = brk
	}
}

func (b *cfgBuilder) popSwitch(label string) {
	b.breaks = b.breaks[:len(b.breaks)-1]
	if label != "" {
		delete(b.labelBrk, label)
	}
}

func endsInFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// isPanicCall reports whether the expression is a direct panic(...)
// call — its statement terminates the block with no successors.
func isPanicCall(x ast.Expr) bool {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
