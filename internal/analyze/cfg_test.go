package analyze

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// parseBody parses a single function declaration and returns its body.
func parseBody(t *testing.T, fn string) *ast.BlockStmt {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", "package p\n"+fn, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

func TestCFGLinear(t *testing.T) {
	cfg := buildCFG(parseBody(t, "func f() { x := 1; _ = x }"))
	if cfg == nil {
		t.Fatal("buildCFG returned nil for a straight-line body")
	}
	if len(cfg.Returns) != 0 {
		t.Errorf("straight-line body has %d return blocks, want 0", len(cfg.Returns))
	}
	if len(cfg.Exit.Preds) == 0 {
		t.Error("fall-off path does not reach Exit")
	}
}

func TestCFGReturnsHaveNoSuccessors(t *testing.T) {
	cfg := buildCFG(parseBody(t, `func f(c bool) int {
	if c {
		return 1
	}
	return 2
}`))
	if cfg == nil {
		t.Fatal("buildCFG returned nil")
	}
	if len(cfg.Returns) != 2 {
		t.Fatalf("got %d return blocks, want 2", len(cfg.Returns))
	}
	for _, b := range cfg.Returns {
		if b.Term == nil {
			t.Errorf("return block %d has no Term", b.Index)
		}
		if len(b.Succs) != 0 {
			t.Errorf("return block %d has successors; per-path analyses would leak across returns", b.Index)
		}
	}
	// Every path returns explicitly: nothing falls off into Exit.
	if len(cfg.Exit.Preds) != 0 {
		t.Errorf("Exit has %d preds, want 0 (no fall-off path)", len(cfg.Exit.Preds))
	}
}

func TestCFGLoopBackEdge(t *testing.T) {
	cfg := buildCFG(parseBody(t, `func f(n int) {
	for i := 0; i < n; i++ {
		println(i)
	}
}`))
	if cfg == nil {
		t.Fatal("buildCFG returned nil")
	}
	back := false
	for _, b := range cfg.Blocks {
		for _, s := range b.Succs {
			if s.Index <= b.Index {
				back = true
			}
		}
	}
	if !back {
		t.Error("for loop produced no back edge")
	}
}

func TestCFGGotoBails(t *testing.T) {
	cfg := buildCFG(parseBody(t, `func f() {
	goto done
done:
	println(1)
}`))
	if cfg != nil {
		t.Error("buildCFG must return nil for goto; the graph would be wrong")
	}
}

func TestCFGDefersCollected(t *testing.T) {
	cfg := buildCFG(parseBody(t, `func f(c bool) {
	defer println(1)
	if c {
		defer println(2)
	}
}`))
	if cfg == nil {
		t.Fatal("buildCFG returned nil")
	}
	if len(cfg.Defers) != 2 {
		t.Errorf("got %d defers, want 2 (collected function-global)", len(cfg.Defers))
	}
}

func TestCFGPanicTerminatesBlock(t *testing.T) {
	cfg := buildCFG(parseBody(t, `func f(c bool) {
	if c {
		panic("x")
	}
	println(1)
}`))
	if cfg == nil {
		t.Fatal("buildCFG returned nil")
	}
	found := false
	for _, b := range cfg.Blocks {
		for _, s := range b.Stmts {
			es, ok := s.(*ast.ExprStmt)
			if !ok || !isPanicCall(es.X) {
				continue
			}
			found = true
			if len(b.Succs) != 0 {
				t.Errorf("panic block %d has successors; panic never falls through", b.Index)
			}
		}
	}
	if !found {
		t.Fatal("panic statement not placed in any block")
	}
}

// TestSolveForwardJoins: the worklist solver's join is a may-union —
// a bit set on one branch survives the merge after the if.
func TestSolveForwardJoins(t *testing.T) {
	cfg := buildCFG(parseBody(t, `func f(c bool) {
	if c {
		a()
	}
	b()
}`))
	if cfg == nil {
		t.Fatal("buildCFG returned nil")
	}
	obj := types.NewVar(token.NoPos, nil, "x", types.Typ[types.Int])
	var atB uint8
	tf := func(blk *Block, i int, state flowState) {
		es, ok := blk.Stmts[i].(*ast.ExprStmt)
		if !ok {
			return
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return
		}
		switch id.Name {
		case "a":
			state[obj] |= 1
		case "b":
			atB = state[obj]
		}
	}
	_, _, exit := solveForward(cfg, flowState{}, tf)
	if atB != 1 {
		t.Errorf("state at b() = %d, want 1: the a-branch bit must survive the join", atB)
	}
	if exit[obj] != 1 {
		t.Errorf("exit state = %d, want 1", exit[obj])
	}
}
