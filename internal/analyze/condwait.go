package analyze

import (
	"go/ast"
	"go/types"
)

// CondWaitLoop reports sync.Cond.Wait calls that are not enclosed in a
// for loop within the same function.
//
// Paper provenance: the goroutine MPI runtime (internal/mpi) blocks
// ranks on condition variables for mailbox matching, barriers and
// communicator splits. Cond.Wait releases the lock and can wake
// spuriously or after another waiter consumed the state, so the
// predicate must be re-checked in a loop; a bare Wait turns a missed
// wakeup into a whole-run deadlock at scale.
var CondWaitLoop = &Analyzer{
	Name: "cond-wait-loop",
	Doc: "sync.Cond.Wait outside a for loop misses spurious or stolen wakeups; " +
		"wrap it as `for !predicate { c.Wait() }`",
	Run: runCondWaitLoop,
}

func runCondWaitLoop(pass *Pass) error {
	for _, file := range pass.Files {
		inspectWithParents(file, func(n ast.Node, parents []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Wait" || len(call.Args) != 0 {
				return true
			}
			if !isSyncCond(pass, sel.X) {
				return true
			}
			if !inForLoop(parents) {
				pass.Reportf(call.Pos(), "sync.Cond.Wait is not guarded by a for loop; re-check the predicate: for !cond { %s.Wait() }", types.ExprString(sel.X))
			}
			return true
		})
	}
	return nil
}

// isSyncCond reports whether e has type sync.Cond or *sync.Cond.
func isSyncCond(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Cond"
}

// inForLoop reports whether the parent stack crosses a for or range
// statement before leaving the enclosing function.
func inForLoop(parents []ast.Node) bool {
	for i := len(parents) - 1; i >= 0; i-- {
		switch parents[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.FuncDecl, *ast.FuncLit:
			return false
		}
	}
	return false
}
