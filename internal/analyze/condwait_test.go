package analyze

import "testing"

// TestCondWaitLoop runs the analyzer over its fixture: bare and
// if-guarded Waits are true positives (including a Wait inside a
// closure whose loop is in the outer function); for-looped Waits,
// WaitGroup.Wait and suppressed sites are clean.
func TestCondWaitLoop(t *testing.T) {
	for _, tc := range []struct{ name, dir string }{
		{"fixture", "condwait"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			runFixture(t, tc.dir, CondWaitLoop)
		})
	}
}
