package analyze

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// A Value is one concrete integer a ValueSet may hold, together with a
// human-readable origin ("decomp.tagRimBase+2", "5") used in findings
// so the reader sees the symbolic derivation, not just the number.
type Value struct {
	V      int64
	Origin string
}

// valueSetCap bounds a set before it widens to Top. Tag spaces here
// are tiny (tens of values); anything larger is not a tag expression.
const valueSetCap = 64

// A ValueSet is the abstract value of an integer expression: either
// Top (unknown / too many values) or a small set of concrete values.
// The zero ValueSet is the empty set — "no evidence yet" — which
// consumers must treat as unknown, not as impossible.
type ValueSet struct {
	Top    bool
	Values []Value
}

func topValues() ValueSet { return ValueSet{Top: true} }

func singleValue(v int64, origin string) ValueSet {
	return ValueSet{Values: []Value{{V: v, Origin: origin}}}
}

// Known reports whether the set carries usable concrete values.
func (s ValueSet) Known() bool { return !s.Top && len(s.Values) > 0 }

// add merges one value, deduplicating on the integer (first origin
// wins) and widening to Top past the cap. Returns true on change.
func (s *ValueSet) add(v Value) bool {
	if s.Top {
		return false
	}
	for _, have := range s.Values {
		if have.V == v.V {
			return false
		}
	}
	if len(s.Values) >= valueSetCap {
		s.Top = true
		s.Values = nil
		return true
	}
	s.Values = append(s.Values, v)
	return true
}

func (s *ValueSet) merge(other ValueSet) bool {
	if s.Top {
		return false
	}
	if other.Top {
		s.Top = true
		s.Values = nil
		return true
	}
	changed := false
	for _, v := range other.Values {
		if s.add(v) {
			changed = true
		}
	}
	return changed
}

// ConstProp is the interprocedural parameter-constant fact: for every
// integer parameter of every declared function, the set of values
// observed flowing in from resolved call sites. Propagation is
// summary-based and bounded by ONE caller-first pass over the SCC
// condensation: parameters of recursive components, reassigned or
// address-taken parameters widen to Top immediately. Unresolved calls
// (function values, interfaces) simply contribute nothing, so an empty
// set means "no evidence", never "impossible".
type ConstProp struct {
	g          *CallGraph
	params     map[*FuncNode][]ValueSet
	paramIndex map[*FuncNode]map[types.Object]int
}

// Graph returns the call graph the propagation ran over.
func (cp *ConstProp) Graph() *CallGraph { return cp.g }

func buildConstProp(g *CallGraph) *ConstProp {
	cp := &ConstProp{
		g:          g,
		params:     map[*FuncNode][]ValueSet{},
		paramIndex: map[*FuncNode]map[types.Object]int{},
	}

	for _, n := range g.Nodes() {
		sig := n.Obj.Type().(*types.Signature)
		sets := make([]ValueSet, sig.Params().Len())
		idx := map[types.Object]int{}
		for i := 0; i < sig.Params().Len(); i++ {
			p := sig.Params().At(i)
			if !isIntKind(p.Type()) {
				sets[i] = topValues()
				continue
			}
			// The signature's param objects may predate a phase-2
			// re-check; index by the declaration's own Defs objects,
			// which are the ones the body's Uses resolve to.
			idx[paramDefObj(n, i)] = i
		}
		cp.params[n] = sets
		cp.paramIndex[n] = idx
		// A parameter the body reassigns or takes the address of no
		// longer carries its call-site value.
		for obj, i := range idx {
			if obj != nil && paramMutated(n, obj) {
				cp.params[n][i] = topValues()
			}
		}
	}

	sccs := g.SCCs()
	// Recursion defeats the single propagation pass; widen.
	for _, scc := range sccs {
		recursive := len(scc) > 1
		if !recursive {
			for _, site := range scc[0].Calls {
				if site.Callee == scc[0] {
					recursive = true
					break
				}
			}
		}
		if recursive {
			for _, n := range scc {
				for i := range cp.params[n] {
					cp.params[n][i] = topValues()
				}
			}
		}
	}

	// One caller-first pass: when a node is visited every contribution
	// into it has been made, so its outgoing argument evaluations are
	// final.
	for i := len(sccs) - 1; i >= 0; i-- {
		for _, caller := range sccs[i] {
			for _, site := range caller.Calls {
				callee := site.Callee
				if callee == nil {
					continue
				}
				sig := callee.Obj.Type().(*types.Signature)
				np := sig.Params().Len()
				for ai, arg := range site.Call.Args {
					pi := ai
					if sig.Variadic() && pi >= np-1 {
						break // variadic tail: not an int tag position
					}
					if pi >= np {
						break
					}
					if cp.params[callee][pi].Top {
						continue
					}
					cp.params[callee][pi].merge(cp.EvalInt(caller, arg))
				}
			}
		}
	}
	return cp
}

// Param returns the propagated value set of n's i-th parameter.
func (cp *ConstProp) Param(n *FuncNode, i int) ValueSet {
	sets := cp.params[n]
	if i < 0 || i >= len(sets) {
		return topValues()
	}
	return sets[i]
}

// EvalInt abstractly evaluates an integer expression in the context of
// function n: untyped/typed constants evaluate exactly (with symbolic
// origins for named constants), parameter references yield their
// propagated sets, and +, -, * combine element-wise. Everything else
// is Top.
func (cp *ConstProp) EvalInt(n *FuncNode, e ast.Expr) ValueSet {
	e = ast.Unparen(e)
	info := n.Pkg.Info
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		iv := constant.ToInt(tv.Value)
		if v, exact := constant.Int64Val(iv); exact {
			return singleValue(v, constOrigin(info, e, v))
		}
		return topValues()
	}
	switch e := e.(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			if i, ok := cp.paramIndex[n][obj]; ok {
				return cp.Param(n, i)
			}
		}
		return topValues()
	case *ast.BinaryExpr:
		l := cp.EvalInt(n, e.X)
		r := cp.EvalInt(n, e.Y)
		return combineValues(l, r, e.Op)
	case *ast.UnaryExpr:
		if e.Op == token.SUB {
			v := cp.EvalInt(n, e.X)
			if !v.Known() {
				return topValues()
			}
			var out ValueSet
			for _, x := range v.Values {
				out.add(Value{V: -x.V, Origin: "-" + x.Origin})
			}
			return out
		}
	}
	return topValues()
}

func combineValues(l, r ValueSet, op token.Token) ValueSet {
	if !l.Known() || !r.Known() {
		return topValues()
	}
	var out ValueSet
	for _, a := range l.Values {
		for _, b := range r.Values {
			var v int64
			switch op {
			case token.ADD:
				v = a.V + b.V
			case token.SUB:
				v = a.V - b.V
			case token.MUL:
				v = a.V * b.V
			default:
				return topValues()
			}
			out.add(Value{V: v, Origin: a.Origin + op.String() + b.Origin})
		}
	}
	return out
}

// constOrigin renders a constant expression's origin: named constants
// keep their package-qualified name, everything else the literal value.
func constOrigin(info *types.Info, e ast.Expr, v int64) string {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	case *ast.BinaryExpr:
		l, lok := info.Types[e.X]
		r, rok := info.Types[e.Y]
		if lok && rok && l.Value != nil && r.Value != nil {
			lv, _ := constant.Int64Val(constant.ToInt(l.Value))
			rv, _ := constant.Int64Val(constant.ToInt(r.Value))
			return constOrigin(info, e.X, lv) + e.Op.String() + constOrigin(info, e.Y, rv)
		}
	}
	if id != nil {
		if c, ok := info.Uses[id].(*types.Const); ok {
			if c.Pkg() != nil {
				return c.Pkg().Name() + "." + c.Name()
			}
			return c.Name()
		}
	}
	return fmt.Sprintf("%d", v)
}

func isIntKind(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// paramDefObj returns the defining object of n's i-th parameter from
// the declaration's field list (nil for unnamed parameters).
func paramDefObj(n *FuncNode, i int) types.Object {
	if n.Decl.Type.Params == nil {
		return nil
	}
	k := 0
	for _, f := range n.Decl.Type.Params.List {
		names := f.Names
		if len(names) == 0 {
			if k == i {
				return nil
			}
			k++
			continue
		}
		for _, name := range names {
			if k == i {
				return n.Pkg.Info.Defs[name]
			}
			k++
		}
	}
	return nil
}

// paramMutated reports whether the body reassigns obj, increments it,
// or takes its address.
func paramMutated(n *FuncNode, obj types.Object) bool {
	mutated := false
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		if mutated {
			return false
		}
		switch node := node.(type) {
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && n.Pkg.Info.Uses[id] == obj {
					mutated = true
				}
			}
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(node.X).(*ast.Ident); ok && n.Pkg.Info.Uses[id] == obj {
				mutated = true
			}
		case *ast.UnaryExpr:
			if node.Op == token.AND {
				if id, ok := ast.Unparen(node.X).(*ast.Ident); ok && n.Pkg.Info.Uses[id] == obj {
					mutated = true
				}
			}
		}
		return !mutated
	})
	return mutated
}

// EvalIntList abstractly executes a function that builds and returns a
// []int of constants — the decomp.ExchangeTags shape: an accumulator
// slice, ranges over constant composite literals, bounded counting
// loops, appends of evaluable expressions, and a final return of the
// accumulator (possibly wrapped in one more append). Returns ok=false
// when the body steps outside that shape.
func EvalIntList(n *FuncNode) (vals []Value, ok bool) {
	le := &listEval{n: n, info: n.Pkg.Info, env: map[types.Object]Value{}, ok: true}
	le.stmts(n.Decl.Body.List)
	if !le.ok || !le.returned {
		return nil, false
	}
	return le.result, true
}

const listEvalMaxIters = 1024

type listEval struct {
	n    *FuncNode
	info *types.Info
	env  map[types.Object]Value // loop variables bound to concrete values

	acc      types.Object // the accumulator slice variable
	vals     []Value
	result   []Value
	returned bool
	iters    int
	ok       bool
}

func (le *listEval) fail() { le.ok = false }

func (le *listEval) stmts(list []ast.Stmt) {
	for _, s := range list {
		if !le.ok || le.returned {
			return
		}
		le.stmt(s)
	}
}

func (le *listEval) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		le.assign(s)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			le.fail()
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Names) != 1 || len(vs.Values) != 0 {
				le.fail()
				return
			}
			if le.acc != nil {
				le.fail()
				return
			}
			le.acc = le.info.Defs[vs.Names[0]]
			le.vals = nil
		}
	case *ast.RangeStmt:
		le.rangeStmt(s)
	case *ast.ForStmt:
		le.forStmt(s)
	case *ast.ReturnStmt:
		le.returnStmt(s)
	case *ast.BlockStmt:
		le.stmts(s.List)
	default:
		le.fail()
	}
}

func (le *listEval) assign(s *ast.AssignStmt) {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		le.fail()
		return
	}
	id, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		le.fail()
		return
	}
	rhs := ast.Unparen(s.Rhs[0])

	if s.Tok == token.DEFINE {
		obj := le.info.Defs[id]
		switch rhs := rhs.(type) {
		case *ast.CallExpr: // tags := make([]int, 0, k)
			if fn, ok := rhs.Fun.(*ast.Ident); ok && fn.Name == "make" && le.acc == nil {
				le.acc, le.vals = obj, nil
				return
			}
		case *ast.CompositeLit: // tags := []int{c1, c2, ...}
			if le.acc == nil {
				elems, ok := le.constElems(rhs)
				if !ok {
					le.fail()
					return
				}
				le.acc, le.vals = obj, elems
				return
			}
		}
		le.fail()
		return
	}

	// tags = append(tags, e1, e2, ...)
	if s.Tok != token.ASSIGN || le.acc == nil || le.info.Uses[id] != le.acc {
		le.fail()
		return
	}
	args, ok := le.appendArgs(rhs)
	if !ok {
		le.fail()
		return
	}
	le.vals = append(le.vals, args...)
}

// appendArgs unpacks append(acc, e...) and evaluates the appended
// expressions.
func (le *listEval) appendArgs(e ast.Expr) ([]Value, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || call.Ellipsis != token.NoPos {
		return nil, false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" || len(call.Args) < 2 {
		return nil, false
	}
	base, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok || le.info.Uses[base] != le.acc {
		return nil, false
	}
	var out []Value
	for _, arg := range call.Args[1:] {
		v, ok := le.eval(arg)
		if !ok {
			return nil, false
		}
		out = append(out, v)
	}
	return out, true
}

func (le *listEval) rangeStmt(s *ast.RangeStmt) {
	lit, ok := ast.Unparen(s.X).(*ast.CompositeLit)
	if !ok {
		le.fail()
		return
	}
	elems, ok := le.constElems(lit)
	if !ok {
		le.fail()
		return
	}
	var valObj types.Object
	if s.Value != nil {
		if id, ok := s.Value.(*ast.Ident); ok && id.Name != "_" {
			valObj = le.info.Defs[id]
		}
	}
	if s.Key != nil {
		if id, ok := s.Key.(*ast.Ident); ok && id.Name != "_" {
			le.fail() // index binding unsupported; not the shape
			return
		}
	}
	for _, el := range elems {
		if le.iters++; le.iters > listEvalMaxIters {
			le.fail()
			return
		}
		if valObj != nil {
			le.env[valObj] = el
		}
		le.stmts(s.Body.List)
		if !le.ok || le.returned {
			return
		}
	}
	if valObj != nil {
		delete(le.env, valObj)
	}
}

// forStmt executes `for i := lo; i < hi; i++` with constant bounds.
func (le *listEval) forStmt(s *ast.ForStmt) {
	init, ok := s.Init.(*ast.AssignStmt)
	if !ok || init.Tok != token.DEFINE || len(init.Lhs) != 1 || len(init.Rhs) != 1 {
		le.fail()
		return
	}
	id, ok := init.Lhs[0].(*ast.Ident)
	if !ok {
		le.fail()
		return
	}
	obj := le.info.Defs[id]
	lo, ok := le.eval(init.Rhs[0])
	if !ok {
		le.fail()
		return
	}
	cond, ok := s.Cond.(*ast.BinaryExpr)
	if !ok || (cond.Op != token.LSS && cond.Op != token.LEQ) {
		le.fail()
		return
	}
	condID, ok := ast.Unparen(cond.X).(*ast.Ident)
	if !ok || le.info.Uses[condID] != obj {
		le.fail()
		return
	}
	hi, ok := le.eval(cond.Y)
	if !ok {
		le.fail()
		return
	}
	inc, ok := s.Post.(*ast.IncDecStmt)
	if !ok || inc.Tok != token.INC {
		le.fail()
		return
	}
	limit := hi.V
	if cond.Op == token.LEQ {
		limit++
	}
	for i := lo.V; i < limit; i++ {
		if le.iters++; le.iters > listEvalMaxIters {
			le.fail()
			return
		}
		le.env[obj] = Value{V: i, Origin: fmt.Sprintf("%d", i)}
		le.stmts(s.Body.List)
		if !le.ok || le.returned {
			return
		}
	}
	delete(le.env, obj)
}

func (le *listEval) returnStmt(s *ast.ReturnStmt) {
	if len(s.Results) != 1 {
		le.fail()
		return
	}
	res := ast.Unparen(s.Results[0])
	if id, ok := res.(*ast.Ident); ok && le.info.Uses[id] == le.acc {
		le.result = le.vals
		le.returned = true
		return
	}
	if lit, ok := res.(*ast.CompositeLit); ok && le.acc == nil {
		elems, ok := le.constElems(lit)
		if !ok {
			le.fail()
			return
		}
		le.result = elems
		le.returned = true
		return
	}
	if args, ok := le.appendArgs(res); ok {
		le.result = append(le.vals, args...)
		le.returned = true
		return
	}
	le.fail()
}

// constElems evaluates every element of a []int composite literal.
func (le *listEval) constElems(lit *ast.CompositeLit) ([]Value, bool) {
	var out []Value
	for _, el := range lit.Elts {
		v, ok := le.eval(el)
		if !ok {
			return nil, false
		}
		out = append(out, v)
	}
	return out, true
}

// eval evaluates an expression to one concrete value using the typed
// constant info plus the loop-variable environment.
func (le *listEval) eval(e ast.Expr) (Value, bool) {
	e = ast.Unparen(e)
	if tv, ok := le.info.Types[e]; ok && tv.Value != nil {
		if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
			return Value{V: v, Origin: constOrigin(le.info, e, v)}, true
		}
		return Value{}, false
	}
	switch e := e.(type) {
	case *ast.Ident:
		if obj := le.info.Uses[e]; obj != nil {
			if v, ok := le.env[obj]; ok {
				return v, true
			}
		}
	case *ast.BinaryExpr:
		l, lok := le.eval(e.X)
		r, rok := le.eval(e.Y)
		if !lok || !rok {
			return Value{}, false
		}
		switch e.Op {
		case token.ADD:
			return Value{V: l.V + r.V, Origin: l.Origin + "+" + r.Origin}, true
		case token.SUB:
			return Value{V: l.V - r.V, Origin: l.Origin + "-" + r.Origin}, true
		case token.MUL:
			return Value{V: l.V * r.V, Origin: l.Origin + "*" + r.Origin}, true
		}
	}
	return Value{}, false
}
