package analyze

import (
	"sort"
	"testing"
)

// paramInts extracts the sorted concrete values of a parameter's set.
func paramInts(s ValueSet) []int64 {
	var out []int64
	for _, v := range s.Values {
		out = append(out, v.V)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestConstPropThroughParams(t *testing.T) {
	pkg, g := loadEngineFixture(t)
	cp := buildConstProp(g)
	b := fixtureFunc(t, pkg, g, "B")
	c := fixtureFunc(t, pkg, g, "C")

	// A calls B(1).
	if got := paramInts(cp.Param(b, 0)); len(got) != 1 || got[0] != 1 {
		t.Errorf("Param(B, 0) = %v, want [1]", got)
	}
	// C receives x+1 from B (x={1} → 2) and the literal 7 from the
	// closure in Closure.
	set := cp.Param(c, 0)
	if set.Top {
		t.Fatal("Param(C, 0) is Top; summary propagation lost the values")
	}
	if got := paramInts(set); len(got) != 2 || got[0] != 2 || got[1] != 7 {
		t.Errorf("Param(C, 0) = %v, want [2 7]", got)
	}
}

func TestConstPropMutatedParamIsTop(t *testing.T) {
	pkg, g := loadEngineFixture(t)
	cp := buildConstProp(g)
	d := fixtureFunc(t, pkg, g, "D")
	// Mut reassigns its parameter before passing it on; the forwarded
	// value must widen to Top rather than report the stale caller value.
	if !cp.Param(d, 0).Top {
		t.Errorf("Param(D, 0) = %v, want Top (argument flows through a mutated param)", cp.Param(d, 0))
	}
}

func TestConstPropRecursionIsTop(t *testing.T) {
	pkg, g := loadEngineFixture(t)
	cp := buildConstProp(g)
	r := fixtureFunc(t, pkg, g, "R")
	// One summary iteration cannot bound n-1 chains; recursive SCCs
	// widen to Top by construction.
	if !cp.Param(r, 0).Top {
		t.Errorf("Param(R, 0) = %v, want Top (recursive SCC)", cp.Param(r, 0))
	}
}

func TestEvalIntList(t *testing.T) {
	pkg, g := loadEngineFixture(t)
	ex := fixtureFunc(t, pkg, g, "ExchangeTags")
	vals, ok := EvalIntList(ex)
	if !ok {
		t.Fatal("EvalIntList failed on the ExchangeTags shape")
	}
	var got []int64
	for _, v := range vals {
		got = append(got, v.V)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	want := []int64{4, 5, 10, 11, 99}
	if len(got) != len(want) {
		t.Fatalf("EvalIntList = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("EvalIntList = %v, want %v", got, want)
		}
	}
}
