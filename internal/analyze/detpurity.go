package analyze

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

// detPackages names the packages whose results must be bit-identical
// across runs and rank counts: the numerics (fd, sphops, mhd), the
// domain decomposition they run under (decomp), the campaign state
// machine (core), and the checkpoint format (snapshot). The paper's
// parallel/serial equivalence tests rest on these staying pure.
var detPackages = map[string]bool{
	"fd": true, "sphops": true, "mhd": true,
	"decomp": true, "core": true, "snapshot": true,
}

// detPartialFiles extends the purity contract into packages that are
// only partially deterministic, keyed by package name then file base
// name. In telemetry, the publisher path (publish.go) runs on the
// solver's step path and must stay clock-free and rand-free like the
// numerics it interleaves with; the collector side (plane, server,
// pprof) legitimately reads the wall clock and is exempt.
var detPartialFiles = map[string]map[string]bool{
	"telemetry": {"publish.go": true},
}

// DetPurity flags nondeterminism sources inside the deterministic
// packages: wall-clock reads (time.Now/Since/Until), math/rand, and
// range over a map, whose iteration order varies run to run and can
// leak into numerics, reductions, or checkpoint layout. Legitimate
// injection points (a map range whose keys are sorted before use) are
// whitelisted with a justified //yyvet:ignore.
var DetPurity = &Analyzer{
	Name: "det-purity",
	Doc: "the deterministic packages (fd, sphops, mhd, decomp, core, snapshot) and the telemetry " +
		"publisher path must not read the wall clock, use math/rand, or iterate maps where the " +
		"order can reach numerics or outputs.",
	Run: runDetPurity,
}

func runDetPurity(pass *Pass) error {
	partial := detPartialFiles[pass.Pkg.Name()]
	if !detPackages[pass.Pkg.Name()] && partial == nil {
		return nil
	}
	for _, file := range pass.Files {
		if partial != nil && !partial[filepath.Base(pass.Fset.Position(file.Pos()).Filename)] {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if pkg, name := calledPkgFunc(pass.TypesInfo, n); pkg != "" {
					switch {
					case pkg == "time" && (name == "Now" || name == "Since" || name == "Until"):
						pass.Reportf(n.Pos(),
							"time.%s in deterministic package %s; wall-clock reads break bit-identical reruns — take timings in the driver or obs layer",
							name, pass.Pkg.Name())
					case pkg == "math/rand" || pkg == "math/rand/v2":
						pass.Reportf(n.Pos(),
							"%s.%s in deterministic package %s; unseeded randomness breaks bit-identical reruns — thread an explicit seeded source through the params",
							pkg, name, pass.Pkg.Name())
					}
				}
			case *ast.RangeStmt:
				if t := pass.TypesInfo.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						pass.Reportf(n.Pos(),
							"range over map in deterministic package %s; iteration order varies run to run — sort the keys first",
							pass.Pkg.Name())
					}
				}
			}
			return true
		})
	}
	return nil
}

// calledPkgFunc resolves a call to a package-level function of an
// imported package, returning the import path and function name
// ("", "") otherwise.
func calledPkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", "" // method, not a package function
	}
	return fn.Pkg().Path(), fn.Name()
}
