package analyze

import "testing"

// TestDetPurity: wall-clock reads, math/rand, and map iteration are
// flagged inside the deterministic packages; a justified suppression
// silences the sorted-keys idiom.
func TestDetPurity(t *testing.T) {
	runFixture(t, "detpurity", DetPurity)
}

// TestDetPurityPartialPackage: in partially-deterministic packages the
// contract applies file by file — telemetry's publisher path is
// checked, its collector side is exempt.
func TestDetPurityPartialPackage(t *testing.T) {
	runFixture(t, "detpartial", DetPurity)
}
