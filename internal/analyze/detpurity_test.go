package analyze

import "testing"

// TestDetPurity: wall-clock reads, math/rand, and map iteration are
// flagged inside the deterministic packages; a justified suppression
// silences the sorted-keys idiom.
func TestDetPurity(t *testing.T) {
	runFixture(t, "detpurity", DetPurity)
}
