package analyze

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
	"sync"
)

const ignoreDirective = "yyvet:ignore"

// A directive is one //yyvet:ignore comment. It suppresses findings of
// the named analyzers on its own line (trailing comment) and the line
// directly below (comment above the statement). The audit phase flags
// directives that name an unknown analyzer, carry no justification, or
// never suppressed anything during the run.
type directive struct {
	pos           token.Position
	names         []string
	justification string
	used          map[string]bool // analyzer name -> suppressed at least one finding
}

// directiveSet indexes every directive of the selected packages by
// filename and line. suppress is called concurrently from analyzer
// workers; the mutex guards the used-flags.
type directiveSet struct {
	mu     sync.Mutex
	byFile map[string]map[int][]*directive
	all    []*directive
}

// buildDirectiveSet scans the comments of every file (production and
// test) of the selected packages.
func buildDirectiveSet(pkgs []*Package) *directiveSet {
	ds := &directiveSet{byFile: map[string]map[int][]*directive{}}
	for _, pkg := range pkgs {
		files := append(append([]*ast.File{}, pkg.Files...), pkg.TestFiles...)
		for _, f := range files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//"+ignoreDirective)
					if !ok {
						continue
					}
					fields := strings.Fields(text)
					if len(fields) == 0 {
						continue
					}
					d := &directive{
						pos:           pkg.Fset.Position(c.Pos()),
						justification: strings.Join(fields[1:], " "),
						used:          map[string]bool{},
					}
					for _, name := range strings.Split(fields[0], ",") {
						if name != "" {
							d.names = append(d.names, name)
						}
					}
					byLine := ds.byFile[d.pos.Filename]
					if byLine == nil {
						byLine = map[int][]*directive{}
						ds.byFile[d.pos.Filename] = byLine
					}
					byLine[d.pos.Line] = append(byLine[d.pos.Line], d)
					ds.all = append(ds.all, d)
				}
			}
		}
	}
	sort.Slice(ds.all, func(i, j int) bool {
		a, b := ds.all[i].pos, ds.all[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return ds
}

// suppress reports whether a directive covers a finding of the given
// analyzer at pos, marking the directive used when it does.
func (ds *directiveSet) suppress(pos token.Position, analyzer string) bool {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	byLine := ds.byFile[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, d := range byLine[line] {
			for _, name := range d.names {
				if name == analyzer {
					d.used[name] = true
					return true
				}
			}
		}
	}
	return false
}

// audit reports one ignore-audit finding per defective directive:
// unknown analyzer names (not in the suite at all), missing
// justifications, and names that suppressed nothing even though the
// named analyzer ran. A directive naming an analyzer outside the
// current run set is not audited for staleness — that analyzer had no
// chance to fire.
func (ds *directiveSet) audit(m *Module, runSet, known map[string]bool) {
	type defect struct {
		pos token.Position
		msg string
	}
	var defects []defect
	ds.mu.Lock()
	for _, d := range ds.all {
		for _, name := range d.names {
			if !known[name] {
				defects = append(defects, defect{d.pos,
					"//yyvet:ignore names unknown analyzer " + name + "; see yyvet -list for the suite"})
				continue
			}
			if runSet[name] && !d.used[name] {
				defects = append(defects, defect{d.pos,
					"//yyvet:ignore " + name + " suppresses nothing on this line; delete the stale directive"})
			}
		}
		if d.justification == "" {
			defects = append(defects, defect{d.pos,
				"//yyvet:ignore lacks a justification; explain why the finding is safe to suppress"})
		}
	}
	ds.mu.Unlock()
	// Report outside the lock: report consults the directive set for
	// suppression, which re-locks it.
	for _, df := range defects {
		m.report(IgnoreAudit.Name, df.pos, df.msg)
	}
}
