package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// toleranceHelper matches the names of functions that are designated
// tolerance helpers: their whole purpose is to define a comparison, so
// exact equality inside them is intentional (e.g. an exact-match fast
// path before a relative-error check).
var toleranceHelper = regexp.MustCompile(`(?i)(approx|almost|near|close|within|tol|same)`)

// FloatEq reports == and != between floating-point (or complex)
// expressions outside _test.go files and designated tolerance helpers.
// The NaN idiom x != x is exempt.
//
// Paper provenance: the reproduction checks serial/parallel
// equivalence and energy budgets through residuals; a raw float
// equality in solver or diagnostic code almost always means a
// tolerance was forgotten, and such comparisons silently flip when the
// reduction order changes (the mpi runtime guarantees rank-ordered
// reductions precisely so that tolerated comparisons stay stable).
var FloatEq = &Analyzer{
	Name: "float-eq",
	Doc: "direct ==/!= between floating-point expressions outside tests and " +
		"tolerance helpers; compare against a tolerance instead",
	Run: runFloatEq,
}

func runFloatEq(pass *Pass) error {
	for _, file := range pass.Files {
		inspectWithParents(file, func(n ast.Node, parents []ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloatExpr(pass, bin.X) && !isFloatExpr(pass, bin.Y) {
				return true
			}
			// x != x / x == x: the IEEE NaN test.
			if types.ExprString(bin.X) == types.ExprString(bin.Y) {
				return true
			}
			if toleranceHelper.MatchString(enclosingFuncName(parents)) {
				return true
			}
			pass.Reportf(bin.OpPos, "floating-point values compared with %s: use a tolerance (math.Abs(a-b) <= eps) or a designated helper", bin.Op)
			return true
		})
	}
	return nil
}

func isFloatExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
