package analyze

import "testing"

// TestFloatEq runs the analyzer over its fixture: raw ==/!= between
// floats and complexes are true positives; NaN idioms, integer
// comparisons and tolerance helpers are clean.
func TestFloatEq(t *testing.T) {
	for _, tc := range []struct{ name, dir string }{
		{"fixture", "floateq"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			runFixture(t, tc.dir, FloatEq)
		})
	}
}

// TestToleranceHelperNames pins which function names count as
// designated tolerance helpers.
func TestToleranceHelperNames(t *testing.T) {
	cases := []struct {
		name string
		want bool
	}{
		{"approxEqual", true},
		{"AlmostSame", true},
		{"nearlyEq", true},
		{"withinTol", true},
		{"Close", true},
		{"SameShape", true},
		{"Advance", false},
		{"Diagnose", false},
		{"exchangeHalos", false},
		{"", false},
	}
	for _, c := range cases {
		if got := toleranceHelper.MatchString(c.name); got != c.want {
			t.Errorf("toleranceHelper(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}
