package analyze

// IgnoreAudit is the stale-suppression sweep: after every other
// analyzer of the run has finished, it walks the //yyvet:ignore
// directives of the module and flags the defective ones — a directive
// naming an analyzer that does not exist, a directive whose named
// analyzer ran but suppressed nothing on that line (the finding it once
// silenced is gone; the directive is stale), and a directive with no
// justification text. It has no Run/RunModule body: the driver runs it
// as a dedicated audit phase so every directive's used-flag is final
// when inspected.
var IgnoreAudit = &Analyzer{
	Name: "ignore-audit",
	Doc: "//yyvet:ignore directives must name a real analyzer, still suppress a finding, " +
		"and carry a justification; stale or bare directives are flagged for deletion.",
}

// knownAnalyzerNames returns the name set of the full suite, the
// universe the audit checks directive names against.
func knownAnalyzerNames() map[string]bool {
	names := map[string]bool{}
	for _, a := range All() {
		names[a.Name] = true
	}
	return names
}
