package analyze

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestIgnoreAudit asserts the audit findings explicitly instead of via
// want comments: a want comment cannot share a line with the directive
// it describes, because the directive IS the flagged line.
func TestIgnoreAudit(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "ignoreaudit"), "fixture/ignoreaudit")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run([]*Package{pkg}, []*Analyzer{FloatEq, IgnoreAudit})
	if err != nil {
		t.Fatal(err)
	}
	wants := []struct {
		line     int
		analyzer string
		sub      string
	}{
		{12, "ignore-audit", "suppresses nothing"},
		{17, "ignore-audit", "unknown analyzer no-such-analyzer"},
		{18, "float-eq", "compared with =="}, // the unknown name suppresses nothing
		{22, "ignore-audit", "lacks a justification"},
	}
	if len(findings) != len(wants) {
		t.Fatalf("got %d findings, want %d:\n%v", len(findings), len(wants), findings)
	}
	for _, w := range wants {
		found := false
		for _, f := range findings {
			if f.Pos.Line == w.line && f.Analyzer == w.analyzer && strings.Contains(f.Message, w.sub) {
				found = true
			}
		}
		if !found {
			t.Errorf("missing %s finding at line %d containing %q\ngot: %v", w.analyzer, w.line, w.sub, findings)
		}
	}
	// The live, justified directive on line 7 must produce nothing.
	for _, f := range findings {
		if f.Pos.Line == 7 || f.Pos.Line == 8 {
			t.Errorf("live directive was flagged: %s", f)
		}
	}
}
