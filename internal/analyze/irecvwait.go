package analyze

import (
	"go/ast"
	"go/types"
)

// IrecvWait reports mpi.Irecv calls whose *Request is discarded or never
// completed with Wait in the enclosing function.
//
// Paper provenance: the flat-MPI halo exchange (PAPER.md §3) posts
// MPI_IRECV for each of the four Cartesian neighbours and must complete
// every receive before the stencils read the halo frame. A dropped
// request means the kernel can consume a half-filled halo buffer — a
// nondeterministic corruption that no test reliably catches.
var IrecvWait = &Analyzer{
	Name: "irecv-wait",
	Doc: "an mpi.Irecv whose *Request is discarded or never has Wait called " +
		"in the enclosing function leaves the receive incomplete while the " +
		"halo buffer is read",
	Run: runIrecvWait,
}

func runIrecvWait(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkIrecvBody(pass, fd.Body)
		}
	}
	return nil
}

// checkIrecvBody inspects one function body (closures included: a
// request handed to or waited in a nested literal still counts).
func checkIrecvBody(pass *Pass, body *ast.BlockStmt) {
	inspectWithParents(body, func(n ast.Node, parents []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isIrecvCall(pass, call) {
			return true
		}
		switch parent := nearestParent(parents).(type) {
		case *ast.ExprStmt:
			pass.Reportf(call.Pos(), "result of Irecv is discarded; the receive is never completed with Wait and the buffer may be read half-filled")
		case *ast.AssignStmt:
			id := assignedIdent(parent, call)
			if id == nil {
				return true // complex LHS (field, index): assume it escapes
			}
			if id.Name == "_" {
				pass.Reportf(call.Pos(), "Irecv request assigned to _; the receive is never completed with Wait")
				return true
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj == nil {
				return true
			}
			if !requestCompleted(pass, body, id, obj) {
				pass.Reportf(call.Pos(), "Irecv request %s is never completed: call %s.Wait() before reading the receive buffer", id.Name, id.Name)
			}
		}
		// Any other parent (call argument, return value, composite
		// literal element, ...) hands the request elsewhere; assume the
		// receiver completes it.
		return true
	})
}

// isIrecvCall recognizes a method call named Irecv returning a pointer
// to a type with a Wait method (i.e. *mpi.Request or a fixture
// equivalent).
func isIrecvCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Irecv" {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return true // no type info: keep the syntactic match
	}
	ptr, ok := tv.Type.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == "Wait" {
			return true
		}
	}
	return false
}

// nearestParent returns the innermost non-paren ancestor.
func nearestParent(parents []ast.Node) ast.Node {
	for i := len(parents) - 1; i >= 0; i-- {
		if _, ok := parents[i].(*ast.ParenExpr); ok {
			continue
		}
		return parents[i]
	}
	return nil
}

// assignedIdent finds the identifier on the LHS of assign that receives
// the value of call, or nil when the destination is not an identifier.
func assignedIdent(assign *ast.AssignStmt, call *ast.CallExpr) *ast.Ident {
	idx := 0
	if len(assign.Rhs) == len(assign.Lhs) {
		for i, rhs := range assign.Rhs {
			if rhs == call {
				idx = i
			}
		}
	}
	if idx >= len(assign.Lhs) {
		return nil
	}
	id, _ := assign.Lhs[idx].(*ast.Ident)
	return id
}

// blankAssigned reports whether id appears on the RHS of assign with a
// blank identifier as its destination.
func blankAssigned(assign *ast.AssignStmt, id *ast.Ident) bool {
	for i, rhs := range assign.Rhs {
		if rhs != id {
			continue
		}
		if i < len(assign.Lhs) {
			if lhs, ok := assign.Lhs[i].(*ast.Ident); ok && lhs.Name == "_" {
				return true
			}
		}
	}
	return false
}

// requestCompleted reports whether the request object obj (defined at
// def) is either completed by a Wait call or escapes the function body
// through any other use (argument, return, store), which we
// conservatively treat as completion elsewhere.
func requestCompleted(pass *Pass, body *ast.BlockStmt, def *ast.Ident, obj types.Object) bool {
	completed := false
	inspectWithParents(body, func(n ast.Node, parents []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id == def || pass.TypesInfo.Uses[id] != obj {
			return true
		}
		parent := nearestParent(parents)
		if sel, ok := parent.(*ast.SelectorExpr); ok && sel.X == id && sel.Sel.Name == "Wait" {
			completed = true
			return true
		}
		if assign, ok := parent.(*ast.AssignStmt); ok {
			for _, lhs := range assign.Lhs {
				if lhs == id {
					return true // reassignment target, not a use
				}
			}
			if blankAssigned(assign, id) {
				return true // `_ = req` silences the compiler, not the receive
			}
		}
		completed = true // escapes: passed, returned, stored, compared...
		return true
	})
	return completed
}
