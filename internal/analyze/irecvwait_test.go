package analyze

import "testing"

// TestIrecvWait runs the analyzer over its fixture: discarded, blank-
// assigned and never-waited requests are true positives; waited,
// escaping and suppressed requests are clean.
func TestIrecvWait(t *testing.T) {
	for _, tc := range []struct{ name, dir string }{
		{"fixture", "irecv"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			runFixture(t, tc.dir, IrecvWait)
		})
	}
}
