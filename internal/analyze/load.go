package analyze

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, parsed and type-checked package of the module.
type Package struct {
	Path  string // import path, e.g. "repro/internal/mpi"
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File // non-test files
	// TestFiles holds the package's in-package _test.go files, parsed
	// and type-checked together with Files. They are kept separate so
	// production-code analyzers keep ranging over Files only, while
	// test-targeted analyzers (runwith-deadline) range over TestFiles.
	TestFiles []*ast.File
	Types     *types.Package
	Info      *types.Info
}

// FindModuleRoot walks upward from dir to the nearest directory holding
// a go.mod and returns its absolute path.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("analyze: no go.mod above %s", dir)
		}
		abs = parent
	}
}

// modulePath extracts the module path from the go.mod in root.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			if p, err := strconv.Unquote(rest); err == nil {
				return p, nil
			}
			return rest, nil
		}
	}
	return "", fmt.Errorf("analyze: no module directive in %s/go.mod", root)
}

// LoadModule parses and type-checks every package under the module
// rooted at root (skipping testdata, vendor, hidden and nested-module
// directories), returning packages sorted by import path.
//
// Type-checking runs in two phases. Phase 1 checks production files in
// topological import order, registering each result with the module
// importer. Phase 2 re-checks packages that have in-package _test.go
// files together with those files, resolving imports against the
// completed phase-1 set — test files may import module packages that
// sit later in the production topo order (or each other's packages),
// so they cannot participate in the ordering itself.
func LoadModule(root string) ([]*Package, error) {
	root, err := FindModuleRoot(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	type rawPkg struct {
		path, dir string
		files     []*ast.File
		testFiles []*ast.File
		imports   []string
	}
	raw := map[string]*rawPkg{}
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root {
			if name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir // nested module
			}
		}
		files, testFiles, err := parseDir(fset, path)
		if err != nil {
			return err
		}
		if len(files) == 0 {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		rp := &rawPkg{path: importPath, dir: path, files: files, testFiles: testFiles}
		seen := map[string]bool{}
		for _, f := range files {
			for _, imp := range f.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if !seen[p] {
					seen[p] = true
					rp.imports = append(rp.imports, p)
				}
			}
		}
		raw[importPath] = rp
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Topological order over intra-module imports so dependencies are
	// type-checked before their importers.
	var order []string
	state := map[string]int{} // 0 unvisited, 1 in progress, 2 done
	var visit func(p string) error
	visit = func(p string) error {
		rp := raw[p]
		if rp == nil || state[p] == 2 {
			return nil
		}
		if state[p] == 1 {
			return fmt.Errorf("analyze: import cycle through %s", p)
		}
		state[p] = 1
		for _, imp := range rp.imports {
			if strings.HasPrefix(imp, modPath+"/") || imp == modPath {
				if err := visit(imp); err != nil {
					return err
				}
			}
		}
		state[p] = 2
		order = append(order, p)
		return nil
	}
	var paths []string
	for p := range raw {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}

	imp := newModuleImporter(fset)
	var pkgs []*Package
	for _, p := range order {
		rp := raw[p]
		pkg, err := typeCheck(fset, rp.path, rp.files, nil, imp)
		if err != nil {
			return nil, err
		}
		pkg.Dir = rp.dir
		imp.module[p] = pkg.Types
		pkgs = append(pkgs, pkg)
	}

	// Phase 2: re-check packages with test files, now that every
	// production package is available to the importer. The importer
	// keeps serving the phase-1 types.Package to importers of p, so
	// downstream results are unaffected.
	for i, pkg := range pkgs {
		rp := raw[pkg.Path]
		if len(rp.testFiles) == 0 {
			continue
		}
		full, err := typeCheck(fset, rp.path, rp.files, rp.testFiles, imp)
		if err != nil {
			return nil, err
		}
		full.Dir = rp.dir
		pkgs[i] = full
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir under the
// given import path; imports resolve against the standard library only.
// It is the fixture loader used by the analyzer tests.
func LoadDir(dir, importPath string) (*Package, error) {
	fset := token.NewFileSet()
	files, testFiles, err := parseDir(fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 && len(testFiles) == 0 {
		return nil, fmt.Errorf("analyze: no Go files in %s", dir)
	}
	pkg, err := typeCheck(fset, importPath, files, testFiles, newModuleImporter(fset))
	if err != nil {
		return nil, err
	}
	pkg.Dir = dir
	return pkg, nil
}

// parseDir parses every .go file in dir (non-recursive), with comments
// retained for ignore directives, returning non-test and _test.go
// files separately. External test packages (package foo_test) are not
// supported — the module does not use them — and would fail the joint
// type-check with a package-name mismatch.
func parseDir(fset *token.FileSet, dir string) (files, testFiles []*ast.File, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		path := filepath.Join(dir, name)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		if !buildIncluded(src) {
			continue
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		if strings.HasSuffix(name, "_test.go") {
			testFiles = append(testFiles, f)
		} else {
			files = append(files, f)
		}
	}
	return files, testFiles, nil
}

// buildIncluded evaluates the file's //go:build constraint (if any)
// against the default build configuration — GOOS, GOARCH and release
// tags only. Files gated on anything else (race, integration tags) are
// excluded, exactly as a plain `go build` would exclude them; without
// this, a race/!race constant pair type-checks as a redeclaration.
func buildIncluded(src []byte) bool {
	for _, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimSpace(line)
		if constraint.IsGoBuild(trimmed) {
			expr, err := constraint.Parse(trimmed)
			if err != nil {
				return true
			}
			return expr.Eval(func(tag string) bool {
				return tag == runtime.GOOS || tag == runtime.GOARCH || strings.HasPrefix(tag, "go1")
			})
		}
		if trimmed == "" || strings.HasPrefix(trimmed, "//") {
			continue
		}
		break // reached the package clause: the constraint header is over
	}
	return true
}

func typeCheck(fset *token.FileSet, importPath string, files, testFiles []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	all := make([]*ast.File, 0, len(files)+len(testFiles))
	all = append(all, files...)
	all = append(all, testFiles...)
	tpkg, err := conf.Check(importPath, fset, all, info)
	if err != nil {
		return nil, fmt.Errorf("analyze: type-checking %s: %w", importPath, err)
	}
	return &Package{Path: importPath, Fset: fset, Files: files, TestFiles: testFiles, Types: tpkg, Info: info}, nil
}

// moduleImporter resolves module-internal import paths from the
// packages type-checked so far and everything else (the standard
// library) through the stdlib source importer — the toolchain no longer
// ships export data for std, so importer.Default is not an option for a
// zero-dependency tool.
type moduleImporter struct {
	module map[string]*types.Package
	std    types.Importer
}

func newModuleImporter(fset *token.FileSet) *moduleImporter {
	return &moduleImporter{
		module: map[string]*types.Package{},
		std:    importer.ForCompiler(fset, "source", nil),
	}
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.module[path]; ok {
		return p, nil
	}
	return m.std.Import(path)
}
