package analyze

import (
	"go/ast"
	"go/types"
)

// OverlapOrder reports reads of halo-exchanged arrays inside an overlap
// window — between a haloStart call that posts the receives and the
// haloFinish that completes them — unless the read is routed through a
// declared interior region.
//
// Paper provenance: the overlapped schedule hides halo latency by
// computing while messages fly (PAPER.md §3's posted MPI_IRECV
// exchanges). That is only sound for compute that provably needs no
// halo bytes — kernels restricted to the interior region, whose columns
// sit at least a stencil radius from every seam. A full-region kernel
// or a direct array read inside the window consumes half-exchanged
// halos: a data race in schedule form, bit-visible only on unlucky
// timing. The analyzer flags any use of a haloStart-tracked array
// between the post and the wait whose enclosing call does not also
// receive an interior region argument.
var OverlapOrder = &Analyzer{
	Name: "overlap-order",
	Doc: "a halo-exchanged array read between haloStart and haloFinish can see " +
		"half-exchanged halo bytes; restrict the window to kernels on the " +
		"declared interior region or move the read after the wait",
	Run: runOverlapOrder,
}

func runOverlapOrder(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if block, ok := n.(*ast.BlockStmt); ok {
					checkOverlapBlock(pass, block)
				}
				return true
			})
		}
	}
	return nil
}

// overlapWindow is one open haloStart..haloFinish region: the variable
// the overlap handle was assigned to (empty when discarded) and the
// printed forms of the tracked array expressions.
type overlapWindow struct {
	varName string
	roots   map[string]bool
}

// checkOverlapBlock scans one statement list in order, opening a window
// at each haloStart, closing it at the haloFinish naming its handle,
// and flagging tracked reads in between. Nested blocks are scanned by
// their own invocation; reads inside them still count against windows
// of this level because each statement is inspected in full.
func checkOverlapBlock(pass *Pass, block *ast.BlockStmt) {
	var windows []overlapWindow
	for _, stmt := range block.List {
		// Closes first: a finish and a read in one statement is the
		// post-wait shape, not an overlap read.
		if names, found := overlapFinishNames(stmt); found {
			windows = closeOverlapWindows(windows, names)
		}
		if len(windows) > 0 {
			flagOverlapReads(pass, stmt, windows)
		}
		if w, ok := overlapStartWindow(pass, stmt); ok {
			windows = append(windows, w)
		}
	}
}

// overlapStartWindow extracts the window a statement opens via a
// haloStart call: the tracked roots are the printed forms of the fields
// argument (each element of a composite literal, or the expression
// itself).
func overlapStartWindow(pass *Pass, stmt ast.Stmt) (overlapWindow, bool) {
	w := overlapWindow{roots: map[string]bool{}}
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isMethodCall(call, "haloStart") || len(call.Args) == 0 {
			return true
		}
		found = true
		switch arg := call.Args[0].(type) {
		case *ast.CompositeLit:
			for _, el := range arg.Elts {
				w.roots[types.ExprString(el)] = true
			}
		default:
			w.roots[types.ExprString(arg)] = true
		}
		return true
	})
	if !found {
		return w, false
	}
	if assign, ok := stmt.(*ast.AssignStmt); ok && len(assign.Lhs) == 1 {
		if id, ok := assign.Lhs[0].(*ast.Ident); ok {
			w.varName = id.Name
		}
	}
	return w, true
}

// overlapFinishNames collects the handle identifiers a statement's
// haloFinish calls mention. found reports whether any haloFinish call
// is present (a finish with no identifiable handle closes every
// window, conservatively).
func overlapFinishNames(stmt ast.Stmt) (map[string]bool, bool) {
	names := map[string]bool{}
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isMethodCall(call, "haloFinish") {
			return true
		}
		found = true
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok {
					names[id.Name] = true
				}
				return true
			})
		}
		return true
	})
	return names, found
}

func closeOverlapWindows(windows []overlapWindow, names map[string]bool) []overlapWindow {
	if len(names) == 0 {
		return nil // unidentifiable handle: assume everything completed
	}
	kept := windows[:0]
	for _, w := range windows {
		if w.varName == "" || !names[w.varName] {
			kept = append(kept, w)
		}
	}
	return kept
}

// flagOverlapReads reports every use of a tracked root inside stmt that
// is not under a haloStart/haloFinish call (the exchange machinery
// itself) and not under a call that also receives an interior region
// argument.
func flagOverlapReads(pass *Pass, stmt ast.Stmt, windows []overlapWindow) {
	inspectWithParents(stmt, func(n ast.Node, parents []ast.Node) bool {
		expr, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		switch expr.(type) {
		case *ast.Ident, *ast.SelectorExpr:
		default:
			return true
		}
		printed := types.ExprString(expr)
		tracked := false
		for _, w := range windows {
			if w.roots[printed] {
				tracked = true
				break
			}
		}
		if !tracked {
			return true
		}
		for _, p := range parents {
			call, ok := p.(*ast.CallExpr)
			if !ok {
				continue
			}
			if isMethodCall(call, "haloStart") || isMethodCall(call, "haloFinish") {
				return true // the exchange machinery handles its own fields
			}
			if callHasInteriorArg(call) {
				return true // declared interior-region kernel: no halo reads
			}
		}
		pass.Reportf(expr.Pos(), "%s is read between haloStart and haloFinish and may see half-exchanged halos; route it through a kernel on the interior region or move the read after haloFinish", printed)
		return false // don't re-flag the sub-expressions
	})
}

// isMethodCall recognizes a method call with the given selector name.
func isMethodCall(call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == name
}

// callHasInteriorArg reports whether any argument of the call is the
// declared interior region: an identifier or field selector named
// "interior".
func callHasInteriorArg(call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		switch a := arg.(type) {
		case *ast.Ident:
			if a.Name == "interior" {
				return true
			}
		case *ast.SelectorExpr:
			if a.Sel.Name == "interior" {
				return true
			}
		}
	}
	return false
}
