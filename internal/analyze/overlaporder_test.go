package analyze

import "testing"

// TestOverlapOrder runs the analyzer over its fixture: direct reads,
// indexed reads, full-region kernels and nested-block reads inside an
// open window are true positives; interior-region kernels, untracked
// arrays, closed windows and post-finish reads are clean.
func TestOverlapOrder(t *testing.T) {
	for _, tc := range []struct{ name, dir string }{
		{"fixture", "overlaporder"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			runFixture(t, tc.dir, OverlapOrder)
		})
	}
}
