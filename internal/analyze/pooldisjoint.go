package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolDisjoint checks the determinism contract of par.Pool.For tile
// closures: every tile owns the half-open range [lo,hi), so parallel
// execution is bit-identical to serial execution ONLY if each closure
// writes exclusively through indices derived from its tile range.
// Two violations are flagged: accumulation into a captured scalar
// (a data race and an order-dependent reduction — use a per-tile
// partial combined in tile order, the ReduceMax/ReduceSum shape), and
// writes into captured memory indexed by nothing derived from the tile
// induction variables (tiles may collide on the same element).
var PoolDisjoint = &Analyzer{
	Name: "pool-disjoint",
	Doc: "par.Pool.For tile closures must write only through tile-derived indices; " +
		"captured-scalar accumulation belongs in ReduceSum/ReduceMax.",
	Run: runPoolDisjoint,
}

func runPoolDisjoint(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if lit := poolForLit(pass.TypesInfo, call); lit != nil {
				checkTileClosure(pass, lit)
			}
			return true
		})
	}
	return nil
}

// poolForLit recognizes a par.Pool For call whose last argument is a
// function literal and returns that literal.
func poolForLit(info *types.Info, call *ast.CallExpr) *ast.FuncLit {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "For" || len(call.Args) != 2 {
		return nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Name() != "par" {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	lit, ok := ast.Unparen(call.Args[1]).(*ast.FuncLit)
	if !ok {
		return nil
	}
	return lit
}

// checkTileClosure analyzes one tile closure body.
func checkTileClosure(pass *Pass, lit *ast.FuncLit) {
	info := pass.TypesInfo

	// Seed the tile-derived set with the closure's (lo, hi) parameters.
	derived := map[types.Object]bool{}
	for _, f := range lit.Type.Params.List {
		for _, name := range f.Names {
			if obj := info.Defs[name]; obj != nil {
				derived[obj] = true
			}
		}
	}
	captured := func(obj types.Object) bool {
		return obj != nil && (obj.Pos() < lit.Pos() || obj.Pos() > lit.End())
	}
	refsAny := func(e ast.Expr, set map[types.Object]bool) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && set[info.Uses[id]] {
				found = true
			}
			return !found
		})
		return found
	}
	refsCaptured := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj, isVar := info.Uses[id].(*types.Var); isVar && captured(obj) {
					found = true
				}
			}
			return !found
		})
		return found
	}

	// Propagate derivation through local bindings to a fixpoint: a local
	// bound from a tile-derived expression is itself tile-derived, and a
	// nested closure's parameters are its caller's responsibility (the
	// values passed in were checked at the call), so they count as safe.
	// Locals bound purely from captured state are recorded: a write
	// through such an alias is as suspect as a write through the
	// captured variable itself.
	fromCaptured := map[types.Object]bool{}
	for changed := true; changed; {
		changed = false
		mark := func(obj types.Object, rhsDerived, rhsCaptured bool) {
			if obj == nil {
				return
			}
			if rhsDerived && !derived[obj] {
				derived[obj] = true
				changed = true
			}
			if rhsCaptured && !rhsDerived && !fromCaptured[obj] {
				fromCaptured[obj] = true
				changed = true
			}
		}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				for _, f := range n.Type.Params.List {
					for _, name := range f.Names {
						if obj := info.Defs[name]; obj != nil && !derived[obj] {
							derived[obj] = true
							changed = true
						}
					}
				}
			case *ast.AssignStmt:
				rhsDerived, rhsCaptured := false, false
				for _, rhs := range n.Rhs {
					rhsDerived = rhsDerived || refsAny(rhs, derived)
					rhsCaptured = rhsCaptured || refsCaptured(rhs)
				}
				for _, lhs := range n.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						obj := info.Defs[id]
						if obj == nil {
							obj = info.Uses[id]
						}
						if !captured(obj) {
							mark(obj, rhsDerived, rhsCaptured)
						}
					}
				}
			case *ast.RangeStmt:
				xDerived := refsAny(n.X, derived)
				xCaptured := refsCaptured(n.X)
				for _, v := range []ast.Expr{n.Key, n.Value} {
					if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
						obj := info.Defs[id]
						// The KEY of any range is a position, which is as
						// good as derived when the ranged value is; the
						// VALUE inherits the source's provenance the same
						// way.
						mark(obj, xDerived, xCaptured)
					}
				}
			}
			return true
		})
	}

	report := func(pos token.Pos, format string, args ...any) {
		pass.Reportf(pos, format, args...)
	}

	checkWrite := func(lhs ast.Expr, compound bool) {
		lhs = ast.Unparen(lhs)
		switch lhs := lhs.(type) {
		case *ast.Ident:
			obj, _ := info.Uses[lhs].(*types.Var)
			if obj == nil || !captured(obj) {
				return
			}
			if _, isBasic := obj.Type().Underlying().(*types.Basic); isBasic {
				report(lhs.Pos(),
					"accumulation into captured %s inside a Pool.For tile closure; compute a per-tile partial and combine in tile order (the ReduceSum/ReduceMax shape)",
					lhs.Name)
			}
		case *ast.IndexExpr:
			if refsAny(lhs, derived) {
				return // indexed by the tile range somewhere in the chain
			}
			base := baseIdent(lhs)
			if base == nil {
				return
			}
			obj := info.Uses[base]
			if obj == nil {
				return
			}
			if captured(obj) || fromCaptured[obj] {
				report(lhs.Pos(),
					"write into %s inside a Pool.For tile closure is not indexed by the tile range; tiles may write the same element",
					base.Name)
			}
		}
		_ = compound
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				checkWrite(lhs, n.Tok != token.ASSIGN)
			}
		case *ast.IncDecStmt:
			checkWrite(n.X, true)
		}
		return true
	})
}

// baseIdent returns the leftmost identifier of an index/selector chain
// (a[i], a.b[i], a[i][j] all bottom at a), or nil.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}
