package analyze

import "testing"

// TestPoolDisjoint: captured-scalar accumulation and writes not indexed
// by the tile range are flagged inside Pool.For closures; tile-derived
// index chains and closure-local scalars are not.
func TestPoolDisjoint(t *testing.T) {
	runFixture(t, "pooldisjoint", PoolDisjoint)
}
