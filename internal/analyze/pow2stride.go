package analyze

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// pow2MinDim is the smallest dimension the analyzer complains about.
// Bank conflicts on the Earth Simulator hurt when a power-of-two stride
// aliases the interleaved memory banks across vector-register-length
// sweeps; tiny fixed-size arrays ([2]int dims, [4]float64 interpolation
// weights) are not strides and stay exempt.
const pow2MinDim = 32

// hotPackages are the inner-loop packages where array dimensioning
// determines vector-sweep strides.
var hotPackages = map[string]bool{
	"fd":      true,
	"mhd":     true,
	"overset": true,
	"sphops":  true,
}

// Pow2Stride reports numeric arrays or slices dimensioned with a
// power-of-two constant >= 32 inside the hot packages.
//
// Paper provenance: the yycore production grids use radial extents
// "just below the size (or doubled size) of the vector register" — 255
// or 511, never 256 or 512 — because a power-of-two leading dimension
// makes consecutive vector sweeps hit the same memory bank
// (internal/es models this as BankPenalty). A power-of-two constant
// dimension in a hot package silently re-introduces the penalized
// layout.
var Pow2Stride = &Analyzer{
	Name: "pow2-stride",
	Doc: "a numeric array or slice sized to a power-of-two constant inside the " +
		"hot packages (fd, mhd, overset, sphops) re-creates the Earth " +
		"Simulator's memory-bank-conflict stride; pad the dimension by one",
	Run: runPow2Stride,
}

func runPow2Stride(pass *Pass) error {
	if !hotPackages[pass.Pkg.Name()] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkMakeDims(pass, n)
			case *ast.ArrayType:
				if n.Len == nil {
					return true
				}
				if elem, ok := pass.TypesInfo.Types[n.Elt]; ok && !isNumericType(elem.Type) {
					return true
				}
				if v, ok := constDim(pass, n.Len); ok && isPenalizedPow2(v) {
					pass.Reportf(n.Len.Pos(), "array dimension %d is a power of two: consecutive vector sweeps collide on the same memory bank (ES BankPenalty); pad to %d", v, v+1)
				}
			}
			return true
		})
	}
	return nil
}

// checkMakeDims flags make([]T, n[, c]) with a penalized constant
// length or capacity and numeric element type.
func checkMakeDims(pass *Pass, call *ast.CallExpr) {
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "make" || len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok {
		return
	}
	slice, ok := tv.Type.Underlying().(*types.Slice)
	if !ok || !isNumericType(slice.Elem()) {
		return
	}
	for _, dim := range call.Args[1:] {
		if v, ok := constDim(pass, dim); ok && isPenalizedPow2(v) {
			pass.Reportf(dim.Pos(), "slice dimension %d is a power of two: consecutive vector sweeps collide on the same memory bank (ES BankPenalty); pad to %d", v, v+1)
		}
	}
}

// constDim extracts a compile-time integer value from a dimension
// expression, folding constant arithmetic like 1<<8 or nr*nt.
func constDim(pass *Pass, e ast.Expr) (int64, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v := constant.ToInt(tv.Value)
	if v.Kind() != constant.Int {
		return 0, false
	}
	n, exact := constant.Int64Val(v)
	if !exact {
		return 0, false
	}
	return n, true
}

func isPenalizedPow2(n int64) bool {
	return n >= pow2MinDim && n&(n-1) == 0
}

// isNumericType accepts numeric basics and arrays/slices of them, so a
// [64][3]float64 tile still counts as a numeric stride.
func isNumericType(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsNumeric != 0
	case *types.Array:
		return isNumericType(u.Elem())
	case *types.Slice:
		return isNumericType(u.Elem())
	}
	return false
}
