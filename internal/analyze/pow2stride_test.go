package analyze

import "testing"

// TestPow2Stride runs the analyzer over its fixtures: power-of-two
// dimensions in a hot package (fd) are true positives; padded, small,
// runtime-sized and non-numeric dimensions are clean, and the identical
// code in a cold package (viz) is entirely exempt.
func TestPow2Stride(t *testing.T) {
	for _, tc := range []struct{ name, dir string }{
		{"hot-package", "pow2"},
		{"cold-package", "pow2cold"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			runFixture(t, tc.dir, Pow2Stride)
		})
	}
}

// TestIsPenalizedPow2 pins the threshold arithmetic.
func TestIsPenalizedPow2(t *testing.T) {
	cases := []struct {
		n    int64
		want bool
	}{
		{0, false}, {1, false}, {2, false}, {4, false}, {16, false},
		{31, false}, {32, true}, {33, false}, {64, true}, {96, false},
		{255, false}, {256, true}, {257, false}, {511, false}, {512, true},
		{1024, true}, {4096, true},
	}
	for _, c := range cases {
		if got := isPenalizedPow2(c.n); got != c.want {
			t.Errorf("isPenalizedPow2(%d) = %v, want %v", c.n, got, c.want)
		}
	}
}
