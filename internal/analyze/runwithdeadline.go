package analyze

import (
	"go/ast"
)

// RunWithDeadline reports mpi.RunWith calls in _test.go files whose
// RunConfig does not set Deadline.
//
// Paper provenance: the goroutine runtime's collectives block until
// every rank arrives, so a test that wedges — a mismatched tag, an
// injected fault the transport does not absorb, a rank killed without
// recovery — blocks forever and burns the entire `go test` timeout for
// the package instead of failing in milliseconds. RunConfig.Deadline is
// the watchdog that converts such a wedge into a typed, attributable
// error; every test-side RunWith must set it. Production callsites are
// exempt: long campaign runs legitimately compute their own deadlines
// or run open-ended.
var RunWithDeadline = &Analyzer{
	Name: "runwith-deadline",
	Doc: "mpi.RunWith in a test must set RunConfig.Deadline so a wedged " +
		"run fails fast under the watchdog instead of consuming the whole " +
		"go test timeout",
	Run: runRunWithDeadline,
}

func runRunWithDeadline(pass *Pass) error {
	for _, file := range pass.TestFiles {
		file := file
		inspectWithParents(file, func(n ast.Node, parents []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || calleeName(call) != "RunWith" || len(call.Args) < 2 {
				return true
			}
			if !deadlineSet(pass, file, call.Args[1]) {
				pass.Reportf(call.Pos(),
					"RunWith in a test must set RunConfig.Deadline; without the watchdog a wedged run blocks until the go test timeout")
			}
			return true
		})
	}
	return nil
}

// deadlineSet reports whether the RunConfig expression observably sets
// Deadline. Composite literals are checked directly; a plain identifier
// is traced to its in-file composite-literal binding or a later
// `cfg.Deadline = ...` assignment. Anything opaque (a helper call, a
// field selection) is assumed to set it — helpers are the sanctioned
// place to centralize deadlines, and guessing would produce noise.
func deadlineSet(pass *Pass, file *ast.File, cfg ast.Expr) bool {
	switch e := cfg.(type) {
	case *ast.CompositeLit:
		return litSetsDeadline(e)
	case *ast.Ident:
		obj := pass.TypesInfo.ObjectOf(e)
		if obj == nil {
			return true
		}
		found := false
		ast.Inspect(file, func(n ast.Node) bool {
			if found {
				return false
			}
			switch s := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range s.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj && i < len(s.Rhs) {
						if cl, ok := s.Rhs[i].(*ast.CompositeLit); ok && litSetsDeadline(cl) {
							found = true
						}
						// Opaque initializer (helper call): trust it.
						if _, ok := s.Rhs[i].(*ast.CompositeLit); !ok {
							found = true
						}
					}
					if sel, ok := lhs.(*ast.SelectorExpr); ok && sel.Sel.Name == "Deadline" {
						if id, ok := sel.X.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
							found = true
						}
					}
				}
			case *ast.ValueSpec:
				for i, name := range s.Names {
					if pass.TypesInfo.ObjectOf(name) == obj && i < len(s.Values) {
						if cl, ok := s.Values[i].(*ast.CompositeLit); ok && litSetsDeadline(cl) {
							found = true
						} else if _, ok := s.Values[i].(*ast.CompositeLit); !ok {
							found = true
						}
					}
				}
			}
			return true
		})
		return found
	default:
		return true
	}
}

// litSetsDeadline reports whether the composite literal names a
// Deadline key. A positional literal necessarily supplies every field,
// Deadline included.
func litSetsDeadline(cl *ast.CompositeLit) bool {
	for _, el := range cl.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			return true // positional: all fields present
		}
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Deadline" {
			return true
		}
	}
	return false
}
