package analyze

import "testing"

// TestRunWithDeadline runs the analyzer over its fixture: test-file
// RunWith calls whose RunConfig observably lacks Deadline are findings;
// literals and traced variables that set it, opaque helper-built
// configs, suppressed sites and production-file callsites are clean.
func TestRunWithDeadline(t *testing.T) {
	runFixture(t, "runwithdeadline", RunWithDeadline)
}
