package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpanEnd reports obs span Begins that are not closed on every return
// path of the enclosing function.
//
// Paper provenance: the run report attributes compute/comm/wait time
// from recorded span durations (PAPER.md §5's PROGINF-style analysis).
// A Begin without a matching End leaves an open span in the ring: its
// duration stays zero, the phase silently vanishes from the report, and
// the exclusive-time reconstruction misattributes everything nested
// inside it. An early return between Begin and End is the same bug on
// one path only — which is why the safe idiom is
// `defer rr.Begin(kind).End()` or a defer on the assigned span.
var SpanEnd = &Analyzer{
	Name: "span-end",
	Doc: "an obs span Begin whose Span is discarded, never ended, or ended " +
		"only after an early return leaves an open span that corrupts the " +
		"run report's time attribution",
	Run: runSpanEnd,
}

func runSpanEnd(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSpanBody(pass, fd.Body)
		}
	}
	return nil
}

// checkSpanBody inspects one function body, closures included; each
// Begin's return-path analysis is scoped to its own innermost function.
func checkSpanBody(pass *Pass, body *ast.BlockStmt) {
	inspectWithParents(body, func(n ast.Node, parents []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isSpanBeginCall(pass, call) {
			return true
		}
		switch parent := nearestParent(parents).(type) {
		case *ast.ExprStmt:
			pass.Reportf(call.Pos(), "result of Begin is discarded; the span is never ended and its duration stays zero in the report")
		case *ast.SelectorExpr:
			// rr.Begin(kind).End() — chained End; fine under defer or not.
			return true
		case *ast.AssignStmt:
			id := assignedIdent(parent, call)
			if id == nil {
				return true // complex LHS: assume it escapes
			}
			if id.Name == "_" {
				pass.Reportf(call.Pos(), "span assigned to _; the span is never ended")
				return true
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj == nil {
				return true
			}
			checkSpanUse(pass, call, enclosingFuncBody(parents, body), id, obj)
		}
		// Other parents (call argument, return, composite literal, ...)
		// hand the span elsewhere; assume the receiver ends it.
		return true
	})
}

// checkSpanUse classifies every use of the span object inside fnBody and
// reports the two failure shapes: never ended, and ended only after an
// early return path.
func checkSpanUse(pass *Pass, begin *ast.CallExpr, fnBody *ast.BlockStmt, def *ast.Ident, obj types.Object) {
	var (
		deferred bool      // defer sp.End() anywhere
		escapes  bool      // passed, returned, stored: assume ended elsewhere
		lastEnd  token.Pos // latest plain sp.End() call
	)
	inspectWithParents(fnBody, func(n ast.Node, parents []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id == def || pass.TypesInfo.Uses[id] != obj {
			return true
		}
		parent := nearestParent(parents)
		if sel, ok := parent.(*ast.SelectorExpr); ok && sel.X == id && sel.Sel.Name == "End" {
			if underDefer(parents) || insideFuncLit(parents, fnBody) {
				// defer runs on every path; a closure's timing is the
				// closure's business — both close the span safely.
				deferred = true
				return true
			}
			if sel.End() > lastEnd {
				lastEnd = sel.End()
			}
			return true
		}
		if assign, ok := parent.(*ast.AssignStmt); ok {
			for _, lhs := range assign.Lhs {
				if lhs == id {
					return true // reassignment target, not a use
				}
			}
			if blankAssigned(assign, id) {
				return true // `_ = sp` silences the compiler, not the span
			}
		}
		escapes = true
		return true
	})
	if deferred || escapes {
		return
	}
	if lastEnd == token.NoPos {
		pass.Reportf(begin.Pos(), "span %s is never ended: call %s.End() or use `defer %s.End()`", def.Name, def.Name, def.Name)
		return
	}
	if ret := returnBetween(fnBody, begin.End(), lastEnd); ret != token.NoPos {
		pass.Reportf(ret, "return between %s.Begin and %s.End leaves the span open on this path; use `defer %s.End()`", def.Name, def.Name, def.Name)
	}
}

// returnBetween finds a ReturnStmt of fnBody's own function (nested
// function literals are skipped) positioned after lo and before hi.
func returnBetween(fnBody *ast.BlockStmt, lo, hi token.Pos) token.Pos {
	found := token.NoPos
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // its returns exit the literal, not this function
		}
		if ret, ok := n.(*ast.ReturnStmt); ok {
			if ret.Pos() > lo && ret.Pos() < hi && found == token.NoPos {
				found = ret.Pos()
			}
		}
		return true
	})
	return found
}

// underDefer reports whether the innermost statement ancestor is a
// DeferStmt.
func underDefer(parents []ast.Node) bool {
	for i := len(parents) - 1; i >= 0; i-- {
		switch parents[i].(type) {
		case *ast.DeferStmt:
			return true
		case ast.Stmt:
			return false
		}
	}
	return false
}

// insideFuncLit reports whether the use site sits in a function literal
// nested below fnBody (so it runs on the literal's schedule, not the
// enclosing function's return paths).
func insideFuncLit(parents []ast.Node, fnBody *ast.BlockStmt) bool {
	for i := len(parents) - 1; i >= 0; i-- {
		if parents[i] == fnBody {
			return false
		}
		if _, ok := parents[i].(*ast.FuncLit); ok {
			return true
		}
	}
	return false
}

// enclosingFuncBody returns the body of the innermost function literal
// containing the node (via its parent stack), or outer when the node
// belongs to the outer function directly.
func enclosingFuncBody(parents []ast.Node, outer *ast.BlockStmt) *ast.BlockStmt {
	for i := len(parents) - 1; i >= 0; i-- {
		if fl, ok := parents[i].(*ast.FuncLit); ok {
			return fl.Body
		}
	}
	return outer
}

// isSpanBeginCall recognizes a method call named Begin whose result is a
// value type carrying an End method (obs.Span or a fixture equivalent).
func isSpanBeginCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Begin" {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == "End" {
			return true
		}
	}
	return false
}
