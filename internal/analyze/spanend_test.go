package analyze

import "testing"

// TestSpanEnd runs the analyzer over its fixture: discarded, blank-
// assigned, never-ended and early-return spans are true positives;
// deferred, chained, closure-closed, escaping and suppressed spans are
// clean, as is a Begin-named decoy without an End method.
func TestSpanEnd(t *testing.T) {
	for _, tc := range []struct{ name, dir string }{
		{"fixture", "spanend"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			runFixture(t, tc.dir, SpanEnd)
		})
	}
}
