package analyze

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// TagSpace checks the message-tag discipline of every Send/Recv/Irecv
// call site in the module, interprocedurally: the tag argument is
// evaluated through the constant-propagation fact, so a helper that
// receives its tag base as a parameter is checked once per caller-
// supplied base. Three contracts are enforced:
//
//  1. User tags must be non-negative (the negative space belongs to the
//     runtime's internal collectives; mpi panics at run time, this
//     catches it at vet time).
//  2. A concrete tag value must not be used by two different packages —
//     a cross-subsystem collision would let unrelated exchanges match
//     each other's messages.
//  3. Tags at sites on the step path (call-graph-reachable from a
//     decomp Advance/AdvanceScheme root) must be members of the
//     decomp.ExchangeTags() allocation, and every allocated tag must be
//     used somewhere — ExchangeTags is the tag-space registry the
//     fault-injection and observability layers key on, so drift in
//     either direction is a bug.
var TagSpace = &Analyzer{
	Name: "tag-space",
	Doc: "Send/Recv/Irecv tag arguments, resolved interprocedurally, must be non-negative, " +
		"collision-free across subsystems, and consistent with the decomp.ExchangeTags() allocation.",
	RunModule: runTagSpace,
}

// tagSite is one point-to-point call site with its resolved tag values.
type tagSite struct {
	node *FuncNode
	call *ast.CallExpr
	op   string // Send, Recv, Irecv
	vals ValueSet
}

func runTagSpace(mp *ModulePass) error {
	cp, err := mp.Module.constProp()
	if err != nil {
		return err
	}
	g := cp.Graph()

	var sites []tagSite
	for _, n := range g.Nodes() {
		for _, site := range n.Calls {
			op, ok := commTagCall(n.Pkg.Info, site.Call)
			if !ok {
				continue
			}
			sites = append(sites, tagSite{
				node: n,
				call: site.Call,
				op:   op,
				vals: cp.EvalInt(n, site.Call.Args[1]),
			})
		}
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i].call.Pos() < sites[j].call.Pos() })

	// 1. Negative user tags.
	for _, s := range sites {
		for _, v := range s.vals.Values {
			if v.V < 0 {
				mp.Reportf(s.node.Pkg, s.call.Args[1].Pos(),
					"%s uses negative tag %d (from %s); negative tags are reserved for runtime collectives",
					s.op, v.V, v.Origin)
			}
		}
	}

	// 2. Cross-subsystem collisions: the same concrete tag reached from
	// sites in two different packages.
	type tagUse struct {
		site tagSite
		val  Value
	}
	byTag := map[int64][]tagUse{}
	for _, s := range sites {
		for _, v := range s.vals.Values {
			byTag[v.V] = append(byTag[v.V], tagUse{s, v})
		}
	}
	tags := make([]int64, 0, len(byTag))
	for t := range byTag {
		tags = append(tags, t)
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
	for _, t := range tags {
		uses := byTag[t]
		pkgs := map[string]bool{}
		for _, u := range uses {
			pkgs[u.site.node.Pkg.Path] = true
		}
		if len(pkgs) < 2 {
			continue
		}
		names := make([]string, 0, len(pkgs))
		for p := range pkgs {
			names = append(names, p)
		}
		sort.Strings(names)
		for _, u := range uses {
			mp.Reportf(u.site.node.Pkg, u.site.call.Args[1].Pos(),
				"tag %d (from %s) collides across subsystems: used by %s",
				t, u.val.Origin, strings.Join(names, " and "))
		}
	}

	// 3. ExchangeTags consistency. Find the allocation function in a
	// package named decomp; absent one (non-decomp fixture modules) the
	// check is vacuous.
	var exNode *FuncNode
	for _, n := range g.Nodes() {
		if n.Pkg.Types.Name() == "decomp" && n.Decl.Name.Name == "ExchangeTags" && n.Decl.Recv == nil {
			exNode = n
			break
		}
	}
	if exNode == nil {
		return nil
	}
	allocated, ok := EvalIntList(exNode)
	if !ok {
		mp.Reportf(exNode.Pkg, exNode.Decl.Pos(),
			"ExchangeTags body is not statically evaluable; keep it to constant appends so the tag registry stays checkable")
		return nil
	}
	allocSet := map[int64]Value{}
	for _, v := range allocated {
		allocSet[v.V] = v
	}

	// Step-path roots: the Advance entry points of the decomp package.
	var roots []*FuncNode
	for _, n := range g.Nodes() {
		if n.Pkg == exNode.Pkg && strings.HasPrefix(n.Decl.Name.Name, "Advance") {
			roots = append(roots, n)
		}
	}
	reachable := g.ReachableFrom(roots)

	used := map[int64]bool{}
	for _, s := range sites {
		for _, v := range s.vals.Values {
			used[v.V] = true
		}
		if !reachable[s.node] || s.node.Pkg != exNode.Pkg {
			continue
		}
		for _, v := range s.vals.Values {
			if _, ok := allocSet[v.V]; !ok {
				mp.Reportf(s.node.Pkg, s.call.Args[1].Pos(),
					"%s on the step path uses tag %d (from %s) outside the ExchangeTags() allocation",
					s.op, v.V, v.Origin)
			}
		}
	}
	for _, v := range allocated {
		if !used[v.V] {
			mp.Reportf(exNode.Pkg, exNode.Decl.Pos(),
				"ExchangeTags() allocates tag %d (%s) but no Send/Recv/Irecv site uses it; shrink the allocation",
				v.V, v.Origin)
		}
	}
	return nil
}

// commTagCall recognizes a point-to-point call with a tag argument:
// a method named Send, Recv or Irecv, declared in a package named mpi,
// whose second argument is the integer tag.
func commTagCall(info *types.Info, call *ast.CallExpr) (op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || len(call.Args) < 3 {
		return "", false
	}
	name := sel.Sel.Name
	if name != "Send" && name != "Recv" && name != "Irecv" {
		return "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Name() != "mpi" {
		return "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil || sig.Params().Len() < 3 {
		return "", false
	}
	if !isIntKind(sig.Params().At(1).Type()) {
		return "", false
	}
	return name, true
}
