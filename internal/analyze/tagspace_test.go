package analyze

import "testing"

// TestTagSpace: negative tags are flagged both at literal call sites
// and where a negative value arrives through a parameter summary.
// Cross-package collision and ExchangeTags coverage need a multi-package
// module and are exercised by the cmd/yyvet smoke modules.
func TestTagSpace(t *testing.T) {
	runFixture(t, "tagspace", TagSpace)
}
