// Package abortonerr is an abort-on-err fixture: a self-contained
// miniature of the internal/mpi surface (Run/RunWith taking a rank
// function over a *Comm with an Abort method) plus rank functions that
// do and do not terminate after capturing an error into a variable
// shared with the driver.
package abortonerr

import "sync"

// Comm mimics mpi.Comm.
type Comm struct{}

// Rank mimics the rank accessor.
func (c *Comm) Rank() int { return 0 }

// Abort mimics mpi.Comm.Abort.
func (c *Comm) Abort(err error) {}

// Barrier stands in for any collective the wedged peers would block in.
func (c *Comm) Barrier() {}

// Run mimics mpi.Run.
func Run(n int, fn func(*Comm)) error { fn(&Comm{}); return nil }

// RunWith mimics mpi.RunWith.
func RunWith(n int, cfg int, fn func(*Comm)) error { fn(&Comm{}); return nil }

func setup() (int, error) { return 0, nil }

// capturesAndKeepsRunning is the bug class: the error is recorded, the
// rank carries on into a collective.
func capturesAndKeepsRunning() error {
	var mu sync.Mutex
	var rankErr error
	Run(4, func(c *Comm) {
		_, err := setup()
		if err != nil {
			mu.Lock()
			rankErr = err // want "error captured into shared variable rankErr"
			mu.Unlock()
		}
		c.Barrier()
	})
	return rankErr
}

// capturesInsideLoop: the capture is followed by nothing before the
// loop re-enters — the rank keeps exchanging with a recorded failure.
func capturesInsideLoop() error {
	var rankErr error
	RunWith(4, 0, func(c *Comm) {
		for i := 0; i < 8; i++ {
			if _, err := setup(); err != nil {
				rankErr = err // want "error captured into shared variable rankErr"
				continue
			}
			c.Barrier()
		}
	})
	return rankErr
}

// captureThenReturn: the classic guarded early exit is fine.
func captureThenReturn() error {
	var mu sync.Mutex
	var rankErr error
	Run(4, func(c *Comm) {
		if _, err := setup(); err != nil {
			mu.Lock()
			rankErr = err
			mu.Unlock()
			return
		}
		c.Barrier()
	})
	return rankErr
}

// captureThenAbort: recording the error for the driver and aborting the
// world is the preferred pattern.
func captureThenAbort() error {
	var rankErr error
	Run(4, func(c *Comm) {
		if _, err := setup(); err != nil {
			rankErr = err
			c.Abort(err)
		}
		c.Barrier()
	})
	return rankErr
}

// captureInTailPosition: nothing runs after the capture — the implicit
// return ends the rank, no peer is left waiting on further traffic from
// a rank that thinks it is still participating.
func captureInTailPosition() error {
	var rankErr error
	Run(2, func(c *Comm) {
		c.Barrier()
		if _, err := setup(); err != nil {
			rankErr = err
		}
	})
	return rankErr
}

// captureThenBreak: break leaves the loop; treated as terminating the
// faulty path.
func captureThenBreak() error {
	var rankErr error
	Run(2, func(c *Comm) {
		for i := 0; i < 8; i++ {
			if _, err := setup(); err != nil {
				rankErr = err
				break
			}
			c.Barrier()
		}
	})
	return rankErr
}

// localErrOnly: assignments to rank-local error variables are not
// captures and stay exempt.
func localErrOnly() {
	Run(2, func(c *Comm) {
		var err error
		_, err = setup()
		if err != nil {
			return
		}
		c.Barrier()
	})
}

// notARankFn: Run with a different callback shape is not the runtime's
// entry point.
func notARankFn() error {
	var rankErr error
	run := func(fn func(int)) { fn(0) }
	run(func(x int) {
		if _, err := setup(); err != nil {
			rankErr = err
		}
	})
	return rankErr
}

// suppressed: an explicit justification keeps the finding quiet.
func suppressed() error {
	var rankErr error
	Run(2, func(c *Comm) {
		if _, err := setup(); err != nil {
			//yyvet:ignore abort-on-err the follow-up collective is this rank's own failure broadcast
			rankErr = err
		}
		c.Barrier()
	})
	return rankErr
}
