// Package atomicartifact is an atomic-artifact fixture: direct
// os.WriteFile and unsynced os.Rename commits are flagged; the full
// temp-fsync-rename-dirfsync discipline, non-os lookalikes and
// justified suppressions are clean.
package atomicartifact

import (
	"os"
	"path/filepath"
)

func badWriteFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want "use store.WriteFileAtomic"
}

func badWriteFileIgnoredError(dir string, data []byte) {
	_ = os.WriteFile(filepath.Join(dir, "report.txt"), data, 0o644) // want "use store.WriteFileAtomic"
}

func badUnsyncedRename(dir, final string, data []byte) error {
	tmp, err := os.CreateTemp(dir, "artifact-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	// Closed but never fsynced: the data may still sit in the page
	// cache when the name commits.
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), final) // want "no preceding Sync"
}

func goodAtomicCommit(dir, final string, data []byte) error {
	tmp, err := os.CreateTemp(dir, "artifact-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func goodSyncInsideClosure(dir, final string, data []byte) error {
	commit := func(tmp *os.File) error {
		if err := tmp.Sync(); err != nil {
			return err
		}
		if err := tmp.Close(); err != nil {
			return err
		}
		return os.Rename(tmp.Name(), final)
	}
	tmp, err := os.CreateTemp(dir, "artifact-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	return commit(tmp)
}

// fileAPI is a non-os lookalike: method names collide, package does
// not.
type fileAPI struct{}

func (fileAPI) WriteFile(string, []byte, os.FileMode) error { return nil }
func (fileAPI) Rename(string, string) error                 { return nil }

func lookalikesAreFine(api fileAPI, data []byte) error {
	if err := api.WriteFile("x", data, 0o644); err != nil {
		return err
	}
	return api.Rename("x", "y")
}

func suppressedIsFine(path string, data []byte) error {
	//yyvet:ignore atomic-artifact fixture: tamper-injection write, atomicity would defeat it
	return os.WriteFile(path, data, 0o644)
}
