package atomicartifact

import (
	"os"
	"testing"
)

// Test files are outside atomic-artifact's contract: tests fabricate
// and tamper with committed files on purpose, so a plain in-place
// write here must stay clean.
func TestPlainWriteIsOutOfScope(t *testing.T) {
	if err := os.WriteFile("ignored", nil, 0o644); err != nil {
		t.Skip("fixture never runs")
	}
}
