// Package mpi fixture: free-list handle lifetimes — use-after-put,
// double-put, and per-return-path leaks, plus the clean shapes the
// analyzer must not flag (wrapper release, deferred release, escape).
package mpi

type context struct{ pool [][]float64 }

func (ctx *context) getBuf(n int) []float64 { return make([]float64, n) }

func (ctx *context) putBuf(b []float64) { ctx.pool = append(ctx.pool, b) }

func release(ctx *context, b []float64) { ctx.putBuf(b) }

func useAfterPut(ctx *context) float64 {
	b := ctx.getBuf(4)
	ctx.putBuf(b)
	return b[0] // want "used after being released"
}

func doublePut(ctx *context) {
	b := ctx.getBuf(4)
	ctx.putBuf(b)
	ctx.putBuf(b) // want "already released"
}

func doublePutViaWrapper(ctx *context) {
	b := ctx.getBuf(4)
	release(ctx, b)
	ctx.putBuf(b) // want "already released"
}

func leakOnEarlyReturn(ctx *context, short bool) int {
	b := ctx.getBuf(4)
	if short {
		return 0 // want "leaks on this return path"
	}
	ctx.putBuf(b)
	return 1
}

func leakOnFallOff(ctx *context, n int) {
	b := ctx.getBuf(n)
	b[0] = 1
} // want "leaks on this return path"

func putOnOneBranchOnly(ctx *context, c bool) float64 {
	b := ctx.getBuf(4)
	if c {
		ctx.putBuf(b)
	}
	return b[0] // want "used after being released"
}

func acquireAfterBranch(ctx *context, c bool) int {
	if c {
		return 0
	}
	b := ctx.getBuf(4)
	b[0] = 1
	return 1 // want "leaks on this return path"
}

func cleanDirect(ctx *context) {
	b := ctx.getBuf(4)
	b[0] = 1
	ctx.putBuf(b)
}

func cleanWrapper(ctx *context) float64 {
	b := ctx.getBuf(4)
	v := b[0]
	release(ctx, b)
	return v
}

func cleanDeferred(ctx *context) float64 {
	b := ctx.getBuf(4)
	defer ctx.putBuf(b)
	return b[0]
}

func cleanEscapeReturn(ctx *context) []float64 {
	b := ctx.getBuf(4)
	return b
}

func cleanEscapeSend(ctx *context, sink chan []float64) {
	b := ctx.getBuf(4)
	sink <- b
}
