// Package condwait is a cond-wait-loop fixture: sync.Cond.Wait must sit
// inside a for loop re-checking its predicate.
package condwait

import "sync"

type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	ready bool
}

func (mb *mailbox) bareWait() {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if !mb.ready {
		mb.cond.Wait() // want "sync.Cond.Wait is not guarded by a for loop"
	}
}

func (mb *mailbox) unconditionalWait() {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	mb.cond.Wait() // want "sync.Cond.Wait is not guarded by a for loop"
}

func (mb *mailbox) loopedWait() {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for !mb.ready {
		mb.cond.Wait()
	}
}

func (mb *mailbox) loopedWaitValueCond(c sync.Cond) {
	for !mb.ready {
		c.Wait()
	}
}

// waitInClosureOutsideLoop: the for loop is in the OUTER function; the
// closure body starts a fresh scope, so the Wait inside it is bare.
func (mb *mailbox) waitInClosureOutsideLoop() {
	for i := 0; i < 3; i++ {
		func() {
			mb.mu.Lock()
			defer mb.mu.Unlock()
			mb.cond.Wait() // want "sync.Cond.Wait is not guarded by a for loop"
		}()
	}
}

// otherWaitIsFine: Wait on a non-Cond type must not be flagged.
func otherWaitIsFine(wg *sync.WaitGroup) {
	wg.Wait()
}

func (mb *mailbox) suppressedWait() {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	//yyvet:ignore cond-wait-loop fixture: single-waiter handoff, no spurious wakeups
	mb.cond.Wait()
}
