// Collector side of the telemetry fixture: plane.go is off the step
// path, so wall-clock reads and map iteration here are legitimate and
// must not be flagged.
package telemetry

import "time"

func collectorTick() time.Time {
	return time.Now()
}

func collectorRate(samples map[int]float64) float64 {
	var s float64
	for _, v := range samples {
		s += v
	}
	return s
}
