// Package telemetry fixture, publisher side: publish.go is on the
// solver's step path, so the purity contract applies to this file even
// though the package as a whole is not in the deterministic set.
package telemetry

import "time"

func publishStamp() time.Time {
	return time.Now() // want "time.Now in deterministic package"
}

func publishSum(m map[int]float64) float64 {
	var s float64
	for _, v := range m { // want "range over map in deterministic package"
		s += v
	}
	return s
}
