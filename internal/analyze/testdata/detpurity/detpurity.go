// Package mhd fixture: nondeterminism sources inside a bit-identical
// package — wall-clock reads, math/rand, and map iteration order — plus
// a justified suppression the analyzer must honour.
package mhd

import (
	"math/rand"
	"time"
)

func stamp() time.Time {
	return time.Now() // want "time.Now in deterministic package"
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since in deterministic package"
}

func jitter() float64 {
	return rand.Float64() // want "math/rand.Float64 in deterministic package"
}

func sum(m map[int]float64) float64 {
	var s float64
	for _, v := range m { // want "range over map in deterministic package"
		s += v
	}
	return s
}

func sortedKeys(m map[int]float64) []int {
	keys := make([]int, 0, len(m))
	//yyvet:ignore det-purity keys are sorted by the caller before use
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
