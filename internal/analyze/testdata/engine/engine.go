// Package engine is the unit-test fixture for the interprocedural
// machinery: call-graph edges, SCC ordering, closure attribution,
// constant propagation through parameters, and the ExchangeTags
// list-shape evaluator.
package engine

const base = 4

func A() { B(1) }

func B(x int) { C(x + 1) }

func C(y int) {}

func Closure() {
	f := func() { C(7) }
	f()
}

func Loop() { Loop2() }

func Loop2() { Loop() }

func R(n int) {
	if n > 0 {
		R(n - 1)
	}
}

func CallR() { R(3) }

func Mut(m int) {
	m = 9
	D(m)
}

func CallMut() { Mut(1) }

func D(z int) {}

func ExchangeTags() []int {
	tags := make([]int, 0, 5)
	for _, b := range []int{base, 10} {
		for d := 0; d < 2; d++ {
			tags = append(tags, b+d)
		}
	}
	return append(tags, 99)
}
