// Package floateq is a float-eq fixture: raw floating-point equality in
// solver-like code is flagged; NaN idioms, integer comparisons and
// designated tolerance helpers are not.
package floateq

import "math"

func badEquality(a, b float64) bool {
	return a == b // want "floating-point values compared with =="
}

func badInequality(energy float64) bool {
	return energy != 0.0 // want "floating-point values compared with !="
}

func badMixedConst(x float64) bool {
	if x == 1.5 { // want "floating-point values compared with =="
		return true
	}
	return false
}

func badComplex(a, b complex128) bool {
	return a == b // want "floating-point values compared with =="
}

func nanIdiomIsFine(x float64) bool {
	return x != x
}

func intComparisonIsFine(i, j int) bool {
	return i == j
}

// approxEqual is a designated tolerance helper: the exact-match fast
// path (catching infinities) before the relative test is intentional.
func approxEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// withinTol is another designated helper spelling.
func withinTol(a, b float64) bool {
	return a == b
}

func usesHelper(a, b float64) bool {
	return approxEqual(a, b, 1e-12)
}

func suppressedSentinel(dt float64) bool {
	//yyvet:ignore float-eq fixture: -1 is an exact sentinel, never computed
	return dt == -1
}
