// Package ignore exercises the //yyvet:ignore directive forms: trailing
// same-line, own-line-above, multi-analyzer lists, and the non-cases
// (wrong analyzer name, directive too far away).
package ignore

func trailingSameLine(a, b float64) bool {
	return a == b //yyvet:ignore float-eq fixture: suppressed on the same line
}

func ownLineAbove(a, b float64) bool {
	//yyvet:ignore float-eq fixture: suppressed from the line above
	return a == b
}

func multiAnalyzerList(a, b float64) bool {
	//yyvet:ignore pow2-stride,float-eq fixture: second name in the list applies
	return a == b
}

func wrongAnalyzerName(a, b float64) bool {
	//yyvet:ignore irecv-wait fixture: names a different analyzer
	return a == b // want "floating-point values compared with =="
}

func directiveTooFarAway(a, b float64) bool {
	//yyvet:ignore float-eq fixture: a blank line breaks the adjacency

	return a == b // want "floating-point values compared with =="
}
