// Package fixture seeds the three defective directive shapes — stale,
// unknown analyzer, missing justification — next to one live, justified
// directive that the audit must leave alone.
package fixture

func live(a, b float64) bool {
	//yyvet:ignore float-eq the values are exact powers of two by construction
	return a == b
}

func stale() int {
	//yyvet:ignore float-eq nothing below compares floats
	return 1
}

func unknown(a, b float64) bool {
	//yyvet:ignore no-such-analyzer typo in the name
	return a == b
}

func unjustified(a, b float64) bool {
	//yyvet:ignore float-eq
	return a == b
}
