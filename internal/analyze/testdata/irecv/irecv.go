// Package irecv is an irecv-wait fixture: a self-contained miniature of
// the internal/mpi surface (Comm.Irecv returning a *Request with a Wait
// method) plus good and bad call sites.
package irecv

// Comm mimics mpi.Comm.
type Comm struct{}

// Request mimics mpi.Request.
type Request struct{ done chan int }

// Wait completes the receive.
func (r *Request) Wait() int { return <-r.done }

// Irecv mimics the non-blocking receive.
func (c *Comm) Irecv(src, tag int, buf []float64) *Request {
	return &Request{done: make(chan int, 1)}
}

// Recv is a decoy: a method that is NOT Irecv must never be flagged.
func (c *Comm) Recv(src, tag int, buf []float64) int { return 0 }

func discarded(c *Comm, buf []float64) {
	c.Irecv(0, 1, buf) // want "result of Irecv is discarded"
	_ = buf
}

func blankAssigned(c *Comm, buf []float64) {
	_ = c.Irecv(0, 1, buf) // want "assigned to _"
}

func neverWaited(c *Comm, buf []float64) float64 {
	req := c.Irecv(0, 1, buf) // want "req is never completed"
	_ = req
	return buf[0] // read before the receive completed: the bug class
}

func properlyWaited(c *Comm, buf []float64) float64 {
	req := c.Irecv(0, 1, buf)
	req.Wait()
	return buf[0]
}

func waitedInDifferentBranch(c *Comm, buf []float64, flag bool) {
	req := c.Irecv(0, 1, buf)
	if flag {
		req.Wait()
	} else {
		req.Wait()
	}
}

func waitedInClosure(c *Comm, buf []float64) func() int {
	req := c.Irecv(0, 1, buf)
	return func() int { return req.Wait() }
}

func escapesToSlice(c *Comm, buf []float64) []*Request {
	var reqs []*Request
	for i := 0; i < 4; i++ {
		reqs = append(reqs, c.Irecv(i, 1, buf))
	}
	return reqs
}

func escapesAsArgument(c *Comm, buf []float64) {
	waitAll(c.Irecv(0, 1, buf), c.Irecv(1, 1, buf))
}

func waitAll(reqs ...*Request) {
	for _, r := range reqs {
		r.Wait()
	}
}

func blockingRecvIsFine(c *Comm, buf []float64) int {
	return c.Recv(0, 1, buf)
}

func suppressed(c *Comm, buf []float64) {
	//yyvet:ignore irecv-wait fixture: request intentionally dropped to test suppression
	c.Irecv(0, 1, buf)
	_ = buf
}
