// Package overlaporder is the overlap-order fixture: a self-contained
// miniature of the decomp overlap scheduler (haloStart posting receives
// and returning a handle, haloFinish completing it) plus good and bad
// reads of the exchanged arrays inside the window.
package overlaporder

// Scalar mimics field.Scalar.
type Scalar struct{ data []float64 }

// Region mimics grid.Region.
type Region struct{ J0, J1 int }

type overlap struct{ fields []*Scalar }

// Rank mimics decomp.Rank: the exchanged arrays and the declared
// interior region.
type Rank struct {
	interior Region
	rim      Region
	b        *Scalar
	divv     *Scalar
}

func (r *Rank) haloStart(fields []*Scalar, tag int) overlap { return overlap{fields: fields} }

func (r *Rank) haloFinish(ov *overlap) {}

func kernel(f *Scalar, reg Region) {}

func read(f *Scalar) float64 { return f.data[0] }

func badDirectRead(r *Rank) float64 {
	ov := r.haloStart([]*Scalar{r.b}, 8)
	x := read(r.b) // want "r.b is read between haloStart and haloFinish"
	r.haloFinish(&ov)
	return x
}

func badIndexRead(r *Rank) float64 {
	ov := r.haloStart([]*Scalar{r.divv}, 16)
	v := r.divv.data[3] // want "r.divv is read between haloStart and haloFinish"
	r.haloFinish(&ov)
	return v
}

func badFullRegionKernel(r *Rank) {
	ov := r.haloStart([]*Scalar{r.b}, 8)
	kernel(r.b, r.rim) // want "r.b is read between haloStart and haloFinish"
	r.haloFinish(&ov)
}

func badReadInNestedBlock(r *Rank, cond bool) {
	ov := r.haloStart([]*Scalar{r.b}, 8)
	if cond {
		read(r.b) // want "r.b is read between haloStart and haloFinish"
	}
	r.haloFinish(&ov)
}

func goodInteriorKernel(r *Rank) {
	ov := r.haloStart([]*Scalar{r.b}, 8)
	kernel(r.b, r.interior)
	r.haloFinish(&ov)
	kernel(r.b, r.rim) // after the wait: rim may read the halos
}

func goodUntrackedRead(r *Rank) float64 {
	ov := r.haloStart([]*Scalar{r.b}, 8)
	x := read(r.divv) // divv is not in flight
	r.haloFinish(&ov)
	return x
}

func goodSequentialWindows(r *Rank) {
	ovB := r.haloStart([]*Scalar{r.b}, 8)
	kernel(r.b, r.interior)
	r.haloFinish(&ovB)
	ovA := r.haloStart([]*Scalar{r.divv}, 16)
	kernel(r.b, r.rim) // b's window is closed; only divv is in flight
	kernel(r.divv, r.interior)
	r.haloFinish(&ovA)
	kernel(r.divv, r.rim)
}

func badSecondWindow(r *Rank) float64 {
	ovB := r.haloStart([]*Scalar{r.b}, 8)
	r.haloFinish(&ovB)
	ovA := r.haloStart([]*Scalar{r.divv}, 16)
	v := read(r.divv) // want "r.divv is read between haloStart and haloFinish"
	r.haloFinish(&ovA)
	return v
}

func goodNoWindow(r *Rank) float64 {
	return read(r.b)
}

func suppressed(r *Rank) float64 {
	ov := r.haloStart([]*Scalar{r.b}, 8)
	//yyvet:ignore overlap-order fixture: the read is justified here
	x := read(r.b)
	r.haloFinish(&ov)
	return x
}
