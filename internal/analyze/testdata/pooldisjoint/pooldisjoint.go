// Package par fixture: tile closures passed to Pool.For must write
// only through tile-derived indices; captured-scalar accumulation and
// fixed-index writes race between tiles.
package par

type Pool struct{}

func (p *Pool) For(n int, fn func(lo, hi int)) { fn(0, n) }

func badAccumulate(p *Pool, xs []float64) float64 {
	var sum float64
	p.For(len(xs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum += xs[i] // want "accumulation into captured sum"
		}
	})
	return sum
}

func badFixedIndex(p *Pool, out []float64) {
	p.For(len(out), func(lo, hi int) {
		out[0] = 1 // want "not indexed by the tile range"
	})
}

func badCount(p *Pool, n int) int {
	var count int
	p.For(n, func(lo, hi int) {
		count++ // want "accumulation into captured count"
	})
	return count
}

func goodTileIndexed(p *Pool, out []float64) {
	p.For(len(out), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = float64(i)
		}
	})
}

func goodDerivedLocal(p *Pool, out []float64) {
	p.For(len(out), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			j := i + 1
			if j < len(out) {
				out[j-1] = 2
			}
		}
	})
}

func goodLocalScalar(p *Pool, out []float64) {
	p.For(len(out), func(lo, hi int) {
		var acc float64
		for i := lo; i < hi; i++ {
			acc += 1
			out[i] = acc
		}
	})
}
