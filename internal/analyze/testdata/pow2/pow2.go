// Package fd is a pow2-stride fixture; its name puts it in the hot set
// (fd, mhd, overset, sphops) the analyzer guards.
package fd

const (
	nr     = 256 // power of two: the penalized radial extent
	padded = 257
)

func badMakes() {
	a := make([]float64, 256)    // want "slice dimension 256 is a power of two"
	b := make([]float64, 10, 64) // want "slice dimension 64 is a power of two"
	c := make([]float64, nr)     // want "slice dimension 256 is a power of two"
	d := make([]float64, 1<<9)   // want "slice dimension 512 is a power of two"
	e := make([]int, 128)        // want "slice dimension 128 is a power of two"
	_, _, _, _, _ = a, b, c, d, e
}

func badArrayTypes() {
	var plane [512]float64  // want "array dimension 512 is a power of two"
	var tile [64][3]float64 // want "array dimension 64 is a power of two"
	_, _ = plane, tile
}

func goodMakes(n int) {
	a := make([]float64, padded) // 257: padded off the bank-conflict stride
	b := make([]float64, 255)    // paper's production choice
	c := make([]float64, n)      // runtime extent: not this analyzer's business
	d := make([]float64, 96)     // not a power of two
	e := make([]*float64, 256)   // pointers are not a vector-swept payload
	f := make([]float64, 16)     // below the threshold: not a stride
	w := [4]float64{1, 2, 3, 4}  // small fixed weights are exempt
	dims := [2]int{8, 8}         // tiny coordinate pairs are exempt
	_, _, _, _, _, _, _, _ = a, b, c, d, e, f, w, dims
}

func suppressedMake() {
	//yyvet:ignore pow2-stride fixture: deliberate bank-conflict reproduction buffer
	bad := make([]float64, 1024)
	_ = bad
}
