// Package viz is a pow2-stride fixture for the gating: identical
// power-of-two dimensioning OUTSIDE the hot packages must not be
// flagged — bank-conflict strides only matter on the vector-swept hot
// paths.
package viz

func coldPathPow2() {
	framebuffer := make([]float64, 4096)
	var histogram [256]float64
	_, _ = framebuffer, histogram
}
