// Package runwithdeadline is a runwith-deadline fixture: a miniature of
// the internal/mpi surface (RunWith over a RunConfig with a Deadline
// field) plus production-side callsites, which the analyzer must leave
// alone — only _test.go files are in scope.
package runwithdeadline

// Comm mimics mpi.Comm.
type Comm struct{}

// RunConfig mimics mpi.RunConfig.
type RunConfig struct {
	Deadline int
	Faults   int
}

// RunWith mimics mpi.RunWith.
func RunWith(n int, cfg RunConfig, fn func(*Comm)) error { fn(&Comm{}); return nil }

// productionCallsite runs open-ended on purpose: campaign drivers own
// their deadlines. Not a finding — this file is not a test file.
func productionCallsite() error {
	return RunWith(2, RunConfig{Faults: 1}, func(c *Comm) {})
}
