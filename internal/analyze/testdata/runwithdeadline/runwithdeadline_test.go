package runwithdeadline

// literalWithDeadline: the common good shape.
func literalWithDeadline() {
	_ = RunWith(2, RunConfig{Deadline: 100, Faults: 1}, func(c *Comm) {})
}

// literalWithoutDeadline: the bug class — a wedge here blocks until the
// go test timeout.
func literalWithoutDeadline() {
	_ = RunWith(2, RunConfig{Faults: 1}, func(c *Comm) {}) // want "must set RunConfig.Deadline"
}

// emptyLiteral: zero config means zero deadline.
func emptyLiteral() {
	_ = RunWith(2, RunConfig{}, func(c *Comm) {}) // want "must set RunConfig.Deadline"
}

// positionalLiteral supplies every field, Deadline included.
func positionalLiteral() {
	_ = RunWith(2, RunConfig{100, 1}, func(c *Comm) {})
}

// varWithDeadline: the literal binding is traced through the identifier.
func varWithDeadline() {
	cfg := RunConfig{Deadline: 100}
	_ = RunWith(2, cfg, func(c *Comm) {})
}

// varWithoutDeadline: traced binding lacks the field and nothing later
// sets it.
func varWithoutDeadline() {
	cfg := RunConfig{Faults: 2}
	_ = RunWith(2, cfg, func(c *Comm) {}) // want "must set RunConfig.Deadline"
}

// varFieldAssigned: a later cfg.Deadline store counts.
func varFieldAssigned() {
	cfg := RunConfig{Faults: 2}
	cfg.Deadline = 100
	_ = RunWith(2, cfg, func(c *Comm) {})
}

// zeroVar: `var cfg RunConfig` never sets Deadline.
func zeroVar() {
	var cfg RunConfig
	_ = RunWith(2, cfg, func(c *Comm) {}) // want "must set RunConfig.Deadline"
}

func defaultCfg() RunConfig { return RunConfig{Deadline: 100} }

// helperBuilt: opaque initializers are trusted — helpers are the
// sanctioned place to centralize deadlines.
func helperBuilt() {
	cfg := defaultCfg()
	_ = RunWith(2, cfg, func(c *Comm) {})
}

// suppressed: an explicit directive silences the finding.
func suppressed() {
	//yyvet:ignore runwith-deadline this test measures the watchdog-free hang itself
	_ = RunWith(2, RunConfig{}, func(c *Comm) {})
}
