// Package spanend is a span-end fixture: a self-contained miniature of
// the internal/obs surface (RankRec.Begin returning a Span with an End
// method) plus good and bad call sites.
package spanend

// Rec mimics obs.RankRec.
type Rec struct{}

// Span mimics obs.Span.
type Span struct{ start int64 }

// End closes the span.
func (s Span) End() {}

// Begin opens a span of the given kind.
func (r *Rec) Begin(kind int) Span { return Span{} }

// Mark is a decoy: Begin-like name shape but no End on its result must
// never be flagged.
func (r *Rec) Mark(kind int) int64 { return 0 }

func discarded(r *Rec) {
	r.Begin(1) // want "result of Begin is discarded"
}

func blankAssigned(r *Rec) {
	_ = r.Begin(1) // want "span assigned to _"
}

func neverEnded(r *Rec) int {
	sp := r.Begin(1) // want "sp is never ended"
	_ = sp
	return 0
}

func deferredChain(r *Rec) {
	defer r.Begin(1).End()
}

func immediateChain(r *Rec) {
	r.Begin(1).End()
}

func deferredIdent(r *Rec, x int) int {
	sp := r.Begin(1)
	defer sp.End()
	if x > 0 {
		return x // covered by the defer
	}
	return -x
}

func explicitEndStraightLine(r *Rec) {
	sp := r.Begin(1)
	work()
	sp.End()
}

func explicitEndInLoop(r *Rec) {
	for i := 0; i < 4; i++ {
		w := r.Begin(2)
		work()
		w.End()
	}
}

func earlyReturnBetween(r *Rec, x int) int {
	sp := r.Begin(1)
	if x > 0 {
		return x // want "return between sp.Begin and sp.End leaves the span open"
	}
	sp.End()
	return -x
}

func returnAfterEndIsFine(r *Rec, x int) int {
	sp := r.Begin(1)
	work()
	sp.End()
	if x > 0 {
		return x
	}
	return -x
}

func endedInClosure(r *Rec) func() {
	sp := r.Begin(1)
	return func() { sp.End() }
}

func escapesAsArgument(r *Rec) {
	sp := r.Begin(1)
	closeLater(sp)
}

func closureReturnDoesNotCount(r *Rec) {
	sp := r.Begin(1)
	f := func() int { return 1 } // this return exits the literal only
	_ = f()
	sp.End()
}

func beginInsideClosure(r *Rec) func(bool) int {
	return func(flag bool) int {
		sp := r.Begin(1)
		if flag {
			return 1 // want "return between sp.Begin and sp.End leaves the span open"
		}
		sp.End()
		return 0
	}
}

func suppressed(r *Rec) {
	//yyvet:ignore span-end interval is closed by the flush goroutine
	r.Begin(1)
}

func decoyNotFlagged(r *Rec) {
	r.Mark(1)
	_ = r.Mark(2)
}

func work() {}

func closeLater(s Span) {}
