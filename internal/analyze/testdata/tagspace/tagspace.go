// Package mpi fixture: negative message tags, both literal at the call
// site and flowing into a helper through a parameter summary.
package mpi

type Comm struct{}

func (c *Comm) Send(dst, tag int, data []float64) {}

func (c *Comm) Recv(src, tag int, buf []float64) int { return 0 }

func (c *Comm) Irecv(src, tag int, buf []float64) int { return 0 }

func direct(c *Comm) {
	c.Send(1, 3, nil)
	c.Send(1, -3, nil) // want "negative tag -3"
}

func callers(c *Comm) {
	forward(c, 5)
	forward(c, -7)
}

func forward(c *Comm, tag int) {
	c.Recv(0, tag, nil) // want "negative tag -7"
}
