// Package typederr is a typed-err fixture: rank failures recognized by
// err.Error() text are flagged; typed errors.As/errors.Is matching,
// non-fingerprint text checks and plain-string matching are clean.
package typederr

import (
	"errors"
	"fmt"
	"strings"
)

// RankFailedError mirrors the runtime's typed rank-failure error.
type RankFailedError struct {
	Rank, Step int
	Silent     bool
}

func (e *RankFailedError) Error() string {
	if e.Silent {
		return fmt.Sprintf("mpi: rank %d failed: heartbeat silent", e.Rank)
	}
	return fmt.Sprintf("mpi: fault injection killed rank %d at step %d", e.Rank, e.Step)
}

func badContains(err error) bool {
	return strings.Contains(err.Error(), "killed rank 1 at step 3") // want "use errors.As"
}

func badContainsReversed(err error) bool {
	// Fingerprint literal as the haystack, err text as the needle —
	// backwards but still a fingerprint match.
	return strings.Contains("mpi: fault injection killed rank 1", err.Error()) // want "use errors.As"
}

func badPrefix(err error) bool {
	return strings.HasPrefix(err.Error(), "mpi: fault injection killed rank") // want "use errors.As"
}

func badSuffix(err error) bool {
	return strings.HasSuffix(err.Error(), "rank 2 failed") // want "use errors.As"
}

func badHeartbeat(err error) bool {
	return strings.Contains(err.Error(), "heartbeat silent") // want "use errors.As"
}

func badEquality(err error) bool {
	return err.Error() == "mpi: fault injection killed rank 0 at step 2" // want "use errors.As"
}

func badInequality(err error) bool {
	return err.Error() != "mpi: rank 1 failed: heartbeat silent" // want "use errors.As"
}

func badOnConcrete(e *RankFailedError) bool {
	return strings.Contains(e.Error(), "killed rank") // want "use errors.As"
}

func typedMatchIsFine(err error) (int, bool) {
	var rf *RankFailedError
	if errors.As(err, &rf) {
		return rf.Rank, true
	}
	return 0, false
}

func nonFingerprintTextIsFine(err error) bool {
	// Matching other error text is outside this analyzer's contract
	// (deadline dumps, validation messages, ...).
	return strings.Contains(err.Error(), "deadline")
}

func plainStringsAreFine(s string) bool {
	// Fingerprint text against a plain string — no error involved, e.g.
	// grepping a log file.
	return strings.Contains(s, "killed rank")
}

func suppressedIsFine(err error) bool {
	//yyvet:ignore typed-err fixture: asserting the rendered message itself
	return strings.Contains(err.Error(), "killed rank 9")
}
