package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
)

// rankFailureText matches the message fragments of the runtime's typed
// rank-failure errors: the fault-injection kill ("mpi: fault injection
// killed rank 2 at step 1"), the heartbeat confirmation ("mpi: rank 1
// failed: heartbeat silent for 40ms") and the generic "rank N failed"
// spelling. A string literal matching one of these next to err.Error()
// is a fingerprint check in disguise.
var rankFailureText = regexp.MustCompile(`killed rank|heartbeat silent|rank \d+ failed`)

// TypedErr reports code that recognizes a rank failure by matching
// err.Error() text — strings.Contains/HasPrefix/HasSuffix or ==/!=
// against a literal carrying a rank-failure fingerprint — in both
// production and test files.
//
// Paper provenance: the elastic runtime's recovery policy branches on
// WHICH rank died (replace it) versus any other failure (roll the
// campaign back); that decision rides on *mpi.RankFailedError and must
// be made with errors.As/errors.Is. A string match is invisible to the
// compiler, silently disarms when the message is reworded, and cannot
// carry the rank/step/silence fields the replacement fence needs.
var TypedErr = &Analyzer{
	Name: "typed-err",
	Doc: "rank-failure errors recognized by err.Error() text; match the typed " +
		"*mpi.RankFailedError with errors.As/errors.Is instead",
	Run: runTypedErr,
}

func runTypedErr(pass *Pass) error {
	// Tests are in scope: a regression test pinning failure text is
	// exactly the check that rots when the message changes.
	files := make([]*ast.File, 0, len(pass.Files)+len(pass.TestFiles))
	files = append(files, pass.Files...)
	files = append(files, pass.TestFiles...)
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				checkTypedErrCall(pass, x)
			case *ast.BinaryExpr:
				checkTypedErrCmp(pass, x)
			}
			return true
		})
	}
	return nil
}

// checkTypedErrCall flags strings.Contains/HasPrefix/HasSuffix where
// one argument is err.Error() and the other a rank-failure literal.
func checkTypedErrCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 2 {
		return
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Name != "strings" {
		return
	}
	switch sel.Sel.Name {
	case "Contains", "HasPrefix", "HasSuffix":
	default:
		return
	}
	for i, arg := range call.Args {
		lit, ok := rankFailureLiteral(arg)
		if !ok {
			continue
		}
		if isErrorText(pass, call.Args[1-i]) {
			pass.Reportf(call.Pos(), "rank failure recognized by strings.%s on err.Error() (%q): use errors.As with *mpi.RankFailedError instead",
				sel.Sel.Name, lit)
			return
		}
	}
}

// checkTypedErrCmp flags == / != between err.Error() and a
// rank-failure literal.
func checkTypedErrCmp(pass *Pass, bin *ast.BinaryExpr) {
	if bin.Op != token.EQL && bin.Op != token.NEQ {
		return
	}
	for _, pair := range [2][2]ast.Expr{{bin.X, bin.Y}, {bin.Y, bin.X}} {
		lit, ok := rankFailureLiteral(pair[0])
		if !ok {
			continue
		}
		if isErrorText(pass, pair[1]) {
			pass.Reportf(bin.OpPos, "rank failure recognized by comparing err.Error() %s %q: use errors.As with *mpi.RankFailedError instead",
				bin.Op, lit)
			return
		}
	}
}

// rankFailureLiteral reports whether e is a string literal carrying a
// rank-failure fingerprint, returning its value.
func rankFailureLiteral(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, rankFailureText.MatchString(s)
}

// isErrorText reports whether e is a no-argument Error() call on an
// error-typed value.
func isErrorText(pass *Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	iface, ok := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Implements(tv.Type, iface)
}
