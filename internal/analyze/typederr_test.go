package analyze

import "testing"

// TestTypedErr runs the analyzer over its fixture: rank failures
// recognized via err.Error() text are true positives; errors.As
// matching, non-fingerprint text and plain-string matching are clean.
func TestTypedErr(t *testing.T) {
	runFixture(t, "typederr", TypedErr)
}

// TestRankFailureFingerprints pins which literals count as
// rank-failure text.
func TestRankFailureFingerprints(t *testing.T) {
	cases := []struct {
		lit  string
		want bool
	}{
		{"mpi: fault injection killed rank 1 at step 3", true},
		{"killed rank", true},
		{"heartbeat silent for 40ms", true},
		{"mpi: rank 2 failed: heartbeat silent", true},
		{"rank 11 failed", true},
		{"deadline", false},
		{"rank 1 panicked", false},
		{"reliable transport gave up", false},
		{"ranks failed to converge", false},
		{"", false},
	}
	for _, c := range cases {
		if got := rankFailureText.MatchString(c.lit); got != c.want {
			t.Errorf("rankFailureText(%q) = %v, want %v", c.lit, got, c.want)
		}
	}
}
