// Package bench orchestrates the paper-reproduction experiments indexed
// in DESIGN.md: every table, figure and section-V quantity of the paper
// has a runner here that produces the corresponding rows or images. The
// cmd/yybench and cmd/yyviz binaries and the repository-level
// bench_test.go drive these runners.
package bench

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/es"
	"repro/internal/grid"
	"repro/internal/latlon"
	"repro/internal/mhd"
	"repro/internal/spectral"
	"repro/internal/viz"
)

// Profile returns the step profile: measured from the live solver when
// measure is true, the baked-in reference otherwise.
func Profile(measure bool) (es.StepProfile, error) {
	if measure {
		return es.MeasureStepProfile(grid.NewSpec(17, 17), mhd.Default())
	}
	return es.ReferenceProfile(), nil
}

// RunTable1 prints the Earth Simulator specification table (Table I).
func RunTable1(w io.Writer) {
	fmt.Fprintln(w, "Table I: Specifications of the Earth Simulator")
	fmt.Fprintln(w)
	fmt.Fprint(w, es.EarthSimulator().TableI())
}

// RunTable2 prints the paper-vs-model performance comparison (Table II).
func RunTable2(w io.Writer, measure bool) error {
	prof, err := Profile(measure)
	if err != nil {
		return err
	}
	rows, err := es.TableII(es.EarthSimulator(), es.DefaultModelParams(), prof)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table II: yycore performance on the Earth Simulator (paper) vs the machine model (this code)")
	fmt.Fprintln(w)
	fmt.Fprint(w, es.FormatTableII(rows))
	return nil
}

// RunTable3 prints the cross-paper comparison (Table III).
func RunTable3(w io.Writer, measure bool) error {
	prof, err := Profile(measure)
	if err != nil {
		return err
	}
	rows, err := es.TableIII(es.EarthSimulator(), es.DefaultModelParams(), prof)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table III: Performances on the Earth Simulator reported at SC")
	fmt.Fprintln(w)
	fmt.Fprint(w, es.FormatTableIII(rows))
	return nil
}

// RunList1 prints the synthesized MPIPROGINF report for the flagship
// 4096-process run sized to the paper's ~454-second wall clock (List 1).
func RunList1(w io.Writer, measure bool) error {
	prof, err := Profile(measure)
	if err != nil {
		return err
	}
	m := es.EarthSimulator()
	mp := es.DefaultModelParams()
	p, err := es.Predict(m, mp, prof, es.RunConfig{Spec: es.PaperSpec(511), Procs: 4096})
	if err != nil {
		return err
	}
	steps := int(453.0 / p.StepTime)
	rep := es.BuildProginf(m, mp, prof, p, steps)
	fmt.Fprintf(w, "List 1: MPIPROGINF for %d steps of the %d-process flagship run\n\n", steps, 4096)
	fmt.Fprint(w, rep.Format())
	return nil
}

// IOVolume reports the section-V output volume bookkeeping: 127 saves of
// the Cartesian B, v, omega and T fields from the 255-grid run. The
// paper's "about 500 GB" matches 10 single-precision fields saved on a
// 2x2 angularly subsampled grid.
type IOVolume struct {
	GridPoints      int64
	FieldsPerSave   int
	Saves           int
	FullBytes       int64 // full-resolution single precision
	SubsampledBytes int64 // every 2nd node in theta and phi
}

// ComputeIOVolume evaluates the bookkeeping for the paper's 255-grid.
func ComputeIOVolume() IOVolume {
	s := es.PaperSpec(255)
	points := s.TotalPoints()
	const fields = 10 // B(3) + v(3) + omega(3) + T
	const saves = 127
	full := int64(4) * int64(fields) * points * int64(saves)
	sub := full / 4
	return IOVolume{
		GridPoints:      points,
		FieldsPerSave:   fields,
		Saves:           saves,
		FullBytes:       full,
		SubsampledBytes: sub,
	}
}

// RunIOVolume prints the section-V data volume reproduction.
func RunIOVolume(w io.Writer) {
	v := ComputeIOVolume()
	fmt.Fprintln(w, "Section V data volume: 127 snapshots of B, v, omega (Cartesian) and T")
	fmt.Fprintf(w, "  grid points                  : %.3g (255 x 514 x 1538 x 2)\n", float64(v.GridPoints))
	fmt.Fprintf(w, "  fields per save              : %d\n", v.FieldsPerSave)
	fmt.Fprintf(w, "  saves                        : %d\n", v.Saves)
	fmt.Fprintf(w, "  full single-precision volume : %.0f GB\n", float64(v.FullBytes)/1e9)
	fmt.Fprintf(w, "  2x2 angular subsampling      : %.0f GB   (paper: about 500 GB)\n", float64(v.SubsampledBytes)/1e9)
}

// AblationA1 reports the grid-economy comparison: nodes spent by the
// lat-lon grid versus the Yin-Yang pair at matched angular resolution.
func AblationA1(w io.Writer) {
	y := grid.NewSpec(17, 129)
	ll := grid.NewLatLonSpec(y)
	ratio := grid.PointRatioVersusYinYang(y)
	fmt.Fprintln(w, "Ablation A1: grid economy at matched angular resolution")
	fmt.Fprintf(w, "  Yin-Yang pair : 2 x %d x %d = %d angular nodes\n", y.Nt, y.Np, 2*y.Nt*y.Np)
	fmt.Fprintf(w, "  lat-lon grid  : %d x %d = %d angular nodes\n", ll.Nt, ll.Np, ll.Nt*ll.Np)
	fmt.Fprintf(w, "  ratio         : %.3f (continuum limit about 1.26; overlap cost only 1.06)\n", ratio)
}

// AblationA2 reports the bank-conflict ablation: the model's per-point
// throughput for radial sizes at and just below the vector register
// length — the paper's reason for 255 and 511.
func AblationA2(w io.Writer, measure bool) error {
	prof, err := Profile(measure)
	if err != nil {
		return err
	}
	m := es.EarthSimulator()
	mp := es.DefaultModelParams()
	fmt.Fprintln(w, "Ablation A2: radial size vs the 256-element vector register (bank conflicts)")
	for _, nr := range []int{255, 256, 511, 512} {
		p, err := es.Predict(m, mp, prof, es.RunConfig{Spec: es.PaperSpec(nr), Procs: 2560})
		if err != nil {
			return err
		}
		perPoint := p.TFlops * 1e12 / float64(p.Config.Spec.TotalPoints())
		fmt.Fprintf(w, "  Nr=%3d: %6.2f TFlops (%4.1f%% of peak, %5.0f flops/s per grid point)\n",
			nr, p.TFlops, p.Efficiency*100, perPoint)
	}
	return nil
}

// AblationA3 reports the pole-CFL ablation measured with the real
// surface solvers: the maximum stable time step of the lat-lon grid
// collapses quadratically with resolution while the Yin-Yang pair's
// shrinks linearly.
func AblationA3(w io.Writer) error {
	fmt.Fprintln(w, "Ablation A3: explicit time-step limit, lat-lon vs Yin-Yang (surface advection-diffusion)")
	fmt.Fprintf(w, "  %-8s %-14s %-14s %-8s\n", "nodes", "lat-lon dt", "Yin-Yang dt", "ratio")
	const kappa = 0.01
	for _, nt := range []int{32, 64, 128, 256} {
		g, err := latlon.NewSurfaceGrid(nt, 2*nt)
		if err != nil {
			return err
		}
		yy, err := latlon.NewYYSurface(nt/2+1, kappa, 0)
		if err != nil {
			return err
		}
		dLL := g.MaxStableDt(kappa, 1)
		dYY := yy.MaxStableDt(kappa, 1)
		fmt.Fprintf(w, "  %-8d %-14.3e %-14.3e %-8.1f\n", nt, dLL, dYY, dYY/dLL)
	}
	return nil
}

// AblationA4 reports the decomposition-shape ablation: the chosen
// 2-D process grid versus degenerate 1-D decompositions at the flagship
// process count.
func AblationA4(w io.Writer, measure bool) error {
	prof, err := Profile(measure)
	if err != nil {
		return err
	}
	m := es.EarthSimulator()
	mp := es.DefaultModelParams()
	fmt.Fprintln(w, "Ablation A4: process-grid shape at 512 processes (Nr=511 grid)")
	spec := es.PaperSpec(511)
	for _, dims := range [][2]int{{0, 0}, {1, 256}, {256, 1}, {16, 16}, {8, 32}} {
		cfg := es.RunConfig{Spec: spec, Procs: 512, ForceDims: dims}
		p, err := es.Predict(m, mp, prof, cfg)
		if err != nil {
			fmt.Fprintf(w, "  %3dx%-3d : infeasible (%v)\n", dims[0], dims[1], err)
			continue
		}
		label := fmt.Sprintf("%dx%d", dims[0], dims[1])
		if dims[0] == 0 {
			label = "auto"
		}
		fmt.Fprintf(w, "  %-8s: %6.2f TFlops (%4.1f%% of peak, comm %4.1f%%)\n",
			label, p.TFlops, p.Efficiency*100, p.CommFraction*100)
	}
	return nil
}

// Fig2Result summarizes the convection-structure experiment.
type Fig2Result struct {
	Steps                  int
	Cyclonic, Anticyclonic int
	KineticEnergy          float64
	VortSlice, TempSlice   *viz.Image
}

// RunFig2 runs a rotating-convection spin-up and extracts the equatorial
// structure of Fig. 2. The resolution and step count scale down the
// paper's 4e8-point run to laptop size; the qualitative content —
// columnar cells of alternating sign aligned with the rotation axis —
// is the reproduction target.
func RunFig2(nr, nt, steps, pix int) (*Fig2Result, error) {
	sim, err := core.New(core.Config{Nr: nr, Nt: nt})
	if err != nil {
		return nil, err
	}
	batch := 10
	for done := 0; done < steps; done += batch {
		n := batch
		if steps-done < n {
			n = steps - done
		}
		if err := sim.Step(n); err != nil {
			return nil, err
		}
	}
	s := sim.Sampler()
	vort := viz.EquatorialSlice(s, viz.VortZ, pix)
	temp := viz.EquatorialSlice(s, viz.Temperature, pix)
	cyc, anti := viz.CountColumns(vort, 0.1)
	return &Fig2Result{
		Steps:         steps,
		Cyclonic:      cyc,
		Anticyclonic:  anti,
		KineticEnergy: sim.Diagnostics().KineticE,
		VortSlice:     vort,
		TempSlice:     temp,
	}, nil
}

// RunEnergyGrowth runs the dynamo and returns the recorded history
// (section V: both energies grow from negligible seeds toward
// saturation).
func RunEnergyGrowth(nr, nt, steps, batch int) ([]mhd.Diagnostics, error) {
	sim, err := core.New(core.Config{Nr: nr, Nt: nt})
	if err != nil {
		return nil, err
	}
	for done := 0; done < steps; done += batch {
		n := batch
		if steps-done < n {
			n = steps - done
		}
		if err := sim.Step(n); err != nil {
			return nil, err
		}
	}
	return sim.History(), nil
}

// FormatEnergySeries renders a diagnostics history as a CSV-ish table.
func FormatEnergySeries(w io.Writer, hist []mhd.Diagnostics) {
	fmt.Fprintln(w, "step,time,kineticE,magneticE,maxV,maxB")
	for _, d := range hist {
		fmt.Fprintf(w, "%d,%.6g,%.6g,%.6g,%.6g,%.6g\n",
			d.Step, d.Time, d.KineticE, d.MagneticE, d.MaxV, d.MaxB)
	}
}

// GrowthRate fits the exponential growth rate of a positive series
// between two history entries.
func GrowthRate(hist []mhd.Diagnostics, value func(mhd.Diagnostics) float64, i, j int) float64 {
	a, b := value(hist[i]), value(hist[j])
	dt := hist[j].Time - hist[i].Time
	if a <= 0 || b <= 0 || dt <= 0 {
		return math.NaN()
	}
	return math.Log(b/a) / dt
}

// AblationA5 contrasts the per-point cost structure of the paper's
// finite-difference method with the spectral transform method of the
// Table III peers: FD costs a resolution-independent ~2.3K flops per
// point per step, a spherical-harmonic transform pair grows linearly
// with the truncation degree — the reason the spectral atmosphere code
// shows 38K flops per grid point where yycore shows 19K.
func AblationA5(w io.Writer, measure bool) error {
	prof, err := Profile(measure)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation A5: method cost structure, finite difference vs spectral transform")
	fmt.Fprintf(w, "  finite difference (yycore RHS+RK4) : %6.0f flops/point/step at any resolution\n",
		prof.FlopsPerPoint)
	for _, L := range []int{32, 64, 128, 256} {
		f, err := spectral.FlopsPerPointPerTransformPair(L)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  spectral transform pair, degree %3d : %6.0f flops/point (and several pairs per step)\n", L, f)
	}
	return nil
}

// WallClockConsistency checks section V's timing statement against the
// model: the 255-grid run on 3888 processors took six wall-clock hours;
// the model's step time says how many RK4 steps that is, and the
// advective CFL of the grid says how much simulated time those steps
// cover. The paper equates that to about 0.3% of the magnetic free
// decay time.
type WallClockStats struct {
	StepTime      float64 // model seconds per step
	StepsInSixH   float64
	DTSim         float64 // simulated time units per step (CFL-limited)
	SimTime       float64 // simulated time covered in six hours
	ImpliedTauMag float64 // magnetic decay time if SimTime is 0.3% of it
}

// ComputeWallClock evaluates the consistency numbers.
func ComputeWallClock(measure bool) (WallClockStats, error) {
	prof, err := Profile(measure)
	if err != nil {
		return WallClockStats{}, err
	}
	p, err := es.Predict(es.EarthSimulator(), es.DefaultModelParams(), prof,
		es.RunConfig{Spec: es.PaperSpec(255), Procs: 3888})
	if err != nil {
		return WallClockStats{}, err
	}
	var st WallClockStats
	st.StepTime = p.StepTime
	st.StepsInSixH = 6 * 3600 / p.StepTime
	// Advective CFL: smallest spacing over the sonic speed ~ sqrt(gamma*TIn).
	spec := es.PaperSpec(255)
	minDx := mhd.MinGridSpacing(spec)
	cs := math.Sqrt(5.0 / 3.0 * 2.0)
	st.DTSim = 0.4 * minDx / cs
	st.SimTime = st.StepsInSixH * st.DTSim
	st.ImpliedTauMag = st.SimTime / 0.003
	return st, nil
}

// RunWallClock prints the section-V wall-clock consistency check.
func RunWallClock(w io.Writer, measure bool) error {
	st, err := ComputeWallClock(measure)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Section V wall-clock consistency (255-grid, 3888 processors, 6 hours):")
	fmt.Fprintf(w, "  model step time        : %.3f s -> %.3g RK4 steps in 6 h\n", st.StepTime, st.StepsInSixH)
	fmt.Fprintf(w, "  CFL-limited step       : %.3g time units\n", st.DTSim)
	fmt.Fprintf(w, "  simulated time covered : %.3g units\n", st.SimTime)
	fmt.Fprintf(w, "  implied magnetic decay : %.3g units (paper: run spans ~0.3%% of it)\n", st.ImpliedTauMag)
	return nil
}

// AblationA6 quantifies the paper's section-II remark on overlap
// minimization over the rectangular family: uniform trims have no
// margin (the patch edges touch their partner-images exactly), while
// cutting the corners — "the four corners intrude most into the other
// component grid" — keeps coverage and shrinks the overlap toward the
// exact-dissection variants.
func AblationA6(w io.Writer) {
	const n = 40000
	fmt.Fprintln(w, "Ablation A6: overlap minimization within the rectangular Yin-Yang family")
	fmt.Fprintf(w, "  basic overlap                : %.4f of the sphere (analytic %.4f)\n",
		grid.TrimmedOverlapFraction(0, 0, n), grid.OverlapFraction())
	fmt.Fprintf(w, "  max uniform phi trim         : %.4f rad (edges touch partner images: no margin)\n",
		grid.MaxPhiTrim(n))
	cmax := grid.MaxCornerCut(n)
	fmt.Fprintf(w, "  max square corner cut        : %.3f rad\n", cmax)
	fmt.Fprintf(w, "  overlap with that corner cut : %.4f of the sphere\n",
		grid.CornerCutOverlapFraction(cmax*0.98, n))
	fmt.Fprintln(w, "  (exact dissections — baseball/cube types — reach zero overlap by leaving the rectangle)")
}

// AblationA7 contrasts flat MPI with hybrid (MPI + microtasking)
// parallelization through the model — the comparison the paper makes via
// Nakajima (2002) when arguing that its flat-MPI code achieves high
// performance "with relatively low numbers of mesh size".
func AblationA7(w io.Writer, measure bool) error {
	prof, err := Profile(measure)
	if err != nil {
		return err
	}
	m := es.EarthSimulator()
	mp := es.DefaultModelParams()
	fmt.Fprintln(w, "Ablation A7: flat MPI vs hybrid (MPI + intra-node microtasking), 4096 APs")
	for _, nr := range []int{255, 511} {
		cfg := es.RunConfig{Spec: es.PaperSpec(nr), Procs: 4096}
		flat, err := es.Predict(m, mp, prof, cfg)
		if err != nil {
			return err
		}
		hyb, err := es.PredictHybrid(m, mp, prof, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  Nr=%3d: flat %5.2fT (%4.1f%%)   hybrid %5.2fT (%4.1f%%)   gap %+.1f points\n",
			nr, flat.TFlops, flat.Efficiency*100, hyb.TFlops, hyb.Efficiency*100,
			(hyb.Efficiency-flat.Efficiency)*100)
	}
	fmt.Fprintln(w, "  (hybrid amortizes per-process costs; the gap narrows as the problem grows,")
	fmt.Fprintln(w, "   which is why the paper's flat-MPI code competes at 8e8 grid points)")
	return nil
}

// RunScalingCurve prints the model's strong-scaling sweep at both radial
// sizes — the continuous version of Table II.
func RunScalingCurve(w io.Writer, measure bool) error {
	prof, err := Profile(measure)
	if err != nil {
		return err
	}
	m := es.EarthSimulator()
	mp := es.DefaultModelParams()
	procs := []int{256, 512, 1024, 1536, 2048, 2560, 3072, 3584, 4096, 5120}
	fmt.Fprintln(w, "Model strong-scaling sweep (the continuous Table II)")
	fmt.Fprintf(w, "  %-8s %-18s %-18s\n", "procs", "Nr=255", "Nr=511")
	for _, p := range procs {
		line := fmt.Sprintf("  %-8d", p)
		for _, nr := range []int{255, 511} {
			pts, err := es.ScalingCurve(m, mp, prof, nr, []int{p})
			if err != nil {
				line += fmt.Sprintf(" %-18s", "-")
				continue
			}
			line += fmt.Sprintf(" %5.2fT (%4.1f%%)    ", pts[0].TFlops, pts[0].Efficiency*100)
		}
		fmt.Fprintln(w, line)
	}
	return nil
}

// AblationA8 measures, on this host and the real MHD equations, the
// end-to-end advantage of the Yin-Yang grid over the lat-lon grid: the
// cost of advancing one unit of simulated time is (step cost)/(stable
// dt), and the pole-free grid wins on both factors (fewer points per
// sphere, far larger dt).
func AblationA8(w io.Writer) error {
	prm := mhd.Default()
	ic := mhd.DefaultIC()

	yy, err := mhd.NewSolver(grid.NewSpec(13, 13), prm, ic)
	if err != nil {
		return err
	}
	ll, err := latlon.NewMHD3D(13, 24, 48, prm, ic)
	if err != nil {
		return err
	}
	timeStep := func(step func()) float64 {
		start := time.Now()
		const reps = 3
		for i := 0; i < reps; i++ {
			step()
		}
		return time.Since(start).Seconds() / reps
	}
	dtYY := yy.EstimateDT(0.3)
	dtLL := ll.MaxStableDt(0.3)
	cYY := timeStep(func() { yy.Advance(dtYY) })
	cLL := timeStep(func() { ll.Advance(dtLL) })
	costYY := cYY / dtYY
	costLL := cLL / dtLL
	fmt.Fprintln(w, "Ablation A8: end-to-end cost per unit simulated time, full MHD on this host")
	fmt.Fprintf(w, "  Yin-Yang (13x13x37x2)  : dt=%.3e  %.3fs/step  %8.1f s per time unit\n", dtYY, cYY, costYY)
	fmt.Fprintf(w, "  lat-lon  (13x24x48)    : dt=%.3e  %.3fs/step  %8.1f s per time unit\n", dtLL, cLL, costLL)
	fmt.Fprintf(w, "  Yin-Yang advantage     : %.0fx (pole-free dt times per-step cost)\n", costLL/costYY)
	return nil
}
