package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/mhd"
)

func TestRunTable1(t *testing.T) {
	var b bytes.Buffer
	RunTable1(&b)
	for _, want := range []string{"Table I", "40 Tflops", "5120"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("missing %q in:\n%s", want, b.String())
		}
	}
}

func TestRunTable2(t *testing.T) {
	var b bytes.Buffer
	if err := RunTable2(&b, false); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table II", "4096", "1200", "model"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestRunTable3(t *testing.T) {
	var b bytes.Buffer
	if err := RunTable3(&b, false); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table III", "Shingu", "geodynamo"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestRunList1(t *testing.T) {
	var b bytes.Buffer
	if err := RunList1(&b, false); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"MPI Program Information", "GFLOPS", "<---"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("missing %q", want)
		}
	}
}

// TestIOVolume: the subsampled volume reproduces the paper's "about
// 500 GB" within a few percent.
func TestIOVolume(t *testing.T) {
	v := ComputeIOVolume()
	gb := float64(v.SubsampledBytes) / 1e9
	if gb < 470 || gb > 530 {
		t.Errorf("subsampled volume %.0f GB, want about 500", gb)
	}
	if v.Saves != 127 || v.FieldsPerSave != 10 {
		t.Errorf("bookkeeping: %+v", v)
	}
	var b bytes.Buffer
	RunIOVolume(&b)
	if !strings.Contains(b.String(), "127") {
		t.Error("report missing save count")
	}
}

func TestAblations(t *testing.T) {
	var b bytes.Buffer
	AblationA1(&b)
	if !strings.Contains(b.String(), "ratio") {
		t.Error("A1 output missing")
	}
	b.Reset()
	if err := AblationA2(&b, false); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Nr=255") || !strings.Contains(out, "Nr=256") {
		t.Error("A2 output missing rows")
	}
	b.Reset()
	if err := AblationA3(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "ratio") {
		t.Error("A3 output missing")
	}
	b.Reset()
	if err := AblationA4(&b, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "auto") || !strings.Contains(b.String(), "1x256") {
		t.Error("A4 output missing rows")
	}
}

func TestRunFig2Small(t *testing.T) {
	res, err := RunFig2(9, 13, 20, 48)
	if err != nil {
		t.Fatal(err)
	}
	if res.KineticEnergy <= 0 {
		t.Error("no flow developed")
	}
	if res.VortSlice.MaxAbs() == 0 {
		t.Error("empty vorticity slice")
	}
}

func TestEnergyGrowthSeries(t *testing.T) {
	hist, err := RunEnergyGrowth(9, 13, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) < 3 {
		t.Fatalf("history %d", len(hist))
	}
	last := hist[len(hist)-1]
	if last.KineticE <= 0 {
		t.Error("kinetic energy did not grow")
	}
	var b bytes.Buffer
	FormatEnergySeries(&b, hist)
	if !strings.Contains(b.String(), "kineticE") {
		t.Error("series header missing")
	}
	r := GrowthRate(hist, func(d mhd.Diagnostics) float64 { return d.KineticE }, 1, len(hist)-1)
	_ = r // growth rate may be any sign early on; just ensure it computes
}

func TestAblationA5(t *testing.T) {
	var b bytes.Buffer
	if err := AblationA5(&b, false); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "finite difference") || !strings.Contains(out, "spectral") {
		t.Error("A5 output incomplete")
	}
}

// TestWallClockConsistency: the implied magnetic decay time is a
// physically sensible multiple of the run length, and the model's step
// count for six hours is in the tens-to-hundreds of thousands.
func TestWallClockConsistency(t *testing.T) {
	st, err := ComputeWallClock(false)
	if err != nil {
		t.Fatal(err)
	}
	if st.StepsInSixH < 1e4 || st.StepsInSixH > 1e7 {
		t.Errorf("steps in six hours: %g", st.StepsInSixH)
	}
	if st.SimTime <= 0 || st.ImpliedTauMag <= st.SimTime {
		t.Errorf("times: sim %g, tau %g", st.SimTime, st.ImpliedTauMag)
	}
	var b bytes.Buffer
	if err := RunWallClock(&b, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "6 h") {
		t.Error("report incomplete")
	}
}

func TestAblationA6(t *testing.T) {
	var b bytes.Buffer
	AblationA6(&b)
	out := b.String()
	if !strings.Contains(out, "corner cut") || !strings.Contains(out, "basic overlap") {
		t.Error("A6 output incomplete")
	}
}

func TestAblationA7(t *testing.T) {
	var b bytes.Buffer
	if err := AblationA7(&b, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "hybrid") || !strings.Contains(b.String(), "flat") {
		t.Error("A7 output incomplete")
	}
}

func TestScalingCurveOutput(t *testing.T) {
	var b bytes.Buffer
	if err := RunScalingCurve(&b, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "4096") || !strings.Contains(b.String(), "Nr=511") {
		t.Error("scaling sweep incomplete")
	}
}

// TestAblationA8: the measured end-to-end Yin-Yang advantage on the full
// MHD system is large (dominated by the pole-free time step).
func TestAblationA8(t *testing.T) {
	var b bytes.Buffer
	if err := AblationA8(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "advantage") {
		t.Error("A8 output incomplete")
	}
}
