package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/decomp"
	"repro/internal/fd"
	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/mhd"
	"repro/internal/par"
)

// KernelBench is one (kernel, worker-count) measurement of the intra-rank
// parallelism layer. Speedup is relative to the 1-worker (serial) run of
// the same kernel in the same report; on a single-CPU host it hovers
// around 1 and only reflects pool overhead.
type KernelBench struct {
	Name         string  `json:"name"`
	Workers      int     `json:"workers"`
	NsPerOp      float64 `json:"ns_per_op"`
	PointsPerSec float64 `json:"points_per_sec"`
	Speedup      float64 `json:"speedup_vs_serial"`
}

// HaloBench is one measurement of the zero-alloc halo staging path.
type HaloBench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// BenchEnv records the host the numbers were taken on, so a committed
// report is honest about (for example) a 1-CPU container where no
// speedup can materialize.
type BenchEnv struct {
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	Nr         int    `json:"nr"`
	Nt         int    `json:"nt"`
	Np         int    `json:"np"`
}

// KernelReport is the BENCH_kernels.json document.
type KernelReport struct {
	Env     BenchEnv      `json:"env"`
	Kernels []KernelBench `json:"kernels"`
}

// HaloReport is the BENCH_halo.json document.
type HaloReport struct {
	Env        BenchEnv    `json:"env"`
	Benchmarks []HaloBench `json:"benchmarks"`
}

func benchEnv(s grid.Spec) BenchEnv {
	return BenchEnv{
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Nr:         s.Nr, Nt: s.Nt, Np: s.Np,
	}
}

// RunKernelBenches measures the pooled stencil/RHS kernels at each
// worker count (1 = serial baseline) and derives speedups.
func RunKernelBenches(s grid.Spec, workers []int) (*KernelReport, error) {
	sv, err := mhd.NewSolver(s, mhd.Default(), mhd.DefaultIC())
	if err != nil {
		return nil, err
	}
	pl := sv.Panels[grid.Yin]
	p := pl.Patch
	points := float64(p.Nr * p.Nt * p.Np)
	in := pl.U.P
	out := field.NewScalar(in.Shape)
	rhs := mhd.NewState(in.Shape)
	prm := mhd.Default()
	mhd.ComputeVTB(pl, &pl.U)

	kernels := []struct {
		name string
		fn   func()
	}{
		{"fd.Deriv1T", func() { fd.Deriv1T(p, in, out) }},
		{"fd.Deriv2P", func() { fd.Deriv2P(p, in, out) }},
		{"mhd.FinishRHS", func() { mhd.FinishRHS(pl, prm, &pl.U, &rhs, nil) }},
		{"mhd.PanelMaxSpeed", func() { mhd.PanelMaxSpeed(pl, prm) }},
	}

	rep := &KernelReport{Env: benchEnv(s)}
	serialNs := map[string]float64{}
	for _, w := range workers {
		pool := par.NewPool(w)
		sv.SetPool(pool)
		for _, k := range kernels {
			fn := k.fn
			res := testing.Benchmark(func(b *testing.B) {
				for n := 0; n < b.N; n++ {
					fn()
				}
			})
			ns := float64(res.NsPerOp())
			if w == 1 {
				serialNs[k.name] = ns
			}
			speedup := 0.0
			if base := serialNs[k.name]; base > 0 && ns > 0 {
				speedup = base / ns
			}
			rep.Kernels = append(rep.Kernels, KernelBench{
				Name: k.name, Workers: w, NsPerOp: ns,
				PointsPerSec: points / (ns * 1e-9),
				Speedup:      speedup,
			})
		}
		pool.Close()
		sv.SetPool(nil)
	}
	return rep, nil
}

// RunHaloBenches measures the halo staging path: pack+unpack of a full
// 8-field exchange phase through the preallocated arena. The committed
// acceptance number is AllocsPerOp == 0.
func RunHaloBenches(s grid.Spec) (*HaloReport, error) {
	p := grid.NewPatch(s, grid.Yin, 1)
	fields := make([]*field.Scalar, 8)
	for i := range fields {
		fields[i] = field.NewScalar(field.Shape{Nr: p.Nr, Nt: p.Nt, Np: p.Np, H: p.H})
	}
	hb := decomp.NewHaloBufs(p, len(fields))
	h := p.H

	rep := &HaloReport{Env: benchEnv(s)}
	cases := []struct {
		name string
		fn   func()
	}{
		{"HaloPackUnpackPhi8", func() {
			buf := hb.PackPhi(fields, h, 0)
			hb.UnpackPhi(fields, h+p.Np-1, buf)
		}},
		{"HaloPackUnpackTheta8", func() {
			buf := hb.PackTheta(fields, h, 1)
			hb.UnpackTheta(fields, h+p.Nt-1, buf)
		}},
	}
	for _, c := range cases {
		fn := c.fn
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for n := 0; n < b.N; n++ {
				fn()
			}
		})
		rep.Benchmarks = append(rep.Benchmarks, HaloBench{
			Name:        c.name,
			NsPerOp:     float64(res.NsPerOp()),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
		})
	}
	return rep, nil
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// WriteBenchJSON runs the benchmark suites and writes
// BENCH_kernels.json, BENCH_halo.json and BENCH_obs.json into dir.
func WriteBenchJSON(dir string, s grid.Spec, workers []int) error {
	kr, err := RunKernelBenches(s, workers)
	if err != nil {
		return err
	}
	if err := writeJSON(filepath.Join(dir, "BENCH_kernels.json"), kr); err != nil {
		return err
	}
	hr, err := RunHaloBenches(s)
	if err != nil {
		return err
	}
	if err := writeJSON(filepath.Join(dir, "BENCH_halo.json"), hr); err != nil {
		return err
	}
	return writeJSON(filepath.Join(dir, "BENCH_obs.json"), RunObsBenches())
}

// GateHaloAllocs re-measures the halo benchmarks and fails if any
// allocs/op regresses above the committed baseline — the CI guard that
// keeps the halo path allocation-free.
func GateHaloAllocs(baselinePath string, s grid.Spec) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base HaloReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("bench: parsing baseline %s: %w", baselinePath, err)
	}
	baseline := map[string]int64{}
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b.AllocsPerOp
	}
	cur, err := RunHaloBenches(s)
	if err != nil {
		return err
	}
	for _, b := range cur.Benchmarks {
		want, ok := baseline[b.Name]
		if !ok {
			continue
		}
		if b.AllocsPerOp > want {
			return fmt.Errorf("bench: %s allocates %d allocs/op, baseline %d — halo path regressed",
				b.Name, b.AllocsPerOp, want)
		}
	}
	return nil
}
