package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/decomp"
	"repro/internal/fd"
	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/mhd"
	"repro/internal/par"
	"repro/internal/store"
)

// KernelBench is one (kernel, worker-count) measurement of the intra-rank
// parallelism layer. Speedup is relative to the 1-worker (serial) run of
// the same kernel in the same report; on a single-CPU host it hovers
// around 1 and only reflects pool overhead.
type KernelBench struct {
	Name         string  `json:"name"`
	Workers      int     `json:"workers"`
	NsPerOp      float64 `json:"ns_per_op"`
	PointsPerSec float64 `json:"points_per_sec"`
	Speedup      float64 `json:"speedup_vs_serial"`
}

// HaloBench is one measurement of the zero-alloc halo staging path.
type HaloBench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// BenchEnv records the host the numbers were taken on, so a committed
// report is honest about (for example) a 1-CPU container where no
// speedup can materialize.
type BenchEnv struct {
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	Nr         int    `json:"nr"`
	Nt         int    `json:"nt"`
	Np         int    `json:"np"`
}

// prePRFinishRHSNs is the committed single-worker mhd.FinishRHS ns/op
// of the BENCH_kernels.json baseline measured on this host before the
// fused RHS kernels landed (the pre-fusion report in git history, same
// NewSpec(17,17) config). It is the fixed denominator of the >=2x step
// gate: the committed speedup is pinned against the pre-PR artifact, so
// the gate cannot drift as later PRs re-measure the reference.
const prePRFinishRHSNs = 3332615.0

// stepGateMin is the committed speedup the step gate demands against
// the pre-PR baseline.
const stepGateMin = 2.0

// stepTripwireMin is the live same-run fused-vs-reference re-measure
// threshold. It sits well under stepGateMin on purpose: the unfused
// reference shares the BCE-hardened fd kernels with the fused path, so
// a same-run ratio understates the speedup over the true pre-PR code,
// and single-CPU container noise adds +-20% on top. The tripwire only
// exists to catch the fused path itself regressing badly, not to
// re-prove the committed number.
const stepTripwireMin = 1.4

// stepSamples is the min-of-N sample count of the live gate tripwire;
// regenSamples is the deeper count used for the committed 1-worker
// baselines. The minimum over independent testing.Benchmark runs
// discards scheduler and frequency noise that a single sample keeps —
// the committed artifact deserves the deeper search, the per-CI
// tripwire only needs enough to avoid flaking.
const (
	stepSamples  = 3
	regenSamples = 8
)

// StepBench is the "step" section of BENCH_kernels.json: the fused
// FinishRHS against both the in-run unfused reference and the pre-PR
// committed baseline.
type StepBench struct {
	FusedNsPerOp       float64 `json:"fused_ns_per_op"`
	ReferenceNsPerOp   float64 `json:"reference_ns_per_op"`
	SpeedupVsReference float64 `json:"speedup_vs_reference"`
	PrePRNsPerOp       float64 `json:"pre_pr_ns_per_op"`
	SpeedupVsPrePR     float64 `json:"speedup_vs_pre_pr"`
}

// KernelReport is the BENCH_kernels.json document.
type KernelReport struct {
	Env     BenchEnv      `json:"env"`
	Kernels []KernelBench `json:"kernels"`
	Step    *StepBench    `json:"step,omitempty"`
}

// HaloReport is the BENCH_halo.json document.
type HaloReport struct {
	Env        BenchEnv    `json:"env"`
	Benchmarks []HaloBench `json:"benchmarks"`
}

func benchEnv(s grid.Spec) BenchEnv {
	return BenchEnv{
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Nr:         s.Nr, Nt: s.Nt, Np: s.Np,
	}
}

// minNsPerOp is the min-of-N measurement: the fastest of samples
// independent testing.Benchmark runs of fn. The minimum is the right
// statistic for a deterministic kernel on a noisy shared host — every
// slowdown source (scheduler, frequency, neighbours) only ever adds
// time.
func minNsPerOp(samples int, fn func()) float64 {
	best := 0.0
	for i := 0; i < samples; i++ {
		res := testing.Benchmark(func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				fn()
			}
		})
		ns := float64(res.NsPerOp())
		if i == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// RunKernelBenches measures the pooled stencil/RHS kernels at each
// worker count (1 = serial baseline) and derives speedups. The
// 1-worker rows are min-of-regenSamples because they are the committed
// baselines; multi-worker rows take a single sample. The report also
// carries the Step section: the fused FinishRHS against the unfused
// reference and the pre-PR committed number.
func RunKernelBenches(s grid.Spec, workers []int) (*KernelReport, error) {
	sv, err := mhd.NewSolver(s, mhd.Default(), mhd.DefaultIC())
	if err != nil {
		return nil, err
	}
	pl := sv.Panels[grid.Yin]
	p := pl.Patch
	points := float64(p.Nr * p.Nt * p.Np)
	in := pl.U.P
	out := field.NewScalar(in.Shape)
	rhs := mhd.NewState(in.Shape)
	prm := mhd.Default()
	reg := p.OwnedRegion()
	mhd.ComputeVTB(pl, &pl.U)
	// RHSUpdate consumes J and DivV; materialize them once so the
	// per-kernel rows measure each pass in isolation.
	mhd.RHSCurlJ(pl, reg)
	mhd.RHSDivV(pl, reg)

	kernels := []struct {
		name string
		fn   func()
	}{
		{"fd.Deriv1T", func() { fd.Deriv1T(p, in, out) }},
		{"fd.Deriv2P", func() { fd.Deriv2P(p, in, out) }},
		{"mhd.RHSCurlJ", func() { mhd.RHSCurlJ(pl, reg) }},
		{"mhd.RHSDivV", func() { mhd.RHSDivV(pl, reg) }},
		{"mhd.RHSUpdate", func() { mhd.RHSUpdate(pl, prm, &pl.U, &rhs, reg) }},
		{"mhd.FinishRHS", func() { mhd.FinishRHS(pl, prm, &pl.U, &rhs, nil) }},
		{"mhd.FinishRHSRef", func() { mhd.FinishRHSReference(pl, prm, &pl.U, &rhs, nil) }},
		{"mhd.PanelMaxSpeed", func() { mhd.PanelMaxSpeed(pl, prm) }},
	}

	rep := &KernelReport{Env: benchEnv(s)}
	serialNs := map[string]float64{}
	for _, w := range workers {
		pool := par.NewPool(w)
		sv.SetPool(pool)
		for _, k := range kernels {
			samples := 1
			if w == 1 {
				samples = regenSamples
			}
			ns := minNsPerOp(samples, k.fn)
			if w == 1 {
				serialNs[k.name] = ns
			}
			speedup := 0.0
			if base := serialNs[k.name]; base > 0 && ns > 0 {
				speedup = base / ns
			}
			rep.Kernels = append(rep.Kernels, KernelBench{
				Name: k.name, Workers: w, NsPerOp: ns,
				PointsPerSec: points / (ns * 1e-9),
				Speedup:      speedup,
			})
		}
		pool.Close()
		sv.SetPool(nil)
	}
	fused, ref := serialNs["mhd.FinishRHS"], serialNs["mhd.FinishRHSRef"]
	if fused > 0 && ref > 0 {
		rep.Step = &StepBench{
			FusedNsPerOp:       fused,
			ReferenceNsPerOp:   ref,
			SpeedupVsReference: ref / fused,
			PrePRNsPerOp:       prePRFinishRHSNs,
			SpeedupVsPrePR:     prePRFinishRHSNs / fused,
		}
	}
	return rep, nil
}

// RunStepBench is the live slice of the step gate: a serial
// min-of-stepSamples measurement of the fused FinishRHS against the
// unfused reference, without the full worker matrix.
func RunStepBench(s grid.Spec) (*StepBench, error) {
	sv, err := mhd.NewSolver(s, mhd.Default(), mhd.DefaultIC())
	if err != nil {
		return nil, err
	}
	pl := sv.Panels[grid.Yin]
	rhs := mhd.NewState(pl.U.P.Shape)
	prm := mhd.Default()
	mhd.ComputeVTB(pl, &pl.U)
	fused := minNsPerOp(stepSamples, func() { mhd.FinishRHS(pl, prm, &pl.U, &rhs, nil) })
	ref := minNsPerOp(stepSamples, func() { mhd.FinishRHSReference(pl, prm, &pl.U, &rhs, nil) })
	return &StepBench{
		FusedNsPerOp:       fused,
		ReferenceNsPerOp:   ref,
		SpeedupVsReference: ref / fused,
		PrePRNsPerOp:       prePRFinishRHSNs,
		SpeedupVsPrePR:     prePRFinishRHSNs / fused,
	}, nil
}

// RunHaloBenches measures the halo staging path: pack+unpack of a full
// 8-field exchange phase through the preallocated arena. The committed
// acceptance number is AllocsPerOp == 0.
func RunHaloBenches(s grid.Spec) (*HaloReport, error) {
	p := grid.NewPatch(s, grid.Yin, 1)
	fields := make([]*field.Scalar, 8)
	for i := range fields {
		fields[i] = field.NewScalar(field.Shape{Nr: p.Nr, Nt: p.Nt, Np: p.Np, H: p.H})
	}
	hb := decomp.NewHaloBufs(p, len(fields))
	h := p.H

	rep := &HaloReport{Env: benchEnv(s)}
	cases := []struct {
		name string
		fn   func()
	}{
		{"HaloPackUnpackPhi8", func() {
			buf := hb.PackPhi(fields, h, 0)
			hb.UnpackPhi(fields, h+p.Np-1, buf)
		}},
		{"HaloPackUnpackTheta8", func() {
			buf := hb.PackTheta(fields, h, 1)
			hb.UnpackTheta(fields, h+p.Nt-1, buf)
		}},
	}
	for _, c := range cases {
		fn := c.fn
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for n := 0; n < b.N; n++ {
				fn()
			}
		})
		rep.Benchmarks = append(rep.Benchmarks, HaloBench{
			Name:        c.name,
			NsPerOp:     float64(res.NsPerOp()),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
		})
	}
	return rep, nil
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return store.WriteFileAtomic(path, append(data, '\n'), 0o644)
}

// WriteBenchJSON runs the benchmark suites and writes
// BENCH_kernels.json, BENCH_halo.json and BENCH_obs.json into dir.
func WriteBenchJSON(dir string, s grid.Spec, workers []int) error {
	kr, err := RunKernelBenches(s, workers)
	if err != nil {
		return err
	}
	if err := writeJSON(filepath.Join(dir, "BENCH_kernels.json"), kr); err != nil {
		return err
	}
	hr, err := RunHaloBenches(s)
	if err != nil {
		return err
	}
	if err := writeJSON(filepath.Join(dir, "BENCH_halo.json"), hr); err != nil {
		return err
	}
	return writeJSON(filepath.Join(dir, "BENCH_obs.json"), RunObsBenches())
}

// GateHaloAllocs re-measures the halo benchmarks and fails if any
// allocs/op regresses above the committed baseline — the CI guard that
// keeps the halo path allocation-free.
func GateHaloAllocs(baselinePath string, s grid.Spec) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base HaloReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("bench: parsing baseline %s: %w", baselinePath, err)
	}
	baseline := map[string]int64{}
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b.AllocsPerOp
	}
	cur, err := RunHaloBenches(s)
	if err != nil {
		return err
	}
	for _, b := range cur.Benchmarks {
		want, ok := baseline[b.Name]
		if !ok {
			continue
		}
		if b.AllocsPerOp > want {
			return fmt.Errorf("bench: %s allocates %d allocs/op, baseline %d — halo path regressed",
				b.Name, b.AllocsPerOp, want)
		}
	}
	return nil
}

// GateStep enforces the fused-RHS speedup in two halves. The static
// half reads the committed BENCH_kernels.json and demands its step
// section records >=stepGateMin over the pre-PR baseline — that is the
// reviewed, committed claim. The live half re-measures fused vs
// reference in this run and trips below stepTripwireMin, catching a
// fused-path regression without re-litigating the committed number on
// a noisy host (the same-run reference also enjoys this PR's fd-kernel
// improvements, so its ratio sits below the pre-PR one by design).
func GateStep(baselinePath string, s grid.Spec) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base KernelReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("bench: parsing baseline %s: %w", baselinePath, err)
	}
	if base.Step == nil {
		return fmt.Errorf("bench: %s has no step section — regenerate with yybench -json", baselinePath)
	}
	if base.Step.SpeedupVsPrePR < stepGateMin {
		return fmt.Errorf("bench: committed step speedup %.2fx vs pre-PR baseline is below the %.1fx gate — re-measure on a quiet host or fix the fused path",
			base.Step.SpeedupVsPrePR, stepGateMin)
	}
	cur, err := RunStepBench(s)
	if err != nil {
		return err
	}
	if cur.SpeedupVsReference < stepTripwireMin {
		return fmt.Errorf("bench: live fused FinishRHS is only %.2fx the unfused reference (%.0f vs %.0f ns/op), tripwire %.1fx — fused path regressed",
			cur.SpeedupVsReference, cur.FusedNsPerOp, cur.ReferenceNsPerOp, stepTripwireMin)
	}
	return nil
}
