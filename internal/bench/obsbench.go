package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/telemetry"
)

// ObsBench is one measurement of the observability hot path. The
// committed acceptance number is AllocsPerOp == 0 on every row: tracing
// rides inside the solver step and must never touch the allocator.
type ObsBench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// ObsReport is the BENCH_obs.json document.
type ObsReport struct {
	Env        BenchEnv   `json:"env"`
	Benchmarks []ObsBench `json:"benchmarks"`
}

// RunObsBenches measures the per-event costs a traced run pays on every
// span, histogram observation and delivery count.
func RunObsBenches() *ObsReport {
	rec := obs.New(obs.Config{})
	rr := rec.RankFor(0)
	// Warm the per-(comm,tag) map so the steady-state read-lock path is
	// what gets measured, exactly as in a long run.
	rec.CommDelivered(0, 5, 1024)
	rec.CommWaited(0, 5, 1000)

	// The telemetry publisher rides the same step path as the spans:
	// a seqlock publish (and the collector's read) must stay at zero
	// allocations too.
	pub := &telemetry.RankPub{}
	snap := telemetry.Snapshot{Step: 1, DT: 1e-3, DivB: 1e-9}

	cases := []struct {
		name string
		fn   func()
	}{
		{"SpanBeginEnd", func() { rr.Begin(obs.SpanRHS).End() }},
		{"CommDelivered", func() { rec.CommDelivered(0, 5, 1024) }},
		{"CommWaitHistObserve", func() { rec.CommWaited(0, 5, 1000) }},
		{"SetGauge", func() { rr.SetGauge("dt", 1e-3) }},
		{"TelemetryPublish", func() { snap.Step++; pub.Publish(snap) }},
		{"TelemetryRead", func() { pub.Read() }},
	}
	rep := &ObsReport{Env: benchEnv(grid.NewSpec(17, 17))}
	for _, c := range cases {
		fn := c.fn
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for n := 0; n < b.N; n++ {
				fn()
			}
		})
		rep.Benchmarks = append(rep.Benchmarks, ObsBench{
			Name:        c.name,
			NsPerOp:     float64(res.NsPerOp()),
			AllocsPerOp: res.AllocsPerOp(),
		})
	}
	return rep
}

// GateObsOverhead re-measures the observability hot path and fails if
// allocs/op regresses above the committed baseline (strict: the rings
// and histograms are preallocated, so any alloc is a bug) or if ns/op
// blows past a generous multiple of it (shared-CI noise allowance; only
// an order-of-magnitude regression, e.g. an accidental lock or
// formatting call on the hot path, should trip it).
func GateObsOverhead(baselinePath string) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base ObsReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("bench: parsing baseline %s: %w", baselinePath, err)
	}
	baseline := map[string]ObsBench{}
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b
	}
	cur := RunObsBenches()
	for _, b := range cur.Benchmarks {
		want, ok := baseline[b.Name]
		if !ok {
			continue
		}
		if b.AllocsPerOp > want.AllocsPerOp {
			return fmt.Errorf("bench: %s allocates %d allocs/op, baseline %d — tracing hot path regressed",
				b.Name, b.AllocsPerOp, want.AllocsPerOp)
		}
		if limit := 10*want.NsPerOp + 100; b.NsPerOp > limit {
			return fmt.Errorf("bench: %s takes %.0f ns/op, baseline %.0f (limit %.0f) — tracing hot path regressed",
				b.Name, b.NsPerOp, want.NsPerOp, limit)
		}
	}
	return nil
}
