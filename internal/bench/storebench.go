package bench

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/grid"
	"repro/internal/store"
)

// StoreBench is one measurement of the durable run ledger's write path.
// The committed acceptance number is AllocsPerOp == 0 on StorePutDedup:
// the steady-state shape of a deterministic campaign is re-putting a
// bit-identical checkpoint, and that path is a sha256 plus an index hit
// — it must never touch the allocator. StorePutFresh and LedgerAppend
// are fsync-bound; their ns/op documents the commit cost a campaign
// pays per segment, not a regression target beyond order of magnitude.
type StoreBench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// StoreReport is the BENCH_store.json document.
type StoreReport struct {
	Env        BenchEnv     `json:"env"`
	Benchmarks []StoreBench `json:"benchmarks"`
}

// RunStoreBenches measures the store write path against a throwaway
// local directory backend.
func RunStoreBenches() (*StoreReport, error) {
	dir, err := os.MkdirTemp("", "yybench-store-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	backend, err := store.NewDirBackend(dir)
	if err != nil {
		return nil, err
	}
	st, err := store.Open(backend)
	if err != nil {
		return nil, err
	}

	// A checkpoint-shaped payload, large enough that the sha256 cost
	// dominates the dedup path the way it does in a real campaign.
	payload := make([]byte, 64<<10)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	warm, err := st.Put(payload)
	if err != nil {
		return nil, err
	}

	// Fresh puts need a distinct blob per iteration; small, so the
	// measurement is the commit path (temp+fsync+rename+dirfsync), not
	// the hash of a large body.
	fresh := make([]byte, 4<<10)
	var freshN uint64

	cases := []struct {
		name string
		fn   func() error
	}{
		{"StorePutDedup", func() error {
			_, err := st.Put(payload)
			return err
		}},
		{"StorePutFresh", func() error {
			freshN++
			binary.LittleEndian.PutUint64(fresh, freshN)
			_, err := st.Put(fresh)
			return err
		}},
		{"LedgerAppend", func() error {
			_, err := st.Append(store.Manifest{
				Run:       "bench",
				Artifacts: []store.Artifact{{Name: "ckpt", Hash: warm, Size: int64(len(payload))}},
			})
			return err
		}},
	}
	rep := &StoreReport{Env: benchEnv(grid.NewSpec(17, 17))}
	for _, c := range cases {
		fn := c.fn
		var benchErr error
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for n := 0; n < b.N; n++ {
				if err := fn(); err != nil {
					benchErr = err
					b.FailNow()
				}
			}
		})
		if benchErr != nil {
			return nil, fmt.Errorf("bench: %s: %w", c.name, benchErr)
		}
		rep.Benchmarks = append(rep.Benchmarks, StoreBench{
			Name:        c.name,
			NsPerOp:     float64(res.NsPerOp()),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
		})
	}
	return rep, nil
}

// GateStoreAllocs re-measures the store write path and fails if the
// dedup hot path allocates at all (strict: zero is the committed
// contract, independent of the baseline) or if any row's allocs/op or
// ns/op regresses far past the committed BENCH_store.json (fsync-bound
// rows get an order-of-magnitude ns allowance for shared-CI disks).
func GateStoreAllocs(baselinePath string) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base StoreReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("bench: parsing baseline %s: %w", baselinePath, err)
	}
	baseline := map[string]StoreBench{}
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b
	}
	cur, err := RunStoreBenches()
	if err != nil {
		return err
	}
	for _, b := range cur.Benchmarks {
		if b.Name == "StorePutDedup" && b.AllocsPerOp > 0 {
			return fmt.Errorf("bench: %s allocates %d allocs/op, want 0 — the steady-state blob-write path regressed",
				b.Name, b.AllocsPerOp)
		}
		want, ok := baseline[b.Name]
		if !ok {
			continue
		}
		if b.AllocsPerOp > 2*want.AllocsPerOp+8 {
			return fmt.Errorf("bench: %s allocates %d allocs/op, baseline %d — the store write path regressed",
				b.Name, b.AllocsPerOp, want.AllocsPerOp)
		}
		if limit := 10*want.NsPerOp + 1e6; b.NsPerOp > limit {
			return fmt.Errorf("bench: %s takes %.0f ns/op, baseline %.0f (limit %.0f) — the store write path regressed",
				b.Name, b.NsPerOp, want.NsPerOp, limit)
		}
	}
	return nil
}

// WriteStoreBenchJSON runs the store benchmarks and writes
// BENCH_store.json into dir.
func WriteStoreBenchJSON(dir string) error {
	rep, err := RunStoreBenches()
	if err != nil {
		return err
	}
	return writeJSON(dir+"/BENCH_store.json", rep)
}
