package bench

import (
	"testing"

	"repro/internal/store"
)

// TestStorePutDedupZeroAlloc pins the steady-state blob-write contract
// directly: re-putting a blob the store already holds is a sha256 plus
// an index hit and must not touch the allocator. BENCH_store.json and
// yybench -gate-store pin the same number against the committed
// baseline; this test catches the regression in `go test` without the
// bench harness.
func TestStorePutDedupZeroAlloc(t *testing.T) {
	backend, err := store.NewDirBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(backend)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 64<<10)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	if _, err := st.Put(payload); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := st.Put(payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Put allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestGateStoreAllocs runs the committed baseline through the gate: the
// gate must accept the numbers it was generated from (dedup row zero,
// fsync rows within slack).
func TestGateStoreAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("re-measures fsync-bound benchmarks")
	}
	if err := GateStoreAllocs("../../BENCH_store.json"); err != nil {
		t.Fatal(err)
	}
}
