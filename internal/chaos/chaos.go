// Package chaos is a seeded randomized fault-space fuzzer for the
// self-healing runtime: it generates drop/delay/duplicate/kill
// schedules over full multi-step decomposed solver runs and checks
// three properties per scenario —
//
//   - liveness: every run terminates, in success or a clean diagnosable
//     abort, never a wedge;
//   - safety: a run that completes under message faults produces a
//     checkpoint byte-identical to the fault-free golden run;
//   - recoverability: kill schedules converge through a
//     resilience.RunCampaign rollback.
//
// Scenarios are pure functions of their seed, so any failure replays
// exactly; failing scenarios minimize (Minimize) to a smallest
// reproducer for the committed regression corpus in testdata/, which
// go test replays deterministically.
package chaos

import (
	"fmt"
	"time"

	"repro/internal/decomp"
	"repro/internal/mpi"
	"repro/internal/telemetry"
)

// Config sizes the solver runs the fuzzer drives. Zero values select
// defaults small enough for a CI smoke stage.
type Config struct {
	// NProcs is the world size (default 2; 4 adds intra-panel halo
	// traffic to the fault space).
	NProcs int
	// Steps per run (default 5).
	Steps int
	// Nr, Nt size the grid (defaults 9, 13).
	Nr, Nt int
	// DT is the fixed time step (default 2e-3) — fixed so the golden
	// checkpoint is one hash, not a per-scenario estimate.
	DT float64
	// AckTimeout is the reliable transport's first-retransmit wait
	// (default 2ms; retries back off from there).
	AckTimeout time.Duration
	// Deadline is the in-run watchdog backstop (default 20s).
	Deadline time.Duration
	// WedgeTimeout is the outer liveness bound: a scenario that has not
	// terminated by then is declared a wedge (default 60s — it must
	// comfortably exceed Deadline, which is itself a clean termination).
	WedgeTimeout time.Duration
	// MaxFaults bounds the message faults per scenario (default 6).
	MaxFaults int
	// ArtifactDir, when set, collects diagnostics for every violating
	// scenario: the failed campaign's postmortem.txt and the run's event
	// timeline, named after the scenario — what a CI job uploads when a
	// chaos stage goes red. Empty disables collection.
	ArtifactDir string
	// Telemetry, when non-nil, is a live telemetry plane attached to
	// every scenario run: ranks publish step snapshots into it and its
	// anomaly engine consumes the run's event timeline, so the scripted
	// faults must surface as latched telemetry alerts. Pure
	// observability — the verdict logic never reads the plane.
	Telemetry *telemetry.Plane
}

func (c Config) withDefaults() Config {
	if c.NProcs <= 0 {
		c.NProcs = 2
	}
	if c.Steps <= 0 {
		c.Steps = 5
	}
	if c.Nr <= 0 {
		c.Nr = 9
	}
	if c.Nt <= 0 {
		c.Nt = 13
	}
	if c.DT <= 0 {
		c.DT = 2e-3
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = 2 * time.Millisecond
	}
	if c.Deadline <= 0 {
		c.Deadline = 20 * time.Second
	}
	if c.WedgeTimeout <= 0 {
		c.WedgeTimeout = 60 * time.Second
	}
	if c.MaxFaults <= 0 {
		c.MaxFaults = 6
	}
	return c
}

// rng is splitmix64: tiny, seedable, and stable across Go versions —
// scenario generation must be a pure function of the seed forever.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}

// FaultSpec is the JSON-stable mirror of one scripted message fault.
type FaultSpec struct {
	Comm    int    `json:"comm"`
	Src     int    `json:"src"`
	Dst     int    `json:"dst"`
	Tag     int    `json:"tag"`
	Epoch   int    `json:"epoch"`
	Action  string `json:"action"` // "drop", "delay" or "duplicate"
	DelayMS int    `json:"delay_ms,omitempty"`
}

func (f FaultSpec) String() string {
	s := fmt.Sprintf("%s comm=%d src=%d dst=%d tag=%d epoch=%d", f.Action, f.Comm, f.Src, f.Dst, f.Tag, f.Epoch)
	if f.Action == "delay" {
		s += fmt.Sprintf(" delay=%dms", f.DelayMS)
	}
	return s
}

// KillSpec is the JSON-stable mirror of one scripted rank kill.
type KillSpec struct {
	Rank   int  `json:"rank"`
	Step   int  `json:"step"`
	Silent bool `json:"silent,omitempty"`
}

func (k KillSpec) String() string {
	kind := "kill"
	if k.Silent {
		kind = "kill-silent"
	}
	return fmt.Sprintf("%s rank=%d step=%d", kind, k.Rank, k.Step)
}

// Scenario is one generated (or corpus-committed) fault schedule.
type Scenario struct {
	// Seed the scenario was generated from (0 for hand-written corpus
	// entries); informational — the schedule below is authoritative.
	Seed   uint64      `json:"seed"`
	Name   string      `json:"name,omitempty"` // corpus entries only
	Faults []FaultSpec `json:"faults,omitempty"`
	Kills  []KillSpec  `json:"kills,omitempty"`
	// Replace runs the kill schedule under elastic rank replacement:
	// confirmed-dead ranks are respawned from the segment checkpoint
	// instead of costing a whole-segment rollback. The verdict demands
	// the same liveness and golden byte-identity either way.
	Replace bool `json:"replace,omitempty"`
}

func (sc Scenario) String() string {
	s := fmt.Sprintf("seed=%d", sc.Seed)
	if sc.Name != "" {
		s = sc.Name + " " + s
	}
	for _, f := range sc.Faults {
		s += "; " + f.String()
	}
	for _, k := range sc.Kills {
		s += "; " + k.String()
	}
	if sc.Replace {
		s += "; replace"
	}
	return s
}

// plan compiles the scenario into a fresh (stateful) runtime fault
// plan; every attempt needs its own.
func (sc Scenario) plan() (*mpi.FaultPlan, error) {
	p := mpi.NewFaultPlan()
	for _, f := range sc.Faults {
		mf := mpi.Fault{Comm: f.Comm, Src: f.Src, Dst: f.Dst, Tag: f.Tag, Epoch: f.Epoch}
		switch f.Action {
		case "drop":
			mf.Action = mpi.Drop
		case "duplicate":
			mf.Action = mpi.Duplicate
		case "delay":
			mf.Action = mpi.Delay
			mf.Delay = time.Duration(f.DelayMS) * time.Millisecond
		default:
			return nil, fmt.Errorf("chaos: unknown fault action %q", f.Action)
		}
		p.Add(mf)
	}
	for _, k := range sc.Kills {
		if k.Silent {
			p.KillSilent(k.Rank, k.Step)
		} else {
			p.Kill(k.Rank, k.Step)
		}
	}
	return p, nil
}

// GenScenario derives a scenario purely from seed: 1..MaxFaults message
// faults across the solver's real exchange-tag space (world and both
// panel communicators), and, for a third of the seeds, one rank kill
// (noisy or silent) somewhere in the run. Epochs reach well past the
// traffic a short run generates, so some faults are deliberately inert
// — absence of a fault is part of the space too.
func GenScenario(seed uint64, cfg Config) Scenario {
	cfg = cfg.withDefaults()
	g := &rng{s: seed}
	sc := Scenario{Seed: seed}
	tags := decomp.ExchangeTags()
	nf := 1 + g.intn(cfg.MaxFaults)
	for i := 0; i < nf; i++ {
		f := FaultSpec{
			Comm:  g.intn(3), // world or either panel's split comm
			Tag:   tags[g.intn(len(tags))],
			Epoch: g.intn(cfg.Steps * 20),
		}
		f.Src = g.intn(cfg.NProcs)
		f.Dst = g.intn(cfg.NProcs - 1)
		if f.Dst >= f.Src {
			f.Dst++ // distinct peers; the runtime rejects self-sends
		}
		switch g.intn(3) {
		case 0:
			f.Action = "drop"
		case 1:
			f.Action = "duplicate"
		default:
			f.Action = "delay"
			f.DelayMS = 1 + g.intn(25)
		}
		sc.Faults = append(sc.Faults, f)
	}
	if g.intn(3) == 0 {
		sc.Kills = append(sc.Kills, KillSpec{
			Rank:   g.intn(cfg.NProcs),
			Step:   1 + g.intn(cfg.Steps),
			Silent: g.intn(2) == 1,
		})
		// Half the kill schedules recover by surgical rank replacement,
		// the other half by the rollback ladder — both must converge to
		// the same bytes.
		sc.Replace = g.intn(2) == 1
	}
	return sc
}
