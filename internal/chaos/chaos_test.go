package chaos

import (
	"reflect"
	"testing"
	"time"
)

// TestGenScenarioDeterministic: scenario generation is a pure function
// of the seed — the corpus and any failure report replay exactly.
func TestGenScenarioDeterministic(t *testing.T) {
	cfg := Config{}
	for _, seed := range []uint64{0, 1, 42, 1 << 40} {
		a := GenScenario(seed, cfg)
		b := GenScenario(seed, cfg)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: %v vs %v", seed, a, b)
		}
	}
	if reflect.DeepEqual(GenScenario(1, cfg), GenScenario(2, cfg)) {
		t.Fatal("distinct seeds generated identical scenarios")
	}
}

// TestChaosSmoke is the in-test fuzz pass: a batch of seeded scenarios
// over full solver runs, all three properties checked, zero violations
// tolerated.
func TestChaosSmoke(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 5
	}
	r := NewRunner(Config{})
	for seed := 0; seed < seeds; seed++ {
		o := r.RunSeed(uint64(seed))
		if o.Verdict.Violation() {
			t.Fatalf("seed %d: %s\nscenario: %s\n%s", seed, o.Verdict, o.Scenario, o.Detail)
		}
	}
}

// TestCorpusReplay replays the committed regression corpus: every entry
// must reproduce its recorded verdict, deterministically.
func TestCorpusReplay(t *testing.T) {
	entries, err := LoadCorpus("testdata/corpus.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("empty corpus")
	}
	r := NewRunner(Config{})
	for _, e := range entries {
		e := e
		t.Run(e.Scenario.Name, func(t *testing.T) {
			o := r.Run(e.Scenario)
			if o.Verdict != e.Want {
				t.Fatalf("verdict %s, want %s\nscenario: %s\n%s", o.Verdict, e.Want, o.Scenario, o.Detail)
			}
		})
	}
}

// TestMinimize: greedy delta debugging strips every fault and kill the
// failure predicate does not depend on.
func TestMinimize(t *testing.T) {
	sc := GenScenario(7, Config{})
	sc.Faults = append(sc.Faults, FaultSpec{Comm: 0, Src: 0, Dst: 1, Tag: 77, Epoch: 3, Action: "drop"})
	sc.Kills = append(sc.Kills, KillSpec{Rank: 1, Step: 4}, KillSpec{Rank: 0, Step: 2, Silent: true})

	// Synthetic failure: reproduces iff the tag-77 drop and the silent
	// kill are both present.
	bad := func(s Scenario) bool {
		var f, k bool
		for _, x := range s.Faults {
			if x.Tag == 77 {
				f = true
			}
		}
		for _, x := range s.Kills {
			if x.Silent {
				k = true
			}
		}
		return f && k
	}
	if !bad(sc) {
		t.Fatal("precondition: scenario must fail")
	}
	min := Minimize(sc, bad)
	if len(min.Faults) != 1 || len(min.Kills) != 1 {
		t.Fatalf("minimized to %d faults, %d kills; want 1+1: %s", len(min.Faults), len(min.Kills), min)
	}
	if min.Faults[0].Tag != 77 || !min.Kills[0].Silent {
		t.Fatalf("minimizer kept the wrong schedule: %s", min)
	}
}

// TestWedgeGuard: the outer liveness guard classifies a run that
// outlives WedgeTimeout as a wedge instead of blocking the harness.
func TestWedgeGuard(t *testing.T) {
	r := NewRunner(Config{WedgeTimeout: time.Millisecond})
	o := r.Run(Scenario{Name: "any"})
	if o.Verdict != Wedge {
		t.Fatalf("verdict %s, want wedge (a 1ms bound cannot fit a solver run)", o.Verdict)
	}
}
