package chaos

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/mpi"
)

// TestGenScenarioDeterministic: scenario generation is a pure function
// of the seed — the corpus and any failure report replay exactly.
func TestGenScenarioDeterministic(t *testing.T) {
	cfg := Config{}
	for _, seed := range []uint64{0, 1, 42, 1 << 40} {
		a := GenScenario(seed, cfg)
		b := GenScenario(seed, cfg)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: %v vs %v", seed, a, b)
		}
	}
	if reflect.DeepEqual(GenScenario(1, cfg), GenScenario(2, cfg)) {
		t.Fatal("distinct seeds generated identical scenarios")
	}
}

// TestChaosSmoke is the in-test fuzz pass: a batch of seeded scenarios
// over full solver runs, all three properties checked, zero violations
// tolerated.
func TestChaosSmoke(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 5
	}
	r := NewRunner(Config{})
	for seed := 0; seed < seeds; seed++ {
		o := r.RunSeed(uint64(seed))
		if o.Verdict.Violation() {
			t.Fatalf("seed %d: %s\nscenario: %s\n%s", seed, o.Verdict, o.Scenario, o.Detail)
		}
	}
}

// TestCorpusReplay replays the committed regression corpora — the
// message-fault/rollback corpus and the rank-replacement corpus: every
// entry must reproduce its recorded verdict, deterministically.
func TestCorpusReplay(t *testing.T) {
	var entries []CorpusEntry
	for _, path := range []string{"testdata/corpus.json", "testdata/corpus_replace.json"} {
		part, err := LoadCorpus(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(part) == 0 {
			t.Fatalf("empty corpus %s", path)
		}
		entries = append(entries, part...)
	}
	r := NewRunner(Config{})
	for _, e := range entries {
		e := e
		t.Run(e.Scenario.Name, func(t *testing.T) {
			o := r.Run(e.Scenario)
			if o.Verdict != e.Want {
				t.Fatalf("verdict %s, want %s\nscenario: %s\n%s", o.Verdict, e.Want, o.Scenario, o.Detail)
			}
		})
	}
}

// TestMinimize: greedy delta debugging strips every fault and kill the
// failure predicate does not depend on.
func TestMinimize(t *testing.T) {
	sc := GenScenario(7, Config{})
	sc.Faults = append(sc.Faults, FaultSpec{Comm: 0, Src: 0, Dst: 1, Tag: 77, Epoch: 3, Action: "drop"})
	sc.Kills = append(sc.Kills, KillSpec{Rank: 1, Step: 4}, KillSpec{Rank: 0, Step: 2, Silent: true})

	// Synthetic failure: reproduces iff the tag-77 drop and the silent
	// kill are both present.
	bad := func(s Scenario) bool {
		var f, k bool
		for _, x := range s.Faults {
			if x.Tag == 77 {
				f = true
			}
		}
		for _, x := range s.Kills {
			if x.Silent {
				k = true
			}
		}
		return f && k
	}
	if !bad(sc) {
		t.Fatal("precondition: scenario must fail")
	}
	min := Minimize(sc, bad)
	if len(min.Faults) != 1 || len(min.Kills) != 1 {
		t.Fatalf("minimized to %d faults, %d kills; want 1+1: %s", len(min.Faults), len(min.Kills), min)
	}
	if min.Faults[0].Tag != 77 || !min.Kills[0].Silent {
		t.Fatalf("minimizer kept the wrong schedule: %s", min)
	}
}

// TestGenScenarioReplaceArm: the generator exercises both recovery
// arms — some kill schedules carry Replace, some do not, and Replace
// never appears without a kill.
func TestGenScenarioReplaceArm(t *testing.T) {
	cfg := Config{}
	var withReplace, withoutReplace int
	for seed := uint64(0); seed < 200; seed++ {
		sc := GenScenario(seed, cfg)
		if sc.Replace && len(sc.Kills) == 0 {
			t.Fatalf("seed %d: replace set on a kill-free scenario: %s", seed, sc)
		}
		if len(sc.Kills) > 0 {
			if sc.Replace {
				withReplace++
			} else {
				withoutReplace++
			}
		}
	}
	if withReplace == 0 || withoutReplace == 0 {
		t.Fatalf("200 seeds split %d replace / %d rollback kill schedules; want both arms covered", withReplace, withoutReplace)
	}
}

// TestArtifactCollection: a violating campaign scenario leaves its
// post-mortem and event timeline under ArtifactDir, named after the
// scenario, so CI has something to upload when a chaos stage goes red.
func TestArtifactCollection(t *testing.T) {
	dir := t.TempDir()
	campaignDir := t.TempDir()
	if err := os.WriteFile(filepath.Join(campaignDir, "postmortem.txt"), []byte("campaign post-mortem\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := NewRunner(Config{ArtifactDir: dir})
	log := mpi.NewEventLog()
	log.Notef("note", "synthetic timeline entry")
	r.saveArtifacts(Scenario{Name: "broken-scenario"}, campaignDir, log.Events())
	pm, err := os.ReadFile(filepath.Join(dir, "broken-scenario-postmortem.txt"))
	if err != nil {
		t.Fatalf("post-mortem artifact not written: %v", err)
	}
	if !strings.Contains(string(pm), "campaign post-mortem") {
		t.Errorf("post-mortem artifact holds %q", pm)
	}
	tl, err := os.ReadFile(filepath.Join(dir, "broken-scenario-timeline.txt"))
	if err != nil {
		t.Fatalf("timeline artifact not written: %v", err)
	}
	if !strings.Contains(string(tl), "synthetic timeline entry") {
		t.Errorf("timeline artifact holds %q", tl)
	}
	// Unnamed scenarios fall back to their seed.
	r.saveArtifacts(Scenario{Seed: 41}, "", nil)
	if _, err := os.Stat(filepath.Join(dir, "seed-41-timeline.txt")); err != nil {
		t.Errorf("seed-named timeline artifact not written: %v", err)
	}
}

// TestWedgeGuard: the outer liveness guard classifies a run that
// outlives WedgeTimeout as a wedge instead of blocking the harness.
func TestWedgeGuard(t *testing.T) {
	r := NewRunner(Config{WedgeTimeout: time.Millisecond})
	o := r.Run(Scenario{Name: "any"})
	if o.Verdict != Wedge {
		t.Fatalf("verdict %s, want wedge (a 1ms bound cannot fit a solver run)", o.Verdict)
	}
}
