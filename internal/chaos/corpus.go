package chaos

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/store"
)

// CorpusEntry is one committed regression scenario with the verdict it
// must reproduce (always a non-violation: the corpus pins scenarios
// that once exposed a bug, or that cover a transport path, as fixed).
type CorpusEntry struct {
	Scenario Scenario `json:"scenario"`
	// Want is the verdict the replay must produce.
	Want Verdict `json:"want"`
	// Note says why the entry is in the corpus.
	Note string `json:"note,omitempty"`
}

// LoadCorpus reads a corpus file (a JSON array of entries).
func LoadCorpus(path string) ([]CorpusEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []CorpusEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("chaos: corpus %s: %w", path, err)
	}
	return entries, nil
}

// SaveCorpus writes entries as an indented JSON array.
func SaveCorpus(path string, entries []CorpusEntry) error {
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return store.WriteFileAtomic(path, append(data, '\n'), 0o644)
}
