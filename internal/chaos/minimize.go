package chaos

// Minimize shrinks a failing scenario to a locally minimal reproducer
// by greedy delta debugging: it repeatedly tries removing each fault
// and each kill, keeping any removal under which bad still holds,
// until no single removal reproduces the failure. bad must be
// deterministic for the result to mean anything; it is called once per
// candidate (O(n²) worst case in the schedule length, which is small).
func Minimize(sc Scenario, bad func(Scenario) bool) Scenario {
	for {
		shrunk := false
		for i := 0; i < len(sc.Faults); i++ {
			cand := sc
			cand.Faults = append(append([]FaultSpec{}, sc.Faults[:i]...), sc.Faults[i+1:]...)
			if bad(cand) {
				sc = cand
				shrunk = true
				break
			}
		}
		if shrunk {
			continue
		}
		for i := 0; i < len(sc.Kills); i++ {
			cand := sc
			cand.Kills = append(append([]KillSpec{}, sc.Kills[:i]...), sc.Kills[i+1:]...)
			if bad(cand) {
				sc = cand
				shrunk = true
				break
			}
		}
		if !shrunk {
			return sc
		}
	}
}
