//go:build !race

package chaos

import "time"

// campaignHeartbeat without the race detector: a 2ms beat (40ms
// confirm) detects a silently killed rank in tens of milliseconds.
const campaignHeartbeat = 2 * time.Millisecond
