//go:build race

package chaos

import "time"

// campaignHeartbeat under the race detector: instrumentation slows
// every goroutine 5-20x and serializes scheduling, so a 2ms beater can
// legitimately go silent past a 40ms confirm threshold while its rank
// is alive and computing. A 20ms interval (400ms confirm) keeps the
// detector honest without false positives; kill detection still lands
// orders of magnitude before the 20s watchdog deadline.
const campaignHeartbeat = 20 * time.Millisecond
