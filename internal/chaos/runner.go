package chaos

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/resilience"
	"repro/internal/snapshot"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// Verdict classifies one scenario execution.
type Verdict string

const (
	// OK: the run completed and (for message-fault scenarios) matched
	// the fault-free golden checkpoint byte for byte.
	OK Verdict = "ok"
	// CleanAbort: the run terminated with a diagnosable error — liveness
	// holds, safety is vacuous (nothing was committed).
	CleanAbort Verdict = "clean-abort"
	// Wedge: the scenario did not terminate within WedgeTimeout — a
	// liveness violation.
	Wedge Verdict = "wedge"
	// Mismatch: the run completed under message faults but its
	// checkpoint differs from the golden run — a safety violation.
	Mismatch Verdict = "mismatch"
	// CampaignFailed: a kill schedule did not converge through the
	// resilience campaign — a recoverability violation.
	CampaignFailed Verdict = "campaign-failed"
	// VerifyMiss: a store scenario's fired silent corruption escaped
	// store.Verify, or object/ref damage survived scrub plus
	// re-derivation — a durability violation (store arm only).
	VerifyMiss Verdict = "verify-miss"
)

// Violation reports whether the verdict breaks one of the four
// properties (liveness, safety, recoverability, durability).
func (v Verdict) Violation() bool {
	return v == Wedge || v == Mismatch || v == CampaignFailed || v == VerifyMiss
}

// Outcome is the result of executing one scenario.
type Outcome struct {
	Scenario Scenario
	Verdict  Verdict
	// Detail carries the error or mismatch diagnostic, with the run's
	// event timeline appended on violations.
	Detail  string
	Elapsed time.Duration
}

// Runner executes scenarios against one solver configuration, caching
// the fault-free golden checkpoint hash the safety property compares
// against.
type Runner struct {
	cfg Config

	goldenOnce sync.Once
	golden     [32]byte
	goldenErr  error
}

// NewRunner returns a runner for the given configuration.
func NewRunner(cfg Config) *Runner {
	return &Runner{cfg: cfg.withDefaults()}
}

// Config returns the runner's resolved configuration.
func (r *Runner) Config() Config { return r.cfg }

func (r *Runner) coreConfig() core.Config {
	return core.Config{Nr: r.cfg.Nr, Nt: r.cfg.Nt}
}

// Golden returns the fault-free checkpoint hash for the runner's
// configuration, computing it on first use.
func (r *Runner) Golden() ([32]byte, error) {
	r.goldenOnce.Do(func() {
		var buf bytes.Buffer
		_, err := core.RunParallelCheckpointWith(r.coreConfig(), mpi.RunConfig{Deadline: r.cfg.Deadline},
			r.cfg.NProcs, r.cfg.Steps, r.cfg.DT, &buf)
		if err != nil {
			r.goldenErr = fmt.Errorf("chaos: golden run failed: %w", err)
			return
		}
		r.golden = sha256.Sum256(buf.Bytes())
	})
	return r.golden, r.goldenErr
}

// RunSeed generates and executes the scenario for one seed.
func (r *Runner) RunSeed(seed uint64) Outcome {
	return r.Run(GenScenario(seed, r.cfg))
}

// Run executes one scenario under the liveness guard: if the run has
// not terminated within WedgeTimeout the scenario is declared a wedge
// without waiting any longer (the stuck goroutines are abandoned —
// the caller is expected to treat a wedge as fatal).
func (r *Runner) Run(sc Scenario) Outcome {
	start := time.Now()
	done := make(chan Outcome, 1)
	go func() { done <- r.execute(sc) }()
	select {
	case o := <-done:
		o.Elapsed = time.Since(start)
		return o
	case <-time.After(r.cfg.WedgeTimeout):
		return Outcome{
			Scenario: sc,
			Verdict:  Wedge,
			Detail:   fmt.Sprintf("no termination within %v", r.cfg.WedgeTimeout),
			Elapsed:  time.Since(start),
		}
	}
}

// execute runs the scenario to a verdict: kill schedules go through a
// resilience campaign (recoverability), pure message-fault schedules
// through a direct solver run whose checkpoint must match the golden
// hash (safety).
func (r *Runner) execute(sc Scenario) Outcome {
	plan, err := sc.plan()
	if err != nil {
		return Outcome{Scenario: sc, Verdict: CleanAbort, Detail: err.Error()}
	}
	if len(sc.Kills) > 0 {
		return r.executeCampaign(sc, plan)
	}
	events := mpi.NewEventLog()
	cc := r.coreConfig()
	if r.cfg.Telemetry != nil {
		r.cfg.Telemetry.Attach(telemetry.Campaign{Run: "chaos", TotalSteps: r.cfg.Steps, Events: events})
		cc.Telemetry = r.cfg.Telemetry
	}

	var buf bytes.Buffer
	_, err = core.RunParallelCheckpointWith(cc, mpi.RunConfig{
		Deadline:    r.cfg.Deadline,
		Faults:      plan,
		Reliability: &mpi.Reliability{AckTimeout: r.cfg.AckTimeout},
		Events:      events,
	}, r.cfg.NProcs, r.cfg.Steps, r.cfg.DT, &buf)
	r.cfg.Telemetry.Evaluate()
	if err != nil {
		return Outcome{Scenario: sc, Verdict: CleanAbort, Detail: err.Error()}
	}
	want, err := r.Golden()
	if err != nil {
		return Outcome{Scenario: sc, Verdict: CleanAbort, Detail: err.Error()}
	}
	if got := sha256.Sum256(buf.Bytes()); got != want {
		r.saveArtifacts(sc, "", events.Events())
		return Outcome{
			Scenario: sc,
			Verdict:  Mismatch,
			Detail:   fmt.Sprintf("checkpoint %x differs from golden %x\ntimeline:\n%s", got, want, events),
		}
	}
	return Outcome{Scenario: sc, Verdict: OK}
}

// executeCampaign checks recoverability: the killed (and possibly also
// message-faulted) run must converge through the resilience campaign —
// by checkpointed rollback, or, for Replace scenarios, by surgically
// respawning the dead rank — and the converged final state must be
// byte-identical to the fault-free golden run.
func (r *Runner) executeCampaign(sc Scenario, plan *mpi.FaultPlan) Outcome {
	dir, err := os.MkdirTemp("", "yychaos-*")
	if err != nil {
		return Outcome{Scenario: sc, Verdict: CleanAbort, Detail: fmt.Sprintf("campaign tempdir: %v", err)}
	}
	defer os.RemoveAll(dir)

	every := r.cfg.Steps / 2
	if every < 1 {
		every = 1
	}
	rcfg := resilience.Config{
		Core:            r.coreConfig(),
		NProcs:          r.cfg.NProcs,
		Steps:           r.cfg.Steps,
		CheckpointEvery: every,
		Dir:             dir,
		Deadline:        r.cfg.Deadline,
		Faults:          plan,
		Reliability:     &mpi.Reliability{AckTimeout: r.cfg.AckTimeout},
		Heartbeat:       &mpi.Heartbeat{Interval: campaignHeartbeat},
		DTSchedule:      dtSchedule(r.cfg),
		Telemetry:       r.cfg.Telemetry,
	}
	if sc.Replace {
		rcfg.Replace = &mpi.Elastic{}
	}
	res, err := resilience.RunCampaign(rcfg)
	if err != nil {
		detail := fmt.Sprintf("campaign did not converge: %v", err)
		if res != nil {
			detail += timelineOf(res.Events)
			r.saveArtifacts(sc, dir, res.Events)
		}
		return Outcome{Scenario: sc, Verdict: CampaignFailed, Detail: detail}
	}
	// Safety holds for campaigns too: rollback and rank replacement both
	// must land on the exact bytes of the fault-free run (the dt
	// schedule pins every segment to the direct run's fixed step).
	want, err := r.Golden()
	if err != nil {
		return Outcome{Scenario: sc, Verdict: CleanAbort, Detail: err.Error()}
	}
	var buf bytes.Buffer
	if err := snapshot.WriteCheckpoint(&buf, res.Final); err != nil {
		return Outcome{Scenario: sc, Verdict: CleanAbort, Detail: fmt.Sprintf("hashing campaign final state: %v", err)}
	}
	if got := sha256.Sum256(buf.Bytes()); got != want {
		r.saveArtifacts(sc, dir, res.Events)
		return Outcome{
			Scenario: sc,
			Verdict:  Mismatch,
			Detail:   fmt.Sprintf("campaign final state %x differs from golden %x%s", got, want, timelineOf(res.Events)),
		}
	}
	return Outcome{Scenario: sc, Verdict: OK}
}

// timelineOf renders a campaign's event timeline for a violation
// report (empty input renders nothing).
func timelineOf(events []mpi.Event) string {
	if len(events) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("\ntimeline:")
	for _, e := range events {
		b.WriteString("\n  ")
		b.WriteString(e.String())
	}
	return b.String()
}

// saveArtifacts collects a violating scenario's diagnostics under
// cfg.ArtifactDir: the campaign's postmortem.txt (if campaignDir holds
// one) and the event timeline, both prefixed with the scenario's name
// (or seed). Best effort — artifact trouble must never mask the
// verdict.
func (r *Runner) saveArtifacts(sc Scenario, campaignDir string, events []mpi.Event) {
	if r.cfg.ArtifactDir == "" {
		return
	}
	if err := os.MkdirAll(r.cfg.ArtifactDir, 0o755); err != nil {
		return
	}
	base := sc.Name
	if base == "" {
		base = fmt.Sprintf("seed-%d", sc.Seed)
	}
	if campaignDir != "" {
		if pm, err := os.ReadFile(filepath.Join(campaignDir, "postmortem.txt")); err == nil {
			_ = store.WriteFileAtomic(filepath.Join(r.cfg.ArtifactDir, base+"-postmortem.txt"), pm, 0o644)
		}
	}
	var b strings.Builder
	for _, e := range events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	_ = store.WriteFileAtomic(filepath.Join(r.cfg.ArtifactDir, base+"-timeline.txt"), []byte(b.String()), 0o644)
}

// dtSchedule fixes every segment's time step to the configured DT so
// campaign runs and direct runs advance identically.
func dtSchedule(cfg Config) []float64 {
	n := cfg.Steps + 1
	s := make([]float64, n)
	for i := range s {
		s[i] = cfg.DT
	}
	return s
}
