package chaos

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/resilience"
)

// Verdict classifies one scenario execution.
type Verdict string

const (
	// OK: the run completed and (for message-fault scenarios) matched
	// the fault-free golden checkpoint byte for byte.
	OK Verdict = "ok"
	// CleanAbort: the run terminated with a diagnosable error — liveness
	// holds, safety is vacuous (nothing was committed).
	CleanAbort Verdict = "clean-abort"
	// Wedge: the scenario did not terminate within WedgeTimeout — a
	// liveness violation.
	Wedge Verdict = "wedge"
	// Mismatch: the run completed under message faults but its
	// checkpoint differs from the golden run — a safety violation.
	Mismatch Verdict = "mismatch"
	// CampaignFailed: a kill schedule did not converge through the
	// resilience campaign — a recoverability violation.
	CampaignFailed Verdict = "campaign-failed"
)

// Violation reports whether the verdict breaks one of the three
// properties (liveness, safety, recoverability).
func (v Verdict) Violation() bool {
	return v == Wedge || v == Mismatch || v == CampaignFailed
}

// Outcome is the result of executing one scenario.
type Outcome struct {
	Scenario Scenario
	Verdict  Verdict
	// Detail carries the error or mismatch diagnostic, with the run's
	// event timeline appended on violations.
	Detail  string
	Elapsed time.Duration
}

// Runner executes scenarios against one solver configuration, caching
// the fault-free golden checkpoint hash the safety property compares
// against.
type Runner struct {
	cfg Config

	goldenOnce sync.Once
	golden     [32]byte
	goldenErr  error
}

// NewRunner returns a runner for the given configuration.
func NewRunner(cfg Config) *Runner {
	return &Runner{cfg: cfg.withDefaults()}
}

// Config returns the runner's resolved configuration.
func (r *Runner) Config() Config { return r.cfg }

func (r *Runner) coreConfig() core.Config {
	return core.Config{Nr: r.cfg.Nr, Nt: r.cfg.Nt}
}

// Golden returns the fault-free checkpoint hash for the runner's
// configuration, computing it on first use.
func (r *Runner) Golden() ([32]byte, error) {
	r.goldenOnce.Do(func() {
		var buf bytes.Buffer
		_, err := core.RunParallelCheckpointWith(r.coreConfig(), mpi.RunConfig{Deadline: r.cfg.Deadline},
			r.cfg.NProcs, r.cfg.Steps, r.cfg.DT, &buf)
		if err != nil {
			r.goldenErr = fmt.Errorf("chaos: golden run failed: %w", err)
			return
		}
		r.golden = sha256.Sum256(buf.Bytes())
	})
	return r.golden, r.goldenErr
}

// RunSeed generates and executes the scenario for one seed.
func (r *Runner) RunSeed(seed uint64) Outcome {
	return r.Run(GenScenario(seed, r.cfg))
}

// Run executes one scenario under the liveness guard: if the run has
// not terminated within WedgeTimeout the scenario is declared a wedge
// without waiting any longer (the stuck goroutines are abandoned —
// the caller is expected to treat a wedge as fatal).
func (r *Runner) Run(sc Scenario) Outcome {
	start := time.Now()
	done := make(chan Outcome, 1)
	go func() { done <- r.execute(sc) }()
	select {
	case o := <-done:
		o.Elapsed = time.Since(start)
		return o
	case <-time.After(r.cfg.WedgeTimeout):
		return Outcome{
			Scenario: sc,
			Verdict:  Wedge,
			Detail:   fmt.Sprintf("no termination within %v", r.cfg.WedgeTimeout),
			Elapsed:  time.Since(start),
		}
	}
}

// execute runs the scenario to a verdict: kill schedules go through a
// resilience campaign (recoverability), pure message-fault schedules
// through a direct solver run whose checkpoint must match the golden
// hash (safety).
func (r *Runner) execute(sc Scenario) Outcome {
	plan, err := sc.plan()
	if err != nil {
		return Outcome{Scenario: sc, Verdict: CleanAbort, Detail: err.Error()}
	}
	if len(sc.Kills) > 0 {
		return r.executeCampaign(sc, plan)
	}
	events := mpi.NewEventLog()

	var buf bytes.Buffer
	_, err = core.RunParallelCheckpointWith(r.coreConfig(), mpi.RunConfig{
		Deadline:    r.cfg.Deadline,
		Faults:      plan,
		Reliability: &mpi.Reliability{AckTimeout: r.cfg.AckTimeout},
		Events:      events,
	}, r.cfg.NProcs, r.cfg.Steps, r.cfg.DT, &buf)
	if err != nil {
		return Outcome{Scenario: sc, Verdict: CleanAbort, Detail: err.Error()}
	}
	want, err := r.Golden()
	if err != nil {
		return Outcome{Scenario: sc, Verdict: CleanAbort, Detail: err.Error()}
	}
	if got := sha256.Sum256(buf.Bytes()); got != want {
		return Outcome{
			Scenario: sc,
			Verdict:  Mismatch,
			Detail:   fmt.Sprintf("checkpoint %x differs from golden %x\ntimeline:\n%s", got, want, events),
		}
	}
	return Outcome{Scenario: sc, Verdict: OK}
}

// executeCampaign checks recoverability: the killed (and possibly also
// message-faulted) run must converge through checkpointed rollback.
func (r *Runner) executeCampaign(sc Scenario, plan *mpi.FaultPlan) Outcome {
	dir, err := os.MkdirTemp("", "yychaos-*")
	if err != nil {
		return Outcome{Scenario: sc, Verdict: CleanAbort, Detail: fmt.Sprintf("campaign tempdir: %v", err)}
	}
	defer os.RemoveAll(dir)

	every := r.cfg.Steps / 2
	if every < 1 {
		every = 1
	}
	res, err := resilience.RunCampaign(resilience.Config{
		Core:            r.coreConfig(),
		NProcs:          r.cfg.NProcs,
		Steps:           r.cfg.Steps,
		CheckpointEvery: every,
		Dir:             dir,
		Deadline:        r.cfg.Deadline,
		Faults:          plan,
		Reliability:     &mpi.Reliability{AckTimeout: r.cfg.AckTimeout},
		Heartbeat:       &mpi.Heartbeat{Interval: campaignHeartbeat},
		DTSchedule:      dtSchedule(r.cfg),
	})
	if err != nil {
		detail := fmt.Sprintf("campaign did not converge: %v", err)
		if res != nil && len(res.Events) > 0 {
			detail += "\ntimeline:"
			for _, e := range res.Events {
				detail += "\n  " + e.String()
			}
		}
		return Outcome{Scenario: sc, Verdict: CampaignFailed, Detail: detail}
	}
	return Outcome{Scenario: sc, Verdict: OK}
}

// dtSchedule fixes every segment's time step to the configured DT so
// campaign runs and direct runs advance identically.
func dtSchedule(cfg Config) []float64 {
	n := cfg.Steps + 1
	s := make([]float64, n)
	for i := range s {
		s[i] = cfg.DT
	}
	return s
}
