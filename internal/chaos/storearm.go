package chaos

// The storage arm: seeded filesystem-fault scenarios against the
// durable run ledger (internal/store), the fourth chaos property next
// to liveness, safety, and recoverability —
//
//   - durability: any store fault a campaign write hits is either loud
//     (a typed *store.DiskFullError / *store.CrashError at write time)
//     or, if silent (bit rot), detected by store.Verify as a severe
//     finding; a scrub plus deterministic re-derivation then restores
//     the store to object-level health, and the recovered campaign
//     still lands byte-identical on the fault-free golden state.
//
// A store scenario runs in three phases. Phase A commits a campaign
// through a backend wired to the scenario's store.FaultPlan; every
// campaign error must be typed. Phase B lifts the faults, reopens the
// store cold, and demands that Verify surface every fired silent fault
// (verdict VerifyMiss otherwise); Scrub then repairs or quarantines.
// Phase C resumes the campaign to completion over whatever survived —
// the recovery ladder falling back through quarantined checkpoints —
// and, if ledger-pinned blobs are still missing, re-derives them with
// a fresh deterministic rerun. The final state must hash to the golden
// and the store must end object- and ref-clean; damaged ledger history
// is tolerated as permanent tamper evidence, never rewritten.

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/mpi"
	"repro/internal/resilience"
	"repro/internal/snapshot"
	"repro/internal/store"
)

// StoreFaultSpec is the JSON-stable mirror of one scripted store fault.
type StoreFaultSpec struct {
	// Op is the backend write-op index the fault fires on (-1 fires on
	// every write: a persistently full disk).
	Op int `json:"op"`
	// Kind is the store.FaultKind name: "torn-write", "bit-flip",
	// "enospc", "crash-before-rename", "crash-after-rename".
	Kind string `json:"kind"`
	// Byte positions the damage for torn-write and bit-flip.
	Byte int `json:"byte,omitempty"`
}

func (f StoreFaultSpec) String() string {
	s := fmt.Sprintf("%s op=%d", f.Kind, f.Op)
	if f.Byte != 0 {
		s += fmt.Sprintf(" byte=%d", f.Byte)
	}
	return s
}

// StoreScenario is one generated (or corpus-committed) store fault
// schedule.
type StoreScenario struct {
	// Seed the scenario was generated from (0 for hand-written corpus
	// entries); informational — the schedule below is authoritative.
	Seed   uint64           `json:"seed"`
	Name   string           `json:"name,omitempty"` // corpus entries only
	Faults []StoreFaultSpec `json:"faults"`
}

func (sc StoreScenario) String() string {
	s := fmt.Sprintf("seed=%d", sc.Seed)
	if sc.Name != "" {
		s = sc.Name + " " + s
	}
	for _, f := range sc.Faults {
		s += "; " + f.String()
	}
	return s
}

// plan compiles the scenario into a fresh (stateful) store fault plan;
// every attempt needs its own.
func (sc StoreScenario) plan() (*store.FaultPlan, error) {
	var faults []store.Fault
	for _, f := range sc.Faults {
		switch store.FaultKind(f.Kind) {
		case store.FaultTornWrite, store.FaultBitFlip, store.FaultENOSPC,
			store.FaultCrashBeforeRename, store.FaultCrashAfterRename:
		default:
			return nil, fmt.Errorf("chaos: unknown store fault kind %q", f.Kind)
		}
		faults = append(faults, store.Fault{Op: f.Op, Kind: store.FaultKind(f.Kind), Byte: f.Byte})
	}
	return store.NewFaultPlan(faults), nil
}

// storeOpSpace is the number of backend writes a fault-free campaign
// issues: each commit (origin plus one per segment) writes a blob, a
// ref, a ledger entry, and the chain anchor.
func storeOpSpace(cfg Config) int {
	every := cfg.Steps / 2
	if every < 1 {
		every = 1
	}
	commits := 1 + (cfg.Steps+every-1)/every
	return commits * 4
}

// GenStoreScenario derives a store scenario purely from seed: usually
// one fault (occasionally two — the second may land after a crash
// aborts the run and never fire; absence is part of the space too)
// placed anywhere in the campaign's write sequence, with one seed in
// eight drawing a persistently full disk instead. Its draw sequence is
// frozen the same way GenScenario's is: committed corpus entries and
// failure reports must replay forever.
func GenStoreScenario(seed uint64, cfg Config) StoreScenario {
	cfg = cfg.withDefaults()
	g := &rng{s: seed}
	sc := StoreScenario{Seed: seed}
	if g.intn(8) == 0 {
		sc.Faults = append(sc.Faults, StoreFaultSpec{Op: -1, Kind: string(store.FaultENOSPC)})
		return sc
	}
	kinds := []store.FaultKind{store.FaultTornWrite, store.FaultBitFlip, store.FaultENOSPC,
		store.FaultCrashBeforeRename, store.FaultCrashAfterRename}
	ops := storeOpSpace(cfg)
	n := 1 + g.intn(2)
	for i := 0; i < n; i++ {
		f := StoreFaultSpec{Op: g.intn(ops), Kind: string(kinds[g.intn(len(kinds))])}
		if f.Kind == string(store.FaultTornWrite) || f.Kind == string(store.FaultBitFlip) {
			f.Byte = 1 + g.intn(64)
		}
		sc.Faults = append(sc.Faults, f)
	}
	return sc
}

// StoreOutcome is the result of executing one store scenario.
type StoreOutcome struct {
	Scenario StoreScenario
	Verdict  Verdict
	// Detail carries the error or verification diagnostic on violations.
	Detail  string
	Elapsed time.Duration
}

// RunStoreSeed generates and executes the store scenario for one seed.
func (r *Runner) RunStoreSeed(seed uint64) StoreOutcome {
	return r.RunStore(GenStoreScenario(seed, r.cfg))
}

// RunStore executes one store scenario under the same liveness guard
// as Run: no termination within WedgeTimeout is a wedge.
func (r *Runner) RunStore(sc StoreScenario) StoreOutcome {
	start := time.Now()
	done := make(chan StoreOutcome, 1)
	go func() { done <- r.executeStore(sc) }()
	select {
	case o := <-done:
		o.Elapsed = time.Since(start)
		return o
	case <-time.After(r.cfg.WedgeTimeout):
		return StoreOutcome{
			Scenario: sc,
			Verdict:  Wedge,
			Detail:   fmt.Sprintf("no termination within %v", r.cfg.WedgeTimeout),
			Elapsed:  time.Since(start),
		}
	}
}

// storeCampaignConfig is the resilience config for one store-substrate
// campaign attempt — the store arm runs no message faults, so the two
// chaos arms stay orthogonal.
func (r *Runner) storeCampaignConfig(st *store.Store, runID string) resilience.Config {
	every := r.cfg.Steps / 2
	if every < 1 {
		every = 1
	}
	return resilience.Config{
		Core:            r.coreConfig(),
		NProcs:          r.cfg.NProcs,
		Steps:           r.cfg.Steps,
		CheckpointEvery: every,
		Store:           st,
		RunID:           runID,
		Deadline:        r.cfg.Deadline,
		Heartbeat:       &mpi.Heartbeat{Interval: campaignHeartbeat},
		DTSchedule:      dtSchedule(r.cfg),
	}
}

func (r *Runner) executeStore(sc StoreScenario) StoreOutcome {
	fail := func(v Verdict, format string, args ...any) StoreOutcome {
		return StoreOutcome{Scenario: sc, Verdict: v, Detail: fmt.Sprintf(format, args...)}
	}
	plan, err := sc.plan()
	if err != nil {
		return fail(CleanAbort, "%v", err)
	}
	root, err := os.MkdirTemp("", "yychaos-store-*")
	if err != nil {
		return fail(CleanAbort, "store tempdir: %v", err)
	}
	defer os.RemoveAll(root)
	backend, err := store.NewDirBackend(root)
	if err != nil {
		return fail(CleanAbort, "store backend: %v", err)
	}
	st, err := store.Open(backend)
	if err != nil {
		return fail(CleanAbort, "store open: %v", err)
	}

	// Phase A: a campaign through the faulted store. Whatever the plan
	// does to the writes, the campaign must either complete or abort
	// with a typed storage error — an untyped error means some layer
	// swallowed the diagnosis.
	backend.SetFaults(plan)
	if _, err := resilience.RunCampaign(r.storeCampaignConfig(st, "chaos")); err != nil && !typedStoreErr(err) {
		return fail(CampaignFailed, "campaign error not a typed storage error: %v", err)
	}

	// Phase B: lift the faults, reopen cold, and verify. Every fired
	// silent fault must be matched by a severe finding.
	backend.SetFaults(nil)
	st2, err := store.Open(backend)
	if err != nil {
		return fail(CampaignFailed, "store reopen after faults: %v", err)
	}
	rep, err := st2.Verify()
	if err != nil {
		return fail(CampaignFailed, "verify walk failed: %v", err)
	}
	if missed := undetectedSilentFaults(plan.Fired(), rep); missed != "" {
		r.saveStoreArtifacts(sc, rep, nil)
		return fail(VerifyMiss, "fired silent fault(s) undetected by verify: %s\n%s", missed, rep)
	}
	scrub, err := st2.Scrub(true)
	if err != nil {
		r.saveStoreArtifacts(sc, rep, nil)
		return fail(CampaignFailed, "scrub failed: %v", err)
	}

	// Phase C: recover. Resume the campaign over whatever survived the
	// scrub — the recovery ladder falls back through quarantined or
	// missing checkpoints — and demand golden byte-identity.
	res, err := resilience.RunCampaign(r.storeCampaignConfig(st2, "chaos"))
	if err != nil {
		r.saveStoreArtifacts(sc, rep, scrub)
		return fail(CampaignFailed, "recovery campaign did not converge: %v", err)
	}
	want, err := r.Golden()
	if err != nil {
		return fail(CleanAbort, "%v", err)
	}
	var buf bytes.Buffer
	if err := snapshot.WriteCheckpoint(&buf, res.Final); err != nil {
		return fail(CleanAbort, "hashing recovered final state: %v", err)
	}
	if got := sha256.Sum256(buf.Bytes()); got != want {
		r.saveStoreArtifacts(sc, rep, scrub)
		return fail(Mismatch, "recovered final state %x differs from golden %x", got, want)
	}

	// Object-level healing: a quarantined blob the resume did not pass
	// through (an already-pruned rung, say) is still ledger-pinned and
	// missing. Campaigns are deterministic, so a fresh rerun re-derives
	// every pinned checkpoint bit-identically — the simulation is the
	// replica of last resort.
	after, err := st2.Verify()
	if err != nil {
		return fail(CampaignFailed, "post-recovery verify failed: %v", err)
	}
	if len(unhealedFindings(after)) > 0 {
		if _, err := resilience.RunCampaign(r.storeCampaignConfig(st2, "rederive")); err != nil {
			r.saveStoreArtifacts(sc, after, scrub)
			return fail(CampaignFailed, "re-derivation campaign failed: %v", err)
		}
		if after, err = st2.Verify(); err != nil {
			return fail(CampaignFailed, "post-re-derivation verify failed: %v", err)
		}
	}
	if bad := unhealedFindings(after); len(bad) > 0 {
		r.saveStoreArtifacts(sc, after, scrub)
		return fail(VerifyMiss, "store did not heal: %d object/ref finding(s) survive scrub and re-derivation\n%s", len(bad), after)
	}
	return StoreOutcome{Scenario: sc, Verdict: OK}
}

// typedStoreErr reports whether the campaign error is one of the
// store's typed storage failures.
func typedStoreErr(err error) bool {
	var full *store.DiskFullError
	var crash *store.CrashError
	return errors.As(err, &full) || errors.As(err, &crash)
}

// undetectedSilentFaults returns the fired silent (bit-flip) faults
// phase-B verification failed to surface, empty when all were caught.
// Loud kinds surface as typed errors at write time and need no finding.
func undetectedSilentFaults(fired []store.FiredFault, rep *store.VerifyReport) string {
	var missed []string
	for _, f := range fired {
		if f.Kind != store.FaultBitFlip {
			continue
		}
		if !flipDetected(f.Name, rep) {
			missed = append(missed, f.Name)
		}
	}
	return strings.Join(missed, ", ")
}

// flipDetected maps a fired flip's backend name to the finding that
// must testify to it.
func flipDetected(name string, rep *store.VerifyReport) bool {
	switch {
	case strings.HasPrefix(name, "anchor/"):
		// A flip always renders the anchor unparsable, so a still-damaged
		// anchor is necessarily reported; no finding means a later Append
		// overwrote the flipped bytes whole — healed, not missed.
		return true
	case strings.HasPrefix(name, "ledger/"):
		// Entry damage can surface at the entry itself (undecodable), at
		// the next entry's broken Prev link, or — for the tail entry — at
		// the chain anchor: any severe chain finding testifies.
		for _, fd := range rep.Findings {
			if !fd.Severe {
				continue
			}
			switch fd.Kind {
			case store.FindingBadEntry, store.FindingChainBreak, store.FindingChainGap,
				store.FindingMerkleMismatch, store.FindingSizeMismatch, store.FindingBadAnchor:
				return true
			}
		}
		return false
	default:
		// Objects and refs are located by name: the finding names the
		// hash or ref, a suffix of the backend name the fault hit.
		for _, fd := range rep.Findings {
			if fd.Severe && fd.Name != "" && strings.HasSuffix(name, fd.Name) {
				return true
			}
		}
		return false
	}
}

// unhealedFindings are the severe findings scrub plus re-derivation
// must clear: object and ref health. Damaged ledger *history* is
// deliberately exempt — the chain is append-only and its damage stays
// as tamper evidence; it was already charged for in phase B.
func unhealedFindings(rep *store.VerifyReport) []store.Finding {
	var out []store.Finding
	for _, f := range rep.Findings {
		if !f.Severe {
			continue
		}
		switch f.Kind {
		case store.FindingMissingObject, store.FindingCorruptObject,
			store.FindingAlienObject, store.FindingBadRef:
			out = append(out, f)
		}
	}
	return out
}

// saveStoreArtifacts collects a violating store scenario's verify and
// scrub reports under cfg.ArtifactDir. Best effort — artifact trouble
// must never mask the verdict.
func (r *Runner) saveStoreArtifacts(sc StoreScenario, rep *store.VerifyReport, scrub *store.ScrubReport) {
	if r.cfg.ArtifactDir == "" {
		return
	}
	if err := os.MkdirAll(r.cfg.ArtifactDir, 0o755); err != nil {
		return
	}
	base := sc.Name
	if base == "" {
		base = fmt.Sprintf("seed-%d", sc.Seed)
	}
	if rep != nil {
		_ = store.WriteFileAtomic(r.cfg.ArtifactDir+"/"+base+"-store-verify.txt", []byte(rep.String()), 0o644)
	}
	if scrub != nil {
		_ = store.WriteFileAtomic(r.cfg.ArtifactDir+"/"+base+"-store-scrub.txt", []byte(scrub.String()), 0o644)
	}
}

// StoreCorpusEntry is one committed store regression scenario with the
// verdict it must reproduce.
type StoreCorpusEntry struct {
	Scenario StoreScenario `json:"scenario"`
	// Want is the verdict the replay must produce.
	Want Verdict `json:"want"`
	// Note says why the entry is in the corpus.
	Note string `json:"note,omitempty"`
}

// LoadStoreCorpus reads a store corpus file (a JSON array of entries).
func LoadStoreCorpus(path string) ([]StoreCorpusEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []StoreCorpusEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("chaos: store corpus %s: %w", path, err)
	}
	return entries, nil
}

// SaveStoreCorpus writes entries as an indented JSON array.
func SaveStoreCorpus(path string, entries []StoreCorpusEntry) error {
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return store.WriteFileAtomic(path, append(data, '\n'), 0o644)
}
