package chaos

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/store"
)

// TestGenStoreScenarioDeterministic: store scenario generation is a
// pure function of the seed, independent of the message-fault
// generator's draw stream.
func TestGenStoreScenarioDeterministic(t *testing.T) {
	cfg := Config{}
	for _, seed := range []uint64{0, 1, 42, 1 << 40} {
		a := GenStoreScenario(seed, cfg)
		b := GenStoreScenario(seed, cfg)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: %v vs %v", seed, a, b)
		}
		if len(a.Faults) == 0 {
			t.Fatalf("seed %d generated no faults", seed)
		}
	}
	if reflect.DeepEqual(GenStoreScenario(1, cfg), GenStoreScenario(2, cfg)) {
		t.Fatal("distinct seeds generated identical store scenarios")
	}
}

// TestGenStoreScenarioCoversKinds: over a modest seed range the
// generator draws every fault kind, including the persistent-ENOSPC
// arm.
func TestGenStoreScenarioCoversKinds(t *testing.T) {
	cfg := Config{}
	seen := map[string]bool{}
	persistent := 0
	for seed := uint64(0); seed < 200; seed++ {
		sc := GenStoreScenario(seed, cfg)
		for _, f := range sc.Faults {
			seen[f.Kind] = true
			if f.Op == -1 {
				persistent++
			}
		}
	}
	for _, kind := range []store.FaultKind{store.FaultTornWrite, store.FaultBitFlip,
		store.FaultENOSPC, store.FaultCrashBeforeRename, store.FaultCrashAfterRename} {
		if !seen[string(kind)] {
			t.Fatalf("200 seeds never drew %s", kind)
		}
	}
	if persistent == 0 {
		t.Fatal("200 seeds never drew a persistent full disk")
	}
}

// TestStoreCorpusReplay replays the committed store regression corpus:
// torn writes, bit rot on every artifact class (blob, ref, interior
// and tail ledger entries), a persistently full disk, and both crash
// points around the rename — each must come back to its recorded
// verdict through detect → scrub → re-derive.
func TestStoreCorpusReplay(t *testing.T) {
	entries, err := LoadStoreCorpus("testdata/corpus_store.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("empty store corpus")
	}
	r := NewRunner(Config{})
	for _, e := range entries {
		e := e
		t.Run(e.Scenario.Name, func(t *testing.T) {
			o := r.RunStore(e.Scenario)
			if o.Verdict != e.Want {
				t.Fatalf("verdict %s, want %s\nscenario: %s\n%s", o.Verdict, e.Want, o.Scenario, o.Detail)
			}
		})
	}
}

// TestStoreChaosSmoke is the seeded sweep over the storage fault
// space: zero durability violations tolerated.
func TestStoreChaosSmoke(t *testing.T) {
	seeds := 8
	if testing.Short() {
		seeds = 3
	}
	r := NewRunner(Config{})
	for seed := 0; seed < seeds; seed++ {
		o := r.RunStoreSeed(uint64(seed))
		if o.Verdict.Violation() {
			t.Fatalf("seed %d: %s\nscenario: %s\n%s", seed, o.Verdict, o.Scenario, o.Detail)
		}
	}
}

// TestStoreWedgeGuard: the store arm sits under the same outer
// liveness bound as the message arm.
func TestStoreWedgeGuard(t *testing.T) {
	r := NewRunner(Config{WedgeTimeout: time.Millisecond})
	o := r.RunStore(StoreScenario{Name: "any", Faults: []StoreFaultSpec{{Op: 0, Kind: "bit-flip", Byte: 1}}})
	if o.Verdict != Wedge {
		t.Fatalf("verdict %s, want wedge (a 1ms bound cannot fit a campaign)", o.Verdict)
	}
}

// TestStoreArtifactCollection: a violating store scenario leaves its
// verify and scrub reports under ArtifactDir for CI to upload.
func TestStoreArtifactCollection(t *testing.T) {
	dir := t.TempDir()
	r := NewRunner(Config{ArtifactDir: dir})
	rep := &store.VerifyReport{Findings: []store.Finding{
		{Kind: store.FindingCorruptObject, Name: "deadbeef", Severe: true, Detail: "synthetic"},
	}}
	scrub := &store.ScrubReport{Verify: rep}
	r.saveStoreArtifacts(StoreScenario{Name: "broken-store"}, rep, scrub)
	v, err := os.ReadFile(filepath.Join(dir, "broken-store-store-verify.txt"))
	if err != nil {
		t.Fatalf("verify artifact not written: %v", err)
	}
	if !strings.Contains(string(v), "deadbeef") {
		t.Errorf("verify artifact holds %q", v)
	}
	if _, err := os.ReadFile(filepath.Join(dir, "broken-store-store-scrub.txt")); err != nil {
		t.Fatalf("scrub artifact not written: %v", err)
	}
	// Unnamed scenarios fall back to their seed.
	r.saveStoreArtifacts(StoreScenario{Seed: 17}, rep, nil)
	if _, err := os.Stat(filepath.Join(dir, "seed-17-store-verify.txt")); err != nil {
		t.Errorf("seed-named verify artifact not written: %v", err)
	}
}

// TestStoreUntypedErrorIsViolation: an error that is not a typed
// storage failure must be flagged, not excused — the unknown-fault
// scenario compiles to a plan error and a clean abort, while a wedged
// diagnosis path would be CampaignFailed.
func TestStoreUntypedErrorIsViolation(t *testing.T) {
	r := NewRunner(Config{})
	o := r.RunStore(StoreScenario{Faults: []StoreFaultSpec{{Op: 0, Kind: "meteor-strike"}}})
	if o.Verdict != CleanAbort {
		t.Fatalf("unknown kind verdict %s, want clean-abort", o.Verdict)
	}
	if !strings.Contains(o.Detail, "meteor-strike") {
		t.Fatalf("detail %q does not name the bad kind", o.Detail)
	}
}
