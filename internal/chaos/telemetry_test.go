package chaos

import (
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// hasAlert reports whether the plane latched an alert for the rule.
func hasAlert(p *telemetry.Plane, rule string) bool {
	for _, a := range p.Alerts() {
		if a.Rule == rule {
			return true
		}
	}
	return false
}

// hasAlertEvent reports whether a matching telemetry.alert event landed
// on the run's timeline (the SSE / post-mortem path).
func hasAlertEvent(p *telemetry.Plane, rule string) bool {
	events := p.Events()
	if events == nil {
		return false
	}
	for _, ev := range events.Events() {
		if ev.Kind == "telemetry.alert" && strings.Contains(ev.Detail, "rule="+rule) {
			return true
		}
	}
	return false
}

// TestChaosDropRaisesRetransmitAlert: a scripted message drop forces
// the reliable transport to retransmit, and the attached telemetry
// plane must flag the storm — injected faults are visible faults.
func TestChaosDropRaisesRetransmitAlert(t *testing.T) {
	plane := telemetry.New(telemetry.Config{
		Rules:     telemetry.Rules{RetransmitStorm: 1},
		NoProfile: true,
	})
	r := NewRunner(Config{Telemetry: plane})
	// The original fail-fast wedge from the committed corpus: first
	// overset message dropped, transport recovers by retransmission.
	sc := Scenario{
		Name:   "drop-first-overset",
		Faults: []FaultSpec{{Comm: 0, Src: 0, Dst: 1, Tag: 100, Epoch: 0, Action: "drop"}},
	}
	o := r.Run(sc)
	if o.Verdict != OK {
		t.Fatalf("scenario verdict %s: %s", o.Verdict, o.Detail)
	}
	if !hasAlert(plane, telemetry.RuleRetransmitStorm) {
		t.Fatalf("drop produced no %s alert; alerts = %v",
			telemetry.RuleRetransmitStorm, plane.AlertStrings())
	}
	if !hasAlertEvent(plane, telemetry.RuleRetransmitStorm) {
		t.Fatal("retransmit alert missing from the event timeline")
	}
	// The solver ranks really published through the plane.
	if plane.Progress().LiveStep < 1 {
		t.Fatalf("no rank snapshots reached the plane: %+v", plane.Progress())
	}
}

// TestChaosSilentKillRaisesRankDeadAlert: a silent kill is only
// detectable by the heartbeat detector; its hb.confirm must surface as
// a rank-dead alert while the campaign still converges.
func TestChaosSilentKillRaisesRankDeadAlert(t *testing.T) {
	plane := telemetry.New(telemetry.Config{NoProfile: true})
	r := NewRunner(Config{Telemetry: plane})
	sc := Scenario{
		Name:  "silent-kill-rank1",
		Kills: []KillSpec{{Rank: 1, Step: 2, Silent: true}},
	}
	o := r.Run(sc)
	if o.Verdict != OK {
		t.Fatalf("scenario verdict %s: %s", o.Verdict, o.Detail)
	}
	if !hasAlert(plane, telemetry.RuleRankDead) {
		t.Fatalf("silent kill produced no %s alert; alerts = %v",
			telemetry.RuleRankDead, plane.AlertStrings())
	}
	if !hasAlertEvent(plane, telemetry.RuleRankDead) {
		t.Fatal("rank-dead alert missing from the event timeline")
	}
	if got := plane.Progress(); !got.Done {
		t.Fatalf("plane never saw the campaign finish: %+v", got)
	}
}
