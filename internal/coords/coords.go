// Package coords implements the coordinate geometry underlying the
// Yin-Yang grid: spherical and Cartesian points, basis transforms for
// vector components, and the Yin<->Yang mapping of eq. (1) of the paper,
//
//	(xe, ye, ze) = (-xn, zn, yn),   (xn, yn, zn) = (-xe, ze, ye),
//
// where subscript n denotes the Yin frame and e the Yang frame. The
// forward and inverse maps have the same form, reflecting the complemental
// symmetry of the two component grids: the same routine converts Yin
// coordinates to Yang coordinates and vice versa.
package coords

import "math"

// Cartesian is a point or vector in Cartesian coordinates.
type Cartesian struct {
	X, Y, Z float64
}

// Spherical is a point in spherical polar coordinates: radius R,
// colatitude Theta in [0, pi] measured from the +z axis, and longitude Phi
// in (-pi, pi] measured from the +x axis.
type Spherical struct {
	R, Theta, Phi float64
}

// SphVec holds the spherical components of a vector at some point:
// radial VR, colatitudinal VT (toward increasing theta, i.e. southward),
// and azimuthal VP (toward increasing phi, i.e. eastward).
type SphVec struct {
	VR, VT, VP float64
}

// ToCartesian converts a spherical point to Cartesian coordinates.
func (s Spherical) ToCartesian() Cartesian {
	st, ct := math.Sincos(s.Theta)
	sp, cp := math.Sincos(s.Phi)
	return Cartesian{
		X: s.R * st * cp,
		Y: s.R * st * sp,
		Z: s.R * ct,
	}
}

// ToSpherical converts a Cartesian point to spherical coordinates. The
// origin maps to {0, 0, 0}; points on the z axis get Phi = 0.
func (c Cartesian) ToSpherical() Spherical {
	r := math.Sqrt(c.X*c.X + c.Y*c.Y + c.Z*c.Z)
	if r <= 0 {
		return Spherical{}
	}
	theta := math.Acos(clamp(c.Z/r, -1, 1))
	phi := math.Atan2(c.Y, c.X)
	return Spherical{R: r, Theta: theta, Phi: phi}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// YinYang maps a Cartesian point (or vector: the map is linear and
// orthogonal) between the Yin and Yang frames. It is an involution:
// applying it twice returns the argument. This is eq. (1) of the paper.
func YinYang(c Cartesian) Cartesian {
	return Cartesian{X: -c.X, Y: c.Z, Z: c.Y}
}

// YinYangSph maps a spherical point between the Yin and Yang frames.
func YinYangSph(s Spherical) Spherical {
	return YinYang(s.ToCartesian()).ToSpherical()
}

// YinYangAngles maps colatitude/longitude between the Yin and Yang frames
// without touching the radius, which is shared by both frames.
func YinYangAngles(theta, phi float64) (thetaOut, phiOut float64) {
	p := YinYangSph(Spherical{R: 1, Theta: theta, Phi: phi})
	return p.Theta, p.Phi
}

// UnitVectors returns the Cartesian components of the local spherical unit
// vectors (rhat, thetahat, phihat) at the point with colatitude theta and
// longitude phi.
func UnitVectors(theta, phi float64) (rhat, that, phat Cartesian) {
	st, ct := math.Sincos(theta)
	sp, cp := math.Sincos(phi)
	rhat = Cartesian{st * cp, st * sp, ct}
	that = Cartesian{ct * cp, ct * sp, -st}
	phat = Cartesian{-sp, cp, 0}
	return rhat, that, phat
}

// SphToCartVec converts the spherical components v of a vector at the
// point (theta, phi) into Cartesian components.
func SphToCartVec(theta, phi float64, v SphVec) Cartesian {
	rhat, that, phat := UnitVectors(theta, phi)
	return Cartesian{
		X: v.VR*rhat.X + v.VT*that.X + v.VP*phat.X,
		Y: v.VR*rhat.Y + v.VT*that.Y + v.VP*phat.Y,
		Z: v.VR*rhat.Z + v.VT*that.Z + v.VP*phat.Z,
	}
}

// CartToSphVec converts the Cartesian components c of a vector at the
// point (theta, phi) into spherical components.
func CartToSphVec(theta, phi float64, c Cartesian) SphVec {
	rhat, that, phat := UnitVectors(theta, phi)
	return SphVec{
		VR: c.X*rhat.X + c.Y*rhat.Y + c.Z*rhat.Z,
		VT: c.X*that.X + c.Y*that.Y + c.Z*that.Z,
		VP: c.X*phat.X + c.Y*phat.Y + c.Z*phat.Z,
	}
}

// VecRotation is the 2x2 rotation that maps the tangential (theta, phi)
// vector components expressed in the donor frame at donor angles
// (thetaD, phiD) into components in the receiver frame at the image point.
// The radial component is invariant under the Yin<->Yang map, so a full
// vector transforms as
//
//	vrRecv = vrDonor
//	vtRecv = Ctt*vtDonor + Ctp*vpDonor
//	vpRecv = Cpt*vtDonor + Cpp*vpDonor
//
// Because the Yin->Yang and Yang->Yin maps are the same linear map, the
// same rotation serves both directions.
type VecRotation struct {
	Ctt, Ctp, Cpt, Cpp float64
}

// RotationAt computes the tangential-component rotation for a donor point
// at (thetaD, phiD) in the donor frame. The receiver-frame angles of the
// same physical point are obtained with YinYangAngles.
func RotationAt(thetaD, phiD float64) VecRotation {
	thetaR, phiR := YinYangAngles(thetaD, phiD)
	// Donor basis vectors in donor Cartesian frame.
	_, thatD, phatD := UnitVectors(thetaD, phiD)
	// Map them into the receiver Cartesian frame.
	thatDrecv := YinYang(thatD)
	phatDrecv := YinYang(phatD)
	// Receiver basis vectors in receiver Cartesian frame.
	_, thatR, phatR := UnitVectors(thetaR, phiR)
	return VecRotation{
		Ctt: dot(thatDrecv, thatR),
		Ctp: dot(phatDrecv, thatR),
		Cpt: dot(thatDrecv, phatR),
		Cpp: dot(phatDrecv, phatR),
	}
}

// Apply rotates the tangential components (vt, vp) from the donor frame to
// the receiver frame.
func (m VecRotation) Apply(vt, vp float64) (vtOut, vpOut float64) {
	return m.Ctt*vt + m.Ctp*vp, m.Cpt*vt + m.Cpp*vp
}

func dot(a, b Cartesian) float64 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }
