package coords

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-12

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randSph(r *rand.Rand) Spherical {
	return Spherical{
		R:     0.5 + r.Float64(),
		Theta: 1e-3 + r.Float64()*(math.Pi-2e-3),
		Phi:   -math.Pi + 1e-3 + r.Float64()*(2*math.Pi-2e-3),
	}
}

func TestSphericalCartesianRoundTrip(t *testing.T) {
	f := func(rr, th, ph float64) bool {
		s := Spherical{
			R:     0.5 + math.Abs(math.Mod(rr, 2)),
			Theta: 0.01 + math.Abs(math.Mod(th, math.Pi-0.02)),
			Phi:   math.Mod(ph, math.Pi),
		}
		got := s.ToCartesian().ToSpherical()
		return near(got.R, s.R, 1e-10) && near(got.Theta, s.Theta, 1e-10) && near(got.Phi, s.Phi, 1e-10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCartesianOrigin(t *testing.T) {
	got := Cartesian{}.ToSpherical()
	if got != (Spherical{}) {
		t.Errorf("origin maps to %+v, want zero", got)
	}
}

func TestPolarAxisPoints(t *testing.T) {
	np := Cartesian{0, 0, 2}.ToSpherical()
	if !near(np.Theta, 0, eps) || !near(np.R, 2, eps) {
		t.Errorf("north pole: %+v", np)
	}
	sp := Cartesian{0, 0, -3}.ToSpherical()
	if !near(sp.Theta, math.Pi, eps) || !near(sp.R, 3, eps) {
		t.Errorf("south pole: %+v", sp)
	}
}

// TestYinYangInvolution verifies the complemental symmetry of eq. (1):
// the forward and inverse transforms are the same map.
func TestYinYangInvolution(t *testing.T) {
	f := func(x, y, z float64) bool {
		c := Cartesian{x, y, z}
		got := YinYang(YinYang(c))
		return got == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestYinYangIsOrthogonal(t *testing.T) {
	f := func(x, y, z float64) bool {
		c := Cartesian{math.Mod(x, 10), math.Mod(y, 10), math.Mod(z, 10)}
		m := YinYang(c)
		n2 := func(v Cartesian) float64 { return v.X*v.X + v.Y*v.Y + v.Z*v.Z }
		return near(n2(m), n2(c), 1e-9*(1+n2(c)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestYangPoleOnYinEquator: the virtual north pole of the Yang grid
// (z_e axis) lies on the equator of the Yin grid.
func TestYangPoleOnYinEquator(t *testing.T) {
	// The point with theta_e = 0 maps to Yin coordinates via the same map.
	pole := Spherical{R: 1, Theta: 0, Phi: 0}.ToCartesian()
	inYin := YinYang(pole).ToSpherical()
	if !near(inYin.Theta, math.Pi/2, eps) {
		t.Errorf("Yang pole at Yin colatitude %v, want pi/2", inYin.Theta)
	}
}

func TestYinYangSphPreservesRadius(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		s := randSph(r)
		got := YinYangSph(s)
		if !near(got.R, s.R, 1e-12) {
			t.Fatalf("radius changed: %v -> %v", s.R, got.R)
		}
	}
}

func TestUnitVectorsOrthonormal(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		s := randSph(r)
		rh, th, ph := UnitVectors(s.Theta, s.Phi)
		checks := []struct {
			name string
			got  float64
			want float64
		}{
			{"r.r", dot(rh, rh), 1}, {"t.t", dot(th, th), 1}, {"p.p", dot(ph, ph), 1},
			{"r.t", dot(rh, th), 0}, {"r.p", dot(rh, ph), 0}, {"t.p", dot(th, ph), 0},
		}
		for _, c := range checks {
			if !near(c.got, c.want, 1e-12) {
				t.Fatalf("%s = %v, want %v at %+v", c.name, c.got, c.want, s)
			}
		}
	}
}

// TestUnitVectorsRightHanded: rhat x thetahat = phihat.
func TestUnitVectorsRightHanded(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	cross := func(a, b Cartesian) Cartesian {
		return Cartesian{a.Y*b.Z - a.Z*b.Y, a.Z*b.X - a.X*b.Z, a.X*b.Y - a.Y*b.X}
	}
	for i := 0; i < 100; i++ {
		s := randSph(r)
		rh, th, ph := UnitVectors(s.Theta, s.Phi)
		c := cross(rh, th)
		if !near(c.X, ph.X, 1e-12) || !near(c.Y, ph.Y, 1e-12) || !near(c.Z, ph.Z, 1e-12) {
			t.Fatalf("rhat x thetahat != phihat at %+v", s)
		}
	}
}

func TestVectorComponentRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		s := randSph(r)
		v := SphVec{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		back := CartToSphVec(s.Theta, s.Phi, SphToCartVec(s.Theta, s.Phi, v))
		if !near(back.VR, v.VR, 1e-12) || !near(back.VT, v.VT, 1e-12) || !near(back.VP, v.VP, 1e-12) {
			t.Fatalf("round trip %+v -> %+v", v, back)
		}
	}
}

// TestRotationMatchesCartesianPath: rotating tangential components with
// RotationAt must agree with the long way around (spherical -> Cartesian ->
// YinYang -> spherical components in the image frame).
func TestRotationMatchesCartesianPath(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		s := randSph(r)
		v := SphVec{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}

		// Long path.
		cart := SphToCartVec(s.Theta, s.Phi, v)
		cartRecv := YinYang(cart)
		thR, phR := YinYangAngles(s.Theta, s.Phi)
		want := CartToSphVec(thR, phR, cartRecv)

		// Short path.
		rot := RotationAt(s.Theta, s.Phi)
		vt, vp := rot.Apply(v.VT, v.VP)

		if !near(v.VR, want.VR, 1e-9) {
			t.Fatalf("radial component not invariant: %v vs %v", v.VR, want.VR)
		}
		if !near(vt, want.VT, 1e-9) || !near(vp, want.VP, 1e-9) {
			t.Fatalf("rotation mismatch at %+v: got (%v,%v) want (%v,%v)", s, vt, vp, want.VT, want.VP)
		}
	}
}

// TestRotationIsOrthogonal: the 2x2 tangential rotation preserves length.
func TestRotationIsOrthogonal(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 200; i++ {
		s := randSph(r)
		m := RotationAt(s.Theta, s.Phi)
		det := m.Ctt*m.Cpp - m.Ctp*m.Cpt
		if !near(math.Abs(det), 1, 1e-9) {
			t.Fatalf("|det| = %v at %+v", det, s)
		}
		n1 := m.Ctt*m.Ctt + m.Cpt*m.Cpt
		n2 := m.Ctp*m.Ctp + m.Cpp*m.Cpp
		if !near(n1, 1, 1e-9) || !near(n2, 1, 1e-9) {
			t.Fatalf("columns not unit: %v %v at %+v", n1, n2, s)
		}
	}
}

func TestYinYangAnglesKnownPoints(t *testing.T) {
	cases := []struct {
		name         string
		theta, phi   float64
		wantT, wantP float64
	}{
		// Yin (theta=pi/2, phi=0) is Cartesian (1,0,0); maps to (-1,0,0):
		// theta=pi/2, phi=pi.
		{"equator-front", math.Pi / 2, 0, math.Pi / 2, math.Pi},
		// Yin north pole (0,0,1) maps to (0,1,0): theta=pi/2, phi=pi/2.
		{"north-pole", 0, 0, math.Pi / 2, math.Pi / 2},
		// Yin (pi/2, pi/2) is (0,1,0); maps to (0,0,1): the Yang pole.
		{"east-equator", math.Pi / 2, math.Pi / 2, 0, 0},
	}
	for _, c := range cases {
		gt, gp := YinYangAngles(c.theta, c.phi)
		if !near(gt, c.wantT, eps) {
			t.Errorf("%s: theta = %v, want %v", c.name, gt, c.wantT)
		}
		// Phi is undefined at the pole.
		if c.wantT != 0 && !near(gp, c.wantP, eps) {
			t.Errorf("%s: phi = %v, want %v", c.name, gp, c.wantP)
		}
	}
}
