// Package core is the public face of the yygo library: it assembles the
// Yin-Yang grid, the compressible MHD solver, the diagnostics and the
// visualization into a single Simulation type, and provides a one-call
// parallel runner over the goroutine message-passing runtime.
//
// A minimal use:
//
//	sim, err := core.New(core.Config{Nr: 33, Nt: 33})
//	...
//	for !done {
//	    sim.Step(10)
//	    fmt.Println(sim.Diagnostics())
//	}
package core

import (
	"bytes"
	"fmt"
	"io"
	"sync"

	"repro/internal/coords"
	"repro/internal/decomp"
	"repro/internal/grid"
	"repro/internal/mhd"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/snapshot"
	"repro/internal/sph"
	"repro/internal/telemetry"
	"repro/internal/viz"
)

// Config selects the grid resolution, the physical parameters and the
// initial conditions of a run. Zero values select defaults.
type Config struct {
	// Nr, Nt are the radial and latitudinal node counts of each panel;
	// the longitudinal count is 3(Nt-1)+1 for equal angular spacing. The
	// paper's flagship grid is Nr=511, Nt=514 (Np=1538).
	Nr, Nt int
	// RI, RO are the shell radii (defaults 0.35, 1 — the Earth's
	// inner-core to core-mantle ratio, normalized).
	RI, RO float64
	// Params are the MHD free parameters (defaults mhd.Default()).
	Params *mhd.Params
	// IC are the initial conditions (defaults mhd.DefaultIC()).
	IC *mhd.InitialConditions
	// SafetyFactor scales the automatic time step (default 0.3).
	SafetyFactor float64
	// Concurrent steps the two panels on separate goroutines (bit-exact
	// versus sequential; roughly 2x on multicore hosts).
	Concurrent bool
	// Workers sets the intra-rank worker-pool width for the tiled stencil
	// and overset kernels. 0 selects the automatic split (GOMAXPROCS
	// divided over the ranks of a parallel run); 1 forces serial kernels.
	// Every pooled kernel is bit-identical to its serial form, so Workers
	// changes wall-clock time only.
	Workers int
	// Obs, when non-nil, records the run's observability data: per-rank
	// phase spans (exportable as a Perfetto trace), per-(comm,tag)
	// message metrics, and per-step physics gauges, aggregated into a
	// PROGINF-style run report. Tracing never perturbs the physics: a
	// traced run's checkpoint is byte-identical to an untraced one.
	Obs *obs.Recorder
	// Telemetry, when non-nil, is the live telemetry plane each rank
	// publishes step snapshots into (seqlock double buffers: no locks,
	// no allocations, no clock reads on the step path). Like Obs, it
	// never perturbs the physics — a telemetrized run's checkpoint is
	// byte-identical to a dark one.
	Telemetry *telemetry.Plane
}

func (c Config) withDefaults() Config {
	if c.Nr == 0 {
		c.Nr = 17
	}
	if c.Nt == 0 {
		c.Nt = 17
	}
	//yyvet:ignore float-eq zero-valued config field means unset; defaulting keys on the exact zero value
	if c.RI == 0 {
		c.RI = 0.35
	}
	//yyvet:ignore float-eq zero-valued config field means unset; defaulting keys on the exact zero value
	if c.RO == 0 {
		c.RO = 1
	}
	if c.Params == nil {
		p := mhd.Default()
		c.Params = &p
	}
	if c.IC == nil {
		ic := mhd.DefaultIC()
		c.IC = &ic
	}
	//yyvet:ignore float-eq zero-valued config field means unset; defaulting keys on the exact zero value
	if c.SafetyFactor == 0 {
		c.SafetyFactor = 0.3
	}
	return c
}

// WithDefaults returns the config with every zero field replaced by its
// default, the exact resolution New and RunParallel apply (exported for
// drivers layered on top, e.g. internal/resilience).
func (c Config) WithDefaults() Config { return c.withDefaults() }

// Spec returns the grid spec the config describes.
func (c Config) Spec() grid.Spec {
	c = c.withDefaults()
	s := grid.NewSpec(c.Nr, c.Nt)
	s.RI, s.RO = c.RI, c.RO
	return s
}

// Simulation is a serial two-panel geodynamo run.
type Simulation struct {
	Cfg    Config
	Solver *mhd.Solver

	dt      float64
	pool    *par.Pool
	rr      *obs.RankRec
	history []mhd.Diagnostics
}

// New builds and initializes a simulation.
func New(cfg Config) (*Simulation, error) {
	cfg = cfg.withDefaults()
	// A serial run records on rank 0's track; nil Obs makes rr nil and
	// every span call a no-op.
	rr := cfg.Obs.RankFor(0)
	rr.Open()
	defer rr.Begin(obs.SpanSetup).End()
	sv, err := mhd.NewSolver(cfg.Spec(), *cfg.Params, *cfg.IC)
	if err != nil {
		return nil, err
	}
	sv.Concurrent = cfg.Concurrent
	sim := &Simulation{Cfg: cfg, Solver: sv, rr: rr}
	if cfg.Workers > 1 {
		sim.pool = par.NewPool(cfg.Workers)
		sv.SetPool(sim.pool)
		sim.pool.SetGauge(rr.PoolGauge())
	}
	sim.history = append(sim.history, sv.Diagnose())
	return sim, nil
}

// Close releases the worker pool, if any, and closes the observability
// window. Safe to call on every Simulation, once or more.
func (s *Simulation) Close() {
	s.pool.Close()
	s.rr.Close()
}

// Step advances n time steps with the automatically estimated stable
// time step, recording diagnostics after the batch.
func (s *Simulation) Step(n int) error {
	if n <= 0 {
		return fmt.Errorf("core: step count must be positive, got %d", n)
	}
	s.dt = s.Solver.EstimateDT(s.Cfg.SafetyFactor)
	for i := 0; i < n; i++ {
		s.rr.SetStep(s.Solver.Step)
		sp := s.rr.Begin(obs.SpanStep)
		s.Solver.Advance(s.dt)
		sp.End()
		s.rr.SetGauge("dt", s.dt)
	}
	if err := s.Solver.CheckFinite(); err != nil {
		return err
	}
	dg := s.rr.Begin(obs.SpanDiagnose)
	d := s.Solver.Diagnose()
	dg.End()
	s.history = append(s.history, d)
	return nil
}

// DT returns the last time step used.
func (s *Simulation) DT() float64 { return s.dt }

// Time returns the simulated time.
func (s *Simulation) Time() float64 { return s.Solver.Time }

// Diagnostics returns the latest recorded global diagnostics.
func (s *Simulation) Diagnostics() mhd.Diagnostics {
	return s.history[len(s.history)-1]
}

// History returns all recorded diagnostics, one entry per Step call plus
// the initial state.
func (s *Simulation) History() []mhd.Diagnostics { return s.history }

// DipoleMoment returns the magnetic dipole moment of the internal
// currents in geographic Cartesian components.
func (s *Simulation) DipoleMoment() coords.Cartesian {
	return sph.MagneticMoment(s.Solver)
}

// Sampler returns a point sampler over the current state.
func (s *Simulation) Sampler() *viz.Sampler { return viz.NewSampler(s.Solver) }

// WriteEquatorialPPM renders an equatorial slice of the quantity to w.
func (s *Simulation) WriteEquatorialPPM(w io.Writer, q viz.Quantity, n int) error {
	im := viz.EquatorialSlice(s.Sampler(), q, n)
	return viz.WritePPM(w, im)
}

// ColumnCount detects cyclonic and anti-cyclonic convection columns on
// the equatorial vorticity slice (Fig. 2 of the paper).
func (s *Simulation) ColumnCount(n int, threshold float64) (cyclonic, anticyclonic int) {
	im := viz.EquatorialSlice(s.Sampler(), viz.VortZ, n)
	return viz.CountColumns(im, threshold)
}

// OverlapDisagreement reports the relative "double solution" difference
// between the panels in the overlap region.
func (s *Simulation) OverlapDisagreement() float64 {
	return mhd.OverlapDisagreement(s.Solver)
}

// WriteCheckpoint serializes the full state for bit-exact restart.
func (s *Simulation) WriteCheckpoint(w io.Writer) error {
	return snapshot.WriteCheckpoint(w, s.Solver)
}

// Restore rebuilds a Simulation from a checkpoint stream.
func Restore(r io.Reader) (*Simulation, error) {
	sv, err := snapshot.ReadCheckpoint(r)
	if err != nil {
		return nil, err
	}
	sim := &Simulation{
		Cfg: Config{
			Nr: sv.Spec.Nr, Nt: sv.Spec.Nt, RI: sv.Spec.RI, RO: sv.Spec.RO,
			Params: &sv.Prm, IC: &sv.IC, SafetyFactor: 0.3,
		},
		Solver: sv,
	}
	sim.history = append(sim.history, sv.Diagnose())
	return sim, nil
}

// ExportViz builds the section-V visualization product (Cartesian B, v,
// omega and T, single precision, optionally subsampled).
func (s *Simulation) ExportViz(w io.Writer, subsample int) error {
	ex, err := snapshot.BuildVizExport(s.Solver, subsample)
	if err != nil {
		return err
	}
	return snapshot.WriteVizExport(w, ex)
}

// RunParallel executes the same simulation decomposed over nProcs
// goroutine ranks (2 panels x 2-D process grid, exactly the paper's
// parallelization) for the given number of steps, and returns the
// diagnostics recorded every recordEvery steps by rank 0. A fixed dt <= 0
// selects the automatic estimate.
func RunParallel(cfg Config, nProcs, steps, recordEvery int, dt float64) ([]mhd.Diagnostics, error) {
	cfg = cfg.withDefaults()
	if recordEvery <= 0 {
		recordEvery = steps
	}
	layout, err := decomp.NewLayout(cfg.Spec(), nProcs)
	if err != nil {
		return nil, err
	}
	var mu sync.Mutex
	var out []mhd.Diagnostics
	err = mpi.RunWith(nProcs, mpi.RunConfig{Obs: cfg.Obs}, func(w *mpi.Comm) {
		rr := cfg.Obs.RankFor(w.Rank())
		rr.Open()
		defer rr.Close()
		sp := rr.Begin(obs.SpanSetup)
		r, err := decomp.NewRankWorkers(w, layout, *cfg.Params, *cfg.IC, cfg.Workers)
		if err != nil {
			w.Abort(err)
		}
		defer r.Close()
		r.SetObs(rr)
		r.SetTelemetry(cfg.Telemetry.Rank(w.Rank()))
		sp.End()
		step := dt
		if step <= 0 {
			step = r.EstimateDT(cfg.SafetyFactor)
		}
		for n := 1; n <= steps; n++ {
			r.Advance(step)
			if n%recordEvery == 0 || n == steps {
				d := r.Diagnose()
				if w.Rank() == 0 {
					mu.Lock()
					out = append(out, d)
					mu.Unlock()
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DipoleSeries records the axial dipole moment after every batch of
// steps; feed it to sph.DetectReversals to hunt for polarity flips in
// long campaigns (the goal runs of section V).
func (s *Simulation) DipoleSeries(batches, stepsPerBatch int) ([]float64, error) {
	out := make([]float64, 0, batches+1)
	out = append(out, s.DipoleMoment().Z)
	for b := 0; b < batches; b++ {
		if err := s.Step(stepsPerBatch); err != nil {
			return out, err
		}
		out = append(out, s.DipoleMoment().Z)
	}
	return out, nil
}

// Reversals runs DetectReversals over a recorded axial-moment series.
func Reversals(mz []float64, persist int, floor float64) []sph.ReversalEvent {
	return sph.DetectReversals(mz, persist, floor)
}

// RunParallelWithCheckpoint runs the decomposed simulation like
// RunParallel and, at the end, gathers the global state on rank 0 and
// writes a checkpoint to w — the persistence path of a decomposed
// campaign (its counterpart, decomp.ScatterState, restarts one).
func RunParallelWithCheckpoint(cfg Config, nProcs, steps int, dt float64, w io.Writer) ([]mhd.Diagnostics, error) {
	return RunParallelCheckpointWith(cfg, mpi.RunConfig{}, nProcs, steps, dt, w)
}

// RunParallelCheckpointWith is RunParallelWithCheckpoint under an
// explicit mpi.RunConfig — deadline, fault plan, reliable transport,
// heartbeat detection, elastic rank replacement — so fault-injection
// harnesses (resilience campaigns, the chaos fuzzer) can drive a full
// solver run through the self-healing runtime. The checkpoint is
// serialized in memory per epoch and flushed to w only after the world
// has shut down: under rc.Elastic a rank replacement can fence an
// epoch that had already gathered, and the re-entered world must not
// leave a doubled or half-written checkpoint on the writer.
func RunParallelCheckpointWith(cfg Config, rc mpi.RunConfig, nProcs, steps int, dt float64, w io.Writer) ([]mhd.Diagnostics, error) {
	cfg = cfg.withDefaults()
	// One effective recorder: the run config's (a campaign's shared
	// recorder) wins; the core config's is the fallback.
	if rc.Obs == nil {
		rc.Obs = cfg.Obs
	}
	rec := rc.Obs
	layout, err := decomp.NewLayout(cfg.Spec(), nProcs)
	if err != nil {
		return nil, err
	}
	var mu sync.Mutex
	var out []mhd.Diagnostics
	var ckpt []byte
	err = mpi.RunWith(nProcs, rc, func(wc *mpi.Comm) {
		rr := rec.RankFor(wc.Rank())
		rr.Open()
		defer rr.Close()
		sp := rr.Begin(obs.SpanSetup)
		r, err := decomp.NewRankWorkers(wc, layout, *cfg.Params, *cfg.IC, cfg.Workers)
		if err != nil {
			wc.Abort(err)
		}
		defer r.Close()
		r.SetObs(rr)
		r.SetTelemetry(cfg.Telemetry.Rank(wc.Rank()))
		sp.End()
		step := dt
		if step <= 0 {
			step = r.EstimateDT(cfg.SafetyFactor)
		}
		for n := 0; n < steps; n++ {
			r.Advance(step)
		}
		d := r.Diagnose()
		sv, err := r.GatherState()
		if err != nil {
			wc.Abort(err)
		}
		if wc.Rank() == 0 {
			var buf bytes.Buffer
			cw := rr.Begin(obs.SpanCkptWrite)
			werr := snapshot.WriteCheckpoint(&buf, sv)
			cw.End()
			if werr != nil {
				wc.Abort(werr)
			}
			// Overwrite, don't append: a fenced epoch's gather is
			// superseded by the final epoch's.
			mu.Lock()
			defer mu.Unlock()
			out = []mhd.Diagnostics{d}
			ckpt = buf.Bytes()
		}
	})
	if err != nil {
		return nil, err
	}
	if w != nil && len(ckpt) > 0 {
		if _, err := w.Write(ckpt); err != nil {
			return nil, err
		}
	}
	return out, nil
}
