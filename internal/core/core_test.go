package core

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/viz"
)

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Nr != 17 || c.Nt != 17 || c.RI != 0.35 || c.RO != 1 {
		t.Errorf("defaults: %+v", c)
	}
	if c.Params == nil || c.IC == nil || c.SafetyFactor != 0.3 {
		t.Error("defaults incomplete")
	}
	s := Config{Nt: 13, Nr: 9}.Spec()
	if s.Np != 37 {
		t.Errorf("Np = %d", s.Np)
	}
}

func TestNewAndStep(t *testing.T) {
	sim, err := New(Config{Nr: 9, Nt: 13})
	if err != nil {
		t.Fatal(err)
	}
	if len(sim.History()) != 1 {
		t.Fatalf("initial history %d", len(sim.History()))
	}
	if err := sim.Step(3); err != nil {
		t.Fatal(err)
	}
	if sim.Time() <= 0 || sim.DT() <= 0 {
		t.Errorf("time %v dt %v", sim.Time(), sim.DT())
	}
	d := sim.Diagnostics()
	if d.Mass <= 0 || d.KineticE < 0 {
		t.Errorf("diagnostics %+v", d)
	}
	if err := sim.Step(0); err == nil {
		t.Error("zero step count accepted")
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Nr: 2, Nt: 2}); err == nil {
		t.Error("tiny grid accepted")
	}
}

func TestDipoleMomentGrows(t *testing.T) {
	sim, err := New(Config{Nr: 9, Nt: 13})
	if err != nil {
		t.Fatal(err)
	}
	m0 := sim.DipoleMoment()
	if m0.Z <= 0 {
		t.Errorf("seeded moment %+v", m0)
	}
}

func TestPPMAndColumns(t *testing.T) {
	sim, err := New(Config{Nr: 9, Nt: 13})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Step(5); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sim.WriteEquatorialPPM(&buf, viz.Temperature, 48); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 48*48*3 {
		t.Errorf("ppm too small: %d", buf.Len())
	}
	cyc, anti := sim.ColumnCount(48, 0.1)
	if cyc < 0 || anti < 0 {
		t.Error("negative column count")
	}
	if d := sim.OverlapDisagreement(); d < 0 || d > 0.2 {
		t.Errorf("overlap disagreement %v", d)
	}
}

// TestRunParallelMatchesSerial: the one-call parallel runner reproduces
// the serial diagnostics.
func TestRunParallelMatchesSerial(t *testing.T) {
	cfg := Config{Nr: 9, Nt: 13}
	const steps = 3
	const dt = 2e-3

	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < steps; i++ {
		sim.Solver.Advance(dt)
	}
	want := sim.Solver.Diagnose()

	got, err := RunParallel(cfg, 4, steps, steps, dt)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("records = %d", len(got))
	}
	for _, c := range []struct {
		name string
		a, b float64
	}{
		{"mass", got[0].Mass, want.Mass},
		{"Ek", got[0].KineticE, want.KineticE},
		{"maxV", got[0].MaxV, want.MaxV},
	} {
		if math.Abs(c.a-c.b) > 1e-9*(1+math.Abs(c.b)) {
			t.Errorf("%s: parallel %v vs serial %v", c.name, c.a, c.b)
		}
	}
}

func TestRunParallelValidation(t *testing.T) {
	if _, err := RunParallel(Config{Nr: 9, Nt: 13}, 3, 1, 1, 1e-3); err == nil {
		t.Error("odd process count accepted")
	}
}

func TestRunParallelRecording(t *testing.T) {
	got, err := RunParallel(Config{Nr: 9, Nt: 13}, 2, 4, 2, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("records = %d, want 2", len(got))
	}
}

// TestCheckpointRoundTripViaCore: save, restore, continue — identical
// trajectories.
func TestCheckpointRoundTripViaCore(t *testing.T) {
	sim, err := New(Config{Nr: 9, Nt: 13})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Step(2); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sim.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Time() != sim.Time() {
		t.Errorf("time %v vs %v", restored.Time(), sim.Time())
	}
	const dt = 1e-3
	sim.Solver.Advance(dt)
	restored.Solver.Advance(dt)
	a := sim.Solver.Panels[0].U.Rho.Data
	b := restored.Solver.Panels[0].U.Rho.Data
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("restored trajectory diverged")
		}
	}
}

func TestExportViz(t *testing.T) {
	sim, err := New(Config{Nr: 9, Nt: 13})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sim.ExportViz(&buf, 2); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 1000 {
		t.Errorf("export too small: %d", buf.Len())
	}
}

func TestDipoleSeriesAndReversals(t *testing.T) {
	sim, err := New(Config{Nr: 9, Nt: 13})
	if err != nil {
		t.Fatal(err)
	}
	mz, err := sim.DipoleSeries(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(mz) != 4 {
		t.Fatalf("series length %d", len(mz))
	}
	for _, v := range mz {
		if v <= 0 {
			t.Errorf("axial moment lost polarity without a reversal: %v", mz)
			break
		}
	}
	if ev := Reversals(mz, 2, 1e-9); len(ev) != 0 {
		t.Errorf("spurious reversals: %+v", ev)
	}
}

// TestRunParallelWithCheckpoint: the checkpoint written by the parallel
// run restores to a solver that matches a serial run of the same
// trajectory.
func TestRunParallelWithCheckpoint(t *testing.T) {
	cfg := Config{Nr: 9, Nt: 13}
	const steps = 2
	const dt = 2e-3

	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < steps; n++ {
		sim.Solver.Advance(dt)
	}

	var buf bytes.Buffer
	if _, err := RunParallelWithCheckpoint(cfg, 4, steps, dt, &buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for pi := range sim.Solver.Panels {
		a := sim.Solver.Panels[pi].U.Scalars()
		b := restored.Solver.Panels[pi].U.Scalars()
		p := sim.Solver.Panels[pi].Patch
		h := p.H
		for vi := range a {
			for k := h; k < h+p.Np; k++ {
				for j := h; j < h+p.Nt; j++ {
					ra, rb := a[vi].Row(j, k), b[vi].Row(j, k)
					for i := h; i < h+p.Nr; i++ {
						if ra[i] != rb[i] {
							t.Fatalf("parallel checkpoint differs from serial at panel %d var %d", pi, vi)
						}
					}
				}
			}
		}
	}
}
