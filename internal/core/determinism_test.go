package core

import (
	"bytes"
	"crypto/sha256"
	"testing"
)

func checkpointSum(t *testing.T, cfg Config, steps int, dt float64) [32]byte {
	t.Helper()
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	for n := 0; n < steps; n++ {
		sim.Solver.Advance(dt)
	}
	var buf bytes.Buffer
	if err := sim.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	return sha256.Sum256(buf.Bytes())
}

// TestCheckpointDeterminism is the determinism regression gate: two runs
// of the same campaign configuration produce byte-identical snapshot
// checksums, and a run with pooled (3-worker) kernels matches the serial
// run exactly — parallel kernels are bit-identical by construction.
func TestCheckpointDeterminism(t *testing.T) {
	cfg := Config{Nr: 9, Nt: 13}
	const steps = 5
	const dt = 2e-3

	a := checkpointSum(t, cfg, steps, dt)
	b := checkpointSum(t, cfg, steps, dt)
	if a != b {
		t.Fatalf("repeat run diverged: %x vs %x", a, b)
	}

	pooled := cfg
	pooled.Workers = 3
	c := checkpointSum(t, pooled, steps, dt)
	if a != c {
		t.Fatalf("pooled kernels diverged from serial: %x vs %x", a, c)
	}
}

// TestGoldenParallelWorlds pins serial-vs-decomposed bit-identity after
// 10 steps at world sizes 2 and 8 (the world-size-1 case is the pooled
// serial run of TestCheckpointDeterminism): the checkpoint gathered from
// the decomposed run hashes identically to the serial solver's.
func TestGoldenParallelWorlds(t *testing.T) {
	cfg := Config{Nr: 9, Nt: 13}
	const steps = 10
	const dt = 2e-3

	want := checkpointSum(t, cfg, steps, dt)
	for _, nProcs := range []int{2, 8} {
		var buf bytes.Buffer
		if _, err := RunParallelWithCheckpoint(cfg, nProcs, steps, dt, &buf); err != nil {
			t.Fatalf("world %d: %v", nProcs, err)
		}
		got := sha256.Sum256(buf.Bytes())
		if got != want {
			// Restore for a more useful diff before failing.
			sim, err := Restore(&buf)
			if err != nil {
				t.Fatalf("world %d: checkpoint differs and does not restore: %v", nProcs, err)
			}
			d := sim.Diagnostics()
			t.Fatalf("world %d: checkpoint hash %x, serial %x (gathered diag %+v)",
				nProcs, got, want, d)
		}
	}
}

// TestGoldenParallelWorldsPooled repeats the world-size-2 golden
// comparison with 2-worker pools inside each rank: intra-rank and
// inter-rank parallelism compose without changing a single bit.
func TestGoldenParallelWorldsPooled(t *testing.T) {
	cfg := Config{Nr: 9, Nt: 13}
	const steps = 10
	const dt = 2e-3

	want := checkpointSum(t, cfg, steps, dt)
	pooled := cfg
	pooled.Workers = 2
	var buf bytes.Buffer
	if _, err := RunParallelWithCheckpoint(pooled, 2, steps, dt, &buf); err != nil {
		t.Fatal(err)
	}
	if got := sha256.Sum256(buf.Bytes()); got != want {
		t.Fatalf("pooled world 2: checkpoint hash %x, serial %x", got, want)
	}
}
