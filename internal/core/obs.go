package core

import (
	"io"

	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/perfcount"
)

// InstantsFromEvents converts a runtime event log (fault injections,
// transport retransmissions, heartbeat transitions, campaign segment
// notes) into trace instants on the recorder's clock, re-basing each
// event's offset from the log's start time onto the recorder epoch.
// The conversion lives here because obs is a leaf package: it cannot
// import the runtime it observes.
func InstantsFromEvents(rec *obs.Recorder, log *mpi.EventLog) []obs.Instant {
	if rec == nil || log == nil {
		return nil
	}
	base := log.Start().Sub(rec.Epoch())
	evs := log.Events()
	out := make([]obs.Instant, 0, len(evs))
	for _, e := range evs {
		out = append(out, obs.Instant{At: base + e.At, Name: e.Kind, Detail: e.Detail})
	}
	return out
}

// WriteTrace exports the recorder's timeline as Chrome trace_event JSON
// with the event log (may be nil) merged in as instant markers — the
// one-call export for drivers.
func WriteTrace(w io.Writer, rec *obs.Recorder, log *mpi.EventLog) error {
	return rec.WriteTrace(w, InstantsFromEvents(rec, log))
}

// WriteRunReport builds the PROGINF-style run report from the recorder
// and the given perfcount interval and writes it to w. The event log
// (may be nil) contributes its overwrite count to the report's health
// header; alerts (may be nil) are the run's latched telemetry alerts,
// rendered one per line under it.
func WriteRunReport(w io.Writer, rec *obs.Recorder, perf perfcount.Snapshot, log *mpi.EventLog, alerts []string) error {
	rep := rec.BuildReport(perf)
	if rep == nil {
		return nil
	}
	rep.EventsDropped = log.Dropped()
	rep.Alerts = alerts
	_, err := io.WriteString(w, rep.Format())
	return err
}
