package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/perfcount"
)

// tracedRun executes a 4-rank checkpointed run with a recorder attached
// and returns the checkpoint hash plus the recorder for inspection.
func tracedRun(t *testing.T, cfg Config, steps int, dt float64, nProcs int) ([32]byte, *obs.Recorder) {
	t.Helper()
	rec := obs.New(obs.Config{SpanCap: 1 << 16})
	cfg.Obs = rec
	var buf bytes.Buffer
	if _, err := RunParallelWithCheckpoint(cfg, nProcs, steps, dt, &buf); err != nil {
		t.Fatal(err)
	}
	return sha256.Sum256(buf.Bytes()), rec
}

// TestTracedRunByteIdenticalToGolden is the observability acceptance
// gate for physics neutrality: a fully traced 4-rank run produces a
// checkpoint byte-identical to the untraced serial golden. Tracing reads
// clocks and writes its own rings; it must never change a bit of state.
func TestTracedRunByteIdenticalToGolden(t *testing.T) {
	cfg := Config{Nr: 9, Nt: 13}
	const steps = 10
	const dt = 2e-3

	want := checkpointSum(t, cfg, steps, dt)
	got, rec := tracedRun(t, cfg, steps, dt, 4)
	if got != want {
		t.Fatalf("traced checkpoint %x differs from untraced golden %x", got, want)
	}
	// The run must actually have been traced, not silently no-opped.
	for _, rank := range []int{0, 1, 2, 3} {
		if rec.RankFor(rank).Len() == 0 {
			t.Fatalf("rank %d recorded no spans", rank)
		}
	}
}

// traceShape is the subset of trace_event JSON the assertions read.
type traceShape struct {
	TraceEvents []struct {
		Name  string         `json:"name"`
		Phase string         `json:"ph"`
		TID   int            `json:"tid"`
		Dur   float64        `json:"dur"`
		Args  map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// TestTraceCoverageAndTracks pins the trace acceptance criteria: the
// exported JSON parses, carries one named track per rank, and depth-0
// spans cover at least 95% of each rank's open..close wall window.
func TestTraceCoverageAndTracks(t *testing.T) {
	cfg := Config{Nr: 9, Nt: 13}
	_, rec := tracedRun(t, cfg, 10, 2e-3, 4)

	var buf bytes.Buffer
	if err := WriteTrace(&buf, rec, nil); err != nil {
		t.Fatal(err)
	}
	var tr traceShape
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	tracks := map[int]string{}
	spans := map[int]int{}
	for _, ev := range tr.TraceEvents {
		switch ev.Phase {
		case "M":
			if ev.Name == "thread_name" {
				name, _ := ev.Args["name"].(string)
				tracks[ev.TID] = name
			}
		case "X":
			spans[ev.TID]++
		}
	}
	for _, rank := range []int{0, 1, 2, 3} {
		tid := rank + 1
		if tracks[tid] == "" {
			t.Errorf("rank %d has no thread_name metadata track", rank)
		}
		if spans[tid] == 0 {
			t.Errorf("rank %d track has no duration events", rank)
		}
	}

	rep := rec.BuildReport(perfcount.Snapshot{})
	if len(rep.Ranks) != 4 {
		t.Fatalf("report has %d ranks, want 4", len(rep.Ranks))
	}
	for _, rs := range rep.Ranks {
		if cov := rs.Coverage(); cov < 0.95 {
			t.Errorf("rank %d span coverage %.1f%% below the 95%% acceptance floor", rs.Rank, 100*cov)
		}
	}
}

// TestReportPercentagesSumTo100 pins the run-report accounting: the
// compute/comm/wait split of a real traced run sums to 100% within 1
// point (by construction compute is the remainder, so the tolerance only
// absorbs formatting rounding).
func TestReportPercentagesSumTo100(t *testing.T) {
	cfg := Config{Nr: 9, Nt: 13}
	_, rec := tracedRun(t, cfg, 10, 2e-3, 4)

	rep := rec.BuildReport(perfcount.Snapshot{})
	comp, comm, wait := rep.ClassPercents()
	sum := comp + comm + wait
	if sum < 99 || sum > 101 {
		t.Fatalf("compute %.3f + comm %.3f + wait %.3f = %.3f, want 100±1", comp, comm, wait, sum)
	}
	if comp <= 0 {
		t.Fatalf("compute share %.3f%% is not positive", comp)
	}
	if rep.Steps != 10 {
		t.Fatalf("report counted %d steps, want 10", rep.Steps)
	}
}

// TestFaultEventsAppearAsTraceInstants runs the PR 4 fault scenario with
// tracing attached: transport faults and retransmissions recorded in the
// runtime event log come out of the trace export as instant markers, the
// checkpoint still matches the golden, and tracing plus reliability
// compose.
func TestFaultEventsAppearAsTraceInstants(t *testing.T) {
	cfg := Config{Nr: 9, Nt: 13}
	const steps = 10
	const dt = 2e-3

	want := checkpointSum(t, cfg, steps, dt)

	rec := obs.New(obs.Config{SpanCap: 1 << 16})
	events := mpi.NewEventLog()
	var buf bytes.Buffer
	if _, err := RunParallelCheckpointWith(cfg, mpi.RunConfig{
		Deadline:    30 * time.Second,
		Faults:      faultEveryExchange(),
		Reliability: &mpi.Reliability{AckTimeout: 3 * time.Millisecond},
		Events:      events,
		Obs:         rec,
	}, 4, steps, dt, &buf); err != nil {
		t.Fatalf("traced reliable faulted run failed: %v\n%s", err, events)
	}
	if got := sha256.Sum256(buf.Bytes()); got != want {
		t.Fatalf("traced faulted checkpoint %x differs from golden %x", got, want)
	}

	var out bytes.Buffer
	if err := WriteTrace(&out, rec, events); err != nil {
		t.Fatal(err)
	}
	var tr traceShape
	if err := json.Unmarshal(out.Bytes(), &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	instants := map[string]int{}
	for _, ev := range tr.TraceEvents {
		if ev.Phase == "i" {
			instants[ev.Name]++
		}
	}
	if instants["fault.drop"] == 0 || instants["xport.retransmit"] == 0 {
		t.Fatalf("fault/transport events missing from trace instants: %v", instants)
	}
}
