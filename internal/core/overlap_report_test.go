package core

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/perfcount"
)

// delayHaloPlan scripts a fixed delay on every magnetic-field (B) and
// differentiated-intermediate (aux) halo message a 4-rank run can send:
// both panel communicators (split comm ids 1 and 2), both directions of
// the one seam each 1x2 panel grid has, every occurrence the run can
// reach. These are exactly the exchanges the overlapped RHS schedule
// hides under interior compute, so the induced wait time is the signal
// the wait%% regression test below watches.
func delayHaloPlan(d time.Duration) *mpi.FaultPlan {
	p := mpi.NewFaultPlan()
	pairs := [][2]int{{0, 1}, {1, 0}}
	for _, base := range []int{8, 16} { // tagHaloBBase, tagHaloAuxBase
		for dir := 0; dir < 4; dir++ {
			for comm := 1; comm <= 2; comm++ {
				for _, pr := range pairs {
					for epoch := 0; epoch < 16; epoch++ {
						p.Add(mpi.Fault{
							Comm: comm, Src: pr[0], Dst: pr[1], Tag: base + dir,
							Epoch: epoch, Action: mpi.Delay, Delay: d,
						})
					}
				}
			}
		}
	}
	return p
}

// delayedTracedReport runs the canonical 4-rank traced scenario of the
// latency-hiding acceptance test — 2 fixed-dt steps with every B/aux
// halo message delayed by 1.5 ms — and returns the PROGINF-style run
// report. The same scenario generated the committed pre-PR fixture
// (testdata/prepr_report.txt) on the non-overlapped code, so the two
// reports differ only by the overlap scheduler.
func delayedTracedReport(t *testing.T) *obs.Report {
	t.Helper()
	rec := obs.New(obs.Config{})
	perf0 := perfcount.Read()
	cfg := Config{Nr: 17, Nt: 17, Obs: rec}
	const steps = 2
	const dt = 2e-3
	if _, err := RunParallelCheckpointWith(cfg, mpi.RunConfig{
		Deadline: 120 * time.Second,
		Faults:   delayHaloPlan(1500 * time.Microsecond),
		Obs:      rec,
	}, 4, steps, dt, nil); err != nil {
		t.Fatalf("delayed traced run failed: %v", err)
	}
	return rec.BuildReport(perfcount.Read().Sub(perf0))
}

// parseWaitPct extracts the overall "Wait (%)" value from a formatted
// run report.
func parseWaitPct(t *testing.T, report string) float64 {
	t.Helper()
	for _, line := range strings.Split(report, "\n") {
		if !strings.HasPrefix(line, "Wait (%)") {
			continue
		}
		_, val, ok := strings.Cut(line, ":")
		if !ok {
			break
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			t.Fatalf("parsing wait%% from %q: %v", line, err)
		}
		return f
	}
	t.Fatalf("no Wait (%%) line in report:\n%s", report)
	return 0
}

// TestWaitMovedUnderCompute pins the acceptance criterion of the
// latency-hiding work: on the canonical delayed 4-rank traced run, the
// overlapped RHS schedule leaves strictly less of the wall clock in the
// wait class than the committed pre-PR (non-overlapped) report fixture
// recorded on the same scenario. The injected 1.5 ms per-message delay
// dominates scheduler noise on any host, so "strictly lower" is a
// robust, slack-tolerant form of "the halo wait moved under compute".
//
// Regenerate the fixture (only meaningful on pre-overlap code) with:
//
//	YY_REGEN_OVERLAP_FIXTURE=1 go test ./internal/core -run TestWaitMovedUnderCompute
func TestWaitMovedUnderCompute(t *testing.T) {
	rep := delayedTracedReport(t)
	live := rep.Format()

	fixturePath := filepath.Join("testdata", "prepr_report.txt")
	if os.Getenv("YY_REGEN_OVERLAP_FIXTURE") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(fixturePath, []byte(live), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Skipf("regenerated %s; assertion skipped on the generating run", fixturePath)
	}

	fixture, err := os.ReadFile(fixturePath)
	if err != nil {
		t.Fatalf("reading pre-PR fixture (regenerate with YY_REGEN_OVERLAP_FIXTURE=1 on pre-overlap code): %v", err)
	}
	preWait := parseWaitPct(t, string(fixture))
	liveWait := parseWaitPct(t, live)
	t.Logf("wait%%: pre-PR fixture %.3f, live overlapped %.3f", preWait, liveWait)
	if liveWait >= preWait {
		t.Fatalf("halo wait did not move under compute: live wait%% %.3f >= pre-PR fixture %.3f\nlive report:\n%s",
			liveWait, preWait, live)
	}
}
