package core

import (
	"bytes"
	"crypto/sha256"
	"strings"
	"testing"
	"time"

	"repro/internal/decomp"
	"repro/internal/mpi"
)

// faultEveryExchange scripts a drop of the first, a duplicate of the
// second and a delay of the third occurrence of every exchange envelope
// the 4-rank decomposition can produce: halo and rim refreshes on both
// panel communicators (split comm ids 1 and 2) and the overset exchange
// on the world. Entries that match no real traffic are inert, so the
// plan covers the whole tag space without knowing the layout's
// neighbour graph. The delays also stretch the overlapped RHS schedule
// to its maximal interior/rim skew: the interior compute finishes long
// before the delayed halos land, so the golden comparison pins that the
// rim never reads pre-exchange bytes.
func faultEveryExchange() *mpi.FaultPlan {
	p := mpi.NewFaultPlan()
	pairs := [][2]int{{0, 1}, {1, 0}, {0, 2}, {2, 0}, {1, 3}, {3, 1}, {0, 3}, {3, 0}, {1, 2}, {2, 1}}
	for _, tag := range decomp.ExchangeTags() {
		for comm := 0; comm <= 2; comm++ {
			for _, pr := range pairs {
				p.Add(mpi.Fault{Comm: comm, Src: pr[0], Dst: pr[1], Tag: tag, Epoch: 0, Action: mpi.Drop})
				p.Add(mpi.Fault{Comm: comm, Src: pr[0], Dst: pr[1], Tag: tag, Epoch: 1, Action: mpi.Duplicate})
				p.Add(mpi.Fault{Comm: comm, Src: pr[0], Dst: pr[1], Tag: tag, Epoch: 2, Action: mpi.Delay, Delay: 2 * time.Millisecond})
			}
		}
	}
	return p
}

// TestReliableFaultedRunGolden is the tentpole acceptance test: a
// 4-rank solver run whose halo and overset messages are dropped and
// duplicated completes under RunConfig.Reliability with a checkpoint
// byte-identical to the fault-free serial run, while the same fault
// plan without reliability still fails fast as before.
func TestReliableFaultedRunGolden(t *testing.T) {
	cfg := Config{Nr: 9, Nt: 13}
	const steps = 10
	const dt = 2e-3
	const nProcs = 4

	want := checkpointSum(t, cfg, steps, dt)

	// Fail-fast baseline: the dropped first halo message wedges its
	// receiver until the watchdog aborts.
	var buf bytes.Buffer
	_, err := RunParallelCheckpointWith(cfg, mpi.RunConfig{
		Deadline: 300 * time.Millisecond,
		Faults:   faultEveryExchange(),
	}, nProcs, steps, dt, &buf)
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("fail-fast run: want deadline abort, got %v", err)
	}

	// Reliable run: same fault plan, absorbed in-flight.
	events := mpi.NewEventLog()
	buf.Reset()
	if _, err := RunParallelCheckpointWith(cfg, mpi.RunConfig{
		Deadline:    30 * time.Second,
		Faults:      faultEveryExchange(),
		Reliability: &mpi.Reliability{AckTimeout: 3 * time.Millisecond},
		Events:      events,
	}, nProcs, steps, dt, &buf); err != nil {
		t.Fatalf("reliable faulted run failed: %v\n%s", err, events)
	}
	if got := sha256.Sum256(buf.Bytes()); got != want {
		t.Fatalf("faulted reliable checkpoint %x differs from fault-free golden %x\n%s", got, want, events)
	}

	// The plan must have actually bitten: drops and duplicates fired on
	// both a panel halo tag and the world overset tag (100), and the
	// transport retransmitted.
	var sawHaloDrop, sawOversetDrop, sawDup, sawRetransmit bool
	for _, e := range events.Events() {
		switch e.Kind {
		case "fault.drop":
			if strings.Contains(e.Detail, "tag=100") {
				sawOversetDrop = true
			} else {
				sawHaloDrop = true
			}
		case "fault.duplicate":
			sawDup = true
		case "xport.retransmit":
			sawRetransmit = true
		}
	}
	if !sawHaloDrop || !sawOversetDrop || !sawDup || !sawRetransmit {
		t.Fatalf("fault plan did not exercise the transport (halo drop %v, overset drop %v, duplicate %v, retransmit %v):\n%s",
			sawHaloDrop, sawOversetDrop, sawDup, sawRetransmit, events)
	}
}
