// Package decomp parallelizes the yycore solver the way the paper does
// on the Earth Simulator (section IV): the total process count is even;
// the world communicator is split into two identical panels (the Yin grid
// and the Yang grid); within each panel a two-dimensional process grid
// decomposes the horizontal (theta, phi) space, each process keeping the
// whole radial extent — the vectorization dimension; the four nearest
// neighbours exchange halos point-to-point, and the Yin<->Yang overset
// interpolation flows between the panels under the world communicator.
package decomp

import (
	"fmt"

	"repro/internal/grid"
)

// Partition splits n items into parts contiguous balanced blocks and
// returns the parts+1 block boundaries.
func Partition(n, parts int) []int {
	if parts <= 0 || n < parts {
		panic(fmt.Sprintf("decomp: cannot split %d items into %d parts", n, parts))
	}
	bounds := make([]int, parts+1)
	base := n / parts
	rem := n % parts
	pos := 0
	for b := 0; b < parts; b++ {
		bounds[b] = pos
		pos += base
		if b < rem {
			pos++
		}
	}
	bounds[parts] = n
	return bounds
}

// BlockOf returns the index of the block containing item i.
func BlockOf(bounds []int, i int) int {
	for b := 0; b+1 < len(bounds); b++ {
		if i >= bounds[b] && i < bounds[b+1] {
			return b
		}
	}
	panic(fmt.Sprintf("decomp: item %d outside bounds %v", i, bounds))
}

// ChooseDims picks the process-grid shape (pt x pp) for one panel of
// nPanel processes that minimizes the halo-exchange perimeter for the
// panel's Nt x Np horizontal extent. Each block must keep at least two
// nodes per dimension.
func ChooseDims(nPanel int, s grid.Spec) (pt, pp int, err error) {
	if nPanel <= 0 {
		return 0, 0, fmt.Errorf("decomp: need positive panel process count, got %d", nPanel)
	}
	best := -1.0
	for a := 1; a <= nPanel; a++ {
		if nPanel%a != 0 {
			continue
		}
		b := nPanel / a
		if s.Nt/a < 2 || s.Np/b < 2 {
			continue
		}
		// Total halo traffic ~ a*Np + b*Nt row-columns.
		cost := float64(a)*float64(s.Np) + float64(b)*float64(s.Nt)
		if best < 0 || cost < best {
			best = cost
			pt, pp = a, b
		}
	}
	if best < 0 {
		return 0, 0, fmt.Errorf("decomp: %d processes cannot tile a %dx%d panel", nPanel, s.Nt, s.Np)
	}
	return pt, pp, nil
}

// Layout describes the full two-panel decomposition for a world of
// nProcs processes.
type Layout struct {
	Spec    grid.Spec
	NProcs  int
	PT, PP  int   // process grid within each panel
	TBounds []int // theta block boundaries, len PT+1
	PBounds []int // phi block boundaries, len PP+1
}

// NewLayout validates and builds the decomposition: nProcs must be even
// and each panel's share must tile the panel. The process-grid shape is
// chosen to minimize halo traffic.
func NewLayout(s grid.Spec, nProcs int) (*Layout, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if nProcs <= 0 || nProcs%2 != 0 {
		return nil, fmt.Errorf("decomp: total process count must be even and positive, got %d", nProcs)
	}
	pt, pp, err := ChooseDims(nProcs/2, s)
	if err != nil {
		return nil, err
	}
	return NewLayoutDims(s, nProcs, pt, pp)
}

// NewLayoutDims builds the decomposition with an explicit pt x pp
// process grid per panel (used by the decomposition-shape ablation).
func NewLayoutDims(s grid.Spec, nProcs, pt, pp int) (*Layout, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if nProcs <= 0 || nProcs%2 != 0 || pt*pp != nProcs/2 {
		return nil, fmt.Errorf("decomp: %dx%d grid incompatible with %d processes", pt, pp, nProcs)
	}
	if s.Nt/pt < 2 || s.Np/pp < 2 {
		return nil, fmt.Errorf("decomp: %dx%d grid leaves blocks under 2 nodes for %dx%d panel", pt, pp, s.Nt, s.Np)
	}
	return &Layout{
		Spec:    s,
		NProcs:  nProcs,
		PT:      pt,
		PP:      pp,
		TBounds: Partition(s.Nt, pt),
		PBounds: Partition(s.Np, pp),
	}, nil
}

// PanelOf returns the panel a world rank belongs to: the lower half of
// the world is the Yin panel, the upper half the Yang panel.
func (l *Layout) PanelOf(world int) grid.Panel {
	if world < l.NProcs/2 {
		return grid.Yin
	}
	return grid.Yang
}

// CartRankOf returns the rank within the panel communicator.
func (l *Layout) CartRankOf(world int) int {
	return world % (l.NProcs / 2)
}

// WorldRank returns the world rank of the process at cart position
// (bt, bp) of the given panel.
func (l *Layout) WorldRank(p grid.Panel, bt, bp int) int {
	cart := bt*l.PP + bp
	if p == grid.Yang {
		cart += l.NProcs / 2
	}
	return cart
}

// OwnerOf returns the world rank owning global horizontal node (j, k) of
// the given panel.
func (l *Layout) OwnerOf(p grid.Panel, j, k int) int {
	return l.WorldRank(p, BlockOf(l.TBounds, j), BlockOf(l.PBounds, k))
}

// BlockRange returns the node ranges of cart position (bt, bp).
func (l *Layout) BlockRange(bt, bp int) (jlo, jhi, klo, khi int) {
	return l.TBounds[bt], l.TBounds[bt+1], l.PBounds[bp], l.PBounds[bp+1]
}

// SubPatch builds the grid patch of the given world rank.
func (l *Layout) SubPatch(world, halo int) *grid.Patch {
	p := l.PanelOf(world)
	cart := l.CartRankOf(world)
	bt, bp := cart/l.PP, cart%l.PP
	jlo, jhi, klo, khi := l.BlockRange(bt, bp)
	return grid.NewSubPatch(l.Spec, p, halo, 0, l.Spec.Nr, jlo, jhi, klo, khi)
}

// HaloBytesPerExchange returns the total bytes moved by one halo exchange
// of nFields scalar fields over the whole machine, used by the
// performance model.
func (l *Layout) HaloBytesPerExchange(nFields int) int64 {
	nrP := int64(l.Spec.Nr + 2)
	var rows int64
	for bt := 0; bt < l.PT; bt++ {
		for bp := 0; bp < l.PP; bp++ {
			jlo, jhi, klo, khi := l.BlockRange(bt, bp)
			nt, np := int64(jhi-jlo), int64(khi-klo)
			// One row (or column) per existing neighbour, both directions.
			if bt > 0 {
				rows += np
			}
			if bt < l.PT-1 {
				rows += np
			}
			if bp > 0 {
				rows += nt
			}
			if bp < l.PP-1 {
				rows += nt
			}
		}
	}
	return 2 /*panels*/ * rows * nrP * int64(nFields) * 8
}
