package decomp

import (
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/mhd"
	"repro/internal/mpi"
)

func TestPartition(t *testing.T) {
	b := Partition(13, 4)
	want := []int{0, 4, 7, 10, 13}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bounds = %v", b)
		}
	}
	// Balanced within 1.
	for i := 0; i+1 < len(b); i++ {
		n := b[i+1] - b[i]
		if n < 13/4 || n > 13/4+1 {
			t.Fatalf("unbalanced block %d: %d", i, n)
		}
	}
}

func TestPartitionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Partition(3, 5)
}

func TestBlockOf(t *testing.T) {
	b := Partition(10, 3)
	for i := 0; i < 10; i++ {
		blk := BlockOf(b, i)
		if i < b[blk] || i >= b[blk+1] {
			t.Fatalf("item %d assigned to block %d with bounds %v", i, blk, b)
		}
	}
}

func TestChooseDims(t *testing.T) {
	s := grid.NewSpec(9, 17) // Nt=17, Np=49
	for _, n := range []int{1, 2, 4, 6, 8, 12} {
		pt, pp, err := ChooseDims(n, s)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if pt*pp != n {
			t.Fatalf("n=%d: %dx%d", n, pt, pp)
		}
		// The phi extent is about 3x the theta extent, so pp >= pt.
		if pp < pt {
			t.Errorf("n=%d: chose %dx%d, expected wider phi decomposition", n, pt, pp)
		}
	}
	if _, _, err := ChooseDims(10000, s); err == nil {
		t.Error("oversubscription accepted")
	}
}

func TestNewLayoutValidation(t *testing.T) {
	s := grid.NewSpec(9, 17)
	if _, err := NewLayout(s, 3); err == nil {
		t.Error("odd process count accepted")
	}
	if _, err := NewLayout(s, 0); err == nil {
		t.Error("zero process count accepted")
	}
	if _, err := NewLayout(grid.Spec{Nr: 1, Nt: 1, Np: 1, RI: 0.4, RO: 1}, 2); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestLayoutOwnership(t *testing.T) {
	s := grid.NewSpec(9, 17)
	l, err := NewLayout(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Every (panel, node) maps to a rank whose subpatch contains it.
	for _, p := range []grid.Panel{grid.Yin, grid.Yang} {
		for j := 0; j < s.Nt; j += 3 {
			for k := 0; k < s.Np; k += 5 {
				w := l.OwnerOf(p, j, k)
				if l.PanelOf(w) != p {
					t.Fatalf("owner %d of (%v,%d,%d) in wrong panel", w, p, j, k)
				}
				patch := l.SubPatch(w, 1)
				if j < patch.JOff || j >= patch.JOff+patch.Nt ||
					k < patch.KOff || k >= patch.KOff+patch.Np {
					t.Fatalf("node (%d,%d) outside owner %d block", j, k, w)
				}
			}
		}
	}
}

func TestLayoutBlocksTile(t *testing.T) {
	s := grid.NewSpec(9, 17)
	l, err := NewLayout(s, 12)
	if err != nil {
		t.Fatal(err)
	}
	count := make(map[[2]int]int)
	for bt := 0; bt < l.PT; bt++ {
		for bp := 0; bp < l.PP; bp++ {
			jlo, jhi, klo, khi := l.BlockRange(bt, bp)
			for j := jlo; j < jhi; j++ {
				for k := klo; k < khi; k++ {
					count[[2]int{j, k}]++
				}
			}
		}
	}
	if len(count) != s.Nt*s.Np {
		t.Fatalf("blocks cover %d nodes, want %d", len(count), s.Nt*s.Np)
	}
	for n, c := range count {
		if c != 1 {
			t.Fatalf("node %v covered %d times", n, c)
		}
	}
}

func TestHaloBytes(t *testing.T) {
	s := grid.NewSpec(9, 17)
	l, _ := NewLayout(s, 8)
	b1 := l.HaloBytesPerExchange(1)
	b8 := l.HaloBytesPerExchange(8)
	if b1 <= 0 || b8 != 8*b1 {
		t.Errorf("halo bytes %d, %d", b1, b8)
	}
	// Two ranks (one block per panel) exchange nothing.
	l2, _ := NewLayout(s, 2)
	if got := l2.HaloBytesPerExchange(8); got != 0 {
		t.Errorf("single-block halo bytes = %d", got)
	}
}

// runSerial advances the serial reference and returns it.
func runSerial(t *testing.T, s grid.Spec, steps int, dt float64) *mhd.Solver {
	t.Helper()
	sv, err := mhd.NewSolver(s, mhd.Default(), mhd.DefaultIC())
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < steps; n++ {
		sv.Advance(dt)
	}
	return sv
}

// TestParallelMatchesSerial: the decomposed run reproduces the serial
// fields bit for bit, for both a pure panel split (2 ranks) and a full
// 2x2 decomposition per panel (8 ranks).
func TestParallelMatchesSerial(t *testing.T) {
	s := grid.NewSpec(9, 13)
	const steps = 3
	const dt = 2e-3
	ref := runSerial(t, s, steps, dt)

	for _, nProcs := range []int{2, 8} {
		l, err := NewLayout(s, nProcs)
		if err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		var mismatches int
		err = mpi.Run(nProcs, func(w *mpi.Comm) {
			r, err := NewRank(w, l, mhd.Default(), mhd.DefaultIC())
			if err != nil {
				t.Error(err)
				return
			}
			for n := 0; n < steps; n++ {
				r.Advance(dt)
			}
			// Compare this rank's interior block against the serial panel.
			p := r.PL.Patch
			h := p.H
			refPanel := ref.Panels[r.Panel]
			local := r.PL.U.Scalars()
			global := refPanel.U.Scalars()
			bad := 0
			for vi := range local {
				for k := h; k < h+p.Np; k++ {
					for j := h; j < h+p.Nt; j++ {
						lrow := local[vi].Row(j, k)
						grow := global[vi].Row(j+p.JOff, k+p.KOff)
						for i := h; i < h+p.Nr; i++ {
							if lrow[i] != grow[i] {
								bad++
							}
						}
					}
				}
			}
			if bad > 0 {
				mu.Lock()
				mismatches += bad
				mu.Unlock()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if mismatches > 0 {
			t.Errorf("nProcs=%d: %d values differ from serial", nProcs, mismatches)
		}
	}
}

// TestParallelDiagnostics: globally reduced diagnostics match the serial
// values up to reduction reordering.
func TestParallelDiagnostics(t *testing.T) {
	s := grid.NewSpec(9, 13)
	const steps = 2
	const dt = 2e-3
	ref := runSerial(t, s, steps, dt)
	want := ref.Diagnose()

	l, err := NewLayout(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	checked := false
	err = mpi.Run(8, func(w *mpi.Comm) {
		r, err := NewRank(w, l, mhd.Default(), mhd.DefaultIC())
		if err != nil {
			t.Error(err)
			return
		}
		for n := 0; n < steps; n++ {
			r.Advance(dt)
		}
		d := r.Diagnose()
		if w.Rank() == 0 {
			mu.Lock()
			checked = true
			mu.Unlock()
			for _, c := range []struct {
				name       string
				got, wantV float64
			}{
				{"mass", d.Mass, want.Mass},
				{"kinetic", d.KineticE, want.KineticE},
				{"magnetic", d.MagneticE, want.MagneticE},
				{"internal", d.InternalE, want.InternalE},
				{"maxV", d.MaxV, want.MaxV},
				{"maxB", d.MaxB, want.MaxB},
			} {
				if math.Abs(c.got-c.wantV) > 1e-9*(1+math.Abs(c.wantV)) {
					t.Errorf("%s: parallel %v vs serial %v", c.name, c.got, c.wantV)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !checked {
		t.Fatal("rank 0 never compared")
	}
}

// TestParallelEstimateDT: all ranks agree on the reduced time step, and
// it matches the serial estimate.
func TestParallelEstimateDT(t *testing.T) {
	s := grid.NewSpec(9, 13)
	sv, err := mhd.NewSolver(s, mhd.Default(), mhd.DefaultIC())
	if err != nil {
		t.Fatal(err)
	}
	want := sv.EstimateDT(0.3)

	l, _ := NewLayout(s, 4)
	var mu sync.Mutex
	vals := map[float64]int{}
	err = mpi.Run(4, func(w *mpi.Comm) {
		r, err := NewRank(w, l, mhd.Default(), mhd.DefaultIC())
		if err != nil {
			t.Error(err)
			return
		}
		dt := r.EstimateDT(0.3)
		mu.Lock()
		vals[dt]++
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 {
		t.Fatalf("ranks disagree on dt: %v", vals)
	}
	for dt := range vals {
		if math.Abs(dt-want) > 1e-15 {
			t.Errorf("parallel dt %v vs serial %v", dt, want)
		}
	}
}

// TestGatherStateMatchesSerial: assembling the decomposed state on rank
// 0 reproduces the serial solver's patch nodes exactly, with the clock.
func TestGatherStateMatchesSerial(t *testing.T) {
	s := grid.NewSpec(9, 13)
	const steps = 3
	const dt = 2e-3
	ref := runSerial(t, s, steps, dt)

	l, err := NewLayout(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var gathered *mhd.Solver
	err = mpi.Run(8, func(w *mpi.Comm) {
		r, err := NewRank(w, l, mhd.Default(), mhd.DefaultIC())
		if err != nil {
			t.Error(err)
			return
		}
		for n := 0; n < steps; n++ {
			r.Advance(dt)
		}
		sv, err := r.GatherState()
		if err != nil {
			t.Error(err)
			return
		}
		if w.Rank() == 0 {
			mu.Lock()
			gathered = sv
			mu.Unlock()
		} else if sv != nil {
			t.Error("non-root rank got a solver")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if gathered == nil {
		t.Fatal("no gathered state")
	}
	if gathered.Time != ref.Time || gathered.Step != ref.Step {
		t.Errorf("clock %v/%d vs %v/%d", gathered.Time, gathered.Step, ref.Time, ref.Step)
	}
	for pi := range ref.Panels {
		p := ref.Panels[pi].Patch
		h := p.H
		a := ref.Panels[pi].U.Scalars()
		b := gathered.Panels[pi].U.Scalars()
		for vi := range a {
			for k := h; k < h+p.Np; k++ {
				for j := h; j < h+p.Nt; j++ {
					ra := a[vi].Row(j, k)
					rb := b[vi].Row(j, k)
					for i := h; i < h+p.Nr; i++ {
						if ra[i] != rb[i] {
							t.Fatalf("gathered state differs: panel %d var %d (%d,%d,%d)", pi, vi, i, j, k)
						}
					}
				}
			}
		}
	}
	// The gathered solver continues identically to the serial one.
	gathered.Advance(dt)
	ref.Advance(dt)
	for pi := range ref.Panels {
		a := ref.Panels[pi].U.Rho
		b := gathered.Panels[pi].U.Rho
		p := ref.Panels[pi].Patch
		h := p.H
		for k := h; k < h+p.Np; k++ {
			for j := h; j < h+p.Nt; j++ {
				ra, rb := a.Row(j, k), b.Row(j, k)
				for i := h; i < h+p.Nr; i++ {
					if ra[i] != rb[i] {
						t.Fatalf("gathered continuation diverged at panel %d (%d,%d,%d)", pi, i, j, k)
					}
				}
			}
		}
	}
}

// TestParallelMatchesSerialPseudoVacuum: the pseudo-vacuum magnetic wall
// uses the full post-overset halo refresh (its wall condition couples
// values across columns); it must stay bit-exact too.
func TestParallelMatchesSerialPseudoVacuum(t *testing.T) {
	s := grid.NewSpec(9, 13)
	const steps = 2
	const dt = 2e-3
	prm := mhd.Default()
	prm.MagBC = mhd.BCPseudoVacuum
	ic := mhd.DefaultIC()
	ic.SeedBAmp = 0.02

	ref, err := mhd.NewSolver(s, prm, ic)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < steps; n++ {
		ref.Advance(dt)
	}

	l, err := NewLayout(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	mismatches := 0
	err = mpi.Run(8, func(w *mpi.Comm) {
		r, err := NewRank(w, l, prm, ic)
		if err != nil {
			t.Error(err)
			return
		}
		for n := 0; n < steps; n++ {
			r.Advance(dt)
		}
		p := r.PL.Patch
		h := p.H
		local := r.PL.U.Scalars()
		global := ref.Panels[r.Panel].U.Scalars()
		bad := 0
		for vi := range local {
			for k := h; k < h+p.Np; k++ {
				for j := h; j < h+p.Nt; j++ {
					lrow := local[vi].Row(j, k)
					grow := global[vi].Row(j+p.JOff, k+p.KOff)
					for i := h; i < h+p.Nr; i++ {
						if lrow[i] != grow[i] {
							bad++
						}
					}
				}
			}
		}
		if bad > 0 {
			mu.Lock()
			mismatches += bad
			mu.Unlock()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if mismatches > 0 {
		t.Errorf("%d values differ from serial under pseudo-vacuum walls", mismatches)
	}
}

// TestScatterGatherRoundTrip: scattering a serial state into ranks and
// continuing reproduces the serial trajectory exactly — the decomposed
// restart path.
func TestScatterGatherRoundTrip(t *testing.T) {
	s := grid.NewSpec(9, 13)
	const dt = 2e-3
	// Build a serial state a few steps in.
	src := runSerial(t, s, 2, dt)
	ref := runSerial(t, s, 2, dt)
	ref.Advance(dt)
	ref.Advance(dt)

	l, err := NewLayout(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	mismatches := 0
	err = mpi.Run(8, func(w *mpi.Comm) {
		// Start ranks from a DIFFERENT initial condition, then scatter.
		ic := mhd.DefaultIC()
		ic.Seed = 99
		r, err := NewRank(w, l, mhd.Default(), ic)
		if err != nil {
			t.Error(err)
			return
		}
		var sv *mhd.Solver
		if w.Rank() == 0 {
			sv = src
		}
		if err := r.ScatterState(sv); err != nil {
			t.Error(err)
			return
		}
		r.Advance(dt)
		r.Advance(dt)
		p := r.PL.Patch
		h := p.H
		local := r.PL.U.Scalars()
		global := ref.Panels[r.Panel].U.Scalars()
		bad := 0
		for vi := range local {
			for k := h; k < h+p.Np; k++ {
				for j := h; j < h+p.Nt; j++ {
					lrow := local[vi].Row(j, k)
					grow := global[vi].Row(j+p.JOff, k+p.KOff)
					for i := h; i < h+p.Nr; i++ {
						if lrow[i] != grow[i] {
							bad++
						}
					}
				}
			}
		}
		if bad > 0 {
			mu.Lock()
			mismatches += bad
			mu.Unlock()
		}
		if r.StepN != ref.Step || r.Time != ref.Time {
			t.Errorf("clock after scatter+2 steps: %d/%v vs %d/%v", r.StepN, r.Time, ref.Step, ref.Time)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if mismatches > 0 {
		t.Errorf("%d values diverged after scatter restart", mismatches)
	}
}

// TestDroppedHaloMessageDeadline is acceptance criterion (a) at the
// solver level: dropping one halo message of the very first constraint
// application surfaces a deadline error that names the blocked
// (src, dst, tag) on the panel communicator, instead of hanging the run.
// Communicator ids are deterministic: the world is 0 and the first Split
// numbers the Yin panel 1 (color 0) and the Yang panel 2 (color 1); the
// 1x2 panel grid's phi-direction halo exchange sends rank 0 -> rank 1
// under tag tagHaloBase+3.
func TestDroppedHaloMessageDeadline(t *testing.T) {
	s := grid.NewSpec(9, 13)
	const nProcs = 4
	l, err := NewLayout(s, nProcs)
	if err != nil {
		t.Fatal(err)
	}
	if l.PT != 1 || l.PP != 2 {
		t.Fatalf("layout picked %dx%d per panel; test assumes 1x2", l.PT, l.PP)
	}
	plan := mpi.NewFaultPlan().Add(mpi.Fault{
		Comm: 1, Src: 0, Dst: 1, Tag: tagHaloBase + 3, Epoch: 0, Action: mpi.Drop,
	})
	err = mpi.RunWith(nProcs, mpi.RunConfig{Deadline: 500 * time.Millisecond, Faults: plan}, func(w *mpi.Comm) {
		if _, err := NewRank(w, l, mhd.Default(), mhd.DefaultIC()); err != nil {
			w.Abort(err)
		}
	})
	if err == nil {
		t.Fatal("dropped halo message did not surface a deadline error")
	}
	want := "Recv(src=0, dst=1, tag=3, comm=1)"
	if !strings.Contains(err.Error(), want) {
		t.Errorf("deadline error does not name the dropped halo envelope %q:\n%v", want, err)
	}
}

// TestKilledRankAbortsAdvance: a scripted rank kill during AdvanceScheme
// (via the Tick fault checkpoint) aborts the whole run promptly, with
// the surviving ranks woken out of their halo waits.
func TestKilledRankAbortsAdvance(t *testing.T) {
	s := grid.NewSpec(9, 13)
	l, err := NewLayout(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan := mpi.NewFaultPlan().Kill(2, 1)
	done := make(chan error, 1)
	go func() {
		done <- mpi.RunWith(4, mpi.RunConfig{Deadline: 20 * time.Second, Faults: plan}, func(w *mpi.Comm) {
			r, err := NewRank(w, l, mhd.Default(), mhd.DefaultIC())
			if err != nil {
				w.Abort(err)
			}
			for n := 0; n < 3; n++ {
				r.Advance(2e-3)
			}
		})
	}()
	select {
	case err := <-done:
		var rf *mpi.RankFailedError
		if !errors.As(err, &rf) || rf.Rank != 2 || rf.Step != 1 {
			t.Errorf("got %v, want the scripted kill of rank 2 at step 1", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run wedged after the rank kill")
	}
}
