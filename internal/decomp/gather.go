package decomp

import (
	"fmt"

	"repro/internal/mhd"
	"repro/internal/obs"
	"repro/internal/snapshot"
)

const tagGatherBase = 200

// GatherState assembles the full two-panel state on world rank 0 and
// returns it as a serial-equivalent solver (nil on every other rank).
// The assembled solver matches what a serial run of the same trajectory
// would hold at every patch node, so it can be checkpointed, analyzed or
// continued serially.
func (r *Rank) GatherState() (*mhd.Solver, error) {
	defer r.obs.Begin(obs.SpanGather).End()
	me := r.World.Rank()
	p := r.PL.Patch
	h := p.H

	// Pack this rank's interior block: 8 variables, radial-fastest over
	// the block's interior nodes.
	scalars := r.PL.U.Scalars()
	blockLen := p.Nr * p.Nt * p.Np
	buf := make([]float64, 0, 8*blockLen)
	for _, s := range scalars {
		for k := h; k < h+p.Np; k++ {
			for j := h; j < h+p.Nt; j++ {
				row := s.Row(j, k)
				buf = append(buf, row[h:h+p.Nr]...)
			}
		}
	}
	if me != 0 {
		r.World.Send(0, tagGatherBase, buf)
		return nil, nil
	}

	// Rank 0: rebuild a serial solver and fill every block.
	sv, err := mhd.NewSolver(r.Layout.Spec, r.Prm, mhd.InitialConditions{})
	if err != nil {
		return nil, err
	}
	place := func(world int, data []float64) {
		panel := r.Layout.PanelOf(world)
		patch := r.Layout.SubPatch(world, 1)
		dst := sv.Panels[panel].U.Scalars()
		pos := 0
		for _, s := range dst {
			for k := 0; k < patch.Np; k++ {
				for j := 0; j < patch.Nt; j++ {
					row := s.Row(j+patch.JOff+1, k+patch.KOff+1)
					copy(row[1:1+patch.Nr], data[pos:pos+patch.Nr])
					pos += patch.Nr
				}
			}
		}
	}
	place(0, buf)
	for src := 1; src < r.World.Size(); src++ {
		patch := r.Layout.SubPatch(src, 1)
		rbuf := make([]float64, 8*patch.Nr*patch.Nt*patch.Np)
		r.World.Recv(src, tagGatherBase, rbuf)
		place(src, rbuf)
	}
	sv.Time = r.Time
	sv.Step = r.StepN
	return sv, nil
}

const tagScatterBase = 210

// ScatterState distributes a full two-panel state (e.g. one read from a
// checkpoint) from world rank 0 into every rank's local block — the
// restart path of a decomposed campaign. On rank 0, src must hold the
// global state; other ranks pass nil. Halos, walls and rims are
// re-established by a constraint application afterwards.
func (r *Rank) ScatterState(src *mhd.Solver) error {
	if r.World.Rank() == 0 {
		if src == nil {
			return fmt.Errorf("decomp: rank 0 needs the source state")
		}
		return r.ScatterInterior(snapshot.InteriorOf(src))
	}
	return r.ScatterInterior(nil)
}

// ScatterInterior distributes a layout-neutral checkpoint payload
// (snapshot.ReadInterior) from world rank 0 into every rank's local
// block. Because the payload carries no decomposition imprint, the
// writer's world shape is irrelevant: a checkpoint written at any world
// size resumes under this rank's layout — the reshard-on-read half of
// elastic campaigns. On rank 0, in must hold the payload and its grid
// must match the layout exactly (resolution changes are rejected with a
// clear error); other ranks pass nil. Halos, walls and rims are
// re-established by a constraint application afterwards.
func (r *Rank) ScatterInterior(in *snapshot.Interior) error {
	defer r.obs.Begin(obs.SpanScatter).End()
	me := r.World.Rank()
	if me == 0 {
		if in == nil {
			return fmt.Errorf("decomp: rank 0 needs the source state")
		}
		if in.Spec != r.Layout.Spec {
			return fmt.Errorf("decomp: checkpoint grid %+v does not match layout %+v", in.Spec, r.Layout.Spec)
		}
		for dst := r.World.Size() - 1; dst >= 0; dst-- {
			patch := r.Layout.SubPatch(dst, 1)
			panel := int(r.Layout.PanelOf(dst))
			buf := make([]float64, 0, 8*patch.Nr*patch.Nt*patch.Np)
			for s := 0; s < 8; s++ {
				for k := 0; k < patch.Np; k++ {
					for j := 0; j < patch.Nt; j++ {
						buf = append(buf, in.Row(panel, s, j+patch.JOff, k+patch.KOff)...)
					}
				}
			}
			if dst == 0 {
				r.unpackBlock(buf)
				continue
			}
			r.World.Send(dst, tagScatterBase, buf)
		}
		r.Time = in.Time
		r.StepN = in.Step
	} else {
		p := r.PL.Patch
		buf := make([]float64, 8*p.Nr*p.Nt*p.Np)
		r.World.Recv(0, tagScatterBase, buf)
		r.unpackBlock(buf)
	}
	// Share the clock and re-establish halos/rims/walls.
	clock := []float64{r.Time, float64(r.StepN)}
	r.World.Bcast(0, clock)
	r.Time = clock[0]
	r.StepN = int(clock[1])
	r.applyConstraints()
	return nil
}

func (r *Rank) unpackBlock(buf []float64) {
	p := r.PL.Patch
	h := p.H
	pos := 0
	for _, s := range r.PL.U.Scalars() {
		for k := h; k < h+p.Np; k++ {
			for j := h; j < h+p.Nt; j++ {
				row := s.Row(j, k)
				copy(row[h:h+p.Nr], buf[pos:pos+p.Nr])
				pos += p.Nr
			}
		}
	}
}
