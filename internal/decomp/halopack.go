package decomp

import (
	"repro/internal/field"
	"repro/internal/grid"
)

// Direction indices of the HaloBufs staging buffers, one per Cartesian
// neighbour of a block.
const (
	dirNorth = iota
	dirSouth
	dirWest
	dirEast
)

// HaloBufs owns the preallocated pack/unpack staging buffers of one
// rank's halo and rim exchanges. Every buffer is sized once, for the
// largest exchange the rank ever performs (maxFields fields times the
// longest padded row extent), and reused for every phase of every step
// — the steady-state halo path performs zero allocations, which the
// decomp benchmarks assert with -benchmem.
//
// Reuse is safe because mpi.Send copies its payload synchronously: the
// moment Send returns, the staging buffer may be repacked, and receive
// buffers are consumed (Wait + unpack) within the same exchange phase
// that posted them.
type HaloBufs struct {
	nrP, ntP, npP int
	maxFields     int
	send, recv    [4][]float64
}

// NewHaloBufs sizes the staging buffers for a patch whose exchanges
// move at most maxFields fields at a time.
func NewHaloBufs(p *grid.Patch, maxFields int) *HaloBufs {
	nrP, ntP, npP := p.Padded()
	rows := ntP
	if npP > rows {
		rows = npP
	}
	n := maxFields * rows * nrP
	hb := &HaloBufs{nrP: nrP, ntP: ntP, npP: npP, maxFields: maxFields}
	for d := range hb.send {
		hb.send[d] = make([]float64, n)
		hb.recv[d] = make([]float64, n)
	}
	return hb
}

// PackPhi packs padded-phi column k of every field (full padded theta
// range, radial-fastest) into the dir-th send buffer and returns the
// filled prefix.
func (hb *HaloBufs) PackPhi(fields []*field.Scalar, k, dir int) []float64 {
	buf := hb.send[dir][:len(fields)*hb.ntP*hb.nrP]
	pos := 0
	for _, f := range fields {
		for j := 0; j < hb.ntP; j++ {
			pos += copy(buf[pos:], f.Row(j, k))
		}
	}
	return buf
}

// UnpackPhi scatters a PackPhi-layout buffer into padded-phi column k of
// every field.
func (hb *HaloBufs) UnpackPhi(fields []*field.Scalar, k int, buf []float64) {
	pos := 0
	for _, f := range fields {
		for j := 0; j < hb.ntP; j++ {
			copy(f.Row(j, k), buf[pos:pos+hb.nrP])
			pos += hb.nrP
		}
	}
}

// PackTheta packs padded-theta row j of every field (full padded phi
// range, carrying corner values) into the dir-th send buffer.
func (hb *HaloBufs) PackTheta(fields []*field.Scalar, j, dir int) []float64 {
	buf := hb.send[dir][:len(fields)*hb.npP*hb.nrP]
	pos := 0
	for _, f := range fields {
		for k := 0; k < hb.npP; k++ {
			pos += copy(buf[pos:], f.Row(j, k))
		}
	}
	return buf
}

// UnpackTheta scatters a PackTheta-layout buffer into padded-theta row j
// of every field.
func (hb *HaloBufs) UnpackTheta(fields []*field.Scalar, j int, buf []float64) {
	pos := 0
	for _, f := range fields {
		for k := 0; k < hb.npP; k++ {
			copy(f.Row(j, k), buf[pos:pos+hb.nrP])
			pos += hb.nrP
		}
	}
}

// PackRowCells packs the rim-crossing cells (j, k in cols) of every
// field into the dir-th send buffer — the thin post-overset rim
// refresh payload.
func (hb *HaloBufs) PackRowCells(fields []*field.Scalar, j int, cols []int, dir int) []float64 {
	buf := hb.send[dir][:len(fields)*len(cols)*hb.nrP]
	pos := 0
	for _, f := range fields {
		for _, k := range cols {
			pos += copy(buf[pos:], f.Row(j, k))
		}
	}
	return buf
}

// UnpackRowCells scatters a PackRowCells-layout buffer.
func (hb *HaloBufs) UnpackRowCells(fields []*field.Scalar, j int, cols []int, buf []float64) {
	pos := 0
	for _, f := range fields {
		for _, k := range cols {
			copy(f.Row(j, k), buf[pos:pos+hb.nrP])
			pos += hb.nrP
		}
	}
}

// PackColCells packs the rim-crossing cells (j in rows, k) of every
// field into the dir-th send buffer.
func (hb *HaloBufs) PackColCells(fields []*field.Scalar, k int, rows []int, dir int) []float64 {
	buf := hb.send[dir][:len(fields)*len(rows)*hb.nrP]
	pos := 0
	for _, f := range fields {
		for _, j := range rows {
			pos += copy(buf[pos:], f.Row(j, k))
		}
	}
	return buf
}

// UnpackColCells scatters a PackColCells-layout buffer.
func (hb *HaloBufs) UnpackColCells(fields []*field.Scalar, k int, rows []int, buf []float64) {
	pos := 0
	for _, f := range fields {
		for _, j := range rows {
			copy(f.Row(j, k), buf[pos:pos+hb.nrP])
			pos += hb.nrP
		}
	}
}

// PackPhiRange packs padded-phi column k of every field over theta rows
// j in [j0, j1) only — the corner-free message of the overlapped
// exchange, which restricts both directions to the owned ranges so no
// halo-of-halo values ever travel.
func (hb *HaloBufs) PackPhiRange(fields []*field.Scalar, k, j0, j1, dir int) []float64 {
	buf := hb.send[dir][:len(fields)*(j1-j0)*hb.nrP]
	pos := 0
	for _, f := range fields {
		for j := j0; j < j1; j++ {
			pos += copy(buf[pos:], f.Row(j, k))
		}
	}
	return buf
}

// UnpackPhiRange scatters a PackPhiRange-layout buffer into padded-phi
// column k, theta rows [j0, j1).
func (hb *HaloBufs) UnpackPhiRange(fields []*field.Scalar, k, j0, j1 int, buf []float64) {
	pos := 0
	for _, f := range fields {
		for j := j0; j < j1; j++ {
			copy(f.Row(j, k), buf[pos:pos+hb.nrP])
			pos += hb.nrP
		}
	}
}

// PackThetaRange packs padded-theta row j of every field over phi
// columns k in [k0, k1) only.
func (hb *HaloBufs) PackThetaRange(fields []*field.Scalar, j, k0, k1, dir int) []float64 {
	buf := hb.send[dir][:len(fields)*(k1-k0)*hb.nrP]
	pos := 0
	for _, f := range fields {
		for k := k0; k < k1; k++ {
			pos += copy(buf[pos:], f.Row(j, k))
		}
	}
	return buf
}

// UnpackThetaRange scatters a PackThetaRange-layout buffer into
// padded-theta row j, phi columns [k0, k1).
func (hb *HaloBufs) UnpackThetaRange(fields []*field.Scalar, j, k0, k1 int, buf []float64) {
	pos := 0
	for _, f := range fields {
		for k := k0; k < k1; k++ {
			copy(f.Row(j, k), buf[pos:pos+hb.nrP])
			pos += hb.nrP
		}
	}
}

// RecvRange returns the dir-th receive buffer sized for a corner-free
// message of nFields fields over nRows rows or columns.
func (hb *HaloBufs) RecvRange(nFields, nRows, dir int) []float64 {
	return hb.recv[dir][:nFields*nRows*hb.nrP]
}

// RecvTheta returns the dir-th receive buffer sized for a theta-phase
// message of nFields fields.
func (hb *HaloBufs) RecvTheta(nFields, dir int) []float64 {
	return hb.recv[dir][:nFields*hb.npP*hb.nrP]
}

// RecvPhi returns the dir-th receive buffer sized for a phi-phase
// message of nFields fields.
func (hb *HaloBufs) RecvPhi(nFields, dir int) []float64 {
	return hb.recv[dir][:nFields*hb.ntP*hb.nrP]
}

// RecvCells returns the dir-th receive buffer sized for a rim-refresh
// message of nFields fields over nCells rim-crossing cells.
func (hb *HaloBufs) RecvCells(nFields, nCells, dir int) []float64 {
	return hb.recv[dir][:nFields*nCells*hb.nrP]
}
