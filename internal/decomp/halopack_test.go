package decomp

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/mhd"
	"repro/internal/mpi"
)

func testPatchAndFields(tb testing.TB, nFields int) (*grid.Patch, []*field.Scalar) {
	tb.Helper()
	s := grid.NewSpec(9, 13)
	p := grid.NewPatch(s, grid.Yin, 1)
	fields := make([]*field.Scalar, nFields)
	for fi := range fields {
		f := field.NewScalar(field.Shape{Nr: p.Nr, Nt: p.Nt, Np: p.Np, H: p.H})
		for n := range f.Data {
			f.Data[n] = float64(fi*1000+n) * 0.001
		}
		fields[fi] = f
	}
	return p, fields
}

// TestHaloPackRoundTrip checks that every pack/unpack pair of the
// HaloBufs arena is the identity on the packed rows.
func TestHaloPackRoundTrip(t *testing.T) {
	p, fields := testPatchAndFields(t, 3)
	_, _, npP := p.Padded()
	hb := NewHaloBufs(p, 3)
	h := p.H

	ref := make([]*field.Scalar, len(fields))
	for i, f := range fields {
		ref[i] = f.Clone()
	}
	restore := func() {
		for i, f := range fields {
			f.CopyFrom(ref[i])
		}
	}
	mustEqualRow := func(name string, got, want []float64) {
		t.Helper()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: row corrupted at %d: got %v want %v", name, i, got[i], want[i])
			}
		}
	}

	// Phi: pack column h+1, unpack into column h+2.
	buf := hb.PackPhi(fields, h+1, dirWest)
	hb.UnpackPhi(fields, h+2, buf)
	for fi, f := range fields {
		for j := 0; j < p.Nt+2*h; j++ {
			mustEqualRow(fmt.Sprintf("phi field %d row %d", fi, j), f.Row(j, h+2), ref[fi].Row(j, h+1))
		}
	}
	restore()

	// Theta: pack row h+1, unpack into row h+2 (full padded phi range).
	buf = hb.PackTheta(fields, h+1, dirNorth)
	hb.UnpackTheta(fields, h+2, buf)
	for fi, f := range fields {
		for k := 0; k < npP; k++ {
			mustEqualRow(fmt.Sprintf("theta field %d col %d", fi, k), f.Row(h+2, k), ref[fi].Row(h+1, k))
		}
	}
	restore()

	// Rim cells.
	cols := []int{h, h + p.Np - 1}
	buf = hb.PackRowCells(fields, h+1, cols, dirSouth)
	hb.UnpackRowCells(fields, h+3, cols, buf)
	for fi, f := range fields {
		for _, k := range cols {
			mustEqualRow(fmt.Sprintf("rowcells field %d col %d", fi, k), f.Row(h+3, k), ref[fi].Row(h+1, k))
		}
	}
	restore()

	rows := []int{h, h + p.Nt - 1}
	buf = hb.PackColCells(fields, h+1, rows, dirEast)
	hb.UnpackColCells(fields, h+3, rows, buf)
	for fi, f := range fields {
		for _, j := range rows {
			mustEqualRow(fmt.Sprintf("colcells field %d row %d", fi, j), f.Row(j, h+3), ref[fi].Row(j, h+1))
		}
	}
}

// TestHaloPackZeroAlloc pins the tentpole property: after construction,
// the pack/unpack staging path performs zero allocations.
func TestHaloPackZeroAlloc(t *testing.T) {
	p, fields := testPatchAndFields(t, 8)
	hb := NewHaloBufs(p, 8)
	h := p.H
	cols := []int{h, h + p.Np - 1}
	rows := []int{h, h + p.Nt - 1}

	allocs := testing.AllocsPerRun(100, func() {
		buf := hb.PackPhi(fields, h, dirWest)
		hb.UnpackPhi(fields, h, buf)
		buf = hb.PackTheta(fields, h, dirNorth)
		hb.UnpackTheta(fields, h, buf)
		buf = hb.PackRowCells(fields, h, cols, dirSouth)
		hb.UnpackRowCells(fields, h, cols, buf)
		buf = hb.PackColCells(fields, h, rows, dirEast)
		hb.UnpackColCells(fields, h, rows, buf)
		_ = hb.RecvPhi(8, dirEast)
		_ = hb.RecvTheta(8, dirSouth)
		_ = hb.RecvCells(8, 2, dirWest)
	})
	if allocs != 0 {
		t.Fatalf("halo pack/unpack allocates %v allocs/op in steady state, want 0", allocs)
	}
}

// BenchmarkHaloPackUnpack is the committed zero-alloc benchmark: run
// with -benchmem, it must report 0 allocs/op.
func BenchmarkHaloPackUnpack(b *testing.B) {
	p, fields := testPatchAndFields(b, 8)
	hb := NewHaloBufs(p, 8)
	h := p.H
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		buf := hb.PackPhi(fields, h, dirWest)
		hb.UnpackPhi(fields, h+p.Np-1, buf)
		buf = hb.PackTheta(fields, h, dirNorth)
		hb.UnpackTheta(fields, h+p.Nt-1, buf)
	}
}

// BenchmarkHaloExchange measures one full halo exchange (8 state
// fields, both phases) across a 1x2 process grid, including the
// message-passing runtime.
func BenchmarkHaloExchange(b *testing.B) {
	s := grid.NewSpec(9, 13)
	l, err := NewLayout(s, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	err = mpi.Run(2, func(w *mpi.Comm) {
		r, err := NewRank(w, l, mhd.Default(), mhd.DefaultIC())
		if err != nil {
			w.Abort(err)
		}
		defer r.Close()
		for n := 0; n < b.N; n++ {
			r.exchangeHalos(r.stateFields(), tagHaloBase)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// TestParallelKernelHaloStress drives pooled stencil kernels and halo
// exchanges concurrently across 4 ranks — the -race gate for the
// intra-rank parallelism layer: every rank runs a 2-worker pool while
// exchanging halos, rims and overset donations with its peers.
func TestParallelKernelHaloStress(t *testing.T) {
	s := grid.NewSpec(9, 13)
	l, err := NewLayout(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	err = mpi.Run(4, func(w *mpi.Comm) {
		r, err := NewRankWorkers(w, l, mhd.Default(), mhd.DefaultIC(), 2)
		if err != nil {
			w.Abort(err)
		}
		defer r.Close()
		dt := r.EstimateDT(0.3)
		for n := 0; n < 3; n++ {
			r.Advance(dt)
		}
		d := r.Diagnose()
		if math.IsNaN(d.Mass) || d.Mass <= 0 {
			w.Abort(fmt.Errorf("rank %d: bad mass %v", w.Rank(), d.Mass))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWorkersMatchSerial pins bit-identity of the pooled decomposed
// solver: the same campaign advanced with 1-worker (serial) kernels and
// with 3-worker pools produces byte-identical states.
func TestWorkersMatchSerial(t *testing.T) {
	s := grid.NewSpec(9, 13)
	const nProcs = 4
	l, err := NewLayout(s, nProcs)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *mhd.Solver {
		var sv *mhd.Solver
		err := mpi.Run(nProcs, func(w *mpi.Comm) {
			r, err := NewRankWorkers(w, l, mhd.Default(), mhd.DefaultIC(), workers)
			if err != nil {
				w.Abort(err)
			}
			defer r.Close()
			dt := r.EstimateDT(0.3)
			for n := 0; n < 5; n++ {
				r.Advance(dt)
			}
			g, err := r.GatherState()
			if err != nil {
				w.Abort(err)
			}
			if w.Rank() == 0 {
				sv = g
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return sv
	}
	serial := run(1)
	pooled := run(3)
	for pi, pl := range serial.Panels {
		ps := pooled.Panels[pi]
		for vi, f := range pl.U.Scalars() {
			g := ps.U.Scalars()[vi]
			for n := range f.Data {
				if f.Data[n] != g.Data[n] {
					t.Fatalf("panel %d var %d index %d: serial %x pooled %x",
						pi, vi, n, f.Data[n], g.Data[n])
				}
			}
		}
	}
}
