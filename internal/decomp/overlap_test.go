package decomp

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/mhd"
	"repro/internal/mpi"
)

// solverHash digests every owned node of every state variable of both
// panels in canonical order (variable, phi, theta, radius) — the byte
// identity the overlap suite pins across schedules and world sizes.
func solverHash(sv *mhd.Solver) [32]byte {
	hsh := sha256.New()
	var b [8]byte
	for _, pl := range sv.Panels {
		p := pl.Patch
		h := p.H
		for _, s := range pl.U.Scalars() {
			for k := h; k < h+p.Np; k++ {
				for j := h; j < h+p.Nt; j++ {
					row := s.Row(j, k)
					for i := h; i < h+p.Nr; i++ {
						binary.LittleEndian.PutUint64(b[:], math.Float64bits(row[i]))
						hsh.Write(b[:])
					}
				}
			}
		}
	}
	var out [32]byte
	copy(out[:], hsh.Sum(nil))
	return out
}

// delayEveryHalo scripts a drop of the first and a delay of the next
// few occurrences of every halo/rim/overset envelope any world up to
// size 8 can produce, on the world communicator and both panel
// communicators. Entries matching no real traffic are inert. Delaying
// every message maximizes the skew between the interior compute and the
// rim finish of the overlapped schedule: the interior work completes
// long before any halo arrives, so any schedule bug that lets rim
// stencils read pre-exchange halo bytes would surface as a hash
// mismatch. The plan needs Reliability on — a delayed bare message may
// be overtaken by the next send of the same envelope (the injector
// models a misbehaving transport), and only the sequenced reliable
// path restores FIFO order; that combination is exactly the regime the
// determinism acceptance pins.
func delayEveryHalo(d time.Duration, epochs int) *mpi.FaultPlan {
	p := mpi.NewFaultPlan()
	pairs := [][2]int{
		{0, 1}, {1, 0}, {0, 2}, {2, 0}, {0, 3}, {3, 0},
		{1, 2}, {2, 1}, {1, 3}, {3, 1}, {2, 3}, {3, 2},
	}
	for _, tag := range ExchangeTags() {
		for comm := 0; comm <= 2; comm++ {
			for _, pr := range pairs {
				p.Add(mpi.Fault{
					Comm: comm, Src: pr[0], Dst: pr[1], Tag: tag,
					Epoch: 0, Action: mpi.Drop,
				})
				for e := 1; e <= epochs; e++ {
					p.Add(mpi.Fault{
						Comm: comm, Src: pr[0], Dst: pr[1], Tag: tag,
						Epoch: e, Action: mpi.Delay, Delay: d,
					})
				}
			}
		}
	}
	return p
}

// TestOverlapByteIdentity is the overlap correctness gate: for every
// Advance scheme, the overlapped schedule under an adversarial
// all-halo-tags delay plan produces a state sha256-identical to the
// non-overlapped (sequential exchange-then-compute) schedule and to the
// world-size-1 serial solver, at world sizes 2, 4 and 8. (The layout
// requires an even process count, so "world 1" is the serial solver —
// which also runs the fused kernels, closing the loop with the fusion
// equivalence suite.)
func TestOverlapByteIdentity(t *testing.T) {
	s := grid.NewSpec(9, 13)
	const steps = 2
	const dt = 2e-3

	run := func(t *testing.T, scheme mhd.Integrator, nProcs int, overlapped bool, faults *mpi.FaultPlan) [32]byte {
		t.Helper()
		l, err := NewLayout(s, nProcs)
		if err != nil {
			t.Fatal(err)
		}
		cfg := mpi.RunConfig{Deadline: 60 * time.Second, Faults: faults}
		if faults != nil {
			// Drops need retransmission and delayed messages must not be
			// overtaken by later sends of the same envelope; the reliable
			// transport provides both.
			cfg.Reliability = &mpi.Reliability{AckTimeout: 3 * time.Millisecond}
		}
		var hash [32]byte
		err = mpi.RunWith(nProcs, cfg, func(w *mpi.Comm) {
			r, err := NewRank(w, l, mhd.Default(), mhd.DefaultIC())
			if err != nil {
				w.Abort(err)
				return
			}
			r.SetOverlap(overlapped)
			for n := 0; n < steps; n++ {
				r.AdvanceScheme(dt, scheme)
			}
			sv, err := r.GatherState()
			if err != nil {
				w.Abort(err)
				return
			}
			if w.Rank() == 0 {
				hash = solverHash(sv)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return hash
	}

	for _, scheme := range []mhd.Integrator{mhd.RK4, mhd.RK2, mhd.Euler} {
		t.Run(scheme.String(), func(t *testing.T) {
			sv, err := mhd.NewSolver(s, mhd.Default(), mhd.DefaultIC())
			if err != nil {
				t.Fatal(err)
			}
			sv.Scheme = scheme
			for n := 0; n < steps; n++ {
				sv.Advance(dt)
			}
			golden := solverHash(sv)

			for _, nProcs := range []int{2, 4, 8} {
				if got := run(t, scheme, nProcs, false, nil); got != golden {
					t.Errorf("world %d: non-overlapped hash %x differs from serial golden %x", nProcs, got, golden)
				}
				plan := delayEveryHalo(2*time.Millisecond, 3)
				if got := run(t, scheme, nProcs, true, plan); got != golden {
					t.Errorf("world %d: overlapped+delayed hash %x differs from serial golden %x", nProcs, got, golden)
				}
			}
		})
	}
}
