package decomp

import (
	"fmt"

	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/mhd"
	"repro/internal/mpi"
	"repro/internal/overset"
)

// Tag spaces for the three communication phases of a stage.
const (
	tagHaloBase    = 0   // +0..3 by direction
	tagHaloBBase   = 8   // +0..3, magnetic-field halo refresh
	tagHaloAuxBase = 16  // +0..3, differentiated-intermediate halo refresh
	tagRimBase     = 24  // +0..3, post-overset rim-crossing cell refresh
	tagOversetBase = 100 // + receiver-specific is unnecessary: one msg per peer
)

// Rank is one process of the parallel yycore run: a block of one panel,
// with its neighbour links, halo buffers, and its share of the overset
// exchange plan.
type Rank struct {
	World  *mpi.Comm
	Cart   *mpi.Cart
	Layout *Layout
	Panel  grid.Panel
	PL     *mhd.Panel
	Prm    mhd.Params

	Time  float64
	StepN int

	// Overset plan, grouped by peer world rank; target order follows the
	// global plan order on both sides, so messages pack and unpack
	// identically without coordination.
	oversetSend map[int][]overset.Target
	oversetRecv map[int][]overset.Target
	peersSend   []int // sorted peer lists for deterministic iteration
	peersRecv   []int

	nrP int // padded radial extent (column length)
}

// NewRank builds the rank-local solver for world rank w of the layout,
// splits the world into panels, creates the panel's Cartesian process
// grid, initializes the local state, and applies all constraints.
func NewRank(world *mpi.Comm, l *Layout, prm mhd.Params, ic mhd.InitialConditions) (*Rank, error) {
	if world.Size() != l.NProcs {
		return nil, fmt.Errorf("decomp: layout wants %d processes, world has %d", l.NProcs, world.Size())
	}
	panel := l.PanelOf(world.Rank())
	// MPI_COMM_SPLIT into the Yin and Yang panels.
	pcomm := world.Split(int(panel), world.Rank())
	// MPI_CART_CREATE within the panel.
	cart, err := pcomm.CartCreate2D(l.PT, l.PP)
	if err != nil {
		return nil, err
	}
	patch := l.SubPatch(world.Rank(), 1)
	pl := mhd.NewPanel(patch, prm.Omega)
	mhd.InitPanel(pl, prm, ic)

	r := &Rank{
		World:  world,
		Cart:   cart,
		Layout: l,
		Panel:  panel,
		PL:     pl,
		Prm:    prm,
		nrP:    l.Spec.Nr + 2*patch.H,
	}
	if err := r.buildOversetPlan(); err != nil {
		return nil, err
	}
	r.applyConstraints()
	return r, nil
}

// buildOversetPlan computes the global rim-interpolation plan (identical
// on every rank) and keeps the entries where this rank is the donor or
// the receiver, grouped by the peer's world rank.
func (r *Rank) buildOversetPlan() error {
	plan, err := overset.NewPlan(r.Layout.Spec)
	if err != nil {
		return err
	}
	r.oversetSend = map[int][]overset.Target{}
	r.oversetRecv = map[int][]overset.Target{}
	me := r.World.Rank()
	for _, t := range plan.Targets {
		for _, p := range []grid.Panel{grid.Yin, grid.Yang} {
			recvRank := r.Layout.OwnerOf(p, t.Recv.J, t.Recv.K)
			donorRank := r.Layout.OwnerOf(p.Other(), t.DJ, t.DK)
			if me == donorRank {
				r.oversetSend[recvRank] = append(r.oversetSend[recvRank], t)
			}
			if me == recvRank {
				r.oversetRecv[donorRank] = append(r.oversetRecv[donorRank], t)
			}
		}
	}
	r.peersSend = sortedKeys(r.oversetSend)
	r.peersRecv = sortedKeys(r.oversetRecv)
	return nil
}

func sortedKeys(m map[int][]overset.Target) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// exchangeHalos swaps one halo layer of every field with the four
// nearest neighbours inside the panel (MPI_SEND / MPI_IRECV between
// MPI_CART_SHIFT neighbours in the paper). Theta-direction messages span
// the interior phi range and vice versa; corner halos are not needed by
// the axis-aligned stencils.
func (r *Rank) exchangeHalos(fields []*field.Scalar, tagBase int) {
	north, south, west, east := r.Cart.Neighbours()
	p := r.PL.Patch
	h := p.H
	nrP := r.nrP

	_, ntP, npP := p.Padded()

	// Theta-direction messages span the FULL padded phi range: the phi
	// exchange runs first, so the theta messages carry the freshly filled
	// phi-halo values into the diagonal (corner) halo cells. Corner halos
	// are not needed by the axis-aligned stencils, but the overset donors
	// interpolate from 2x2 node cells that can straddle a block corner.
	packTheta := func(j int) []float64 {
		buf := make([]float64, 0, len(fields)*npP*nrP)
		for _, f := range fields {
			for k := 0; k < npP; k++ {
				buf = append(buf, f.Row(j, k)...)
			}
		}
		return buf
	}
	unpackTheta := func(j int, buf []float64) {
		pos := 0
		for _, f := range fields {
			for k := 0; k < npP; k++ {
				copy(f.Row(j, k), buf[pos:pos+nrP])
				pos += nrP
			}
		}
	}
	packPhi := func(k int) []float64 {
		buf := make([]float64, 0, len(fields)*ntP*nrP)
		for _, f := range fields {
			for j := 0; j < ntP; j++ {
				buf = append(buf, f.Row(j, k)...)
			}
		}
		return buf
	}
	unpackPhi := func(k int, buf []float64) {
		pos := 0
		for _, f := range fields {
			for j := 0; j < ntP; j++ {
				copy(f.Row(j, k), buf[pos:pos+nrP])
				pos += nrP
			}
		}
	}

	// Each phase follows the paper's non-blocking pattern: post
	// MPI_IRECV for both neighbours first, send, then complete each
	// receive with Wait before unpacking (the ordering the irecv-wait
	// analyzer in cmd/yyvet enforces). The phases cannot overlap each
	// other: theta packing must see the freshly unpacked phi halos.

	// Phase 1: phi direction.
	var reqEast, reqWest *mpi.Request
	var bufEast, bufWest []float64
	if east >= 0 {
		bufEast = make([]float64, len(fields)*ntP*nrP)
		reqEast = r.Cart.Irecv(east, tagBase+2, bufEast)
	}
	if west >= 0 {
		bufWest = make([]float64, len(fields)*ntP*nrP)
		reqWest = r.Cart.Irecv(west, tagBase+3, bufWest)
	}
	if west >= 0 {
		r.Cart.Send(west, tagBase+2, packPhi(h))
	}
	if east >= 0 {
		r.Cart.Send(east, tagBase+3, packPhi(h+p.Np-1))
	}
	if reqEast != nil {
		reqEast.Wait()
		unpackPhi(h+p.Np, bufEast)
	}
	if reqWest != nil {
		reqWest.Wait()
		unpackPhi(h-1, bufWest)
	}

	// Phase 2: theta direction, now carrying phi halos.
	var reqNorth, reqSouth *mpi.Request
	var bufNorth, bufSouth []float64
	if south >= 0 {
		bufSouth = make([]float64, len(fields)*npP*nrP)
		reqSouth = r.Cart.Irecv(south, tagBase+0, bufSouth)
	}
	if north >= 0 {
		bufNorth = make([]float64, len(fields)*npP*nrP)
		reqNorth = r.Cart.Irecv(north, tagBase+1, bufNorth)
	}
	if north >= 0 {
		r.Cart.Send(north, tagBase+0, packTheta(h))
	}
	if south >= 0 {
		r.Cart.Send(south, tagBase+1, packTheta(h+p.Nt-1))
	}
	if reqSouth != nil {
		reqSouth.Wait()
		unpackTheta(h+p.Nt, bufSouth)
	}
	if reqNorth != nil {
		reqNorth.Wait()
		unpackTheta(h-1, bufNorth)
	}
}

// oversetExchange performs the distributed Yin<->Yang rim interpolation
// for the whole state (rho, p, F, A). Donors interpolate columns from
// their interior-plus-halo data and send one message per receiving peer
// under the world communicator; receivers scatter into their rim nodes.
// Eight columns flow per target: two scalars and two rotated vectors.
func (r *Rank) oversetExchange() {
	p := r.PL.Patch
	h := p.H
	nrP := r.nrP
	u := &r.PL.U

	// Post one non-blocking receive per donating peer before any work,
	// so every incoming rim message has a matching MPI_IRECV in flight
	// while this rank interpolates its own donations.
	recvBufs := make([][]float64, len(r.peersRecv))
	recvReqs := make([]*mpi.Request, len(r.peersRecv))
	for pi, peer := range r.peersRecv {
		recvBufs[pi] = make([]float64, len(r.oversetRecv[peer])*8*nrP)
		recvReqs[pi] = r.World.Irecv(peer, tagOversetBase, recvBufs[pi])
	}

	// Donate.
	for _, peer := range r.peersSend {
		targets := r.oversetSend[peer]
		buf := make([]float64, 0, len(targets)*8*nrP)
		col := make([]float64, nrP)
		colT := make([]float64, nrP)
		colP := make([]float64, nrP)
		for _, t := range targets {
			ldj := t.DJ - p.JOff + h
			ldk := t.DK - p.KOff + h
			gather := func(f *field.Scalar, dst []float64) {
				r0 := f.Row(ldj, ldk)
				r1 := f.Row(ldj+1, ldk)
				r2 := f.Row(ldj, ldk+1)
				r3 := f.Row(ldj+1, ldk+1)
				for i := range dst {
					dst[i] = t.W[0]*r0[i] + t.W[1]*r1[i] + t.W[2]*r2[i] + t.W[3]*r3[i]
				}
			}
			gather(u.Rho, col)
			buf = append(buf, col...)
			gather(u.P, col)
			buf = append(buf, col...)
			for _, v := range []*field.Vector{u.F, u.A} {
				gather(v.R, col)
				gather(v.T, colT)
				gather(v.P, colP)
				for i := range colT {
					colT[i], colP[i] = t.Rot.Apply(colT[i], colP[i])
				}
				buf = append(buf, col...)
				buf = append(buf, colT...)
				buf = append(buf, colP...)
			}
		}
		r.World.Send(peer, tagOversetBase, buf)
	}

	// Receive: complete each posted request, then scatter.
	for pi, peer := range r.peersRecv {
		targets := r.oversetRecv[peer]
		recvReqs[pi].Wait()
		buf := recvBufs[pi]
		pos := 0
		take := func(dst []float64) {
			copy(dst, buf[pos:pos+nrP])
			pos += nrP
		}
		for _, t := range targets {
			lj := t.Recv.J - p.JOff + h
			lk := t.Recv.K - p.KOff + h
			take(u.Rho.Row(lj, lk))
			take(u.P.Row(lj, lk))
			for _, v := range []*field.Vector{u.F, u.A} {
				take(v.R.Row(lj, lk))
				take(v.T.Row(lj, lk))
				take(v.P.Row(lj, lk))
			}
		}
	}
}

// stateFields lists the eight state scalars for halo exchange.
func (r *Rank) stateFields() []*field.Scalar {
	s := r.PL.U.Scalars()
	return s[:]
}

// applyConstraints mirrors the serial solver's constraint application:
// refresh halos (the overset donors interpolate from interior-plus-halo
// data), impose walls, run the overset exchange, re-impose walls at the
// rim columns, and refresh halos once more so that halo copies of the
// partner blocks' rim columns carry their post-overset values — without
// the second refresh, stencils at block seams adjacent to the panel rim
// would consume stale rim data that the serial solver never sees.
func (r *Rank) applyConstraints() {
	r.exchangeHalos(r.stateFields(), tagHaloBase)
	mhd.ApplyWallBC(r.PL, r.Prm)
	r.oversetExchange()
	mhd.ApplyWallBC(r.PL, r.Prm)
	// The overset exchange rewrote the panel-rim rows and columns, so
	// neighbouring blocks' halo copies of rim-crossing cells are stale.
	// Those cells feed kept results through one chain only: A at a rim
	// cell -> B = curl A at a rim-column node -> J = curl B at an
	// adjacent interior node. A thin refresh of just the rim-crossing
	// cells (at most two radial columns per direction) restores
	// serial-equivalence at a tiny fraction of a full halo exchange.
	// The pseudo-vacuum magnetic wall additionally couples wall values
	// across several columns, so it falls back to the full exchange.
	if r.Prm.MagBC == mhd.BCConfined {
		r.rimRefresh()
		return
	}
	// Pseudo-vacuum: the wall recomputation reads angular neighbours of
	// the wall rows, so it must see post-overset rim data; re-impose the
	// walls on fresh halos and share the result.
	r.exchangeHalos(r.stateFields(), tagHaloBase)
	mhd.ApplyWallBC(r.PL, r.Prm)
	r.exchangeHalos(r.stateFields(), tagHaloBase)
}

// rimRefresh re-sends only the halo cells that sit on the panel's global
// rim rows/columns after the overset exchange rewrote them.
func (r *Rank) rimRefresh() {
	north, south, west, east := r.Cart.Neighbours()
	p := r.PL.Patch
	h := p.H
	nrP := r.nrP
	fields := r.stateFields()
	spec := r.Layout.Spec

	// Local padded indices of the global rim columns/rows this block owns.
	var rimCols, rimRows []int
	if p.KOff == 0 {
		rimCols = append(rimCols, h)
	}
	if p.KOff+p.Np == spec.Np {
		rimCols = append(rimCols, h+p.Np-1)
	}
	if p.JOff == 0 {
		rimRows = append(rimRows, h)
	}
	if p.JOff+p.Nt == spec.Nt {
		rimRows = append(rimRows, h+p.Nt-1)
	}

	packRowCells := func(j int) []float64 {
		buf := make([]float64, 0, len(fields)*len(rimCols)*nrP)
		for _, f := range fields {
			for _, k := range rimCols {
				buf = append(buf, f.Row(j, k)...)
			}
		}
		return buf
	}
	unpackRowCells := func(j int, buf []float64) {
		pos := 0
		for _, f := range fields {
			for _, k := range rimCols {
				copy(f.Row(j, k), buf[pos:pos+nrP])
				pos += nrP
			}
		}
	}
	packColCells := func(k int) []float64 {
		buf := make([]float64, 0, len(fields)*len(rimRows)*nrP)
		for _, f := range fields {
			for _, j := range rimRows {
				buf = append(buf, f.Row(j, k)...)
			}
		}
		return buf
	}
	unpackColCells := func(k int, buf []float64) {
		pos := 0
		for _, f := range fields {
			for _, j := range rimRows {
				copy(f.Row(j, k), buf[pos:pos+nrP])
				pos += nrP
			}
		}
	}

	// Theta neighbours share this block's column range, so the same
	// rimCols predicate holds on both sides; likewise for rows in phi.
	// Posted-receive pattern as in exchangeHalos: Irecv, send, Wait,
	// unpack.
	if len(rimCols) > 0 {
		var reqSouth, reqNorth *mpi.Request
		var bufSouth, bufNorth []float64
		if south >= 0 {
			bufSouth = make([]float64, len(fields)*len(rimCols)*nrP)
			reqSouth = r.Cart.Irecv(south, tagRimBase+0, bufSouth)
		}
		if north >= 0 {
			bufNorth = make([]float64, len(fields)*len(rimCols)*nrP)
			reqNorth = r.Cart.Irecv(north, tagRimBase+1, bufNorth)
		}
		if north >= 0 {
			r.Cart.Send(north, tagRimBase+0, packRowCells(h))
		}
		if south >= 0 {
			r.Cart.Send(south, tagRimBase+1, packRowCells(h+p.Nt-1))
		}
		if reqSouth != nil {
			reqSouth.Wait()
			unpackRowCells(h+p.Nt, bufSouth)
		}
		if reqNorth != nil {
			reqNorth.Wait()
			unpackRowCells(h-1, bufNorth)
		}
	}
	if len(rimRows) > 0 {
		var reqEast, reqWest *mpi.Request
		var bufEast, bufWest []float64
		if east >= 0 {
			bufEast = make([]float64, len(fields)*len(rimRows)*nrP)
			reqEast = r.Cart.Irecv(east, tagRimBase+2, bufEast)
		}
		if west >= 0 {
			bufWest = make([]float64, len(fields)*len(rimRows)*nrP)
			reqWest = r.Cart.Irecv(west, tagRimBase+3, bufWest)
		}
		if west >= 0 {
			r.Cart.Send(west, tagRimBase+2, packColCells(h))
		}
		if east >= 0 {
			r.Cart.Send(east, tagRimBase+3, packColCells(h+p.Np-1))
		}
		if reqEast != nil {
			reqEast.Wait()
			unpackColCells(h+p.Np, bufEast)
		}
		if reqWest != nil {
			reqWest.Wait()
			unpackColCells(h-1, bufWest)
		}
	}
}

// rhs evaluates the right-hand side into the panel's k state: compute
// the subsidiary fields, refresh the magnetic-field halos (its curl is
// differentiated), then finish.
func (r *Rank) rhs(u, out *mhd.State) {
	mhd.ComputeVTB(r.PL, u)
	r.exchangeHalos([]*field.Scalar{r.PL.B.R, r.PL.B.T, r.PL.B.P}, tagHaloBBase)
	mhd.FinishRHS(r.PL, r.Prm, u, out, func(fs ...*field.Scalar) {
		r.exchangeHalos(fs, tagHaloAuxBase)
	})
}

// Advance performs one RK4 step identical in arithmetic to the serial
// solver's Advance.
func (r *Rank) Advance(dt float64) {
	r.AdvanceScheme(dt, mhd.RK4)
}

// AdvanceScheme advances one step with an explicit integrator choice,
// using the same stage tables as the serial solver. The leading Tick is
// the fault-injection checkpoint: a scripted FaultPlan.Kill for this
// world rank fires here, before the step's first exchange.
func (r *Rank) AdvanceScheme(dt float64, scheme mhd.Integrator) {
	r.World.Tick(r.StepN)
	pl := r.PL
	pl.SaveU0()
	pl.ZeroAcc()
	stages, finalCoeff := mhd.SchemeStages(scheme)
	for si, stg := range stages {
		r.rhs(&pl.U, pl.K())
		pl.AccumulateK(stg.AccCoeff)
		if si < len(stages)-1 {
			pl.RestoreU0PlusK(stg.StepCoeff * dt)
			r.applyConstraints()
		}
	}
	pl.RestoreU0PlusAcc(finalCoeff * dt)
	r.applyConstraints()
	r.Time += dt
	r.StepN++
}

// EstimateDT returns the globally reduced stable time step.
func (r *Rank) EstimateDT(safety float64) float64 {
	mhd.ComputeVTB(r.PL, &r.PL.U)
	v := []float64{mhd.PanelMaxSpeed(r.PL, r.Prm)}
	r.World.Allreduce(v, mpi.OpMax)
	return mhd.StableDT(r.Prm, mhd.MinGridSpacing(r.Layout.Spec), v[0], safety)
}

// Diagnose returns globally reduced diagnostics (identical on every
// rank).
func (r *Rank) Diagnose() mhd.Diagnostics {
	mhd.ComputeVTB(r.PL, &r.PL.U)
	d := mhd.PanelDiagnostics(r.PL, r.Prm)
	sums := []float64{d.Mass, d.KineticE, d.MagneticE, d.InternalE}
	r.World.Allreduce(sums, mpi.OpSum)
	maxs := []float64{d.MaxV, d.MaxB}
	r.World.Allreduce(maxs, mpi.OpMax)
	return mhd.Diagnostics{
		Time: r.Time, Step: r.StepN,
		Mass: sums[0], KineticE: sums[1], MagneticE: sums[2], InternalE: sums[3],
		MaxV: maxs[0], MaxB: maxs[1],
	}
}
