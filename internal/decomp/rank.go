package decomp

import (
	"fmt"
	"runtime"

	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/mhd"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/overset"
	"repro/internal/par"
	"repro/internal/telemetry"
)

// Tag spaces for the three communication phases of a stage.
const (
	tagHaloBase    = 0   // +0..3 by direction
	tagHaloBBase   = 8   // +0..3, magnetic-field halo refresh
	tagHaloAuxBase = 16  // +0..3, differentiated-intermediate halo refresh
	tagRimBase     = 24  // +0..3, post-overset rim-crossing cell refresh
	tagOversetBase = 100 // + receiver-specific is unnecessary: one msg per peer
)

// ExchangeTags lists every message tag the decomposed solver uses for
// its cross-rank exchanges — the halo refreshes (all three field
// groups), the rim refresh, and the overset exchange. Fault-space
// fuzzers draw from this list so a generated FaultPlan always targets a
// tag the solver actually sends.
func ExchangeTags() []int {
	tags := make([]int, 0, 17)
	for _, base := range []int{tagHaloBase, tagHaloBBase, tagHaloAuxBase, tagRimBase} {
		for d := 0; d < 4; d++ {
			tags = append(tags, base+d)
		}
	}
	return append(tags, tagOversetBase)
}

// Rank is one process of the parallel yycore run: a block of one panel,
// with its neighbour links, halo buffers, and its share of the overset
// exchange plan.
type Rank struct {
	World  *mpi.Comm
	Cart   *mpi.Cart
	Layout *Layout
	Panel  grid.Panel
	PL     *mhd.Panel
	Prm    mhd.Params

	Time  float64
	StepN int

	// Overset plan, grouped by peer world rank; target order follows the
	// global plan order on both sides, so messages pack and unpack
	// identically without coordination.
	oversetSend map[int][]overset.Target
	oversetRecv map[int][]overset.Target
	peersSend   []int // sorted peer lists for deterministic iteration
	peersRecv   []int

	// Preallocated exchange state: the halo/rim staging arena, one
	// message buffer per overset peer, and the posted-receive request
	// list — sized once so the steady-state exchange path allocates
	// nothing.
	halo      *HaloBufs
	ovSendBuf map[int][]float64
	ovRecvBuf map[int][]float64
	ovReqs    []*mpi.Request

	// pool is the rank's intra-process worker pool (nil means serial
	// kernels); it is wired into the patch so the stencil kernels of
	// internal/fd, internal/sphops and internal/mhd route through it.
	pool *par.Pool

	// obs is the rank's span recorder (nil when the run is untraced;
	// every span call degrades to a nil check). lastDT remembers the
	// most recent step size for the CFL gauge.
	obs    *obs.RankRec
	lastDT float64

	// tele is the rank's live-telemetry publish slot (nil when the run
	// is untelemetrized). snap is the writer-owned staging snapshot:
	// the step path updates its fields and republishes it, so a
	// scraper between Diagnose calls still sees the last diagnostics.
	tele *telemetry.RankPub
	snap telemetry.Snapshot

	// Overlapped-RHS schedule state: the owned columns split once into
	// the seam-independent interior and the width-1 rim (the stencil
	// radius), plus the toggle that falls back to the fully sequential
	// exchange-then-compute schedule. Both schedules are bit-identical;
	// the toggle exists so correctness suites can pin that and so a
	// regression can be bisected at runtime.
	overlap  bool
	interior grid.Region
	rim      grid.Region
	fullReg  grid.Region

	nrP int // padded radial extent (column length)
}

// SetObs attaches the rank's span recorder and wires the worker pool's
// utilization gauge. Call right after NewRank, before the first
// Advance; a nil recorder (or nil method receiver sub-recorder) keeps
// the rank untraced.
func (r *Rank) SetObs(rr *obs.RankRec) {
	r.obs = rr
	r.pool.SetGauge(rr.PoolGauge())
}

// SetTelemetry attaches the rank's live-telemetry publish slot. Like
// SetObs it is wired at segment setup; a nil slot keeps the rank
// silent and costs one nil check per step. Publishing is a fixed
// number of atomic stores into rank-owned memory — no clock reads, no
// allocation, no communication — so a telemetrized run stays
// bit-identical to a silent one.
func (r *Rank) SetTelemetry(pub *telemetry.RankPub) {
	r.tele = pub
}

// NewRank builds the rank-local solver for world rank w of the layout,
// splits the world into panels, creates the panel's Cartesian process
// grid, initializes the local state, and applies all constraints. The
// rank's worker pool is auto-sized to its share of GOMAXPROCS; use
// NewRankWorkers to pick the width explicitly. Close the rank after
// the run to release the pool.
func NewRank(world *mpi.Comm, l *Layout, prm mhd.Params, ic mhd.InitialConditions) (*Rank, error) {
	return NewRankWorkers(world, l, prm, ic, 0)
}

// NewRankWorkers is NewRank with an explicit intra-rank worker count:
// each rank owns a pool of that many workers, reused across steps, and
// routes its stencil/overset kernels through it. workers <= 0 selects
// the automatic per-world share max(1, GOMAXPROCS/worldSize) — the
// paper's layout of vector pipelines per AP divided among the processes
// placed on it. workers == 1 keeps the kernels serial. Parallel kernels
// are bit-identical to serial ones, so the choice never changes
// results.
func NewRankWorkers(world *mpi.Comm, l *Layout, prm mhd.Params, ic mhd.InitialConditions, workers int) (*Rank, error) {
	if world.Size() != l.NProcs {
		return nil, fmt.Errorf("decomp: layout wants %d processes, world has %d", l.NProcs, world.Size())
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0) / world.Size()
		if workers < 1 {
			workers = 1
		}
	}
	panel := l.PanelOf(world.Rank())
	// MPI_COMM_SPLIT into the Yin and Yang panels.
	pcomm := world.Split(int(panel), world.Rank())
	// MPI_CART_CREATE within the panel.
	cart, err := pcomm.CartCreate2D(l.PT, l.PP)
	if err != nil {
		return nil, err
	}
	patch := l.SubPatch(world.Rank(), 1)
	patch.Par = par.NewPool(workers)
	pl := mhd.NewPanel(patch, prm.Omega)
	mhd.InitPanel(pl, prm, ic)

	r := &Rank{
		World:   world,
		Cart:    cart,
		Layout:  l,
		Panel:   panel,
		PL:      pl,
		Prm:     prm,
		pool:    patch.Par,
		overlap: true,
		nrP:     l.Spec.Nr + 2*patch.H,
	}
	in, rim := patch.SplitInteriorRim(1)
	r.interior = grid.Region{in}
	r.rim = rim
	r.fullReg = patch.OwnedRegion()
	// The rank's largest halo exchange moves the 8 state scalars.
	r.halo = NewHaloBufs(patch, len(r.stateFields()))
	if err := r.buildOversetPlan(); err != nil {
		r.Close()
		return nil, err
	}
	r.applyConstraints()
	return r, nil
}

// Close releases the rank's worker pool; the rank must not advance
// afterwards. Safe on a serial rank and when called twice.
func (r *Rank) Close() {
	r.pool.Close()
}

// buildOversetPlan computes the global rim-interpolation plan (identical
// on every rank) and keeps the entries where this rank is the donor or
// the receiver, grouped by the peer's world rank.
func (r *Rank) buildOversetPlan() error {
	// The plan is a pure function of the spec; the memoized PlanFor
	// computes the rim weights once per process instead of once per rank.
	plan, err := overset.PlanFor(r.Layout.Spec)
	if err != nil {
		return err
	}
	r.oversetSend = map[int][]overset.Target{}
	r.oversetRecv = map[int][]overset.Target{}
	me := r.World.Rank()
	for _, t := range plan.Targets {
		for _, p := range []grid.Panel{grid.Yin, grid.Yang} {
			recvRank := r.Layout.OwnerOf(p, t.Recv.J, t.Recv.K)
			donorRank := r.Layout.OwnerOf(p.Other(), t.DJ, t.DK)
			if me == donorRank {
				r.oversetSend[recvRank] = append(r.oversetSend[recvRank], t)
			}
			if me == recvRank {
				r.oversetRecv[donorRank] = append(r.oversetRecv[donorRank], t)
			}
		}
	}
	r.peersSend = sortedKeys(r.oversetSend)
	r.peersRecv = sortedKeys(r.oversetRecv)
	// Pre-size one message buffer per peer (8 columns per target) and
	// the posted-receive request list, so oversetExchange reuses them
	// every stage instead of allocating.
	r.ovSendBuf = map[int][]float64{}
	for _, peer := range r.peersSend {
		r.ovSendBuf[peer] = make([]float64, len(r.oversetSend[peer])*8*r.nrP)
	}
	r.ovRecvBuf = map[int][]float64{}
	for _, peer := range r.peersRecv {
		r.ovRecvBuf[peer] = make([]float64, len(r.oversetRecv[peer])*8*r.nrP)
	}
	r.ovReqs = make([]*mpi.Request, len(r.peersRecv))
	return nil
}

func sortedKeys(m map[int][]overset.Target) []int {
	keys := make([]int, 0, len(m))
	//yyvet:ignore det-purity the keys are insertion-sorted immediately below, so the collection order never escapes
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// exchangeHalos swaps one halo layer of every field with the four
// nearest neighbours inside the panel (MPI_SEND / MPI_IRECV between
// MPI_CART_SHIFT neighbours in the paper). Theta-direction messages span
// the interior phi range and vice versa; corner halos are not needed by
// the axis-aligned stencils.
func (r *Rank) exchangeHalos(fields []*field.Scalar, tagBase int) {
	north, south, west, east := r.Cart.Neighbours()
	p := r.PL.Patch
	h := p.H
	hb := r.halo
	nf := len(fields)

	// Theta-direction messages span the FULL padded phi range: the phi
	// exchange runs first, so the theta messages carry the freshly filled
	// phi-halo values into the diagonal (corner) halo cells. Corner halos
	// are not needed by the axis-aligned stencils, but the overset donors
	// interpolate from 2x2 node cells that can straddle a block corner.
	//
	// Each phase follows the paper's non-blocking pattern: post
	// MPI_IRECV for both neighbours first, send, then complete each
	// receive with Wait before unpacking (the ordering the irecv-wait
	// analyzer in cmd/yyvet enforces). The phases cannot overlap each
	// other: theta packing must see the freshly unpacked phi halos.
	// All staging buffers come from the rank's preallocated HaloBufs
	// arena: Send copies synchronously, and every receive buffer is
	// consumed within its phase, so reuse is race-free and the
	// steady-state path allocates nothing.

	// Phase 1: phi direction.
	sp := r.obs.Begin(obs.SpanHaloPack)
	var reqEast, reqWest *mpi.Request
	var bufEast, bufWest []float64
	if east >= 0 {
		bufEast = hb.RecvPhi(nf, dirEast)
		reqEast = r.Cart.Irecv(east, tagBase+2, bufEast)
	}
	if west >= 0 {
		bufWest = hb.RecvPhi(nf, dirWest)
		reqWest = r.Cart.Irecv(west, tagBase+3, bufWest)
	}
	if west >= 0 {
		r.Cart.Send(west, tagBase+2, hb.PackPhi(fields, h, dirWest))
	}
	if east >= 0 {
		r.Cart.Send(east, tagBase+3, hb.PackPhi(fields, h+p.Np-1, dirEast))
	}
	sp.End()
	if reqEast != nil {
		w := r.obs.Begin(obs.SpanHaloWait)
		reqEast.Wait()
		w.End()
		u := r.obs.Begin(obs.SpanHaloUnpack)
		hb.UnpackPhi(fields, h+p.Np, bufEast)
		u.End()
	}
	if reqWest != nil {
		w := r.obs.Begin(obs.SpanHaloWait)
		reqWest.Wait()
		w.End()
		u := r.obs.Begin(obs.SpanHaloUnpack)
		hb.UnpackPhi(fields, h-1, bufWest)
		u.End()
	}

	// Phase 2: theta direction, now carrying phi halos.
	sp = r.obs.Begin(obs.SpanHaloPack)
	var reqNorth, reqSouth *mpi.Request
	var bufNorth, bufSouth []float64
	if south >= 0 {
		bufSouth = hb.RecvTheta(nf, dirSouth)
		reqSouth = r.Cart.Irecv(south, tagBase+0, bufSouth)
	}
	if north >= 0 {
		bufNorth = hb.RecvTheta(nf, dirNorth)
		reqNorth = r.Cart.Irecv(north, tagBase+1, bufNorth)
	}
	if north >= 0 {
		r.Cart.Send(north, tagBase+0, hb.PackTheta(fields, h, dirNorth))
	}
	if south >= 0 {
		r.Cart.Send(south, tagBase+1, hb.PackTheta(fields, h+p.Nt-1, dirSouth))
	}
	sp.End()
	if reqSouth != nil {
		w := r.obs.Begin(obs.SpanHaloWait)
		reqSouth.Wait()
		w.End()
		u := r.obs.Begin(obs.SpanHaloUnpack)
		hb.UnpackTheta(fields, h+p.Nt, bufSouth)
		u.End()
	}
	if reqNorth != nil {
		w := r.obs.Begin(obs.SpanHaloWait)
		reqNorth.Wait()
		w.End()
		u := r.obs.Begin(obs.SpanHaloUnpack)
		hb.UnpackTheta(fields, h-1, bufNorth)
		u.End()
	}
}

// SetOverlap selects between the overlapped RHS schedule (halo receives
// posted, interior computed while messages fly, rim finished after the
// waits) and the sequential exchange-then-compute fallback. Both produce
// bitwise-identical states; the default is overlapped.
func (r *Rank) SetOverlap(on bool) { r.overlap = on }

// haloOverlap is one in-flight corner-free halo exchange: the four
// posted receives and their buffers, between haloStart and haloFinish.
type haloOverlap struct {
	fields             []*field.Scalar
	reqEast, reqWest   *mpi.Request
	reqSouth, reqNorth *mpi.Request
	bufEast, bufWest   []float64
	bufSouth, bufNorth []float64
}

// haloStart begins the corner-free halo exchange of the overlapped
// schedule: it posts all four receives, then sends all four messages,
// and returns with the exchange in flight so the caller can compute
// under it. Unlike exchangeHalos, both directions move concurrently and
// each message carries only the owned range of its layer (theta
// messages span owned phi and vice versa), so no corner halo cells are
// written — which is exactly why the two directions need no ordering.
// Only exchanges whose consumers are axis-aligned stencils (the B and
// div-v refreshes) may use it; the state exchange keeps the sequential
// corner-carrying phases for the overset donors. Tags follow the
// exchangeHalos convention (theta +0/+1, phi +2/+3), so fault plans
// target both schedules identically.
func (r *Rank) haloStart(fields []*field.Scalar, tagBase int) haloOverlap {
	north, south, west, east := r.Cart.Neighbours()
	p := r.PL.Patch
	h := p.H
	hb := r.halo
	nf := len(fields)
	ov := haloOverlap{fields: fields}

	sp := r.obs.Begin(obs.SpanHaloPack)
	if east >= 0 {
		ov.bufEast = hb.RecvRange(nf, p.Nt, dirEast)
		ov.reqEast = r.Cart.Irecv(east, tagBase+2, ov.bufEast)
	}
	if west >= 0 {
		ov.bufWest = hb.RecvRange(nf, p.Nt, dirWest)
		ov.reqWest = r.Cart.Irecv(west, tagBase+3, ov.bufWest)
	}
	if south >= 0 {
		ov.bufSouth = hb.RecvRange(nf, p.Np, dirSouth)
		ov.reqSouth = r.Cart.Irecv(south, tagBase+0, ov.bufSouth)
	}
	if north >= 0 {
		ov.bufNorth = hb.RecvRange(nf, p.Np, dirNorth)
		ov.reqNorth = r.Cart.Irecv(north, tagBase+1, ov.bufNorth)
	}
	if west >= 0 {
		r.Cart.Send(west, tagBase+2, hb.PackPhiRange(fields, h, h, h+p.Nt, dirWest))
	}
	if east >= 0 {
		r.Cart.Send(east, tagBase+3, hb.PackPhiRange(fields, h+p.Np-1, h, h+p.Nt, dirEast))
	}
	if north >= 0 {
		r.Cart.Send(north, tagBase+0, hb.PackThetaRange(fields, h, h, h+p.Np, dirNorth))
	}
	if south >= 0 {
		r.Cart.Send(south, tagBase+1, hb.PackThetaRange(fields, h+p.Nt-1, h, h+p.Np, dirSouth))
	}
	sp.End()
	return ov
}

// haloFinish completes a haloStart exchange: waits on each posted
// receive and unpacks it into the matching halo layer. After it returns
// the rim stencils may read the exchanged halos.
func (r *Rank) haloFinish(ov *haloOverlap) {
	p := r.PL.Patch
	h := p.H
	hb := r.halo
	done := func(req *mpi.Request, unpack func()) {
		if req == nil {
			return
		}
		w := r.obs.Begin(obs.SpanHaloWait)
		req.Wait()
		w.End()
		u := r.obs.Begin(obs.SpanHaloUnpack)
		unpack()
		u.End()
	}
	done(ov.reqEast, func() { hb.UnpackPhiRange(ov.fields, h+p.Np, h, h+p.Nt, ov.bufEast) })
	done(ov.reqWest, func() { hb.UnpackPhiRange(ov.fields, h-1, h, h+p.Nt, ov.bufWest) })
	done(ov.reqSouth, func() { hb.UnpackThetaRange(ov.fields, h+p.Nt, h, h+p.Np, ov.bufSouth) })
	done(ov.reqNorth, func() { hb.UnpackThetaRange(ov.fields, h-1, h, h+p.Np, ov.bufNorth) })
}

// oversetExchange performs the distributed Yin<->Yang rim interpolation
// for the whole state (rho, p, F, A). Donors interpolate columns from
// their interior-plus-halo data and send one message per receiving peer
// under the world communicator; receivers scatter into their rim nodes.
// Eight columns flow per target: two scalars and two rotated vectors.
func (r *Rank) oversetExchange() {
	p := r.PL.Patch
	h := p.H
	nrP := r.nrP
	u := &r.PL.U

	// Post one non-blocking receive per donating peer before any work,
	// so every incoming rim message has a matching MPI_IRECV in flight
	// while this rank interpolates its own donations. The per-peer
	// message buffers and the request list were pre-sized by
	// buildOversetPlan and are reused every stage.
	sp := r.obs.Begin(obs.SpanOversetDonate)
	for pi, peer := range r.peersRecv {
		r.ovReqs[pi] = r.World.Irecv(peer, tagOversetBase, r.ovRecvBuf[peer])
	}

	// Donate: each target interpolates its 8 columns (2 scalars + 2
	// rotated vectors) directly into its own disjoint segment of the
	// peer's send buffer, range-split over the rank's worker pool —
	// bit-identical to a serial target loop. The interpolation runs
	// with every rim receive already posted, so it counts as overlap:
	// wait time the posted receives would otherwise accumulate is spent
	// computing instead.
	for _, peer := range r.peersSend {
		targets := r.oversetSend[peer]
		buf := r.ovSendBuf[peer]
		ho := r.obs.Begin(obs.SpanHaloOverlap)
		p.Par.For(len(targets), func(lo, hi int) {
			for ti := lo; ti < hi; ti++ {
				t := targets[ti]
				seg := buf[ti*8*nrP : (ti+1)*8*nrP]
				ldj := t.DJ - p.JOff + h
				ldk := t.DK - p.KOff + h
				gather := func(f *field.Scalar, dst []float64) {
					r0 := f.Row(ldj, ldk)
					r1 := f.Row(ldj+1, ldk)
					r2 := f.Row(ldj, ldk+1)
					r3 := f.Row(ldj+1, ldk+1)
					for i := range dst {
						dst[i] = t.W[0]*r0[i] + t.W[1]*r1[i] + t.W[2]*r2[i] + t.W[3]*r3[i]
					}
				}
				rotate := func(ct, cp []float64) {
					for i := range ct {
						ct[i], cp[i] = t.Rot.Apply(ct[i], cp[i])
					}
				}
				gather(u.Rho, seg[0:nrP])
				gather(u.P, seg[nrP:2*nrP])
				gather(u.F.R, seg[2*nrP:3*nrP])
				gather(u.F.T, seg[3*nrP:4*nrP])
				gather(u.F.P, seg[4*nrP:5*nrP])
				rotate(seg[3*nrP:4*nrP], seg[4*nrP:5*nrP])
				gather(u.A.R, seg[5*nrP:6*nrP])
				gather(u.A.T, seg[6*nrP:7*nrP])
				gather(u.A.P, seg[7*nrP:8*nrP])
				rotate(seg[6*nrP:7*nrP], seg[7*nrP:8*nrP])
			}
		})
		ho.End()
		r.World.Send(peer, tagOversetBase, buf)
	}
	sp.End()

	// Receive: complete each posted request, then scatter.
	for pi, peer := range r.peersRecv {
		targets := r.oversetRecv[peer]
		w := r.obs.Begin(obs.SpanOversetWait)
		r.ovReqs[pi].Wait()
		w.End()
		rv := r.obs.Begin(obs.SpanOversetRecv)
		buf := r.ovRecvBuf[peer]
		pos := 0
		take := func(dst []float64) {
			copy(dst, buf[pos:pos+nrP])
			pos += nrP
		}
		for _, t := range targets {
			lj := t.Recv.J - p.JOff + h
			lk := t.Recv.K - p.KOff + h
			take(u.Rho.Row(lj, lk))
			take(u.P.Row(lj, lk))
			for _, v := range []*field.Vector{u.F, u.A} {
				take(v.R.Row(lj, lk))
				take(v.T.Row(lj, lk))
				take(v.P.Row(lj, lk))
			}
		}
		rv.End()
	}
}

// stateFields lists the eight state scalars for halo exchange.
func (r *Rank) stateFields() []*field.Scalar {
	s := r.PL.U.Scalars()
	return s[:]
}

// applyConstraints mirrors the serial solver's constraint application:
// refresh halos (the overset donors interpolate from interior-plus-halo
// data), impose walls, run the overset exchange, re-impose walls at the
// rim columns, and refresh halos once more so that halo copies of the
// partner blocks' rim columns carry their post-overset values — without
// the second refresh, stencils at block seams adjacent to the panel rim
// would consume stale rim data that the serial solver never sees.
func (r *Rank) applyConstraints() {
	r.exchangeHalos(r.stateFields(), tagHaloBase)
	mhd.ApplyWallBC(r.PL, r.Prm)
	r.oversetExchange()
	mhd.ApplyWallBC(r.PL, r.Prm)
	// The overset exchange rewrote the panel-rim rows and columns, so
	// neighbouring blocks' halo copies of rim-crossing cells are stale.
	// Those cells feed kept results through one chain only: A at a rim
	// cell -> B = curl A at a rim-column node -> J = curl B at an
	// adjacent interior node. A thin refresh of just the rim-crossing
	// cells (at most two radial columns per direction) restores
	// serial-equivalence at a tiny fraction of a full halo exchange.
	// The pseudo-vacuum magnetic wall additionally couples wall values
	// across several columns, so it falls back to the full exchange.
	if r.Prm.MagBC == mhd.BCConfined {
		r.rimRefresh()
		return
	}
	// Pseudo-vacuum: the wall recomputation reads angular neighbours of
	// the wall rows, so it must see post-overset rim data; re-impose the
	// walls on fresh halos and share the result.
	r.exchangeHalos(r.stateFields(), tagHaloBase)
	mhd.ApplyWallBC(r.PL, r.Prm)
	r.exchangeHalos(r.stateFields(), tagHaloBase)
}

// rimRefresh re-sends only the halo cells that sit on the panel's global
// rim rows/columns after the overset exchange rewrote them.
func (r *Rank) rimRefresh() {
	defer r.obs.Begin(obs.SpanRim).End()
	north, south, west, east := r.Cart.Neighbours()
	p := r.PL.Patch
	h := p.H
	hb := r.halo
	fields := r.stateFields()
	nf := len(fields)
	spec := r.Layout.Spec

	// Local padded indices of the global rim columns/rows this block
	// owns. At most two per direction, so a fixed backing array keeps
	// this allocation-free.
	var rimColsA, rimRowsA [2]int
	rimCols, rimRows := rimColsA[:0], rimRowsA[:0]
	if p.KOff == 0 {
		rimCols = append(rimCols, h)
	}
	if p.KOff+p.Np == spec.Np {
		rimCols = append(rimCols, h+p.Np-1)
	}
	if p.JOff == 0 {
		rimRows = append(rimRows, h)
	}
	if p.JOff+p.Nt == spec.Nt {
		rimRows = append(rimRows, h+p.Nt-1)
	}

	// Theta neighbours share this block's column range, so the same
	// rimCols predicate holds on both sides; likewise for rows in phi.
	// Posted-receive pattern as in exchangeHalos (Irecv, send, Wait,
	// unpack), with all staging drawn from the HaloBufs arena.
	if len(rimCols) > 0 {
		var reqSouth, reqNorth *mpi.Request
		var bufSouth, bufNorth []float64
		if south >= 0 {
			bufSouth = hb.RecvCells(nf, len(rimCols), dirSouth)
			reqSouth = r.Cart.Irecv(south, tagRimBase+0, bufSouth)
		}
		if north >= 0 {
			bufNorth = hb.RecvCells(nf, len(rimCols), dirNorth)
			reqNorth = r.Cart.Irecv(north, tagRimBase+1, bufNorth)
		}
		if north >= 0 {
			r.Cart.Send(north, tagRimBase+0, hb.PackRowCells(fields, h, rimCols, dirNorth))
		}
		if south >= 0 {
			r.Cart.Send(south, tagRimBase+1, hb.PackRowCells(fields, h+p.Nt-1, rimCols, dirSouth))
		}
		if reqSouth != nil {
			w := r.obs.Begin(obs.SpanHaloWait)
			reqSouth.Wait()
			w.End()
			hb.UnpackRowCells(fields, h+p.Nt, rimCols, bufSouth)
		}
		if reqNorth != nil {
			w := r.obs.Begin(obs.SpanHaloWait)
			reqNorth.Wait()
			w.End()
			hb.UnpackRowCells(fields, h-1, rimCols, bufNorth)
		}
	}
	if len(rimRows) > 0 {
		var reqEast, reqWest *mpi.Request
		var bufEast, bufWest []float64
		if east >= 0 {
			bufEast = hb.RecvCells(nf, len(rimRows), dirEast)
			reqEast = r.Cart.Irecv(east, tagRimBase+2, bufEast)
		}
		if west >= 0 {
			bufWest = hb.RecvCells(nf, len(rimRows), dirWest)
			reqWest = r.Cart.Irecv(west, tagRimBase+3, bufWest)
		}
		if west >= 0 {
			r.Cart.Send(west, tagRimBase+2, hb.PackColCells(fields, h, rimRows, dirWest))
		}
		if east >= 0 {
			r.Cart.Send(east, tagRimBase+3, hb.PackColCells(fields, h+p.Np-1, rimRows, dirEast))
		}
		if reqEast != nil {
			w := r.obs.Begin(obs.SpanHaloWait)
			reqEast.Wait()
			w.End()
			hb.UnpackColCells(fields, h+p.Np, rimRows, bufEast)
		}
		if reqWest != nil {
			w := r.obs.Begin(obs.SpanHaloWait)
			reqWest.Wait()
			w.End()
			hb.UnpackColCells(fields, h-1, rimRows, bufWest)
		}
	}
}

// rhs evaluates the right-hand side into the panel's k state: compute
// the subsidiary fields, refresh the magnetic-field halos (its curl is
// differentiated), then finish.
//
// With overlap enabled the two halo refreshes hide under compute. Both
// exchanged families (B, div v) are consumed only by axis-aligned
// stencils, so the corner-free haloStart exchange suffices, and the
// interior — every owned point at least the stencil radius from a
// neighbour boundary — depends on no incoming halo at all. The schedule
// therefore posts the B exchange, evaluates div v everywhere plus the
// current-density curl on the interior while B flies, waits, finishes
// the curl on the rim, then repeats the trick for the div-v exchange
// under the interior update. Every point is still computed exactly once
// by the same arithmetic, so the result is bitwise identical to the
// sequential fallback below.
func (r *Rank) rhs(u, out *mhd.State) {
	defer r.obs.Begin(obs.SpanRHS).End()
	mhd.ComputeVTB(r.PL, u)
	if !r.overlap {
		r.exchangeHalos([]*field.Scalar{r.PL.B.R, r.PL.B.T, r.PL.B.P}, tagHaloBBase)
		mhd.FinishRHS(r.PL, r.Prm, u, out, func(fs ...*field.Scalar) {
			r.exchangeHalos(fs, tagHaloAuxBase)
		})
		return
	}
	pl := r.PL
	ovB := r.haloStart([]*field.Scalar{pl.B.R, pl.B.T, pl.B.P}, tagHaloBBase)
	o := r.obs.Begin(obs.SpanHaloOverlap)
	mhd.RHSDivV(pl, r.fullReg)
	mhd.RHSCurlJ(pl, r.interior)
	o.End()
	r.haloFinish(&ovB)
	mhd.RHSCurlJ(pl, r.rim)
	ovA := r.haloStart([]*field.Scalar{pl.DivV}, tagHaloAuxBase)
	o = r.obs.Begin(obs.SpanHaloOverlap)
	in := r.obs.Begin(obs.SpanRHSInterior)
	mhd.RHSUpdate(pl, r.Prm, u, out, r.interior)
	in.End()
	o.End()
	r.haloFinish(&ovA)
	rim := r.obs.Begin(obs.SpanRHSRim)
	mhd.RHSUpdate(pl, r.Prm, u, out, r.rim)
	rim.End()
}

// Advance performs one RK4 step identical in arithmetic to the serial
// solver's Advance.
func (r *Rank) Advance(dt float64) {
	r.AdvanceScheme(dt, mhd.RK4)
}

// AdvanceScheme advances one step with an explicit integrator choice,
// using the same stage tables as the serial solver. The leading Tick is
// the fault-injection checkpoint: a scripted FaultPlan.Kill for this
// world rank fires here, before the step's first exchange.
func (r *Rank) AdvanceScheme(dt float64, scheme mhd.Integrator) {
	r.World.Tick(r.StepN)
	r.obs.SetStep(r.StepN)
	defer r.obs.Begin(obs.SpanStep).End()
	r.obs.SetGauge("dt", dt)
	r.lastDT = dt
	pl := r.PL
	pl.SaveU0()
	pl.ZeroAcc()
	stages, finalCoeff := mhd.SchemeStages(scheme)
	for si, stg := range stages {
		r.rhs(&pl.U, pl.K())
		pl.AccumulateK(stg.AccCoeff)
		if si < len(stages)-1 {
			pl.RestoreU0PlusK(stg.StepCoeff * dt)
			r.applyConstraints()
		}
	}
	pl.RestoreU0PlusAcc(finalCoeff * dt)
	r.applyConstraints()
	r.Time += dt
	r.StepN++
	if r.tele != nil {
		r.snap.Step = int64(r.StepN)
		r.snap.DT = dt
		r.snap.Spans = int64(r.obs.Len())
		r.snap.SpanDropped = r.obs.Dropped()
		r.tele.Publish(r.snap)
	}
}

// EstimateDT returns the globally reduced stable time step.
func (r *Rank) EstimateDT(safety float64) float64 {
	mhd.ComputeVTB(r.PL, &r.PL.U)
	v := []float64{mhd.PanelMaxSpeed(r.PL, r.Prm)}
	c := r.obs.Begin(obs.SpanCollective)
	r.World.Allreduce(v, mpi.OpMax)
	c.End()
	return mhd.StableDT(r.Prm, mhd.MinGridSpacing(r.Layout.Spec), v[0], safety)
}

// Diagnose returns globally reduced diagnostics (identical on every
// rank).
func (r *Rank) Diagnose() mhd.Diagnostics {
	defer r.obs.Begin(obs.SpanDiagnose).End()
	mhd.ComputeVTB(r.PL, &r.PL.U)
	d := mhd.PanelDiagnostics(r.PL, r.Prm)
	sums := []float64{d.Mass, d.KineticE, d.MagneticE, d.InternalE}
	c := r.obs.Begin(obs.SpanCollective)
	r.World.Allreduce(sums, mpi.OpSum)
	c.End()
	maxs := []float64{d.MaxV, d.MaxB}
	c = r.obs.Begin(obs.SpanCollective)
	r.World.Allreduce(maxs, mpi.OpMax)
	c.End()
	if r.obs != nil || r.tele != nil {
		// Per-step physics gauges, computed from already-reduced values
		// and rank-local fields only — tracing must add no collectives,
		// so it can never change the run's communication pattern.
		if dx := mhd.MinGridSpacing(r.Layout.Spec); dx > 0 && r.lastDT > 0 {
			cfl := r.lastDT * maxs[0] / dx
			r.obs.SetGauge("cfl", cfl)
			r.snap.CFL = cfl
		}
		divb := mhd.DivBMax(r.PL)
		r.obs.SetGauge("divb", divb)
		if r.tele != nil {
			r.snap.DivB = divb
			r.snap.Mass, r.snap.KineticE, r.snap.MagneticE, r.snap.InternalE = sums[0], sums[1], sums[2], sums[3]
			r.snap.MaxV, r.snap.MaxB = maxs[0], maxs[1]
			r.snap.Step = int64(r.StepN)
			r.tele.Publish(r.snap)
		}
	}
	return mhd.Diagnostics{
		Time: r.Time, Step: r.StepN,
		Mass: sums[0], KineticE: sums[1], MagneticE: sums[2], InternalE: sums[3],
		MaxV: maxs[0], MaxB: maxs[1],
	}
}
