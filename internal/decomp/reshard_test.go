package decomp

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/grid"
	"repro/internal/mhd"
	"repro/internal/mpi"
	"repro/internal/snapshot"
)

// restoreAndCompare restores a layout-neutral checkpoint onto the given
// layout, advances two steps, and counts interior mismatches against
// the reference solver (the writer's trajectory continued serially).
func restoreAndCompare(t *testing.T, l *Layout, raw []byte, ref *mhd.Solver, dt float64) {
	t.Helper()
	var mu sync.Mutex
	mismatches := 0
	err := mpi.Run(l.NProcs, func(w *mpi.Comm) {
		// Start ranks from a DIFFERENT initial condition, then restore.
		ic := mhd.DefaultIC()
		ic.Seed = 99
		r, err := NewRank(w, l, mhd.Default(), ic)
		if err != nil {
			t.Error(err)
			return
		}
		defer r.Close()
		var in *snapshot.Interior
		if w.Rank() == 0 {
			in, err = snapshot.ReadInterior(bytes.NewReader(raw))
			if err != nil {
				w.Abort(err)
			}
		}
		if err := r.ScatterInterior(in); err != nil {
			w.Abort(err)
		}
		r.Advance(dt)
		r.Advance(dt)
		p := r.PL.Patch
		h := p.H
		local := r.PL.U.Scalars()
		global := ref.Panels[r.Panel].U.Scalars()
		bad := 0
		for vi := range local {
			for k := h; k < h+p.Np; k++ {
				for j := h; j < h+p.Nt; j++ {
					lrow := local[vi].Row(j, k)
					grow := global[vi].Row(j+p.JOff, k+p.KOff)
					for i := h; i < h+p.Nr; i++ {
						if lrow[i] != grow[i] {
							bad++
						}
					}
				}
			}
		}
		if bad > 0 {
			mu.Lock()
			mismatches += bad
			mu.Unlock()
		}
		if r.StepN != ref.Step || r.Time != ref.Time {
			t.Errorf("clock after restore+2 steps: %d/%v vs %d/%v", r.StepN, r.Time, ref.Step, ref.Time)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if mismatches > 0 {
		t.Errorf("nProcs=%d (%dx%d): %d values diverged after resharded restart", l.NProcs, l.PT, l.PP, mismatches)
	}
}

// TestScatterInteriorReshard: one checkpoint, written with no
// decomposition imprint, restores onto world shapes it was never
// written under — 2 (pure panel split), 4 and 8 — and every shape
// continues the writer's trajectory bit for bit.
func TestScatterInteriorReshard(t *testing.T) {
	s := grid.NewSpec(9, 13)
	const dt = 2e-3
	src := runSerial(t, s, 2, dt)
	var buf bytes.Buffer
	if err := snapshot.WriteCheckpoint(&buf, src); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	ref := runSerial(t, s, 2, dt)
	ref.Advance(dt)
	ref.Advance(dt)

	for _, nProcs := range []int{2, 4, 8} {
		l, err := NewLayout(s, nProcs)
		if err != nil {
			t.Fatal(err)
		}
		restoreAndCompare(t, l, raw, ref, dt)
	}
}

// TestScatterInteriorDifferentSplit: the same checkpoint restores onto
// two different explicit process-grid shapes of the same world size —
// the panel split itself is part of what resharding must be neutral to.
func TestScatterInteriorDifferentSplit(t *testing.T) {
	s := grid.NewSpec(9, 13)
	const dt = 2e-3
	src := runSerial(t, s, 2, dt)
	var buf bytes.Buffer
	if err := snapshot.WriteCheckpoint(&buf, src); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	ref := runSerial(t, s, 2, dt)
	ref.Advance(dt)
	ref.Advance(dt)

	for _, dims := range [][2]int{{4, 1}, {1, 4}, {2, 2}} {
		l, err := NewLayoutDims(s, 8, dims[0], dims[1])
		if err != nil {
			t.Fatal(err)
		}
		restoreAndCompare(t, l, raw, ref, dt)
	}
}

// TestScatterInteriorRejectsMismatch: a checkpoint of a different
// resolution is rejected with a clear error, not silently interpolated.
func TestScatterInteriorRejectsMismatch(t *testing.T) {
	const dt = 2e-3
	src := runSerial(t, grid.NewSpec(11, 17), 1, dt)
	var buf bytes.Buffer
	if err := snapshot.WriteCheckpoint(&buf, src); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	l, err := NewLayout(grid.NewSpec(9, 13), 2)
	if err != nil {
		t.Fatal(err)
	}
	err = mpi.Run(2, func(w *mpi.Comm) {
		r, err := NewRank(w, l, mhd.Default(), mhd.DefaultIC())
		if err != nil {
			t.Error(err)
			return
		}
		defer r.Close()
		var in *snapshot.Interior
		if w.Rank() == 0 {
			in, err = snapshot.ReadInterior(bytes.NewReader(raw))
			if err != nil {
				w.Abort(err)
			}
		}
		if err := r.ScatterInterior(in); err != nil {
			w.Abort(err)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "does not match layout") {
		t.Fatalf("want a grid-mismatch rejection, got: %v", err)
	}
}
