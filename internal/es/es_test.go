package es

import (
	"math"
	"strings"
	"testing"

	"repro/internal/grid"
	"repro/internal/mhd"
)

func TestMachineSpecs(t *testing.T) {
	m := EarthSimulator()
	if m.TotalAPs() != 5120 {
		t.Errorf("APs = %d", m.TotalAPs())
	}
	if m.TotalPeakFlops() != 40.96e12 {
		t.Errorf("peak = %g", m.TotalPeakFlops())
	}
	if m.TotalMemoryTB() != 10 {
		t.Errorf("memory = %g TB", m.TotalMemoryTB())
	}
}

func TestTableIFormat(t *testing.T) {
	s := EarthSimulator().TableI()
	for _, want := range []string{
		"8 Gflops", "8 AP x 640 PN = 5120", "16 GB", "10 TB", "12.3 GB/s x 2",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("Table I missing %q:\n%s", want, s)
		}
	}
}

// TestReferenceProfileCurrent: the baked-in reference profile tracks the
// real measured solver within 10%; if the solver's work content changes,
// this test tells us to refresh ReferenceProfile.
func TestReferenceProfileCurrent(t *testing.T) {
	got, err := MeasureStepProfile(grid.NewSpec(17, 17), mhd.Default())
	if err != nil {
		t.Fatal(err)
	}
	ref := ReferenceProfile()
	check := func(name string, g, r float64) {
		if math.Abs(g-r)/r > 0.10 {
			t.Errorf("%s drifted: measured %.4g vs reference %.4g", name, g, r)
		}
	}
	check("FlopsPerPoint", got.FlopsPerPoint, ref.FlopsPerPoint)
	check("LoopsPerColumn", got.LoopsPerColumn, ref.LoopsPerColumn)
	check("ScalarOpsPerColumn", got.ScalarOpsPerColumn, ref.ScalarOpsPerColumn)
	check("ElemsPerLoopOverNr", got.ElemsPerLoopOverNr, ref.ElemsPerLoopOverNr)
}

// TestTableIIReproduction: the model regenerates Table II — every row
// within 15% of the paper's TFlops, the headline row within 10%, and the
// qualitative shape (smaller radial grid is less efficient at equal
// process count; more processes either gain throughput or lose
// efficiency) preserved.
func TestTableIIReproduction(t *testing.T) {
	rows, err := TableII(EarthSimulator(), DefaultModelParams(), ReferenceProfile())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	byKey := map[[2]int]TableIIRow{}
	for _, r := range rows {
		rel := math.Abs(r.ModelTFlops-r.PaperTFlops) / r.PaperTFlops
		lim := 0.15
		if r.Procs == 4096 {
			lim = 0.10
		}
		if rel > lim {
			t.Errorf("procs=%d nr=%d: model %.2f vs paper %.2f TFlops (%.0f%% off)",
				r.Procs, r.Nr, r.ModelTFlops, r.PaperTFlops, rel*100)
		}
		byKey[[2]int{r.Procs, r.Nr}] = r
	}
	// Shape: 255 less efficient than 511 at the same process count.
	for _, procs := range []int{3888, 2560} {
		if byKey[[2]int{procs, 255}].ModelEff >= byKey[[2]int{procs, 511}].ModelEff {
			t.Errorf("procs=%d: 255-grid efficiency should be below 511-grid", procs)
		}
	}
	// Shape: throughput grows with process count at fixed grid.
	if byKey[[2]int{4096, 511}].ModelTFlops <= byKey[[2]int{2560, 511}].ModelTFlops {
		t.Error("TFlops should grow from 2560 to 4096 processes")
	}
	// Shape: efficiency at 1200 is the highest of the 255-grid rows.
	if byKey[[2]int{1200, 255}].ModelEff <= byKey[[2]int{3888, 255}].ModelEff {
		t.Error("efficiency should fall from 1200 to 3888 processes")
	}
}

// TestBankConflictAblation: radial sizes at the vector register length
// (256/512) are slower than the paper's choices just below it (255/511) —
// the reason the paper picked 255 and 511.
func TestBankConflictAblation(t *testing.T) {
	m := EarthSimulator()
	mp := DefaultModelParams()
	prof := ReferenceProfile()
	for _, pair := range [][2]int{{255, 256}, {511, 512}} {
		good, err := Predict(m, mp, prof, RunConfig{Spec: PaperSpec(pair[0]), Procs: 2560})
		if err != nil {
			t.Fatal(err)
		}
		bad, err := Predict(m, mp, prof, RunConfig{Spec: PaperSpec(pair[1]), Procs: 2560})
		if err != nil {
			t.Fatal(err)
		}
		// The conflicting size must lose even though it has MORE points.
		perPointGood := good.TFlops / float64(good.Config.Spec.TotalPoints())
		perPointBad := bad.TFlops / float64(bad.Config.Spec.TotalPoints())
		if perPointBad >= perPointGood {
			t.Errorf("nr=%d should be slower per point than nr=%d", pair[1], pair[0])
		}
	}
}

func TestPredictValidation(t *testing.T) {
	m := EarthSimulator()
	mp := DefaultModelParams()
	prof := ReferenceProfile()
	if _, err := Predict(m, mp, prof, RunConfig{Spec: PaperSpec(511), Procs: 100000}); err == nil {
		t.Error("oversubscription accepted")
	}
	if _, err := Predict(m, mp, prof, RunConfig{Spec: grid.Spec{}, Procs: 16}); err == nil {
		t.Error("invalid spec accepted")
	}
	if _, err := Predict(m, mp, prof, RunConfig{Spec: PaperSpec(511), Procs: 7}); err == nil {
		t.Error("odd process count accepted")
	}
}

func TestPredictionDiagnostics(t *testing.T) {
	p, err := Predict(EarthSimulator(), DefaultModelParams(), ReferenceProfile(),
		RunConfig{Spec: PaperSpec(511), Procs: 4096})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: average vector length 251.6, vector operation ratio 99%.
	if p.AvgVectorLength < 248 || p.AvgVectorLength > 256 {
		t.Errorf("avg vector length %.1f", p.AvgVectorLength)
	}
	if p.VectorOpRatio < 0.985 || p.VectorOpRatio > 0.999 {
		t.Errorf("vector op ratio %.4f", p.VectorOpRatio)
	}
	// Paper: communication time about 10%.
	if p.CommFraction < 0.03 || p.CommFraction > 0.25 {
		t.Errorf("comm fraction %.3f", p.CommFraction)
	}
	// Paper: about 2.1e5 grid points per AP.
	if p.PointsPerAP < 1.8e5 || p.PointsPerAP > 2.4e5 {
		t.Errorf("points per AP %.3g", p.PointsPerAP)
	}
	// Paper List 1: about 1.1 GB per process; the model's estimate must
	// at least fit comfortably under the 2 GB/AP hardware budget.
	if p.MemPerProcGB <= 0 || p.MemPerProcGB > 2 {
		t.Errorf("memory per process %.3g GB", p.MemPerProcGB)
	}
	if p.StepTime <= 0 {
		t.Error("non-positive step time")
	}
}

func TestTableIII(t *testing.T) {
	rows, err := TableIII(EarthSimulator(), DefaultModelParams(), ReferenceProfile())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Derived metrics against the paper's Table III.
	byName := map[string]TableIIIRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	shingu := byName["Shingu"]
	if math.Abs(shingu.FlopsPerGP-38e3)/38e3 > 0.05 {
		t.Errorf("Shingu Flops/g.p. = %.3g, want about 38K", shingu.FlopsPerGP)
	}
	if math.Abs(shingu.PointsPerAP-1.4e5)/1.4e5 > 0.05 {
		t.Errorf("Shingu g.p./AP = %.3g, want about 1.4e5", shingu.PointsPerAP)
	}
	self := rows[4]
	if self.Field != "geodynamo" || self.Method != "finite difference" || self.Parallel != "flat MPI" {
		t.Errorf("yycore row mislabelled: %+v", self.PeerResult)
	}
	// Paper: 15.2T/512 PN, 19K flops per grid point, 2.1e5 g.p./AP.
	if self.Nodes != 512 {
		t.Errorf("yycore nodes = %d", self.Nodes)
	}
	if math.Abs(self.TFlops-15.2)/15.2 > 0.10 {
		t.Errorf("yycore TFlops = %.2f", self.TFlops)
	}
	if self.FlopsPerGP < 15e3 || self.FlopsPerGP > 21e3 {
		t.Errorf("yycore Flops/g.p. = %.3g, want about 19K", self.FlopsPerGP)
	}
	komatitsch := byName["Komatitsch"]
	if komatitsch.FlopsPerGP > 1e3 {
		t.Errorf("Komatitsch Flops/g.p. = %.3g, want about 0.91K", komatitsch.FlopsPerGP)
	}
}

func TestFormatTables(t *testing.T) {
	m := EarthSimulator()
	mp := DefaultModelParams()
	prof := ReferenceProfile()
	rows2, err := TableII(m, mp, prof)
	if err != nil {
		t.Fatal(err)
	}
	s2 := FormatTableII(rows2)
	for _, want := range []string{"4096", "511 x 514 x 1538 x 2", "processors", "model"} {
		if !strings.Contains(s2, want) {
			t.Errorf("Table II missing %q", want)
		}
	}
	rows3, err := TableIII(m, mp, prof)
	if err != nil {
		t.Fatal(err)
	}
	s3 := FormatTableIII(rows3)
	for _, want := range []string{"Shingu", "geodynamo", "finite difference", "flat MPI", "spectral"} {
		if !strings.Contains(s3, want) {
			t.Errorf("Table III missing %q", want)
		}
	}
}

// TestProginfReport: the synthesized MPIPROGINF output carries the
// paper's headline quantities in the List 1 layout.
func TestProginfReport(t *testing.T) {
	m := EarthSimulator()
	mp := DefaultModelParams()
	prof := ReferenceProfile()
	p, err := Predict(m, mp, prof, RunConfig{Spec: PaperSpec(511), Procs: 4096})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's 454-second run: pick the step count that fills it.
	steps := int(453.0 / p.StepTime)
	rep := BuildProginf(m, mp, prof, p, steps)
	if rep.OverallGFLOPS < 12000 || rep.OverallGFLOPS > 18000 {
		t.Errorf("overall GFLOPS = %.0f, want about 15200", rep.OverallGFLOPS)
	}
	// Min <= Avg <= Max for every spread quantity.
	for name, v := range map[string][3]float64{
		"user": rep.UserTime, "flops": rep.FlopCount, "avl": rep.AvgVectorLength,
	} {
		if !(v[0] <= v[2] && v[2] <= v[1]) {
			t.Errorf("%s spread not ordered: %v", name, v)
		}
	}
	out := rep.Format()
	for _, want := range []string{
		"MPI Program Information:",
		"Global Data of 4096 processes",
		"Vector Operation Ratio (%)",
		"Average Vector Length",
		"GFLOPS (rel. to User Time)",
		"<---",
		"Overall Data:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

// TestScalingCurve: throughput grows monotonically with process count
// over Table II's range while efficiency falls monotonically beyond the
// small-count regime.
func TestScalingCurve(t *testing.T) {
	procs := []int{512, 1024, 2048, 4096}
	pts, err := ScalingCurve(EarthSimulator(), DefaultModelParams(), ReferenceProfile(), 511, procs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].TFlops <= pts[i-1].TFlops {
			t.Errorf("throughput not growing: %v", pts)
		}
		if pts[i].Efficiency >= pts[i-1].Efficiency {
			t.Errorf("efficiency not falling: %v", pts)
		}
	}
}

// TestHybridVsFlat: hybrid parallelization beats flat MPI at small
// problem sizes on many processors (fewer processes amortize the fixed
// costs), and the gap narrows as the problem grows — the Nakajima (2002)
// observation the paper cites when explaining why its flat-MPI code
// still performs well.
func TestHybridVsFlat(t *testing.T) {
	m := EarthSimulator()
	mp := DefaultModelParams()
	prof := ReferenceProfile()
	gap := func(nr int) float64 {
		cfg := RunConfig{Spec: PaperSpec(nr), Procs: 4096}
		flat, err := Predict(m, mp, prof, cfg)
		if err != nil {
			t.Fatal(err)
		}
		hyb, err := PredictHybrid(m, mp, prof, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if hyb.Efficiency <= flat.Efficiency {
			t.Errorf("nr=%d: hybrid (%.1f%%) should beat flat (%.1f%%) at 4096 APs",
				nr, hyb.Efficiency*100, flat.Efficiency*100)
		}
		return hyb.Efficiency - flat.Efficiency
	}
	gSmall := gap(255)
	gLarge := gap(511)
	if gLarge >= gSmall {
		t.Errorf("efficiency gap should narrow with problem size: %.3f -> %.3f", gSmall, gLarge)
	}
}

func TestHybridValidation(t *testing.T) {
	if _, err := PredictHybrid(EarthSimulator(), DefaultModelParams(), ReferenceProfile(),
		RunConfig{Spec: PaperSpec(511), Procs: 4095}); err == nil {
		t.Error("non-multiple AP count accepted")
	}
}
