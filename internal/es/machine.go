// Package es models the Earth Simulator — the 640-node, 5120-processor
// vector-parallel machine of JAMSTEC on which the paper measured 15.2
// TFlops — and predicts the performance of the yycore algorithm on it.
//
// We obviously cannot run on the Earth Simulator; per the substitution
// policy in DESIGN.md, the machine is replaced by an explicit analytic
// model: vector-pipeline timing (startup plus element rate, register
// length 256, memory-bank-conflict penalty for power-of-two leading
// dimensions), 8 arithmetic processors per node, and the 12.3 GB/s x 2
// inter-node crossbar. The algorithmic inputs of the model — flops,
// vector-loop structure and communication volume per step — are measured
// from the real instrumented solver, so the model's shape (who wins, by
// what factor, where the knees fall) is driven by the actual code.
package es

import (
	"fmt"
	"strings"
)

// Machine describes the hardware, Table I of the paper.
type Machine struct {
	APPeakFlops   float64 // peak flop rate of one arithmetic processor (AP)
	APsPerNode    int     // shared-memory APs per processor node (PN)
	Nodes         int     // total processor nodes
	VectorRegLen  int     // vector register length (elements)
	MemPerNodeGB  float64 // shared memory per node
	LinkBandwidth float64 // inter-node data transfer rate, one direction (bytes/s)
}

// EarthSimulator returns the machine of Table I.
func EarthSimulator() Machine {
	return Machine{
		APPeakFlops:   8e9,
		APsPerNode:    8,
		Nodes:         640,
		VectorRegLen:  256,
		MemPerNodeGB:  16,
		LinkBandwidth: 12.3e9,
	}
}

// TotalAPs returns the machine's processor count (5120).
func (m Machine) TotalAPs() int { return m.APsPerNode * m.Nodes }

// TotalPeakFlops returns the aggregate peak (40 Tflops).
func (m Machine) TotalPeakFlops() float64 {
	return m.APPeakFlops * float64(m.TotalAPs())
}

// TotalMemoryTB returns the aggregate main memory (10 TB).
func (m Machine) TotalMemoryTB() float64 {
	return m.MemPerNodeGB * float64(m.Nodes) / 1024
}

// TableI renders the specification table (Table I of the paper).
func (m Machine) TableI() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-50s %s\n", "Peak performance of arithmetic processor (AP)", fmt.Sprintf("%.0f Gflops", m.APPeakFlops/1e9))
	fmt.Fprintf(&b, "%-50s %d\n", "Number of AP in a processor node (PN)", m.APsPerNode)
	fmt.Fprintf(&b, "%-50s %d\n", "Total number of PN", m.Nodes)
	fmt.Fprintf(&b, "%-50s %d AP x %d PN = %d\n", "Total number of AP", m.APsPerNode, m.Nodes, m.TotalAPs())
	fmt.Fprintf(&b, "%-50s %.0f GB\n", "Shared memory size of PN", m.MemPerNodeGB)
	fmt.Fprintf(&b, "%-50s %.0f Gflops x %d AP = %d Tflops\n", "Total peak performance",
		m.APPeakFlops/1e9, m.TotalAPs(), int(m.TotalPeakFlops()/1e12))
	fmt.Fprintf(&b, "%-50s %.0f TB\n", "Total main memory", m.TotalMemoryTB())
	fmt.Fprintf(&b, "%-50s %.1f GB/s x 2\n", "Inter-node data transfer rate", m.LinkBandwidth/1e9)
	return b.String()
}
