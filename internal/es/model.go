package es

import (
	"fmt"
	"math"

	"repro/internal/decomp"
	"repro/internal/grid"
)

// ModelParams are the calibration constants of the performance model.
// The defaults are fitted so that the model regenerates Table II of the
// paper from the measured step profile; they stay within the physically
// plausible range for the Earth Simulator's 500 MHz vector pipes and
// crossbar network.
type ModelParams struct {
	// VectorStartupSec is the fixed cost of issuing one innermost vector
	// loop (pipeline fill + loop control).
	VectorStartupSec float64
	// ScalarOpRate is the sustained rate of inherently scalar operations.
	ScalarOpRate float64
	// MemBytesPerFlop throttles vector execution by memory traffic: the
	// sustained vector rate is peak / (1 + MemBytesPerFlop*peak/memBW),
	// folded here into a single effective slowdown factor.
	VectorSlowdown float64
	// EffLinkBW is the effective point-to-point bandwidth seen by one
	// process (the node's 12.3 GB/s x 2 crossbar shared by 8 flat-MPI
	// processes, minus protocol overhead).
	EffLinkBW float64
	// MsgLatencySec is the per-message cost.
	MsgLatencySec float64
	// SyncPerProcSec models the per-step synchronization and jitter cost
	// that grows with the total number of flat-MPI processes (the reason
	// hybrid parallelization needs smaller problems than flat MPI for the
	// same efficiency, cf. Nakajima 2002 cited by the paper).
	SyncPerProcSec float64
	// BankPenalty multiplies vector time when the radial extent is a
	// multiple of the vector register length (memory bank conflicts);
	// half the penalty applies at multiples of half the register.
	BankPenalty float64
	// ScalarOpsPerLoop charges the scalar loop-control work of each
	// vector loop when computing the vector operation ratio.
	ScalarOpsPerLoop float64
	// FieldsPerPoint and MemOverheadMB size the per-process memory
	// estimate.
	FieldsPerPoint float64
	MemOverheadMB  float64
}

// DefaultModelParams returns the calibrated constants.
func DefaultModelParams() ModelParams {
	return ModelParams{
		VectorStartupSec: 6.0e-8,
		ScalarOpRate:     2.0e8,
		VectorSlowdown:   1.2,
		EffLinkBW:        1.8e9,
		MsgLatencySec:    1.2e-5,
		SyncPerProcSec:   4.0e-6,
		BankPenalty:      1.5,
		ScalarOpsPerLoop: 4.8,
		FieldsPerPoint:   70,
		MemOverheadMB:    180,
	}
}

// RunConfig is one performance experiment: a grid and a process count.
// ForceDims, when non-zero, overrides the automatic process-grid shape
// (for the decomposition-shape ablation).
type RunConfig struct {
	Spec      grid.Spec
	Procs     int
	ForceDims [2]int
}

// Prediction is the model's output for one run configuration.
type Prediction struct {
	Config       RunConfig
	TFlops       float64
	Efficiency   float64 // fraction of aggregate peak
	StepTime     float64 // seconds per time step
	VecTime      float64 // critical-path decomposition of StepTime
	StartupTime  float64
	ScalarTime   float64
	CommTime     float64
	SyncTime     float64
	CommFraction float64
	Imbalance    float64 // max block / mean block

	AvgVectorLength float64
	VectorOpRatio   float64
	PointsPerAP     float64
	FlopsPerPoint   float64 // sustained flops per grid point (Table III)
	MemPerProcGB    float64
}

// maxBlock returns the largest block extents of a balanced partition.
func maxBlock(n, parts int) int {
	b := n / parts
	if n%parts != 0 {
		b++
	}
	return b
}

// Predict evaluates the performance model for one run configuration.
func Predict(m Machine, mp ModelParams, prof StepProfile, cfg RunConfig) (Prediction, error) {
	s := cfg.Spec
	if err := s.Validate(); err != nil {
		return Prediction{}, err
	}
	if cfg.Procs > m.TotalAPs() {
		return Prediction{}, fmt.Errorf("es: %d processes exceed the machine's %d APs", cfg.Procs, m.TotalAPs())
	}
	var l *decomp.Layout
	var err error
	if cfg.ForceDims[0] > 0 {
		l, err = decomp.NewLayoutDims(s, cfg.Procs, cfg.ForceDims[0], cfg.ForceDims[1])
	} else {
		l, err = decomp.NewLayout(s, cfg.Procs)
	}
	if err != nil {
		return Prediction{}, err
	}
	ntB := maxBlock(s.Nt, l.PT)
	npB := maxBlock(s.Np, l.PP)
	aMax := float64(ntB * npB)
	aAvg := float64(s.Nt) * float64(s.Np) / float64(l.PT*l.PP)
	nrP := float64(s.Nr + 2)

	// --- Compute time on the critical (largest-block) process. ---
	peak := m.APPeakFlops
	bank := 1.0
	switch {
	case s.Nr%m.VectorRegLen == 0:
		bank = mp.BankPenalty
	case s.Nr%(m.VectorRegLen/2) == 0:
		bank = 1 + (mp.BankPenalty-1)/2
	}
	flopsLoc := prof.FlopsPerPoint * float64(s.Nr) * aMax
	tVec := flopsLoc / peak * mp.VectorSlowdown * bank
	tStart := prof.LoopsPerColumn * aMax * mp.VectorStartupSec
	tScal := prof.ScalarOpsPerColumn * aMax / mp.ScalarOpRate

	// --- Communication on the critical process. ---
	// Per stage our algorithm exchanges: the 8 state fields once (the
	// post-overset update needs only the thin rim-crossing refresh), the
	// 3 magnetic-field components, and the div v intermediate: 12
	// field-halo layers. RK4 has 4 stages.
	const layersPerStep = 4 * (8 + 3 + 1)
	rows := 0.0
	msgs := 0.0
	if l.PT > 1 {
		rows += 2 * float64(npB)
		msgs += 2
	}
	if l.PP > 1 {
		rows += 2 * float64(ntB)
		msgs += 2
	}
	haloBytes := layersPerStep * rows * nrP * 8
	haloMsgs := 4 * 4 * msgs // 4 stages x 4 exchange operations

	// Overset: a panel-edge block owns about (ntB + npB) rim columns;
	// each flows 8 columns of nrP values per constraint application (4
	// applications per step), in each direction.
	rimCols := float64(ntB + npB)
	oversetBytes := 4 * rimCols * 8 * nrP * 8 * 2
	oversetMsgs := 4.0 * 2

	tComm := (haloBytes+oversetBytes)/mp.EffLinkBW + (haloMsgs+oversetMsgs)*mp.MsgLatencySec
	tSync := mp.SyncPerProcSec * float64(cfg.Procs)

	tStep := tVec + tStart + tScal + tComm + tSync
	totalPoints := float64(s.TotalPoints())
	totalFlopsPerStep := prof.FlopsPerPoint * totalPoints
	tflops := totalFlopsPerStep / tStep / 1e12

	chunks := math.Ceil(float64(s.Nr) / float64(m.VectorRegLen))
	avl := float64(s.Nr) / chunks * math.Min(prof.ElemsPerLoopOverNr, 1)
	if prof.ElemsPerLoopOverNr > 1 {
		// Loops covering padded rows slightly exceed Nr elements.
		avl = math.Min(float64(s.Nr)/chunks*prof.ElemsPerLoopOverNr, float64(m.VectorRegLen)-4)
	}
	elemsPerColumn := prof.LoopsPerColumn * float64(s.Nr) * prof.ElemsPerLoopOverNr
	scalarPerColumn := prof.ScalarOpsPerColumn + prof.LoopsPerColumn*mp.ScalarOpsPerLoop
	vor := elemsPerColumn / (elemsPerColumn + scalarPerColumn)

	memGB := (mp.FieldsPerPoint*nrP*float64(ntB+2)*float64(npB+2)*8 + mp.MemOverheadMB*1e6) / 1e9

	return Prediction{
		Config:          cfg,
		TFlops:          tflops,
		Efficiency:      tflops * 1e12 / (float64(cfg.Procs) * peak),
		StepTime:        tStep,
		VecTime:         tVec,
		StartupTime:     tStart,
		ScalarTime:      tScal,
		CommTime:        tComm,
		SyncTime:        tSync,
		CommFraction:    tComm / tStep,
		Imbalance:       aMax / aAvg,
		AvgVectorLength: avl,
		VectorOpRatio:   vor,
		PointsPerAP:     totalPoints / float64(cfg.Procs),
		FlopsPerPoint:   tflops * 1e12 / totalPoints,
		MemPerProcGB:    memGB,
	}, nil
}

// PaperSpec returns the paper's production grid with the given radial
// size (511 or 255): 514 latitudinal x 1538 longitudinal nodes per panel.
func PaperSpec(nr int) grid.Spec {
	return grid.Spec{Nr: nr, Nt: 514, Np: 1538, RI: 0.35, RO: 1.0}
}

// PredictHybrid evaluates the model for hybrid parallelization — MPI
// between nodes, microtasking across the 8 APs within each node — the
// alternative the paper declined in favour of flat MPI. cfg.Procs still
// counts APs; the MPI process count becomes cfg.Procs / APsPerNode, so
// each process owns a block eight times larger, amortizing the fixed
// per-process costs. This regenerates the paper's (and Nakajima 2002's)
// observation that flat MPI needs a larger problem to reach the same
// efficiency.
func PredictHybrid(m Machine, mp ModelParams, prof StepProfile, cfg RunConfig) (Prediction, error) {
	s := cfg.Spec
	if err := s.Validate(); err != nil {
		return Prediction{}, err
	}
	if cfg.Procs%m.APsPerNode != 0 {
		return Prediction{}, fmt.Errorf("es: hybrid needs a multiple of %d APs, got %d", m.APsPerNode, cfg.Procs)
	}
	nodes := cfg.Procs / m.APsPerNode
	l, err := decomp.NewLayout(s, nodes)
	if err != nil {
		return Prediction{}, err
	}
	ntB := maxBlock(s.Nt, l.PT)
	npB := maxBlock(s.Np, l.PP)
	aMax := float64(ntB * npB)
	aAvg := float64(s.Nt) * float64(s.Np) / float64(l.PT*l.PP)
	nrP := float64(s.Nr + 2)
	aps := float64(m.APsPerNode)

	// The node's 8 APs share the block: vector work, loop startups and
	// scalar work all divide by 8, at a microtasking efficiency below 1
	// (fork/join and imbalance inside the node).
	const microEff = 0.92
	peak := m.APPeakFlops
	bank := 1.0
	switch {
	case s.Nr%m.VectorRegLen == 0:
		bank = mp.BankPenalty
	case s.Nr%(m.VectorRegLen/2) == 0:
		bank = 1 + (mp.BankPenalty-1)/2
	}
	flopsLoc := prof.FlopsPerPoint * float64(s.Nr) * aMax
	tVec := flopsLoc / (peak * aps * microEff) * mp.VectorSlowdown * bank
	tStart := prof.LoopsPerColumn * aMax / aps * mp.VectorStartupSec / microEff
	tScal := prof.ScalarOpsPerColumn * aMax / aps / mp.ScalarOpRate

	const layersPerStep = 4 * (8 + 3 + 1)
	rows := 0.0
	msgs := 0.0
	if l.PT > 1 {
		rows += 2 * float64(npB)
		msgs += 2
	}
	if l.PP > 1 {
		rows += 2 * float64(ntB)
		msgs += 2
	}
	haloBytes := layersPerStep * rows * nrP * 8
	haloMsgs := 4 * 4 * msgs
	rimCols := float64(ntB + npB)
	oversetBytes := 4 * rimCols * 8 * nrP * 8 * 2
	oversetMsgs := 4.0 * 2
	// One MPI process per node owns the full node links.
	nodeBW := mp.EffLinkBW * aps
	tComm := (haloBytes+oversetBytes)/nodeBW + (haloMsgs+oversetMsgs)*mp.MsgLatencySec
	tSync := mp.SyncPerProcSec * float64(nodes)

	tStep := tVec + tStart + tScal + tComm + tSync
	totalPoints := float64(s.TotalPoints())
	tflops := prof.FlopsPerPoint * totalPoints / tStep / 1e12

	return Prediction{
		Config:       cfg,
		TFlops:       tflops,
		Efficiency:   tflops * 1e12 / (float64(cfg.Procs) * peak),
		StepTime:     tStep,
		VecTime:      tVec,
		StartupTime:  tStart,
		ScalarTime:   tScal,
		CommTime:     tComm,
		SyncTime:     tSync,
		CommFraction: tComm / tStep,
		Imbalance:    aMax / aAvg,
		PointsPerAP:  totalPoints / float64(cfg.Procs),
	}, nil
}
