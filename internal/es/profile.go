package es

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/mhd"
	"repro/internal/perfcount"
)

// StepProfile characterizes one time step of the yycore algorithm,
// measured from the real instrumented solver on a small grid. The
// quantities are per-grid-point (or per angular column) ratios of the
// stencil code, so they transfer to production grid sizes: a finite
// difference sweep does the same work per point at any resolution.
type StepProfile struct {
	// FlopsPerPoint is the floating-point work per grid point per step
	// (both panels counted, like the hardware counter on the ES).
	FlopsPerPoint float64
	// LoopsPerColumn is the number of innermost (radial) vector loops
	// executed per angular column (theta x phi node, both panels) per
	// step; each such loop costs one vector startup.
	LoopsPerColumn float64
	// ScalarOpsPerColumn is the inherently scalar work per angular
	// column per step (boundary fix-ups, interpolation bookkeeping).
	ScalarOpsPerColumn float64
	// ElemsPerLoopOverNr is VectorElems/(VectorLoops*Nr), close to 1:
	// how much of each radial row a vector loop actually covers.
	ElemsPerLoopOverNr float64
}

// MeasureStepProfile runs the serial two-panel solver for a few steps on
// a calibration grid and reduces the perfcount deltas to per-point
// ratios.
func MeasureStepProfile(s grid.Spec, prm mhd.Params) (StepProfile, error) {
	sv, err := mhd.NewSolver(s, prm, mhd.DefaultIC())
	if err != nil {
		return StepProfile{}, err
	}
	dt := sv.EstimateDT(0.2)
	// Warm-up step so one-time initialization work is excluded.
	sv.Advance(dt)
	before := perfcount.Read()
	const steps = 2
	for n := 0; n < steps; n++ {
		sv.Advance(dt)
	}
	d := perfcount.Read().Sub(before)
	points := float64(s.TotalPoints()) * steps
	columns := float64(2*s.Nt*s.Np) * steps
	if d.VectorLoops == 0 {
		return StepProfile{}, fmt.Errorf("es: no vector loops recorded")
	}
	return StepProfile{
		FlopsPerPoint:      float64(d.Flops) / points,
		LoopsPerColumn:     float64(d.VectorLoops) / columns,
		ScalarOpsPerColumn: float64(d.ScalarOps) / columns,
		ElemsPerLoopOverNr: float64(d.VectorElems) / (float64(d.VectorLoops) * float64(s.Nr)),
	}, nil
}

// ReferenceProfile returns the profile measured once on a 17x17 panel
// calibration grid with the default parameters. It is deterministic, so
// callers that do not want to pay the measurement cost can use it
// directly; the numbers are refreshed by TestReferenceProfileCurrent
// whenever the solver's work content changes.
func ReferenceProfile() StepProfile {
	return StepProfile{
		FlopsPerPoint:      2250,
		LoopsPerColumn:     467,
		ScalarOpsPerColumn: 18.6,
		ElemsPerLoopOverNr: 1.03,
	}
}
