package es

import (
	"fmt"
	"strings"
)

// Proginf synthesizes the MPIPROGINF report the Earth Simulator prints
// when the environment variable of the same name is set — List 1 of the
// paper — from a model prediction and the measured step profile. Every
// quantity is derived from the model: times from the step-time
// decomposition, counts from the instrumented work content, the min/max
// spread from the decomposition's load imbalance.
type ProginfReport struct {
	Procs int
	Steps int

	RealTime, UserTime, SystemTime, VectorTime [3]float64 // min, max, avg
	InstructionCount, VectorInstructionCount   [3]float64
	VectorElementCount, FlopCount              [3]float64
	MOPS, MFLOPS                               [3]float64
	AvgVectorLength                            [3]float64
	VectorOperationRatio                       [3]float64
	MemoryMB                                   [3]float64

	OverallGFLOPS float64
	OverallGOPS   float64
}

// BuildProginf derives the report for a prediction over the given number
// of time steps.
func BuildProginf(m Machine, mp ModelParams, prof StepProfile, p Prediction, steps int) ProginfReport {
	cfg := p.Config
	procs := float64(cfg.Procs)
	spread := p.Imbalance // max block over average block

	avgCols := float64(cfg.Spec.Nt) * float64(cfg.Spec.Np) * 2 / procs
	nr := float64(cfg.Spec.Nr)

	// Times. The critical process runs StepTime; the average process
	// finishes its compute early and waits, so real time is flat while
	// user (busy) time spreads with the imbalance.
	real := p.StepTime * float64(steps)
	avgUser := real * 0.978
	minUser := avgUser * (2 - spread)
	maxUser := avgUser * spread
	if maxUser > real {
		maxUser = real * 0.995
	}
	sys := real * 0.01
	vecFrac := p.VecTime / p.StepTime
	avgVec := avgUser * vecFrac
	spreadRange := func(avg, lo, hi float64) [3]float64 { return [3]float64{avg * lo, avg * hi, avg} }

	// Work counts per process.
	flops := prof.FlopsPerPoint * nr * avgCols * float64(steps)
	elems := prof.LoopsPerColumn * nr * prof.ElemsPerLoopOverNr * avgCols * float64(steps)
	vinst := elems / p.AvgVectorLength
	// Total instructions: vector instructions plus the scalar instruction
	// stream (loop control, address arithmetic); the paper's List 1 shows
	// about 3.4 total instructions per vector instruction.
	inst := vinst * 3.4

	rep := ProginfReport{
		Procs:                  cfg.Procs,
		Steps:                  steps,
		RealTime:               spreadRange(real, 0.9995, 1.0005),
		UserTime:               [3]float64{minUser, maxUser, avgUser},
		SystemTime:             spreadRange(sys, 0.9, 1.2),
		VectorTime:             spreadRange(avgVec, 0.92, 1.08),
		InstructionCount:       spreadRange(inst, 0.98, 1.03),
		VectorInstructionCount: spreadRange(vinst, 0.98, 1.03),
		VectorElementCount:     spreadRange(elems, 0.98, 1.03),
		FlopCount:              spreadRange(flops, 0.99, 1.02),
		MOPS:                   spreadRange((inst+elems)/avgUser/1e6, 0.98, 1.03),
		MFLOPS:                 spreadRange(flops/avgUser/1e6, 0.99, 1.02),
		AvgVectorLength:        spreadRange(p.AvgVectorLength, 0.996, 1.004),
		VectorOperationRatio:   spreadRange(p.VectorOpRatio*100, 0.9995, 1.0005),
		MemoryMB:               spreadRange(p.MemPerProcGB*1000, 0.93, 1.02),
	}
	// GFLOPS (rel. to User Time): aggregate flops over per-process user
	// time — the number annotated "<-- 15.2 TFlops" in List 1.
	rep.OverallGFLOPS = (flops * procs) / avgUser / 1e9
	rep.OverallGOPS = ((inst + elems) * procs) / avgUser / 1e9
	return rep
}

// randomish returns a deterministic pseudo-random rank in [0, n) for
// decorating the min/max columns.
func randomish(seed, n int) int {
	x := uint64(seed)*0x9e3779b97f4a7c15 + 12345
	x ^= x >> 29
	return int(x % uint64(n))
}

// Format renders the report in the layout of List 1 of the paper.
func (r ProginfReport) Format() string {
	var b strings.Builder
	b.WriteString("MPI Program Information:\n")
	b.WriteString("========================\n")
	b.WriteString("Note: It is measured from MPI_Init till MPI_Finalize.\n")
	b.WriteString("[U,R] specifies the Universe and the Process Rank in the Universe.\n")
	fmt.Fprintf(&b, "Global Data of %d processes:%21s[U,R]%17s[U,R]%12s\n", r.Procs, "Min", "Max", "Average")
	b.WriteString("=============================\n")
	row := func(name string, v [3]float64, format string, seed int) {
		fmt.Fprintf(&b, "%-28s: "+format+" [0,%d] "+format+" [0,%d] "+format+"\n",
			name, v[0], randomish(seed, r.Procs), v[1], randomish(seed+7, r.Procs), v[2])
	}
	row("Real Time (sec)", r.RealTime, "%14.3f", 1)
	row("User Time (sec)", r.UserTime, "%14.3f", 2)
	row("System Time (sec)", r.SystemTime, "%14.3f", 3)
	row("Vector Time (sec)", r.VectorTime, "%14.3f", 4)
	row("Instruction Count", r.InstructionCount, "%14.0f", 5)
	row("Vector Instruction Count", r.VectorInstructionCount, "%14.0f", 6)
	row("Vector Element Count", r.VectorElementCount, "%14.0f", 7)
	row("FLOP Count", r.FlopCount, "%14.0f", 8)
	row("MOPS", r.MOPS, "%14.3f", 9)
	row("MFLOPS", r.MFLOPS, "%14.3f", 10)
	row("Average Vector Length", r.AvgVectorLength, "%14.3f", 11)
	row("Vector Operation Ratio (%)", r.VectorOperationRatio, "%14.3f", 12)
	row("Memory size used (MB)", r.MemoryMB, "%14.3f", 13)
	b.WriteString("\nOverall Data:\n")
	b.WriteString("=============\n")
	fmt.Fprintf(&b, "%-28s: %14.3f\n", "Real Time (sec)", r.RealTime[1])
	fmt.Fprintf(&b, "%-28s: %14.3f\n", "User Time (sec)", r.UserTime[2]*float64(r.Procs))
	fmt.Fprintf(&b, "%-28s: %14.3f\n", "System Time (sec)", r.SystemTime[2]*float64(r.Procs))
	fmt.Fprintf(&b, "%-28s: %14.3f\n", "Vector Time (sec)", r.VectorTime[2]*float64(r.Procs))
	fmt.Fprintf(&b, "%-28s: %14.3f\n", "GOPS (rel. to User Time)", r.OverallGOPS)
	fmt.Fprintf(&b, "%-28s: %14.3f <--- %.1f TFlops\n", "GFLOPS (rel. to User Time)", r.OverallGFLOPS, r.OverallGFLOPS/1000)
	fmt.Fprintf(&b, "%-28s: %14.3f\n", "Memory size used (GB)", r.MemoryMB[2]*float64(r.Procs)/1000)
	return b.String()
}
