package es

import (
	"fmt"
	"strings"
)

// TableIIRow pairs one of the paper's six measured configurations with
// the model's prediction.
type TableIIRow struct {
	Procs                 int
	Nr                    int
	PaperTFlops           float64
	PaperEff              float64 // percent
	ModelTFlops           float64
	ModelEff              float64 // percent
	ModelCommFraction     float64
	ModelAvgVectorLength  float64
	ModelVectorOpRatioPct float64
}

// PaperTableII lists the measured rows of Table II of the paper.
func PaperTableII() []TableIIRow {
	return []TableIIRow{
		{Procs: 4096, Nr: 511, PaperTFlops: 15.2, PaperEff: 46},
		{Procs: 3888, Nr: 511, PaperTFlops: 13.8, PaperEff: 44},
		{Procs: 3888, Nr: 255, PaperTFlops: 12.1, PaperEff: 39},
		{Procs: 2560, Nr: 511, PaperTFlops: 10.3, PaperEff: 50},
		{Procs: 2560, Nr: 255, PaperTFlops: 9.17, PaperEff: 45},
		{Procs: 1200, Nr: 255, PaperTFlops: 5.40, PaperEff: 56},
	}
}

// TableII evaluates the model for every measured configuration of the
// paper's Table II.
func TableII(m Machine, mp ModelParams, prof StepProfile) ([]TableIIRow, error) {
	rows := PaperTableII()
	for i := range rows {
		p, err := Predict(m, mp, prof, RunConfig{Spec: PaperSpec(rows[i].Nr), Procs: rows[i].Procs})
		if err != nil {
			return nil, err
		}
		rows[i].ModelTFlops = p.TFlops
		rows[i].ModelEff = p.Efficiency * 100
		rows[i].ModelCommFraction = p.CommFraction
		rows[i].ModelAvgVectorLength = p.AvgVectorLength
		rows[i].ModelVectorOpRatioPct = p.VectorOpRatio * 100
	}
	return rows, nil
}

// FormatTableII renders the comparison table.
func FormatTableII(rows []TableIIRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-22s %-14s %-12s %-14s %-12s\n",
		"processors", "grid points", "paper Tflops", "paper eff", "model Tflops", "model eff")
	for _, r := range rows {
		grid := fmt.Sprintf("%d x 514 x 1538 x 2", r.Nr)
		fmt.Fprintf(&b, "%-10d %-22s %-14.3g %-12s %-14.3g %-12s\n",
			r.Procs, grid, r.PaperTFlops, fmt.Sprintf("%.0f%%", r.PaperEff),
			r.ModelTFlops, fmt.Sprintf("%.0f%%", r.ModelEff))
	}
	return b.String()
}

// PeerResult is a published Earth Simulator performance result from the
// SC2002/SC2003 papers the paper compares against in Table III.
type PeerResult struct {
	Name       string
	TFlops     float64
	Nodes      int // processor nodes used
	EffPct     float64
	GridPoints float64
	Kind       string // simulation kind
	Field      string
	Method     string
	Parallel   string
}

// PeerResults returns the published comparison rows of Table III (the
// yycore row is computed by the model, see TableIII).
func PeerResults() []PeerResult {
	return []PeerResult{
		{Name: "Shingu", TFlops: 26.6, Nodes: 640, EffPct: 65, GridPoints: 7.1e8,
			Kind: "fluid", Field: "atmosphere", Method: "spectral", Parallel: "MPI-microtask"},
		{Name: "Yokokawa", TFlops: 16.4, Nodes: 512, EffPct: 50, GridPoints: 8.6e9,
			Kind: "fluid", Field: "turbulence", Method: "spectral", Parallel: "MPI-microtask"},
		{Name: "Sakagami", TFlops: 14.9, Nodes: 512, EffPct: 45, GridPoints: 1.7e10,
			Kind: "fluid", Field: "inertial fusion", Method: "finite volume", Parallel: "HPF (flat MPI)"},
		{Name: "Komatitsch", TFlops: 5, Nodes: 243, EffPct: 32, GridPoints: 5.5e9,
			Kind: "wave propagation", Field: "seismic wave", Method: "spectral element", Parallel: "flat MPI"},
	}
}

// TableIIIRow is one column of the paper's Table III with the derived
// metrics (grid points per AP, sustained flops per grid point).
type TableIIIRow struct {
	PeerResult
	APs         int
	PointsPerAP float64
	FlopsPerGP  float64
}

// TableIII builds the full comparison: the four published peers plus the
// yycore row computed by the performance model at the paper's flagship
// configuration (4096 processors = 512 nodes).
func TableIII(m Machine, mp ModelParams, prof StepProfile) ([]TableIIIRow, error) {
	p, err := Predict(m, mp, prof, RunConfig{Spec: PaperSpec(511), Procs: 4096})
	if err != nil {
		return nil, err
	}
	peers := PeerResults()
	rows := make([]TableIIIRow, 0, len(peers)+1)
	for _, pr := range peers {
		rows = append(rows, derive(m, pr))
	}
	self := PeerResult{
		Name:       "Kageyama et al. (this model)",
		TFlops:     p.TFlops,
		Nodes:      p.Config.Procs / m.APsPerNode,
		EffPct:     p.Efficiency * 100,
		GridPoints: float64(p.Config.Spec.TotalPoints()),
		Kind:       "fluid",
		Field:      "geodynamo",
		Method:     "finite difference",
		Parallel:   "flat MPI",
	}
	rows = append(rows, derive(m, self))
	return rows, nil
}

func derive(m Machine, pr PeerResult) TableIIIRow {
	aps := pr.Nodes * m.APsPerNode
	return TableIIIRow{
		PeerResult:  pr,
		APs:         aps,
		PointsPerAP: pr.GridPoints / float64(aps),
		FlopsPerGP:  pr.TFlops * 1e12 / pr.GridPoints,
	}
}

// FormatTableIII renders the comparison like the paper's Table III.
func FormatTableIII(rows []TableIIIRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-30s %-12s %-6s %-10s %-10s %-11s %-17s %-16s %-17s %s\n",
		"Paper", "Flops/PN", "eff", "g.p.", "g.p./AP", "Flops/g.p.", "Simulation kind", "Field", "Method", "Parallelization")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-30s %-12s %-6s %-10.2g %-10.2g %-11s %-17s %-16s %-17s %s\n",
			r.Name,
			fmt.Sprintf("%.3gT/%d", r.TFlops, r.Nodes),
			fmt.Sprintf("%.0f%%", r.EffPct),
			r.GridPoints, r.PointsPerAP,
			fmt.Sprintf("%.2gK", r.FlopsPerGP/1e3),
			r.Kind, r.Field, r.Method, r.Parallel)
	}
	return b.String()
}

// ScalingPoint is one point of the model's strong-scaling curve.
type ScalingPoint struct {
	Procs      int
	TFlops     float64
	Efficiency float64
}

// ScalingCurve sweeps the model over process counts at a fixed grid —
// the continuous version of Table II's scattered rows, showing where the
// flat-MPI efficiency knee falls.
func ScalingCurve(m Machine, mp ModelParams, prof StepProfile, nr int, procs []int) ([]ScalingPoint, error) {
	out := make([]ScalingPoint, 0, len(procs))
	for _, p := range procs {
		pred, err := Predict(m, mp, prof, RunConfig{Spec: PaperSpec(nr), Procs: p})
		if err != nil {
			return nil, err
		}
		out = append(out, ScalingPoint{Procs: p, TFlops: pred.TFlops, Efficiency: pred.Efficiency})
	}
	return out, nil
}
