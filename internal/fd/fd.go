// Package fd implements the second-order central finite differences of
// the paper (section III) on patch fields, with second-order one-sided
// closures at global patch boundaries.
//
// Derivatives are evaluated at every node of the padded-interior region
// [H, H+N) in each dimension. A node adjacent to the storage edge uses the
// halo value when the patch edge is an interior seam (the halo was filled
// by a parallel halo exchange), and a one-sided stencil when the edge is a
// global boundary of the panel (physical radial wall or overset internal
// boundary), where no halo data exists.
//
// All kernels keep the radial index in the innermost loop (unit stride),
// the vectorization dimension of the paper's yycore code, and report their
// work to perfcount.
package fd

import (
	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/perfcount"
)

// count charges a full interior sweep with fl flops per node.
func count(p *grid.Patch, fl int) {
	n := int64(p.Nr) * int64(p.Nt) * int64(p.Np)
	perfcount.AddFlops(n * int64(fl))
	perfcount.AddVectorLoops(int64(p.Nt)*int64(p.Np), n)
}

// sweepK runs body(k) for every interior phi index, range-split over
// the patch worker pool. Each k owns a disjoint set of output rows, so
// the parallel sweep is bit-identical to the serial one.
func sweepK(p *grid.Patch, body func(k int)) {
	h := p.H
	p.Par.For(p.Np, func(lo, hi int) {
		for k := h + lo; k < h+hi; k++ {
			body(k)
		}
	})
}

// Deriv1R writes the first radial derivative of f into out.
func Deriv1R(p *grid.Patch, f, out *field.Scalar) {
	h := p.H
	c := 1 / (2 * p.Dr)
	lo, hi := p.GlobalEdge(0), p.GlobalEdge(1)
	sweepK(p, func(k int) {
		for j := h; j < h+p.Nt; j++ {
			fr := f.Row(j, k)
			or := out.Row(j, k)
			for i := h; i < h+p.Nr; i++ {
				or[i] = c * (fr[i+1] - fr[i-1])
			}
			if lo {
				i := h
				or[i] = c * (-3*fr[i] + 4*fr[i+1] - fr[i+2])
			}
			if hi {
				i := h + p.Nr - 1
				or[i] = c * (3*fr[i] - 4*fr[i-1] + fr[i-2])
			}
		}
	})
	count(p, 3)
}

// Deriv2R writes the second radial derivative of f into out. Global
// boundary nodes use the first-order three-point one-sided formula; those
// nodes only feed discarded boundary right-hand sides.
func Deriv2R(p *grid.Patch, f, out *field.Scalar) {
	h := p.H
	c := 1 / (p.Dr * p.Dr)
	lo, hi := p.GlobalEdge(0), p.GlobalEdge(1)
	sweepK(p, func(k int) {
		for j := h; j < h+p.Nt; j++ {
			fr := f.Row(j, k)
			or := out.Row(j, k)
			for i := h; i < h+p.Nr; i++ {
				or[i] = c * (fr[i+1] - 2*fr[i] + fr[i-1])
			}
			if lo {
				i := h
				or[i] = c * (fr[i] - 2*fr[i+1] + fr[i+2])
			}
			if hi {
				i := h + p.Nr - 1
				or[i] = c * (fr[i] - 2*fr[i-1] + fr[i-2])
			}
		}
	})
	count(p, 4)
}

// Deriv1T writes the first colatitudinal derivative of f into out.
func Deriv1T(p *grid.Patch, f, out *field.Scalar) {
	h := p.H
	c := 1 / (2 * p.Dt)
	lo, hi := p.GlobalEdge(2), p.GlobalEdge(3)
	sweepK(p, func(k int) {
		for j := h; j < h+p.Nt; j++ {
			fp := f.Row(j+1, k)
			fm := f.Row(j-1, k)
			or := out.Row(j, k)
			switch {
			case lo && j == h:
				f0, f1, f2 := f.Row(j, k), f.Row(j+1, k), f.Row(j+2, k)
				for i := h; i < h+p.Nr; i++ {
					or[i] = c * (-3*f0[i] + 4*f1[i] - f2[i])
				}
			case hi && j == h+p.Nt-1:
				f0, f1, f2 := f.Row(j, k), f.Row(j-1, k), f.Row(j-2, k)
				for i := h; i < h+p.Nr; i++ {
					or[i] = c * (3*f0[i] - 4*f1[i] + f2[i])
				}
			default:
				for i := h; i < h+p.Nr; i++ {
					or[i] = c * (fp[i] - fm[i])
				}
			}
		}
	})
	count(p, 3)
}

// Deriv2T writes the second colatitudinal derivative of f into out.
func Deriv2T(p *grid.Patch, f, out *field.Scalar) {
	h := p.H
	c := 1 / (p.Dt * p.Dt)
	lo, hi := p.GlobalEdge(2), p.GlobalEdge(3)
	sweepK(p, func(k int) {
		for j := h; j < h+p.Nt; j++ {
			fc := f.Row(j, k)
			fp := f.Row(j+1, k)
			fm := f.Row(j-1, k)
			or := out.Row(j, k)
			switch {
			case lo && j == h:
				f1, f2 := f.Row(j+1, k), f.Row(j+2, k)
				for i := h; i < h+p.Nr; i++ {
					or[i] = c * (fc[i] - 2*f1[i] + f2[i])
				}
			case hi && j == h+p.Nt-1:
				f1, f2 := f.Row(j-1, k), f.Row(j-2, k)
				for i := h; i < h+p.Nr; i++ {
					or[i] = c * (fc[i] - 2*f1[i] + f2[i])
				}
			default:
				for i := h; i < h+p.Nr; i++ {
					or[i] = c * (fp[i] - 2*fc[i] + fm[i])
				}
			}
		}
	})
	count(p, 4)
}

// Deriv1P writes the first azimuthal derivative of f into out.
func Deriv1P(p *grid.Patch, f, out *field.Scalar) {
	h := p.H
	c := 1 / (2 * p.Dp)
	lo, hi := p.GlobalEdge(4), p.GlobalEdge(5)
	sweepK(p, func(k int) {
		kp, km := k+1, k-1
		oneSided := 0
		switch {
		case lo && k == h:
			oneSided = 1
		case hi && k == h+p.Np-1:
			oneSided = -1
		}
		for j := h; j < h+p.Nt; j++ {
			or := out.Row(j, k)
			switch oneSided {
			case 1:
				f0, f1, f2 := f.Row(j, k), f.Row(j, k+1), f.Row(j, k+2)
				for i := h; i < h+p.Nr; i++ {
					or[i] = c * (-3*f0[i] + 4*f1[i] - f2[i])
				}
			case -1:
				f0, f1, f2 := f.Row(j, k), f.Row(j, k-1), f.Row(j, k-2)
				for i := h; i < h+p.Nr; i++ {
					or[i] = c * (3*f0[i] - 4*f1[i] + f2[i])
				}
			default:
				fp := f.Row(j, kp)
				fm := f.Row(j, km)
				for i := h; i < h+p.Nr; i++ {
					or[i] = c * (fp[i] - fm[i])
				}
			}
		}
	})
	count(p, 3)
}

// Deriv2P writes the second azimuthal derivative of f into out.
func Deriv2P(p *grid.Patch, f, out *field.Scalar) {
	h := p.H
	c := 1 / (p.Dp * p.Dp)
	lo, hi := p.GlobalEdge(4), p.GlobalEdge(5)
	sweepK(p, func(k int) {
		oneSided := 0
		switch {
		case lo && k == h:
			oneSided = 1
		case hi && k == h+p.Np-1:
			oneSided = -1
		}
		for j := h; j < h+p.Nt; j++ {
			or := out.Row(j, k)
			fc := f.Row(j, k)
			switch oneSided {
			case 1:
				f1, f2 := f.Row(j, k+1), f.Row(j, k+2)
				for i := h; i < h+p.Nr; i++ {
					or[i] = c * (fc[i] - 2*f1[i] + f2[i])
				}
			case -1:
				f1, f2 := f.Row(j, k-1), f.Row(j, k-2)
				for i := h; i < h+p.Nr; i++ {
					or[i] = c * (fc[i] - 2*f1[i] + f2[i])
				}
			default:
				fp := f.Row(j, k+1)
				fm := f.Row(j, k-1)
				for i := h; i < h+p.Nr; i++ {
					or[i] = c * (fp[i] - 2*fc[i] + fm[i])
				}
			}
		}
	})
	count(p, 4)
}
