package fd

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/field"
	"repro/internal/grid"
)

// fill evaluates fn at every padded node (halos included).
func fill(p *grid.Patch, f *field.Scalar, fn func(r, t, ph float64) float64) {
	nr, nt, np := p.Padded()
	for k := 0; k < np; k++ {
		for j := 0; j < nt; j++ {
			for i := 0; i < nr; i++ {
				f.Set(i, j, k, fn(p.R[i], p.Theta[j], p.Phi[k]))
			}
		}
	}
}

// maxErr returns the max abs difference between g and fn over interior
// nodes, shrunk by margin nodes per side in the axis'th dimension.
func maxErr(p *grid.Patch, g *field.Scalar, fn func(r, t, ph float64) float64, axis, margin int) float64 {
	h := p.H
	var m float64
	ilo, ihi := h, h+p.Nr
	jlo, jhi := h, h+p.Nt
	klo, khi := h, h+p.Np
	switch axis {
	case 0:
		ilo += margin
		ihi -= margin
	case 1:
		jlo += margin
		jhi -= margin
	case 2:
		klo += margin
		khi -= margin
	}
	for k := klo; k < khi; k++ {
		for j := jlo; j < jhi; j++ {
			for i := ilo; i < ihi; i++ {
				e := math.Abs(g.At(i, j, k) - fn(p.R[i], p.Theta[j], p.Phi[k]))
				if e > m {
					m = e
				}
			}
		}
	}
	return m
}

func f0(r, t, p float64) float64 { return math.Sin(2*r) * math.Cos(t) * math.Sin(p/2) }
func dfdr(r, t, p float64) float64 {
	return 2 * math.Cos(2*r) * math.Cos(t) * math.Sin(p/2)
}
func d2fdr2(r, t, p float64) float64 {
	return -4 * math.Sin(2*r) * math.Cos(t) * math.Sin(p/2)
}
func dfdt(r, t, p float64) float64 {
	return -math.Sin(2*r) * math.Sin(t) * math.Sin(p/2)
}
func d2fdt2(r, t, p float64) float64 {
	return -math.Sin(2*r) * math.Cos(t) * math.Sin(p/2)
}
func dfdp(r, t, p float64) float64 {
	return 0.5 * math.Sin(2*r) * math.Cos(t) * math.Cos(p/2)
}
func d2fdp2(r, t, p float64) float64 {
	return -0.25 * math.Sin(2*r) * math.Cos(t) * math.Sin(p/2)
}

type op struct {
	name   string
	apply  func(*grid.Patch, *field.Scalar, *field.Scalar)
	exact  func(r, t, p float64) float64
	axis   int
	margin int // interior margin for convergence measurement
	order  float64
}

func ops() []op {
	return []op{
		{"Deriv1R", Deriv1R, dfdr, 0, 0, 2},
		{"Deriv2R", Deriv2R, d2fdr2, 0, 1, 2},
		{"Deriv1T", Deriv1T, dfdt, 1, 0, 2},
		{"Deriv2T", Deriv2T, d2fdt2, 1, 1, 2},
		{"Deriv1P", Deriv1P, dfdp, 2, 0, 2},
		{"Deriv2P", Deriv2P, d2fdp2, 2, 1, 2},
	}
}

// TestConvergenceOrder verifies second-order convergence on a full panel
// patch (one-sided closures at every global edge). Second derivatives are
// measured one node in from the boundary, where the closure is first
// order by design (those nodes feed discarded right-hand sides).
func TestConvergenceOrder(t *testing.T) {
	for _, o := range ops() {
		errAt := func(nt int) float64 {
			s := grid.NewSpec(nt, nt)
			p := grid.NewPatch(s, grid.Yin, 1)
			f := p.NewScalar()
			g := p.NewScalar()
			fill(p, f, f0)
			o.apply(p, f, g)
			return maxErr(p, g, o.exact, o.axis, o.margin)
		}
		e1 := errAt(17)
		e2 := errAt(33)
		rate := math.Log2(e1 / e2)
		if rate < o.order-0.4 {
			t.Errorf("%s: convergence rate %.2f, want about %.0f (errors %g -> %g)",
				o.name, rate, o.order, e1, e2)
		}
	}
}

// TestExactOnQuadratics: centered and one-sided second-order first
// derivatives are exact for quadratic profiles.
func TestExactOnQuadratics(t *testing.T) {
	s := grid.NewSpec(9, 9)
	p := grid.NewPatch(s, grid.Yin, 1)
	f := p.NewScalar()
	g := p.NewScalar()

	fill(p, f, func(r, t, ph float64) float64 { return 3*r*r - 2*r + 1 })
	Deriv1R(p, f, g)
	if e := maxErr(p, g, func(r, t, ph float64) float64 { return 6*r - 2 }, 0, 0); e > 1e-11 {
		t.Errorf("Deriv1R not exact on quadratic: %g", e)
	}
	Deriv2R(p, f, g)
	if e := maxErr(p, g, func(r, t, ph float64) float64 { return 6 }, 0, 0); e > 1e-9 {
		t.Errorf("Deriv2R not exact on quadratic: %g", e)
	}

	fill(p, f, func(r, t, ph float64) float64 { return t*t + 4*t })
	Deriv1T(p, f, g)
	if e := maxErr(p, g, func(r, t, ph float64) float64 { return 2*t + 4 }, 1, 0); e > 1e-11 {
		t.Errorf("Deriv1T not exact on quadratic: %g", e)
	}

	fill(p, f, func(r, t, ph float64) float64 { return ph * ph })
	Deriv1P(p, f, g)
	if e := maxErr(p, g, func(r, t, ph float64) float64 { return 2 * ph }, 2, 0); e > 1e-11 {
		t.Errorf("Deriv1P not exact on quadratic: %g", e)
	}
}

// TestSubPatchUsesHalo: on an interior block (no global angular edges),
// stencils must consume halo values, reproducing the centered result of
// the full patch.
func TestSubPatchUsesHalo(t *testing.T) {
	s := grid.NewSpec(9, 17)
	full := grid.NewPatch(s, grid.Yin, 1)
	ff := full.NewScalar()
	gf := full.NewScalar()
	fill(full, ff, f0)
	Deriv1T(full, ff, gf)

	// Interior block in theta and phi.
	sub := grid.NewSubPatch(s, grid.Yin, 1, 0, s.Nr, 4, 12, 10, 30)
	fs := sub.NewScalar()
	gs := sub.NewScalar()
	fill(sub, fs, f0) // halos filled analytically, as a halo exchange would
	Deriv1T(sub, fs, gs)

	h := sub.H
	for k := h; k < h+sub.Np; k++ {
		for j := h; j < h+sub.Nt; j++ {
			for i := h; i < h+sub.Nr; i++ {
				want := gf.At(i, j+sub.JOff, k+sub.KOff)
				got := gs.At(i, j, k)
				if math.Abs(got-want) > 1e-13 {
					t.Fatalf("subpatch derivative differs at (%d,%d,%d): %g vs %g", i, j, k, got, want)
				}
			}
		}
	}
}

// TestOneSidedAtSeamNotUsed: a block touching a global edge must apply the
// one-sided closure there even if its halo contains garbage.
func TestOneSidedBoundaryIgnoresHalo(t *testing.T) {
	s := grid.NewSpec(9, 9)
	p := grid.NewPatch(s, grid.Yin, 1)
	f := p.NewScalar()
	g := p.NewScalar()
	fill(p, f, func(r, t, ph float64) float64 { return r * r })
	// Poison every halo value.
	nr, nt, np := p.Padded()
	h := p.H
	for k := 0; k < np; k++ {
		for j := 0; j < nt; j++ {
			for i := 0; i < nr; i++ {
				if i < h || i >= h+p.Nr || j < h || j >= h+p.Nt || k < h || k >= h+p.Np {
					f.Set(i, j, k, math.NaN())
				}
			}
		}
	}
	Deriv1R(p, f, g)
	for k := h; k < h+p.Np; k++ {
		for j := h; j < h+p.Nt; j++ {
			for i := h; i < h+p.Nr; i++ {
				if math.IsNaN(g.At(i, j, k)) {
					t.Fatalf("halo NaN leaked into derivative at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}

func BenchmarkDeriv1R(b *testing.B) {
	s := grid.NewSpec(63, 33)
	p := grid.NewPatch(s, grid.Yin, 1)
	f := p.NewScalar()
	g := p.NewScalar()
	fill(p, f, f0)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		Deriv1R(p, f, g)
	}
}

func BenchmarkDeriv1T(b *testing.B) {
	s := grid.NewSpec(63, 33)
	p := grid.NewPatch(s, grid.Yin, 1)
	f := p.NewScalar()
	g := p.NewScalar()
	fill(p, f, f0)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		Deriv1T(p, f, g)
	}
}

// Property: every derivative operator is linear: D(a f + b g) =
// a D(f) + b D(g), for random smooth fields and coefficients.
func TestDerivativeLinearityQuick(t *testing.T) {
	s := grid.NewSpec(9, 9)
	p := grid.NewPatch(s, grid.Yin, 1)
	opsList := []func(*grid.Patch, *field.Scalar, *field.Scalar){
		Deriv1R, Deriv2R, Deriv1T, Deriv2T, Deriv1P, Deriv2P,
	}
	check := func(a, b float64) bool {
		a = math.Mod(a, 10)
		b = math.Mod(b, 10)
		f := p.NewScalar()
		g := p.NewScalar()
		fill(p, f, func(r, t, ph float64) float64 { return math.Sin(3*r) * math.Cos(t+ph) })
		fill(p, g, func(r, t, ph float64) float64 { return r * r * math.Sin(t) * math.Sin(2*ph) })
		comb := p.NewScalar()
		comb.LinComb(a, f, b, g)
		for _, op := range opsList {
			df := p.NewScalar()
			dg := p.NewScalar()
			dc := p.NewScalar()
			op(p, f, df)
			op(p, g, dg)
			op(p, comb, dc)
			h := p.H
			for k := h; k < h+p.Np; k++ {
				for j := h; j < h+p.Nt; j++ {
					for i := h; i < h+p.Nr; i++ {
						want := a*df.At(i, j, k) + b*dg.At(i, j, k)
						if math.Abs(dc.At(i, j, k)-want) > 1e-9*(1+math.Abs(want)) {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}
