package fd

import (
	"math"
	"testing"

	"repro/internal/grid"
)

// fitOrder least-squares fits the slope of log(err) against log(h): the
// observed convergence order of a manufactured-solution sweep.
func fitOrder(hs, errs []float64) float64 {
	n := float64(len(hs))
	var sx, sy, sxx, sxy float64
	for i := range hs {
		x, y := math.Log(hs[i]), math.Log(errs[i])
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}

// TestMMSFittedOrder is the method-of-manufactured-solutions pin of the
// finite-difference layer: each derivative operator is applied to an
// analytic field at three resolutions and the fitted convergence order
// must be 2 within 0.15. Errors are measured over a fixed physical
// subdomain (margin scales with resolution) so the comparison region —
// all centered second-order stencils — is identical at every h.
func TestMMSFittedOrder(t *testing.T) {
	nts := []int{17, 25, 33}
	for _, o := range ops() {
		var hs, errs []float64
		for _, nt := range nts {
			s := grid.NewSpec(nt, nt)
			p := grid.NewPatch(s, grid.Yin, 1)
			f := p.NewScalar()
			g := p.NewScalar()
			fill(p, f, f0)
			o.apply(p, f, g)
			var h float64
			switch o.axis {
			case 0:
				h = p.Dr
			case 1:
				h = p.Dt
			default:
				h = p.Dp
			}
			hs = append(hs, h)
			errs = append(errs, maxErr(p, g, o.exact, o.axis, (nt-1)/8))
		}
		fit := fitOrder(hs, errs)
		if math.Abs(fit-2) > 0.15 {
			t.Errorf("%s: fitted convergence order %.3f, want 2.00 +- 0.15 (errors %v at h %v)",
				o.name, fit, errs, hs)
		}
	}
}
