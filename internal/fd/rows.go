package fd

import (
	"repro/internal/field"
	"repro/internal/grid"
)

// Per-row derivative kernels: each evaluates one derivative for the
// single (j, k) column of f, writing the padded-interior radial range
// [H, H+Nr) of dst — a full padded row slice (length NrP). They compute
// the statement-for-statement bodies of the full-field sweeps in fd.go,
// so a fused kernel assembling its column from these rows produces
// bitwise the values the separate full-field sweeps would have stored.
// The central loops run over length-tied sub-slices ([x:][:n]) so the
// compiler drops the per-element bounds checks; the arithmetic is
// unchanged.
//
// Row kernels do NOT report to perfcount: a fused caller touches each
// node once per pass and charges the per-operator aggregate itself
// (see mhd), where the full-field sweep would have charged count().

// Deriv1RRow writes the first radial derivative of column (j, k).
func Deriv1RRow(p *grid.Patch, f *field.Scalar, j, k int, dst []float64) {
	h, n := p.H, p.Nr
	c := 1 / (2 * p.Dr)
	fr := f.Row(j, k)
	fp := fr[h+1:][:n]
	fm := fr[h-1:][:n]
	o := dst[h:][:n]
	for i := 0; i < n; i++ {
		o[i] = c * (fp[i] - fm[i])
	}
	if p.GlobalEdge(0) {
		i := h
		dst[i] = c * (-3*fr[i] + 4*fr[i+1] - fr[i+2])
	}
	if p.GlobalEdge(1) {
		i := h + n - 1
		dst[i] = c * (3*fr[i] - 4*fr[i-1] + fr[i-2])
	}
}

// Deriv2RRow writes the second radial derivative of column (j, k).
func Deriv2RRow(p *grid.Patch, f *field.Scalar, j, k int, dst []float64) {
	h, n := p.H, p.Nr
	c := 1 / (p.Dr * p.Dr)
	fr := f.Row(j, k)
	fp := fr[h+1:][:n]
	fm := fr[h-1:][:n]
	fc := fr[h:][:n]
	o := dst[h:][:n]
	for i := 0; i < n; i++ {
		o[i] = c * (fp[i] - 2*fc[i] + fm[i])
	}
	if p.GlobalEdge(0) {
		i := h
		dst[i] = c * (fr[i] - 2*fr[i+1] + fr[i+2])
	}
	if p.GlobalEdge(1) {
		i := h + n - 1
		dst[i] = c * (fr[i] - 2*fr[i-1] + fr[i-2])
	}
}

// Deriv12RRow writes both radial derivatives of column (j, k) in one
// pass over the shared input row.
func Deriv12RRow(p *grid.Patch, f *field.Scalar, j, k int, d1, d2 []float64) {
	h, n := p.H, p.Nr
	c1 := 1 / (2 * p.Dr)
	c2 := 1 / (p.Dr * p.Dr)
	fr := f.Row(j, k)
	fp := fr[h+1:][:n]
	fm := fr[h-1:][:n]
	fc := fr[h:][:n]
	o1 := d1[h:][:n]
	o2 := d2[h:][:n]
	for i := 0; i < n; i++ {
		a, b, c0 := fp[i], fm[i], fc[i]
		o1[i] = c1 * (a - b)
		o2[i] = c2 * (a - 2*c0 + b)
	}
	if p.GlobalEdge(0) {
		i := h
		d1[i] = c1 * (-3*fr[i] + 4*fr[i+1] - fr[i+2])
		d2[i] = c2 * (fr[i] - 2*fr[i+1] + fr[i+2])
	}
	if p.GlobalEdge(1) {
		i := h + n - 1
		d1[i] = c1 * (3*fr[i] - 4*fr[i-1] + fr[i-2])
		d2[i] = c2 * (fr[i] - 2*fr[i-1] + fr[i-2])
	}
}

// Deriv1TRow writes the first colatitudinal derivative of column (j, k).
func Deriv1TRow(p *grid.Patch, f *field.Scalar, j, k int, dst []float64) {
	h, n := p.H, p.Nr
	c := 1 / (2 * p.Dt)
	lo, hi := p.GlobalEdge(2), p.GlobalEdge(3)
	o := dst[h:][:n]
	switch {
	case lo && j == h:
		f0 := f.Row(j, k)[h:][:n]
		f1 := f.Row(j+1, k)[h:][:n]
		f2 := f.Row(j+2, k)[h:][:n]
		for i := 0; i < n; i++ {
			o[i] = c * (-3*f0[i] + 4*f1[i] - f2[i])
		}
	case hi && j == h+p.Nt-1:
		f0 := f.Row(j, k)[h:][:n]
		f1 := f.Row(j-1, k)[h:][:n]
		f2 := f.Row(j-2, k)[h:][:n]
		for i := 0; i < n; i++ {
			o[i] = c * (3*f0[i] - 4*f1[i] + f2[i])
		}
	default:
		fp := f.Row(j+1, k)[h:][:n]
		fm := f.Row(j-1, k)[h:][:n]
		for i := 0; i < n; i++ {
			o[i] = c * (fp[i] - fm[i])
		}
	}
}

// Deriv2TRow writes the second colatitudinal derivative of column (j, k).
func Deriv2TRow(p *grid.Patch, f *field.Scalar, j, k int, dst []float64) {
	h, n := p.H, p.Nr
	c := 1 / (p.Dt * p.Dt)
	lo, hi := p.GlobalEdge(2), p.GlobalEdge(3)
	o := dst[h:][:n]
	fc := f.Row(j, k)[h:][:n]
	switch {
	case lo && j == h:
		f1 := f.Row(j+1, k)[h:][:n]
		f2 := f.Row(j+2, k)[h:][:n]
		for i := 0; i < n; i++ {
			o[i] = c * (fc[i] - 2*f1[i] + f2[i])
		}
	case hi && j == h+p.Nt-1:
		f1 := f.Row(j-1, k)[h:][:n]
		f2 := f.Row(j-2, k)[h:][:n]
		for i := 0; i < n; i++ {
			o[i] = c * (fc[i] - 2*f1[i] + f2[i])
		}
	default:
		fp := f.Row(j+1, k)[h:][:n]
		fm := f.Row(j-1, k)[h:][:n]
		for i := 0; i < n; i++ {
			o[i] = c * (fp[i] - 2*fc[i] + fm[i])
		}
	}
}

// Deriv12TRow writes both colatitudinal derivatives of column (j, k) in
// one pass over the shared input rows.
func Deriv12TRow(p *grid.Patch, f *field.Scalar, j, k int, d1, d2 []float64) {
	h, n := p.H, p.Nr
	c1 := 1 / (2 * p.Dt)
	c2 := 1 / (p.Dt * p.Dt)
	lo, hi := p.GlobalEdge(2), p.GlobalEdge(3)
	o1 := d1[h:][:n]
	o2 := d2[h:][:n]
	switch {
	case lo && j == h:
		f0 := f.Row(j, k)[h:][:n]
		f1 := f.Row(j+1, k)[h:][:n]
		f2 := f.Row(j+2, k)[h:][:n]
		for i := 0; i < n; i++ {
			a, b, c0 := f0[i], f1[i], f2[i]
			o1[i] = c1 * (-3*a + 4*b - c0)
			o2[i] = c2 * (a - 2*b + c0)
		}
	case hi && j == h+p.Nt-1:
		f0 := f.Row(j, k)[h:][:n]
		f1 := f.Row(j-1, k)[h:][:n]
		f2 := f.Row(j-2, k)[h:][:n]
		for i := 0; i < n; i++ {
			a, b, c0 := f0[i], f1[i], f2[i]
			o1[i] = c1 * (3*a - 4*b + c0)
			o2[i] = c2 * (a - 2*b + c0)
		}
	default:
		fc := f.Row(j, k)[h:][:n]
		fp := f.Row(j+1, k)[h:][:n]
		fm := f.Row(j-1, k)[h:][:n]
		for i := 0; i < n; i++ {
			a, b, c0 := fp[i], fm[i], fc[i]
			o1[i] = c1 * (a - b)
			o2[i] = c2 * (a - 2*c0 + b)
		}
	}
}

// phiOneSided classifies column k against the global phi boundaries:
// +1 low-edge one-sided, -1 high-edge one-sided, 0 central.
func phiOneSided(p *grid.Patch, k int) int {
	switch {
	case p.GlobalEdge(4) && k == p.H:
		return 1
	case p.GlobalEdge(5) && k == p.H+p.Np-1:
		return -1
	}
	return 0
}

// Deriv1PRow writes the first azimuthal derivative of column (j, k).
func Deriv1PRow(p *grid.Patch, f *field.Scalar, j, k int, dst []float64) {
	h, n := p.H, p.Nr
	c := 1 / (2 * p.Dp)
	o := dst[h:][:n]
	switch phiOneSided(p, k) {
	case 1:
		f0 := f.Row(j, k)[h:][:n]
		f1 := f.Row(j, k+1)[h:][:n]
		f2 := f.Row(j, k+2)[h:][:n]
		for i := 0; i < n; i++ {
			o[i] = c * (-3*f0[i] + 4*f1[i] - f2[i])
		}
	case -1:
		f0 := f.Row(j, k)[h:][:n]
		f1 := f.Row(j, k-1)[h:][:n]
		f2 := f.Row(j, k-2)[h:][:n]
		for i := 0; i < n; i++ {
			o[i] = c * (3*f0[i] - 4*f1[i] + f2[i])
		}
	default:
		fp := f.Row(j, k+1)[h:][:n]
		fm := f.Row(j, k-1)[h:][:n]
		for i := 0; i < n; i++ {
			o[i] = c * (fp[i] - fm[i])
		}
	}
}

// Deriv2PRow writes the second azimuthal derivative of column (j, k).
func Deriv2PRow(p *grid.Patch, f *field.Scalar, j, k int, dst []float64) {
	h, n := p.H, p.Nr
	c := 1 / (p.Dp * p.Dp)
	o := dst[h:][:n]
	fc := f.Row(j, k)[h:][:n]
	switch phiOneSided(p, k) {
	case 1:
		f1 := f.Row(j, k+1)[h:][:n]
		f2 := f.Row(j, k+2)[h:][:n]
		for i := 0; i < n; i++ {
			o[i] = c * (fc[i] - 2*f1[i] + f2[i])
		}
	case -1:
		f1 := f.Row(j, k-1)[h:][:n]
		f2 := f.Row(j, k-2)[h:][:n]
		for i := 0; i < n; i++ {
			o[i] = c * (fc[i] - 2*f1[i] + f2[i])
		}
	default:
		fp := f.Row(j, k+1)[h:][:n]
		fm := f.Row(j, k-1)[h:][:n]
		for i := 0; i < n; i++ {
			o[i] = c * (fp[i] - 2*fc[i] + fm[i])
		}
	}
}

// Deriv12PRow writes both azimuthal derivatives of column (j, k) in one
// pass over the shared input rows.
func Deriv12PRow(p *grid.Patch, f *field.Scalar, j, k int, d1, d2 []float64) {
	h, n := p.H, p.Nr
	c1 := 1 / (2 * p.Dp)
	c2 := 1 / (p.Dp * p.Dp)
	o1 := d1[h:][:n]
	o2 := d2[h:][:n]
	switch phiOneSided(p, k) {
	case 1:
		f0 := f.Row(j, k)[h:][:n]
		f1 := f.Row(j, k+1)[h:][:n]
		f2 := f.Row(j, k+2)[h:][:n]
		for i := 0; i < n; i++ {
			a, b, c0 := f0[i], f1[i], f2[i]
			o1[i] = c1 * (-3*a + 4*b - c0)
			o2[i] = c2 * (a - 2*b + c0)
		}
	case -1:
		f0 := f.Row(j, k)[h:][:n]
		f1 := f.Row(j, k-1)[h:][:n]
		f2 := f.Row(j, k-2)[h:][:n]
		for i := 0; i < n; i++ {
			a, b, c0 := f0[i], f1[i], f2[i]
			o1[i] = c1 * (3*a - 4*b + c0)
			o2[i] = c2 * (a - 2*b + c0)
		}
	default:
		fc := f.Row(j, k)[h:][:n]
		fp := f.Row(j, k+1)[h:][:n]
		fm := f.Row(j, k-1)[h:][:n]
		for i := 0; i < n; i++ {
			a, b, c0 := fp[i], fm[i], fc[i]
			o1[i] = c1 * (a - b)
			o2[i] = c2 * (a - 2*c0 + b)
		}
	}
}
