// Package field provides the three-dimensional scalar and vector fields
// used by the solver.
//
// Memory layout follows the paper's vectorization strategy: the radial
// index is innermost (unit stride) so that the innermost loops of every
// kernel sweep contiguously along r, the dimension the yycore code
// vectorized on the Earth Simulator. The radial extent is therefore chosen
// "just below the size (or doubled size) of the vector register" (255 or
// 511) in the paper's production runs.
//
// Fields carry a halo (ghost) frame of width H on every side. Interior
// indices run over [H, H+N) in each dimension; physical and internal
// (overset) boundary conditions fill the frame.
package field

import (
	"fmt"
	"math"

	"repro/internal/perfcount"
)

// Shape describes the interior extents of a field and its halo width.
type Shape struct {
	Nr, Nt, Np int // interior points in r, theta, phi
	H          int // halo width on each side (stencil radius)
}

// Padded returns the allocated extents including halos.
func (s Shape) Padded() (nr, nt, np int) {
	return s.Nr + 2*s.H, s.Nt + 2*s.H, s.Np + 2*s.H
}

// Len returns the number of allocated elements.
func (s Shape) Len() int {
	nr, nt, np := s.Padded()
	return nr * nt * np
}

// Valid reports whether the shape has positive extents and a non-negative
// halo.
func (s Shape) Valid() bool {
	return s.Nr > 0 && s.Nt > 0 && s.Np > 0 && s.H >= 0
}

// Scalar is a 3-D scalar field with halo frame, radial index innermost.
type Scalar struct {
	Shape
	Data []float64 // len == Shape.Len(); index (k*ntP + j)*nrP + i
	nrP  int       // padded radial extent (cached stride)
	ntP  int       // padded theta extent
}

// NewScalar allocates a zeroed scalar field of the given shape.
func NewScalar(s Shape) *Scalar {
	if !s.Valid() {
		panic(fmt.Sprintf("field: invalid shape %+v", s))
	}
	nr, nt, _ := s.Padded()
	return &Scalar{Shape: s, Data: make([]float64, s.Len()), nrP: nr, ntP: nt}
}

// Idx returns the linear index of padded coordinates (i, j, k); i is the
// radial index in [0, Nr+2H), j the colatitudinal, k the azimuthal.
func (f *Scalar) Idx(i, j, k int) int {
	return (k*f.ntP+j)*f.nrP + i
}

// At returns the value at padded coordinates (i, j, k).
func (f *Scalar) At(i, j, k int) float64 { return f.Data[f.Idx(i, j, k)] }

// Set stores v at padded coordinates (i, j, k).
func (f *Scalar) Set(i, j, k int, v float64) { f.Data[f.Idx(i, j, k)] = v }

// Row returns the contiguous radial row at (j, k) covering the full padded
// radial extent. Mutating the returned slice mutates the field.
func (f *Scalar) Row(j, k int) []float64 {
	base := f.Idx(0, j, k)
	return f.Data[base : base+f.nrP]
}

// Clone returns a deep copy.
func (f *Scalar) Clone() *Scalar {
	g := NewScalar(f.Shape)
	copy(g.Data, f.Data)
	return g
}

// SameShape reports whether g has identical shape.
func (f *Scalar) SameShape(g *Scalar) bool { return f.Shape == g.Shape }

func (f *Scalar) mustMatch(gs ...*Scalar) {
	for _, g := range gs {
		if !f.SameShape(g) {
			panic(fmt.Sprintf("field: shape mismatch %+v vs %+v", f.Shape, g.Shape))
		}
	}
}

// Fill sets every element (halo included) to v.
func (f *Scalar) Fill(v float64) {
	for i := range f.Data {
		f.Data[i] = v
	}
}

// CopyFrom copies g into f.
func (f *Scalar) CopyFrom(g *Scalar) {
	f.mustMatch(g)
	copy(f.Data, g.Data)
}

// countSweep charges one full-array sweep with fl flops per element to the
// instrumentation counters. The sweep is modeled as one vector loop per
// radial row, trip count = padded radial extent, matching how the kernels
// below are written.
func (f *Scalar) countSweep(fl int) {
	n := int64(len(f.Data))
	rows := int64(n) / int64(f.nrP)
	perfcount.AddFlops(n * int64(fl))
	perfcount.AddVectorLoops(rows, n)
}

// Scale multiplies every element by a.
func (f *Scalar) Scale(a float64) {
	for i := range f.Data {
		f.Data[i] *= a
	}
	f.countSweep(1)
}

// AXPY sets f = f + a*g element-wise.
func (f *Scalar) AXPY(a float64, g *Scalar) {
	f.mustMatch(g)
	fd, gd := f.Data, g.Data
	for i := range fd {
		fd[i] += a * gd[i]
	}
	f.countSweep(2)
}

// LinComb sets f = a*x + b*y element-wise.
func (f *Scalar) LinComb(a float64, x *Scalar, b float64, y *Scalar) {
	f.mustMatch(x, y)
	fd, xd, yd := f.Data, x.Data, y.Data
	for i := range fd {
		fd[i] = a*xd[i] + b*yd[i]
	}
	f.countSweep(3)
}

// Add sets f = f + g element-wise.
func (f *Scalar) Add(g *Scalar) {
	f.mustMatch(g)
	fd, gd := f.Data, g.Data
	for i := range fd {
		fd[i] += gd[i]
	}
	f.countSweep(1)
}

// Mul sets f = f * g element-wise.
func (f *Scalar) Mul(g *Scalar) {
	f.mustMatch(g)
	fd, gd := f.Data, g.Data
	for i := range fd {
		fd[i] *= gd[i]
	}
	f.countSweep(1)
}

// Quot sets f = x / y element-wise.
func (f *Scalar) Quot(x, y *Scalar) {
	f.mustMatch(x, y)
	fd, xd, yd := f.Data, x.Data, y.Data
	for i := range fd {
		fd[i] = xd[i] / yd[i]
	}
	f.countSweep(1)
}

// InteriorSum returns the sum of the interior elements (halo excluded).
func (f *Scalar) InteriorSum() float64 {
	var s float64
	f.EachInteriorRow(func(i0 int, row []float64) {
		for _, v := range row {
			s += v
		}
	})
	f.countInterior(1)
	return s
}

// InteriorSumSq returns the sum of squares over the interior.
func (f *Scalar) InteriorSumSq() float64 {
	var s float64
	f.EachInteriorRow(func(i0 int, row []float64) {
		for _, v := range row {
			s += v * v
		}
	})
	f.countInterior(2)
	return s
}

// InteriorMaxAbs returns the maximum absolute interior value.
func (f *Scalar) InteriorMaxAbs() float64 {
	var m float64
	f.EachInteriorRow(func(i0 int, row []float64) {
		for _, v := range row {
			if a := math.Abs(v); a > m {
				m = a
			}
		}
	})
	f.countInterior(1)
	return m
}

// EachInteriorRow calls fn for every interior (j, k) with the interior
// radial sub-row; i0 is the linear index of the row's first interior
// element within Data.
func (f *Scalar) EachInteriorRow(fn func(i0 int, row []float64)) {
	h := f.H
	for k := h; k < h+f.Np; k++ {
		for j := h; j < h+f.Nt; j++ {
			base := f.Idx(h, j, k)
			fn(base, f.Data[base:base+f.Nr])
		}
	}
}

func (f *Scalar) countInterior(fl int) {
	n := int64(f.Nr) * int64(f.Nt) * int64(f.Np)
	rows := int64(f.Nt) * int64(f.Np)
	perfcount.AddFlops(n * int64(fl))
	perfcount.AddVectorLoops(rows, n)
}

// Vector is a 3-D vector field with spherical components R (radial),
// T (colatitudinal), P (azimuthal).
type Vector struct {
	R, T, P *Scalar
}

// NewVector allocates a zeroed vector field.
func NewVector(s Shape) *Vector {
	return &Vector{R: NewScalar(s), T: NewScalar(s), P: NewScalar(s)}
}

// Shape returns the common component shape.
func (v *Vector) Shape() Shape { return v.R.Shape }

// Clone returns a deep copy.
func (v *Vector) Clone() *Vector {
	return &Vector{R: v.R.Clone(), T: v.T.Clone(), P: v.P.Clone()}
}

// CopyFrom copies w into v.
func (v *Vector) CopyFrom(w *Vector) {
	v.R.CopyFrom(w.R)
	v.T.CopyFrom(w.T)
	v.P.CopyFrom(w.P)
}

// Fill sets every component element to c.
func (v *Vector) Fill(c float64) {
	v.R.Fill(c)
	v.T.Fill(c)
	v.P.Fill(c)
}

// Scale multiplies every component by a.
func (v *Vector) Scale(a float64) {
	v.R.Scale(a)
	v.T.Scale(a)
	v.P.Scale(a)
}

// AXPY sets v = v + a*w component-wise.
func (v *Vector) AXPY(a float64, w *Vector) {
	v.R.AXPY(a, w.R)
	v.T.AXPY(a, w.T)
	v.P.AXPY(a, w.P)
}

// LinComb sets v = a*x + b*y component-wise.
func (v *Vector) LinComb(a float64, x *Vector, b float64, y *Vector) {
	v.R.LinComb(a, x.R, b, y.R)
	v.T.LinComb(a, x.T, b, y.T)
	v.P.LinComb(a, x.P, b, y.P)
}

// Components returns the three components in (R, T, P) order.
func (v *Vector) Components() [3]*Scalar { return [3]*Scalar{v.R, v.T, v.P} }

// InteriorEnergy returns sum over the interior of
// (R^2 + T^2 + P^2), the squared magnitude (no volume weighting).
func (v *Vector) InteriorEnergy() float64 {
	return v.R.InteriorSumSq() + v.T.InteriorSumSq() + v.P.InteriorSumSq()
}
