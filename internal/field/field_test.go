package field

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func testShape() Shape { return Shape{Nr: 8, Nt: 5, Np: 6, H: 1} }

func randomized(s Shape, seed int64) *Scalar {
	f := NewScalar(s)
	r := rand.New(rand.NewSource(seed))
	for i := range f.Data {
		f.Data[i] = r.NormFloat64()
	}
	return f
}

func TestShapePadded(t *testing.T) {
	s := Shape{Nr: 10, Nt: 4, Np: 3, H: 2}
	nr, nt, np := s.Padded()
	if nr != 14 || nt != 8 || np != 7 {
		t.Errorf("padded = (%d,%d,%d)", nr, nt, np)
	}
	if s.Len() != 14*8*7 {
		t.Errorf("len = %d", s.Len())
	}
}

func TestShapeValid(t *testing.T) {
	if !(Shape{1, 1, 1, 0}).Valid() {
		t.Error("minimal shape should be valid")
	}
	bad := []Shape{{0, 1, 1, 0}, {1, 0, 1, 1}, {1, 1, 0, 1}, {1, 1, 1, -1}}
	for _, s := range bad {
		if s.Valid() {
			t.Errorf("%+v should be invalid", s)
		}
	}
}

func TestNewScalarPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewScalar(Shape{})
}

func TestIdxRadialFastest(t *testing.T) {
	f := NewScalar(testShape())
	// Adjacent radial indices must be adjacent in memory.
	if f.Idx(3, 2, 2)-f.Idx(2, 2, 2) != 1 {
		t.Error("radial index is not unit stride")
	}
	// No two distinct coordinates may alias.
	nr, nt, np := f.Padded()
	seen := make(map[int]bool, f.Len())
	for k := 0; k < np; k++ {
		for j := 0; j < nt; j++ {
			for i := 0; i < nr; i++ {
				id := f.Idx(i, j, k)
				if id < 0 || id >= len(f.Data) || seen[id] {
					t.Fatalf("bad or duplicate index %d at (%d,%d,%d)", id, i, j, k)
				}
				seen[id] = true
			}
		}
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	f := NewScalar(testShape())
	f.Set(4, 3, 2, 7.5)
	if got := f.At(4, 3, 2); got != 7.5 {
		t.Errorf("At = %v", got)
	}
}

func TestRowIsAliased(t *testing.T) {
	f := NewScalar(testShape())
	row := f.Row(2, 3)
	nr, _, _ := f.Padded()
	if len(row) != nr {
		t.Fatalf("row len = %d, want %d", len(row), nr)
	}
	row[5] = 42
	if f.At(5, 2, 3) != 42 {
		t.Error("row mutation not visible through At")
	}
}

func TestCloneIndependent(t *testing.T) {
	f := randomized(testShape(), 1)
	g := f.Clone()
	g.Data[0] += 1
	if f.Data[0] == g.Data[0] {
		t.Error("clone shares storage")
	}
}

func TestScaleAXPY(t *testing.T) {
	f := randomized(testShape(), 2)
	g := randomized(testShape(), 3)
	want := make([]float64, len(f.Data))
	for i := range want {
		want[i] = 2*f.Data[i] + 3*g.Data[i]
	}
	f.Scale(2)
	f.AXPY(3, g)
	for i := range want {
		if math.Abs(f.Data[i]-want[i]) > 1e-14 {
			t.Fatalf("AXPY mismatch at %d", i)
		}
	}
}

func TestLinComb(t *testing.T) {
	s := testShape()
	x, y := randomized(s, 4), randomized(s, 5)
	f := NewScalar(s)
	f.LinComb(1.5, x, -0.5, y)
	for i := range f.Data {
		want := 1.5*x.Data[i] - 0.5*y.Data[i]
		if math.Abs(f.Data[i]-want) > 1e-14 {
			t.Fatalf("LinComb mismatch at %d", i)
		}
	}
}

func TestMulQuotInverse(t *testing.T) {
	s := testShape()
	x := randomized(s, 6)
	y := NewScalar(s)
	for i := range y.Data {
		y.Data[i] = 1 + rand.New(rand.NewSource(7)).Float64()
	}
	q := NewScalar(s)
	q.Quot(x, y) // q = x/y
	q.Mul(y)     // q = x
	for i := range q.Data {
		if math.Abs(q.Data[i]-x.Data[i]) > 1e-12 {
			t.Fatalf("Quot/Mul not inverse at %d", i)
		}
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	f := NewScalar(testShape())
	g := NewScalar(Shape{Nr: 4, Nt: 4, Np: 4, H: 1})
	defer func() {
		if recover() == nil {
			t.Error("expected panic on shape mismatch")
		}
	}()
	f.Add(g)
}

func TestInteriorSumExcludesHalo(t *testing.T) {
	s := testShape()
	f := NewScalar(s)
	f.Fill(100) // halo poisoned
	f.EachInteriorRow(func(i0 int, row []float64) {
		for i := range row {
			row[i] = 1
		}
	})
	want := float64(s.Nr * s.Nt * s.Np)
	if got := f.InteriorSum(); got != want {
		t.Errorf("InteriorSum = %v, want %v", got, want)
	}
}

func TestInteriorSumSqAndMaxAbs(t *testing.T) {
	f := NewScalar(testShape())
	f.EachInteriorRow(func(i0 int, row []float64) {
		for i := range row {
			row[i] = -2
		}
	})
	f.Set(0, 0, 0, -1e9) // halo value must be ignored
	n := float64(f.Nr * f.Nt * f.Np)
	if got := f.InteriorSumSq(); got != 4*n {
		t.Errorf("InteriorSumSq = %v, want %v", got, 4*n)
	}
	if got := f.InteriorMaxAbs(); got != 2 {
		t.Errorf("InteriorMaxAbs = %v, want 2", got)
	}
}

func TestEachInteriorRowCoverage(t *testing.T) {
	s := testShape()
	f := NewScalar(s)
	count := 0
	f.EachInteriorRow(func(i0 int, row []float64) {
		count++
		if len(row) != s.Nr {
			t.Fatalf("row len %d", len(row))
		}
	})
	if count != s.Nt*s.Np {
		t.Errorf("rows visited = %d, want %d", count, s.Nt*s.Np)
	}
}

func TestVectorOps(t *testing.T) {
	s := testShape()
	v := NewVector(s)
	w := NewVector(s)
	v.Fill(1)
	w.Fill(2)
	v.AXPY(0.5, w) // 1 + 1 = 2
	if got := v.R.At(1, 1, 1); got != 2 {
		t.Errorf("AXPY component = %v", got)
	}
	v.Scale(3)
	if got := v.P.At(2, 2, 2); got != 6 {
		t.Errorf("Scale component = %v", got)
	}
	u := NewVector(s)
	u.LinComb(1, v, -1, v)
	if got := u.T.At(1, 1, 1); got != 0 {
		t.Errorf("LinComb = %v", got)
	}
}

func TestVectorInteriorEnergy(t *testing.T) {
	s := testShape()
	v := NewVector(s)
	v.Fill(1)
	n := float64(s.Nr * s.Nt * s.Np)
	if got := v.InteriorEnergy(); got != 3*n {
		t.Errorf("energy = %v, want %v", got, 3*n)
	}
}

func TestVectorCloneCopy(t *testing.T) {
	s := testShape()
	v := NewVector(s)
	v.Fill(5)
	w := v.Clone()
	w.Fill(1)
	if v.R.At(1, 1, 1) != 5 {
		t.Error("clone aliased")
	}
	v.CopyFrom(w)
	if v.R.At(1, 1, 1) != 1 {
		t.Error("CopyFrom failed")
	}
}

// Property: AXPY with a=0 is identity; Scale by 1 is identity.
func TestOpIdentities(t *testing.T) {
	f := func(seed int64) bool {
		s := testShape()
		x := randomized(s, seed)
		orig := x.Clone()
		g := randomized(s, seed+1)
		x.AXPY(0, g)
		x.Scale(1)
		for i := range x.Data {
			if x.Data[i] != orig.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: LinComb is linear — f = a*x + b*y equals a*(x) plus b*(y)
// computed separately, for random coefficients.
func TestLinCombLinearityQuick(t *testing.T) {
	f := func(a, b float64, seed int64) bool {
		a = math.Mod(a, 100)
		b = math.Mod(b, 100)
		s := testShape()
		x, y := randomized(s, seed), randomized(s, seed+9)
		got := NewScalar(s)
		got.LinComb(a, x, b, y)
		for i := range got.Data {
			want := a*x.Data[i] + b*y.Data[i]
			if math.Abs(got.Data[i]-want) > 1e-12*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
