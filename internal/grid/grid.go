// Package grid builds the spherical-shell grids of the paper: the
// Yin-Yang overset pair (two identical latitude-longitude patches covering
// the sphere with partial overlap, Fig. 1) and, as the motivating
// baseline, the traditional full latitude-longitude grid with polar
// convergence.
//
// A component (Yin or Yang) patch spans colatitude [pi/4, 3pi/4] (90
// degrees about its equator) and longitude [-3pi/4, 3pi/4] (270 degrees),
// piled up in radius between the inner-core and core-mantle boundaries.
// The two patches are geometrically identical; the Yang grid is the Yin
// grid expressed in the rotated frame of coords.YinYang. All metric
// arrays are precomputed here so that solver kernels only index them.
package grid

import (
	"fmt"
	"math"

	"repro/internal/field"
	"repro/internal/par"
)

// Panel identifies a component grid of the overset pair.
type Panel int

const (
	// Yin is the component grid aligned with the geographic frame
	// (the paper's n-grid).
	Yin Panel = iota
	// Yang is the complemental component grid (the paper's e-grid).
	Yang
)

// String returns "Yin" or "Yang".
func (p Panel) String() string {
	if p == Yin {
		return "Yin"
	}
	return "Yang"
}

// Other returns the partner panel.
func (p Panel) Other() Panel { return 1 - p }

// Patch bounds for the basic Yin-Yang grid.
const (
	ThetaMin = math.Pi / 4
	ThetaMax = 3 * math.Pi / 4
	PhiMin   = -3 * math.Pi / 4
	PhiMax   = 3 * math.Pi / 4
)

// Spec describes a global Yin-Yang spherical-shell grid: each of the two
// panels carries Nr x Nt x Np nodes (node-centred, boundary nodes
// included) between the inner radius RI and outer radius RO.
type Spec struct {
	Nr, Nt, Np int
	RI, RO     float64
}

// NewSpec builds a grid spec with equal angular spacing in theta and phi:
// np = 3*(nt-1) + 1 so that dphi == dtheta over the 270-degree span.
// Radii default to the paper's normalized shell (RO = 1) with the Earth's
// inner-core ratio RI/RO = 0.35 unless overridden on the returned value.
func NewSpec(nr, nt int) Spec {
	return Spec{Nr: nr, Nt: nt, Np: 3*(nt-1) + 1, RI: 0.35, RO: 1.0}
}

// Validate reports whether the spec can host a second-order stencil.
func (s Spec) Validate() error {
	if s.Nr < 3 || s.Nt < 3 || s.Np < 3 {
		return fmt.Errorf("grid: need at least 3 nodes per dimension, got %dx%dx%d", s.Nr, s.Nt, s.Np)
	}
	if !(0 < s.RI && s.RI < s.RO) {
		return fmt.Errorf("grid: need 0 < RI < RO, got RI=%v RO=%v", s.RI, s.RO)
	}
	return nil
}

// TotalPoints returns the total node count over both panels, the number
// the paper quotes as e.g. 511 x 514 x 1538 x 2.
func (s Spec) TotalPoints() int64 {
	return 2 * int64(s.Nr) * int64(s.Nt) * int64(s.Np)
}

// Dr, Dt, Dp return the uniform grid spacings.
func (s Spec) Dr() float64 { return (s.RO - s.RI) / float64(s.Nr-1) }
func (s Spec) Dt() float64 { return (ThetaMax - ThetaMin) / float64(s.Nt-1) }
func (s Spec) Dp() float64 { return (PhiMax - PhiMin) / float64(s.Np-1) }

// OverlapFraction returns the fraction of the spherical surface covered by
// both panels. For the basic Yin-Yang grid this is about 6% in the
// infinitesimal-mesh limit: each rectangular patch covers
// dphi*(cos tmin - cos tmax)/(4 pi) of the sphere and the two patches
// together must cover it exactly once plus the overlap.
func OverlapFraction() float64 {
	patch := (PhiMax - PhiMin) * (math.Cos(ThetaMin) - math.Cos(ThetaMax)) / (4 * math.Pi)
	return 2*patch - 1
}

// Patch is one component grid (or a rectangular sub-block of one, when
// domain-decomposed): node coordinates, spacings, and precomputed metric
// arrays, all padded with a halo frame of width Shape.H.
//
// Index convention: padded index i in [0, Nr+2H) maps to global interior
// radial index i - H + IOff, and likewise for j/theta and k/phi. Halo
// coordinates continue the uniform spacing beyond the block.
type Patch struct {
	field.Shape
	Panel      Panel
	Spec       Spec
	Dr, Dt, Dp float64

	// IOff, JOff, KOff give the global interior index of this block's
	// first interior node (zero for a full panel patch).
	IOff, JOff, KOff int

	// Padded per-index coordinate and metric arrays.
	R, InvR, InvR2 []float64 // radius and its inverse powers, len Nr+2H
	Theta          []float64 // colatitude, len Nt+2H
	SinT, CosT     []float64
	CotT, InvSinT  []float64
	Phi            []float64 // longitude, len Np+2H

	// Par, when non-nil, is the intra-rank worker pool the stencil and
	// overset kernels route their outer (phi) loops through — the
	// software stand-in for the vector pipelines of one Earth Simulator
	// AP. nil (the default) means serial; all kernels are bit-identical
	// either way because parallel ranges write disjoint rows.
	Par *par.Pool
}

// NewPatch builds a full-panel patch with halo width h.
func NewPatch(s Spec, panel Panel, h int) *Patch {
	return NewSubPatch(s, panel, h, 0, s.Nr, 0, s.Nt, 0, s.Np)
}

// NewSubPatch builds the rectangular block [ilo,ihi) x [jlo,jhi) x
// [klo,khi) of the panel's global node index space, with halo width h.
func NewSubPatch(s Spec, panel Panel, h, ilo, ihi, jlo, jhi, klo, khi int) *Patch {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	if ilo < 0 || ihi > s.Nr || jlo < 0 || jhi > s.Nt || klo < 0 || khi > s.Np ||
		ilo >= ihi || jlo >= jhi || klo >= khi {
		panic(fmt.Sprintf("grid: bad block [%d,%d)x[%d,%d)x[%d,%d) for %dx%dx%d",
			ilo, ihi, jlo, jhi, klo, khi, s.Nr, s.Nt, s.Np))
	}
	p := &Patch{
		Shape: field.Shape{Nr: ihi - ilo, Nt: jhi - jlo, Np: khi - klo, H: h},
		Panel: panel,
		Spec:  s,
		Dr:    s.Dr(), Dt: s.Dt(), Dp: s.Dp(),
		IOff: ilo, JOff: jlo, KOff: klo,
	}
	nrP, ntP, npP := p.Padded()
	p.R = make([]float64, nrP)
	p.InvR = make([]float64, nrP)
	p.InvR2 = make([]float64, nrP)
	for i := 0; i < nrP; i++ {
		r := s.RI + float64(ilo+i-h)*p.Dr
		p.R[i] = r
		//yyvet:ignore float-eq division-by-exact-zero guard: any nonzero radius must yield its reciprocal
		if r != 0 {
			p.InvR[i] = 1 / r
			p.InvR2[i] = 1 / (r * r)
		}
	}
	p.Theta = make([]float64, ntP)
	p.SinT = make([]float64, ntP)
	p.CosT = make([]float64, ntP)
	p.CotT = make([]float64, ntP)
	p.InvSinT = make([]float64, ntP)
	for j := 0; j < ntP; j++ {
		th := ThetaMin + float64(jlo+j-h)*p.Dt
		p.Theta[j] = th
		st, ct := math.Sincos(th)
		p.SinT[j] = st
		p.CosT[j] = ct
		//yyvet:ignore float-eq division-by-exact-zero guard: any nonzero sin(theta) must yield its reciprocal
		if st != 0 {
			p.CotT[j] = ct / st
			p.InvSinT[j] = 1 / st
		}
	}
	p.Phi = make([]float64, npP)
	for k := 0; k < npP; k++ {
		p.Phi[k] = PhiMin + float64(klo+k-h)*p.Dp
	}
	return p
}

// NewScalar allocates a scalar field matching the patch shape.
func (p *Patch) NewScalar() *field.Scalar { return field.NewScalar(p.Shape) }

// NewVector allocates a vector field matching the patch shape.
func (p *Patch) NewVector() *field.Vector { return field.NewVector(p.Shape) }

// GlobalEdge reports whether this block touches the panel boundary on the
// given side. Sides: 0=r min, 1=r max, 2=theta min, 3=theta max,
// 4=phi min, 5=phi max.
func (p *Patch) GlobalEdge(side int) bool {
	switch side {
	case 0:
		return p.IOff == 0
	case 1:
		return p.IOff+p.Nr == p.Spec.Nr
	case 2:
		return p.JOff == 0
	case 3:
		return p.JOff+p.Nt == p.Spec.Nt
	case 4:
		return p.KOff == 0
	case 5:
		return p.KOff+p.Np == p.Spec.Np
	}
	panic("grid: bad side")
}

// CellVolume returns the spherical volume element r^2 sin(theta) dr dt dp
// at padded indices (i, j, k), for volume-weighted reductions. Boundary
// nodes get half-weights per dimension (trapezoid rule); the caller passes
// global-boundary information via the patch offsets.
func (p *Patch) CellVolume(i, j, k int) float64 {
	w := p.R[i] * p.R[i] * p.SinT[j] * p.Dr * p.Dt * p.Dp
	gi := p.IOff + i - p.H
	gj := p.JOff + j - p.H
	gk := p.KOff + k - p.H
	if gi == 0 || gi == p.Spec.Nr-1 {
		w *= 0.5
	}
	if gj == 0 || gj == p.Spec.Nt-1 {
		w *= 0.5
	}
	if gk == 0 || gk == p.Spec.Np-1 {
		w *= 0.5
	}
	return w
}

// Contains reports whether the angular point (theta, phi) lies within the
// panel's angular footprint (boundaries included, with tolerance tol in
// radians). The point must be expressed in this panel's own coordinates.
func Contains(theta, phi, tol float64) bool {
	return theta >= ThetaMin-tol && theta <= ThetaMax+tol &&
		phi >= PhiMin-tol && phi <= PhiMax+tol
}

// MinAngularSpacing returns the smallest physical distance between
// adjacent nodes on the unit sphere for the Yin-Yang patch: because
// sin(theta) >= sin(pi/4) over the patch, longitudinal spacing never
// collapses, unlike the lat-lon grid near its poles.
func (s Spec) MinAngularSpacing() float64 {
	minLon := s.Dp() * math.Sin(ThetaMin)
	if dt := s.Dt(); dt < minLon {
		return dt
	}
	return minLon
}
