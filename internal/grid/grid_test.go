package grid

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/coords"
)

func TestPanelStringOther(t *testing.T) {
	if Yin.String() != "Yin" || Yang.String() != "Yang" {
		t.Error("panel names")
	}
	if Yin.Other() != Yang || Yang.Other() != Yin {
		t.Error("panel Other")
	}
}

func TestNewSpecEqualSpacing(t *testing.T) {
	s := NewSpec(17, 33)
	if s.Np != 3*32+1 {
		t.Fatalf("Np = %d", s.Np)
	}
	if math.Abs(s.Dt()-s.Dp()) > 1e-15 {
		t.Errorf("dt=%v dp=%v not equal", s.Dt(), s.Dp())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Nr: 2, Nt: 5, Np: 5, RI: 0.3, RO: 1},
		{Nr: 5, Nt: 2, Np: 5, RI: 0.3, RO: 1},
		{Nr: 5, Nt: 5, Np: 2, RI: 0.3, RO: 1},
		{Nr: 5, Nt: 5, Np: 5, RI: 0, RO: 1},
		{Nr: 5, Nt: 5, Np: 5, RI: 1.5, RO: 1},
	}
	for _, s := range bad {
		if s.Validate() == nil {
			t.Errorf("%+v should fail validation", s)
		}
	}
}

func TestTotalPointsMatchesPaperGrid(t *testing.T) {
	// The paper's largest run: 511 (radial) x 514 (lat) x 1538 (lon) x 2.
	s := Spec{Nr: 511, Nt: 514, Np: 1538, RI: 0.35, RO: 1}
	want := int64(511) * 514 * 1538 * 2
	if got := s.TotalPoints(); got != want {
		t.Errorf("TotalPoints = %d, want %d", got, want)
	}
	// About 8.1e8 as the paper states.
	if f := float64(s.TotalPoints()); f < 8.0e8 || f > 8.2e8 {
		t.Errorf("paper grid size %g not about 8.1e8", f)
	}
}

// TestOverlapFraction: the overlapped area is about 6% of the sphere
// (paper, section II).
func TestOverlapFraction(t *testing.T) {
	got := OverlapFraction()
	if got < 0.057 || got > 0.065 {
		t.Errorf("overlap fraction = %v, want about 0.06", got)
	}
}

// TestSphereCoverage: every point of the sphere lies in at least one
// panel's footprint (Fig. 1(b): the two grids combined cover the sphere).
func TestSphereCoverage(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for n := 0; n < 20000; n++ {
		// Uniform point on the sphere.
		z := 2*r.Float64() - 1
		phi := (2*r.Float64() - 1) * math.Pi
		theta := math.Acos(z)
		inYin := Contains(theta, phi, 0)
		ty, py := coords.YinYangAngles(theta, phi)
		inYang := Contains(ty, py, 0)
		if !inYin && !inYang {
			t.Fatalf("point theta=%v phi=%v covered by neither panel", theta, phi)
		}
	}
}

// TestBoundaryInsidePartner: every node on a panel's angular boundary lies
// within the partner's footprint, so its value can be interpolated (the
// overset internal boundary condition).
func TestBoundaryInsidePartner(t *testing.T) {
	s := NewSpec(5, 65)
	p := NewPatch(s, Yin, 1)
	h := p.H
	const tol = 1e-12
	check := func(j, k int) {
		ty, py := coords.YinYangAngles(p.Theta[j], p.Phi[k])
		if !Contains(ty, py, tol) {
			t.Fatalf("boundary node theta=%v phi=%v maps outside partner (%v, %v)",
				p.Theta[j], p.Phi[k], ty, py)
		}
	}
	for k := h; k < h+p.Np; k++ {
		check(h, k)
		check(h+p.Nt-1, k)
	}
	for j := h; j < h+p.Nt; j++ {
		check(j, h)
		check(j, h+p.Np-1)
	}
}

func TestPatchCoordinates(t *testing.T) {
	s := NewSpec(9, 17)
	p := NewPatch(s, Yin, 1)
	h := p.H
	if math.Abs(p.R[h]-s.RI) > 1e-15 || math.Abs(p.R[h+p.Nr-1]-s.RO) > 1e-15 {
		t.Errorf("radial endpoints %v..%v", p.R[h], p.R[h+p.Nr-1])
	}
	if math.Abs(p.Theta[h]-ThetaMin) > 1e-15 || math.Abs(p.Theta[h+p.Nt-1]-ThetaMax) > 1e-14 {
		t.Errorf("theta endpoints %v..%v", p.Theta[h], p.Theta[h+p.Nt-1])
	}
	if math.Abs(p.Phi[h]-PhiMin) > 1e-14 || math.Abs(p.Phi[h+p.Np-1]-PhiMax) > 1e-14 {
		t.Errorf("phi endpoints %v..%v", p.Phi[h], p.Phi[h+p.Np-1])
	}
	// Halo coordinates continue the uniform spacing.
	if math.Abs(p.R[h-1]-(s.RI-p.Dr)) > 1e-15 {
		t.Errorf("halo radius %v", p.R[h-1])
	}
	// Metric arrays consistent.
	for j := range p.Theta {
		if math.Abs(p.SinT[j]-math.Sin(p.Theta[j])) > 1e-15 {
			t.Fatalf("SinT[%d]", j)
		}
		if p.SinT[j] != 0 && math.Abs(p.CotT[j]-p.CosT[j]/p.SinT[j]) > 1e-12 {
			t.Fatalf("CotT[%d]", j)
		}
	}
	for i := range p.R {
		if p.R[i] != 0 && math.Abs(p.InvR2[i]*p.R[i]*p.R[i]-1) > 1e-13 {
			t.Fatalf("InvR2[%d]", i)
		}
	}
}

func TestSubPatchOffsets(t *testing.T) {
	s := NewSpec(9, 17)
	p := NewSubPatch(s, Yang, 1, 0, 9, 4, 8, 10, 20)
	if p.Nt != 4 || p.Np != 10 || p.Nr != 9 {
		t.Fatalf("block shape %+v", p.Shape)
	}
	// Local first interior theta node is global node 4.
	want := ThetaMin + 4*s.Dt()
	if math.Abs(p.Theta[p.H]-want) > 1e-14 {
		t.Errorf("subpatch theta start %v, want %v", p.Theta[p.H], want)
	}
	if p.GlobalEdge(2) {
		t.Error("block does not touch theta-min edge")
	}
	if !p.GlobalEdge(0) || !p.GlobalEdge(1) {
		t.Error("block spans full radius")
	}
	if p.GlobalEdge(5) {
		t.Error("block does not touch phi-max edge")
	}
}

func TestNewSubPatchPanics(t *testing.T) {
	s := NewSpec(9, 17)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range block")
		}
	}()
	NewSubPatch(s, Yin, 1, 0, 9, 0, s.Nt+1, 0, s.Np)
}

// TestShellVolumeQuadrature: summing CellVolume over one panel's nodes
// approximates the panel's share of the shell volume; over both panels it
// overshoots the true shell volume by exactly the overlap fraction of the
// angular measure.
func TestShellVolumeQuadrature(t *testing.T) {
	s := NewSpec(17, 33)
	p := NewPatch(s, Yin, 1)
	var vol float64
	h := p.H
	for k := h; k < h+p.Np; k++ {
		for j := h; j < h+p.Nt; j++ {
			for i := h; i < h+p.Nr; i++ {
				vol += p.CellVolume(i, j, k)
			}
		}
	}
	shell := 4 * math.Pi / 3 * (math.Pow(s.RO, 3) - math.Pow(s.RI, 3))
	wantFrac := (1 + OverlapFraction()) / 2 // one panel covers this fraction
	got := vol / shell
	if math.Abs(got-wantFrac) > 0.01 {
		t.Errorf("panel volume fraction = %v, want about %v", got, wantFrac)
	}
}

func TestMinAngularSpacingYinYang(t *testing.T) {
	s := NewSpec(17, 65)
	// Longitudinal spacing bottoms out at sin(pi/4), so the minimum is
	// within a factor sqrt(2) of dt.
	min := s.MinAngularSpacing()
	if min < s.Dt()*0.7 || min > s.Dt() {
		t.Errorf("min spacing %v vs dt %v", min, s.Dt())
	}
}

func TestLatLonSpec(t *testing.T) {
	y := NewSpec(17, 65)
	ll := NewLatLonSpec(y)
	if err := ll.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(ll.Dt()-y.Dt()) > y.Dt()*0.02 {
		t.Errorf("lat-lon dt %v vs yin-yang %v", ll.Dt(), y.Dt())
	}
	// Full sphere: about 2x the theta span, 4/3 the phi span.
	if ll.Nt < 2*(y.Nt-1) || ll.Nt > 2*y.Nt+2 {
		t.Errorf("lat-lon Nt = %d for yin-yang Nt = %d", ll.Nt, y.Nt)
	}
}

func TestLatLonValidate(t *testing.T) {
	bad := LatLonSpec{Nr: 2, Nt: 5, Np: 8, RI: 0.35, RO: 1}
	if bad.Validate() == nil {
		t.Error("expected error")
	}
}

// TestPoleClustering: lat-lon minimum spacing collapses ~ dt^2 while
// Yin-Yang stays ~ dt (the paper's motivation, ablation A3).
func TestPoleClustering(t *testing.T) {
	y := NewSpec(17, 129)
	ll := NewLatLonSpec(y)
	ratio := y.MinAngularSpacing() / ll.MinAngularSpacing()
	// dp*sin(dt) vs dt*sin(pi/4): ratio about 0.7/sin(dt) >> 1.
	if ratio < 10 {
		t.Errorf("expected Yin-Yang min spacing >> lat-lon near poles, ratio = %v", ratio)
	}
}

// TestPointEconomy: at equal angular resolution the lat-lon grid spends
// about 4/3 the points of the Yin-Yang pair (4 pi steradians of lat-lon
// cells vs 2 x 1.06 * 2 pi * ... ). The precise discrete ratio is near
// (4 pi / dt dp) / (2 * Nt * Np) ~ 1.26.
func TestPointEconomy(t *testing.T) {
	y := NewSpec(17, 129)
	ratio := PointRatioVersusYinYang(y)
	if ratio < 1.15 || ratio > 1.4 {
		t.Errorf("point ratio = %v, want about 1.26", ratio)
	}
}

func TestContainsTolerance(t *testing.T) {
	if Contains(ThetaMin-1e-3, 0, 0) {
		t.Error("outside point accepted")
	}
	if !Contains(ThetaMin-1e-3, 0, 1e-2) {
		t.Error("tolerance not honored")
	}
}

// TestTrimStudy: the rectangular patch tolerates a nonzero longitude
// trim before coverage breaks, the overlap shrinks monotonically with
// the trim, and any colatitude trim immediately opens holes (the
// latitude extent is exactly the complementary 90 degrees).
func TestTrimStudy(t *testing.T) {
	const n = 20000
	if !CoversWithTrim(0, 0, n) {
		t.Fatal("untrimmed pair must cover the sphere")
	}
	if CoversWithTrim(0.05, 0, n) {
		t.Error("colatitude trim of 0.05 should break coverage")
	}
	// The basic rectangle is TIGHT under uniform trims: the image of each
	// panel's colatitude-edge midpoint lands exactly on the partner's
	// longitude edge, so any uniform longitude trim opens a hole there.
	// (This is why the paper reduces overlap by reshaping — cutting the
	// corners — rather than shrinking the rectangle.)
	if dmax := MaxPhiTrim(n); dmax > 0.01 {
		t.Errorf("uniform phi trim should have (near) zero margin, got %v", dmax)
	}
	// The corners, in contrast, "intrude most into the other component
	// grid" (paper, section II): a sizable square corner cut keeps full
	// coverage and shrinks the overlap.
	cmax := MaxCornerCut(n)
	if cmax < 0.1 {
		t.Fatalf("expected a usable corner-cut margin, got %v", cmax)
	}
	if CoversWithCornerCut(cmax*1.3, n) {
		t.Errorf("cut beyond the bisection limit %v should break coverage", cmax)
	}
	ov0 := TrimmedOverlapFraction(0, 0, n)
	ovC := CornerCutOverlapFraction(cmax*0.95, n)
	if math.Abs(ov0-OverlapFraction()) > 0.01 {
		t.Errorf("sampled untrimmed overlap %v vs analytic %v", ov0, OverlapFraction())
	}
	if ovC >= ov0*0.9 {
		t.Errorf("corner cut did not reduce the overlap meaningfully: %v -> %v", ov0, ovC)
	}
}
