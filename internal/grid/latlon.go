package grid

import (
	"fmt"
	"math"
)

// LatLonSpec describes the traditional full latitude-longitude spherical
// shell grid the paper's previous geodynamo code used, and whose polar
// coordinate singularity and grid convergence motivated the Yin-Yang
// design. Colatitude carries Nt nodes from 0 to pi (poles included);
// longitude carries Np equally spaced periodic nodes (no duplicated seam
// node); radius carries Nr nodes from RI to RO.
type LatLonSpec struct {
	Nr, Nt, Np int
	RI, RO     float64
}

// NewLatLonSpec builds a lat-lon grid with the same angular spacing as the
// Yin-Yang spec s would use, covering the full sphere: this is the
// "equivalent resolution" baseline for the grid-economy ablation.
func NewLatLonSpec(s Spec) LatLonSpec {
	dt := s.Dt()
	nt := int(math.Round(math.Pi/dt)) + 1
	np := int(math.Round(2 * math.Pi / s.Dp()))
	return LatLonSpec{Nr: s.Nr, Nt: nt, Np: np, RI: s.RI, RO: s.RO}
}

// Validate reports whether the spec is usable.
func (s LatLonSpec) Validate() error {
	if s.Nr < 3 || s.Nt < 3 || s.Np < 4 {
		return fmt.Errorf("grid: lat-lon spec too small: %dx%dx%d", s.Nr, s.Nt, s.Np)
	}
	if !(0 < s.RI && s.RI < s.RO) {
		return fmt.Errorf("grid: need 0 < RI < RO, got RI=%v RO=%v", s.RI, s.RO)
	}
	return nil
}

// Dr, Dt, Dp return the grid spacings; Dp is the full 2 pi over Np
// periodic nodes.
func (s LatLonSpec) Dr() float64 { return (s.RO - s.RI) / float64(s.Nr-1) }
func (s LatLonSpec) Dt() float64 { return math.Pi / float64(s.Nt-1) }
func (s LatLonSpec) Dp() float64 { return 2 * math.Pi / float64(s.Np) }

// TotalPoints returns the node count.
func (s LatLonSpec) TotalPoints() int64 {
	return int64(s.Nr) * int64(s.Nt) * int64(s.Np)
}

// MinAngularSpacing returns the smallest distance between adjacent nodes
// on the unit sphere. On the lat-lon grid the longitudinal spacing
// collapses like sin(theta) approaching the poles; the first off-pole row
// sits at theta = Dt, so the minimum shrinks quadratically with
// resolution — this is the grid-convergence problem that throttles the
// explicit time step (ablation A3).
func (s LatLonSpec) MinAngularSpacing() float64 {
	minLon := s.Dp() * math.Sin(s.Dt()) // first row off the pole
	if dt := s.Dt(); dt < minLon {
		return dt
	}
	return minLon
}

// PointRatioVersusYinYang returns how many times more grid nodes the full
// lat-lon grid spends than the Yin-Yang pair at the same angular
// resolution. In the continuum limit the lat-lon grid covers the sphere
// with 4 pi * (2/pi) excess near-pole crowding relative to the Yin-Yang
// pair's 1.06 coverage; discretely this is simply the node-count ratio.
func PointRatioVersusYinYang(y Spec) float64 {
	ll := NewLatLonSpec(y)
	return float64(ll.TotalPoints()) / float64(y.TotalPoints())
}
