package grid

// Rect is a half-open rectangle of padded angular indices: colatitude
// rows j in [J0, J1), longitude columns k in [K0, K1). The radial index
// is never split — every kernel sweeps the full radial extent of each
// (j, k) column, the vectorization dimension — so a Rect fully
// describes an angular sub-block of a patch.
type Rect struct {
	J0, J1, K0, K1 int
}

// Empty reports whether the rectangle contains no columns.
func (r Rect) Empty() bool { return r.J0 >= r.J1 || r.K0 >= r.K1 }

// Columns returns the number of (j, k) columns in the rectangle.
func (r Rect) Columns() int {
	if r.Empty() {
		return 0
	}
	return (r.J1 - r.J0) * (r.K1 - r.K0)
}

// Contains reports whether padded column (j, k) lies in the rectangle.
func (r Rect) Contains(j, k int) bool {
	return j >= r.J0 && j < r.J1 && k >= r.K0 && k < r.K1
}

// Region is a set of pairwise-disjoint rectangles, evaluated in order.
// Kernels that take a Region touch exactly the columns it covers, so a
// computation split into {interior} then {rim} phases visits every owned
// column exactly once.
type Region []Rect

// Columns returns the total column count over all rectangles.
func (rg Region) Columns() int {
	n := 0
	for _, r := range rg {
		n += r.Columns()
	}
	return n
}

// Owned returns the patch's full owned-column rectangle [H, H+Nt) x
// [H, H+Np) — the region every full-patch kernel sweeps.
func (p *Patch) Owned() Rect {
	h := p.H
	return Rect{J0: h, J1: h + p.Nt, K0: h, K1: h + p.Np}
}

// OwnedRegion is Owned as a one-rectangle Region.
func (p *Patch) OwnedRegion() Region { return Region{p.Owned()} }

// SplitInteriorRim partitions the owned columns into an interior
// rectangle and a rim region of width w along every decomposition seam
// (a patch edge that is not a global panel boundary). Interior columns
// are at least w columns away from every seam, so a stencil of radius w
// evaluated on the interior never reads a halo cell; rim columns are the
// remainder and may only be computed after the halo exchange completes.
//
// The rim rectangles are pairwise disjoint and, together with the
// interior, cover every owned column exactly once: seam-side row strips
// span the full owned width, and seam-side column strips are restricted
// to the interior row range. A patch whose edges are all global
// boundaries (a full serial panel) has an empty rim. When w is large
// enough to consume the whole extent, the interior collapses to empty
// and the strips still partition the owned columns.
func (p *Patch) SplitInteriorRim(w int) (Rect, Region) {
	own := p.Owned()
	in := own
	if !p.GlobalEdge(2) {
		in.J0 += w
	}
	if !p.GlobalEdge(3) {
		in.J1 -= w
	}
	if !p.GlobalEdge(4) {
		in.K0 += w
	}
	if !p.GlobalEdge(5) {
		in.K1 -= w
	}
	// Oversized w: collapse the interior onto a cut inside the owned
	// range so the strips below still partition without overlapping.
	in.J0, in.J1 = clampCut(in.J0, in.J1, own.J0, own.J1)
	in.K0, in.K1 = clampCut(in.K0, in.K1, own.K0, own.K1)

	var rim Region
	add := func(r Rect) {
		if !r.Empty() {
			rim = append(rim, r)
		}
	}
	add(Rect{own.J0, in.J0, own.K0, own.K1}) // north strip, full width
	add(Rect{in.J1, own.J1, own.K0, own.K1}) // south strip, full width
	add(Rect{in.J0, in.J1, own.K0, in.K0})   // west strip, interior rows
	add(Rect{in.J0, in.J1, in.K1, own.K1})   // east strip, interior rows
	if in.Empty() {
		in = Rect{}
	}
	return in, rim
}

// clampCut resolves an over-shrunk [lo, hi) interval: when lo > hi the
// interval is collapsed to an empty cut at a point inside [min, max], so
// the surrounding strips [min, lo) and [hi, max) stay disjoint and
// jointly cover [min, max).
func clampCut(lo, hi, min, max int) (int, int) {
	if lo <= hi {
		return lo, hi
	}
	cut := hi
	if cut < min {
		cut = min
	}
	if cut > max {
		cut = max
	}
	return cut, cut
}
