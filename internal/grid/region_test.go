package grid

import "testing"

// splitmix64 is the deterministic PRNG of the property suites: the same
// seeds always generate the same patch shapes, so a failure reproduces.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func intersects(a, b Rect) bool {
	return a.J0 < b.J1 && b.J0 < a.J1 && a.K0 < b.K1 && b.K0 < a.K1
}

func inside(a, outer Rect) bool {
	return a.Empty() || (a.J0 >= outer.J0 && a.J1 <= outer.J1 && a.K0 >= outer.K0 && a.K1 <= outer.K1)
}

// TestSplitInteriorRimPartition is the interior/rim partition property
// test behind the overlapped RHS schedule: for randomly shaped
// sub-blocks of random specs, the interior and rim tiles are pairwise
// disjoint, stay inside the owned rectangle, cover every owned column
// exactly once, and the interior keeps at least the stencil radius away
// from every seam — so an interior stencil can never read a halo cell.
// All properties are asserted from the tile bounds; the exhaustive
// column scan re-verifies the exactly-once cover on every column rather
// than sampling.
func TestSplitInteriorRimPartition(t *testing.T) {
	seed := uint64(0x9d06_8_2026)
	next := func(n int) int {
		seed = splitmix64(seed)
		return int(seed % uint64(n))
	}
	for trial := 0; trial < 300; trial++ {
		nt := 5 + next(16)
		s := NewSpec(5+next(8), nt)
		jlo := next(s.Nt - 1)
		jhi := jlo + 2 + next(s.Nt-jlo-1)
		if jhi > s.Nt {
			jhi = s.Nt
		}
		klo := next(s.Np - 1)
		khi := klo + 2 + next(s.Np-klo-1)
		if khi > s.Np {
			khi = s.Np
		}
		h := 1 + next(3)
		w := 1 + next(3)
		p := NewSubPatch(s, Yin, h, 0, s.Nr, jlo, jhi, klo, khi)
		in, rim := p.SplitInteriorRim(w)
		own := p.Owned()
		tiles := append(Region{in}, rim...)

		// Tile-bound properties: inside the owned rect, pairwise disjoint,
		// column counts summing to the owned count.
		cols := 0
		for ti, a := range tiles {
			if !inside(a, own) {
				t.Fatalf("trial %d: tile %v escapes owned %v", trial, a, own)
			}
			cols += a.Columns()
			for _, b := range tiles[ti+1:] {
				if intersects(a, b) {
					t.Fatalf("trial %d: tiles %v and %v overlap", trial, a, b)
				}
			}
		}
		if cols != own.Columns() {
			t.Fatalf("trial %d: tiles cover %d of %d owned columns", trial, cols, own.Columns())
		}

		// Seam distance: on every seam side the interior bound sits at
		// least w columns inside the owned edge, so a radius-w stencil on
		// any interior column touches owned columns only.
		if !in.Empty() {
			for _, c := range []struct {
				side  int
				holds bool
			}{
				{2, in.J0 >= own.J0+w},
				{3, in.J1 <= own.J1-w},
				{4, in.K0 >= own.K0+w},
				{5, in.K1 <= own.K1-w},
			} {
				if !p.GlobalEdge(c.side) && !c.holds {
					t.Fatalf("trial %d: interior %v within %d of seam side %d (owned %v)", trial, in, w, c.side, own)
				}
			}
		}

		// Exhaustive cover: every owned column is claimed exactly once.
		for j := own.J0; j < own.J1; j++ {
			for k := own.K0; k < own.K1; k++ {
				hits := 0
				for _, a := range tiles {
					if a.Contains(j, k) {
						hits++
					}
				}
				if hits != 1 {
					t.Fatalf("trial %d: column (%d,%d) covered %d times", trial, j, k, hits)
				}
			}
		}
	}
}
