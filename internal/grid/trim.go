package grid

import (
	"math"

	"repro/internal/coords"
)

// The paper (section II) notes that the basic rectangular Yin-Yang grid
// overlaps by about 6%, and that the overlap can be reduced by modifying
// the component shape — down to zero for exact-dissection variants like
// the "baseball" curve. This file quantifies the rectangular family: how
// much the patch can be trimmed while the pair still covers the sphere.

// ContainsTrimmed reports whether the panel-frame point (theta, phi)
// lies in the basic patch trimmed by dTheta at both colatitude edges and
// dPhi at both longitude edges.
func ContainsTrimmed(theta, phi, dTheta, dPhi float64) bool {
	return theta >= ThetaMin+dTheta && theta <= ThetaMax-dTheta &&
		phi >= PhiMin+dPhi && phi <= PhiMax-dPhi
}

// coverageSamples returns deterministic quasi-uniform sample points on
// the sphere (Fibonacci lattice).
func coverageSamples(n int) []coords.Spherical {
	pts := make([]coords.Spherical, n)
	golden := math.Pi * (3 - math.Sqrt(5))
	for i := 0; i < n; i++ {
		z := 1 - 2*(float64(i)+0.5)/float64(n)
		theta := math.Acos(z)
		phi := math.Mod(float64(i)*golden, 2*math.Pi) - math.Pi
		pts[i] = coords.Spherical{R: 1, Theta: theta, Phi: phi}
	}
	return pts
}

// CoversWithTrim reports whether the trimmed pair still covers the whole
// sphere, tested on n lattice samples.
func CoversWithTrim(dTheta, dPhi float64, n int) bool {
	for _, p := range coverageSamples(n) {
		if ContainsTrimmed(p.Theta, p.Phi, dTheta, dPhi) {
			continue
		}
		ty, py := coords.YinYangAngles(p.Theta, p.Phi)
		if !ContainsTrimmed(ty, py, dTheta, dPhi) {
			return false
		}
	}
	return true
}

// TrimmedOverlapFraction returns the fraction of the sphere covered by
// both trimmed panels (sampled on the same lattice); with full coverage
// this equals 2*patchArea/(4 pi) - 1.
func TrimmedOverlapFraction(dTheta, dPhi float64, n int) float64 {
	both := 0
	for _, p := range coverageSamples(n) {
		inYin := ContainsTrimmed(p.Theta, p.Phi, dTheta, dPhi)
		ty, py := coords.YinYangAngles(p.Theta, p.Phi)
		inYang := ContainsTrimmed(ty, py, dTheta, dPhi)
		if inYin && inYang {
			both++
		}
	}
	return float64(both) / float64(n)
}

// MaxPhiTrim finds (by bisection on the sampled coverage test) the
// largest uniform longitude trim that keeps the pair covering the
// sphere. The paper's minimum-overlap rectangular variants live at this
// edge; exact dissections (baseball, cube types) go further, to zero
// overlap, by abandoning the rectangle.
func MaxPhiTrim(n int) float64 {
	lo, hi := 0.0, math.Pi/4
	if !CoversWithTrim(0, lo, n) {
		return 0
	}
	for iter := 0; iter < 40; iter++ {
		mid := (lo + hi) / 2
		if CoversWithTrim(0, mid, n) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// ContainsCornerCut reports whether the panel-frame point lies in the
// basic patch with square corner cuts of size c: the four corners — the
// regions the paper singles out as intruding most into the partner — are
// removed when the point is within c of a colatitude edge AND within c
// of a longitude edge.
func ContainsCornerCut(theta, phi, c float64) bool {
	if !Contains(theta, phi, 0) {
		return false
	}
	dTheta := math.Min(theta-ThetaMin, ThetaMax-theta)
	dPhi := math.Min(phi-PhiMin, PhiMax-phi)
	return !(dTheta < c && dPhi < c)
}

// CoversWithCornerCut reports whether the corner-cut pair still covers
// the sphere (sampled).
func CoversWithCornerCut(c float64, n int) bool {
	for _, p := range coverageSamples(n) {
		if ContainsCornerCut(p.Theta, p.Phi, c) {
			continue
		}
		ty, py := coords.YinYangAngles(p.Theta, p.Phi)
		if !ContainsCornerCut(ty, py, c) {
			return false
		}
	}
	return true
}

// CornerCutOverlapFraction returns the sampled both-panel coverage
// fraction for corner cut c.
func CornerCutOverlapFraction(c float64, n int) float64 {
	both := 0
	for _, p := range coverageSamples(n) {
		inYin := ContainsCornerCut(p.Theta, p.Phi, c)
		ty, py := coords.YinYangAngles(p.Theta, p.Phi)
		inYang := ContainsCornerCut(ty, py, c)
		if inYin && inYang {
			both++
		}
	}
	return float64(both) / float64(n)
}

// MaxCornerCut bisects for the largest corner cut that keeps coverage.
func MaxCornerCut(n int) float64 {
	lo, hi := 0.0, math.Pi/4
	if !CoversWithCornerCut(lo, n) {
		return 0
	}
	for iter := 0; iter < 40; iter++ {
		mid := (lo + hi) / 2
		if CoversWithCornerCut(mid, n) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
