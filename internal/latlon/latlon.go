// Package latlon implements the baseline the paper's yycore code was
// converted from: finite differences on the traditional full
// latitude-longitude spherical grid, including the special treatment the
// poles require. The paper's motivation for the Yin-Yang grid is exactly
// this package's pathology: the coordinate singularity and the grid
// convergence near the poles degrade both the numerics (the explicit
// time step collapses with the longitudinal spacing dphi*sin(theta)) and
// the efficiency.
//
// The package provides a spherical-surface advection-diffusion solver on
// both grids — the full lat-lon grid with pole closure, and the Yin-Yang
// pair with overset rim interpolation — so the two discretizations of
// the same equation can be compared head to head (ablations A1 and A3 of
// DESIGN.md).
package latlon

import (
	"fmt"
	"math"

	"repro/internal/perfcount"
)

// SurfaceGrid is a full-sphere latitude-longitude surface grid. The
// colatitude rows are offset by half a spacing so no node sits exactly on
// a pole (theta_j = (j+1/2) pi/Nt); longitude is periodic with Np nodes.
// Np must be even so that the cross-pole closure can pair each meridian
// with the one 180 degrees away.
type SurfaceGrid struct {
	Nt, Np  int
	Dt, Dp  float64
	Theta   []float64
	SinT    []float64
	CosT    []float64
	CotT    []float64
	InvSinT []float64
}

// NewSurfaceGrid builds the grid; Np must be even and both extents at
// least 4.
func NewSurfaceGrid(nt, np int) (*SurfaceGrid, error) {
	if nt < 4 || np < 4 || np%2 != 0 {
		return nil, fmt.Errorf("latlon: need nt,np >= 4 and even np, got %dx%d", nt, np)
	}
	g := &SurfaceGrid{
		Nt: nt, Np: np,
		Dt: math.Pi / float64(nt),
		Dp: 2 * math.Pi / float64(np),
	}
	g.Theta = make([]float64, nt)
	g.SinT = make([]float64, nt)
	g.CosT = make([]float64, nt)
	g.CotT = make([]float64, nt)
	g.InvSinT = make([]float64, nt)
	for j := 0; j < nt; j++ {
		th := (float64(j) + 0.5) * g.Dt
		g.Theta[j] = th
		s, c := math.Sincos(th)
		g.SinT[j] = s
		g.CosT[j] = c
		g.CotT[j] = c / s
		g.InvSinT[j] = 1 / s
	}
	return g, nil
}

// Field is a scalar on the surface grid, indexed j*Np + k.
type Field []float64

// NewField allocates a zeroed field for the grid.
func (g *SurfaceGrid) NewField() Field { return make(Field, g.Nt*g.Np) }

// At returns the value at row j, column k (k taken modulo Np).
func (g *SurfaceGrid) At(f Field, j, k int) float64 {
	return f[j*g.Np+mod(k, g.Np)]
}

func mod(k, n int) int {
	k %= n
	if k < 0 {
		k += n
	}
	return k
}

// northOf returns the value one row toward theta- of (j, k): an ordinary
// neighbour for j > 0, and the cross-pole closure for the first row —
// the grid line continues over the pole onto the meridian 180 degrees
// away. This is the "special care at the poles" of the paper.
func (g *SurfaceGrid) northOf(f Field, j, k int) float64 {
	if j > 0 {
		return f[(j-1)*g.Np+k]
	}
	return f[0*g.Np+mod(k+g.Np/2, g.Np)]
}

// southOf is the theta+ analogue of northOf.
func (g *SurfaceGrid) southOf(f Field, j, k int) float64 {
	if j < g.Nt-1 {
		return f[(j+1)*g.Np+k]
	}
	return f[(g.Nt-1)*g.Np+mod(k+g.Np/2, g.Np)]
}

// Laplacian computes the surface (unit-sphere) Laplacian
//
//	lap f = d2f/dt2 + cot(t) df/dt + (1/sin^2 t) d2f/dp2
//
// with second-order central differences, the periodic longitude closure,
// and the cross-pole closure in colatitude.
func (g *SurfaceGrid) Laplacian(f, out Field) {
	idt2 := 1 / (g.Dt * g.Dt)
	idt := 1 / (2 * g.Dt)
	idp2 := 1 / (g.Dp * g.Dp)
	for j := 0; j < g.Nt; j++ {
		cot := g.CotT[j]
		is2 := g.InvSinT[j] * g.InvSinT[j]
		for k := 0; k < g.Np; k++ {
			c := f[j*g.Np+k]
			n := g.northOf(f, j, k)
			s := g.southOf(f, j, k)
			e := f[j*g.Np+mod(k+1, g.Np)]
			w := f[j*g.Np+mod(k-1, g.Np)]
			out[j*g.Np+k] = (n-2*c+s)*idt2 + cot*(s-n)*idt + (e-2*c+w)*is2*idp2
		}
	}
	n := int64(g.Nt * g.Np)
	perfcount.AddFlops(n * 12)
	// Longitude is the natural inner (vectorizable) dimension here.
	perfcount.AddVectorLoops(int64(g.Nt), n)
	perfcount.AddScalarOps(int64(g.Nt) * 4) // pole-row bookkeeping
}

// SolidRotationAdvect computes -(u . grad) f for solid-body rotation
// about the polar axis with unit angular velocity: u_phi = sin(theta),
// so -(u.grad) f = -df/dphi.
func (g *SurfaceGrid) SolidRotationAdvect(f, out Field) {
	idp := 1 / (2 * g.Dp)
	for j := 0; j < g.Nt; j++ {
		for k := 0; k < g.Np; k++ {
			e := f[j*g.Np+mod(k+1, g.Np)]
			w := f[j*g.Np+mod(k-1, g.Np)]
			out[j*g.Np+k] = -(e - w) * idp
		}
	}
	n := int64(g.Nt * g.Np)
	perfcount.AddFlops(n * 3)
	perfcount.AddVectorLoops(int64(g.Nt), n)
}

// MaxStableDt returns the explicit stability limit of the combined
// advection-diffusion step. Near the poles the physical longitudinal
// spacing is dphi*sin(theta) while the advecting velocity stays finite,
// and the diffusive limit collapses like (dphi sin theta)^2 — this is
// the pole pathology that throttles the whole grid.
func (g *SurfaceGrid) MaxStableDt(kappa, uMax float64) float64 {
	minSpacing := g.Dp * g.SinT[0] // first off-pole row
	if g.Dt < minSpacing {
		minSpacing = g.Dt
	}
	dt := math.Inf(1)
	if uMax > 0 {
		dt = minSpacing / uMax
	}
	if kappa > 0 {
		// The diffusive limit is set by the smallest spacing; CFL-like
		// constant 1/4 for the 2-D five-point stencil.
		if d := minSpacing * minSpacing / (4 * kappa); d < dt {
			dt = d
		}
	}
	return dt
}

// HeatSolver advances df/dt = kappa lap f - adv*(u.grad) f with RK4 on
// the lat-lon surface grid.
type HeatSolver struct {
	G     *SurfaceGrid
	Kappa float64
	Adv   float64 // solid-rotation advection strength (0 = pure diffusion)
	F     Field

	k1, k2, k3, k4, tmp, scratch Field
}

// NewHeatSolver allocates a solver with a zero field.
func NewHeatSolver(g *SurfaceGrid, kappa, adv float64) *HeatSolver {
	return &HeatSolver{
		G: g, Kappa: kappa, Adv: adv, F: g.NewField(),
		k1: g.NewField(), k2: g.NewField(), k3: g.NewField(), k4: g.NewField(),
		tmp: g.NewField(), scratch: g.NewField(),
	}
}

func (s *HeatSolver) rhs(f, out Field) {
	s.G.Laplacian(f, out)
	for i := range out {
		out[i] *= s.Kappa
	}
	//yyvet:ignore float-eq Adv is a config value: exactly zero means advection disabled, any other value takes the advection path
	if s.Adv != 0 {
		s.G.SolidRotationAdvect(f, s.scratch)
		for i := range out {
			out[i] += s.Adv * s.scratch[i]
		}
	}
	perfcount.AddFlops(int64(2 * len(out)))
}

// Step advances one RK4 step of size dt.
func (s *HeatSolver) Step(dt float64) {
	g := s.G
	s.rhs(s.F, s.k1)
	for i := range s.tmp {
		s.tmp[i] = s.F[i] + dt/2*s.k1[i]
	}
	s.rhs(s.tmp, s.k2)
	for i := range s.tmp {
		s.tmp[i] = s.F[i] + dt/2*s.k2[i]
	}
	s.rhs(s.tmp, s.k3)
	for i := range s.tmp {
		s.tmp[i] = s.F[i] + dt*s.k3[i]
	}
	s.rhs(s.tmp, s.k4)
	for i := range s.F {
		s.F[i] += dt / 6 * (s.k1[i] + 2*s.k2[i] + 2*s.k3[i] + s.k4[i])
	}
	perfcount.AddFlops(int64(10 * g.Nt * g.Np))
}

// SetFromFunc fills the field from a function of (theta, phi).
func (s *HeatSolver) SetFromFunc(fn func(theta, phi float64) float64) {
	g := s.G
	for j := 0; j < g.Nt; j++ {
		for k := 0; k < g.Np; k++ {
			s.F[j*g.Np+k] = fn(g.Theta[j], float64(k)*g.Dp-math.Pi)
		}
	}
}

// Phi returns the longitude of column k in (-pi, pi].
func (g *SurfaceGrid) Phi(k int) float64 { return float64(k)*g.Dp - math.Pi }
