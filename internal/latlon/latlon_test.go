package latlon

import (
	"math"
	"testing"

	"repro/internal/coords"
)

func TestNewSurfaceGridValidation(t *testing.T) {
	if _, err := NewSurfaceGrid(3, 8); err == nil {
		t.Error("tiny nt accepted")
	}
	if _, err := NewSurfaceGrid(8, 7); err == nil {
		t.Error("odd np accepted")
	}
	g, err := NewSurfaceGrid(16, 32)
	if err != nil {
		t.Fatal(err)
	}
	// Offset rows: no node on a pole.
	if g.Theta[0] <= 0 || g.Theta[g.Nt-1] >= math.Pi {
		t.Errorf("pole node present: %v .. %v", g.Theta[0], g.Theta[g.Nt-1])
	}
}

// lapErr measures the max Laplacian error for an eigenfunction f with
// lap f = -l(l+1) f on the unit sphere, over rows [jlo*Nt, jhi*Nt).
func lapErr(t *testing.T, nt int, fn func(th, ph float64) float64, l int, jlo, jhi float64) float64 {
	t.Helper()
	g, err := NewSurfaceGrid(nt, 2*nt)
	if err != nil {
		t.Fatal(err)
	}
	f := g.NewField()
	out := g.NewField()
	for j := 0; j < g.Nt; j++ {
		for k := 0; k < g.Np; k++ {
			f[j*g.Np+k] = fn(g.Theta[j], g.Phi(k))
		}
	}
	g.Laplacian(f, out)
	lam := -float64(l * (l + 1))
	var m float64
	for j := int(jlo * float64(g.Nt)); j < int(jhi*float64(g.Nt)); j++ {
		for k := 0; k < g.Np; k++ {
			if e := math.Abs(out[j*g.Np+k] - lam*f[j*g.Np+k]); e > m {
				m = e
			}
		}
	}
	return m
}

// TestLaplacianEigenfunctions: spherical harmonics are eigenfunctions of
// the surface Laplacian; away from the poles the discrete operator
// converges to the eigenvalue at second order.
func TestLaplacianEigenfunctions(t *testing.T) {
	cases := []struct {
		name string
		fn   func(th, ph float64) float64
		l    int
	}{
		{"Y10", func(th, ph float64) float64 { return math.Cos(th) }, 1},
		{"Y11", func(th, ph float64) float64 { return math.Sin(th) * math.Cos(ph) }, 1},
		{"Y20", func(th, ph float64) float64 { return 1.5*math.Cos(th)*math.Cos(th) - 0.5 }, 2},
	}
	for _, c := range cases {
		e1 := lapErr(t, 24, c.fn, c.l, 0.25, 0.75)
		e2 := lapErr(t, 48, c.fn, c.l, 0.25, 0.75)
		if rate := math.Log2(e1 / e2); rate < 1.6 {
			t.Errorf("%s: mid-latitude convergence rate %.2f (%g -> %g)", c.name, rate, e1, e2)
		}
	}
}

// TestPoleAccuracyDegradation reproduces the paper's complaint about the
// lat-lon grid: for longitude-dependent fields the cot(theta) metric
// factor at the near-pole rows amplifies the truncation error, degrading
// the Laplacian to first order there, while mid-latitudes stay second
// order. (The Yin-Yang patch has no such rows: sin(theta) >= sin(pi/4).)
func TestPoleAccuracyDegradation(t *testing.T) {
	y11 := func(th, ph float64) float64 { return math.Sin(th) * math.Cos(ph) }
	polar1 := lapErr(t, 24, y11, 1, 0, 0.1)
	polar2 := lapErr(t, 48, y11, 1, 0, 0.1)
	polarRate := math.Log2(polar1 / polar2)
	if polarRate > 1.5 {
		t.Errorf("near-pole rate %.2f: expected first-order degradation", polarRate)
	}
	mid2 := lapErr(t, 48, y11, 1, 0.25, 0.75)
	if polar2 < 4*mid2 {
		t.Errorf("near-pole error %g not dominating mid-latitude error %g", polar2, mid2)
	}
}

// TestDiffusionDecayLatLon: Y10 decays like exp(-l(l+1) kappa t).
func TestDiffusionDecayLatLon(t *testing.T) {
	g, _ := NewSurfaceGrid(32, 64)
	const kappa = 0.05
	s := NewHeatSolver(g, kappa, 0)
	s.SetFromFunc(func(th, ph float64) float64 { return math.Cos(th) })
	dt := g.MaxStableDt(kappa, 0) * 0.5
	steps := 200
	for n := 0; n < steps; n++ {
		s.Step(dt)
	}
	tEnd := float64(steps) * dt
	want := math.Exp(-2 * kappa * tEnd)
	// Amplitude at the first row.
	got := s.F[0] / math.Cos(g.Theta[0])
	if math.Abs(got-want)/want > 0.01 {
		t.Errorf("decay factor %v, want %v", got, want)
	}
}

// TestDiffusionDecayYinYang: the same eigen-decay on the overset pair.
func TestDiffusionDecayYinYang(t *testing.T) {
	const kappa = 0.05
	s, err := NewYYSurface(33, kappa, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.SetFromGlobalFunc(func(c coords.Cartesian) float64 { return c.Z })
	dt := s.MaxStableDt(kappa, 0) * 0.5
	steps := 200
	for n := 0; n < steps; n++ {
		s.Step(dt)
	}
	tEnd := float64(steps) * dt
	want := math.Exp(-2 * kappa * tEnd)
	// Sample at a mid-latitude point: f = z * decay.
	th, ph := 1.0, 0.7
	got := s.SampleAt(th, ph) / math.Cos(th)
	if math.Abs(got-want)/want > 0.01 {
		t.Errorf("decay factor %v, want %v", got, want)
	}
}

// TestSolidRotationAdvection: with kappa = 0 and unit rotation, the
// pattern sin(theta) cos(phi - t) translates in longitude. Verified on
// both grids.
func TestSolidRotationAdvection(t *testing.T) {
	const tEnd = 0.3

	// Lat-lon grid.
	g, _ := NewSurfaceGrid(48, 96)
	s := NewHeatSolver(g, 0, 1)
	s.SetFromFunc(func(th, ph float64) float64 { return math.Sin(th) * math.Cos(ph) })
	dt := g.MaxStableDt(0, 1) * 0.4
	steps := int(math.Ceil(tEnd / dt))
	dt = tEnd / float64(steps)
	for n := 0; n < steps; n++ {
		s.Step(dt)
	}
	var m float64
	for j := 0; j < g.Nt; j++ {
		for k := 0; k < g.Np; k++ {
			want := math.Sin(g.Theta[j]) * math.Cos(g.Phi(k)-tEnd)
			if e := math.Abs(s.F[j*g.Np+k] - want); e > m {
				m = e
			}
		}
	}
	if m > 5e-3 {
		t.Errorf("lat-lon advection error %g", m)
	}

	// Yin-Yang pair.
	yy, err := NewYYSurface(49, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	yy.SetFromGlobalFunc(func(c coords.Cartesian) float64 { return c.X })
	dtY := yy.MaxStableDt(0, 1) * 0.4
	stepsY := int(math.Ceil(tEnd / dtY))
	dtY = tEnd / float64(stepsY)
	for n := 0; n < stepsY; n++ {
		yy.Step(dtY)
	}
	var mY float64
	for _, pt := range [][2]float64{{1.2, 0.3}, {0.9, -2.0}, {1.6, 2.5}, {2.2, 0.0}} {
		want := math.Sin(pt[0]) * math.Cos(pt[1]-tEnd)
		if e := math.Abs(yy.SampleAt(pt[0], pt[1]) - want); e > mY {
			mY = e
		}
	}
	if mY > 5e-3 {
		t.Errorf("yin-yang advection error %g", mY)
	}
}

// TestCrossGridAgreement: both discretizations of the same equation
// agree on the evolved solution of a smooth initial condition.
func TestCrossGridAgreement(t *testing.T) {
	const kappa, adv, tEnd = 0.02, 0.5, 0.4
	ic := func(c coords.Cartesian) float64 {
		return c.X*c.Z + 0.5*c.Y + 0.3*math.Sin(2*c.X)
	}
	g, _ := NewSurfaceGrid(48, 96)
	ll := NewHeatSolver(g, kappa, adv)
	ll.SetFromFunc(func(th, ph float64) float64 {
		return ic(coords.Spherical{R: 1, Theta: th, Phi: ph}.ToCartesian())
	})
	dt := g.MaxStableDt(kappa, adv) * 0.4
	steps := int(math.Ceil(tEnd / dt))
	dt = tEnd / float64(steps)
	for n := 0; n < steps; n++ {
		ll.Step(dt)
	}

	yy, err := NewYYSurface(49, kappa, adv)
	if err != nil {
		t.Fatal(err)
	}
	yy.SetFromGlobalFunc(ic)
	dtY := yy.MaxStableDt(kappa, adv) * 0.4
	stepsY := int(math.Ceil(tEnd / dtY))
	dtY = tEnd / float64(stepsY)
	for n := 0; n < stepsY; n++ {
		yy.Step(dtY)
	}

	var m, scale float64
	for j := 2; j < g.Nt-2; j += 3 {
		for k := 0; k < g.Np; k += 3 {
			a := ll.F[j*g.Np+k]
			b := yy.SampleAt(g.Theta[j], g.Phi(k))
			if e := math.Abs(a - b); e > m {
				m = e
			}
			if s := math.Abs(a); s > scale {
				scale = s
			}
		}
	}
	if m/scale > 0.02 {
		t.Errorf("cross-grid disagreement %g (relative %g)", m, m/scale)
	}
}

// TestPoleCFLAblation: the lat-lon grid's stable time step collapses
// with resolution (dphi*sin(theta_first) ~ dtheta*dphi) while the
// Yin-Yang pair's shrinks only linearly — the paper's core argument.
func TestPoleCFLAblation(t *testing.T) {
	ratioAt := func(nt int) float64 {
		g, err := NewSurfaceGrid(nt, 2*nt)
		if err != nil {
			t.Fatal(err)
		}
		yy, err := NewYYSurface(nt/2+1, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		const kappa = 0.01
		return yy.MaxStableDt(kappa, 1) / g.MaxStableDt(kappa, 1)
	}
	r1 := ratioAt(32)
	r2 := ratioAt(128)
	if r1 < 2 {
		t.Errorf("Yin-Yang dt advantage only %.2fx at nt=32", r1)
	}
	if r2 < 3*r1 {
		t.Errorf("dt advantage should grow with resolution: %.1fx -> %.1fx", r1, r2)
	}
}

// TestStabilityAtLimit: stepping the lat-lon solver just below its
// stability estimate stays bounded; stepping well above it blows up.
// This validates that MaxStableDt is a real boundary, not a guess.
func TestStabilityAtLimit(t *testing.T) {
	run := func(factor float64) float64 {
		g, _ := NewSurfaceGrid(24, 48)
		const kappa = 0.05
		s := NewHeatSolver(g, kappa, 0)
		s.SetFromFunc(func(th, ph float64) float64 {
			return math.Sin(3*th) * math.Cos(4*ph)
		})
		dt := g.MaxStableDt(kappa, 0) * factor
		for n := 0; n < 120; n++ {
			s.Step(dt)
		}
		var m float64
		for _, v := range s.F {
			if a := math.Abs(v); a > m {
				m = a
			}
		}
		return m
	}
	if m := run(0.6); m > 1.5 || math.IsNaN(m) {
		t.Errorf("stable run diverged: %g", m)
	}
	if m := run(8.0); !(m > 1e3 || math.IsNaN(m)) {
		t.Errorf("unstable run did not diverge: %g", m)
	}
}

// TestGridEconomy: the lat-lon grid spends more nodes than the Yin-Yang
// pair at matched angular spacing (about 1.26x in the continuum; the
// discrete ratio depends on rounding).
func TestGridEconomy(t *testing.T) {
	yy, err := NewYYSurface(65, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Matched spacing lat-lon grid.
	nt := int(math.Round(math.Pi / yy.Dt))
	np := int(math.Round(2 * math.Pi / yy.Dp))
	if np%2 == 1 {
		np++
	}
	g, err := NewSurfaceGrid(nt, np)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(g.Nt*g.Np) / float64(2*yy.Nt*yy.Np)
	if ratio < 1.1 || ratio > 1.45 {
		t.Errorf("node ratio = %.3f, want about 1.26", ratio)
	}
}
