package latlon

import (
	"fmt"
	"math"

	"repro/internal/coords"
	"repro/internal/mhd"
	"repro/internal/perfcount"
)

// MHD3D is the paper's predecessor: the full compressible-MHD geodynamo
// solver on the traditional latitude-longitude grid covering the whole
// sphere, with the special treatment the poles require — offset
// colatitude rows (no node on the axis), periodic longitude, and the
// cross-pole closure under which scalar fields and radial vector
// components continue smoothly while tangential vector components flip
// sign. Physics, wall conditions and the RK4 scheme match internal/mhd
// exactly, so the two discretizations can be cross-validated; the price
// of the poles — the collapsed stable time step and the first-order
// metric amplification near the axis — is measurable on the real
// equations (not just the surface model).
//
// This solver is a validation instrument: it favours clarity (per-point
// accessor closures) over speed.
type MHD3D struct {
	Nr, Nt, Np                int
	Prm                       mhd.Params
	Dr, Dt, Dp                float64
	R, Theta                  []float64
	sinT, cosT, cotT, invSinT []float64

	// State fields in the fixed order rho, p, fr, ft, fp, ar, at, ap.
	U [8][]float64
	// Derived fields.
	vr, vt, vp, tt, dv     []float64
	br, bt, bp, jr, jt, jp []float64

	u0, k, acc [8][]float64

	Time  float64
	Steps int
}

// Field order indices into U.
const (
	iRho = iota
	iP
	iFr
	iFt
	iFp
	iAr
	iAt
	iAp
)

// parity lists the cross-pole sign of each state field: scalars and
// radial components continue evenly; tangential components flip.
var parity = [8]float64{1, 1, 1, -1, -1, 1, -1, -1}

// NewMHD3D builds and initializes the lat-lon solver with the same
// hydrostatic conduction state and smooth global perturbation as
// mhd.InitPanel, so runs are directly comparable to the Yin-Yang solver.
// Np must be even (cross-pole closure pairs meridians 180 degrees apart).
func NewMHD3D(nr, nt, np int, prm mhd.Params, ic mhd.InitialConditions) (*MHD3D, error) {
	if nr < 5 || nt < 4 || np < 8 || np%2 != 0 {
		return nil, fmt.Errorf("latlon: bad 3-D grid %dx%dx%d (need nr>=5, nt>=4, even np>=8)", nr, nt, np)
	}
	if err := prm.Validate(); err != nil {
		return nil, err
	}
	const ri, ro = 0.35, 1.0
	s := &MHD3D{
		Nr: nr, Nt: nt, Np: np, Prm: prm,
		Dr: (ro - ri) / float64(nr-1),
		Dt: math.Pi / float64(nt),
		Dp: 2 * math.Pi / float64(np),
	}
	s.R = make([]float64, nr)
	for i := range s.R {
		s.R[i] = ri + float64(i)*s.Dr
	}
	s.Theta = make([]float64, nt)
	s.sinT = make([]float64, nt)
	s.cosT = make([]float64, nt)
	s.cotT = make([]float64, nt)
	s.invSinT = make([]float64, nt)
	for j := range s.Theta {
		th := (float64(j) + 0.5) * s.Dt
		s.Theta[j] = th
		sn, cs := math.Sincos(th)
		s.sinT[j] = sn
		s.cosT[j] = cs
		s.cotT[j] = cs / sn
		s.invSinT[j] = 1 / sn
	}
	n := nr * nt * np
	for f := 0; f < 8; f++ {
		s.U[f] = make([]float64, n)
		s.u0[f] = make([]float64, n)
		s.k[f] = make([]float64, n)
		s.acc[f] = make([]float64, n)
	}
	for _, p := range []*[]float64{&s.vr, &s.vt, &s.vp, &s.tt, &s.dv, &s.br, &s.bt, &s.bp, &s.jr, &s.jt, &s.jp} {
		*p = make([]float64, n)
	}
	s.initState(ri, ro, ic)
	s.applyWallBC()
	return s, nil
}

// initState matches mhd.InitPanel: hydrostatic conduction profile, the
// same deterministic global perturbation, and the same windowed
// uniform-Bz seed potential.
func (s *MHD3D) initState(ri, ro float64, ic mhd.InitialConditions) {
	pf := mhd.NewProfile(s.Prm, ri, ro)
	pert := mhd.NewGlobalPerturbation(ic.Modes, ic.Seed)
	for k := 0; k < s.Np; k++ {
		phi := s.Phi3D(k)
		for j := 0; j < s.Nt; j++ {
			th := s.Theta[j]
			for i := 0; i < s.Nr; i++ {
				r := s.R[i]
				pos := coords.Spherical{R: r, Theta: th, Phi: phi}.ToCartesian()
				rho := pf.Rho(r)
				w := mhd.WallWindow(r, ri, ro)
				dT := ic.PerturbAmp * w * pert.At(pos)
				id := s.idx(i, j, k)
				s.U[iRho][id] = rho
				s.U[iP][id] = rho * (pf.T(r) + dT)
				aCart := coords.Cartesian{X: -pos.Y, Y: pos.X, Z: 0}
				scale := 0.5 * ic.SeedBAmp * w
				av := coords.CartToSphVec(th, phi, coords.Cartesian{
					X: scale * aCart.X, Y: scale * aCart.Y, Z: scale * aCart.Z,
				})
				s.U[iAr][id] = av.VR
				s.U[iAt][id] = av.VT
				s.U[iAp][id] = av.VP
			}
		}
	}
}

// Phi3D returns the longitude of column k in (-pi, pi].
func (s *MHD3D) Phi3D(k int) float64 { return -math.Pi + float64(k)*s.Dp }

func (s *MHD3D) idx(i, j, k int) int { return (k*s.Nt+j)*s.Nr + i }

// at reads field f at (i, j, k) applying the periodic longitude closure
// and the cross-pole closure with the field's parity.
func (s *MHD3D) at(f []float64, par float64, i, j, k int) float64 {
	sign := 1.0
	if j < 0 {
		j = -1 - j
		k += s.Np / 2
		sign = par
	} else if j >= s.Nt {
		j = 2*s.Nt - 1 - j
		k += s.Np / 2
		sign = par
	}
	k %= s.Np
	if k < 0 {
		k += s.Np
	}
	return sign * f[(k*s.Nt+j)*s.Nr+i]
}

// Angular first/second derivatives via the closures.
func (s *MHD3D) dTh(f []float64, par float64, i, j, k int) float64 {
	return (s.at(f, par, i, j+1, k) - s.at(f, par, i, j-1, k)) / (2 * s.Dt)
}
func (s *MHD3D) d2Th(f []float64, par float64, i, j, k int) float64 {
	return (s.at(f, par, i, j+1, k) - 2*f[s.idx(i, j, k)] + s.at(f, par, i, j-1, k)) / (s.Dt * s.Dt)
}
func (s *MHD3D) dPh(f []float64, par float64, i, j, k int) float64 {
	return (s.at(f, par, i, j, k+1) - s.at(f, par, i, j, k-1)) / (2 * s.Dp)
}
func (s *MHD3D) d2Ph(f []float64, par float64, i, j, k int) float64 {
	return (s.at(f, par, i, j, k+1) - 2*f[s.idx(i, j, k)] + s.at(f, par, i, j, k-1)) / (s.Dp * s.Dp)
}

// Radial derivatives: centered inside, second-order one-sided at walls.
func (s *MHD3D) dR(f []float64, i, j, k int) float64 {
	switch {
	case i == 0:
		return (-3*f[s.idx(0, j, k)] + 4*f[s.idx(1, j, k)] - f[s.idx(2, j, k)]) / (2 * s.Dr)
	case i == s.Nr-1:
		return (3*f[s.idx(i, j, k)] - 4*f[s.idx(i-1, j, k)] + f[s.idx(i-2, j, k)]) / (2 * s.Dr)
	default:
		return (f[s.idx(i+1, j, k)] - f[s.idx(i-1, j, k)]) / (2 * s.Dr)
	}
}
func (s *MHD3D) d2R(f []float64, i, j, k int) float64 {
	switch {
	case i == 0:
		return (f[s.idx(0, j, k)] - 2*f[s.idx(1, j, k)] + f[s.idx(2, j, k)]) / (s.Dr * s.Dr)
	case i == s.Nr-1:
		return (f[s.idx(i, j, k)] - 2*f[s.idx(i-1, j, k)] + f[s.idx(i-2, j, k)]) / (s.Dr * s.Dr)
	default:
		return (f[s.idx(i+1, j, k)] - 2*f[s.idx(i, j, k)] + f[s.idx(i-1, j, k)]) / (s.Dr * s.Dr)
	}
}

// computeDerived fills v = f/rho, T = p/rho and B = curl A, then
// j = curl B, over all nodes.
func (s *MHD3D) computeDerived(u *[8][]float64) {
	n := len(s.vr)
	for id := 0; id < n; id++ {
		rho := u[iRho][id]
		s.vr[id] = u[iFr][id] / rho
		s.vt[id] = u[iFt][id] / rho
		s.vp[id] = u[iFp][id] / rho
		s.tt[id] = u[iP][id] / rho
	}
	for k := 0; k < s.Np; k++ {
		for j := 0; j < s.Nt; j++ {
			ir := 0.0
			cot := s.cotT[j]
			ist := s.invSinT[j]
			for i := 0; i < s.Nr; i++ {
				id := s.idx(i, j, k)
				ir = 1 / s.R[i]
				ar, at, ap := u[iAr], u[iAt], u[iAp]
				s.br[id] = ir*(s.dTh(ap, -1, i, j, k)+cot*ap[id]) - ir*ist*s.dPh(at, -1, i, j, k)
				s.bt[id] = ir*ist*s.dPh(ar, 1, i, j, k) - s.dR(ap, i, j, k) - ap[id]*ir
				s.bp[id] = s.dR(at, i, j, k) + at[id]*ir - ir*s.dTh(ar, 1, i, j, k)
			}
		}
	}
	for k := 0; k < s.Np; k++ {
		for j := 0; j < s.Nt; j++ {
			cot := s.cotT[j]
			ist := s.invSinT[j]
			for i := 0; i < s.Nr; i++ {
				id := s.idx(i, j, k)
				ir := 1 / s.R[i]
				s.jr[id] = ir*(s.dTh(s.bp, -1, i, j, k)+cot*s.bp[id]) - ir*ist*s.dPh(s.bt, -1, i, j, k)
				s.jt[id] = ir*ist*s.dPh(s.br, 1, i, j, k) - s.dR(s.bp, i, j, k) - s.bp[id]*ir
				s.jp[id] = s.dR(s.bt, i, j, k) + s.bt[id]*ir - ir*s.dTh(s.br, 1, i, j, k)
			}
		}
	}
	for k := 0; k < s.Np; k++ {
		for j := 0; j < s.Nt; j++ {
			cot := s.cotT[j]
			ist := s.invSinT[j]
			for i := 0; i < s.Nr; i++ {
				id := s.idx(i, j, k)
				ir := 1 / s.R[i]
				s.dv[id] = s.dR(s.vr, i, j, k) + 2*s.vr[id]*ir +
					ir*(s.dTh(s.vt, -1, i, j, k)+cot*s.vt[id]) +
					ir*ist*s.dPh(s.vp, -1, i, j, k)
			}
		}
	}
	perfcount.AddFlops(int64(n) * 60)
	perfcount.AddVectorLoops(int64(s.Nt*s.Np), int64(n))
}

// rhs evaluates the full MHD right-hand side (eqs. 2-5 of the paper)
// into out, at every node (wall-node values are later overridden by the
// boundary conditions).
func (s *MHD3D) rhs(u *[8][]float64, out *[8][]float64) {
	s.computeDerived(u)
	gamma, mu, kappa, eta, g0 := s.Prm.Gamma, s.Prm.Mu, s.Prm.Kappa, s.Prm.Eta, s.Prm.G0
	om := s.Prm.Omega

	for k := 0; k < s.Np; k++ {
		for j := 0; j < s.Nt; j++ {
			cot := s.cotT[j]
			ist := s.invSinT[j]
			ist2 := ist * ist
			cost := s.cosT[j]
			// Rotation vector along the geographic axis in local
			// spherical components (Omega_phi = 0 on the lat-lon grid).
			omR := om * s.cosT[j]
			omT := -om * s.sinT[j]
			for i := 0; i < s.Nr; i++ {
				id := s.idx(i, j, k)
				ir := 1 / s.R[i]
				ir2 := ir * ir
				rho := u[iRho][id]
				pp := u[iP][id]
				vrv, vtv, vpv := s.vr[id], s.vt[id], s.vp[id]
				divV := s.dv[id]

				// Continuity.
				divF := s.dR(u[iFr], i, j, k) + 2*u[iFr][id]*ir +
					ir*(s.dTh(u[iFt], -1, i, j, k)+cot*u[iFt][id]) +
					ir*ist*s.dPh(u[iFp], -1, i, j, k)
				out[iRho][id] = -divF

				// Advection via div(v f_b) = (div v) f_b + (v.grad) f_b
				// plus the spherical Christoffel corrections.
				gradDot := func(fb []float64, par float64) float64 {
					return vrv*s.dR(fb, i, j, k) +
						vtv*ir*s.dTh(fb, par, i, j, k) +
						vpv*ir*ist*s.dPh(fb, par, i, j, k)
				}
				advR := divV*u[iFr][id] + gradDot(u[iFr], 1) -
					(vtv*u[iFt][id]+vpv*u[iFp][id])*ir
				advT := divV*u[iFt][id] + gradDot(u[iFt], -1) +
					(vtv*u[iFr][id]-cot*vpv*u[iFp][id])*ir
				advP := divV*u[iFp][id] + gradDot(u[iFp], -1) +
					(vpv*u[iFr][id]+cot*vpv*u[iFt][id])*ir

				// Pressure gradient.
				gpR := s.dR(u[iP], i, j, k)
				gpT := ir * s.dTh(u[iP], 1, i, j, k)
				gpP := ir * ist * s.dPh(u[iP], 1, i, j, k)

				// Lorentz force.
				fLr := s.jt[id]*s.bp[id] - s.jp[id]*s.bt[id]
				fLt := s.jp[id]*s.br[id] - s.jr[id]*s.bp[id]
				fLp := s.jr[id]*s.bt[id] - s.jt[id]*s.br[id]

				// Viscous force: lap v with the spherical coupling terms
				// plus (1/3) grad(div v).
				lapS := func(f []float64, par float64) float64 {
					return s.d2R(f, i, j, k) + 2*ir*s.dR(f, i, j, k) +
						ir2*(s.d2Th(f, par, i, j, k)+cot*s.dTh(f, par, i, j, k)) +
						ir2*ist2*s.d2Ph(f, par, i, j, k)
				}
				lapR := lapS(s.vr, 1) - 2*ir2*(vrv+s.dTh(s.vt, -1, i, j, k)+cot*vtv+ist*s.dPh(s.vp, -1, i, j, k))
				lapT := lapS(s.vt, -1) + ir2*(2*s.dTh(s.vr, 1, i, j, k)-ist2*vtv-2*cost*ist2*s.dPh(s.vp, -1, i, j, k))
				lapP := lapS(s.vp, -1) + ir2*(2*ist*s.dPh(s.vr, 1, i, j, k)+2*cost*ist2*s.dPh(s.vt, -1, i, j, k)-ist2*vpv)
				gdvR := s.dR(s.dv, i, j, k)
				gdvT := ir * s.dTh(s.dv, 1, i, j, k)
				gdvP := ir * ist * s.dPh(s.dv, 1, i, j, k)

				// Coriolis 2 rho v x Omega (Omega_phi = 0).
				corR := 2 * rho * (-vpv * omT)
				corT := 2 * rho * (vpv * omR)
				corP := 2 * rho * (vrv*omT - vtv*omR)

				gR := -g0 * ir2

				out[iFr][id] = -advR - gpR + fLr + rho*gR + corR + mu*(lapR+gdvR/3)
				out[iFt][id] = -advT - gpT + fLt + corT + mu*(lapT+gdvT/3)
				out[iFp][id] = -advP - gpP + fLp + corP + mu*(lapP+gdvP/3)

				// Pressure: advection, compression, conduction, Joule and
				// viscous heating.
				vgp := vrv*gpR + vtv*gpT + vpv*gpP
				lapTT := lapS(s.tt, 1)
				jsq := s.jr[id]*s.jr[id] + s.jt[id]*s.jt[id] + s.jp[id]*s.jp[id]

				// Strain-rate dissipation Phi = 2 mu (e_ij e_ij - div^2/3).
				err2 := s.dR(s.vr, i, j, k)
				ett := ir*s.dTh(s.vt, -1, i, j, k) + vrv*ir
				epp := ir*ist*s.dPh(s.vp, -1, i, j, k) + vrv*ir + cot*vtv*ir
				ert := 0.5 * (ir*s.dTh(s.vr, 1, i, j, k) + s.dR(s.vt, i, j, k) - vtv*ir)
				erp := 0.5 * (ir*ist*s.dPh(s.vr, 1, i, j, k) + s.dR(s.vp, i, j, k) - vpv*ir)
				etp := 0.5 * (ir*ist*s.dPh(s.vt, -1, i, j, k) + ir*s.dTh(s.vp, -1, i, j, k) - cot*vpv*ir)
				strain := err2*err2 + ett*ett + epp*epp + 2*(ert*ert+erp*erp+etp*etp) - divV*divV/3

				out[iP][id] = -vgp - gamma*pp*divV +
					(gamma-1)*(kappa*lapTT+eta*jsq+2*mu*strain)

				// Induction.
				out[iAr][id] = vtv*s.bp[id] - vpv*s.bt[id] - eta*s.jr[id]
				out[iAt][id] = vpv*s.br[id] - vrv*s.bp[id] - eta*s.jt[id]
				out[iAp][id] = vrv*s.bt[id] - vtv*s.br[id] - eta*s.jp[id]
			}
		}
	}
	n := int64(len(s.vr))
	perfcount.AddFlops(n * 200)
	perfcount.AddVectorLoops(int64(s.Nt*s.Np), n)
}

// applyWallBC imposes the wall conditions of the confined configuration:
// f = 0, A = 0, p = rho*T_wall at both spheres.
func (s *MHD3D) applyWallBC() {
	const tOut = 1.0
	tIn := s.Prm.TIn
	for k := 0; k < s.Np; k++ {
		for j := 0; j < s.Nt; j++ {
			for _, wl := range [2]struct {
				i int
				t float64
			}{{0, tIn}, {s.Nr - 1, tOut}} {
				id := s.idx(wl.i, j, k)
				s.U[iFr][id] = 0
				s.U[iFt][id] = 0
				s.U[iFp][id] = 0
				s.U[iAr][id] = 0
				s.U[iAt][id] = 0
				s.U[iAp][id] = 0
				s.U[iP][id] = s.U[iRho][id] * wl.t
			}
		}
	}
}

// Advance performs one classical RK4 step, matching mhd.Solver.Advance.
func (s *MHD3D) Advance(dt float64) {
	n := len(s.U[0])
	for f := 0; f < 8; f++ {
		copy(s.u0[f], s.U[f])
		for i := range s.acc[f] {
			s.acc[f][i] = 0
		}
	}
	type stage struct{ stepCoeff, accCoeff float64 }
	stages := []stage{{0.5, 1}, {0.5, 2}, {1, 2}, {0, 1}}
	for si, stg := range stages {
		s.rhs(&s.U, &s.k)
		for f := 0; f < 8; f++ {
			for i := 0; i < n; i++ {
				s.acc[f][i] += stg.accCoeff * s.k[f][i]
			}
		}
		if si < len(stages)-1 {
			for f := 0; f < 8; f++ {
				for i := 0; i < n; i++ {
					s.U[f][i] = s.u0[f][i] + stg.stepCoeff*dt*s.k[f][i]
				}
			}
			s.applyWallBC()
		}
	}
	for f := 0; f < 8; f++ {
		for i := 0; i < n; i++ {
			s.U[f][i] = s.u0[f][i] + dt/6*s.acc[f][i]
		}
	}
	s.applyWallBC()
	s.Time += dt
	s.Steps++
}

// MaxStableDt is the explicit limit including the near-pole collapse:
// the smallest physical spacing is dphi*sin(theta_0)*ri.
func (s *MHD3D) MaxStableDt(safety float64) float64 {
	s.computeDerived(&s.U)
	var vmax float64
	for id := range s.vr {
		cs2 := s.Prm.Gamma * math.Abs(s.tt[id])
		va2 := (s.br[id]*s.br[id] + s.bt[id]*s.bt[id] + s.bp[id]*s.bp[id]) /
			math.Max(s.U[iRho][id], 1e-12)
		sp := math.Sqrt(s.vr[id]*s.vr[id]+s.vt[id]*s.vt[id]+s.vp[id]*s.vp[id]) +
			math.Sqrt(cs2+va2)
		if sp > vmax {
			vmax = sp
		}
	}
	if vmax <= 0 {
		vmax = 1
	}
	ri := s.R[0]
	minDx := math.Min(s.Dr, ri*math.Min(s.Dt, s.Dp*s.sinT[0]))
	dtAdv := minDx / vmax
	diff := math.Max(s.Prm.Mu, math.Max(s.Prm.Kappa, s.Prm.Eta))
	dtDiff := math.Inf(1)
	if diff > 0 {
		dtDiff = minDx * minDx / (4 * diff)
	}
	return safety * math.Min(dtAdv, dtDiff)
}

// SampleScalar trilinearly samples a derived quantity ("T", "rho", "p",
// "vr") at spherical point (r, theta, phi); derived fields must be
// current (call Refresh first).
func (s *MHD3D) SampleScalar(name string, r, theta, phi float64) (float64, bool) {
	var f []float64
	switch name {
	case "T":
		f = s.tt
	case "rho":
		f = s.U[iRho]
	case "p":
		f = s.U[iP]
	case "vr":
		f = s.vr
	default:
		return 0, false
	}
	if r < s.R[0] || r > s.R[s.Nr-1] {
		return 0, false
	}
	fi := (r - s.R[0]) / s.Dr
	i0 := clampI(int(math.Floor(fi)), 0, s.Nr-2)
	ai := fi - float64(i0)
	fj := theta/s.Dt - 0.5
	j0 := clampI(int(math.Floor(fj)), 0, s.Nt-2)
	aj := fj - float64(j0)
	fk := (phi + math.Pi) / s.Dp
	k0 := int(math.Floor(fk))
	ak := fk - float64(k0)
	val := 0.0
	for di := 0; di <= 1; di++ {
		wi := 1 - ai
		if di == 1 {
			wi = ai
		}
		for dj := 0; dj <= 1; dj++ {
			wj := 1 - aj
			if dj == 1 {
				wj = aj
			}
			for dk := 0; dk <= 1; dk++ {
				wk := 1 - ak
				if dk == 1 {
					wk = ak
				}
				kk := (k0 + dk) % s.Np
				if kk < 0 {
					kk += s.Np
				}
				val += wi * wj * wk * f[s.idx(i0+di, j0+dj, kk)]
			}
		}
	}
	return val, true
}

// Refresh recomputes the derived fields from the current state.
func (s *MHD3D) Refresh() { s.computeDerived(&s.U) }

// Energies returns volume-integrated kinetic and magnetic energy
// (trapezoid in r, node weights in angle). Refresh must be current.
func (s *MHD3D) Energies() (ek, em float64) {
	for k := 0; k < s.Np; k++ {
		for j := 0; j < s.Nt; j++ {
			for i := 0; i < s.Nr; i++ {
				w := s.R[i] * s.R[i] * s.sinT[j] * s.Dr * s.Dt * s.Dp
				if i == 0 || i == s.Nr-1 {
					w *= 0.5
				}
				id := s.idx(i, j, k)
				v2 := s.vr[id]*s.vr[id] + s.vt[id]*s.vt[id] + s.vp[id]*s.vp[id]
				b2 := s.br[id]*s.br[id] + s.bt[id]*s.bt[id] + s.bp[id]*s.bp[id]
				ek += 0.5 * w * s.U[iRho][id] * v2
				em += 0.5 * w * b2
			}
		}
	}
	return ek, em
}
