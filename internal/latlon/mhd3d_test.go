package latlon

import (
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/mhd"
)

func quiet3DParams() mhd.Params {
	return mhd.Params{Gamma: 5. / 3., Mu: 2e-3, Kappa: 2e-3, Eta: 2e-3, G0: 0, Omega: 0, TIn: 1}
}

func TestNewMHD3DValidation(t *testing.T) {
	if _, err := NewMHD3D(3, 8, 16, quiet3DParams(), mhd.InitialConditions{}); err == nil {
		t.Error("tiny nr accepted")
	}
	if _, err := NewMHD3D(9, 8, 15, quiet3DParams(), mhd.InitialConditions{}); err == nil {
		t.Error("odd np accepted")
	}
	if _, err := NewMHD3D(9, 8, 16, mhd.Params{Gamma: 0.5, TIn: 1}, mhd.InitialConditions{}); err == nil {
		t.Error("bad params accepted")
	}
}

// TestCrossPoleClosure: scalars continue evenly across the pole onto the
// meridian 180 degrees away; tangential components flip sign.
func TestCrossPoleClosure(t *testing.T) {
	s, err := NewMHD3D(9, 8, 16, quiet3DParams(), mhd.InitialConditions{})
	if err != nil {
		t.Fatal(err)
	}
	f := make([]float64, s.Nr*s.Nt*s.Np)
	for k := 0; k < s.Np; k++ {
		for j := 0; j < s.Nt; j++ {
			for i := 0; i < s.Nr; i++ {
				f[s.idx(i, j, k)] = float64(100*k + 10*j + i)
			}
		}
	}
	i, k := 3, 2
	across := f[s.idx(i, 0, (k+s.Np/2)%s.Np)]
	if got := s.at(f, 1, i, -1, k); got != across {
		t.Errorf("even closure: %v vs %v", got, across)
	}
	if got := s.at(f, -1, i, -1, k); got != -across {
		t.Errorf("odd closure: %v vs %v", got, -across)
	}
	// South pole.
	acrossS := f[s.idx(i, s.Nt-1, (k+s.Np/2)%s.Np)]
	if got := s.at(f, -1, i, s.Nt, k); got != -acrossS {
		t.Errorf("south odd closure: %v vs %v", got, -acrossS)
	}
	// Periodic longitude.
	if got := s.at(f, 1, i, 2, s.Np+1); got != f[s.idx(i, 2, 1)] {
		t.Error("longitude wrap failed")
	}
	// The parity table matches the field semantics.
	if parity[iRho] != 1 || parity[iFt] != -1 || parity[iAp] != -1 || parity[iAr] != 1 {
		t.Error("parity table inconsistent")
	}
}

// TestQuiet3DEquilibrium: the uniform isothermal rest state stays put.
func TestQuiet3DEquilibrium(t *testing.T) {
	s, err := NewMHD3D(9, 8, 16, quiet3DParams(),
		mhd.InitialConditions{PerturbAmp: 0, SeedBAmp: 0, Modes: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dt := s.MaxStableDt(0.3)
	for n := 0; n < 4; n++ {
		s.Advance(dt)
	}
	s.Refresh()
	ek, em := s.Energies()
	if ek > 1e-20 || em != 0 {
		t.Errorf("quiet state moved: Ek=%g Em=%g", ek, em)
	}
}

// TestConduction3DNearEquilibrium: the stratified conduction state
// drifts only at truncation level, across the poles included.
func TestConduction3DNearEquilibrium(t *testing.T) {
	prm := mhd.Default()
	prm.Omega = 0
	s, err := NewMHD3D(13, 12, 24, prm,
		mhd.InitialConditions{PerturbAmp: 0, SeedBAmp: 0, Modes: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dt := s.MaxStableDt(0.3)
	for n := 0; n < 6; n++ {
		s.Advance(dt)
	}
	s.Refresh()
	var vmax float64
	for id := range s.vr {
		v := math.Sqrt(s.vr[id]*s.vr[id] + s.vt[id]*s.vt[id] + s.vp[id]*s.vp[id])
		if v > vmax {
			vmax = v
		}
		if math.IsNaN(v) {
			t.Fatal("NaN velocity")
		}
	}
	if vmax > 5e-2 {
		t.Errorf("conduction spurious velocity %g", vmax)
	}
}

// TestPoleDtPenalty3D: on the full MHD equations, the lat-lon stable
// step is far below the Yin-Yang solver's at matched angular spacing —
// the motivation measured on the real system.
func TestPoleDtPenalty3D(t *testing.T) {
	prm := mhd.Default()
	ll, err := NewMHD3D(13, 24, 48, prm, mhd.DefaultIC())
	if err != nil {
		t.Fatal(err)
	}
	yy, err := mhd.NewSolver(grid.NewSpec(13, 13), prm, mhd.DefaultIC())
	if err != nil {
		t.Fatal(err)
	}
	dtLL := ll.MaxStableDt(0.3)
	dtYY := yy.EstimateDT(0.3)
	if ratio := dtYY / dtLL; ratio < 3 {
		t.Errorf("Yin-Yang dt advantage only %.2fx on the full MHD system", ratio)
	}
}

// TestCrossSolverAgreement is the repository's strongest validation: two
// independent discretizations of the full compressible MHD system — the
// Yin-Yang overset solver and the lat-lon pole-closure solver — started
// from the same smooth initial state must evolve to the same fields
// within discretization error.
func TestCrossSolverAgreement(t *testing.T) {
	prm := mhd.Default()
	ic := mhd.DefaultIC()
	ic.SeedBAmp = 0.01

	yy, err := mhd.NewSolver(grid.NewSpec(17, 17), prm, ic)
	if err != nil {
		t.Fatal(err)
	}
	ll, err := NewMHD3D(17, 24, 48, prm, ic)
	if err != nil {
		t.Fatal(err)
	}
	// Advance both to the same physical time with the (smaller) lat-lon
	// stable step.
	dt := math.Min(ll.MaxStableDt(0.3), yy.EstimateDT(0.3))
	const steps = 10
	for n := 0; n < steps; n++ {
		yy.Advance(dt)
		ll.Advance(dt)
	}
	ll.Refresh()

	// Compare temperature and radial velocity at mid-latitude probes.
	type probe struct{ r, th, ph float64 }
	probes := []probe{
		{0.6, 1.2, 0.4}, {0.7, 1.8, -1.0}, {0.5, 1.5, 2.2},
		{0.8, 1.0, -2.6}, {0.65, 2.0, 0.0},
	}
	sampYY := func(q string, p probe) float64 {
		pl := yy.Panels[0]
		mhd.ComputeVTB(pl, &pl.U)
		// Probes sit in the Yin panel interior.
		var worst float64
		_ = worst
		switch q {
		case "T":
			return sampleYin(yy, p.r, p.th, p.ph, func(pl *mhd.Panel, i, j, k int) float64 {
				return pl.T.At(i, j, k)
			})
		case "vr":
			return sampleYin(yy, p.r, p.th, p.ph, func(pl *mhd.Panel, i, j, k int) float64 {
				return pl.V.R.At(i, j, k)
			})
		}
		return 0
	}
	var tScale float64
	for _, p := range probes {
		v, _ := ll.SampleScalar("T", p.r, p.th, p.ph)
		if a := math.Abs(v - 1); a > tScale {
			tScale = a
		}
	}
	for _, p := range probes {
		a := sampYY("T", p)
		b, ok := ll.SampleScalar("T", p.r, p.th, p.ph)
		if !ok {
			t.Fatalf("probe %v outside lat-lon shell", p)
		}
		// Temperature contrast across the shell is O(1); demand
		// agreement to a percent of it.
		if math.Abs(a-b) > 0.02*(1+math.Abs(b)) {
			t.Errorf("T disagrees at %v: yy=%v ll=%v", p, a, b)
		}
		av := sampYY("vr", p)
		bv, _ := ll.SampleScalar("vr", p.r, p.th, p.ph)
		// Velocities are tiny at this stage; compare on the velocity
		// scale of the run.
		if math.Abs(av-bv) > 0.15*(1e-4+math.Max(math.Abs(av), math.Abs(bv))) {
			t.Errorf("vr disagrees at %v: yy=%g ll=%g", p, av, bv)
		}
	}
	_ = tScale
}

// sampleYin trilinearly samples a Yin-panel node quantity at a point in
// the Yin interior.
func sampleYin(sv *mhd.Solver, r, th, ph float64, val func(pl *mhd.Panel, i, j, k int) float64) float64 {
	pl := sv.Panels[0]
	p := pl.Patch
	h := p.H
	fi := (r - p.Spec.RI) / p.Dr
	i0 := clampI(int(math.Floor(fi)), 0, p.Spec.Nr-2)
	ai := fi - float64(i0)
	fj := (th - grid.ThetaMin) / p.Dt
	j0 := clampI(int(math.Floor(fj)), 0, p.Spec.Nt-2)
	aj := fj - float64(j0)
	fk := (ph - grid.PhiMin) / p.Dp
	k0 := clampI(int(math.Floor(fk)), 0, p.Spec.Np-2)
	ak := fk - float64(k0)
	var v float64
	for di := 0; di <= 1; di++ {
		wi := 1 - ai
		if di == 1 {
			wi = ai
		}
		for dj := 0; dj <= 1; dj++ {
			wj := 1 - aj
			if dj == 1 {
				wj = aj
			}
			for dk := 0; dk <= 1; dk++ {
				wk := 1 - ak
				if dk == 1 {
					wk = ak
				}
				v += wi * wj * wk * val(pl, i0+di+h, j0+dj+h, k0+dk+h)
			}
		}
	}
	return v
}

// TestMagneticDecay3D: resistive decay is monotone on the lat-lon grid
// too, and its rate is comparable to the Yin-Yang solver's.
func TestMagneticDecay3D(t *testing.T) {
	prm := quiet3DParams()
	prm.Eta = 0.02
	ic := mhd.InitialConditions{PerturbAmp: 0, SeedBAmp: 0.05, Modes: 0, Seed: 1}

	ll, err := NewMHD3D(13, 16, 32, prm, ic)
	if err != nil {
		t.Fatal(err)
	}
	ll.Refresh()
	_, em0 := ll.Energies()
	if em0 <= 0 {
		t.Fatal("no seed energy")
	}
	dt := ll.MaxStableDt(0.25)
	const steps = 10
	prev := em0
	for n := 0; n < steps; n++ {
		ll.Advance(dt)
		ll.Refresh()
		_, em := ll.Energies()
		if em > prev*(1+1e-9) {
			t.Fatalf("magnetic energy grew: %g -> %g", prev, em)
		}
		prev = em
	}
	rateLL := math.Log(em0/prev) / (float64(steps) * dt)

	yy, err := mhd.NewSolver(grid.NewSpec(13, 13), prm, ic)
	if err != nil {
		t.Fatal(err)
	}
	em0YY := yy.Diagnose().MagneticE
	dtYY := yy.EstimateDT(0.25)
	for n := 0; n < steps; n++ {
		yy.Advance(dtYY)
	}
	rateYY := math.Log(em0YY/yy.Diagnose().MagneticE) / (float64(steps) * dtYY)

	if rateLL <= 0 || rateYY <= 0 {
		t.Fatalf("rates: ll %g yy %g", rateLL, rateYY)
	}
	if r := rateLL / rateYY; r < 0.6 || r > 1.7 {
		t.Errorf("decay rates differ too much: ll %g vs yy %g", rateLL, rateYY)
	}
}
