package latlon

import (
	"math"

	"repro/internal/coords"
	"repro/internal/grid"
	"repro/internal/overset"
	"repro/internal/perfcount"
)

// YYSurface solves the same surface advection-diffusion equation as
// HeatSolver, but on the Yin-Yang pair: two identical pole-free patches
// coupled by overset rim interpolation. Side by side with the lat-lon
// solver it demonstrates the paper's motivation: no pole closure, no
// collapsing longitudinal spacing, and a time step set by the uniform
// patch resolution.
type YYSurface struct {
	Nt, Np int
	Dt, Dp float64
	Kappa  float64
	Adv    float64

	Theta, Phi          []float64
	sinT, cotT, invSinT []float64

	// F holds the two panel fields, indexed j*Np + k.
	F [2]Field
	// uT, uP are the panel-local components of the solid-rotation
	// velocity about the geographic axis (the only place the panels
	// differ, mirroring mhd.Panel's rotation arrays).
	uT, uP [2]Field

	targets                      []overset.Target
	k1, k2, k3, k4, tmp, scratch [2]Field
	stage                        [2]Field
}

// NewYYSurface builds the paired surface solver at the given per-panel
// resolution (np = 3(nt-1)+1 for equal spacing, as grid.NewSpec).
func NewYYSurface(nt int, kappa, adv float64) (*YYSurface, error) {
	spec := grid.NewSpec(3, nt)
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	s := &YYSurface{
		Nt: spec.Nt, Np: spec.Np,
		Dt: spec.Dt(), Dp: spec.Dp(),
		Kappa: kappa, Adv: adv,
	}
	s.Theta = make([]float64, s.Nt)
	s.sinT = make([]float64, s.Nt)
	s.cotT = make([]float64, s.Nt)
	s.invSinT = make([]float64, s.Nt)
	for j := 0; j < s.Nt; j++ {
		th := grid.ThetaMin + float64(j)*s.Dt
		s.Theta[j] = th
		sn, cs := math.Sincos(th)
		s.sinT[j] = sn
		s.cotT[j] = cs / sn
		s.invSinT[j] = 1 / sn
	}
	s.Phi = make([]float64, s.Np)
	for k := 0; k < s.Np; k++ {
		s.Phi[k] = grid.PhiMin + float64(k)*s.Dp
	}
	n := s.Nt * s.Np
	for p := 0; p < 2; p++ {
		s.F[p] = make(Field, n)
		s.uT[p] = make(Field, n)
		s.uP[p] = make(Field, n)
		s.k1[p] = make(Field, n)
		s.k2[p] = make(Field, n)
		s.k3[p] = make(Field, n)
		s.k4[p] = make(Field, n)
		s.tmp[p] = make(Field, n)
		s.scratch[p] = make(Field, n)
		s.stage[p] = make(Field, n)
	}
	// Solid rotation about the geographic z axis: u = zhat_geo x r. In
	// each panel's own frame zhat_geo has fixed Cartesian components.
	for p, panel := range []grid.Panel{grid.Yin, grid.Yang} {
		axis := coords.Cartesian{Z: 1}
		if panel == grid.Yang {
			axis = coords.YinYang(axis)
		}
		for j := 0; j < s.Nt; j++ {
			for k := 0; k < s.Np; k++ {
				pos := coords.Spherical{R: 1, Theta: s.Theta[j], Phi: s.Phi[k]}.ToCartesian()
				u := coords.Cartesian{
					X: axis.Y*pos.Z - axis.Z*pos.Y,
					Y: axis.Z*pos.X - axis.X*pos.Z,
					Z: axis.X*pos.Y - axis.Y*pos.X,
				}
				uv := coords.CartToSphVec(s.Theta[j], s.Phi[k], u)
				s.uT[p][j*s.Np+k] = uv.VT
				s.uP[p][j*s.Np+k] = uv.VP
			}
		}
	}
	// Rim interpolation plan (shared by both directions, as always).
	for _, n := range overset.RimNodes(spec) {
		t, err := overset.MakeTarget(spec, n)
		if err != nil {
			return nil, err
		}
		s.targets = append(s.targets, t)
	}
	return s, nil
}

// rhs evaluates kappa*lap f - adv*(u.grad) f at strictly interior nodes;
// rim nodes keep zero tendency (their values come from the exchange).
func (s *YYSurface) rhs(p int, f, out Field) {
	idt2 := 1 / (s.Dt * s.Dt)
	idt := 1 / (2 * s.Dt)
	idp2 := 1 / (s.Dp * s.Dp)
	idp := 1 / (2 * s.Dp)
	np := s.Np
	for j := 1; j < s.Nt-1; j++ {
		cot := s.cotT[j]
		ist := s.invSinT[j]
		is2 := ist * ist
		for k := 1; k < np-1; k++ {
			c := f[j*np+k]
			n := f[(j-1)*np+k]
			so := f[(j+1)*np+k]
			e := f[j*np+k+1]
			w := f[j*np+k-1]
			lap := (n-2*c+so)*idt2 + cot*(so-n)*idt + (e-2*c+w)*is2*idp2
			res := s.Kappa * lap
			//yyvet:ignore float-eq Adv is a config value: exactly zero means advection disabled
			if s.Adv != 0 {
				dft := (so - n) * idt
				dfp := (e - w) * idp
				res -= s.Adv * (s.uT[p][j*np+k]*dft + s.uP[p][j*np+k]*ist*dfp)
			}
			out[j*np+k] = res
		}
		out[j*np] = 0
		out[j*np+np-1] = 0
	}
	for k := 0; k < np; k++ {
		out[k] = 0
		out[(s.Nt-1)*np+k] = 0
	}
	nn := int64((s.Nt - 2) * (np - 2))
	perfcount.AddFlops(nn * 20)
	perfcount.AddVectorLoops(int64(s.Nt-2), nn)
}

// exchange sets each panel's rim values from the partner, gathering both
// directions before scattering (symmetric, order-independent).
func (s *YYSurface) exchange(f *[2]Field) {
	np := s.Np
	gather := func(src Field, t overset.Target) float64 {
		return t.W[0]*src[t.DJ*np+t.DK] +
			t.W[1]*src[(t.DJ+1)*np+t.DK] +
			t.W[2]*src[t.DJ*np+t.DK+1] +
			t.W[3]*src[(t.DJ+1)*np+t.DK+1]
	}
	a := s.scratch[0][:len(s.targets)]
	b := s.scratch[1][:len(s.targets)]
	for i, t := range s.targets {
		a[i] = gather(f[1], t) // Yin rim <- Yang donors
		b[i] = gather(f[0], t)
	}
	for i, t := range s.targets {
		f[0][t.Recv.J*np+t.Recv.K] = a[i]
		f[1][t.Recv.J*np+t.Recv.K] = b[i]
	}
	perfcount.AddScalarOps(int64(2 * len(s.targets)))
	perfcount.AddFlops(int64(14 * len(s.targets)))
}

// Step advances one RK4 step of size dt on both panels.
func (s *YYSurface) Step(dt float64) {
	stageEval := func(src *[2]Field, k *[2]Field) {
		for p := 0; p < 2; p++ {
			s.rhs(p, (*src)[p], (*k)[p])
		}
	}
	combine := func(coeff float64, k *[2]Field) {
		for p := 0; p < 2; p++ {
			for i := range s.stage[p] {
				s.stage[p][i] = s.F[p][i] + coeff*(*k)[p][i]
			}
		}
		s.exchange(&s.stage)
	}
	stageEval(&s.F, &s.k1)
	combine(dt/2, &s.k1)
	stageEval(&s.stage, &s.k2)
	combine(dt/2, &s.k2)
	stageEval(&s.stage, &s.k3)
	combine(dt, &s.k3)
	stageEval(&s.stage, &s.k4)
	for p := 0; p < 2; p++ {
		for i := range s.F[p] {
			s.F[p][i] += dt / 6 * (s.k1[p][i] + 2*s.k2[p][i] + 2*s.k3[p][i] + s.k4[p][i])
		}
	}
	s.exchange(&s.F)
	perfcount.AddFlops(int64(12 * s.Nt * s.Np))
}

// MaxStableDt mirrors SurfaceGrid.MaxStableDt for the pole-free pair:
// the smallest spacing never shrinks below dphi*sin(pi/4).
func (s *YYSurface) MaxStableDt(kappa, uMax float64) float64 {
	minSpacing := s.Dp * math.Sin(grid.ThetaMin)
	if s.Dt < minSpacing {
		minSpacing = s.Dt
	}
	dt := math.Inf(1)
	if uMax > 0 {
		dt = minSpacing / uMax
	}
	if kappa > 0 {
		if d := minSpacing * minSpacing / (4 * kappa); d < dt {
			dt = d
		}
	}
	return dt
}

// SetFromGlobalFunc fills both panels from a function of the physical
// (geographic) position, and applies the rim exchange so the state is
// consistent.
func (s *YYSurface) SetFromGlobalFunc(fn func(c coords.Cartesian) float64) {
	for p, panel := range []grid.Panel{grid.Yin, grid.Yang} {
		for j := 0; j < s.Nt; j++ {
			for k := 0; k < s.Np; k++ {
				pos := coords.Spherical{R: 1, Theta: s.Theta[j], Phi: s.Phi[k]}.ToCartesian()
				if panel == grid.Yang {
					pos = coords.YinYang(pos)
				}
				s.F[p][j*s.Np+k] = fn(pos)
			}
		}
	}
	s.exchange(&s.F)
}

// SampleAt bilinearly samples the solution at geographic angles
// (theta, phi), choosing the panel that holds the point farther from its
// rim.
func (s *YYSurface) SampleAt(theta, phi float64) float64 {
	tY, pY := coords.YinYangAngles(theta, phi)
	useYin := true
	if !grid.Contains(theta, phi, 0) {
		useYin = false
	} else if grid.Contains(tY, pY, 0) {
		dYin := rimDist(theta, phi)
		dYang := rimDist(tY, pY)
		useYin = dYin >= dYang
	}
	tt, pp := theta, phi
	panel := 0
	if !useYin {
		tt, pp = tY, pY
		panel = 1
	}
	fj := (tt - grid.ThetaMin) / s.Dt
	fk := (pp - grid.PhiMin) / s.Dp
	j := clampI(int(math.Floor(fj)), 0, s.Nt-2)
	k := clampI(int(math.Floor(fk)), 0, s.Np-2)
	aj := fj - float64(j)
	ak := fk - float64(k)
	f := s.F[panel]
	np := s.Np
	return (1-aj)*(1-ak)*f[j*np+k] + aj*(1-ak)*f[(j+1)*np+k] +
		(1-aj)*ak*f[j*np+k+1] + aj*ak*f[(j+1)*np+k+1]
}

func rimDist(theta, phi float64) float64 {
	m := theta - grid.ThetaMin
	if d := grid.ThetaMax - theta; d < m {
		m = d
	}
	if d := phi - grid.PhiMin; d < m {
		m = d
	}
	if d := grid.PhiMax - phi; d < m {
		m = d
	}
	return m
}

func clampI(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
