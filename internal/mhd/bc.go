package mhd

import (
	"repro/internal/perfcount"
)

// ApplyWallBC imposes the physical boundary conditions on the spherical
// walls of one panel block (only where the block actually touches a
// wall):
//
//   - rigid no-slip, impermeable walls: f = 0;
//   - fixed wall temperatures T(ri) = TIn, T(ro) = 1, imposed through
//     p = rho * T_wall (rho itself evolves by continuity, with one-sided
//     differences at the walls);
//   - the magnetic wall condition selected by Params.MagBC: confined
//     (A = 0: perfectly conducting, line-tied, zero normal flux) or
//     pseudo-vacuum (vanishing tangential field); see MagneticBC.
//
// Wall values are set along entire angular columns (rim and halo columns
// included) so that subsequently exchanged or differentiated data see
// consistent walls.
func ApplyWallBC(pl *Panel, prm Params) {
	p := pl.Patch
	_, ntP, npP := p.Padded()
	h := p.H
	type wall struct {
		i    int
		temp float64
	}
	var walls []wall
	if p.GlobalEdge(0) {
		walls = append(walls, wall{h, prm.TIn})
	}
	if p.GlobalEdge(1) {
		walls = append(walls, wall{h + p.Nr - 1, 1.0})
	}
	for _, wl := range walls {
		for k := 0; k < npP; k++ {
			for j := 0; j < ntP; j++ {
				pl.U.F.R.Set(wl.i, j, k, 0)
				pl.U.F.T.Set(wl.i, j, k, 0)
				pl.U.F.P.Set(wl.i, j, k, 0)
				pl.U.P.Set(wl.i, j, k, pl.U.Rho.At(wl.i, j, k)*wl.temp)
			}
		}
		applyMagneticWall(pl, prm.MagBC, wl.i, wl.i == p.H)
	}
	perfcount.AddScalarOps(int64(len(walls)) * int64(ntP) * int64(npP))
}
