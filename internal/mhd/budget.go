package mhd

import "repro/internal/sphops"

// Budget decomposes the system's energy exchange channels, integrated
// over the shell with the overset ownership weights:
//
//	BuoyancyWork       = integral of rho g . v        (potential -> kinetic)
//	LorentzWork        = integral of v . (j x B)      (kinetic -> magnetic, negated)
//	JouleHeat          = integral of eta j^2          (magnetic -> heat)
//	ViscousDissipation = integral of Phi = 2 mu S     (kinetic -> heat)
//
// For the confined magnetic boundary (no Poynting flux through the
// walls) the magnetic energy obeys
//
//	d(Em)/dt = -LorentzWork - JouleHeat
//
// which TestMagneticEnergyBalance verifies against the measured d(Em)/dt.
type Budget struct {
	BuoyancyWork       float64
	LorentzWork        float64
	JouleHeat          float64
	ViscousDissipation float64
}

// ComputeBudget evaluates the energy channels for the current state.
func ComputeBudget(sv *Solver) Budget {
	var b Budget
	for _, pl := range sv.Panels {
		ComputeVTB(pl, &pl.U)
		ComputeJ(pl)
		p := pl.Patch
		w := pl.W
		strain := w.Get()
		sphops.StrainSquared(p, pl.V, strain, w)
		h := p.H
		_, ntP, _ := p.Padded()
		for k := h; k < h+p.Np; k++ {
			for j := h; j < h+p.Nt; j++ {
				own := pl.Own[k*ntP+j]
				if own <= 0 {
					continue
				}
				rho := pl.U.Rho.Row(j, k)
				vr := pl.V.R.Row(j, k)
				vt := pl.V.T.Row(j, k)
				vp := pl.V.P.Row(j, k)
				br := pl.B.R.Row(j, k)
				bt := pl.B.T.Row(j, k)
				bp := pl.B.P.Row(j, k)
				jr := pl.J.R.Row(j, k)
				jt := pl.J.T.Row(j, k)
				jp := pl.J.P.Row(j, k)
				st := strain.Row(j, k)
				for i := h; i < h+p.Nr; i++ {
					wq := own * p.CellVolume(i, j, k)
					gR := -sv.Prm.G0 * p.InvR2[i]
					b.BuoyancyWork += wq * rho[i] * gR * vr[i]
					// v . (j x B)
					fLr := jt[i]*bp[i] - jp[i]*bt[i]
					fLt := jp[i]*br[i] - jr[i]*bp[i]
					fLp := jr[i]*bt[i] - jt[i]*br[i]
					b.LorentzWork += wq * (vr[i]*fLr + vt[i]*fLt + vp[i]*fLp)
					jsq := jr[i]*jr[i] + jt[i]*jt[i] + jp[i]*jp[i]
					b.JouleHeat += wq * sv.Prm.Eta * jsq
					b.ViscousDissipation += wq * 2 * sv.Prm.Mu * st[i]
				}
			}
		}
		w.Put(strain)
	}
	return b
}
