package mhd

import (
	"fmt"
	"math"

	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/overset"
	"repro/internal/sphops"
)

// Diagnostics are volume-integrated measures of the run, reduced over
// both panels with the ownership mask so the overlap region is counted
// once.
type Diagnostics struct {
	Time      float64
	Step      int
	Mass      float64 // integral of rho
	KineticE  float64 // integral of (1/2) rho v^2
	MagneticE float64 // integral of (1/2) B^2
	InternalE float64 // integral of p/(gamma-1)
	MaxV      float64 // max |v|
	MaxB      float64 // max |B|
}

// String formats one diagnostics line.
func (d Diagnostics) String() string {
	return fmt.Sprintf("step=%6d t=%.5f mass=%.6g Ek=%.6g Em=%.6g Ei=%.6g maxV=%.4g maxB=%.4g",
		d.Step, d.Time, d.Mass, d.KineticE, d.MagneticE, d.InternalE, d.MaxV, d.MaxB)
}

// Diagnose computes the global diagnostics of the current state.
func (sv *Solver) Diagnose() Diagnostics {
	d := Diagnostics{Time: sv.Time, Step: sv.Step}
	for _, pl := range sv.Panels {
		ComputeVTB(pl, &pl.U)
		pd := PanelDiagnostics(pl, sv.Prm)
		d.Mass += pd.Mass
		d.KineticE += pd.KineticE
		d.MagneticE += pd.MagneticE
		d.InternalE += pd.InternalE
		if pd.MaxV > d.MaxV {
			d.MaxV = pd.MaxV
		}
		if pd.MaxB > d.MaxB {
			d.MaxB = pd.MaxB
		}
	}
	return d
}

// PanelDiagnostics reduces one panel with its ownership weights.
// ComputeVTB must have run for the panel.
func PanelDiagnostics(pl *Panel, prm Params) Diagnostics {
	p := pl.Patch
	h := p.H
	_, ntP, _ := p.Padded()
	var d Diagnostics
	for k := h; k < h+p.Np; k++ {
		for j := h; j < h+p.Nt; j++ {
			own := pl.Own[k*ntP+j]
			if own <= 0 {
				continue
			}
			rho := pl.U.Rho.Row(j, k)
			pres := pl.U.P.Row(j, k)
			vr := pl.V.R.Row(j, k)
			vt := pl.V.T.Row(j, k)
			vp := pl.V.P.Row(j, k)
			br := pl.B.R.Row(j, k)
			bt := pl.B.T.Row(j, k)
			bp := pl.B.P.Row(j, k)
			for i := h; i < h+p.Nr; i++ {
				w := own * p.CellVolume(i, j, k)
				v2 := vr[i]*vr[i] + vt[i]*vt[i] + vp[i]*vp[i]
				b2 := br[i]*br[i] + bt[i]*bt[i] + bp[i]*bp[i]
				d.Mass += w * rho[i]
				d.KineticE += 0.5 * w * rho[i] * v2
				d.MagneticE += 0.5 * w * b2
				d.InternalE += w * pres[i] / (prm.Gamma - 1)
				if v2 > d.MaxV*d.MaxV {
					d.MaxV = math.Sqrt(v2)
				}
				if b2 > d.MaxB*d.MaxB {
					d.MaxB = math.Sqrt(b2)
				}
			}
		}
	}
	return d
}

// OverlapDisagreement measures the "double solution" of the overset grid:
// the maximum relative difference between the pressure held on one panel
// and the bilinear sample of the partner panel at the same physical
// points, over the overlap region (away from the rims). The paper reports
// this difference stays within discretization error, so no blending is
// needed.
//
// The Yin<->Yang image points and their bilinear donor weights are pure
// functions of the grid spec, so they come from a cached
// overset.OverlapTable built once per spec instead of being recomputed
// on every call; the sampled values are bit-identical to the recomputed
// path (pinned by a test in internal/overset).
func OverlapDisagreement(sv *Solver) float64 {
	yin := sv.Panels[grid.Yin]
	yang := sv.Panels[grid.Yang]
	p := yin.Patch
	h := p.H
	var maxRel float64
	scale := yin.U.P.InteriorMaxAbs()
	if scale <= 0 {
		return 0
	}
	tab := overset.OverlapTableFor(sv.Spec)
	for _, s := range tab.Samples {
		j, k := s.J+h, s.K+h
		for i := h + 1; i < h+p.Nr-1; i++ {
			got := s.E.Sample(yang.U.P, h, i)
			rel := math.Abs(got-yin.U.P.At(i, j, k)) / scale
			if rel > maxRel {
				maxRel = rel
			}
		}
	}
	return maxRel
}

// NusseltOuter returns the Nusselt number at the outer wall: the total
// conductive heat flux through r = RO divided by the flux the pure
// conduction profile would carry. Nu = 1 for the conduction state and
// rises as convection takes over the heat transport.
func (sv *Solver) NusseltOuter() float64 {
	pf := NewProfile(sv.Prm, sv.Spec.RI, sv.Spec.RO)
	// Conduction reference: -K dT/dr * 4 pi r^2 = 4 pi K b (independent
	// of radius for the a + b/r profile).
	ref := 4 * math.Pi * (pf.T(sv.Spec.RI) - pf.T(sv.Spec.RO)) /
		(1/sv.Spec.RI - 1/sv.Spec.RO)
	//yyvet:ignore float-eq division-by-exact-zero guard on a sign-indefinite reference flux
	if ref == 0 {
		return math.NaN()
	}
	var flux float64
	for _, pl := range sv.Panels {
		ComputeVTB(pl, &pl.U)
		p := pl.Patch
		h := p.H
		_, ntP, _ := p.Padded()
		iw := h + p.Nr - 1
		ro := p.R[iw]
		for k := h; k < h+p.Np; k++ {
			for j := h; j < h+p.Nt; j++ {
				own := pl.Own[k*ntP+j]
				if own <= 0 {
					continue
				}
				wq := 1.0
				if j == h || j == h+p.Nt-1 {
					wq *= 0.5
				}
				if k == h || k == h+p.Np-1 {
					wq *= 0.5
				}
				// One-sided second-order dT/dr at the outer wall.
				dTdr := (3*pl.T.At(iw, j, k) - 4*pl.T.At(iw-1, j, k) + pl.T.At(iw-2, j, k)) / (2 * p.Dr)
				flux += -own * wq * dTdr * ro * ro * p.SinT[j] * p.Dt * p.Dp
			}
		}
	}
	return flux / ref
}

// sphopsDiv computes div B into out (test/diagnostic helper).
func sphopsDiv(pl *Panel, out *field.Scalar) {
	sphops.Div(pl.Patch, pl.B, out, pl.W)
}

// DivBMax returns the maximum |div B| over the panel's owned interior
// nodes (radial walls excluded, where the one-sided context dominates).
// ComputeVTB must have run for the panel. It allocates a scratch field
// per call, so it belongs on the diagnostic cadence, not the step path;
// the observability layer records it as the per-step solenoidal-quality
// gauge.
func DivBMax(pl *Panel) float64 {
	div := pl.Patch.NewScalar()
	sphopsDiv(pl, div)
	p := pl.Patch
	h := p.H
	_, ntP, _ := p.Padded()
	var m float64
	for k := h; k < h+p.Np; k++ {
		for j := h; j < h+p.Nt; j++ {
			if pl.Own[k*ntP+j] <= 0 {
				continue
			}
			row := div.Row(j, k)
			for i := h + 1; i < h+p.Nr-1; i++ {
				if a := math.Abs(row[i]); a > m {
					m = a
				}
			}
		}
	}
	return m
}
