package mhd

import (
	"math"

	"repro/internal/coords"
	"repro/internal/field"
	"repro/internal/grid"
)

// InitialConditions configure the start of a run: the hydrostatic
// conduction state plus a random temperature perturbation and an
// infinitesimally small seed of magnetic field (paper, section III).
type InitialConditions struct {
	PerturbAmp float64 // amplitude of the temperature perturbation
	SeedBAmp   float64 // amplitude of the magnetic seed field
	Modes      int     // number of random Fourier modes in the perturbation
	Seed       uint64  // deterministic seed for the random phases
}

// DefaultIC returns the standard start: small random temperature
// perturbation and a much smaller magnetic seed.
func DefaultIC() InitialConditions {
	return InitialConditions{PerturbAmp: 1e-2, SeedBAmp: 1e-4, Modes: 8, Seed: 7}
}

// Profile is the spherically symmetric hydrostatic conduction base state:
// T solves Laplace's equation between the fixed-temperature walls and rho
// balances pressure against central gravity, with rho(ro) = T(ro) = 1.
type Profile struct {
	RI, RO float64
	a, b   float64 // T(r) = a + b/r
	prm    Params
}

// NewProfile builds the base state for the given shell and parameters.
func NewProfile(prm Params, ri, ro float64) *Profile {
	// T(ri) = TIn, T(ro) = 1.
	b := (prm.TIn - 1) / (1/ri - 1/ro)
	a := 1 - b/ro
	return &Profile{RI: ri, RO: ro, a: a, b: b, prm: prm}
}

// T returns the conduction temperature at radius r.
func (pf *Profile) T(r float64) float64 { return pf.a + pf.b/r }

// dTdr returns the conduction temperature gradient at radius r.
func (pf *Profile) dTdr(r float64) float64 { return -pf.b / (r * r) }

// Rho returns the hydrostatic density at radius r, integrating
// d(rho)/dr = -rho (g0/r^2 + dT/dr)/T inward or outward from rho(ro)=1
// with fine fourth-order Runge-Kutta substeps.
func (pf *Profile) Rho(r float64) float64 {
	const steps = 256
	x := pf.RO
	y := 1.0
	hstep := (r - pf.RO) / steps
	//yyvet:ignore float-eq integration span is empty only when r equals RO exactly
	if hstep == 0 {
		return y
	}
	f := func(r, rho float64) float64 {
		return -rho * (pf.prm.G0/(r*r) + pf.dTdr(r)) / pf.T(r)
	}
	for n := 0; n < steps; n++ {
		k1 := f(x, y)
		k2 := f(x+hstep/2, y+hstep/2*k1)
		k3 := f(x+hstep/2, y+hstep/2*k2)
		k4 := f(x+hstep, y+hstep*k3)
		y += hstep / 6 * (k1 + 2*k2 + 2*k3 + k4)
		x += hstep
	}
	return y
}

// P returns the hydrostatic pressure rho*T at radius r.
func (pf *Profile) P(r float64) float64 { return pf.Rho(r) * pf.T(r) }

// perturbation is a smooth, globally defined pseudo-random scalar field:
// a superposition of plane-wave modes with deterministic pseudo-random
// wave vectors and phases. Being a function of physical (Cartesian)
// position, it is automatically consistent between the Yin and Yang
// panels and between serial and decomposed runs.
type perturbation struct {
	kvec  []coords.Cartesian
	phase []float64
	amp   []float64
}

func newPerturbation(modes int, seed uint64) *perturbation {
	p := &perturbation{}
	s := seed
	next := func() float64 {
		// splitmix64
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return float64(z>>11) / float64(1<<53) // [0,1)
	}
	for m := 0; m < modes; m++ {
		k := 2 + 4*next() // wavenumber magnitude range
		// Random direction.
		ct := 2*next() - 1
		st := math.Sqrt(1 - ct*ct)
		ph := 2 * math.Pi * next()
		p.kvec = append(p.kvec, coords.Cartesian{
			X: k * st * math.Cos(ph), Y: k * st * math.Sin(ph), Z: k * ct,
		})
		p.phase = append(p.phase, 2*math.Pi*next())
		p.amp = append(p.amp, 0.5+next())
	}
	return p
}

// At evaluates the perturbation at physical position c, normalized to be
// O(1).
func (p *perturbation) At(c coords.Cartesian) float64 {
	var s, norm float64
	for m := range p.kvec {
		k := p.kvec[m]
		s += p.amp[m] * math.Sin(k.X*c.X+k.Y*c.Y+k.Z*c.Z+p.phase[m])
		norm += p.amp[m]
	}
	if norm <= 0 {
		return 0
	}
	return s / norm
}

// window vanishes smoothly at both walls; used to confine perturbations
// and seed fields away from the boundaries.
func window(r, ri, ro float64) float64 {
	x := (r - ri) / (ro - ri)
	if x <= 0 || x >= 1 {
		return 0
	}
	return math.Sin(math.Pi*x) * math.Sin(math.Pi*x)
}

// InitPanel fills one panel's state with the perturbed conduction state.
// All padded nodes (halos included) are filled so that derived pointwise
// quantities remain finite everywhere.
func InitPanel(pl *Panel, prm Params, ic InitialConditions) {
	p := pl.Patch
	s := p.Spec
	pf := NewProfile(prm, s.RI, s.RO)
	pert := newPerturbation(ic.Modes, ic.Seed)

	nrP, ntP, npP := p.Padded()
	// Radial profile sampled once per padded radius.
	rhoProf := make([]float64, nrP)
	tProf := make([]float64, nrP)
	wProf := make([]float64, nrP)
	for i := 0; i < nrP; i++ {
		r := math.Max(p.R[i], 0.1*s.RI) // halos can poke slightly inward
		rhoProf[i] = pf.Rho(r)
		tProf[i] = pf.T(r)
		wProf[i] = window(p.R[i], s.RI, s.RO)
	}

	for k := 0; k < npP; k++ {
		for j := 0; j < ntP; j++ {
			for i := 0; i < nrP; i++ {
				c := physPosition(p.Panel, p.R[i], p.Theta[j], p.Phi[k])
				rho := rhoProf[i]
				dT := ic.PerturbAmp * wProf[i] * pert.At(c)
				pl.U.Rho.Set(i, j, k, rho)
				pl.U.P.Set(i, j, k, rho*(tProf[i]+dT))
				pl.U.F.R.Set(i, j, k, 0)
				pl.U.F.T.Set(i, j, k, 0)
				pl.U.F.P.Set(i, j, k, 0)

				// Seed vector potential: a windowed uniform-Bz potential
				// A = (eps/2) w(r) zhat x x, expressed in the local frame.
				aCart := coords.Cartesian{X: -c.Y, Y: c.X, Z: 0}
				scale := 0.5 * ic.SeedBAmp * wProf[i]
				if p.Panel == grid.Yang {
					aCart = coords.YinYang(aCart)
				}
				av := coords.CartToSphVec(p.Theta[j], p.Phi[k], coords.Cartesian{
					X: scale * aCart.X, Y: scale * aCart.Y, Z: scale * aCart.Z,
				})
				pl.U.A.R.Set(i, j, k, av.VR)
				pl.U.A.T.Set(i, j, k, av.VT)
				pl.U.A.P.Set(i, j, k, av.VP)
			}
		}
	}
}

// physPosition returns the physical (Yin-frame) Cartesian position of a
// node given in a panel's own spherical coordinates.
func physPosition(panel grid.Panel, r, theta, phi float64) coords.Cartesian {
	c := coords.Spherical{R: r, Theta: theta, Phi: phi}.ToCartesian()
	if panel == grid.Yang {
		c = coords.YinYang(c)
	}
	return c
}

// fillDerivedT computes T = p/rho over the full padded arrays.
func fillDerivedT(u *State, t *field.Scalar) {
	t.Quot(u.P, u.Rho)
}

// GlobalPerturbation is the deterministic, globally defined random-mode
// perturbation, exposed so alternative solvers (e.g. the lat-lon
// baseline) can start from exactly the same initial state.
type GlobalPerturbation = perturbation

// NewGlobalPerturbation builds the perturbation for the given mode count
// and seed.
func NewGlobalPerturbation(modes int, seed uint64) *GlobalPerturbation {
	return newPerturbation(modes, seed)
}

// WallWindow exposes the smooth wall window used by the initial
// conditions.
func WallWindow(r, ri, ro float64) float64 { return window(r, ri, ro) }
