package mhd

import "fmt"

// Integrator selects the time scheme. The paper uses the classical
// fourth-order Runge-Kutta method; the cheaper schemes exist for
// step-cost/accuracy ablations and for testing the temporal order
// machinery itself.
type Integrator int

const (
	// RK4 is the classical fourth-order Runge-Kutta scheme (the paper's
	// choice and the zero-value default).
	RK4 Integrator = iota
	// RK2 is the midpoint method (second order).
	RK2
	// Euler is the forward Euler method (first order).
	Euler
)

// String names the scheme.
func (in Integrator) String() string {
	switch in {
	case RK4:
		return "RK4"
	case RK2:
		return "RK2"
	case Euler:
		return "Euler"
	}
	return fmt.Sprintf("Integrator(%d)", int(in))
}

// Order returns the formal temporal order of accuracy.
func (in Integrator) Order() int {
	switch in {
	case RK4:
		return 4
	case RK2:
		return 2
	default:
		return 1
	}
}

// StageCount returns the number of right-hand-side evaluations per step.
func (in Integrator) StageCount() int {
	switch in {
	case RK4:
		return 4
	case RK2:
		return 2
	default:
		return 1
	}
}

// schemeStage describes one stage of a low-storage scheme: evaluate the
// right-hand side at the current U, accumulate accCoeff*k, and (unless
// it is the last stage) rebuild U = u0 + stepCoeff*dt*k.
type schemeStage struct {
	stepCoeff float64
	accCoeff  float64
}

// stages returns the stage table and the final accumulator weight so
// that U_final = u0 + finalCoeff*dt*acc.
func (in Integrator) stages() (tbl []schemeStage, finalCoeff float64) {
	switch in {
	case RK4:
		return []schemeStage{{0.5, 1}, {0.5, 2}, {1, 2}, {0, 1}}, 1.0 / 6.0
	case RK2:
		// Midpoint: k1 at u0, k2 at u0 + dt/2 k1; u = u0 + dt k2.
		return []schemeStage{{0.5, 0}, {0, 1}}, 1
	default:
		return []schemeStage{{0, 1}}, 1
	}
}

// SchemeStage is the exported form of the stage table entries, used by
// the decomposed driver to stay arithmetically identical to the serial
// solver.
type SchemeStage struct {
	StepCoeff float64
	AccCoeff  float64
}

// SchemeStages returns the stage table and final accumulator weight of
// the integrator.
func SchemeStages(in Integrator) ([]SchemeStage, float64) {
	tbl, fin := in.stages()
	out := make([]SchemeStage, len(tbl))
	for i, s := range tbl {
		out[i] = SchemeStage{StepCoeff: s.stepCoeff, AccCoeff: s.accCoeff}
	}
	return out, fin
}
