package mhd

import (
	"math"
	"testing"

	"repro/internal/grid"
)

func TestIntegratorMeta(t *testing.T) {
	cases := []struct {
		in     Integrator
		name   string
		order  int
		stages int
	}{
		{RK4, "RK4", 4, 4},
		{RK2, "RK2", 2, 2},
		{Euler, "Euler", 1, 1},
	}
	for _, c := range cases {
		if c.in.String() != c.name || c.in.Order() != c.order || c.in.StageCount() != c.stages {
			t.Errorf("%v: %s/%d/%d", c.in, c.in.String(), c.in.Order(), c.in.StageCount())
		}
	}
	if Integrator(9).String() == "" {
		t.Error("unknown scheme has no name")
	}
	tbl, fin := SchemeStages(RK4)
	if len(tbl) != 4 || fin != 1.0/6.0 {
		t.Errorf("RK4 table %v %v", tbl, fin)
	}
}

// TestTemporalOrders: each scheme converges at its formal order on the
// full nonlinear problem against a fine-dt reference.
func TestTemporalOrders(t *testing.T) {
	run := func(scheme Integrator, steps int, tEnd float64) *Solver {
		sv, err := NewSolver(testSpec(), Default(), DefaultIC())
		if err != nil {
			t.Fatal(err)
		}
		sv.Scheme = scheme
		dt := tEnd / float64(steps)
		for n := 0; n < steps; n++ {
			sv.Advance(dt)
		}
		return sv
	}
	diff := func(a, b *Solver) float64 {
		var m float64
		for pi := range a.Panels {
			fa := a.Panels[pi].U.P.Data
			fb := b.Panels[pi].U.P.Data
			for i := range fa {
				if d := math.Abs(fa[i] - fb[i]); d > m {
					m = d
				}
			}
		}
		return m
	}
	const tEnd = 0.02
	// A single fine RK4 reference serves all schemes.
	ref := run(RK4, 32, tEnd)
	for _, c := range []struct {
		scheme  Integrator
		minRate float64
	}{
		{Euler, 0.8},
		{RK2, 1.5},
		{RK4, 3.2},
	} {
		e1 := diff(run(c.scheme, 2, tEnd), ref)
		e2 := diff(run(c.scheme, 4, tEnd), ref)
		rate := math.Log2(e1 / e2)
		if rate < c.minRate {
			t.Errorf("%v: temporal rate %.2f, want >= %.1f (errors %g -> %g)",
				c.scheme, rate, c.minRate, e1, e2)
		}
	}
}

// TestSchemeAccuracyOrdering: at the same dt, higher-order schemes land
// closer to the reference.
func TestSchemeAccuracyOrdering(t *testing.T) {
	run := func(scheme Integrator) *Solver {
		sv, err := NewSolver(testSpec(), Default(), DefaultIC())
		if err != nil {
			t.Fatal(err)
		}
		sv.Scheme = scheme
		for n := 0; n < 4; n++ {
			sv.Advance(5e-3)
		}
		return sv
	}
	ref, err := NewSolver(testSpec(), Default(), DefaultIC())
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 40; n++ {
		ref.Advance(5e-4)
	}
	diff := func(a *Solver) float64 {
		var m float64
		for pi := range a.Panels {
			fa := a.Panels[pi].U.P.Data
			fb := ref.Panels[pi].U.P.Data
			for i := range fa {
				if d := math.Abs(fa[i] - fb[i]); d > m {
					m = d
				}
			}
		}
		return m
	}
	e4 := diff(run(RK4))
	e2 := diff(run(RK2))
	e1 := diff(run(Euler))
	if !(e4 < e2 && e2 < e1) {
		t.Errorf("accuracy ordering violated: RK4 %g, RK2 %g, Euler %g", e4, e2, e1)
	}
}

// TestMagneticEnergyBalance: for the quiet resistive decay (confined
// walls, no Poynting flux), the measured d(Em)/dt matches
// -LorentzWork - JouleHeat from the budget.
func TestMagneticEnergyBalance(t *testing.T) {
	prm := quietParams()
	prm.Eta = 0.01
	ic := InitialConditions{SeedBAmp: 0.05, Modes: 0, Seed: 1}
	sv, err := NewSolver(grid.NewSpec(17, 17), prm, ic)
	if err != nil {
		t.Fatal(err)
	}
	// Settle one step so the state is post-constraints.
	dt := sv.EstimateDT(0.2)
	sv.Advance(dt)

	b := ComputeBudget(sv)
	em0 := sv.Diagnose().MagneticE
	small := dt / 4
	sv.Advance(small)
	em1 := sv.Diagnose().MagneticE
	measured := (em1 - em0) / small
	want := -b.LorentzWork - b.JouleHeat
	if b.JouleHeat <= 0 {
		t.Fatalf("no Joule heating: %+v", b)
	}
	// The identity holds exactly in the continuum; discretely the
	// integration by parts behind it (and the overset rim bookkeeping)
	// leaves an O(h^2)-class residual, so demand agreement to 25% here
	// and convergence below.
	rel := math.Abs(measured-want) / math.Abs(want)
	if rel > 0.25 {
		t.Errorf("dEm/dt = %g, budget predicts %g (%.0f%% off; Joule %g, Lorentz %g)",
			measured, want, rel*100, b.JouleHeat, b.LorentzWork)
	}
}

// TestMagneticEnergyBalanceConverges: the residual of the discrete
// balance shrinks as the grid refines.
func TestMagneticEnergyBalanceConverges(t *testing.T) {
	residual := func(nt int) float64 {
		prm := quietParams()
		prm.Eta = 0.01
		ic := InitialConditions{SeedBAmp: 0.05, Modes: 0, Seed: 1}
		sv, err := NewSolver(grid.NewSpec(nt, nt), prm, ic)
		if err != nil {
			t.Fatal(err)
		}
		dt := sv.EstimateDT(0.2)
		sv.Advance(dt)
		b := ComputeBudget(sv)
		em0 := sv.Diagnose().MagneticE
		small := dt / 4
		sv.Advance(small)
		em1 := sv.Diagnose().MagneticE
		measured := (em1 - em0) / small
		want := -b.LorentzWork - b.JouleHeat
		return math.Abs(measured-want) / math.Abs(want)
	}
	r1 := residual(13)
	r2 := residual(25)
	if r2 >= r1 {
		t.Errorf("balance residual not converging: %.3f -> %.3f", r1, r2)
	}
}

// TestBudgetSigns: in a driven convection run, buoyancy feeds the flow
// (positive work) and both dissipation channels are non-negative.
func TestBudgetSigns(t *testing.T) {
	sv, err := NewSolver(testSpec(), Default(), DefaultIC())
	if err != nil {
		t.Fatal(err)
	}
	dt := sv.EstimateDT(0.3)
	for n := 0; n < 10; n++ {
		sv.Advance(dt)
	}
	b := ComputeBudget(sv)
	if b.ViscousDissipation < 0 {
		t.Errorf("negative viscous dissipation %g", b.ViscousDissipation)
	}
	if b.JouleHeat < 0 {
		t.Errorf("negative Joule heat %g", b.JouleHeat)
	}
	// Early in a run, sound waves launched by the initial perturbation
	// make the instantaneous buoyancy work oscillate in sign; only its
	// activity is asserted here.
	if b.BuoyancyWork == 0 {
		t.Error("buoyancy channel inactive in a driven run")
	}

	// The quiet, gravity-free state has no buoyancy channel at all.
	quiet, err := NewSolver(testSpec(), quietParams(),
		InitialConditions{PerturbAmp: 0, SeedBAmp: 0, Modes: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	qb := ComputeBudget(quiet)
	if qb.BuoyancyWork != 0 || qb.JouleHeat != 0 {
		t.Errorf("quiet budget not silent: %+v", qb)
	}
}
