package mhd

import "repro/internal/perfcount"

// MagneticBC selects the wall boundary condition of the vector
// potential. The paper does not specify its choice; both standard
// options for confined dynamo simulations are implemented.
type MagneticBC int

const (
	// BCConfined pins A = 0 on both spheres: a perfectly conducting,
	// line-tied wall with zero normal flux. The dynamo field is wholly
	// contained in the shell. This is the default.
	BCConfined MagneticBC = iota
	// BCPseudoVacuum imposes vanishing tangential magnetic field at the
	// walls (B_theta = B_phi = 0, purely radial field), the common
	// "pseudo-vacuum" approximation of an exterior insulator. Discretely:
	// dA_r/dr = 0, and the tangential potential solves
	// d(r A_t)/dr = (angular derivatives of A_r) so the tangential curl
	// components vanish.
	BCPseudoVacuum
)

// String names the boundary condition.
func (bc MagneticBC) String() string {
	if bc == BCPseudoVacuum {
		return "pseudo-vacuum"
	}
	return "confined"
}

// applyMagneticWall imposes the magnetic wall condition on one wall
// (padded radial index iw; inner = true for the r = RI sphere) across
// every padded angular column.
func applyMagneticWall(pl *Panel, bc MagneticBC, iw int, inner bool) {
	p := pl.Patch
	_, ntP, npP := p.Padded()
	a := pl.U.A

	if bc == BCConfined {
		for k := 0; k < npP; k++ {
			for j := 0; j < ntP; j++ {
				a.R.Set(iw, j, k, 0)
				a.T.Set(iw, j, k, 0)
				a.P.Set(iw, j, k, 0)
			}
		}
		return
	}

	// Pseudo-vacuum. Interior samples are one and two nodes inward.
	step := 1
	if !inner {
		step = -1
	}
	i1, i2 := iw+step, iw+2*step

	// Pass 1: A_r with zero normal derivative (second-order one-sided):
	// A_r(wall) = (4 A_r(1) - A_r(2)) / 3.
	for k := 0; k < npP; k++ {
		for j := 0; j < ntP; j++ {
			a.R.Set(iw, j, k, (4*a.R.At(i1, j, k)-a.R.At(i2, j, k))/3)
		}
	}

	// Pass 2: tangential components from d(r A_t)/dr = dA_r/dt etc.,
	// using the freshly set wall row of A_r for the angular derivatives.
	// The one-sided radial derivative gives
	//   inner:  (-3 f_w + 4 f_1 - f_2)/(2 dr) = g  =>  f_w = (4 f_1 - f_2 - 2 dr g)/3
	//   outer:  ( 3 f_w - 4 f_1 + f_2)/(2 dr) = g  =>  f_w = (4 f_1 - f_2 + 2 dr g)/3
	// with f = r A_t and g the angular source.
	sgn := 2 * p.Dr
	if inner {
		sgn = -sgn
	}
	rw, r1, r2 := p.R[iw], p.R[i1], p.R[i2]
	h := p.H
	for k := 0; k < npP; k++ {
		for j := 0; j < ntP; j++ {
			// dA_r/dtheta along the wall row; centered where both storage
			// neighbours are meaningful, one-sided inward at panel edges
			// (matching the fd package's closures).
			var dtAr float64
			switch {
			case j == h && p.GlobalEdge(2):
				dtAr = (-3*a.R.At(iw, j, k) + 4*a.R.At(iw, j+1, k) - a.R.At(iw, j+2, k)) / (2 * p.Dt)
			case j == h+p.Nt-1 && p.GlobalEdge(3):
				dtAr = (3*a.R.At(iw, j, k) - 4*a.R.At(iw, j-1, k) + a.R.At(iw, j-2, k)) / (2 * p.Dt)
			case j == 0:
				dtAr = (a.R.At(iw, j+1, k) - a.R.At(iw, j, k)) / p.Dt
			case j == ntP-1:
				dtAr = (a.R.At(iw, j, k) - a.R.At(iw, j-1, k)) / p.Dt
			default:
				dtAr = (a.R.At(iw, j+1, k) - a.R.At(iw, j-1, k)) / (2 * p.Dt)
			}
			var dpAr float64
			switch {
			case k == h && p.GlobalEdge(4):
				dpAr = (-3*a.R.At(iw, j, k) + 4*a.R.At(iw, j, k+1) - a.R.At(iw, j, k+2)) / (2 * p.Dp)
			case k == h+p.Np-1 && p.GlobalEdge(5):
				dpAr = (3*a.R.At(iw, j, k) - 4*a.R.At(iw, j, k-1) + a.R.At(iw, j, k-2)) / (2 * p.Dp)
			case k == 0:
				dpAr = (a.R.At(iw, j, k+1) - a.R.At(iw, j, k)) / p.Dp
			case k == npP-1:
				dpAr = (a.R.At(iw, j, k) - a.R.At(iw, j, k-1)) / p.Dp
			default:
				dpAr = (a.R.At(iw, j, k+1) - a.R.At(iw, j, k-1)) / (2 * p.Dp)
			}
			ft := (4*r1*a.T.At(i1, j, k) - r2*a.T.At(i2, j, k) + sgn*dtAr) / 3
			fp := (4*r1*a.P.At(i1, j, k) - r2*a.P.At(i2, j, k) + sgn*p.InvSinT[j]*dpAr) / 3
			a.T.Set(iw, j, k, ft/rw)
			a.P.Set(iw, j, k, fp/rw)
		}
	}
	perfcount.AddScalarOps(int64(ntP) * int64(npP) * 20)
}
