package mhd

import (
	"math"
	"testing"

	"repro/internal/grid"
)

// tangentialBAtWalls returns the max |B_t|, |B_p| over both walls and the
// overall max |B|, after refreshing derived fields.
func tangentialBAtWalls(sv *Solver) (wallTan, maxB float64) {
	for _, pl := range sv.Panels {
		ComputeVTB(pl, &pl.U)
		p := pl.Patch
		h := p.H
		for k := h; k < h+p.Np; k++ {
			for j := h; j < h+p.Nt; j++ {
				for _, i := range []int{h, h + p.Nr - 1} {
					for _, v := range []float64{pl.B.T.At(i, j, k), pl.B.P.At(i, j, k)} {
						if a := math.Abs(v); a > wallTan {
							wallTan = a
						}
					}
				}
				for i := h; i < h+p.Nr; i++ {
					b2 := pl.B.R.At(i, j, k)*pl.B.R.At(i, j, k) +
						pl.B.T.At(i, j, k)*pl.B.T.At(i, j, k) +
						pl.B.P.At(i, j, k)*pl.B.P.At(i, j, k)
					if b := math.Sqrt(b2); b > maxB {
						maxB = b
					}
				}
			}
		}
	}
	return wallTan, maxB
}

// TestMagneticBCString covers the names.
func TestMagneticBCString(t *testing.T) {
	if BCConfined.String() != "confined" || BCPseudoVacuum.String() != "pseudo-vacuum" {
		t.Error("bad names")
	}
}

// TestPseudoVacuumSuppressesTangentialField: with the pseudo-vacuum
// condition the tangential field at the walls is truncation-small
// relative to the interior field; with the confined condition it is not.
func TestPseudoVacuumSuppressesTangentialField(t *testing.T) {
	run := func(bc MagneticBC) (float64, float64) {
		prm := quietParams()
		prm.MagBC = bc
		ic := InitialConditions{SeedBAmp: 0.05, Modes: 0, Seed: 1}
		sv, err := NewSolver(grid.NewSpec(17, 17), prm, ic)
		if err != nil {
			t.Fatal(err)
		}
		dt := sv.EstimateDT(0.25)
		for n := 0; n < 6; n++ {
			sv.Advance(dt)
		}
		return tangentialBAtWalls(sv)
	}
	pvTan, pvMax := run(BCPseudoVacuum)
	cfTan, cfMax := run(BCConfined)
	if pvMax == 0 || cfMax == 0 {
		t.Fatal("field vanished")
	}
	if pvTan/pvMax > 0.15 {
		t.Errorf("pseudo-vacuum wall tangential field %.3g of max %.3g", pvTan, pvMax)
	}
	if pvTan/pvMax > 0.5*cfTan/cfMax {
		t.Errorf("pseudo-vacuum (%.3g rel) should suppress wall B_t far below confined (%.3g rel)",
			pvTan/pvMax, cfTan/cfMax)
	}
}

// TestPseudoVacuumStableDecay: the decay run stays finite and monotone
// under the alternative boundary condition too.
func TestPseudoVacuumStableDecay(t *testing.T) {
	prm := quietParams()
	prm.MagBC = BCPseudoVacuum
	ic := InitialConditions{SeedBAmp: 0.05, Modes: 0, Seed: 1}
	sv, err := NewSolver(grid.NewSpec(13, 13), prm, ic)
	if err != nil {
		t.Fatal(err)
	}
	em0 := sv.Diagnose().MagneticE
	dt := sv.EstimateDT(0.25)
	prev := em0
	for n := 0; n < 10; n++ {
		sv.Advance(dt)
		em := sv.Diagnose().MagneticE
		if em > prev*(1+1e-6) {
			t.Fatalf("magnetic energy grew: %g -> %g", prev, em)
		}
		prev = em
	}
	if err := sv.CheckFinite(); err != nil {
		t.Fatal(err)
	}
	if prev >= em0 {
		t.Error("no decay")
	}
}

// TestBoundaryConditionChangesDecay: the pseudo-vacuum walls let
// magnetic flux thread the boundary, draining energy faster than the
// confined (perfectly conducting) walls that trap the field in the
// shell; the two conditions must give measurably different decay from
// the same seed.
func TestBoundaryConditionChangesDecay(t *testing.T) {
	// Compare decay factors from a common start.
	factor := func(bc MagneticBC) float64 {
		prm := quietParams()
		prm.Eta = 0.02
		prm.MagBC = bc
		ic := InitialConditions{SeedBAmp: 0.05, Modes: 0, Seed: 1}
		sv, err := NewSolver(grid.NewSpec(13, 13), prm, ic)
		if err != nil {
			t.Fatal(err)
		}
		e0 := sv.Diagnose().MagneticE
		dt := sv.EstimateDT(0.25)
		for n := 0; n < 20; n++ {
			sv.Advance(dt)
		}
		return sv.Diagnose().MagneticE / e0
	}
	pv := factor(BCPseudoVacuum)
	cf := factor(BCConfined)
	if pv >= cf {
		t.Errorf("flux-threading pseudo-vacuum walls (factor %.4f) should drain energy faster than confined walls (%.4f)", pv, cf)
	}
	if math.Abs(pv-cf) < 0.01 {
		t.Errorf("boundary conditions indistinguishable: %.4f vs %.4f", pv, cf)
	}
}
