package mhd

import (
	"math"
	"testing"

	"repro/internal/grid"
)

func testSpec() grid.Spec {
	s := grid.NewSpec(13, 13)
	return s
}

func quietParams() Params {
	// Isothermal, non-rotating, gravity-free: the exact equilibrium is
	// rho = p = 1 at rest.
	return Params{Gamma: 5.0 / 3.0, Mu: 2e-3, Kappa: 2e-3, Eta: 2e-3, G0: 0, Omega: 0, TIn: 1}
}

func TestParamsValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{Gamma: 1, TIn: 2},
		{Gamma: 1.5, Mu: -1, TIn: 2},
		{Gamma: 1.5, TIn: 0},
		{Gamma: 1.5, TIn: 2, G0: -3},
	}
	for _, p := range bad {
		if p.Validate() == nil {
			t.Errorf("%+v should be invalid", p)
		}
	}
}

func TestDimensionlessNumbers(t *testing.T) {
	p := Default()
	gap := 0.65
	if e := p.Ekman(gap); e <= 0 || math.IsInf(e, 0) {
		t.Errorf("Ekman = %v", e)
	}
	if ra := p.RayleighEstimate(gap); ra <= 0 {
		t.Errorf("Rayleigh = %v", ra)
	}
	z := Params{Gamma: 5. / 3., TIn: 2}
	if !math.IsInf(z.Ekman(gap), 1) || !math.IsInf(z.RayleighEstimate(gap), 1) {
		t.Error("zero dissipation should give infinite numbers")
	}
}

// TestProfile: the conduction profile satisfies its boundary values and
// hydrostatic balance d(rho T)/dr = -rho g0/r^2.
func TestProfile(t *testing.T) {
	prm := Default()
	pf := NewProfile(prm, 0.35, 1.0)
	if math.Abs(pf.T(0.35)-prm.TIn) > 1e-12 || math.Abs(pf.T(1)-1) > 1e-12 {
		t.Fatalf("T endpoints: %v, %v", pf.T(0.35), pf.T(1))
	}
	if math.Abs(pf.Rho(1)-1) > 1e-12 {
		t.Fatalf("rho(ro) = %v", pf.Rho(1))
	}
	// Hydrostatic residual by a fine central difference of p = rho T.
	for _, r := range []float64{0.45, 0.6, 0.8, 0.95} {
		const dr = 1e-4
		dpdr := (pf.P(r+dr) - pf.P(r-dr)) / (2 * dr)
		want := -pf.Rho(r) * prm.G0 / (r * r)
		if math.Abs(dpdr-want) > 1e-5*(1+math.Abs(want)) {
			t.Errorf("hydrostatic residual at r=%v: dp/dr=%v want %v", r, dpdr, want)
		}
	}
	// Density increases inward under central gravity.
	if pf.Rho(0.4) <= pf.Rho(0.9) {
		t.Error("density does not increase inward")
	}
}

func TestNewSolverRejectsBadInput(t *testing.T) {
	if _, err := NewSolver(grid.Spec{Nr: 1, Nt: 1, Np: 1, RI: 0.3, RO: 1}, Default(), DefaultIC()); err == nil {
		t.Error("bad spec accepted")
	}
	if _, err := NewSolver(testSpec(), Params{Gamma: 0.5, TIn: 2}, DefaultIC()); err == nil {
		t.Error("bad params accepted")
	}
}

// TestQuietEquilibrium: with no perturbation and no driving, the uniform
// state is an exact discrete equilibrium and must not move.
func TestQuietEquilibrium(t *testing.T) {
	ic := InitialConditions{PerturbAmp: 0, SeedBAmp: 0, Modes: 0, Seed: 1}
	sv, err := NewSolver(testSpec(), quietParams(), ic)
	if err != nil {
		t.Fatal(err)
	}
	dt := sv.EstimateDT(0.3)
	for n := 0; n < 5; n++ {
		sv.Advance(dt)
	}
	d := sv.Diagnose()
	if d.MaxV > 1e-12 {
		t.Errorf("quiet state acquired velocity %g", d.MaxV)
	}
	if d.MagneticE != 0 {
		t.Errorf("quiet state acquired magnetic energy %g", d.MagneticE)
	}
}

// TestConductionNearEquilibrium: the stratified conduction state is an
// equilibrium of the continuum equations; discretely it drifts only at
// truncation level.
func TestConductionNearEquilibrium(t *testing.T) {
	prm := Default()
	prm.Omega = 0
	ic := InitialConditions{PerturbAmp: 0, SeedBAmp: 0, Modes: 0, Seed: 1}
	sv, err := NewSolver(testSpec(), prm, ic)
	if err != nil {
		t.Fatal(err)
	}
	dt := sv.EstimateDT(0.3)
	for n := 0; n < 10; n++ {
		sv.Advance(dt)
	}
	if err := sv.CheckFinite(); err != nil {
		t.Fatal(err)
	}
	d := sv.Diagnose()
	// Truncation-driven spurious flow stays far below the convective
	// velocities O(0.1..1) that a perturbed run develops.
	if d.MaxV > 5e-2 {
		t.Errorf("conduction state spurious velocity %g", d.MaxV)
	}
}

// TestMassConservation: the ownership-weighted total mass moves only at
// truncation level over a short perturbed run.
func TestMassConservation(t *testing.T) {
	prm := Default()
	sv, err := NewSolver(testSpec(), prm, DefaultIC())
	if err != nil {
		t.Fatal(err)
	}
	m0 := sv.Diagnose().Mass
	dt := sv.EstimateDT(0.3)
	for n := 0; n < 10; n++ {
		sv.Advance(dt)
	}
	m1 := sv.Diagnose().Mass
	if rel := math.Abs(m1-m0) / m0; rel > 1e-3 {
		t.Errorf("mass drifted by %g relative", rel)
	}
}

// TestBuoyancyDrivesFlow: a perturbed, driven state accelerates from rest
// and the kinetic energy initially grows.
func TestBuoyancyDrivesFlow(t *testing.T) {
	prm := Default()
	sv, err := NewSolver(testSpec(), prm, DefaultIC())
	if err != nil {
		t.Fatal(err)
	}
	dt := sv.EstimateDT(0.3)
	sv.Advance(dt)
	ek1 := sv.Diagnose().KineticE
	for n := 0; n < 9; n++ {
		sv.Advance(dt)
	}
	ek10 := sv.Diagnose().KineticE
	if ek1 <= 0 {
		t.Fatalf("no flow after first step: Ek=%g", ek1)
	}
	if ek10 <= ek1 {
		t.Errorf("kinetic energy not growing: %g -> %g", ek1, ek10)
	}
	if err := sv.CheckFinite(); err != nil {
		t.Fatal(err)
	}
}

// TestMagneticDecay: with a quiescent fluid, the seed field decays
// resistively: magnetic energy is monotonically decreasing, and doubling
// eta roughly doubles the decay rate.
func TestMagneticDecay(t *testing.T) {
	decayRate := func(eta float64) float64 {
		prm := quietParams()
		prm.Eta = eta
		ic := InitialConditions{PerturbAmp: 0, SeedBAmp: 0.05, Modes: 0, Seed: 1}
		sv, err := NewSolver(testSpec(), prm, ic)
		if err != nil {
			t.Fatal(err)
		}
		em0 := sv.Diagnose().MagneticE
		dt := sv.EstimateDT(0.25)
		prev := em0
		steps := 12
		for n := 0; n < steps; n++ {
			sv.Advance(dt)
			em := sv.Diagnose().MagneticE
			if em > prev*(1+1e-9) {
				t.Fatalf("magnetic energy grew during decay: %g -> %g (eta=%g)", prev, em, eta)
			}
			prev = em
		}
		return math.Log(em0/prev) / (float64(steps) * dt)
	}
	r1 := decayRate(0.02)
	r2 := decayRate(0.04)
	if r1 <= 0 {
		t.Fatalf("no decay measured: %g", r1)
	}
	ratio := r2 / r1
	if ratio < 1.6 || ratio > 2.4 {
		t.Errorf("decay rate ratio %g for doubled eta, want about 2", ratio)
	}
}

// TestRK4TemporalOrder: against a fine-dt reference, the error of the
// full nonlinear step scales like dt^4.
func TestRK4TemporalOrder(t *testing.T) {
	run := func(steps int, tEnd float64) *Solver {
		prm := Default()
		sv, err := NewSolver(testSpec(), prm, DefaultIC())
		if err != nil {
			t.Fatal(err)
		}
		dt := tEnd / float64(steps)
		for n := 0; n < steps; n++ {
			sv.Advance(dt)
		}
		return sv
	}
	const tEnd = 0.02
	ref := run(32, tEnd)
	diff := func(a, b *Solver) float64 {
		var m float64
		for pi := range a.Panels {
			fa := a.Panels[pi].U.P
			fb := b.Panels[pi].U.P
			for i := range fa.Data {
				if d := math.Abs(fa.Data[i] - fb.Data[i]); d > m {
					m = d
				}
			}
		}
		return m
	}
	e1 := diff(run(2, tEnd), ref)
	e2 := diff(run(4, tEnd), ref)
	rate := math.Log2(e1 / e2)
	if rate < 3.2 {
		t.Errorf("temporal convergence rate %.2f, want about 4 (%g -> %g)", rate, e1, e2)
	}
}

// ownedArea integrates the ownership partition of unity over both panels
// with the trapezoid rule; the exact value is the full sphere, 4 pi.
func ownedArea(t *testing.T, nt int) float64 {
	t.Helper()
	sv, err := NewSolver(grid.NewSpec(5, nt), quietParams(), DefaultIC())
	if err != nil {
		t.Fatal(err)
	}
	var area float64
	for _, pl := range sv.Panels {
		p := pl.Patch
		h := p.H
		_, ntP, _ := p.Padded()
		for k := h; k < h+p.Np; k++ {
			wk := 1.0
			if k == h || k == h+p.Np-1 {
				wk = 0.5
			}
			for j := h; j < h+p.Nt; j++ {
				wj := 1.0
				if j == h || j == h+p.Nt-1 {
					wj = 0.5
				}
				area += pl.Own[k*ntP+j] * wk * wj * p.SinT[j] * p.Dt * p.Dp
			}
		}
	}
	return area
}

// TestOwnershipPartitionsSphere: the ownership-weighted angular measure
// summed over both panels equals the full sphere up to the seam
// quadrature error of the kinked weight function (first order in h near
// the partition pinch points), which must shrink with resolution.
func TestOwnershipPartitionsSphere(t *testing.T) {
	want := 4 * math.Pi
	e1 := math.Abs(ownedArea(t, 17) - want)
	e2 := math.Abs(ownedArea(t, 33) - want)
	if e2/want > 0.02 {
		t.Errorf("owned area error %v of %v at nt=33", e2, want)
	}
	if e2 >= e1 {
		t.Errorf("seam quadrature error not shrinking: %g -> %g", e1, e2)
	}
}

// TestOwnershipSymmetry: the two panels' masks are identical arrays (the
// ownership rule is Yin<->Yang symmetric).
func TestOwnershipSymmetry(t *testing.T) {
	sv, err := NewSolver(testSpec(), quietParams(), DefaultIC())
	if err != nil {
		t.Fatal(err)
	}
	a := sv.Panels[0].Own
	b := sv.Panels[1].Own
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("ownership masks differ between panels")
		}
	}
}

func TestDiagnoseMass(t *testing.T) {
	sv, err := NewSolver(testSpec(), quietParams(),
		InitialConditions{PerturbAmp: 0, SeedBAmp: 0, Modes: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := sv.Diagnose()
	shell := 4 * math.Pi / 3 * (1 - math.Pow(0.35, 3))
	// Quiet isothermal state has rho = 1 everywhere. The tolerance covers
	// the overset seam quadrature bias at this coarse resolution (see
	// TestOwnershipPartitionsSphere).
	if math.Abs(d.Mass-shell)/shell > 0.05 {
		t.Errorf("mass = %v, want about %v", d.Mass, shell)
	}
	if d.InternalE <= 0 {
		t.Error("internal energy not positive")
	}
}

func TestCheckFiniteDetectsNaN(t *testing.T) {
	sv, err := NewSolver(testSpec(), quietParams(), DefaultIC())
	if err != nil {
		t.Fatal(err)
	}
	if err := sv.CheckFinite(); err != nil {
		t.Fatalf("fresh state flagged: %v", err)
	}
	sv.Panels[0].U.Rho.Set(3, 3, 3, math.NaN())
	if err := sv.CheckFinite(); err == nil {
		t.Error("NaN not detected")
	}
}

func TestEstimateDTScales(t *testing.T) {
	sv1, _ := NewSolver(grid.NewSpec(9, 9), Default(), DefaultIC())
	sv2, _ := NewSolver(grid.NewSpec(17, 17), Default(), DefaultIC())
	d1 := sv1.EstimateDT(0.3)
	d2 := sv2.EstimateDT(0.3)
	if d1 <= 0 || d2 <= 0 {
		t.Fatalf("non-positive dt: %g %g", d1, d2)
	}
	if d2 >= d1 {
		t.Errorf("dt did not shrink with resolution: %g -> %g", d1, d2)
	}
}

func TestRunStopsOnFinite(t *testing.T) {
	sv, err := NewSolver(testSpec(), Default(), DefaultIC())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sv.Run(4, 0); err != nil {
		t.Fatalf("healthy run errored: %v", err)
	}
	if sv.Step != 4 || sv.Time <= 0 {
		t.Errorf("step=%d time=%v", sv.Step, sv.Time)
	}
}

// TestDoubleSolutionAgreement: after stepping, the Yin and Yang solutions
// in the overlap region agree within discretization error (paper,
// section II: the "double solution" needs no blending).
func TestDoubleSolutionAgreement(t *testing.T) {
	sv, err := NewSolver(grid.NewSpec(9, 17), Default(), DefaultIC())
	if err != nil {
		t.Fatal(err)
	}
	dt := sv.EstimateDT(0.3)
	for n := 0; n < 5; n++ {
		sv.Advance(dt)
	}
	maxRel := OverlapDisagreement(sv)
	if maxRel > 0.05 {
		t.Errorf("double-solution relative disagreement %g", maxRel)
	}
}

// TestNusseltConduction: the pure conduction state transports exactly
// the conductive flux: Nu = 1 (up to quadrature error).
func TestNusseltConduction(t *testing.T) {
	nuAt := func(nt int) float64 {
		prm := Default()
		prm.Omega = 0
		sv, err := NewSolver(grid.NewSpec(nt, nt), prm,
			InitialConditions{PerturbAmp: 0, SeedBAmp: 0, Modes: 0, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return sv.NusseltOuter()
	}
	// The residual is quadrature error (dominated by the overset seam
	// bias, cf. TestOwnershipPartitionsSphere) and must shrink with
	// resolution.
	e1 := math.Abs(nuAt(17) - 1)
	e2 := math.Abs(nuAt(33) - 1)
	if e1 > 0.05 {
		t.Errorf("conduction Nusselt off by %v at nt=17", e1)
	}
	if e2 >= e1 {
		t.Errorf("Nusselt error not converging: %v -> %v", e1, e2)
	}
}

// TestNusseltFiniteInDrivenRun: the diagnostic stays finite and of
// order unity through a convective spin-up.
func TestNusseltFiniteInDrivenRun(t *testing.T) {
	sv, err := NewSolver(testSpec(), Default(), DefaultIC())
	if err != nil {
		t.Fatal(err)
	}
	dt := sv.EstimateDT(0.3)
	for n := 0; n < 10; n++ {
		sv.Advance(dt)
	}
	nu := sv.NusseltOuter()
	if math.IsNaN(nu) || nu < 0.5 || nu > 10 {
		t.Errorf("Nusselt = %v", nu)
	}
}

// TestDivBFree: B = curl A is discretely divergence-free to truncation
// error, converging at second order — the structural guarantee of the
// vector-potential formulation (no divergence cleaning needed).
func TestDivBFree(t *testing.T) {
	divBAt := func(nt int) float64 {
		ic := DefaultIC()
		ic.SeedBAmp = 0.05
		sv, err := NewSolver(grid.NewSpec(nt, nt), Default(), ic)
		if err != nil {
			t.Fatal(err)
		}
		dt := sv.EstimateDT(0.3)
		for n := 0; n < 3; n++ {
			sv.Advance(dt)
		}
		var worst float64
		for _, pl := range sv.Panels {
			ComputeVTB(pl, &pl.U)
			p := pl.Patch
			div := p.NewScalar()
			sphopsDiv(pl, div)
			h := p.H
			margin := nt / 8
			bscale := 0.0
			for k := h + margin; k < h+p.Np-margin; k++ {
				for j := h + margin; j < h+p.Nt-margin; j++ {
					for i := h + margin; i < h+p.Nr-margin; i++ {
						if b := math.Abs(pl.B.R.At(i, j, k)); b > bscale {
							bscale = b
						}
						if d := math.Abs(div.At(i, j, k)); d > worst {
							worst = d
						}
					}
				}
			}
			worst /= math.Max(bscale/0.65, 1e-300) // normalize by B over gap scale
		}
		return worst
	}
	e1 := divBAt(17)
	e2 := divBAt(33)
	if rate := math.Log2(e1 / e2); rate < 1.3 {
		t.Errorf("div B convergence rate %.2f (%g -> %g)", rate, e1, e2)
	}
}

// RunAdaptive integrates to tEnd re-estimating the stable step before
// every step; used when the flow speeds up during a run.
func TestRunAdaptive(t *testing.T) {
	sv, err := NewSolver(testSpec(), Default(), DefaultIC())
	if err != nil {
		t.Fatal(err)
	}
	steps, err := sv.RunAdaptive(0.05, 0.3, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if steps <= 0 || sv.Time < 0.05 {
		t.Errorf("adaptive run: %d steps to t=%v", steps, sv.Time)
	}
	if _, err := sv.RunAdaptive(10, 0.3, 3); err == nil {
		t.Error("step budget exhaustion not reported")
	}
}

// TestConcurrentPanelsIdentical: stepping the panels on goroutines gives
// bit-identical results to the sequential path.
func TestConcurrentPanelsIdentical(t *testing.T) {
	mk := func(conc bool) *Solver {
		sv, err := NewSolver(testSpec(), Default(), DefaultIC())
		if err != nil {
			t.Fatal(err)
		}
		sv.Concurrent = conc
		for n := 0; n < 4; n++ {
			sv.Advance(2e-3)
		}
		return sv
	}
	a := mk(false)
	b := mk(true)
	for pi := range a.Panels {
		fa := a.Panels[pi].U.Scalars()
		fb := b.Panels[pi].U.Scalars()
		for vi := range fa {
			for i := range fa[vi].Data {
				if fa[vi].Data[i] != fb[vi].Data[i] {
					t.Fatalf("concurrent stepping diverged: panel %d var %d", pi, vi)
				}
			}
		}
	}
}

// TestBiquadraticRimSolver: the solver runs stably with third-order rim
// interpolation, and the overlap "double solution" disagreement after
// stepping is no worse than (and typically better than) bilinear.
func TestBiquadraticRimSolver(t *testing.T) {
	run := func(order int) float64 {
		sv, err := NewSolverInterp(grid.NewSpec(9, 17), Default(), DefaultIC(), order)
		if err != nil {
			t.Fatal(err)
		}
		dt := sv.EstimateDT(0.3)
		for n := 0; n < 6; n++ {
			sv.Advance(dt)
		}
		if err := sv.CheckFinite(); err != nil {
			t.Fatal(err)
		}
		return OverlapDisagreement(sv)
	}
	d2 := run(2)
	d3 := run(3)
	if d3 > d2*1.5 {
		t.Errorf("biquadratic rim disagreement %g much worse than bilinear %g", d3, d2)
	}
	if _, err := NewSolverInterp(testSpec(), Default(), DefaultIC(), 5); err == nil {
		t.Error("bogus order accepted")
	}
}

// TestSpatialSelfConvergence: the complete solver (operators, boundary
// conditions, overset exchange) is second-order accurate in space:
// successive grid halvings shrink the solution difference at probes by
// about 4x. All runs use the same (finest-stable) time step so the
// temporal error is common.
func TestSpatialSelfConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-resolution run")
	}
	prm := Default()
	ic := DefaultIC()
	const dt = 1e-3
	const steps = 8
	probeAt := func(sv *Solver, r, th, ph float64) float64 {
		// Trilinear sample of temperature on the Yin panel (probes are
		// chosen inside it).
		pl := sv.Panels[0]
		ComputeVTB(pl, &pl.U)
		p := pl.Patch
		h := p.H
		fi := (r - p.Spec.RI) / p.Dr
		i0 := int(math.Floor(fi))
		ai := fi - float64(i0)
		fj := (th - grid.ThetaMin) / p.Dt
		j0 := int(math.Floor(fj))
		aj := fj - float64(j0)
		fk := (ph - grid.PhiMin) / p.Dp
		k0 := int(math.Floor(fk))
		ak := fk - float64(k0)
		var v float64
		for di := 0; di <= 1; di++ {
			wi := 1 - ai
			if di == 1 {
				wi = ai
			}
			for dj := 0; dj <= 1; dj++ {
				wj := 1 - aj
				if dj == 1 {
					wj = aj
				}
				for dk := 0; dk <= 1; dk++ {
					wk := 1 - ak
					if dk == 1 {
						wk = ak
					}
					v += wi * wj * wk * pl.T.At(i0+di+h, j0+dj+h, k0+dk+h)
				}
			}
		}
		return v
	}
	probes := [][3]float64{
		{0.6, 1.2, 0.4}, {0.75, 1.8, -1.2}, {0.5, 1.5, 1.9}, {0.85, 1.0, -0.3},
	}
	sample := func(nt int) []float64 {
		sv, err := NewSolver(grid.NewSpec(nt, nt), prm, ic)
		if err != nil {
			t.Fatal(err)
		}
		for n := 0; n < steps; n++ {
			sv.Advance(dt)
		}
		out := make([]float64, len(probes))
		for i, p := range probes {
			out[i] = probeAt(sv, p[0], p[1], p[2])
		}
		return out
	}
	coarse := sample(13)
	mid := sample(25)
	fine := sample(49)
	var d1, d2 float64
	for i := range probes {
		d1 += math.Abs(coarse[i] - mid[i])
		d2 += math.Abs(mid[i] - fine[i])
	}
	rate := math.Log2(d1 / d2)
	if rate < 1.4 {
		t.Errorf("full-solver spatial rate %.2f, want about 2 (diffs %g -> %g)", rate, d1, d2)
	}
}
