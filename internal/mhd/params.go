// Package mhd implements the yycore solver: compressible
// magnetohydrodynamics of a rotating, convecting, electrically conducting
// fluid in a spherical shell, discretized with second-order central finite
// differences on the Yin-Yang grid and integrated with the fourth-order
// Runge-Kutta method (paper, section III).
//
// Basic variables are the mass density rho, the mass flux density
// f = rho*v, the pressure p, and the magnetic vector potential A.
// The magnetic field B = curl A, current density j = curl B, and electric
// field E = -v x B + eta*j are treated as subsidiary fields. The equation
// of state is p = rho*T. Quantities are normalized so that at the outer
// sphere r_o = 1, T(r_o) = 1, and rho(r_o) = 1.
package mhd

import (
	"fmt"
	"math"
)

// Params are the free parameters of the normalized MHD system. The paper
// has six: the ratio of specific heats, the three dissipation constants
// (viscosity, thermal conductivity, electrical resistivity), the gravity
// constant, and the rotation rate; the inner-boundary temperature closes
// the thermal driving.
type Params struct {
	Gamma float64 // ratio of specific heats
	Mu    float64 // dynamic viscosity mu
	Kappa float64 // thermal conductivity K
	Eta   float64 // electrical resistivity eta
	G0    float64 // gravity constant: g = -(G0/r^2) rhat
	Omega float64 // frame rotation rate about the geographic z axis
	TIn   float64 // fixed temperature of the inner sphere (outer sphere = 1)

	// MagBC selects the magnetic wall boundary condition; the zero value
	// is BCConfined (A = 0 at the walls).
	MagBC MagneticBC
}

// Default returns parameters for a vigorously convecting but
// laptop-resolution-stable configuration. The paper's production runs use
// dissipation ten times smaller than its earlier reversal runs (Rayleigh
// number 3e6, Ekman number 2e-5); such values require the paper's ~1e8+
// grid points, so scaled-down experiments raise the dissipation to keep
// the truncation-limited run stable, exactly as the substitution policy in
// DESIGN.md records.
func Default() Params {
	return Params{
		Gamma: 5.0 / 3.0,
		Mu:    2e-3,
		Kappa: 2e-3,
		Eta:   2e-3,
		G0:    1.0,
		Omega: 10.0,
		TIn:   2.0,
	}
}

// Validate reports whether the parameters are physically admissible.
func (p Params) Validate() error {
	if p.Gamma <= 1 {
		return fmt.Errorf("mhd: Gamma must exceed 1, got %v", p.Gamma)
	}
	for _, c := range []struct {
		name string
		v    float64
	}{{"Mu", p.Mu}, {"Kappa", p.Kappa}, {"Eta", p.Eta}} {
		if c.v < 0 || math.IsNaN(c.v) {
			return fmt.Errorf("mhd: %s must be non-negative, got %v", c.name, c.v)
		}
	}
	if p.TIn <= 0 {
		return fmt.Errorf("mhd: TIn must be positive, got %v", p.TIn)
	}
	if p.G0 < 0 {
		return fmt.Errorf("mhd: G0 must be non-negative, got %v", p.G0)
	}
	return nil
}

// Ekman returns the Ekman number mu/(2 Omega L^2) with L the shell gap,
// assuming unit density scale; it is 2e-5 in the paper's production runs.
func (p Params) Ekman(gap float64) float64 {
	//yyvet:ignore float-eq Ekman number diverges at the exact zero of Omega (non-rotating configuration)
	if p.Omega == 0 {
		return math.Inf(1)
	}
	return p.Mu / (2 * p.Omega * gap * gap)
}

// RayleighEstimate returns a Rayleigh-number-like measure of the thermal
// driving, g0 dT gap^3 / (mu K), with unit density/expansion scales; it is
// 3e6 in the paper's production runs.
func (p Params) RayleighEstimate(gap float64) float64 {
	//yyvet:ignore float-eq Rayleigh estimate diverges at the exact zero of either diffusivity
	if p.Mu == 0 || p.Kappa == 0 {
		return math.Inf(1)
	}
	return p.G0 * (p.TIn - 1) * math.Pow(gap, 3) / (p.Mu * p.Kappa)
}
