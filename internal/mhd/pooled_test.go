package mhd

import (
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/par"
)

// TestPooledKernelsBitIdentical is the world-size-1 golden test of the
// intra-rank parallelism layer: the same solver advanced 10 steps with
// serial kernels and with a 3-worker pool must agree bit for bit in
// every state variable. The pooled kernels split loops over disjoint
// index ranges and combine reductions in fixed tile order, so this is
// an exact equality, not a tolerance comparison.
func TestPooledKernelsBitIdentical(t *testing.T) {
	run := func(workers int) *Solver {
		sv, err := NewSolver(grid.NewSpec(9, 13), Default(), DefaultIC())
		if err != nil {
			t.Fatal(err)
		}
		if workers > 1 {
			pool := par.NewPool(workers)
			defer pool.Close()
			sv.SetPool(pool)
		}
		dt := sv.EstimateDT(0.3)
		for n := 0; n < 10; n++ {
			sv.Advance(dt)
		}
		return sv
	}
	serial := run(1)
	pooled := run(3)
	if serial.Time != pooled.Time {
		t.Fatalf("time diverged: serial %x pooled %x", serial.Time, pooled.Time)
	}
	for pi, pl := range serial.Panels {
		pp := pooled.Panels[pi]
		for vi, f := range pl.U.Scalars() {
			g := pp.U.Scalars()[vi]
			for n := range f.Data {
				if f.Data[n] != g.Data[n] {
					t.Fatalf("panel %d var %d index %d: serial %x pooled %x",
						pi, vi, n, f.Data[n], g.Data[n])
				}
			}
		}
	}
}

// TestPooledDivBFree: advancing 10 steps with pooled kernels keeps
// B = curl A divergence-free at truncation level — the structural
// conservation property must survive the parallel code path.
func TestPooledDivBFree(t *testing.T) {
	ic := DefaultIC()
	ic.SeedBAmp = 0.05
	sv, err := NewSolver(grid.NewSpec(17, 17), Default(), ic)
	if err != nil {
		t.Fatal(err)
	}
	pool := par.NewPool(3)
	defer pool.Close()
	sv.SetPool(pool)
	dt := sv.EstimateDT(0.3)
	for n := 0; n < 10; n++ {
		sv.Advance(dt)
	}
	for _, pl := range sv.Panels {
		ComputeVTB(pl, &pl.U)
		p := pl.Patch
		div := p.NewScalar()
		sphopsDiv(pl, div)
		h := p.H
		margin := 2
		var worst, bscale float64
		for k := h + margin; k < h+p.Np-margin; k++ {
			for j := h + margin; j < h+p.Nt-margin; j++ {
				for i := h + margin; i < h+p.Nr-margin; i++ {
					if b := math.Abs(pl.B.R.At(i, j, k)); b > bscale {
						bscale = b
					}
					if d := math.Abs(div.At(i, j, k)); d > worst {
						worst = d
					}
				}
			}
		}
		// Truncation-level: |div B| stays a small multiple of |B|/L
		// at this resolution (h^2-class, observed ~0.02; allow 5x).
		if worst > 0.1*bscale/0.65 {
			t.Errorf("%s: pooled divB %g vs B scale %g — above truncation level",
				pl.Patch.Panel, worst, bscale)
		}
	}
}

// TestPooledEnergyBalance: the discrete magnetic energy budget
// d(Em)/dt = -LorentzWork - JouleHeat holds with pooled kernels exactly
// as it does serially (the budget itself is a serial reduction; the
// advance between measurements runs through the pool).
func TestPooledEnergyBalance(t *testing.T) {
	prm := quietParams()
	prm.Eta = 0.01
	ic := InitialConditions{SeedBAmp: 0.05, Modes: 0, Seed: 1}
	sv, err := NewSolver(grid.NewSpec(17, 17), prm, ic)
	if err != nil {
		t.Fatal(err)
	}
	pool := par.NewPool(3)
	defer pool.Close()
	sv.SetPool(pool)
	dt := sv.EstimateDT(0.2)
	sv.Advance(dt)

	b := ComputeBudget(sv)
	em0 := sv.Diagnose().MagneticE
	small := dt / 4
	sv.Advance(small)
	em1 := sv.Diagnose().MagneticE
	measured := (em1 - em0) / small
	want := -b.LorentzWork - b.JouleHeat
	if b.JouleHeat <= 0 {
		t.Fatalf("no Joule heating: %+v", b)
	}
	rel := math.Abs(measured-want) / math.Abs(want)
	if rel > 0.25 {
		t.Errorf("pooled dEm/dt = %g, budget predicts %g (%.0f%% off)", measured, want, rel*100)
	}
}
