package mhd

import (
	"repro/internal/field"
	"repro/internal/sphops"
)

// ComputeVTB fills the subsidiary fields V = f/rho, T = p/rho (pointwise,
// valid over the full padded arrays) and B = curl A (valid over the patch
// nodes; a decomposed run must exchange B halos before FinishRHS because
// the current density differentiates B).
func ComputeVTB(pl *Panel, u *State) {
	pl.V.R.Quot(u.F.R, u.Rho)
	pl.V.T.Quot(u.F.T, u.Rho)
	pl.V.P.Quot(u.F.P, u.Rho)
	fillDerivedT(u, pl.T)
	sphops.Curl(pl.Patch, u.A, pl.B, pl.W)
}

// FinishRHS evaluates the right-hand sides of the normalized MHD system,
// eqs. (2)-(5) of the paper, into out:
//
//	d(rho)/dt = -div f
//	d(f)/dt   = -div(v f) - grad p + j x B + rho g + 2 rho v x Omega
//	            + mu (lap v + (1/3) grad div v)
//	d(p)/dt   = -v.grad p - gamma p div v
//	            + (gamma-1)(K lap T + eta j^2 + Phi)
//	d(A)/dt   = -E = v x B - eta j
//
// with g = -(G0/r^2) rhat and Phi = 2 mu (e_ij e_ij - (1/3)(div v)^2).
// ComputeVTB must have run (and, in a decomposed run, B halos must be
// current). Only patch nodes [H, H+N) of out are written; halos of out
// are never touched, so Runge-Kutta halo values advance only through
// explicit halo exchanges.
//
// sync, when non-nil, is called for computed intermediates that are about
// to be differentiated again and therefore need current halo values at
// decomposition seams (today: div v, whose gradient forms the
// compressive part of the viscous force). A serial full-panel solver
// passes nil: its patch edges are all global boundaries, where one-sided
// closures never read halos.
// FinishRHS is the fused evaluation: three cache-blocked column passes
// (RHSCurlJ, RHSDivV, RHSUpdate in rhs_fused.go) over the full owned
// region, bit-identical to the unfused FinishRHSReference — the
// equivalence suite in rhs_reference_test.go pins that. A decomposed
// rank that overlaps halo traffic with compute calls the three phases
// directly with interior/rim regions instead of going through here.
func FinishRHS(pl *Panel, prm Params, u, out *State, sync func(fs ...*field.Scalar)) {
	full := pl.Patch.OwnedRegion()
	RHSCurlJ(pl, full)
	RHSDivV(pl, full)
	if sync != nil {
		sync(pl.DivV)
	}
	RHSUpdate(pl, prm, u, out, full)
}

// ComputeJ fills the current density J = curl B from the panel's B
// field; ComputeVTB must have run. Diagnostics (e.g. the magnetic
// moment) use it outside the right-hand-side path.
func ComputeJ(pl *Panel) {
	sphops.Curl(pl.Patch, pl.B, pl.J, pl.W)
}
