package mhd

import (
	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/perfcount"
	"repro/internal/sphops"
)

// The fused right-hand side. FinishRHSReference (rhs_reference.go) makes
// roughly seventy separate full-field sweeps per evaluation: every
// derivative of every operator streams the whole patch through cache
// once, and every operator round-trips its combined result through a
// scratch field. The fused form instead visits each (j, k) column
// exactly once per phase. One pass per direction builds every
// derivative the column needs over shared input rows and accumulates
// each operator's directional metric terms in place (radial part, then
// += theta part, then += phi part — the exact association order of the
// reference combines), and a final loop forms the eight outputs with
// all remaining intermediates in registers. The arithmetic is the
// reference's statement for statement — same stencil expressions, same
// combine expressions, same rounding order — so the results are bitwise
// identical; the equivalence suite in rhs_reference_test.go pins that.
//
// The evaluation is split into three region-capable phases so a
// decomposed rank can overlap halo traffic with compute:
//
//	RHSCurlJ   j = curl B        — needs B halos at its rim columns
//	RHSDivV    div v -> pl.DivV  — no halo dependency (V is pointwise-
//	                               derived over the full padded arrays)
//	RHSUpdate  everything else   — needs DivV halos at its rim columns
//
// Each phase accepts a grid.Region; any disjoint cover of the owned
// columns (all at once, or interior then rim) produces identical bits.

// RHSCurlJ fills the current density j = curl B on the columns of reg.
// ComputeVTB must have run; at decomposition seams the rim columns read
// B halos, so they may only be evaluated after the B halo exchange.
func RHSCurlJ(pl *Panel, reg grid.Region) {
	sphops.CurlOn(pl.Patch, reg, pl.B, pl.J, pl.W)
}

// RHSDivV fills pl.DivV = div v on the columns of reg. V halo values are
// pointwise-derived from exchanged state halos, so this phase has no
// halo-exchange dependency of its own; seam halos of pl.DivV itself are
// filled by the aux exchange (or the sync callback) before RHSUpdate
// differentiates them.
func RHSDivV(pl *Panel, reg grid.Region) {
	sphops.DivOn(pl.Patch, reg, pl.V, pl.DivV, pl.W)
}

// rhsRows is the per-worker scratch of the fused update kernel: one
// padded radial row per derivative or per-operator directional
// accumulator of one (j, k) column. Fully combined quantities have no
// rows — they live in registers of the final loop.
type rhsRows struct {
	// First derivatives of p, feeding both v.grad p and grad p.
	dPr, dPt, dPp []float64
	// div F and lap T, accumulated radial -> theta -> phi.
	dF, lT []float64
	// First velocity derivatives, [component] per direction: shared by
	// the strain tensor and the vector-Laplacian coupling (the
	// reference computes them twice; the values are identical, so
	// sharing preserves the bits).
	vD1r, vD1t, vD1p [3][]float64
	// Scalar-Laplacian part of lap v and the tensor divergence
	// div(v f), [component], accumulated radial -> theta -> phi
	// (curvature/Christoffel corrections are applied in the final
	// loop, exactly where the reference applies them).
	lap, adv [3][]float64
	// Derivatives of div v for its gradient.
	gDr, gDt, gDp []float64
}

// The momentum-flux products v_a f_b have no rows at all: every stencil
// and metric term forms its products in place, each rounding exactly
// once — bit-identical to the reference's materialized product arrays,
// which also round each product exactly once before differencing.

const rhsRowCount = 23

func newRHSRows(nrP int) *rhsRows {
	backing := make([]float64, rhsRowCount*nrP)
	next := func() []float64 {
		r := backing[:nrP:nrP]
		backing = backing[nrP:]
		return r
	}
	s := &rhsRows{}
	ptrs := []*[]float64{
		&s.dPr, &s.dPt, &s.dPp,
		&s.dF, &s.lT,
		&s.gDr, &s.gDt, &s.gDp,
	}
	for c := 0; c < 3; c++ {
		ptrs = append(ptrs,
			&s.vD1r[c], &s.vD1t[c], &s.vD1p[c],
			&s.lap[c], &s.adv[c],
		)
	}
	for _, dst := range ptrs {
		*dst = next()
	}
	return s
}

// RHSUpdate evaluates everything of the right-hand side except j and
// div v — both must be current on (at least) the columns of reg, and at
// decomposition seams the rim columns differentiate pl.DivV halos, so
// the rim may only run after the aux halo exchange. Writes out on the
// columns of reg only.
func RHSUpdate(pl *Panel, prm Params, u, out *State, reg grid.Region) {
	p := pl.Patch
	for _, rc := range reg {
		if rc.Empty() {
			continue
		}
		rc := rc
		p.Par.For(rc.K1-rc.K0, func(klo, khi int) {
			s := pl.getRows()
			for k := rc.K0 + klo; k < rc.K0+khi; k++ {
				for j := rc.J0; j < rc.J1; j++ {
					fusedRHSColumn(pl, prm, u, out, s, j, k)
				}
			}
			pl.putRows(s)
		})
	}
	chargeRHSUpdate(p, reg)
}

// chargeRHSUpdate reports the aggregate work of the fused update on a
// region: the per-node flop and per-column loop totals of the unfused
// sweeps it replaces (divF 18/4, v.grad p 17/4, lap T 28/6, strain 67/10,
// tensor divergence 72/15, grad p 12/4, lap v 123/24, grad div v 12/4,
// final update 70/1). The only deviation from the reference is that the
// flux products are charged on region nodes rather than padded nodes —
// sub-percent of the step total, within the profile gate's tolerance.
func chargeRHSUpdate(p *grid.Patch, reg grid.Region) {
	cols := int64(reg.Columns())
	n := cols * int64(p.Nr)
	perfcount.AddFlops(n * 419)
	perfcount.AddVectorLoops(cols*72, n*72)
}

// derivColumnR runs the radial pass of column (j, k): every radial
// derivative over the shared input rows, seeding the operator
// accumulators with their radial metric terms, with the one-sided
// closures at the global radial boundaries re-deriving the two boundary
// entries. Each value matches the reference expression for the radial
// part of its operator; the radial flux-product stencils form their
// products v_r f_b in place.
func derivColumnR(pl *Panel, u *State, s *rhsRows, j, k int) {
	p := pl.Patch
	h, n := p.H, p.Nr
	c1 := 1 / (2 * p.Dr)
	c2 := 1 / (p.Dr * p.Dr)

	ppR := u.P.Row(j, k)
	frR := u.F.R.Row(j, k)
	ftR := u.F.T.Row(j, k)
	fpR := u.F.P.Row(j, k)
	gR := pl.DivV.Row(j, k)
	tR := pl.T.Row(j, k)
	vrR := pl.V.R.Row(j, k)
	vtR := pl.V.T.Row(j, k)
	vpR := pl.V.P.Row(j, k)

	dP := s.dPr[h:][:n]
	dF := s.dF[h:][:n]
	gD := s.gDr[h:][:n]
	lT := s.lT[h:][:n]
	v1r, v1t, v1p := s.vD1r[0][h:][:n], s.vD1r[1][h:][:n], s.vD1r[2][h:][:n]
	l0, l1, l2 := s.lap[0][h:][:n], s.lap[1][h:][:n], s.lap[2][h:][:n]
	a0, a1, a2 := s.adv[0][h:][:n], s.adv[1][h:][:n], s.adv[2][h:][:n]
	invr := p.InvR[h:][:n]

	pp, pm := ppR[h+1:][:n], ppR[h-1:][:n]
	fpw, fm, fc := frR[h+1:][:n], frR[h-1:][:n], frR[h:][:n]
	gp, gm := gR[h+1:][:n], gR[h-1:][:n]
	tp, tm, tc := tR[h+1:][:n], tR[h-1:][:n], tR[h:][:n]
	vrp, vrm, vrc := vrR[h+1:][:n], vrR[h-1:][:n], vrR[h:][:n]
	vtp, vtm, vtc := vtR[h+1:][:n], vtR[h-1:][:n], vtR[h:][:n]
	vpp, vpm, vpc := vpR[h+1:][:n], vpR[h-1:][:n], vpR[h:][:n]
	tfp, tfm, tfc := ftR[h+1:][:n], ftR[h-1:][:n], ftR[h:][:n]
	pfp, pfm, pfc := fpR[h+1:][:n], fpR[h-1:][:n], fpR[h:][:n]
	for i := 0; i < n; i++ {
		ir := invr[i]
		dP[i] = c1 * (pp[i] - pm[i])
		dF[i] = c1*(fpw[i]-fm[i]) + 2*fc[i]*ir
		gD[i] = c1 * (gp[i] - gm[i])
		ta, tb, t0 := tp[i], tm[i], tc[i]
		lT[i] = c2*(ta-2*t0+tb) + 2*ir*(c1*(ta-tb))
		va, vb, v0 := vrp[i], vrm[i], vrc[i]
		d1 := c1 * (va - vb)
		v1r[i] = d1
		l0[i] = c2*(va-2*v0+vb) + 2*ir*d1
		va, vb, v0 = vtp[i], vtm[i], vtc[i]
		d1 = c1 * (va - vb)
		v1t[i] = d1
		l1[i] = c2*(va-2*v0+vb) + 2*ir*d1
		va, vb, v0 = vpp[i], vpm[i], vpc[i]
		d1 = c1 * (va - vb)
		v1p[i] = d1
		l2[i] = c2*(va-2*v0+vb) + 2*ir*d1
		a0[i] = c1*((vrp[i]*fpw[i])-(vrm[i]*fm[i])) + 2*(vrc[i]*fc[i])*ir
		a1[i] = c1*((vrp[i]*tfp[i])-(vrm[i]*tfm[i])) + 2*(vrc[i]*tfc[i])*ir
		a2[i] = c1*((vrp[i]*pfp[i])-(vrm[i]*pfm[i])) + 2*(vrc[i]*pfc[i])*ir
	}

	if p.GlobalEdge(0) {
		i := h
		ir := p.InvR[i]
		s.dPr[i] = c1 * (-3*ppR[i] + 4*ppR[i+1] - ppR[i+2])
		s.dF[i] = c1*(-3*frR[i]+4*frR[i+1]-frR[i+2]) + 2*frR[i]*ir
		s.gDr[i] = c1 * (-3*gR[i] + 4*gR[i+1] - gR[i+2])
		s.lT[i] = c2*(tR[i]-2*tR[i+1]+tR[i+2]) +
			2*ir*(c1*(-3*tR[i]+4*tR[i+1]-tR[i+2]))
		vin := [3][]float64{vrR, vtR, vpR}
		for c, vv := range vin {
			d1 := c1 * (-3*vv[i] + 4*vv[i+1] - vv[i+2])
			s.vD1r[c][i] = d1
			s.lap[c][i] = c2*(vv[i]-2*vv[i+1]+vv[i+2]) + 2*ir*d1
		}
		fin := [3][]float64{frR, ftR, fpR}
		for c, ff := range fin {
			s.adv[c][i] = c1*(-3*(vrR[i]*ff[i])+4*(vrR[i+1]*ff[i+1])-(vrR[i+2]*ff[i+2])) +
				2*(vrR[i]*ff[i])*ir
		}
	}
	if p.GlobalEdge(1) {
		i := h + n - 1
		ir := p.InvR[i]
		s.dPr[i] = c1 * (3*ppR[i] - 4*ppR[i-1] + ppR[i-2])
		s.dF[i] = c1*(3*frR[i]-4*frR[i-1]+frR[i-2]) + 2*frR[i]*ir
		s.gDr[i] = c1 * (3*gR[i] - 4*gR[i-1] + gR[i-2])
		s.lT[i] = c2*(tR[i]-2*tR[i-1]+tR[i-2]) +
			2*ir*(c1*(3*tR[i]-4*tR[i-1]+tR[i-2]))
		vin := [3][]float64{vrR, vtR, vpR}
		for c, vv := range vin {
			d1 := c1 * (3*vv[i] - 4*vv[i-1] + vv[i-2])
			s.vD1r[c][i] = d1
			s.lap[c][i] = c2*(vv[i]-2*vv[i-1]+vv[i-2]) + 2*ir*d1
		}
		fin := [3][]float64{frR, ftR, fpR}
		for c, ff := range fin {
			s.adv[c][i] = c1*(3*(vrR[i]*ff[i])-4*(vrR[i-1]*ff[i-1])+(vrR[i-2]*ff[i-2])) +
				2*(vrR[i]*ff[i])*ir
		}
	}
}

// derivColumnT runs the colatitudinal pass of column (j, k): every
// theta derivative — the flux-product stencils form their neighbor
// products in place, each rounding exactly once as the reference's
// materialized product rows did — adding each operator's theta metric
// term to its accumulator. One boundary classification covers all
// fields.
func derivColumnT(pl *Panel, u *State, s *rhsRows, j, k int) {
	p := pl.Patch
	h, n := p.H, p.Nr
	c1 := 1 / (2 * p.Dt)
	c2 := 1 / (p.Dt * p.Dt)
	lo, hi := p.GlobalEdge(2), p.GlobalEdge(3)
	cot := p.CotT[j]

	dP := s.dPt[h:][:n]
	dF := s.dF[h:][:n]
	gD := s.gDt[h:][:n]
	lT := s.lT[h:][:n]
	v1r, v1t, v1p := s.vD1t[0][h:][:n], s.vD1t[1][h:][:n], s.vD1t[2][h:][:n]
	l0, l1, l2 := s.lap[0][h:][:n], s.lap[1][h:][:n], s.lap[2][h:][:n]
	a0, a1, a2 := s.adv[0][h:][:n], s.adv[1][h:][:n], s.adv[2][h:][:n]
	invr := p.InvR[h:][:n]
	invr2 := p.InvR2[h:][:n]

	w := func(sc *field.Scalar, jj int) []float64 { return sc.Row(jj, k)[h:][:n] }
	switch {
	case lo && j == h:
		p0, p1, p2 := w(u.P, j), w(u.P, j+1), w(u.P, j+2)
		f0, f1, f2 := w(u.F.T, j), w(u.F.T, j+1), w(u.F.T, j+2)
		g0, g1, g2 := w(pl.DivV, j), w(pl.DivV, j+1), w(pl.DivV, j+2)
		t0, ta, tb := w(pl.T, j), w(pl.T, j+1), w(pl.T, j+2)
		vr0, vr1, vr2 := w(pl.V.R, j), w(pl.V.R, j+1), w(pl.V.R, j+2)
		vt0, vt1, vt2 := w(pl.V.T, j), w(pl.V.T, j+1), w(pl.V.T, j+2)
		vp0, vp1, vp2 := w(pl.V.P, j), w(pl.V.P, j+1), w(pl.V.P, j+2)
		fr0, fr1, fr2 := w(u.F.R, j), w(u.F.R, j+1), w(u.F.R, j+2)
		fp0, fp1, fp2 := w(u.F.P, j), w(u.F.P, j+1), w(u.F.P, j+2)
		for i := 0; i < n; i++ {
			ir := invr[i]
			ir2 := invr2[i]
			dP[i] = c1 * (-3*p0[i] + 4*p1[i] - p2[i])
			dF[i] += ir * ((c1 * (-3*f0[i] + 4*f1[i] - f2[i])) + cot*f0[i])
			gD[i] = c1 * (-3*g0[i] + 4*g1[i] - g2[i])
			lT[i] += ir2 * ((c2 * (t0[i] - 2*ta[i] + tb[i])) +
				cot*(c1*(-3*t0[i]+4*ta[i]-tb[i])))
			d1 := c1 * (-3*vr0[i] + 4*vr1[i] - vr2[i])
			v1r[i] = d1
			l0[i] += ir2 * ((c2 * (vr0[i] - 2*vr1[i] + vr2[i])) + cot*d1)
			d1 = c1 * (-3*vt0[i] + 4*vt1[i] - vt2[i])
			v1t[i] = d1
			l1[i] += ir2 * ((c2 * (vt0[i] - 2*vt1[i] + vt2[i])) + cot*d1)
			d1 = c1 * (-3*vp0[i] + 4*vp1[i] - vp2[i])
			v1p[i] = d1
			l2[i] += ir2 * ((c2 * (vp0[i] - 2*vp1[i] + vp2[i])) + cot*d1)
			a0[i] += ir * ((c1 * (-3*(vt0[i]*fr0[i]) + 4*(vt1[i]*fr1[i]) - (vt2[i] * fr2[i]))) + cot*(vt0[i]*fr0[i]))
			a1[i] += ir * ((c1 * (-3*(vt0[i]*f0[i]) + 4*(vt1[i]*f1[i]) - (vt2[i] * f2[i]))) + cot*(vt0[i]*f0[i]))
			a2[i] += ir * ((c1 * (-3*(vt0[i]*fp0[i]) + 4*(vt1[i]*fp1[i]) - (vt2[i] * fp2[i]))) + cot*(vt0[i]*fp0[i]))
		}
	case hi && j == h+p.Nt-1:
		p0, p1, p2 := w(u.P, j), w(u.P, j-1), w(u.P, j-2)
		f0, f1, f2 := w(u.F.T, j), w(u.F.T, j-1), w(u.F.T, j-2)
		g0, g1, g2 := w(pl.DivV, j), w(pl.DivV, j-1), w(pl.DivV, j-2)
		t0, ta, tb := w(pl.T, j), w(pl.T, j-1), w(pl.T, j-2)
		vr0, vr1, vr2 := w(pl.V.R, j), w(pl.V.R, j-1), w(pl.V.R, j-2)
		vt0, vt1, vt2 := w(pl.V.T, j), w(pl.V.T, j-1), w(pl.V.T, j-2)
		vp0, vp1, vp2 := w(pl.V.P, j), w(pl.V.P, j-1), w(pl.V.P, j-2)
		fr0, fr1, fr2 := w(u.F.R, j), w(u.F.R, j-1), w(u.F.R, j-2)
		fp0, fp1, fp2 := w(u.F.P, j), w(u.F.P, j-1), w(u.F.P, j-2)
		for i := 0; i < n; i++ {
			ir := invr[i]
			ir2 := invr2[i]
			dP[i] = c1 * (3*p0[i] - 4*p1[i] + p2[i])
			dF[i] += ir * ((c1 * (3*f0[i] - 4*f1[i] + f2[i])) + cot*f0[i])
			gD[i] = c1 * (3*g0[i] - 4*g1[i] + g2[i])
			lT[i] += ir2 * ((c2 * (t0[i] - 2*ta[i] + tb[i])) +
				cot*(c1*(3*t0[i]-4*ta[i]+tb[i])))
			d1 := c1 * (3*vr0[i] - 4*vr1[i] + vr2[i])
			v1r[i] = d1
			l0[i] += ir2 * ((c2 * (vr0[i] - 2*vr1[i] + vr2[i])) + cot*d1)
			d1 = c1 * (3*vt0[i] - 4*vt1[i] + vt2[i])
			v1t[i] = d1
			l1[i] += ir2 * ((c2 * (vt0[i] - 2*vt1[i] + vt2[i])) + cot*d1)
			d1 = c1 * (3*vp0[i] - 4*vp1[i] + vp2[i])
			v1p[i] = d1
			l2[i] += ir2 * ((c2 * (vp0[i] - 2*vp1[i] + vp2[i])) + cot*d1)
			a0[i] += ir * ((c1 * (3*(vt0[i]*fr0[i]) - 4*(vt1[i]*fr1[i]) + (vt2[i] * fr2[i]))) + cot*(vt0[i]*fr0[i]))
			a1[i] += ir * ((c1 * (3*(vt0[i]*f0[i]) - 4*(vt1[i]*f1[i]) + (vt2[i] * f2[i]))) + cot*(vt0[i]*f0[i]))
			a2[i] += ir * ((c1 * (3*(vt0[i]*fp0[i]) - 4*(vt1[i]*fp1[i]) + (vt2[i] * fp2[i]))) + cot*(vt0[i]*fp0[i]))
		}
	default:
		pp, pm := w(u.P, j+1), w(u.P, j-1)
		fpw, fm, fc := w(u.F.T, j+1), w(u.F.T, j-1), w(u.F.T, j)
		gp, gm := w(pl.DivV, j+1), w(pl.DivV, j-1)
		tp, tm, tc := w(pl.T, j+1), w(pl.T, j-1), w(pl.T, j)
		vrp, vrm, vrc := w(pl.V.R, j+1), w(pl.V.R, j-1), w(pl.V.R, j)
		vtp, vtm, vtc := w(pl.V.T, j+1), w(pl.V.T, j-1), w(pl.V.T, j)
		vpp, vpm, vpc := w(pl.V.P, j+1), w(pl.V.P, j-1), w(pl.V.P, j)
		frp, frm, frc := w(u.F.R, j+1), w(u.F.R, j-1), w(u.F.R, j)
		fpp, fpm, fpc := w(u.F.P, j+1), w(u.F.P, j-1), w(u.F.P, j)
		for i := 0; i < n; i++ {
			ir := invr[i]
			ir2 := invr2[i]
			dP[i] = c1 * (pp[i] - pm[i])
			dF[i] += ir * ((c1 * (fpw[i] - fm[i])) + cot*fc[i])
			gD[i] = c1 * (gp[i] - gm[i])
			ta, tb, t0 := tp[i], tm[i], tc[i]
			lT[i] += ir2 * ((c2 * (ta - 2*t0 + tb)) + cot*(c1*(ta-tb)))
			va, vb, v0 := vrp[i], vrm[i], vrc[i]
			d1 := c1 * (va - vb)
			v1r[i] = d1
			l0[i] += ir2 * ((c2 * (va - 2*v0 + vb)) + cot*d1)
			va, vb, v0 = vtp[i], vtm[i], vtc[i]
			d1 = c1 * (va - vb)
			v1t[i] = d1
			l1[i] += ir2 * ((c2 * (va - 2*v0 + vb)) + cot*d1)
			va, vb, v0 = vpp[i], vpm[i], vpc[i]
			d1 = c1 * (va - vb)
			v1p[i] = d1
			l2[i] += ir2 * ((c2 * (va - 2*v0 + vb)) + cot*d1)
			a0[i] += ir * ((c1 * ((vtp[i] * frp[i]) - (vtm[i] * frm[i]))) + cot*(vtc[i]*frc[i]))
			a1[i] += ir * ((c1 * ((vtp[i] * fpw[i]) - (vtm[i] * fm[i]))) + cot*(vtc[i]*fc[i]))
			a2[i] += ir * ((c1 * ((vtp[i] * fpp[i]) - (vtm[i] * fpm[i]))) + cot*(vtc[i]*fpc[i]))
		}
	}
}

// derivColumnP runs the azimuthal pass of column (j, k), same structure
// as derivColumnT with the roles of j and k swapped, no first
// temperature derivative (lap T needs only the second), and the phi
// metric factors ir*ist / ir2*ist*ist.
func derivColumnP(pl *Panel, u *State, s *rhsRows, j, k int) {
	p := pl.Patch
	h, n := p.H, p.Nr
	c1 := 1 / (2 * p.Dp)
	c2 := 1 / (p.Dp * p.Dp)
	lo, hi := p.GlobalEdge(4), p.GlobalEdge(5)
	ist := p.InvSinT[j]

	dP := s.dPp[h:][:n]
	dF := s.dF[h:][:n]
	gD := s.gDp[h:][:n]
	lT := s.lT[h:][:n]
	v1r, v1t, v1p := s.vD1p[0][h:][:n], s.vD1p[1][h:][:n], s.vD1p[2][h:][:n]
	l0, l1, l2 := s.lap[0][h:][:n], s.lap[1][h:][:n], s.lap[2][h:][:n]
	a0, a1, a2 := s.adv[0][h:][:n], s.adv[1][h:][:n], s.adv[2][h:][:n]
	invr := p.InvR[h:][:n]
	invr2 := p.InvR2[h:][:n]

	w := func(sc *field.Scalar, kk int) []float64 { return sc.Row(j, kk)[h:][:n] }
	switch {
	case lo && k == h:
		p0, p1, p2 := w(u.P, k), w(u.P, k+1), w(u.P, k+2)
		f0, f1, f2 := w(u.F.P, k), w(u.F.P, k+1), w(u.F.P, k+2)
		g0, g1, g2 := w(pl.DivV, k), w(pl.DivV, k+1), w(pl.DivV, k+2)
		t0, ta, tb := w(pl.T, k), w(pl.T, k+1), w(pl.T, k+2)
		vr0, vr1, vr2 := w(pl.V.R, k), w(pl.V.R, k+1), w(pl.V.R, k+2)
		vt0, vt1, vt2 := w(pl.V.T, k), w(pl.V.T, k+1), w(pl.V.T, k+2)
		vp0, vp1, vp2 := w(pl.V.P, k), w(pl.V.P, k+1), w(pl.V.P, k+2)
		fr0, fr1, fr2 := w(u.F.R, k), w(u.F.R, k+1), w(u.F.R, k+2)
		ft0, ft1, ft2 := w(u.F.T, k), w(u.F.T, k+1), w(u.F.T, k+2)
		for i := 0; i < n; i++ {
			ir := invr[i]
			ir2 := invr2[i]
			dP[i] = c1 * (-3*p0[i] + 4*p1[i] - p2[i])
			dF[i] += ir * ist * (c1 * (-3*f0[i] + 4*f1[i] - f2[i]))
			gD[i] = c1 * (-3*g0[i] + 4*g1[i] - g2[i])
			lT[i] += ir2 * ist * ist * (c2 * (t0[i] - 2*ta[i] + tb[i]))
			d1 := c1 * (-3*vr0[i] + 4*vr1[i] - vr2[i])
			v1r[i] = d1
			l0[i] += ir2 * ist * ist * (c2 * (vr0[i] - 2*vr1[i] + vr2[i]))
			d1 = c1 * (-3*vt0[i] + 4*vt1[i] - vt2[i])
			v1t[i] = d1
			l1[i] += ir2 * ist * ist * (c2 * (vt0[i] - 2*vt1[i] + vt2[i]))
			d1 = c1 * (-3*vp0[i] + 4*vp1[i] - vp2[i])
			v1p[i] = d1
			l2[i] += ir2 * ist * ist * (c2 * (vp0[i] - 2*vp1[i] + vp2[i]))
			a0[i] += ir * ist * (c1 * (-3*(vp0[i]*fr0[i]) + 4*(vp1[i]*fr1[i]) - (vp2[i] * fr2[i])))
			a1[i] += ir * ist * (c1 * (-3*(vp0[i]*ft0[i]) + 4*(vp1[i]*ft1[i]) - (vp2[i] * ft2[i])))
			a2[i] += ir * ist * (c1 * (-3*(vp0[i]*f0[i]) + 4*(vp1[i]*f1[i]) - (vp2[i] * f2[i])))
		}
	case hi && k == h+p.Np-1:
		p0, p1, p2 := w(u.P, k), w(u.P, k-1), w(u.P, k-2)
		f0, f1, f2 := w(u.F.P, k), w(u.F.P, k-1), w(u.F.P, k-2)
		g0, g1, g2 := w(pl.DivV, k), w(pl.DivV, k-1), w(pl.DivV, k-2)
		t0, ta, tb := w(pl.T, k), w(pl.T, k-1), w(pl.T, k-2)
		vr0, vr1, vr2 := w(pl.V.R, k), w(pl.V.R, k-1), w(pl.V.R, k-2)
		vt0, vt1, vt2 := w(pl.V.T, k), w(pl.V.T, k-1), w(pl.V.T, k-2)
		vp0, vp1, vp2 := w(pl.V.P, k), w(pl.V.P, k-1), w(pl.V.P, k-2)
		fr0, fr1, fr2 := w(u.F.R, k), w(u.F.R, k-1), w(u.F.R, k-2)
		ft0, ft1, ft2 := w(u.F.T, k), w(u.F.T, k-1), w(u.F.T, k-2)
		for i := 0; i < n; i++ {
			ir := invr[i]
			ir2 := invr2[i]
			dP[i] = c1 * (3*p0[i] - 4*p1[i] + p2[i])
			dF[i] += ir * ist * (c1 * (3*f0[i] - 4*f1[i] + f2[i]))
			gD[i] = c1 * (3*g0[i] - 4*g1[i] + g2[i])
			lT[i] += ir2 * ist * ist * (c2 * (t0[i] - 2*ta[i] + tb[i]))
			d1 := c1 * (3*vr0[i] - 4*vr1[i] + vr2[i])
			v1r[i] = d1
			l0[i] += ir2 * ist * ist * (c2 * (vr0[i] - 2*vr1[i] + vr2[i]))
			d1 = c1 * (3*vt0[i] - 4*vt1[i] + vt2[i])
			v1t[i] = d1
			l1[i] += ir2 * ist * ist * (c2 * (vt0[i] - 2*vt1[i] + vt2[i]))
			d1 = c1 * (3*vp0[i] - 4*vp1[i] + vp2[i])
			v1p[i] = d1
			l2[i] += ir2 * ist * ist * (c2 * (vp0[i] - 2*vp1[i] + vp2[i]))
			a0[i] += ir * ist * (c1 * (3*(vp0[i]*fr0[i]) - 4*(vp1[i]*fr1[i]) + (vp2[i] * fr2[i])))
			a1[i] += ir * ist * (c1 * (3*(vp0[i]*ft0[i]) - 4*(vp1[i]*ft1[i]) + (vp2[i] * ft2[i])))
			a2[i] += ir * ist * (c1 * (3*(vp0[i]*f0[i]) - 4*(vp1[i]*f1[i]) + (vp2[i] * f2[i])))
		}
	default:
		pp, pm := w(u.P, k+1), w(u.P, k-1)
		fpw, fm := w(u.F.P, k+1), w(u.F.P, k-1)
		gp, gm := w(pl.DivV, k+1), w(pl.DivV, k-1)
		tp, tm, tc := w(pl.T, k+1), w(pl.T, k-1), w(pl.T, k)
		vrp, vrm, vrc := w(pl.V.R, k+1), w(pl.V.R, k-1), w(pl.V.R, k)
		vtp, vtm, vtc := w(pl.V.T, k+1), w(pl.V.T, k-1), w(pl.V.T, k)
		vpp, vpm, vpc := w(pl.V.P, k+1), w(pl.V.P, k-1), w(pl.V.P, k)
		frp, frm := w(u.F.R, k+1), w(u.F.R, k-1)
		ftp, ftm := w(u.F.T, k+1), w(u.F.T, k-1)
		for i := 0; i < n; i++ {
			ir := invr[i]
			ir2 := invr2[i]
			dP[i] = c1 * (pp[i] - pm[i])
			dF[i] += ir * ist * (c1 * (fpw[i] - fm[i]))
			gD[i] = c1 * (gp[i] - gm[i])
			ta, tb, t0 := tp[i], tm[i], tc[i]
			lT[i] += ir2 * ist * ist * (c2 * (ta - 2*t0 + tb))
			va, vb, v0 := vrp[i], vrm[i], vrc[i]
			d1 := c1 * (va - vb)
			v1r[i] = d1
			l0[i] += ir2 * ist * ist * (c2 * (va - 2*v0 + vb))
			va, vb, v0 = vtp[i], vtm[i], vtc[i]
			d1 = c1 * (va - vb)
			v1t[i] = d1
			l1[i] += ir2 * ist * ist * (c2 * (va - 2*v0 + vb))
			va, vb, v0 = vpp[i], vpm[i], vpc[i]
			d1 = c1 * (va - vb)
			v1p[i] = d1
			l2[i] += ir2 * ist * ist * (c2 * (va - 2*v0 + vb))
			a0[i] += ir * ist * (c1 * ((vpp[i] * frp[i]) - (vpm[i] * frm[i])))
			a1[i] += ir * ist * (c1 * ((vpp[i] * ftp[i]) - (vpm[i] * ftm[i])))
			a2[i] += ir * ist * (c1 * ((vpp[i] * fpw[i]) - (vpm[i] * fm[i])))
		}
	}
}

// fusedRHSColumn evaluates the full fused update for one (j, k) column:
// the flux-product rows, three direction passes building every
// derivative row and directional operator accumulation over shared
// inputs, then one loop producing all eight outputs with every
// remaining intermediate in registers. Every arithmetic statement
// mirrors its full-field counterpart in ops.go / advect.go /
// rhs_reference.go, preserving rounding order; register-held float64s
// round identically to stored ones on every supported target.
func fusedRHSColumn(pl *Panel, prm Params, u, out *State, s *rhsRows, j, k int) {
	p := pl.Patch
	h := p.H
	nr := p.Nr
	cot := p.CotT[j]
	ist := p.InvSinT[j]
	m := p.InvSinT[j]

	vr := pl.V.R.Row(j, k)
	vt := pl.V.T.Row(j, k)
	vp := pl.V.P.Row(j, k)
	fr := u.F.R.Row(j, k)
	ft := u.F.T.Row(j, k)
	fp := u.F.P.Row(j, k)

	// All derivative rows and directional accumulations, one pass per
	// direction (the += order is radial, theta, phi — the reference's
	// term order). The momentum-flux stencils form their products
	// v_a f_b in place, each rounding exactly once — bit-identical to
	// differencing the reference's materialized product arrays.
	derivColumnR(pl, u, s, j, k)
	derivColumnT(pl, u, s, j, k)
	derivColumnP(pl, u, s, j, k)

	// The final loop: strain, curvature/Christoffel corrections, and
	// the update equations. All rows are re-sliced to length-tied
	// windows at the padded offset so the compiler drops bounds checks;
	// window index i is padded index h+i everywhere.
	w := func(r []float64) []float64 { return r[h:][:nr] }
	invr := w(p.InvR)
	invr2 := w(p.InvR2)
	vrw, vtw, vpw := w(vr), w(vt), w(vp)
	frw, ftw, fpw := w(fr), w(ft), w(fp)

	dPrw, dPtw, dPpw := w(s.dPr), w(s.dPt), w(s.dPp)
	dFw, lTw := w(s.dF), w(s.lT)
	drvr, dtvr, dpvr := w(s.vD1r[0]), w(s.vD1t[0]), w(s.vD1p[0])
	drvt, dtvt, dpvt := w(s.vD1r[1]), w(s.vD1t[1]), w(s.vD1p[1])
	drvp, dtvp, dpvp := w(s.vD1r[2]), w(s.vD1t[2]), w(s.vD1p[2])
	lap0, lap1, lap2 := w(s.lap[0]), w(s.lap[1]), w(s.lap[2])
	adv0, adv1, adv2 := w(s.adv[0]), w(s.adv[1]), w(s.adv[2])
	gDrw, gDtw, gDpw := w(s.gDr), w(s.gDt), w(s.gDp)

	gamma, mu, kappa, eta, g0 := prm.Gamma, prm.Mu, prm.Kappa, prm.Eta, prm.G0
	_, ntP, _ := p.Padded()
	idx := k*ntP + j
	omR, omT, omP := pl.OmR[idx], pl.OmT[idx], pl.OmP[idx]
	cost := p.CosT[j]
	ist2 := ist * ist

	rho := w(u.Rho.Row(j, k))
	pp := w(u.P.Row(j, k))
	br := w(pl.B.R.Row(j, k))
	bt := w(pl.B.T.Row(j, k))
	bp := w(pl.B.P.Row(j, k))
	jr := w(pl.J.R.Row(j, k))
	jt := w(pl.J.T.Row(j, k))
	jp := w(pl.J.P.Row(j, k))
	dV := w(pl.DivV.Row(j, k))

	oRho := w(out.Rho.Row(j, k))
	oP := w(out.P.Row(j, k))
	oFr := w(out.F.R.Row(j, k))
	oFt := w(out.F.T.Row(j, k))
	oFp := w(out.F.P.Row(j, k))
	oAr := w(out.A.R.Row(j, k))
	oAt := w(out.A.T.Row(j, k))
	oAp := w(out.A.P.Row(j, k))

	for i := 0; i < nr; i++ {
		ir := invr[i]
		ir2 := invr2[i]

		// v.grad p (sphops.VDotGrad) and grad p (sphops.Grad).
		vg := vrw[i]*dPrw[i] + vtw[i]*ir*dPtw[i] + vpw[i]*ir*ist*dPpw[i]
		gpR := dPrw[i]
		gpT := dPtw[i] * ir
		gpP := dPpw[i] * (ir * m)

		// Strain dissipation S (sphops.StrainSquared).
		err := drvr[i]
		ett := ir*dtvt[i] + vrw[i]*ir
		epp := ir*ist*dpvp[i] + vrw[i]*ir + cot*vtw[i]*ir
		ert := 0.5 * (ir*dtvr[i] + drvt[i] - vtw[i]*ir)
		erp := 0.5 * (ir*ist*dpvr[i] + drvp[i] - vpw[i]*ir)
		etp := 0.5 * (ir*ist*dpvt[i] + ir*dtvp[i] - cot*vpw[i]*ir)
		sDiv := err + ett + epp
		st := err*err + ett*ett + epp*epp +
			2*(ert*ert+erp*erp+etp*etp) - sDiv*sDiv/3

		// Tensor-divergence Christoffel terms (sphops.DivTensorVF).
		advR := adv0[i]
		advR -= (vtw[i]*ftw[i] + vpw[i]*fpw[i]) * ir
		advT := adv1[i]
		advT += (vtw[i]*frw[i] - cot*vpw[i]*fpw[i]) * ir
		advP := adv2[i]
		advP += (vpw[i]*frw[i] + cot*vpw[i]*ftw[i]) * ir

		// Vector-Laplacian curvature coupling (sphops.LapVector).
		lapR := lap0[i]
		lapT := lap1[i]
		lapP := lap2[i]
		lapR -= 2 * ir2 * (vrw[i] + dtvt[i] + cot*vtw[i] + ist*dpvp[i])
		lapT += ir2 * (2*dtvr[i] - ist2*vtw[i] - 2*cost*ist2*dpvp[i])
		lapP += ir2 * (2*ist*dpvr[i] + 2*cost*ist2*dpvt[i] - ist2*vpw[i])

		// grad(div v) (sphops.Grad on pl.DivV).
		gdvR := gDrw[i]
		gdvT := gDtw[i] * ir
		gdvP := gDpw[i] * (ir * m)

		// Continuity, eq. (2).
		oRho[i] = -dFw[i]

		// Lorentz force j x B.
		fLr := jt[i]*bp[i] - jp[i]*bt[i]
		fLt := jp[i]*br[i] - jr[i]*bp[i]
		fLp := jr[i]*bt[i] - jt[i]*br[i]

		// Gravity (radial) and Coriolis 2 rho v x Omega.
		gR := -g0 * ir2
		corR := 2 * rho[i] * (vtw[i]*omP - vpw[i]*omT)
		corT := 2 * rho[i] * (vpw[i]*omR - vrw[i]*omP)
		corP := 2 * rho[i] * (vrw[i]*omT - vtw[i]*omR)

		// Momentum, eq. (3).
		oFr[i] = -advR - gpR + fLr + rho[i]*gR + corR +
			mu*(lapR+gdvR/3)
		oFt[i] = -advT - gpT + fLt + corT +
			mu*(lapT+gdvT/3)
		oFp[i] = -advP - gpP + fLp + corP +
			mu*(lapP+gdvP/3)

		// Pressure, eq. (4).
		jsq := jr[i]*jr[i] + jt[i]*jt[i] + jp[i]*jp[i]
		oP[i] = -vg - gamma*pp[i]*dV[i] +
			(gamma-1)*(kappa*lTw[i]+eta*jsq+2*mu*st)

		// Induction, eq. (5): dA/dt = -E = v x B - eta j.
		oAr[i] = vtw[i]*bp[i] - vpw[i]*bt[i] - eta*jr[i]
		oAt[i] = vpw[i]*br[i] - vrw[i]*bp[i] - eta*jt[i]
		oAp[i] = vrw[i]*bt[i] - vtw[i]*br[i] - eta*jp[i]
	}
}
