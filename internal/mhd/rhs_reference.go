package mhd

import (
	"repro/internal/field"
	"repro/internal/perfcount"
	"repro/internal/sphops"
)

// FinishRHSReference is the unfused right-hand-side evaluation: one
// full-field sphops sweep per operator, exactly as FinishRHS was written
// before the kernels were fused. It is kept (a) as the oracle the fusion
// equivalence suite (rhs_reference_test.go) pins FinishRHS against,
// bit for bit, and (b) as the baseline row yybench measures the fusion
// speedup from. It must not be edited except in lockstep with a
// deliberate re-derivation of the fused kernel.
func FinishRHSReference(pl *Panel, prm Params, u, out *State, sync func(fs ...*field.Scalar)) {
	p := pl.Patch
	w := pl.W
	h := p.H

	// Current density j = curl B.
	sphops.Curl(p, pl.B, pl.J, w)

	// Scratch fields.
	divF := w.Get()
	divV := w.Get()
	vgp := w.Get()
	lapT := w.Get()
	strain := w.Get()
	defer w.Put(divF, divV, vgp, lapT, strain)

	sphops.Div(p, u.F, divF, w)
	sphops.Div(p, pl.V, divV, w)
	sphops.VDotGrad(p, pl.V, u.P, vgp, w)
	sphops.LapScalar(p, pl.T, lapT, w)
	sphops.StrainSquared(p, pl.V, strain, w)

	sphops.DivTensorVF(p, pl.V, u.F, pl.adv, w)
	sphops.Grad(p, u.P, pl.gp, w)
	sphops.LapVector(p, pl.V, pl.lap, w)
	if sync != nil {
		sync(divV)
	}
	sphops.Grad(p, divV, pl.gdv, w)

	gamma, mu, kappa, eta, g0 := prm.Gamma, prm.Mu, prm.Kappa, prm.Eta, prm.G0
	_, ntP, _ := p.Padded()

	// The final update loop, range-split over phi: every k writes only
	// its own rows of out, so the parallel form is bit-identical.
	p.Par.For(p.Np, func(klo, khi int) {
		for k := h + klo; k < h+khi; k++ {
			for j := h; j < h+p.Nt; j++ {
				idx := k*ntP + j
				omR, omT, omP := pl.OmR[idx], pl.OmT[idx], pl.OmP[idx]

				rho := u.Rho.Row(j, k)
				pp := u.P.Row(j, k)
				vr := pl.V.R.Row(j, k)
				vt := pl.V.T.Row(j, k)
				vp := pl.V.P.Row(j, k)
				br := pl.B.R.Row(j, k)
				bt := pl.B.T.Row(j, k)
				bp := pl.B.P.Row(j, k)
				jr := pl.J.R.Row(j, k)
				jt := pl.J.T.Row(j, k)
				jp := pl.J.P.Row(j, k)

				oRho := out.Rho.Row(j, k)
				oP := out.P.Row(j, k)
				oFr := out.F.R.Row(j, k)
				oFt := out.F.T.Row(j, k)
				oFp := out.F.P.Row(j, k)
				oAr := out.A.R.Row(j, k)
				oAt := out.A.T.Row(j, k)
				oAp := out.A.P.Row(j, k)

				dF := divF.Row(j, k)
				dV := divV.Row(j, k)
				vg := vgp.Row(j, k)
				lT := lapT.Row(j, k)
				st := strain.Row(j, k)
				advR := pl.adv.R.Row(j, k)
				advT := pl.adv.T.Row(j, k)
				advP := pl.adv.P.Row(j, k)
				gpR := pl.gp.R.Row(j, k)
				gpT := pl.gp.T.Row(j, k)
				gpP := pl.gp.P.Row(j, k)
				lapR := pl.lap.R.Row(j, k)
				lapTc := pl.lap.T.Row(j, k)
				lapP := pl.lap.P.Row(j, k)
				gdvR := pl.gdv.R.Row(j, k)
				gdvT := pl.gdv.T.Row(j, k)
				gdvP := pl.gdv.P.Row(j, k)

				for i := h; i < h+p.Nr; i++ {
					// Continuity, eq. (2).
					oRho[i] = -dF[i]

					// Lorentz force j x B.
					fLr := jt[i]*bp[i] - jp[i]*bt[i]
					fLt := jp[i]*br[i] - jr[i]*bp[i]
					fLp := jr[i]*bt[i] - jt[i]*br[i]

					// Gravity (radial) and Coriolis 2 rho v x Omega.
					gR := -g0 * p.InvR2[i]
					corR := 2 * rho[i] * (vt[i]*omP - vp[i]*omT)
					corT := 2 * rho[i] * (vp[i]*omR - vr[i]*omP)
					corP := 2 * rho[i] * (vr[i]*omT - vt[i]*omR)

					// Momentum, eq. (3).
					oFr[i] = -advR[i] - gpR[i] + fLr + rho[i]*gR + corR +
						mu*(lapR[i]+gdvR[i]/3)
					oFt[i] = -advT[i] - gpT[i] + fLt + corT +
						mu*(lapTc[i]+gdvT[i]/3)
					oFp[i] = -advP[i] - gpP[i] + fLp + corP +
						mu*(lapP[i]+gdvP[i]/3)

					// Pressure, eq. (4).
					jsq := jr[i]*jr[i] + jt[i]*jt[i] + jp[i]*jp[i]
					oP[i] = -vg[i] - gamma*pp[i]*dV[i] +
						(gamma-1)*(kappa*lT[i]+eta*jsq+2*mu*st[i])

					// Induction, eq. (5): dA/dt = -E = v x B - eta j.
					oAr[i] = vt[i]*bp[i] - vp[i]*bt[i] - eta*jr[i]
					oAt[i] = vp[i]*br[i] - vr[i]*bp[i] - eta*jt[i]
					oAp[i] = vr[i]*bt[i] - vt[i]*br[i] - eta*jp[i]
				}
			}
		}
	})
	n := int64(p.Nr) * int64(p.Nt) * int64(p.Np)
	perfcount.AddFlops(n * 70)
	perfcount.AddVectorLoops(int64(p.Nt)*int64(p.Np), n)
}
