package mhd

import (
	"testing"

	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/par"
)

// pseudoVal is a deterministic splitmix64-style hash of (field id, node
// index) mapped to [-0.5, 0.5): dense, reproducible, panel-agnostic
// pseudo-data with no symmetry the kernels could accidentally exploit.
func pseudoVal(fid, n uint64) float64 {
	z := fid*0x9e3779b97f4a7c15 + n*0xd1342543de82ef95 + 0x94d049bb133111eb
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11)/float64(1<<53) - 0.5
}

// fillPanelPseudo fills every input FinishRHS reads — the state u and
// the precomputed subsidiary fields V, T, B — over the full padded
// arrays with deterministic pseudo-data. Rho and T are offset away from
// zero as in any physical state.
func fillPanelPseudo(pl *Panel, u *State, seed uint64) {
	fields := []*field.Scalar{
		u.Rho, u.P, u.F.R, u.F.T, u.F.P, u.A.R, u.A.T, u.A.P,
		pl.V.R, pl.V.T, pl.V.P, pl.T,
		pl.B.R, pl.B.T, pl.B.P,
	}
	for fi, f := range fields {
		off := 0.0
		if f == u.Rho || f == pl.T {
			off = 1.0
		}
		for n := range f.Data {
			f.Data[n] = off + pseudoVal(seed+uint64(fi), uint64(n))
		}
	}
}

// pseudoSync plays the role of the decomposed aux halo exchange for a
// stand-alone panel: it overwrites every non-owned (halo) node of the
// synced fields with deterministic pseudo-data. Both the fused and the
// reference evaluation sync through it, so their rim stencils read
// identical "exchanged" halo values — exactly the contract the real
// exchange provides.
func pseudoSync(p *grid.Patch) func(fs ...*field.Scalar) {
	return func(fs ...*field.Scalar) {
		h := p.H
		nrP, ntP, npP := p.Padded()
		for fi, f := range fs {
			for k := 0; k < npP; k++ {
				for j := 0; j < ntP; j++ {
					for i := 0; i < nrP; i++ {
						owned := i >= h && i < h+p.Nr &&
							j >= h && j < h+p.Nt &&
							k >= h && k < h+p.Np
						if owned {
							continue
						}
						n := (k*ntP+j)*nrP + i
						f.Data[n] = pseudoVal(0xA0B1+uint64(fi), uint64(n))
					}
				}
			}
		}
	}
}

// TestFusedRHSBitIdentical pins the tentpole contract of the kernel
// fusion: FinishRHS (the fused three-phase evaluation) produces bitwise
// the same right-hand side as FinishRHSReference (the unfused sweep
// sequence it replaced), across panel kinds, boundary placements
// (all-global-edge full panels, interior blocks whose four angular sides
// are all seams, corner blocks mixing one-sided closures and seams, and
// the phi-strip shape the real decomposition produces), and
// serial/pooled execution.
func TestFusedRHSBitIdentical(t *testing.T) {
	spec := grid.NewSpec(9, 9)
	cases := []struct {
		name string
		mk   func() *grid.Patch
	}{
		{"yin-full-panel", func() *grid.Patch {
			return grid.NewPatch(spec, grid.Yin, 1)
		}},
		{"yang-full-panel", func() *grid.Patch {
			return grid.NewPatch(spec, grid.Yang, 1)
		}},
		{"interior-block-all-seams", func() *grid.Patch {
			return grid.NewSubPatch(spec, grid.Yin, 1, 0, spec.Nr, 2, 7, 8, 18)
		}},
		{"corner-block-mixed", func() *grid.Patch {
			return grid.NewSubPatch(spec, grid.Yang, 1, 0, spec.Nr, 0, 5, 0, 13)
		}},
		{"phi-strip-decomposed", func() *grid.Patch {
			return grid.NewSubPatch(spec, grid.Yin, 1, 0, spec.Nr, 0, spec.Nt, 12, spec.Np)
		}},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 3} {
			name := tc.name + "-serial"
			if workers > 1 {
				name = tc.name + "-pooled"
			}
			t.Run(name, func(t *testing.T) {
				p := tc.mk()
				if workers > 1 {
					pool := par.NewPool(workers)
					defer pool.Close()
					p.Par = pool
				}
				pl := NewPanel(p, Default().Omega)
				u := NewState(p.Shape)
				fillPanelPseudo(pl, &u, 17)

				var sync func(fs ...*field.Scalar)
				seamed := !p.GlobalEdge(2) || !p.GlobalEdge(3) ||
					!p.GlobalEdge(4) || !p.GlobalEdge(5)
				if seamed {
					sync = pseudoSync(p)
				}

				ref := NewState(p.Shape)
				fused := NewState(p.Shape)
				FinishRHSReference(pl, Default(), &u, &ref, sync)
				FinishRHS(pl, Default(), &u, &fused, sync)

				h := p.H
				for vi, rf := range ref.Scalars() {
					ff := fused.Scalars()[vi]
					for k := h; k < h+p.Np; k++ {
						for j := h; j < h+p.Nt; j++ {
							for i := h; i < h+p.Nr; i++ {
								a := rf.At(i, j, k)
								b := ff.At(i, j, k)
								if a != b {
									t.Fatalf("var %d node (%d,%d,%d): reference %x fused %x",
										vi, i, j, k, a, b)
								}
							}
						}
					}
				}
			})
		}
	}
}

// TestFusedRHSRegionCover pins that evaluating RHSUpdate as interior
// then rim — the overlapped schedule's split — writes bitwise the same
// right-hand side as one full-region pass, and that RHSCurlJ/RHSDivV
// split the same way. This is the panel-local half of the overlap
// correctness argument; the decomp suite covers the message timing.
func TestFusedRHSRegionCover(t *testing.T) {
	spec := grid.NewSpec(9, 9)
	p := grid.NewSubPatch(spec, grid.Yin, 1, 0, spec.Nr, 0, spec.Nt, 6, 19)
	pl := NewPanel(p, Default().Omega)
	u := NewState(p.Shape)
	fillPanelPseudo(pl, &u, 23)
	sync := pseudoSync(p)

	full := NewState(p.Shape)
	FinishRHS(pl, Default(), &u, &full, sync)

	// Split evaluation: the decomposed rank's phase order.
	interior, rim := p.SplitInteriorRim(1)
	split := NewState(p.Shape)
	RHSDivV(pl, p.OwnedRegion())
	RHSCurlJ(pl, grid.Region{interior})
	RHSCurlJ(pl, rim)
	sync(pl.DivV)
	RHSUpdate(pl, Default(), &u, &split, grid.Region{interior})
	RHSUpdate(pl, Default(), &u, &split, rim)

	h := p.H
	for vi, a := range full.Scalars() {
		b := split.Scalars()[vi]
		for k := h; k < h+p.Np; k++ {
			for j := h; j < h+p.Nt; j++ {
				for i := h; i < h+p.Nr; i++ {
					if a.At(i, j, k) != b.At(i, j, k) {
						t.Fatalf("var %d node (%d,%d,%d): full %x split %x",
							vi, i, j, k, a.At(i, j, k), b.At(i, j, k))
					}
				}
			}
		}
	}
}
