package mhd

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/grid"
	"repro/internal/overset"
	"repro/internal/par"
)

// Solver is the serial two-panel Yin-Yang geodynamo solver: it advances
// the coupled MHD states of the Yin and Yang component grids with the
// classical fourth-order Runge-Kutta scheme, imposing physical wall
// boundary conditions and the overset internal boundary condition after
// every stage.
type Solver struct {
	Prm    Params
	Spec   grid.Spec
	IC     InitialConditions
	Panels [2]*Panel // indexed by grid.Yin, grid.Yang

	// Scheme selects the time integrator; the zero value is the paper's
	// classical RK4.
	Scheme Integrator
	// Concurrent steps the two panels on separate goroutines. The panels
	// are data-independent between constraint applications, so results
	// are bit-identical to the sequential path (tested); on multicore
	// hosts this halves the step time.
	Concurrent bool

	ex   *overset.Exchanger
	ex3  *overset.Exchanger3 // non-nil when third-order rims are selected
	Time float64
	Step int
}

// NewSolver builds a solver for the given grid spec and parameters and
// initializes it with the perturbed conduction state, using the paper's
// bilinear rim interpolation.
func NewSolver(s grid.Spec, prm Params, ic InitialConditions) (*Solver, error) {
	return newSolver(s, prm, ic, 2)
}

// NewSolverInterp selects the overset rim interpolation order: 2
// (bilinear, the paper's scheme) or 3 (biquadratic, the accuracy upgrade
// of later Yin-Yang work).
func NewSolverInterp(s grid.Spec, prm Params, ic InitialConditions, order int) (*Solver, error) {
	if order != 2 && order != 3 {
		return nil, fmt.Errorf("mhd: interpolation order must be 2 or 3, got %d", order)
	}
	return newSolver(s, prm, ic, order)
}

func newSolver(s grid.Spec, prm Params, ic InitialConditions, order int) (*Solver, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := prm.Validate(); err != nil {
		return nil, err
	}
	plan, err := overset.PlanFor(s)
	if err != nil {
		return nil, err
	}
	const halo = 1
	sv := &Solver{Prm: prm, Spec: s, IC: ic}
	for _, panel := range []grid.Panel{grid.Yin, grid.Yang} {
		sv.Panels[panel] = NewPanel(grid.NewPatch(s, panel, halo), prm.Omega)
		InitPanel(sv.Panels[panel], prm, ic)
	}
	sv.ex = overset.NewExchanger(plan, halo)
	if order == 3 {
		plan3, err := overset.NewPlan3(s)
		if err != nil {
			return nil, err
		}
		sv.ex3 = overset.NewExchanger3(plan3, halo)
	}
	sv.applyConstraints()
	return sv, nil
}

// SetPool routes the stencil and overset kernels of both panels through
// the worker pool (nil restores serial kernels). All routed kernels are
// bit-identical to their serial forms, so SetPool never changes
// results, only wall-clock time. The solver does not own the pool: the
// caller creates it once per rank and closes it after the run. Safe
// with Concurrent — concurrent For calls on one pool are independent.
func (sv *Solver) SetPool(pool *par.Pool) {
	for _, pl := range sv.Panels {
		pl.Patch.Par = pool
	}
	sv.ex.SetPool(pool)
}

// ApplyConstraints re-imposes the wall and overset internal boundary
// conditions on the current state — the halo-rebuilding step a restored
// checkpoint needs, since checkpoints carry only the interior (the
// padded rim values are always a pure function of it).
func (sv *Solver) ApplyConstraints() { sv.applyConstraints() }

// applyConstraints imposes wall boundary conditions and the Yin-Yang
// internal boundary condition on the current state of both panels. The
// walls are re-imposed after the exchange because rim columns include the
// wall nodes.
func (sv *Solver) applyConstraints() {
	for _, pl := range sv.Panels {
		ApplyWallBC(pl, sv.Prm)
	}
	yin, yang := sv.Panels[grid.Yin], sv.Panels[grid.Yang]
	if sv.ex3 != nil {
		sv.ex3.ExchangeScalar(yin.U.Rho, yang.U.Rho)
		sv.ex3.ExchangeScalar(yin.U.P, yang.U.P)
		sv.ex3.ExchangeVector(yin.U.F, yang.U.F)
		sv.ex3.ExchangeVector(yin.U.A, yang.U.A)
	} else {
		sv.ex.ExchangeScalar(yin.U.Rho, yang.U.Rho)
		sv.ex.ExchangeScalar(yin.U.P, yang.U.P)
		sv.ex.ExchangeVector(yin.U.F, yang.U.F)
		sv.ex.ExchangeVector(yin.U.A, yang.U.A)
	}
	for _, pl := range sv.Panels {
		ApplyWallBC(pl, sv.Prm)
	}
}

// rhs evaluates the full right-hand side for the current U of every
// panel into each panel's k scratch state.
func (sv *Solver) rhs() {
	sv.eachPanel(func(pl *Panel) {
		ComputeVTB(pl, &pl.U)
		FinishRHS(pl, sv.Prm, &pl.U, &pl.k, nil)
	})
}

// eachPanel runs fn on both panels, concurrently when enabled. The two
// panels never touch each other's storage inside fn, so the concurrent
// path is deterministic.
func (sv *Solver) eachPanel(fn func(pl *Panel)) {
	if !sv.Concurrent {
		for _, pl := range sv.Panels {
			fn(pl)
		}
		return
	}
	var wg sync.WaitGroup
	for _, pl := range sv.Panels {
		wg.Add(1)
		go func(p *Panel) {
			defer wg.Done()
			fn(p)
		}(pl)
	}
	wg.Wait()
}

// Advance performs one classical RK4 step of size dt:
//
//	k1 = R(u0)            u <- u0 + dt/2 k1
//	k2 = R(u)             u <- u0 + dt/2 k2
//	k3 = R(u)             u <- u0 + dt   k3
//	k4 = R(u)             u <- u0 + dt/6 (k1 + 2 k2 + 2 k3 + k4)
//
// with boundary conditions and the overset exchange applied after every
// stage update, following the paper's use of interpolation as the
// internal boundary condition of each component grid.
func (sv *Solver) Advance(dt float64) {
	stages, finalCoeff := sv.Scheme.stages()
	for _, pl := range sv.Panels {
		pl.SaveU0()
		pl.ZeroAcc()
	}
	for si, stg := range stages {
		sv.rhs()
		sv.eachPanel(func(pl *Panel) { pl.AccumulateK(stg.accCoeff) })
		if si < len(stages)-1 {
			sv.eachPanel(func(pl *Panel) { pl.RestoreU0PlusK(stg.stepCoeff * dt) })
			sv.applyConstraints()
		}
	}
	sv.eachPanel(func(pl *Panel) { pl.RestoreU0PlusAcc(finalCoeff * dt) })
	sv.applyConstraints()
	sv.Time += dt
	sv.Step++
}

// PanelMaxSpeed returns the fastest characteristic speed on the panel:
// flow speed plus the fast magnetosonic speed sqrt(cs^2 + vA^2).
// ComputeVTB must have run for the panel. The reduction is tiled over
// the patch worker pool with deterministic per-tile partial maxima
// combined in fixed tile order; because max is exact (comparison, not
// accumulation), the result is bit-identical to the serial scan.
func PanelMaxSpeed(pl *Panel, prm Params) float64 {
	p := pl.Patch
	h := p.H
	return p.Par.ReduceMax(p.Np, func(klo, khi int) float64 {
		var vmax float64
		for k := h + klo; k < h+khi; k++ {
			for j := h; j < h+p.Nt; j++ {
				rho := pl.U.Rho.Row(j, k)
				tt := pl.T.Row(j, k)
				vr := pl.V.R.Row(j, k)
				vt := pl.V.T.Row(j, k)
				vp := pl.V.P.Row(j, k)
				br := pl.B.R.Row(j, k)
				bt := pl.B.T.Row(j, k)
				bp := pl.B.P.Row(j, k)
				for i := h; i < h+p.Nr; i++ {
					cs2 := prm.Gamma * math.Abs(tt[i])
					va2 := (br[i]*br[i] + bt[i]*bt[i] + bp[i]*bp[i]) / math.Max(rho[i], 1e-12)
					sp := math.Sqrt(vr[i]*vr[i]+vt[i]*vt[i]+vp[i]*vp[i]) +
						math.Sqrt(cs2+va2)
					if sp > vmax {
						vmax = sp
					}
				}
			}
		}
		return vmax
	})
}

// MinGridSpacing returns the smallest physical node distance of the
// global grid a patch belongs to. On the Yin-Yang patch the longitudinal
// spacing bottoms out at sin(ThetaMin), so this is resolution-uniform.
func MinGridSpacing(s grid.Spec) float64 {
	return math.Min(s.Dr(), s.RI*s.MinAngularSpacing())
}

// StableDT combines the advective and diffusive limits for the given
// maximum signal speed and grid spacing.
func StableDT(prm Params, minDx, vmax, safety float64) float64 {
	if vmax <= 0 {
		vmax = 1
	}
	dtAdv := minDx / vmax
	diff := math.Max(prm.Mu, math.Max(prm.Kappa, prm.Eta))
	dtDiff := math.Inf(1)
	if diff > 0 {
		dtDiff = minDx * minDx / (4 * diff)
	}
	return safety * math.Min(dtAdv, dtDiff)
}

// EstimateDT returns a stable explicit time step: the CFL limit of the
// fastest characteristic (sound + flow + Alfven speed) over the smallest
// grid distance, shrunk by the safety factor, and also bounded by the
// diffusive limits of the three dissipation constants.
func (sv *Solver) EstimateDT(safety float64) float64 {
	var vmax float64
	for _, pl := range sv.Panels {
		ComputeVTB(pl, &pl.U)
		if v := PanelMaxSpeed(pl, sv.Prm); v > vmax {
			vmax = v
		}
	}
	return StableDT(sv.Prm, MinGridSpacing(sv.Spec), vmax, safety)
}

// Run advances n steps with a fixed dt, re-estimated if dt <= 0.
func (sv *Solver) Run(n int, dt float64) (float64, error) {
	if dt <= 0 {
		dt = sv.EstimateDT(0.3)
	}
	for s := 0; s < n; s++ {
		sv.Advance(dt)
		if sv.Step%8 == 0 {
			if err := sv.CheckFinite(); err != nil {
				return dt, err
			}
		}
	}
	return dt, sv.CheckFinite()
}

// CheckFinite returns an error if any interior state value is NaN or Inf.
func (sv *Solver) CheckFinite() error {
	for _, pl := range sv.Panels {
		for vi, s := range pl.U.Scalars() {
			bad := false
			s.EachInteriorRow(func(i0 int, row []float64) {
				for _, v := range row {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						bad = true
					}
				}
			})
			if bad {
				return fmt.Errorf("mhd: non-finite value in %s variable %d at step %d",
					pl.Patch.Panel, vi, sv.Step)
			}
		}
	}
	return nil
}

// RunAdaptive advances until sv.Time reaches tEnd, re-estimating the
// stable time step before every step so a strengthening flow or field
// automatically shortens the step. It returns the number of steps taken,
// or an error if maxSteps is exhausted first or the state goes
// non-finite.
func (sv *Solver) RunAdaptive(tEnd, safety float64, maxSteps int) (int, error) {
	steps := 0
	for sv.Time < tEnd {
		if steps >= maxSteps {
			return steps, fmt.Errorf("mhd: adaptive run exhausted %d steps at t=%v of %v",
				maxSteps, sv.Time, tEnd)
		}
		dt := sv.EstimateDT(safety)
		if remaining := tEnd - sv.Time; dt > remaining {
			dt = remaining
		}
		sv.Advance(dt)
		steps++
		if steps%16 == 0 {
			if err := sv.CheckFinite(); err != nil {
				return steps, err
			}
		}
	}
	return steps, sv.CheckFinite()
}
