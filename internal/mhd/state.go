package mhd

import (
	"math"
	"sync"

	"repro/internal/coords"
	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/sphops"
)

// State bundles the basic variables of the simulation on one panel:
// mass density rho, pressure p, mass flux density F = rho*v, and the
// magnetic vector potential A.
type State struct {
	Rho, P *field.Scalar
	F, A   *field.Vector
}

// NewState allocates a zeroed state of shape s.
func NewState(s field.Shape) State {
	return State{
		Rho: field.NewScalar(s),
		P:   field.NewScalar(s),
		F:   field.NewVector(s),
		A:   field.NewVector(s),
	}
}

// CopyFrom deep-copies src into st.
func (st *State) CopyFrom(src *State) {
	st.Rho.CopyFrom(src.Rho)
	st.P.CopyFrom(src.P)
	st.F.CopyFrom(src.F)
	st.A.CopyFrom(src.A)
}

// AXPY sets st = st + a*k for every variable.
func (st *State) AXPY(a float64, k *State) {
	st.Rho.AXPY(a, k.Rho)
	st.P.AXPY(a, k.P)
	st.F.AXPY(a, k.F)
	st.A.AXPY(a, k.A)
}

// LinComb sets st = a*x + b*y for every variable.
func (st *State) LinComb(a float64, x *State, b float64, y *State) {
	st.Rho.LinComb(a, x.Rho, b, y.Rho)
	st.P.LinComb(a, x.P, b, y.P)
	st.F.LinComb(a, x.F, b, y.F)
	st.A.LinComb(a, x.A, b, y.A)
}

// Scalars returns the eight scalar fields of the state in a fixed order
// (rho, p, Fr, Ft, Fp, Ar, At, Ap), used by halo exchange and I/O.
func (st *State) Scalars() [8]*field.Scalar {
	return [8]*field.Scalar{
		st.Rho, st.P,
		st.F.R, st.F.T, st.F.P,
		st.A.R, st.A.T, st.A.P,
	}
}

// Panel holds everything one component grid needs to evaluate the MHD
// right-hand side: the patch geometry, the state, scratch storage, and
// precomputed per-node rotation-vector components and ownership weights.
type Panel struct {
	Patch *grid.Patch
	U     State // current state

	// Runge-Kutta scratch.
	u0, k, acc State

	// Derived subsidiary fields (scratch, rebuilt each RHS evaluation).
	V, B, J *field.Vector
	T       *field.Scalar

	// div v, computed by RHSDivV each evaluation. A dedicated field
	// rather than workspace scratch because a decomposed rank exchanges
	// its seam halos (the aux exchange) between computing it and
	// differentiating it for the compressive viscous force.
	DivV *field.Scalar

	// Operator-output scratch for the momentum equation (used by the
	// unfused reference evaluation only; the fused kernel keeps these
	// intermediates in per-worker rows).
	adv, gp, lap, gdv *field.Vector

	W *sphops.Workspace

	// Per-worker scratch rows of the fused update kernel, recycled
	// across evaluations through a mutex-guarded free list (workers grab
	// one set per pool range, not per column, so contention is nil).
	rowsMu   sync.Mutex
	rowsFree []*rhsRows

	// Rotation vector Omega in this panel's local spherical components,
	// indexed [k*ntPadded + j] (independent of radius).
	OmR, OmT, OmP []float64

	// Ownership weight per angular node, same indexing: a partition of
	// unity across the overset pair used for global reductions. Outside
	// the overlap the weight is 1; inside, it blends smoothly with the
	// partner so the two weights of any physical point sum to exactly 1.
	Own []float64
}

// NewPanel builds a panel solver block for the given patch and rotation
// rate. The patch may be a full panel or a decomposed sub-block.
func NewPanel(p *grid.Patch, omega float64) *Panel {
	pl := &Panel{
		Patch: p,
		U:     NewState(p.Shape),
		u0:    NewState(p.Shape),
		k:     NewState(p.Shape),
		acc:   NewState(p.Shape),
		V:     p.NewVector(),
		B:     p.NewVector(),
		J:     p.NewVector(),
		T:     p.NewScalar(),
		DivV:  p.NewScalar(),
		adv:   p.NewVector(),
		gp:    p.NewVector(),
		lap:   p.NewVector(),
		gdv:   p.NewVector(),
		W:     sphops.NewWorkspace(p),
	}
	pl.precomputeOmega(omega)
	pl.precomputeOwnership()
	return pl
}

// precomputeOmega stores the local spherical components of the rotation
// vector. Omega points along the geographic (Yin) z axis; in the Yang
// frame the same physical vector is obtained with the Yin<->Yang map.
// This is the only place the two panels differ: every solver routine is
// panel-agnostic, as the paper emphasizes.
func (pl *Panel) precomputeOmega(omega float64) {
	p := pl.Patch
	_, ntP, npP := p.Padded()
	n := ntP * npP
	pl.OmR = make([]float64, n)
	pl.OmT = make([]float64, n)
	pl.OmP = make([]float64, n)
	omCart := coords.Cartesian{X: 0, Y: 0, Z: omega}
	if p.Panel == grid.Yang {
		omCart = coords.YinYang(omCart)
	}
	for k := 0; k < npP; k++ {
		for j := 0; j < ntP; j++ {
			s := coords.CartToSphVec(p.Theta[j], p.Phi[k], omCart)
			pl.OmR[k*ntP+j] = s.VR
			pl.OmT[k*ntP+j] = s.VT
			pl.OmP[k*ntP+j] = s.VP
		}
	}
}

// precomputeOwnership builds a partition of unity over the overset pair
// for global reductions: each angular node is weighted by its rim
// distance relative to the rim distance of its image in the partner
// panel, so the weights of the same physical point on the two panels sum
// to exactly 1. The blend is smooth across the overlap, which keeps the
// two-grid quadrature second-order accurate; the rule is symmetric under
// the Yin<->Yang map.
func (pl *Panel) precomputeOwnership() {
	p := pl.Patch
	_, ntP, npP := p.Padded()
	pl.Own = make([]float64, ntP*npP)
	for k := 0; k < npP; k++ {
		for j := 0; j < ntP; j++ {
			dOwn := math.Max(rimDistance(p.Theta[j], p.Phi[k]), 0)
			ti, pi := coords.YinYangAngles(p.Theta[j], p.Phi[k])
			dOther := math.Max(rimDistance(ti, pi), 0)
			switch {
			case dOwn <= 0 && dOther <= 0:
				pl.Own[k*ntP+j] = 0.5
			default:
				pl.Own[k*ntP+j] = dOwn / (dOwn + dOther)
			}
		}
	}
}

// getRows hands a worker a scratch-row set for the fused update kernel,
// allocating on first use and recycling thereafter.
func (pl *Panel) getRows() *rhsRows {
	pl.rowsMu.Lock()
	if n := len(pl.rowsFree); n > 0 {
		s := pl.rowsFree[n-1]
		pl.rowsFree = pl.rowsFree[:n-1]
		pl.rowsMu.Unlock()
		return s
	}
	pl.rowsMu.Unlock()
	nrP, _, _ := pl.Patch.Padded()
	return newRHSRows(nrP)
}

// putRows returns a scratch-row set to the free list.
func (pl *Panel) putRows(s *rhsRows) {
	pl.rowsMu.Lock()
	pl.rowsFree = append(pl.rowsFree, s)
	pl.rowsMu.Unlock()
}

// rimDistance returns the angular distance from (theta, phi) to the patch
// rim; negative if outside the patch footprint.
func rimDistance(theta, phi float64) float64 {
	dt := min4(theta-grid.ThetaMin, grid.ThetaMax-theta,
		phi-grid.PhiMin, grid.PhiMax-phi)
	return dt
}

func min4(a, b, c, d float64) float64 {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	if d < m {
		m = d
	}
	return m
}

// The following helpers expose the Runge-Kutta scratch operations used by
// both the serial two-panel solver and the decomposed per-rank driver, so
// the two advance loops stay arithmetically identical.

// SaveU0 snapshots the current state as the step's base point.
func (pl *Panel) SaveU0() { pl.u0.CopyFrom(&pl.U) }

// ZeroAcc clears the Runge-Kutta accumulator.
func (pl *Panel) ZeroAcc() { pl.acc.LinComb(0, &pl.u0, 0, &pl.u0) }

// K returns the scratch state receiving right-hand-side evaluations.
func (pl *Panel) K() *State { return &pl.k }

// AccumulateK adds c*k to the accumulator.
func (pl *Panel) AccumulateK(c float64) { pl.acc.AXPY(c, &pl.k) }

// RestoreU0PlusK sets U = u0 + c*k (an intermediate Runge-Kutta stage).
func (pl *Panel) RestoreU0PlusK(c float64) {
	pl.U.CopyFrom(&pl.u0)
	pl.U.AXPY(c, &pl.k)
}

// RestoreU0PlusAcc sets U = u0 + c*acc (the final Runge-Kutta update).
func (pl *Panel) RestoreU0PlusAcc(c float64) {
	pl.U.CopyFrom(&pl.u0)
	pl.U.AXPY(c, &pl.acc)
}
