package mpi

import "fmt"

// Cart is a two-dimensional Cartesian process topology over a
// communicator, the analogue of MPI_CART_CREATE with a row-major rank
// order: rank = coord0*dims[1] + coord1.
type Cart struct {
	*Comm
	Dims   [2]int
	Coords [2]int
}

// CartCreate2D builds a dims[0] x dims[1] process grid; the product must
// equal the communicator size.
func (c *Comm) CartCreate2D(d0, d1 int) (*Cart, error) {
	if d0 <= 0 || d1 <= 0 || d0*d1 != c.size {
		return nil, fmt.Errorf("mpi: cart dims %dx%d incompatible with %d ranks", d0, d1, c.size)
	}
	return &Cart{
		Comm:   c,
		Dims:   [2]int{d0, d1},
		Coords: [2]int{c.rank / d1, c.rank % d1},
	}, nil
}

// RankOf returns the rank at the given coordinates, or -1 if outside the
// (non-periodic) grid.
func (ct *Cart) RankOf(c0, c1 int) int {
	if c0 < 0 || c0 >= ct.Dims[0] || c1 < 0 || c1 >= ct.Dims[1] {
		return -1
	}
	return c0*ct.Dims[1] + c1
}

// Shift returns the source and destination ranks displaced by disp along
// dim, the analogue of MPI_CART_SHIFT with non-periodic boundaries: a
// neighbour beyond the edge is reported as -1.
func (ct *Cart) Shift(dim, disp int) (src, dst int) {
	if dim != 0 && dim != 1 {
		panic(fmt.Sprintf("mpi: bad cart dimension %d", dim))
	}
	c := ct.Coords
	switch dim {
	case 0:
		src = ct.RankOf(c[0]-disp, c[1])
		dst = ct.RankOf(c[0]+disp, c[1])
	case 1:
		src = ct.RankOf(c[0], c[1]-disp)
		dst = ct.RankOf(c[0], c[1]+disp)
	}
	return src, dst
}

// Neighbours returns the four nearest neighbour ranks (north, south,
// west, east) = (theta-, theta+, phi-, phi+), with -1 beyond an edge.
// Each process of the paper's panel grid communicates with exactly these
// four.
func (ct *Cart) Neighbours() (north, south, west, east int) {
	north, south = ct.Shift(0, 1)
	west, east = ct.Shift(1, 1)
	return north, south, west, east
}
