package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Elastic enables surgical rank replacement: instead of aborting the
// whole run when a rank is confirmed dead (a scripted kill, or
// heartbeat-confirmed silence), the runtime fences the world membership
// epoch and replaces only the dead rank. A fence reissues every
// mailbox, resets the collective rendezvous state and the deterministic
// communicator-id counter, and retires the reliable transport's
// sequence numbers and retransmit timers wholesale — no message,
// acknowledgment or timer crosses an epoch boundary. Surviving ranks
// unwind their current attempt (or are recalled from the completion
// barrier they parked at) and re-enter the rank function at the new
// epoch alongside the respawned rank; the rank function observes
// Comm.Epoch() > 0 and restores state from its last checkpoint.
//
// Replacement needs a Heartbeat to notice silent deaths; a noisy
// scripted kill fences the epoch from the dying rank itself. Elastic is
// ignored on single-rank runs (there is no surviving world to rejoin).
type Elastic struct {
	// MaxReplacements bounds how many epoch fences one run may perform;
	// a further confirmed death aborts the run as a non-elastic run
	// would (default 2).
	MaxReplacements int
	// OnReplace, when set, observes each replacement after its fence:
	// the replaced rank, the new membership epoch and the triggering
	// error. It is called from runtime goroutines — keep it fast and
	// safe for concurrent use.
	OnReplace func(rank, epoch int, cause error)
}

func (e Elastic) withDefaults() Elastic {
	if e.MaxReplacements <= 0 {
		e.MaxReplacements = 2
	}
	return e
}

// fenceSignal is the panic payload that unwinds a survivor blocked (or
// running) in a fenced-out membership epoch; the rank runner recognizes
// it and re-enters the rank function at the current epoch.
type fenceSignal struct {
	epoch int
	cause error
}

// attemptOutcome classifies one epoch attempt of a rank function.
type attemptOutcome int

const (
	attemptDone attemptOutcome = iota
	attemptFenced
	attemptAbort
)

// runElastic is RunWith's elastic mode: rank runners loop over
// membership epochs instead of unwinding on a fence, and completed
// ranks park at the epoch-completion barrier until the run either
// finishes (every rank completed the same epoch) or fences again.
func runElastic(n int, cfg RunConfig, fn func(c *Comm)) error {
	ctx := newContext(cfg)
	el := cfg.Elastic.withDefaults()
	ctx.elastic = &el
	ctx.lastStep = make([]atomic.Int64, n)
	for i := range ctx.lastStep {
		ctx.lastStep[i].Store(-1)
	}
	ctx.completed = make([]bool, n)
	if cfg.Reliability != nil {
		ctx.rel = newRelState(ctx, *cfg.Reliability)
	}
	boxes := make([]*mailbox, n)
	for i := range boxes {
		boxes[i] = newMailbox(ctx, 0, i)
	}
	ctx.boxes[0] = boxes

	var hb *hbState
	var stopHB chan struct{}
	if cfg.Heartbeat != nil {
		hb = newHBState(ctx, *cfg.Heartbeat, n)
		ctx.hb = hb
		stopHB = make(chan struct{})
		go hb.monitor(stopHB)
	}

	var wg sync.WaitGroup
	errs := make([]error, n)
	ctx.spawn = func(rank int) {
		wg.Add(1)
		go ctx.elasticRunner(rank, n, fn, hb, &wg, errs)
	}
	for r := 0; r < n; r++ {
		ctx.spawn(r)
	}

	var stopWatch chan struct{}
	if cfg.Deadline > 0 {
		stopWatch = make(chan struct{})
		go ctx.watchdog(cfg.Deadline, stopWatch)
	}
	wg.Wait()
	// A monitor-triggered respawn may have raced the Wait above (only
	// possible when every runner died silently); close the window and
	// wait out any straggler it spawned.
	ctx.mu.Lock()
	ctx.runOver = true
	rel := ctx.rel
	ctx.mu.Unlock()
	wg.Wait()
	if stopWatch != nil {
		close(stopWatch)
	}
	if stopHB != nil {
		close(stopHB)
	}
	if rel != nil {
		rel.stop()
	}

	ctx.mu.Lock()
	first := ctx.abortErr
	finished := ctx.finished
	ctx.mu.Unlock()
	if first != nil {
		return first
	}
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	if !finished {
		// Every runner exited without abort yet the epoch never
		// completed: ranks vanished silently with nothing left to
		// confirm them. Fail loudly rather than report success.
		return fmt.Errorf("mpi: elastic run ended with ranks missing from the final epoch")
	}
	return nil
}

// elasticRunner hosts one world rank slot across membership epochs:
// attempt the rank function, and on a fence re-enter it at the new
// epoch; on completion, park at the epoch barrier until the run
// finishes or the epoch moves again.
func (ctx *context) elasticRunner(rank, n int, fn func(c *Comm), hb *hbState, wg *sync.WaitGroup, errs []error) {
	defer wg.Done()
	if hb != nil {
		// The beater lives exactly as long as this goroutine: a silent
		// death (runtime.Goexit) still runs this defer, so the rank
		// falls silent and the monitor can confirm it.
		stop := hb.startBeater(rank)
		defer close(stop)
	}
	for {
		ctx.mu.Lock()
		if ctx.abortErr != nil || ctx.finished || ctx.runOver {
			ctx.mu.Unlock()
			return
		}
		epoch := ctx.epoch
		ctx.mu.Unlock()

		out, err := ctx.attempt(rank, n, epoch, fn)
		switch out {
		case attemptAbort:
			errs[rank] = err
			return
		case attemptFenced:
			continue
		}

		// Completed this epoch: record it, then park at the completion
		// barrier — survivors hold the world open instead of unwinding,
		// so a later fence can recall them into the next epoch.
		ctx.mu.Lock()
		if epoch == ctx.epoch && !ctx.completed[rank] {
			ctx.completed[rank] = true
			ctx.ncomplete++
			if hb != nil {
				hb.markCompleted(rank)
			}
			if ctx.ncomplete == n {
				ctx.finished = true
				ctx.cond.Broadcast()
			}
		}
		for ctx.epoch == epoch && !ctx.finished && ctx.abortErr == nil && !ctx.runOver {
			ctx.cond.Wait()
		}
		ctx.mu.Unlock()
	}
}

// attempt runs fn once under the given epoch's world communicator and
// classifies how it ended. A noisy scripted kill fences the epoch from
// the dying goroutine itself, which then becomes its own replacement.
func (ctx *context) attempt(rank, n, epoch int, fn func(c *Comm)) (out attemptOutcome, err error) {
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		switch s := rec.(type) {
		case abortSignal:
			out, err = attemptAbort, s.err
		case fenceSignal:
			out = attemptFenced
		case *RankFailedError:
			if ctx.tryFence(rank, s, false) {
				out = attemptFenced
				return
			}
			ctx.abort(s)
			out, err = attemptAbort, s
		default:
			e := fmt.Errorf("mpi: rank %d panicked: %v", rank, rec)
			ctx.abort(e)
			out, err = attemptAbort, e
		}
	}()
	fn(&Comm{ctx: ctx, id: 0, rank: rank, size: n, gen: epoch})
	return attemptDone, nil
}

// tryFence performs one membership-epoch fence for a confirmed-dead
// rank: bump the epoch, reissue the world mailboxes, reset the
// collective rendezvous and communicator-id state, retire the reliable
// transport (timers and sequence numbers) and recall every survivor.
// When respawn is set a fresh runner goroutine is spawned for the dead
// rank slot (heartbeat-confirmed silent deaths; a noisy kill's own
// goroutine survives and re-enters by itself). Returns false — and
// changes nothing — when replacement is off, exhausted, or the run is
// already over, in which case the caller falls back to a full abort.
func (ctx *context) tryFence(deadRank int, cause error, respawn bool) bool {
	ctx.mu.Lock()
	el := ctx.elastic
	if el == nil || ctx.abortErr != nil || ctx.runOver || ctx.replaced >= el.MaxReplacements {
		ctx.mu.Unlock()
		return false
	}
	ctx.replaced++
	ctx.epoch++
	epoch := ctx.epoch
	ctx.fenceCause = cause
	var old []*mailbox
	for _, bs := range ctx.boxes {
		old = append(old, bs...)
	}
	// Retire the old transport inside the critical section so a racing
	// retransmit-giveup cannot abort the new epoch (stale giveups are
	// additionally suppressed by abortFromRel).
	if ctx.rel != nil {
		ctx.rel.stop()
		ctx.rel = newRelState(ctx, *ctx.cfg.Reliability)
	}
	n := len(ctx.completed)
	boxes := make([]*mailbox, n)
	for i := range boxes {
		boxes[i] = newMailbox(ctx, 0, i)
	}
	ctx.boxes = map[int][]*mailbox{0: boxes}
	ctx.commIDs = map[string]int{}
	ctx.nextID = 1
	ctx.barriers = map[string]*barrierState{}
	ctx.splits = map[string]*splitState{}
	for i := range ctx.completed {
		ctx.completed[i] = false
	}
	ctx.ncomplete = 0
	if respawn {
		ctx.spawn(deadRank)
	}
	// Recall parked survivors and collective waiters into the new epoch.
	ctx.cond.Broadcast()
	ctx.mu.Unlock()

	sig := fenceSignal{epoch: epoch, cause: cause}
	for _, mb := range old {
		mb.doFence(sig)
	}
	if ctx.hb != nil {
		// Fresh liveness baseline: the replaced rank must not be
		// re-confirmed before its new beater starts, and survivors'
		// completion marks belong to the fenced epoch.
		ctx.hb.refresh()
	}
	ctx.eventf("recover.replace", "rank=%d epoch=%d cause=%v", deadRank, epoch, cause)
	if el.OnReplace != nil {
		el.OnReplace(deadRank, epoch, cause)
	}
	return true
}
