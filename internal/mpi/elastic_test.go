package mpi

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// elasticProgram is the deterministic SPMD body the elastic tests run:
// steps of Tick+Allreduce, a Barrier, and a final record of the value
// and the epoch the completing attempt ran under. A fenced attempt
// never reaches the record, so the slices hold the completing epoch.
func elasticProgram(steps int, mu *sync.Mutex, vals []float64, epochs []int) func(c *Comm) {
	return func(c *Comm) {
		sum := 0.0
		for step := 0; step < steps; step++ {
			c.Tick(step)
			v := []float64{1}
			c.Allreduce(v, OpSum)
			sum += v[0]
		}
		c.Barrier()
		mu.Lock()
		vals[c.Rank()] = sum
		epochs[c.Rank()] = c.Epoch()
		mu.Unlock()
	}
}

// TestElasticNoisyKillReplaced: a scripted noisy kill fences the world
// membership instead of aborting; every rank re-enters at epoch 1, the
// program completes with the fault-free result, and the timeline shows
// fault.kill before recover.replace.
func TestElasticNoisyKillReplaced(t *testing.T) {
	const n, steps = 4, 5
	var mu sync.Mutex
	vals := make([]float64, n)
	epochs := make([]int, n)
	events := NewEventLog()
	var replacedRank, replacedEpoch int
	var replaceCause error
	err := RunWith(n, RunConfig{
		Deadline: 10 * time.Second,
		Faults:   NewFaultPlan().Kill(2, 3),
		Events:   events,
		Elastic: &Elastic{OnReplace: func(rank, epoch int, cause error) {
			mu.Lock()
			replacedRank, replacedEpoch, replaceCause = rank, epoch, cause
			mu.Unlock()
		}},
	}, elasticProgram(steps, &mu, vals, epochs))
	if err != nil {
		t.Fatalf("elastic run failed: %v", err)
	}
	for r := 0; r < n; r++ {
		if vals[r] != float64(steps*n) {
			t.Fatalf("rank %d computed %v, want %v", r, vals[r], float64(steps*n))
		}
		if epochs[r] != 1 {
			t.Fatalf("rank %d completed at epoch %d, want 1", r, epochs[r])
		}
	}
	if replacedRank != 2 || replacedEpoch != 1 {
		t.Fatalf("OnReplace saw rank=%d epoch=%d, want rank=2 epoch=1", replacedRank, replacedEpoch)
	}
	var rf *RankFailedError
	if !errors.As(replaceCause, &rf) || rf.Rank != 2 {
		t.Fatalf("OnReplace cause = %v, want *RankFailedError for rank 2", replaceCause)
	}
	killIdx, replaceIdx := -1, -1
	for i, e := range events.Events() {
		switch e.Kind {
		case "fault.kill":
			killIdx = i
		case "recover.replace":
			replaceIdx = i
		}
	}
	if killIdx < 0 || replaceIdx < 0 || replaceIdx < killIdx {
		t.Fatalf("want fault.kill before recover.replace, got timeline:\n%s", events)
	}
}

// TestElasticSilentKillReplaced pins the tentpole's detection half: a
// KillSilent rank is confirmed by heartbeat, replaced surgically (the
// survivors are fenced out of their blocked collectives and re-enter,
// not unwound to the caller), and the run completes with the fault-free
// result. The timeline must show hb.confirm before recover.replace, and
// the whole recovery must land well under the watchdog deadline.
func TestElasticSilentKillReplaced(t *testing.T) {
	const n, steps = 4, 5
	const deadline = 10 * time.Second
	var mu sync.Mutex
	vals := make([]float64, n)
	epochs := make([]int, n)
	events := NewEventLog()
	start := time.Now()
	err := RunWith(n, RunConfig{
		Deadline:  deadline,
		Faults:    NewFaultPlan().KillSilent(1, 2),
		Heartbeat: hbCfg(),
		Events:    events,
		Elastic:   &Elastic{},
	}, elasticProgram(steps, &mu, vals, epochs))
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("elastic run failed: %v", err)
	}
	for r := 0; r < n; r++ {
		if vals[r] != float64(steps*n) {
			t.Fatalf("rank %d computed %v, want %v", r, vals[r], float64(steps*n))
		}
		if epochs[r] != 1 {
			t.Fatalf("rank %d completed at epoch %d, want 1", r, epochs[r])
		}
	}
	if elapsed > deadline/10 {
		t.Fatalf("recovery took %v, not well under the %v watchdog deadline", elapsed, deadline)
	}
	confirmIdx, replaceIdx := -1, -1
	for i, e := range events.Events() {
		switch e.Kind {
		case "hb.confirm":
			confirmIdx = i
		case "recover.replace":
			replaceIdx = i
			if !strings.Contains(e.Detail, "rank=1") {
				t.Fatalf("recover.replace names the wrong rank: %s", e.Detail)
			}
		}
	}
	if confirmIdx < 0 || replaceIdx < 0 || replaceIdx < confirmIdx {
		t.Fatalf("want hb.confirm before recover.replace, got timeline:\n%s", events)
	}
}

// TestElasticReplacementBudgetExhausted: once MaxReplacements fences
// have been spent, a further confirmed death aborts the run with the
// usual typed error instead of fencing again.
func TestElasticReplacementBudgetExhausted(t *testing.T) {
	const n, steps = 4, 5
	var mu sync.Mutex
	vals := make([]float64, n)
	epochs := make([]int, n)
	err := RunWith(n, RunConfig{
		Deadline: 10 * time.Second,
		Faults:   NewFaultPlan().Kill(0, 1).Kill(3, 1),
		Elastic:  &Elastic{MaxReplacements: 1},
	}, elasticProgram(steps, &mu, vals, epochs))
	if err == nil {
		t.Fatal("second kill against a budget of one replacement should abort")
	}
	var rf *RankFailedError
	if !errors.As(err, &rf) {
		t.Fatalf("want *RankFailedError, got %T: %v", err, err)
	}
}

// TestElasticFenceWithReliability: the reliable transport is retired
// wholesale at a fence — sequence numbers restart with the new epoch's
// mailboxes and no pre-fence retransmit timer can abort the new epoch —
// so a run combining a dropped message with a rank kill still completes
// with the fault-free result.
func TestElasticFenceWithReliability(t *testing.T) {
	const n, steps = 4, 5
	var mu sync.Mutex
	vals := make([]float64, n)
	epochs := make([]int, n)
	err := RunWith(n, RunConfig{
		Deadline:    10 * time.Second,
		Faults:      NewFaultPlan().Kill(1, 2).Drop(2, 0, tagReduceUp, 0),
		Reliability: &Reliability{AckTimeout: 2 * time.Millisecond},
		Elastic:     &Elastic{},
	}, elasticProgram(steps, &mu, vals, epochs))
	if err != nil {
		t.Fatalf("elastic run with reliability failed: %v", err)
	}
	for r := 0; r < n; r++ {
		if vals[r] != float64(steps*n) {
			t.Fatalf("rank %d computed %v, want %v", r, vals[r], float64(steps*n))
		}
	}
}

// TestElasticSplitSurvivesFence: communicators derived by Split before
// a fence belong to the retired epoch; ranks re-entering after the
// fence re-split and the program completes. This exercises the fence
// paths of Split's rendezvous and of split-communicator mailboxes.
func TestElasticSplitSurvivesFence(t *testing.T) {
	const n = 4
	var mu sync.Mutex
	sums := make([]float64, n)
	err := RunWith(n, RunConfig{
		Deadline: 10 * time.Second,
		Faults:   NewFaultPlan().Kill(3, 1),
		Elastic:  &Elastic{},
	}, func(c *Comm) {
		half := c.Split(c.Rank()%2, c.Rank())
		for step := 0; step < 4; step++ {
			c.Tick(step)
			v := []float64{float64(c.Rank())}
			half.Allreduce(v, OpSum)
			c.Barrier()
		}
		// Ranks 0,2 share a color (sum 2), ranks 1,3 the other (sum 4).
		v := []float64{float64(c.Rank())}
		half.Allreduce(v, OpSum)
		mu.Lock()
		sums[c.Rank()] = v[0]
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("elastic run with splits failed: %v", err)
	}
	want := []float64{2, 4, 2, 4}
	for r := 0; r < n; r++ {
		if sums[r] != want[r] {
			t.Fatalf("rank %d split-reduce = %v, want %v", r, sums[r], want[r])
		}
	}
}

// TestElasticSingleRankIgnored: Elastic on a world of one falls back to
// the ordinary runtime (there is no surviving world to rejoin).
func TestElasticSingleRankIgnored(t *testing.T) {
	ran := false
	err := RunWith(1, RunConfig{Deadline: 5 * time.Second, Elastic: &Elastic{}}, func(c *Comm) {
		if c.Epoch() != 0 {
			t.Errorf("single-rank epoch = %d, want 0", c.Epoch())
		}
		ran = true
	})
	if err != nil || !ran {
		t.Fatalf("single-rank elastic run: ran=%v err=%v", ran, err)
	}
}

// TestElasticWatchdogBackstop: without a heartbeat nobody confirms a
// silent death, so the elastic run must still end at the watchdog
// deadline rather than wedge forever.
func TestElasticWatchdogBackstop(t *testing.T) {
	const n, steps = 2, 5
	var mu sync.Mutex
	vals := make([]float64, n)
	epochs := make([]int, n)
	err := RunWith(n, RunConfig{
		Deadline: 300 * time.Millisecond,
		Faults:   NewFaultPlan().KillSilent(1, 2),
		Elastic:  &Elastic{},
	}, elasticProgram(steps, &mu, vals, epochs))
	if err == nil {
		t.Fatal("silent death with no heartbeat should hit the watchdog")
	}
	if !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("want a watchdog deadline diagnostic, got: %v", err)
	}
}
