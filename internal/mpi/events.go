package mpi

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Event is one entry of a run's fault/recovery timeline: a scripted
// fault firing, a reliable-transport retransmission, or a heartbeat
// state change. Kinds in use:
//
//	fault.drop / fault.delay / fault.duplicate — a FaultPlan message
//	    fault fired on a transmission
//	fault.kill / fault.kill-silent — a scripted rank kill fired
//	xport.retransmit / xport.giveup — the reliable transport resent an
//	    unacked message, or exhausted its retries
//	hb.suspect / hb.clear / hb.confirm — the heartbeat detector's
//	    suspect -> confirm escalation (clear: a suspect beat again)
//	note — a caller-supplied annotation (e.g. segment boundaries)
type Event struct {
	// At is the event's offset from the log's creation.
	At     time.Duration
	Kind   string
	Detail string
}

func (e Event) String() string {
	return fmt.Sprintf("+%-10s %-17s %s", e.At.Round(time.Microsecond), e.Kind, e.Detail)
}

// EventLog collects the fault and failure-detection timeline of one or
// more runs sharing it (a campaign passes the same log to every
// segment, so the post-mortem shows the whole history). It is safe for
// concurrent use; pass it via RunConfig.Events.
type EventLog struct {
	mu     sync.Mutex
	start  time.Time
	events []Event
}

// NewEventLog returns an empty log; offsets are measured from now.
func NewEventLog() *EventLog {
	return &EventLog{start: time.Now()}
}

// Notef appends an event under the given kind.
func (l *EventLog) Notef(kind, format string, args ...any) {
	if l == nil {
		return
	}
	e := Event{Kind: kind, Detail: fmt.Sprintf(format, args...)}
	l.mu.Lock()
	e.At = time.Since(l.start)
	l.events = append(l.events, e)
	l.mu.Unlock()
}

// Events returns a copy of the timeline in append order.
func (l *EventLog) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Len returns the number of recorded events.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// String formats the timeline one event per line.
func (l *EventLog) String() string {
	var b strings.Builder
	for _, e := range l.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// eventf appends to the run's event log, if one was configured.
func (ctx *context) eventf(kind, format string, args ...any) {
	ctx.cfg.Events.Notef(kind, format, args...)
}
