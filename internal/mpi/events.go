package mpi

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Event is one entry of a run's fault/recovery timeline: a scripted
// fault firing, a reliable-transport retransmission, or a heartbeat
// state change. Kinds in use:
//
//	fault.drop / fault.delay / fault.duplicate — a FaultPlan message
//	    fault fired on a transmission
//	fault.kill / fault.kill-silent — a scripted rank kill fired
//	xport.retransmit / xport.giveup — the reliable transport resent an
//	    unacked message, or exhausted its retries
//	hb.suspect / hb.clear / hb.confirm — the heartbeat detector's
//	    suspect -> confirm escalation (clear: a suspect beat again)
//	recover.replace — an elastic fence replaced a confirmed-dead rank
//	    (always after the hb.confirm or fault.kill that triggered it)
//	note — a caller-supplied annotation (e.g. segment boundaries)
type Event struct {
	// At is the event's offset from the log's creation.
	At     time.Duration
	Kind   string
	Detail string
}

func (e Event) String() string {
	return fmt.Sprintf("+%-10s %-17s %s", e.At.Round(time.Microsecond), e.Kind, e.Detail)
}

// DefaultEventCap bounds an EventLog built by NewEventLog. A long chaos
// campaign can fire faults for hours; the log keeps the most recent
// DefaultEventCap events and counts the rest instead of growing without
// bound.
const DefaultEventCap = 4096

// EventLog collects the fault and failure-detection timeline of one or
// more runs sharing it (a campaign passes the same log to every
// segment, so the post-mortem shows the whole history). It is a bounded
// ring: once full, the oldest events are overwritten and counted in
// Dropped. It is safe for concurrent use; pass it via RunConfig.Events.
type EventLog struct {
	mu      sync.Mutex
	start   time.Time
	ring    []Event
	head    int // next write position
	n       int // filled entries (<= cap)
	dropped int64
}

// NewEventLog returns an empty log with the default capacity; offsets
// are measured from now.
func NewEventLog() *EventLog {
	return NewEventLogSize(DefaultEventCap)
}

// NewEventLogSize returns an empty log retaining at most capacity
// events (values < 1 select the default).
func NewEventLogSize(capacity int) *EventLog {
	if capacity < 1 {
		capacity = DefaultEventCap
	}
	return &EventLog{start: time.Now(), ring: make([]Event, capacity)}
}

// Start returns the log's time origin (event At offsets are measured
// from it).
func (l *EventLog) Start() time.Time {
	if l == nil {
		return time.Time{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.start
}

// Notef appends an event under the given kind, overwriting the oldest
// event if the log is full.
func (l *EventLog) Notef(kind, format string, args ...any) {
	if l == nil {
		return
	}
	e := Event{Kind: kind, Detail: fmt.Sprintf(format, args...)}
	l.mu.Lock()
	e.At = time.Since(l.start)
	if l.n == len(l.ring) {
		l.dropped++
	} else {
		l.n++
	}
	l.ring[l.head] = e
	l.head++
	if l.head == len(l.ring) {
		l.head = 0
	}
	l.mu.Unlock()
}

// Events returns a copy of the retained timeline, oldest first.
func (l *EventLog) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, l.n)
	first := l.head - l.n
	if first < 0 {
		first += len(l.ring)
	}
	for i := 0; i < l.n; i++ {
		out = append(out, l.ring[(first+i)%len(l.ring)])
	}
	return out
}

// Len returns the number of retained events.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Total returns the number of events ever appended: the retained ring
// plus the overwritten ones. It is the cursor space for Tail.
func (l *EventLog) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped + int64(l.n)
}

// Tail returns the events appended after the seen total (a value from
// a previous Tail or Total call; 0 reads from the beginning), oldest
// first, together with the new total to resume from. Events that were
// already overwritten before being read are skipped — Dropped counts
// them. This is the incremental-consumer interface the live telemetry
// plane's SSE stream and event-kind counters poll.
func (l *EventLog) Tail(seen int64) ([]Event, int64) {
	if l == nil {
		return nil, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	total := l.dropped + int64(l.n)
	oldest := total - int64(l.n) // total index of the oldest retained event
	if seen < oldest {
		seen = oldest
	}
	if seen >= total {
		return nil, total
	}
	count := int(total - seen)
	first := l.head - l.n
	if first < 0 {
		first += len(l.ring)
	}
	first = (first + int(seen-oldest)) % len(l.ring)
	out := make([]Event, 0, count)
	for i := 0; i < count; i++ {
		out = append(out, l.ring[(first+i)%len(l.ring)])
	}
	return out, total
}

// Dropped returns how many events were overwritten because the log was
// full.
func (l *EventLog) Dropped() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// String formats the timeline one event per line, noting overwritten
// events when the ring filled up.
func (l *EventLog) String() string {
	var b strings.Builder
	if d := l.Dropped(); d > 0 {
		fmt.Fprintf(&b, "(%d older events dropped)\n", d)
	}
	for _, e := range l.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// eventf appends to the run's event log, if one was configured.
func (ctx *context) eventf(kind, format string, args ...any) {
	ctx.cfg.Events.Notef(kind, format, args...)
}
