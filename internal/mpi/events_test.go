package mpi

import (
	"strings"
	"testing"
)

func TestEventLogRingBoundsGrowth(t *testing.T) {
	l := NewEventLogSize(4)
	for i := 0; i < 10; i++ {
		l.Notef("note", "event %d", i)
	}
	if l.Len() != 4 {
		t.Fatalf("Len = %d, want 4 (bounded)", l.Len())
	}
	if l.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", l.Dropped())
	}
	evs := l.Events()
	for i, e := range evs {
		want := []string{"event 6", "event 7", "event 8", "event 9"}[i]
		if e.Detail != want {
			t.Fatalf("event %d = %q, want %q (oldest-first, newest retained)", i, e.Detail, want)
		}
	}
	if s := l.String(); !strings.Contains(s, "6 older events dropped") {
		t.Fatalf("String does not note the drop count:\n%s", s)
	}
}

func TestEventLogNoDropUnderCap(t *testing.T) {
	l := NewEventLog()
	for i := 0; i < 100; i++ {
		l.Notef("note", "e%d", i)
	}
	if l.Len() != 100 || l.Dropped() != 0 {
		t.Fatalf("Len=%d Dropped=%d, want 100/0", l.Len(), l.Dropped())
	}
	if l.Events()[0].Detail != "e0" {
		t.Fatal("append order lost")
	}
	if l.Start().IsZero() {
		t.Fatal("Start must be stamped")
	}
}

func TestEventLogNilSafe(t *testing.T) {
	var l *EventLog
	l.Notef("note", "x")
	if l.Len() != 0 || l.Dropped() != 0 || l.Events() != nil {
		t.Fatal("nil log must be empty")
	}
	if !l.Start().IsZero() {
		t.Fatal("nil log has no start")
	}
}
