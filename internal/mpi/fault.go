package mpi

import (
	"sync"
	"time"
)

// Action is the scripted fate of a matched message.
type Action int

const (
	// Drop discards the message; it is never delivered.
	Drop Action = iota
	// Delay withholds delivery for the fault's Delay duration.
	Delay
	// Duplicate delivers the message twice.
	Duplicate
)

// Fault selects one message occurrence on one communicator and the
// action to apply to it. A message is matched by its envelope
// (Comm, Src, Dst, Tag) and by Epoch, the zero-based count of messages
// with that envelope sent so far in the run. Because one sender's sends
// are program-ordered and communicator ids are assigned
// deterministically (world is 0; each Split numbers its colors in
// ascending order), a scripted fault always hits the same message on
// every run.
type Fault struct {
	Comm          int // communicator id (0 = world)
	Src, Dst, Tag int
	Epoch         int           // which matching occurrence, 0-based
	Action        Action        // Drop, Delay or Duplicate
	Delay         time.Duration // Delay action only
}

// FaultPlan scripts deterministic failures for one or more runs: message
// faults by envelope occurrence, and rank kills by step. The plan is
// stateful — occurrence counters persist across RunWith calls sharing
// the plan, and each kill fires at most once — so a campaign driver that
// retries a failed segment sees the fault exactly once and the retry
// runs clean, mirroring a transient hardware failure.
type FaultPlan struct {
	mu     sync.Mutex
	faults []Fault
	kills  map[int]killSpec // rank -> the kill Tick fires for it
	counts map[[4]int]int
}

// killSpec is one scripted rank kill: the step at (or after) which it
// fires, and whether the rank dies silently (no panic, no abort — the
// way a lost node looks) or noisily (a *RankFailedError abort).
type killSpec struct {
	step   int
	silent bool
}

// killKind is takeKill's verdict for one Tick.
type killKind int

const (
	killNone killKind = iota
	killNoisy
	killSilent
)

// NewFaultPlan returns an empty plan.
func NewFaultPlan() *FaultPlan {
	return &FaultPlan{kills: map[int]killSpec{}, counts: map[[4]int]int{}}
}

// Add appends a scripted message fault and returns the plan for
// chaining.
func (p *FaultPlan) Add(f Fault) *FaultPlan {
	p.mu.Lock()
	p.faults = append(p.faults, f)
	p.mu.Unlock()
	return p
}

// Drop scripts dropping the epoch-th (src, dst, tag) message on the
// world communicator.
func (p *FaultPlan) Drop(src, dst, tag, epoch int) *FaultPlan {
	return p.Add(Fault{Src: src, Dst: dst, Tag: tag, Epoch: epoch, Action: Drop})
}

// DelayMsg scripts delaying the epoch-th (src, dst, tag) message on the
// world communicator by d.
func (p *FaultPlan) DelayMsg(src, dst, tag, epoch int, d time.Duration) *FaultPlan {
	return p.Add(Fault{Src: src, Dst: dst, Tag: tag, Epoch: epoch, Action: Delay, Delay: d})
}

// Duplicate scripts duplicating the epoch-th (src, dst, tag) message on
// the world communicator.
func (p *FaultPlan) Duplicate(src, dst, tag, epoch int) *FaultPlan {
	return p.Add(Fault{Src: src, Dst: dst, Tag: tag, Epoch: epoch, Action: Duplicate})
}

// Kill scripts killing the given world rank at the first Comm.Tick whose
// step reaches step. The kill fires once; a retried run continues clean.
func (p *FaultPlan) Kill(rank, step int) *FaultPlan {
	p.mu.Lock()
	p.kills[rank] = killSpec{step: step}
	p.mu.Unlock()
	return p
}

// KillSilent scripts a silent death of the given world rank at the first
// Comm.Tick whose step reaches step: the rank's goroutine simply stops,
// with no panic and no abort, the way a lost node looks from outside.
// Only a RunConfig.Heartbeat (or the watchdog deadline as backstop)
// notices. The kill fires once; a retried run continues clean.
func (p *FaultPlan) KillSilent(rank, step int) *FaultPlan {
	p.mu.Lock()
	p.kills[rank] = killSpec{step: step, silent: true}
	p.mu.Unlock()
	return p
}

// actionFor counts this delivery's envelope occurrence and returns the
// scripted action for it, if any.
func (p *FaultPlan) actionFor(comm, src, dst, tag int) (Action, time.Duration, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	key := [4]int{comm, src, dst, tag}
	epoch := p.counts[key]
	p.counts[key] = epoch + 1
	for _, f := range p.faults {
		if f.Comm == comm && f.Src == src && f.Dst == dst && f.Tag == tag && f.Epoch == epoch {
			return f.Action, f.Delay, true
		}
	}
	return 0, 0, false
}

// takeKill reports whether (and how) rank should die at step, consuming
// the kill.
func (p *FaultPlan) takeKill(rank, step int) killKind {
	p.mu.Lock()
	defer p.mu.Unlock()
	k, ok := p.kills[rank]
	if !ok || step < k.step {
		return killNone
	}
	delete(p.kills, rank)
	if k.silent {
		return killSilent
	}
	return killNoisy
}
