package mpi

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestPanicWakesMailboxWaiters is the rank-panic wedge regression: rank 1
// panics mid-exchange while rank 0 is blocked in a point-to-point Recv
// (mailbox.take), where the old runtime only broadcast on the
// collectives condition and left rank 0 wedged forever.
func TestPanicWakesMailboxWaiters(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		done <- Run(3, func(c *Comm) {
			switch c.Rank() {
			case 0:
				buf := make([]float64, 1)
				c.Recv(1, 7, buf) // never sent: must be woken by the abort
			case 1:
				panic("deliberate mid-exchange failure")
			case 2:
				buf := make([]float64, 1)
				c.Recv(1, 8, buf) // a second wedged waiter
			}
		})
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "rank 1 panicked") {
			t.Errorf("got %v, want rank 1 panic", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run wedged: mailbox waiters were not woken by the rank panic")
	}
}

// TestPanicWakesIrecvWait: a peer blocked in Request.Wait (not a direct
// Recv) must also unwind when another rank panics.
func TestPanicWakesIrecvWait(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		done <- Run(2, func(c *Comm) {
			if c.Rank() == 0 {
				buf := make([]float64, 1)
				req := c.Irecv(1, 3, buf)
				req.Wait()
			} else {
				panic("boom")
			}
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("panic not reported")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run wedged in Request.Wait")
	}
}

// TestAbortReturnsFirstError: Comm.Abort wakes collective and mailbox
// waiters and Run returns the aborting rank's error.
func TestAbortReturnsFirstError(t *testing.T) {
	cause := errors.New("solver blow-up")
	err := Run(4, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Abort(cause)
		case 1:
			buf := make([]float64, 1)
			c.Recv(0, 1, buf)
		default:
			c.Barrier()
		}
	})
	if err == nil || !errors.Is(err, cause) {
		t.Errorf("Run returned %v, want the abort cause", err)
	}
}

// TestDroppedMessageDeadline is acceptance criterion (a) at the runtime
// level: a dropped message surfaces a deadline error naming the blocked
// (src, dst, tag) instead of hanging.
func TestDroppedMessageDeadline(t *testing.T) {
	plan := NewFaultPlan().Drop(0, 1, 3, 0)
	err := RunWith(2, RunConfig{Deadline: 200 * time.Millisecond, Faults: plan}, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 3, []float64{1, 2})
		} else {
			buf := make([]float64, 2)
			c.Recv(0, 3, buf)
		}
	})
	if err == nil {
		t.Fatal("dropped message did not trip the deadline")
	}
	for _, want := range []string{"deadline", "Recv(src=0, dst=1, tag=3, comm=0)", "blocked"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("deadline error missing %q:\n%v", want, err)
		}
	}
}

// TestDeadlineDiagnosticDump: the deadline error lists the pending
// (sent but unreceived) envelopes and the blocked call site.
func TestDeadlineDiagnosticDump(t *testing.T) {
	err := RunWith(2, RunConfig{Deadline: 200 * time.Millisecond}, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 5, []float64{1, 2, 3}) // tag mismatch: receiver wants 6
		} else {
			buf := make([]float64, 3)
			c.Recv(0, 6, buf)
		}
	})
	if err == nil {
		t.Fatal("mismatched exchange did not trip the deadline")
	}
	for _, want := range []string{"pending envelopes", "(src=0, tag=5, 3 elems)", "fault_test.go:"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("diagnostic missing %q:\n%v", want, err)
		}
	}
}

// TestDeadlineNamesBlockedCollective: a rank that never reaches a
// Barrier leaves its peers named in the deadline diagnostic.
func TestDeadlineNamesBlockedCollective(t *testing.T) {
	err := RunWith(3, RunConfig{Deadline: 200 * time.Millisecond}, func(c *Comm) {
		if c.Rank() == 0 {
			return // never enters the barrier
		}
		c.Barrier()
	})
	if err == nil || !strings.Contains(err.Error(), "Barrier(comm=0)") {
		t.Errorf("got %v, want a Barrier deadline diagnostic", err)
	}
}

// TestNoDeadlineNoWatchdog: a clean run under a deadline completes
// without tripping it.
func TestCleanRunUnderDeadline(t *testing.T) {
	err := RunWith(4, RunConfig{Deadline: 5 * time.Second}, func(c *Comm) {
		v := []float64{float64(c.Rank())}
		c.Allreduce(v, OpSum)
		if v[0] != 6 {
			t.Errorf("allreduce = %v", v[0])
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDelayedMessage: a delayed message still arrives and the run
// completes; the receiver simply blocks until delivery.
func TestDelayedMessage(t *testing.T) {
	plan := NewFaultPlan().DelayMsg(0, 1, 0, 0, 50*time.Millisecond)
	err := RunWith(2, RunConfig{Deadline: 5 * time.Second, Faults: plan}, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, []float64{42})
		} else {
			buf := make([]float64, 1)
			c.Recv(0, 0, buf)
			if buf[0] != 42 {
				t.Errorf("delayed payload = %v", buf[0])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDuplicatedMessage: a duplicated message is delivered twice with
// identical payloads.
func TestDuplicatedMessage(t *testing.T) {
	plan := NewFaultPlan().Duplicate(0, 1, 2, 0)
	err := RunWith(2, RunConfig{Deadline: 5 * time.Second, Faults: plan}, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 2, []float64{7})
		} else {
			a := make([]float64, 1)
			b := make([]float64, 1)
			c.Recv(0, 2, a)
			c.Recv(0, 2, b)
			if a[0] != 7 || b[0] != 7 {
				t.Errorf("duplicate payloads %v %v", a[0], b[0])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFaultEpochSelectivity: dropping epoch 0 of an envelope leaves
// epoch 1 to satisfy the receive — the fault hits exactly the scripted
// occurrence.
func TestFaultEpochSelectivity(t *testing.T) {
	plan := NewFaultPlan().Drop(0, 1, 4, 0)
	err := RunWith(2, RunConfig{Deadline: 5 * time.Second, Faults: plan}, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 4, []float64{1}) // dropped
			c.Send(1, 4, []float64{2}) // delivered
		} else {
			buf := make([]float64, 1)
			c.Recv(0, 4, buf)
			if buf[0] != 2 {
				t.Errorf("receive matched epoch-0 payload %v; it should have been dropped", buf[0])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestKillRankAtStep: a scripted kill fires at the rank's Tick and
// aborts the run; surviving ranks blocked in exchanges are woken.
func TestKillRankAtStep(t *testing.T) {
	plan := NewFaultPlan().Kill(1, 3)
	err := RunWith(2, RunConfig{Deadline: 5 * time.Second, Faults: plan}, func(c *Comm) {
		peer := 1 - c.Rank()
		buf := make([]float64, 1)
		for step := 0; step < 6; step++ {
			c.Tick(step)
			c.Send(peer, step, []float64{float64(step)})
			c.Recv(peer, step, buf)
		}
	})
	var rf *RankFailedError
	if !errors.As(err, &rf) || rf.Rank != 1 || rf.Step != 3 || rf.Silent {
		t.Errorf("got %v, want the scripted noisy kill of rank 1 at step 3", err)
	}
	// The kill is consumed: the same plan runs clean afterwards.
	if err := RunWith(2, RunConfig{Deadline: 5 * time.Second, Faults: plan}, func(c *Comm) {
		for step := 0; step < 6; step++ {
			c.Tick(step)
		}
	}); err != nil {
		t.Errorf("consumed kill fired again: %v", err)
	}
}

// TestSplitCommFaultDeterminism: communicator ids from Split are
// deterministic (ascending color order), so a fault scripted on a split
// communicator hits the same panel on every run.
func TestSplitCommFaultDeterminism(t *testing.T) {
	for iter := 0; iter < 5; iter++ {
		plan := NewFaultPlan().Add(Fault{Comm: 1, Src: 0, Dst: 1, Tag: 9, Epoch: 0, Action: Drop})
		var delivered int32
		err := RunWith(4, RunConfig{Deadline: 300 * time.Millisecond, Faults: plan}, func(c *Comm) {
			sub := c.Split(c.Rank()%2, c.Rank()) // color 0 -> comm 1, color 1 -> comm 2
			if sub.Rank() == 0 {
				sub.Send(1, 9, []float64{float64(c.Rank())})
			} else {
				buf := make([]float64, 1)
				sub.Recv(0, 9, buf)
				atomic.AddInt32(&delivered, 1)
			}
		})
		if err == nil || !strings.Contains(err.Error(), "tag=9, comm=1") {
			t.Fatalf("iter %d: got %v, want a comm-1 deadline", iter, err)
		}
		if atomic.LoadInt32(&delivered) != 1 {
			t.Fatalf("iter %d: comm-2 message not delivered (delivered=%d)", iter, delivered)
		}
	}
}

// TestTagContract: user tags must be non-negative; Send, Recv and Irecv
// reject the reserved negative space with a clear panic.
func TestTagContract(t *testing.T) {
	cases := []struct {
		name string
		fn   func(c *Comm)
	}{
		{"Send", func(c *Comm) { c.Send(0, -1, []float64{1}) }},
		{"Recv", func(c *Comm) { c.Recv(0, -5, make([]float64, 1)) }},
		{"Irecv", func(c *Comm) { c.Irecv(0, -1000, make([]float64, 1)) }},
	}
	for _, tc := range cases {
		err := Run(2, func(c *Comm) {
			if c.Rank() == 1 {
				tc.fn(c)
			}
		})
		if err == nil || !strings.Contains(err.Error(), "negative tags are reserved") {
			t.Errorf("%s with negative tag: got %v, want the tag-contract panic", tc.name, err)
		}
	}
}

// TestInternalCollectiveTagsStillWork: the tag contract must not break
// the collectives' own use of the negative tag space.
func TestInternalCollectiveTagsStillWork(t *testing.T) {
	err := Run(5, func(c *Comm) {
		v := []float64{1}
		c.Allreduce(v, OpSum)
		if v[0] != 5 {
			t.Errorf("allreduce = %v", v[0])
		}
		c.Bcast(0, v)
		all := c.Gather(0, v)
		if c.Rank() == 0 && len(all) != 5 {
			t.Errorf("gather len = %d", len(all))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
