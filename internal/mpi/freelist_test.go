package mpi

import (
	"fmt"
	"testing"
)

// TestPayloadFreeListZeroAlloc pins the zero-alloc half of the halo
// path that lives in the runtime: once a payload length has been seen,
// the get/put cycle backing every Send's synchronous copy draws from
// the exact-length free list and allocates nothing.
func TestPayloadFreeListZeroAlloc(t *testing.T) {
	ctx := newContext(RunConfig{})
	// Warm one bucket.
	ctx.putBuf(make([]float64, 4096))
	allocs := testing.AllocsPerRun(100, func() {
		b := ctx.getBuf(4096)
		ctx.putBuf(b)
	})
	if allocs != 0 {
		t.Fatalf("payload free list allocates %v allocs/op in steady state, want 0", allocs)
	}
}

// TestPayloadFreeListExactLength checks the buckets are exact-length:
// a request for an unseen length allocates a fresh buffer rather than
// slicing a longer one.
func TestPayloadFreeListExactLength(t *testing.T) {
	ctx := newContext(RunConfig{})
	ctx.putBuf(make([]float64, 64))
	if got := ctx.getBuf(32); len(got) != 32 || cap(got) != 32 {
		t.Fatalf("getBuf(32) = len %d cap %d, want exact 32", len(got), cap(got))
	}
	if got := ctx.getBuf(64); len(got) != 64 {
		t.Fatalf("getBuf(64) = len %d, want recycled 64", len(got))
	}
}

// TestSendRecvRecyclesPayload checks the end-to-end cycle: a received
// message's internal copy is returned to the free list and reused by
// the next same-length send.
func TestSendRecvRecyclesPayload(t *testing.T) {
	err := Run(2, func(c *Comm) {
		peer := 1 - c.Rank()
		out := make([]float64, 256)
		in := make([]float64, 256)
		for round := 0; round < 4; round++ {
			out[0] = float64(round)
			req := c.Irecv(peer, 3, in)
			c.Send(peer, 3, out)
			req.Wait()
			if in[0] != float64(round) {
				c.Abort(fmt.Errorf("round %d: got %v", round, in[0]))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
