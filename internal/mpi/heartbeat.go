package mpi

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Heartbeat configures rank-failure detection. When set on a
// RunConfig, every rank gets a companion beater goroutine that records
// a liveness beat each Interval for as long as the rank is alive (the
// beater is independent of the rank's own progress, so a rank deep in a
// compute phase or blocked in a healthy exchange keeps beating). A
// monitor escalates silent ranks suspect -> confirmed: a rank silent
// past SuspectAfter is suspected (and cleared if it beats again); one
// silent past ConfirmAfter is declared dead and the run aborts with a
// *RankFailedError naming the rank and its last completed step — within
// a few heartbeat intervals, not at the watchdog deadline. The deadline
// watchdog stays as the backstop for wedges (live ranks stuck waiting
// on each other), which heartbeats deliberately do not flag.
type Heartbeat struct {
	// Interval is the beat period (default 5ms).
	Interval time.Duration
	// SuspectAfter is the silence after which a rank is suspected
	// (default 4x Interval).
	SuspectAfter time.Duration
	// ConfirmAfter is the silence after which a suspected rank is
	// confirmed dead and the run aborts (default 20x Interval — generous
	// against scheduler and GC stalls of a loaded host).
	ConfirmAfter time.Duration
}

// withDefaults fills zero fields with the documented defaults.
func (h Heartbeat) withDefaults() Heartbeat {
	if h.Interval <= 0 {
		h.Interval = 5 * time.Millisecond
	}
	if h.SuspectAfter <= 0 {
		h.SuspectAfter = 4 * h.Interval
	}
	if h.ConfirmAfter <= 0 {
		h.ConfirmAfter = 20 * h.Interval
	}
	if h.ConfirmAfter < h.SuspectAfter {
		h.ConfirmAfter = h.SuspectAfter
	}
	return h
}

// RankFailedError reports a dead rank: killed by a scripted fault, or
// confirmed dead by heartbeat silence. Campaign drivers match it with
// errors.As to treat rank loss as a transient, retryable failure.
type RankFailedError struct {
	// Rank is the world rank that died.
	Rank int
	// Step is the last step the rank reached (its last Comm.Tick).
	Step int
	// Silent reports heartbeat detection of an unannounced death, as
	// opposed to a scripted kill that unwound the rank directly.
	Silent bool
	// Silence is the heartbeat silence at confirmation (Silent only).
	Silence time.Duration
}

func (e *RankFailedError) Error() string {
	if e.Silent {
		return fmt.Sprintf("mpi: rank %d failed: heartbeat silent for %v (last completed step %d)",
			e.Rank, e.Silence.Round(time.Millisecond), e.Step)
	}
	return fmt.Sprintf("mpi: fault injection killed rank %d at step %d", e.Rank, e.Step)
}

// hbState is the per-run heartbeat bookkeeping: one beat timestamp,
// completion flag and suspicion flag per rank, shared lock-free between
// the beaters and the monitor.
type hbState struct {
	ctx *context
	cfg Heartbeat

	lastBeat  []atomic.Int64 // UnixNano of the rank's latest beat
	completed []atomic.Bool  // fn returned normally: silence is not death
	suspected []atomic.Bool
}

func newHBState(ctx *context, cfg Heartbeat, n int) *hbState {
	hb := &hbState{
		ctx:       ctx,
		cfg:       cfg.withDefaults(),
		lastBeat:  make([]atomic.Int64, n),
		completed: make([]atomic.Bool, n),
		suspected: make([]atomic.Bool, n),
	}
	now := time.Now().UnixNano()
	for r := 0; r < n; r++ {
		hb.lastBeat[r].Store(now)
	}
	return hb
}

// startBeater launches rank's companion beater goroutine and returns
// its stop channel; the caller closes it when the rank goroutine exits
// (normal return, panic and silent death alike — a dead rank must fall
// silent). An elastic replacement rank starts a fresh beater for the
// same slot, so the stop channel belongs to the goroutine, not the
// slot.
func (hb *hbState) startBeater(rank int) chan struct{} {
	stop := make(chan struct{})
	hb.lastBeat[rank].Store(time.Now().UnixNano())
	go func() {
		ticker := time.NewTicker(hb.cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				hb.lastBeat[rank].Store(time.Now().UnixNano())
			}
		}
	}()
	return stop
}

// markCompleted records a normal return of the rank function; the
// monitor then ignores the rank's silence. It must be called before
// the rank's beater stop channel is closed, so the monitor never
// observes a stopped-but-uncompleted healthy rank.
func (hb *hbState) markCompleted(rank int) {
	hb.completed[rank].Store(true)
}

// refresh resets the liveness baseline of every rank: beats read "now",
// completion and suspicion marks are cleared. An elastic fence calls it
// so (a) the freshly respawned rank is not instantly re-confirmed from
// its predecessor's stale beat, and (b) survivors' completion marks —
// which belong to the fenced-out epoch — do not hide a later death.
func (hb *hbState) refresh() {
	now := time.Now().UnixNano()
	for r := range hb.lastBeat {
		hb.lastBeat[r].Store(now)
		hb.completed[r].Store(false)
		hb.suspected[r].Store(false)
	}
}

// monitor scans the beat records and escalates silent ranks; it runs
// until stop closes or it confirms a death.
func (hb *hbState) monitor(stop <-chan struct{}) {
	ticker := time.NewTicker(hb.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			now := time.Now()
			for r := range hb.lastBeat {
				if hb.completed[r].Load() {
					continue
				}
				silence := now.Sub(time.Unix(0, hb.lastBeat[r].Load()))
				step := int(hb.ctx.lastStep[r].Load())
				switch {
				case silence > hb.cfg.ConfirmAfter:
					hb.ctx.eventf("hb.confirm", "rank=%d silence=%v step=%d", r, silence.Round(time.Millisecond), step)
					err := &RankFailedError{Rank: r, Step: step, Silent: true, Silence: silence}
					if hb.ctx.tryFence(r, err, true) {
						// Replaced surgically: the monitor keeps watching
						// the new epoch instead of ending the run.
						continue
					}
					hb.ctx.abort(err)
					return
				case silence > hb.cfg.SuspectAfter:
					if hb.suspected[r].CompareAndSwap(false, true) {
						hb.ctx.eventf("hb.suspect", "rank=%d silence=%v step=%d", r, silence.Round(time.Millisecond), step)
					}
				default:
					if hb.suspected[r].CompareAndSwap(true, false) {
						hb.ctx.eventf("hb.clear", "rank=%d beat again", r)
					}
				}
			}
		}
	}
}
