package mpi

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// hbCfg is a fast heartbeat config for tests: detection within ~150ms,
// with a confirm window wide enough that race-detector scheduling
// starvation of a healthy beater cannot fake a death.
func hbCfg() *Heartbeat {
	return &Heartbeat{Interval: 3 * time.Millisecond, ConfirmAfter: 150 * time.Millisecond}
}

// TestHeartbeatDetectsSilentKill: a silently killed rank is confirmed
// dead by heartbeat as a typed *RankFailedError naming rank and last
// completed step, well before the watchdog deadline.
func TestHeartbeatDetectsSilentKill(t *testing.T) {
	const deadline = 10 * time.Second
	plan := NewFaultPlan().KillSilent(1, 2)
	events := NewEventLog()
	start := time.Now()
	err := RunWith(2, RunConfig{
		Deadline:  deadline,
		Faults:    plan,
		Heartbeat: hbCfg(),
		Events:    events,
	}, func(c *Comm) {
		for step := 0; step < 50; step++ {
			c.Tick(step)
			vals := []float64{1}
			c.Allreduce(vals, OpSum)
		}
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("silent kill went undetected")
	}
	var rf *RankFailedError
	if !errors.As(err, &rf) {
		t.Fatalf("want *RankFailedError, got %T: %v", err, err)
	}
	if rf.Rank != 1 || !rf.Silent {
		t.Fatalf("want silent failure of rank 1, got %+v", rf)
	}
	if rf.Step != 2 {
		t.Fatalf("want last completed step 2, got %d", rf.Step)
	}
	// Detection latency must be a small multiple of the heartbeat
	// interval, far below the watchdog deadline the run would otherwise
	// have burned.
	if elapsed > deadline/10 {
		t.Fatalf("detection took %v, not well before the %v deadline", elapsed, deadline)
	}
	var sawConfirm bool
	for _, e := range events.Events() {
		if e.Kind == "hb.confirm" {
			sawConfirm = true
		}
	}
	if !sawConfirm {
		t.Fatalf("timeline missing hb.confirm:\n%s", events)
	}
}

// TestHeartbeatSilentKillWithoutHeartbeat: without a heartbeat the same
// silent death is only caught by the watchdog deadline — the backstop
// the heartbeat exists to beat.
func TestHeartbeatSilentKillWithoutHeartbeat(t *testing.T) {
	plan := NewFaultPlan().KillSilent(1, 2)
	err := RunWith(2, RunConfig{Deadline: 150 * time.Millisecond, Faults: plan}, func(c *Comm) {
		for step := 0; step < 50; step++ {
			c.Tick(step)
			vals := []float64{1}
			c.Allreduce(vals, OpSum)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("want watchdog deadline abort, got %v", err)
	}
}

// TestHeartbeatCleanRun: a healthy run under heartbeat finishes without
// false positives, even with compute phases longer than ConfirmAfter —
// the beater is independent of rank progress.
func TestHeartbeatCleanRun(t *testing.T) {
	events := NewEventLog()
	err := RunWith(3, RunConfig{
		Deadline:  5 * time.Second,
		Heartbeat: &Heartbeat{Interval: 2 * time.Millisecond, ConfirmAfter: 80 * time.Millisecond},
		Events:    events,
	}, func(c *Comm) {
		for step := 0; step < 3; step++ {
			c.Tick(step)
			time.Sleep(120 * time.Millisecond) // "compute" >> ConfirmAfter
			vals := []float64{1}
			c.Allreduce(vals, OpSum)
		}
	})
	if err != nil {
		t.Fatalf("healthy run flagged: %v\n%s", err, events)
	}
	for _, e := range events.Events() {
		if e.Kind == "hb.confirm" {
			t.Fatalf("false heartbeat confirmation:\n%s", events)
		}
	}
}

// TestNoisyKillIsTyped: a scripted (noisy) Kill surfaces as the same
// typed *RankFailedError, keeping the historical message text.
func TestNoisyKillIsTyped(t *testing.T) {
	plan := NewFaultPlan().Kill(1, 3)
	err := RunWith(2, RunConfig{Deadline: 2 * time.Second, Faults: plan}, func(c *Comm) {
		for step := 0; step < 10; step++ {
			c.Tick(step)
			vals := []float64{1}
			c.Allreduce(vals, OpSum)
		}
	})
	var rf *RankFailedError
	if !errors.As(err, &rf) {
		t.Fatalf("want *RankFailedError, got %T: %v", err, err)
	}
	if rf.Rank != 1 || rf.Step != 3 || rf.Silent {
		t.Fatalf("want noisy kill of rank 1 at step 3, got %+v", rf)
	}
	//yyvet:ignore typed-err this test pins the rendered message itself, right after the typed assertion above
	if !strings.Contains(err.Error(), "killed rank 1 at step 3") {
		t.Fatalf("kill message changed: %v", err)
	}
}
