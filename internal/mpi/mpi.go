// Package mpi is a small message-passing runtime over goroutines that
// mirrors the MPI constructs the paper's yycore code uses: a world
// communicator, MPI_COMM_SPLIT to divide the processes into the Yin panel
// and the Yang panel, MPI_CART_CREATE to build a two-dimensional process
// grid within each panel, MPI_CART_SHIFT to find the four nearest
// neighbours, point-to-point MPI_SEND/MPI_IRECV for halo and overset
// exchanges, and the usual collectives.
//
// Ranks are goroutines; messages are copied into unbounded per-rank
// mailboxes, so a Send never blocks and deterministic SPMD programs are
// deadlock-free. Every payload byte is reported to perfcount, feeding the
// communication term of the Earth Simulator performance model.
package mpi

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/perfcount"
)

// message is a delivered payload with its matching envelope.
type message struct {
	src, tag int
	data     []float64
}

// mailbox is an unbounded queue of messages for one (comm, rank) pair.
type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []message
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(m message) {
	mb.mu.Lock()
	mb.queue = append(mb.queue, m)
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// take blocks until a message matching (src, tag) is present and removes
// the first such message (FIFO per envelope).
func (mb *mailbox) take(src, tag int) message {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		for i, m := range mb.queue {
			if m.src == src && m.tag == tag {
				mb.queue = append(mb.queue[:i], mb.queue[i+1:]...)
				return m
			}
		}
		mb.cond.Wait()
	}
}

// context is the state shared by every rank of one Run.
type context struct {
	mu sync.Mutex
	// mailboxes indexed by communicator id, then rank.
	boxes map[int][]*mailbox
	// deterministic communicator ids for Split results.
	commIDs map[string]int
	nextID  int
	// barrier state per (comm id, epoch).
	barriers map[string]*barrierState
	// split rendezvous per (comm id, epoch).
	splits map[string]*splitState
}

type barrierState struct {
	count int
	gen   int
}

type splitState struct {
	entries map[int][2]int // rank -> (color, key)
	done    bool
}

func newContext() *context {
	return &context{
		boxes:    map[int][]*mailbox{},
		commIDs:  map[string]int{},
		nextID:   1,
		barriers: map[string]*barrierState{},
		splits:   map[string]*splitState{},
	}
}

// Comm is one rank's handle on a communicator.
type Comm struct {
	ctx  *context
	id   int
	rank int
	size int
	// epoch counters for collective matching (SPMD order).
	splitEpoch   int
	barrierEpoch int
	reduceEpoch  int
	cond         *sync.Cond // shared condition for barrier waiting
}

// Rank returns the caller's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return c.size }

// Run launches n ranks and executes fn on each with its world
// communicator. It returns an error if any rank panics.
func Run(n int, fn func(c *Comm)) error {
	if n <= 0 {
		return fmt.Errorf("mpi: need a positive rank count, got %d", n)
	}
	ctx := newContext()
	boxes := make([]*mailbox, n)
	for i := range boxes {
		boxes[i] = newMailbox()
	}
	ctx.boxes[0] = boxes

	var wg sync.WaitGroup
	errs := make([]error, n)
	cond := sync.NewCond(&ctx.mu)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, rec)
					// Wake any ranks blocked in collectives so Run ends.
					ctx.mu.Lock()
					cond.Broadcast()
					ctx.mu.Unlock()
				}
			}()
			fn(&Comm{ctx: ctx, id: 0, rank: rank, size: n, cond: cond})
		}(r)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// Send delivers a copy of data to rank dst under the given tag. It never
// blocks (buffered semantics).
func (c *Comm) Send(dst, tag int, data []float64) {
	if dst < 0 || dst >= c.size {
		panic(fmt.Sprintf("mpi: send to invalid rank %d of %d", dst, c.size))
	}
	cp := make([]float64, len(data))
	copy(cp, data)
	c.ctx.mu.Lock()
	box := c.ctx.boxes[c.id][dst]
	c.ctx.mu.Unlock()
	box.put(message{src: c.rank, tag: tag, data: cp})
	perfcount.AddComm(int64(8 * len(data)))
}

// Recv blocks until a message from src with the given tag arrives and
// copies it into buf, returning the element count. The payload must fit.
func (c *Comm) Recv(src, tag int, buf []float64) int {
	if src < 0 || src >= c.size {
		panic(fmt.Sprintf("mpi: recv from invalid rank %d of %d", src, c.size))
	}
	c.ctx.mu.Lock()
	box := c.ctx.boxes[c.id][c.rank]
	c.ctx.mu.Unlock()
	m := box.take(src, tag)
	if len(m.data) > len(buf) {
		panic(fmt.Sprintf("mpi: message of %d elements overflows buffer of %d", len(m.data), len(buf)))
	}
	copy(buf, m.data)
	return len(m.data)
}

// Request is a pending non-blocking receive.
type Request struct {
	done chan int
}

// Wait blocks until the receive completes and returns the element count.
func (r *Request) Wait() int { return <-r.done }

// Irecv posts a non-blocking receive into buf; complete it with Wait.
// The buffer must not be read (and no overlapping Recv posted) until
// Wait returns — cmd/yyvet's irecv-wait analyzer enforces the Wait.
func (c *Comm) Irecv(src, tag int, buf []float64) *Request {
	req := &Request{done: make(chan int, 1)}
	go func() {
		req.done <- c.Recv(src, tag, buf)
	}()
	return req
}

// Waitall completes every pending request in order and returns the
// element counts, the analogue of MPI_WAITALL. Nil requests (receives
// that were never posted, e.g. at a domain edge) are skipped with a
// count of -1.
func Waitall(reqs ...*Request) []int {
	counts := make([]int, len(reqs))
	for i, r := range reqs {
		if r == nil {
			counts[i] = -1
			continue
		}
		counts[i] = r.Wait()
	}
	return counts
}

// Barrier blocks until every rank of the communicator has entered it.
func (c *Comm) Barrier() {
	key := fmt.Sprintf("b:%d:%d", c.id, c.barrierEpoch)
	c.barrierEpoch++
	ctx := c.ctx
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	st := ctx.barriers[key]
	if st == nil {
		st = &barrierState{}
		ctx.barriers[key] = st
	}
	st.count++
	if st.count == c.size {
		st.gen = 1
		c.cond.Broadcast()
		delete(ctx.barriers, key)
		return
	}
	for st.gen == 0 {
		c.cond.Wait()
	}
}

// Op is a reduction operator for Allreduce.
type Op int

// Reduction operators.
const (
	OpSum Op = iota
	OpMax
	OpMin
)

func (o Op) apply(a, b float64) float64 {
	switch o {
	case OpSum:
		return a + b
	case OpMax:
		if b > a {
			return b
		}
		return a
	case OpMin:
		if b < a {
			return b
		}
		return a
	}
	panic("mpi: unknown op")
}

// internal tags live in a reserved negative space so they can never
// collide with user tags (which must be non-negative).
const (
	tagReduceUp = -1000 - iota
	tagReduceDown
	tagGather
	tagBcast
)

// Allreduce combines vals element-wise across all ranks with op, in rank
// order at the root for determinism, and replaces vals with the result on
// every rank.
func (c *Comm) Allreduce(vals []float64, op Op) {
	epoch := c.reduceEpoch
	c.reduceEpoch++
	up := tagReduceUp - 4*epoch
	down := tagReduceDown - 4*epoch
	if c.rank == 0 {
		buf := make([]float64, len(vals))
		for src := 1; src < c.size; src++ {
			n := c.Recv(src, up, buf)
			if n != len(vals) {
				panic("mpi: allreduce length mismatch")
			}
			for i := range vals {
				vals[i] = op.apply(vals[i], buf[i])
			}
		}
		for dst := 1; dst < c.size; dst++ {
			c.Send(dst, down, vals)
		}
		return
	}
	c.Send(0, up, vals)
	c.Recv(0, down, vals)
}

// Bcast distributes root's vals to every rank.
func (c *Comm) Bcast(root int, vals []float64) {
	epoch := c.reduceEpoch
	c.reduceEpoch++
	tag := tagBcast - 4*epoch
	if c.rank == root {
		for dst := 0; dst < c.size; dst++ {
			if dst != root {
				c.Send(dst, tag, vals)
			}
		}
		return
	}
	c.Recv(root, tag, vals)
}

// Gather collects each rank's vals at root, concatenated in rank order;
// non-root ranks get nil.
func (c *Comm) Gather(root int, vals []float64) []float64 {
	epoch := c.reduceEpoch
	c.reduceEpoch++
	tag := tagGather - 4*epoch
	if c.rank != root {
		c.Send(root, tag, vals)
		return nil
	}
	out := make([]float64, 0, len(vals)*c.size)
	buf := make([]float64, len(vals))
	for src := 0; src < c.size; src++ {
		if src == root {
			out = append(out, vals...)
			continue
		}
		n := c.Recv(src, tag, buf)
		if n != len(vals) {
			panic("mpi: gather length mismatch")
		}
		out = append(out, buf[:n]...)
	}
	return out
}

// Split partitions the communicator by color, ordering ranks within each
// new communicator by (key, old rank), exactly like MPI_COMM_SPLIT. All
// ranks of the communicator must call it collectively.
func (c *Comm) Split(color, key int) *Comm {
	epoch := c.splitEpoch
	c.splitEpoch++
	skey := fmt.Sprintf("s:%d:%d", c.id, epoch)
	ctx := c.ctx
	ctx.mu.Lock()
	st := ctx.splits[skey]
	if st == nil {
		st = &splitState{entries: map[int][2]int{}}
		ctx.splits[skey] = st
	}
	st.entries[c.rank] = [2]int{color, key}
	if len(st.entries) == c.size {
		st.done = true
		c.cond.Broadcast()
	}
	for !st.done {
		c.cond.Wait()
	}
	// Deterministically derive the new communicator for this rank's color.
	type member struct{ key, rank int }
	var group []member
	for r, ck := range st.entries {
		if ck[0] == color {
			group = append(group, member{ck[1], r})
		}
	}
	sort.Slice(group, func(i, j int) bool {
		if group[i].key != group[j].key {
			return group[i].key < group[j].key
		}
		return group[i].rank < group[j].rank
	})
	idKey := fmt.Sprintf("c:%d:%d:%d", c.id, epoch, color)
	newID, ok := ctx.commIDs[idKey]
	if !ok {
		newID = ctx.nextID
		ctx.nextID++
		ctx.commIDs[idKey] = newID
		boxes := make([]*mailbox, len(group))
		for i := range boxes {
			boxes[i] = newMailbox()
		}
		ctx.boxes[newID] = boxes
	}
	newRank := -1
	for i, m := range group {
		if m.rank == c.rank {
			newRank = i
		}
	}
	ctx.mu.Unlock()
	return &Comm{ctx: ctx, id: newID, rank: newRank, size: len(group), cond: c.cond}
}
