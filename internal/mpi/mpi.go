// Package mpi is a small message-passing runtime over goroutines that
// mirrors the MPI constructs the paper's yycore code uses: a world
// communicator, MPI_COMM_SPLIT to divide the processes into the Yin panel
// and the Yang panel, MPI_CART_CREATE to build a two-dimensional process
// grid within each panel, MPI_CART_SHIFT to find the four nearest
// neighbours, point-to-point MPI_SEND/MPI_IRECV for halo and overset
// exchanges, and the usual collectives.
//
// Ranks are goroutines; messages are copied into unbounded per-rank
// mailboxes, so a Send never blocks and deterministic SPMD programs are
// deadlock-free. Every payload byte is reported to perfcount, feeding the
// communication term of the Earth Simulator performance model.
//
// The runtime is fault-aware, because the paper's production runs were
// week-long campaigns on 4096 processors where hangs and lost ranks are
// the norm, not the exception. RunWith accepts a RunConfig carrying a
// deadline (a rank blocked longer than the deadline aborts the whole run
// with a diagnostic dump of every blocked rank and every pending
// envelope, instead of hanging silently) and a scripted FaultPlan
// (deterministically drop, delay or duplicate a chosen message, or kill
// a rank at a chosen step) so tests can rehearse failures. Comm.Abort
// wakes every rank blocked anywhere in the runtime — collectives and
// point-to-point mailbox waits alike — so Run returns the first error
// promptly.
package mpi

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/perfcount"
)

// message is a delivered payload with its matching envelope. Messages
// sent through the reliable transport additionally carry their stream
// sequence number (rel marks them; seq is meaningless otherwise).
type message struct {
	src, tag int
	seq      int
	rel      bool
	data     []float64
}

// abortSignal is the panic payload that unwinds a rank woken by an
// abort. Run's recover recognizes it and keeps the primary abort error
// rather than reporting every unwound rank as a fresh panic.
type abortSignal struct{ err error }

// mailbox is an unbounded queue of messages for one (comm, rank) pair.
// Under the reliable transport it is also the receiver endpoint: put
// suppresses duplicate sequence numbers and acknowledges deliveries,
// and take releases sequenced messages strictly in order.
type mailbox struct {
	mu       sync.Mutex
	cond     *sync.Cond
	queue    []message
	abortErr error
	// fenceSig, when non-nil, marks a mailbox fenced out by a
	// membership-epoch change (elastic runs): waiters unwind with it,
	// and late deliveries are discarded without acknowledgment so no
	// message or ack crosses the epoch boundary.
	fenceSig *fenceSignal

	ctx         *context
	comm, owner int
	// rel is the reliable-transport state this mailbox acknowledges
	// into — pinned at creation so a fenced mailbox can only ever ack
	// its own epoch's (already retired) transport.
	rel *relState
	// expected maps (src, tag) to the next sequence number take may
	// release; anything below it is a duplicate. Lazily allocated by the
	// first reliable insertion.
	expected map[[2]int]int
}

func newMailbox(ctx *context, comm, owner int) *mailbox {
	mb := &mailbox{ctx: ctx, comm: comm, owner: owner, rel: ctx.rel}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(m message) {
	if m.rel {
		mb.putReliable(m)
		return
	}
	mb.mu.Lock()
	if mb.fenceSig != nil {
		mb.mu.Unlock()
		mb.ctx.putBuf(m.data)
		return
	}
	mb.queue = append(mb.queue, m)
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// putReliable inserts a sequenced message, suppressing duplicates
// (already released, or still queued), and acknowledges the sequence
// number either way — a retransmission racing a delayed original must
// settle the sender's timer even though its payload is discarded.
func (mb *mailbox) putReliable(m message) {
	key := [2]int{m.src, m.tag}
	mb.mu.Lock()
	if mb.fenceSig != nil {
		// Fenced out: discard without acknowledging — the sender's
		// epoch (and its retransmit timers) has been retired wholesale.
		mb.mu.Unlock()
		mb.ctx.putBuf(m.data)
		return
	}
	if mb.expected == nil {
		mb.expected = map[[2]int]int{}
	}
	dup := m.seq < mb.expected[key]
	if !dup {
		for _, q := range mb.queue {
			if q.rel && q.src == m.src && q.tag == m.tag && q.seq == m.seq {
				dup = true
				break
			}
		}
	}
	if !dup {
		mb.queue = append(mb.queue, m)
	}
	mb.mu.Unlock()
	if dup {
		mb.ctx.putBuf(m.data)
	} else {
		mb.cond.Broadcast()
	}
	if rs := mb.rel; rs != nil {
		rs.ack(mb.comm, m.src, mb.owner, m.tag, m.seq)
	}
}

// take blocks until a message matching (src, tag) is present and removes
// the first such message (FIFO per envelope; sequenced messages only in
// sequence order, so a reordered retransmission cannot overtake). An
// abort unwinds the waiter instead of leaving it wedged.
func (mb *mailbox) take(src, tag int) message {
	key := [2]int{src, tag}
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		if mb.abortErr != nil {
			panic(abortSignal{mb.abortErr})
		}
		if mb.fenceSig != nil {
			panic(*mb.fenceSig)
		}
		for i, m := range mb.queue {
			if m.src != src || m.tag != tag {
				continue
			}
			if m.rel {
				// mb.expected is non-nil here: a queued reliable message
				// implies putReliable allocated it.
				if m.seq != mb.expected[key] {
					continue
				}
				mb.expected[key]++
			}
			mb.queue = append(mb.queue[:i], mb.queue[i+1:]...)
			return m
		}
		mb.cond.Wait()
	}
}

// abort marks the mailbox dead and wakes its waiters.
func (mb *mailbox) abort(err error) {
	mb.mu.Lock()
	if mb.abortErr == nil {
		mb.abortErr = err
	}
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// doFence marks the mailbox fenced out of the world membership, wakes
// its waiters (they unwind with the fence signal and re-enter at the
// new epoch) and recycles any queued payloads — messages of a retired
// epoch are undeliverable by definition.
func (mb *mailbox) doFence(sig fenceSignal) {
	mb.mu.Lock()
	if mb.fenceSig == nil {
		mb.fenceSig = &sig
		for _, m := range mb.queue {
			mb.ctx.putBuf(m.data)
		}
		mb.queue = nil
	}
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// pendingEnvelopes snapshots the undelivered envelopes for diagnostics.
func (mb *mailbox) pendingEnvelopes() []envelope {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	out := make([]envelope, len(mb.queue))
	for i, m := range mb.queue {
		out[i] = envelope{src: m.src, tag: m.tag, elems: len(m.data)}
	}
	return out
}

// envelope is the diagnostic summary of one undelivered message.
type envelope struct{ src, tag, elems int }

// waiter records one rank blocked in the runtime, for the deadline
// watchdog's diagnostics.
type waiter struct {
	rank, comm int
	kind       string // "Recv", "Barrier" or "Split"
	src, tag   int    // Recv only
	site       string // caller's file:line
	since      time.Time
}

func (w *waiter) describe() string {
	if w.kind == "Recv" {
		return fmt.Sprintf("Recv(src=%d, dst=%d, tag=%d, comm=%d) at %s", w.src, w.rank, w.tag, w.comm, w.site)
	}
	return fmt.Sprintf("%s(comm=%d) at %s", w.kind, w.comm, w.site)
}

// callerSite names the file:line of the exported entry point's caller;
// it must be invoked directly from the exported function.
func callerSite() string {
	_, file, line, ok := runtime.Caller(2)
	if !ok {
		return "?"
	}
	if i := strings.LastIndexByte(file, '/'); i >= 0 {
		file = file[i+1:]
	}
	return fmt.Sprintf("%s:%d", file, line)
}

// context is the state shared by every rank of one Run.
type context struct {
	mu sync.Mutex
	// mailboxes indexed by communicator id, then rank.
	boxes map[int][]*mailbox

	// bufMu guards bufPool, the exact-length free lists backing message
	// payload copies: send draws its copy buffer here and recv returns
	// it once the receiver has copied the data out, so the steady-state
	// point-to-point path performs no payload allocations. An explicit
	// free list (rather than sync.Pool) keeps allocs/op deterministically
	// zero after warmup, which the halo benchmarks assert.
	bufMu   sync.Mutex
	bufPool map[int][][]float64
	// deterministic communicator ids for Split results.
	commIDs map[string]int
	nextID  int
	// barrier state per (comm id, epoch).
	barriers map[string]*barrierState
	// split rendezvous per (comm id, epoch).
	splits map[string]*splitState

	cond     *sync.Cond // shared condition for collective waiting
	cfg      RunConfig
	abortErr error
	waiters  map[*waiter]struct{}

	// rel is the reliable-transport state (nil on fail-fast runs); on
	// elastic runs it is replaced wholesale at every membership fence.
	rel *relState
	// lastStep records, per world rank, the last step number the rank
	// passed to Comm.Tick (-1 before the first), for failure diagnostics.
	lastStep []atomic.Int64

	// Elastic-run state (nil/zero on ordinary runs). epoch is the world
	// membership epoch, bumped by every fence; completed/ncomplete track
	// which ranks finished the current epoch; finished latches once every
	// rank completed the same epoch; runOver closes the respawn window
	// after the main goroutine stops waiting. spawn launches a runner
	// for a rank slot (installed by runElastic); hb backs fence-time
	// liveness resets.
	elastic    *Elastic
	epoch      int
	replaced   int
	fenceCause error
	completed  []bool
	ncomplete  int
	finished   bool
	runOver    bool
	spawn      func(rank int)
	hb         *hbState
}

type barrierState struct {
	count int
	gen   int
}

type splitState struct {
	entries map[int][2]int // rank -> (color, key)
	done    bool
}

func newContext(cfg RunConfig) *context {
	ctx := &context{
		boxes:    map[int][]*mailbox{},
		commIDs:  map[string]int{},
		nextID:   1,
		barriers: map[string]*barrierState{},
		splits:   map[string]*splitState{},
		cfg:      cfg,
		waiters:  map[*waiter]struct{}{},
		bufPool:  map[int][][]float64{},
	}
	ctx.cond = sync.NewCond(&ctx.mu)
	return ctx
}

// abort records the first error and wakes every blocked rank: the
// collectives waiters through the shared condition and every mailbox
// waiter through its own. Later aborts keep the first cause.
func (ctx *context) abort(err error) {
	ctx.mu.Lock()
	if ctx.abortErr != nil {
		ctx.mu.Unlock()
		return
	}
	ctx.abortErr = err
	var boxes []*mailbox
	for _, bs := range ctx.boxes {
		boxes = append(boxes, bs...)
	}
	ctx.cond.Broadcast()
	ctx.mu.Unlock()
	for _, mb := range boxes {
		mb.abort(err)
	}
}

// getBuf returns a payload buffer of exactly n elements, reusing a
// previously released one when available.
func (ctx *context) getBuf(n int) []float64 {
	ctx.bufMu.Lock()
	if list := ctx.bufPool[n]; len(list) > 0 {
		b := list[len(list)-1]
		list[len(list)-1] = nil
		ctx.bufPool[n] = list[:len(list)-1]
		ctx.bufMu.Unlock()
		return b
	}
	ctx.bufMu.Unlock()
	return make([]float64, n)
}

// putBuf releases a payload buffer back to the free list. The caller
// must not touch b afterwards.
func (ctx *context) putBuf(b []float64) {
	if len(b) == 0 {
		return
	}
	ctx.bufMu.Lock()
	ctx.bufPool[len(b)] = append(ctx.bufPool[len(b)], b)
	ctx.bufMu.Unlock()
}

// register adds a blocked-rank record when a deadline is armed; it
// returns nil (a no-op for unregister) otherwise.
func (ctx *context) register(w *waiter) *waiter {
	if ctx.cfg.Deadline <= 0 {
		return nil
	}
	w.since = time.Now()
	ctx.mu.Lock()
	ctx.waiters[w] = struct{}{}
	ctx.mu.Unlock()
	return w
}

func (ctx *context) unregister(w *waiter) {
	if w == nil {
		return
	}
	ctx.mu.Lock()
	delete(ctx.waiters, w)
	ctx.mu.Unlock()
}

// watchdog polls the waiter registry and aborts the run with a
// deadlock diagnostic once any rank has been blocked past the deadline.
func (ctx *context) watchdog(deadline time.Duration, stop <-chan struct{}) {
	interval := deadline / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			if err := ctx.checkDeadline(deadline); err != nil {
				ctx.abort(err)
				return
			}
		}
	}
}

// checkDeadline returns a diagnostic error when some rank has been
// blocked longer than the deadline, nil otherwise. The diagnostic names
// the longest-blocked call's full envelope, lists every blocked rank
// with its call site, and dumps the pending (sent but unreceived)
// envelopes of every mailbox — the data needed to see which message a
// deadlocked exchange is missing.
func (ctx *context) checkDeadline(deadline time.Duration) error {
	now := time.Now()
	ctx.mu.Lock()
	if ctx.abortErr != nil {
		ctx.mu.Unlock()
		return nil
	}
	var blocked []*waiter
	expired := false
	for w := range ctx.waiters {
		blocked = append(blocked, w)
		if now.Sub(w.since) > deadline {
			expired = true
		}
	}
	type commBox struct {
		comm, rank int
		mb         *mailbox
	}
	var boxes []commBox
	if expired {
		for id, bs := range ctx.boxes {
			for r, mb := range bs {
				boxes = append(boxes, commBox{id, r, mb})
			}
		}
	}
	ctx.mu.Unlock()
	if !expired {
		return nil
	}

	sort.Slice(blocked, func(i, j int) bool { return blocked[i].since.Before(blocked[j].since) })
	sort.Slice(boxes, func(i, j int) bool {
		if boxes[i].comm != boxes[j].comm {
			return boxes[i].comm < boxes[j].comm
		}
		return boxes[i].rank < boxes[j].rank
	})

	var b strings.Builder
	oldest := blocked[0]
	fmt.Fprintf(&b, "mpi: deadline %v exceeded: rank %d blocked %v in %s",
		deadline, oldest.rank, now.Sub(oldest.since).Round(time.Millisecond), oldest.describe())
	b.WriteString("\nblocked ranks:")
	for _, w := range blocked {
		fmt.Fprintf(&b, "\n  rank %d: %s, blocked %v", w.rank, w.describe(), now.Sub(w.since).Round(time.Millisecond))
	}
	b.WriteString("\npending envelopes:")
	const maxEnvelopes = 32
	listed, total := 0, 0
	for _, cb := range boxes {
		for _, e := range cb.mb.pendingEnvelopes() {
			total++
			if listed < maxEnvelopes {
				fmt.Fprintf(&b, "\n  comm %d, rank %d: (src=%d, tag=%d, %d elems)", cb.comm, cb.rank, e.src, e.tag, e.elems)
				listed++
			}
		}
	}
	if total == 0 {
		b.WriteString(" none")
	} else if total > listed {
		fmt.Fprintf(&b, "\n  ... and %d more", total-listed)
	}
	return errors.New(b.String())
}

// Comm is one rank's handle on a communicator.
type Comm struct {
	ctx  *context
	id   int
	rank int
	size int
	// gen is the world-membership epoch the communicator was issued
	// under (always 0 outside elastic runs); a fence retires every
	// communicator of older generations.
	gen int
	// epoch counters for collective matching (SPMD order).
	splitEpoch   int
	barrierEpoch int
	reduceEpoch  int
}

// Rank returns the caller's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return c.size }

// Epoch returns the world-membership epoch the communicator belongs
// to: 0 for the initial membership, incremented once per rank
// replacement on an Elastic run. A rank function re-entered after a
// replacement sees Epoch() > 0 and should restore its state from the
// last checkpoint rather than trust any pre-fence snapshot.
func (c *Comm) Epoch() int { return c.gen }

// checkGen panics with the fence signal when the communicator belongs
// to a retired membership epoch. Caller must hold ctx.mu with its
// unlock deferred — the panic unwinds through that defer.
func (c *Comm) checkGen() {
	if c.ctx.elastic != nil && c.gen != c.ctx.epoch {
		panic(fenceSignal{epoch: c.ctx.epoch, cause: c.ctx.fenceCause})
	}
}

// boxFor resolves the peer's mailbox and the current reliable transport
// under ctx.mu, fencing retired-epoch communicators first so a stale
// sender can never look up a mailbox (or a transport) reissued for a
// newer membership epoch.
func (c *Comm) boxFor(peer int) (*mailbox, *relState) {
	c.ctx.mu.Lock()
	defer c.ctx.mu.Unlock()
	c.checkGen()
	return c.ctx.boxes[c.id][peer], c.ctx.rel
}

// RunConfig tunes the fault-tolerance machinery of one Run.
type RunConfig struct {
	// Deadline bounds how long any rank may stay blocked in a single
	// Recv, Wait, Barrier, Split or collective. Once exceeded, the run
	// aborts with a diagnostic dump of every blocked rank and every
	// pending envelope instead of hanging. Zero disables the watchdog.
	// Set it well above the longest compute phase between exchanges.
	Deadline time.Duration
	// Faults scripts deterministic failures for tests; nil means none.
	Faults *FaultPlan
	// Reliability, when non-nil, enables the ack/retransmit transport:
	// point-to-point sends carry sequence numbers, drops are retransmitted
	// with exponential backoff, duplicates are suppressed, and delayed
	// messages cannot be overtaken by their retransmissions. Nil keeps the
	// fail-fast transport.
	Reliability *Reliability
	// Heartbeat, when non-nil, enables rank-failure detection: a dead
	// rank is confirmed within a few heartbeat intervals and the run
	// aborts with a *RankFailedError, instead of waiting out the full
	// watchdog Deadline.
	Heartbeat *Heartbeat
	// Elastic, when non-nil, turns confirmed rank deaths into surgical
	// replacements instead of run aborts: the world membership epoch is
	// fenced, only the dead rank is respawned, and survivors re-enter
	// the rank function at the new epoch (see Elastic). Ignored on
	// single-rank runs.
	Elastic *Elastic
	// Events, when non-nil, collects the run's fault, transport and
	// heartbeat timeline. A log may be shared across runs (a campaign's
	// segments) to accumulate one history.
	Events *EventLog
	// Obs, when non-nil, feeds the observability runtime: every message
	// delivery is counted per (comm,tag) and every blocking receive's
	// wait time lands in the per-tag histogram. Nil costs one nil check
	// per call.
	Obs *obs.Recorder
}

// Run launches n ranks and executes fn on each with its world
// communicator. It returns an error if any rank panics.
func Run(n int, fn func(c *Comm)) error {
	return RunWith(n, RunConfig{}, fn)
}

// RunWith is Run with fault-tolerance configuration: a blocked-call
// deadline and a scripted fault plan. On any rank panic, injected rank
// kill, Abort or deadline expiry, every blocked rank is woken and
// RunWith returns the first error.
func RunWith(n int, cfg RunConfig, fn func(c *Comm)) error {
	if n <= 0 {
		return fmt.Errorf("mpi: need a positive rank count, got %d", n)
	}
	if cfg.Elastic != nil && n > 1 {
		return runElastic(n, cfg, fn)
	}
	ctx := newContext(cfg)
	ctx.lastStep = make([]atomic.Int64, n)
	for i := range ctx.lastStep {
		ctx.lastStep[i].Store(-1)
	}
	if cfg.Reliability != nil {
		ctx.rel = newRelState(ctx, *cfg.Reliability)
	}
	boxes := make([]*mailbox, n)
	for i := range boxes {
		boxes[i] = newMailbox(ctx, 0, i)
	}
	ctx.boxes[0] = boxes

	var hb *hbState
	var stopHB chan struct{}
	var hbStops []chan struct{}
	if cfg.Heartbeat != nil {
		hb = newHBState(ctx, *cfg.Heartbeat, n)
		stopHB = make(chan struct{})
		hbStops = make([]chan struct{}, n)
		for r := 0; r < n; r++ {
			hbStops[r] = hb.startBeater(r)
		}
		go hb.monitor(stopHB)
	}

	var wg sync.WaitGroup
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			if hb != nil {
				// Runs on every exit — return, panic and runtime.Goexit
				// (a scripted silent death) alike: a dead rank must fall
				// silent so the monitor can see it.
				defer close(hbStops[rank])
			}
			defer func() {
				rec := recover()
				if rec == nil {
					return
				}
				if ab, ok := rec.(abortSignal); ok {
					// Woken by an abort that originated elsewhere; the
					// primary cause is already recorded in the context.
					errs[rank] = ab.err
					return
				}
				var err error
				if rf, ok := rec.(*RankFailedError); ok {
					// Keep the typed error so campaign drivers can match
					// rank loss with errors.As.
					err = rf
				} else {
					err = fmt.Errorf("mpi: rank %d panicked: %v", rank, rec)
				}
				errs[rank] = err
				// Wake every rank blocked in a collective or a mailbox
				// so Run ends instead of wedging on a lost peer.
				ctx.abort(err)
			}()
			fn(&Comm{ctx: ctx, id: 0, rank: rank, size: n})
			if hb != nil {
				// Marked before the deferred rankExited stops the beater,
				// so the monitor never sees a completed rank as silent.
				hb.markCompleted(rank)
			}
		}(r)
	}

	var stopWatch chan struct{}
	if cfg.Deadline > 0 {
		stopWatch = make(chan struct{})
		go ctx.watchdog(cfg.Deadline, stopWatch)
	}
	wg.Wait()
	if stopWatch != nil {
		close(stopWatch)
	}
	if stopHB != nil {
		close(stopHB)
	}
	if ctx.rel != nil {
		// A message still unacked now was simply never received (the run
		// is over); cancel its timer rather than aborting a finished run.
		ctx.rel.stop()
	}

	ctx.mu.Lock()
	first := ctx.abortErr
	ctx.mu.Unlock()
	if first != nil {
		return first
	}
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// Abort wakes every rank blocked anywhere in the runtime — collectives
// and point-to-point mailbox waits alike — and makes Run return err (the
// first abort wins). The calling rank unwinds immediately; Abort does
// not return. It is the cooperative analogue of MPI_ABORT.
func (c *Comm) Abort(err error) {
	if err == nil {
		err = errors.New("mpi: abort")
	} else {
		err = fmt.Errorf("mpi: rank %d aborted: %w", c.rank, err)
	}
	c.ctx.abort(err)
	panic(abortSignal{err})
}

// Tick is the per-step fault-injection checkpoint: call it once per
// simulation step with the current step number. It records the step as
// the rank's progress mark (reported by failure diagnostics), and a
// scripted FaultPlan kill for this rank fires here: a noisy Kill
// panics with a *RankFailedError, aborting the run as a crashed rank
// would; a KillSilent stops the rank's goroutine without a word, the
// way a lost node looks from outside — only a Heartbeat (or the
// watchdog deadline) notices. Without a plan the progress mark is the
// only effect.
func (c *Comm) Tick(step int) {
	if c.id == 0 && c.rank < len(c.ctx.lastStep) {
		c.ctx.lastStep[c.rank].Store(int64(step))
	}
	p := c.ctx.cfg.Faults
	if p == nil {
		return
	}
	switch p.takeKill(c.rank, step) {
	case killNoisy:
		c.ctx.eventf("fault.kill", "rank=%d step=%d", c.rank, step)
		panic(&RankFailedError{Rank: c.rank, Step: step})
	case killSilent:
		c.ctx.eventf("fault.kill-silent", "rank=%d step=%d", c.rank, step)
		// Goexit still runs the rank's deferred cleanups (worker pools,
		// WaitGroup), but skips the completion mark and the abort — the
		// rank just goes quiet.
		runtime.Goexit()
	}
}

// checkUserTag enforces the documented tag contract: user tags are
// non-negative; the negative space is reserved for internal collectives.
func checkUserTag(tag int) {
	if tag < 0 {
		panic(fmt.Sprintf("mpi: user tag %d is negative; negative tags are reserved for the runtime's internal collectives", tag))
	}
}

// checkPeer validates a point-to-point peer rank up front, panicking
// with a clear diagnostic instead of letting a bad envelope wedge a
// mailbox: an out-of-range rank has no mailbox, and a self-send (or a
// receive from oneself) in this SPMD runtime is a program error that
// would otherwise block until the watchdog deadline.
func (c *Comm) checkPeer(op string, peer int) {
	if peer < 0 || peer >= c.size {
		panic(fmt.Sprintf("mpi: %s invalid rank %d of %d on comm %d", op, peer, c.size, c.id))
	}
	if peer == c.rank {
		panic(fmt.Sprintf("mpi: rank %d attempted %s itself on comm %d; self-messaging is a program error", c.rank, op, c.id))
	}
}

// Send delivers a copy of data to rank dst under the given tag. It never
// blocks (buffered semantics). The tag must be non-negative; dst must be
// a valid peer (in range and not the sender itself).
func (c *Comm) Send(dst, tag int, data []float64) {
	checkUserTag(tag)
	c.send(dst, tag, data)
}

func (c *Comm) send(dst, tag int, data []float64) {
	c.checkPeer("send to", dst)
	box, rs := c.boxFor(dst)
	if rs != nil {
		rs.send(c.id, c.rank, dst, tag, data, box)
		return
	}
	cp := c.ctx.getBuf(len(data))
	copy(cp, data)
	c.ctx.deliver(box, message{src: c.rank, tag: tag, data: cp})
}

// deliver passes one wire copy through the scripted fault plan (if any)
// and into the destination mailbox, charging perfcount for the bytes
// actually transmitted. Both the fail-fast path and every reliable
// (re)transmission funnel through here, so faults apply uniformly.
func (ctx *context) deliver(box *mailbox, m message) {
	if p := ctx.cfg.Faults; p != nil {
		if act, d, ok := p.actionFor(box.comm, m.src, box.owner, m.tag); ok {
			switch act {
			case Drop:
				ctx.eventf("fault.drop", "comm=%d src=%d dst=%d tag=%d elems=%d", box.comm, m.src, box.owner, m.tag, len(m.data))
				ctx.putBuf(m.data)
				return
			case Delay:
				ctx.eventf("fault.delay", "comm=%d src=%d dst=%d tag=%d elems=%d delay=%v", box.comm, m.src, box.owner, m.tag, len(m.data), d)
				perfcount.AddComm(int64(8 * len(m.data)))
				ctx.cfg.Obs.CommDelivered(box.comm, m.tag, 8*len(m.data))
				time.AfterFunc(d, func() { box.put(m) })
				return
			case Duplicate:
				ctx.eventf("fault.duplicate", "comm=%d src=%d dst=%d tag=%d elems=%d", box.comm, m.src, box.owner, m.tag, len(m.data))
				box.put(m)
				dup := ctx.getBuf(len(m.data))
				copy(dup, m.data)
				box.put(message{src: m.src, tag: m.tag, seq: m.seq, rel: m.rel, data: dup})
				perfcount.AddComm(int64(16 * len(m.data)))
				ctx.cfg.Obs.CommDelivered(box.comm, m.tag, 16*len(m.data))
				return
			}
		}
	}
	box.put(m)
	perfcount.AddComm(int64(8 * len(m.data)))
	ctx.cfg.Obs.CommDelivered(box.comm, m.tag, 8*len(m.data))
}

// Recv blocks until a message from src with the given tag arrives and
// copies it into buf, returning the element count. The payload must fit.
// The tag must be non-negative.
func (c *Comm) Recv(src, tag int, buf []float64) int {
	checkUserTag(tag)
	return c.recv(src, tag, buf, callerSite())
}

func (c *Comm) recv(src, tag int, buf []float64, site string) int {
	c.checkPeer("recv from", src)
	box, _ := c.boxFor(c.rank)
	w := c.ctx.register(&waiter{rank: c.rank, comm: c.id, kind: "Recv", src: src, tag: tag, site: site})
	defer c.ctx.unregister(w)
	var t0 time.Time
	if c.ctx.cfg.Obs != nil {
		t0 = time.Now()
	}
	m := box.take(src, tag)
	if o := c.ctx.cfg.Obs; o != nil {
		o.CommWaited(c.id, tag, time.Since(t0).Nanoseconds())
	}
	if len(m.data) > len(buf) {
		panic(fmt.Sprintf("mpi: message of %d elements overflows buffer of %d", len(m.data), len(buf)))
	}
	n := len(m.data)
	copy(buf, m.data)
	// The payload has been copied out; recycle its buffer for a later
	// send so the steady-state exchange path stops allocating.
	c.ctx.putBuf(m.data)
	return n
}

// recvResult carries an Irecv completion, or the panic that ended it.
type recvResult struct {
	n   int
	pan any
}

// Request is a pending non-blocking receive.
type Request struct {
	done chan recvResult
}

// Wait blocks until the receive completes and returns the element count.
// If the receive was aborted (or panicked), Wait re-panics in the
// caller's goroutine so the failure unwinds the rank that posted it.
func (r *Request) Wait() int {
	res := <-r.done
	if res.pan != nil {
		panic(res.pan)
	}
	return res.n
}

// Irecv posts a non-blocking receive into buf; complete it with Wait.
// The buffer must not be read (and no overlapping Recv posted) until
// Wait returns — cmd/yyvet's irecv-wait analyzer enforces the Wait.
// The tag must be non-negative. The peer is validated up front, in the
// caller's goroutine, so a bad src fails the posting rank immediately
// instead of surfacing only at Wait.
func (c *Comm) Irecv(src, tag int, buf []float64) *Request {
	checkUserTag(tag)
	c.checkPeer("recv from", src)
	site := callerSite()
	req := &Request{done: make(chan recvResult, 1)}
	go func() {
		defer func() {
			if rec := recover(); rec != nil {
				req.done <- recvResult{pan: rec}
			}
		}()
		n := c.recv(src, tag, buf, site)
		req.done <- recvResult{n: n}
	}()
	return req
}

// Waitall completes every pending request in order and returns the
// element counts, the analogue of MPI_WAITALL. Nil requests (receives
// that were never posted, e.g. at a domain edge) are skipped with a
// count of -1.
func Waitall(reqs ...*Request) []int {
	counts := make([]int, len(reqs))
	for i, r := range reqs {
		if r == nil {
			counts[i] = -1
			continue
		}
		counts[i] = r.Wait()
	}
	return counts
}

// Barrier blocks until every rank of the communicator has entered it.
func (c *Comm) Barrier() {
	site := callerSite()
	key := fmt.Sprintf("b:%d:%d", c.id, c.barrierEpoch)
	c.barrierEpoch++
	ctx := c.ctx
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	c.checkGen()
	st := ctx.barriers[key]
	if st == nil {
		st = &barrierState{}
		ctx.barriers[key] = st
	}
	st.count++
	if st.count == c.size {
		st.gen = 1
		ctx.cond.Broadcast()
		delete(ctx.barriers, key)
		return
	}
	if ctx.cfg.Deadline > 0 {
		w := &waiter{rank: c.rank, comm: c.id, kind: "Barrier", site: site, since: time.Now()}
		ctx.waiters[w] = struct{}{}
		defer delete(ctx.waiters, w)
	}
	for st.gen == 0 {
		if ctx.abortErr != nil {
			panic(abortSignal{ctx.abortErr})
		}
		// A fence resets the rendezvous state; waiters of the retired
		// epoch unwind here instead of waiting on an orphaned barrier.
		c.checkGen()
		ctx.cond.Wait()
	}
}

// Op is a reduction operator for Allreduce.
type Op int

// Reduction operators.
const (
	OpSum Op = iota
	OpMax
	OpMin
)

func (o Op) apply(a, b float64) float64 {
	switch o {
	case OpSum:
		return a + b
	case OpMax:
		if b > a {
			return b
		}
		return a
	case OpMin:
		if b < a {
			return b
		}
		return a
	}
	panic("mpi: unknown op")
}

// internal tags live in a reserved negative space so they can never
// collide with user tags (which must be non-negative; Send/Recv/Irecv
// enforce the contract).
const (
	tagReduceUp = -1000 - iota
	tagReduceDown
	tagGather
	tagBcast
)

// Allreduce combines vals element-wise across all ranks with op, in rank
// order at the root for determinism, and replaces vals with the result on
// every rank.
func (c *Comm) Allreduce(vals []float64, op Op) {
	site := callerSite()
	epoch := c.reduceEpoch
	c.reduceEpoch++
	up := tagReduceUp - 4*epoch
	down := tagReduceDown - 4*epoch
	if c.rank == 0 {
		buf := make([]float64, len(vals))
		for src := 1; src < c.size; src++ {
			n := c.recv(src, up, buf, site)
			if n != len(vals) {
				panic("mpi: allreduce length mismatch")
			}
			for i := range vals {
				vals[i] = op.apply(vals[i], buf[i])
			}
		}
		for dst := 1; dst < c.size; dst++ {
			c.send(dst, down, vals)
		}
		return
	}
	c.send(0, up, vals)
	c.recv(0, down, vals, site)
}

// Bcast distributes root's vals to every rank.
func (c *Comm) Bcast(root int, vals []float64) {
	site := callerSite()
	epoch := c.reduceEpoch
	c.reduceEpoch++
	tag := tagBcast - 4*epoch
	if c.rank == root {
		for dst := 0; dst < c.size; dst++ {
			if dst != root {
				c.send(dst, tag, vals)
			}
		}
		return
	}
	c.recv(root, tag, vals, site)
}

// Gather collects each rank's vals at root, concatenated in rank order;
// non-root ranks get nil.
func (c *Comm) Gather(root int, vals []float64) []float64 {
	site := callerSite()
	epoch := c.reduceEpoch
	c.reduceEpoch++
	tag := tagGather - 4*epoch
	if c.rank != root {
		c.send(root, tag, vals)
		return nil
	}
	out := make([]float64, 0, len(vals)*c.size)
	buf := make([]float64, len(vals))
	for src := 0; src < c.size; src++ {
		if src == root {
			out = append(out, vals...)
			continue
		}
		n := c.recv(src, tag, buf, site)
		if n != len(vals) {
			panic("mpi: gather length mismatch")
		}
		out = append(out, buf[:n]...)
	}
	return out
}

// Split partitions the communicator by color, ordering ranks within each
// new communicator by (key, old rank), exactly like MPI_COMM_SPLIT. All
// ranks of the communicator must call it collectively. The resulting
// communicator ids are deterministic: the colors of one Split epoch are
// assigned ids in ascending color order, epochs in SPMD program order
// (so a FaultPlan can script faults on a split communicator).
func (c *Comm) Split(color, key int) *Comm {
	site := callerSite()
	epoch := c.splitEpoch
	c.splitEpoch++
	skey := fmt.Sprintf("s:%d:%d", c.id, epoch)
	ctx := c.ctx
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	c.checkGen()
	st := ctx.splits[skey]
	if st == nil {
		st = &splitState{entries: map[int][2]int{}}
		ctx.splits[skey] = st
	}
	st.entries[c.rank] = [2]int{color, key}
	if len(st.entries) == c.size {
		// The last arrival assigns the new communicator ids for every
		// color, in ascending color order, so ids do not depend on which
		// rank's goroutine reaches the rendezvous exit first.
		sizes := map[int]int{}
		for _, ck := range st.entries {
			sizes[ck[0]]++
		}
		colors := make([]int, 0, len(sizes))
		for col := range sizes {
			colors = append(colors, col)
		}
		sort.Ints(colors)
		for _, col := range colors {
			idKey := fmt.Sprintf("c:%d:%d:%d", c.id, epoch, col)
			newID := ctx.nextID
			ctx.nextID++
			ctx.commIDs[idKey] = newID
			boxes := make([]*mailbox, sizes[col])
			for i := range boxes {
				boxes[i] = newMailbox(ctx, newID, i)
				// A mailbox born during an abort must be born dead, or a
				// rank racing past the abort could block in it forever.
				boxes[i].abortErr = ctx.abortErr
			}
			ctx.boxes[newID] = boxes
		}
		st.done = true
		ctx.cond.Broadcast()
	}
	if ctx.cfg.Deadline > 0 {
		w := &waiter{rank: c.rank, comm: c.id, kind: "Split", site: site, since: time.Now()}
		ctx.waiters[w] = struct{}{}
		defer delete(ctx.waiters, w)
	}
	for !st.done {
		if ctx.abortErr != nil {
			panic(abortSignal{ctx.abortErr})
		}
		c.checkGen()
		ctx.cond.Wait()
	}
	// Deterministically derive the new communicator for this rank's color.
	type member struct{ key, rank int }
	var group []member
	for r, ck := range st.entries {
		if ck[0] == color {
			group = append(group, member{ck[1], r})
		}
	}
	sort.Slice(group, func(i, j int) bool {
		if group[i].key != group[j].key {
			return group[i].key < group[j].key
		}
		return group[i].rank < group[j].rank
	})
	newID := ctx.commIDs[fmt.Sprintf("c:%d:%d:%d", c.id, epoch, color)]
	newRank := -1
	for i, m := range group {
		if m.rank == c.rank {
			newRank = i
		}
	}
	return &Comm{ctx: ctx, id: newID, rank: newRank, size: len(group), gen: c.gen}
}
