package mpi

import (
	"math"
	"sync/atomic"
	"testing"
)

func TestRunRejectsZeroRanks(t *testing.T) {
	if err := Run(0, func(c *Comm) {}); err == nil {
		t.Error("expected error")
	}
}

func TestRankAndSize(t *testing.T) {
	var seen [5]int32
	err := Run(5, func(c *Comm) {
		if c.Size() != 5 {
			t.Errorf("size = %d", c.Size())
		}
		atomic.AddInt32(&seen[c.Rank()], 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, n := range seen {
		if n != 1 {
			t.Errorf("rank %d ran %d times", r, n)
		}
	}
}

func TestSendRecvRoundTrip(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{1, 2, 3})
			buf := make([]float64, 3)
			n := c.Recv(1, 8, buf)
			if n != 3 || buf[0] != 2 || buf[2] != 6 {
				t.Errorf("echo mismatch: %v", buf[:n])
			}
		} else {
			buf := make([]float64, 3)
			c.Recv(0, 7, buf)
			for i := range buf {
				buf[i] *= 2
			}
			c.Send(0, 8, buf)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSendCopiesPayload: mutating the sender's slice after Send must not
// affect the delivered message.
func TestSendCopiesPayload(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			data := []float64{42}
			c.Send(1, 0, data)
			data[0] = -1
		} else {
			buf := make([]float64, 1)
			c.Recv(0, 0, buf)
			if buf[0] != 42 {
				t.Errorf("payload corrupted: %v", buf[0])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFIFOPerEnvelope: messages with the same (src, tag) arrive in order.
func TestFIFOPerEnvelope(t *testing.T) {
	const n = 50
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				c.Send(1, 3, []float64{float64(i)})
			}
		} else {
			buf := make([]float64, 1)
			for i := 0; i < n; i++ {
				c.Recv(0, 3, buf)
				if buf[0] != float64(i) {
					t.Errorf("out of order: got %v want %d", buf[0], i)
					return
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTagSelectivity: a receive for tag B is satisfied even when a tag-A
// message arrived first.
func TestTagSelectivity(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []float64{1})
			c.Send(1, 2, []float64{2})
		} else {
			buf := make([]float64, 1)
			c.Recv(0, 2, buf)
			if buf[0] != 2 {
				t.Errorf("tag 2 got %v", buf[0])
			}
			c.Recv(0, 1, buf)
			if buf[0] != 1 {
				t.Errorf("tag 1 got %v", buf[0])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIrecvWait(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			buf := make([]float64, 4)
			req := c.Irecv(1, 9, buf)
			c.Send(1, 5, []float64{0})
			if n := req.Wait(); n != 2 || buf[0] != 10 {
				t.Errorf("irecv got %d elems %v", n, buf[:n])
			}
		} else {
			buf := make([]float64, 1)
			c.Recv(0, 5, buf)
			c.Send(0, 9, []float64{10, 20})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWaitall: multiple outstanding Irecvs complete together in order;
// nil entries (edge-of-grid neighbours) are skipped with count -1.
func TestWaitall(t *testing.T) {
	err := Run(3, func(c *Comm) {
		if c.Rank() == 0 {
			buf1 := make([]float64, 2)
			buf2 := make([]float64, 3)
			req1 := c.Irecv(1, 1, buf1)
			req2 := c.Irecv(2, 2, buf2)
			counts := Waitall(req1, nil, req2)
			if counts[0] != 2 || counts[1] != -1 || counts[2] != 3 {
				t.Errorf("Waitall counts = %v", counts)
			}
			if buf1[0] != 10 || buf2[2] != 22 {
				t.Errorf("payloads %v %v", buf1, buf2)
			}
		} else if c.Rank() == 1 {
			c.Send(0, 1, []float64{10, 11})
		} else {
			c.Send(0, 2, []float64{20, 21, 22})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentIrecvStress is the race-detector regression for the
// mailbox and condition-variable paths: every rank keeps several
// receives outstanding while sending, splitting and reducing, so
// mailbox.take, put's broadcast, Split's rendezvous and the barrier
// generation counter all run concurrently across rank goroutines. Run
// with -race (scripts/check.sh does).
func TestConcurrentIrecvStress(t *testing.T) {
	const ranks = 16
	err := Run(ranks, func(c *Comm) {
		for iter := 0; iter < 20; iter++ {
			next := (c.Rank() + 1) % ranks
			prev := (c.Rank() + ranks - 1) % ranks
			// Two receives in flight at once from the same peer plus
			// one from the other side.
			bufA := make([]float64, 8)
			bufB := make([]float64, 8)
			bufC := make([]float64, 8)
			reqA := c.Irecv(prev, iter*3+0, bufA)
			reqB := c.Irecv(prev, iter*3+1, bufB)
			reqC := c.Irecv(next, iter*3+2, bufC)
			payload := make([]float64, 8)
			for i := range payload {
				payload[i] = float64(c.Rank()*100 + iter)
			}
			c.Send(next, iter*3+0, payload)
			c.Send(next, iter*3+1, payload)
			c.Send(prev, iter*3+2, payload)
			Waitall(reqA, reqB, reqC)
			if bufA[0] != float64(prev*100+iter) || bufB[0] != bufA[0] {
				t.Errorf("iter %d: prev payload %v %v", iter, bufA[0], bufB[0])
			}
			if bufC[0] != float64(next*100+iter) {
				t.Errorf("iter %d: next payload %v", iter, bufC[0])
			}
			// Interleave the collective paths.
			sum := []float64{1}
			c.Allreduce(sum, OpSum)
			if sum[0] != ranks {
				t.Errorf("iter %d: allreduce %v", iter, sum[0])
			}
			if iter%5 == 0 {
				sub := c.Split(c.Rank()%2, c.Rank())
				v := []float64{1}
				sub.Allreduce(v, OpSum)
				if v[0] != ranks/2 {
					t.Errorf("iter %d: split allreduce %v", iter, v[0])
				}
			}
			c.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrier(t *testing.T) {
	var phase int32
	err := Run(8, func(c *Comm) {
		atomic.AddInt32(&phase, 1)
		c.Barrier()
		if atomic.LoadInt32(&phase) != 8 {
			t.Errorf("barrier released early at %d", atomic.LoadInt32(&phase))
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduce(t *testing.T) {
	err := Run(6, func(c *Comm) {
		vals := []float64{float64(c.Rank()), 1, -float64(c.Rank())}
		c.Allreduce(vals, OpSum)
		if vals[0] != 15 || vals[1] != 6 || vals[2] != -15 {
			t.Errorf("sum = %v", vals)
		}
		mx := []float64{float64(c.Rank())}
		c.Allreduce(mx, OpMax)
		if mx[0] != 5 {
			t.Errorf("max = %v", mx)
		}
		mn := []float64{float64(c.Rank())}
		c.Allreduce(mn, OpMin)
		if mn[0] != 0 {
			t.Errorf("min = %v", mn)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastGather(t *testing.T) {
	err := Run(4, func(c *Comm) {
		v := []float64{0}
		if c.Rank() == 2 {
			v[0] = 3.5
		}
		c.Bcast(2, v)
		if v[0] != 3.5 {
			t.Errorf("bcast got %v", v[0])
		}
		all := c.Gather(0, []float64{float64(c.Rank() * 10)})
		if c.Rank() == 0 {
			want := []float64{0, 10, 20, 30}
			for i := range want {
				if all[i] != want[i] {
					t.Errorf("gather = %v", all)
				}
			}
		} else if all != nil {
			t.Error("non-root gather returned data")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSplitPanels mirrors the paper's use: even/odd split into two
// panels, then communication within each panel.
func TestSplitPanels(t *testing.T) {
	err := Run(8, func(c *Comm) {
		color := c.Rank() % 2
		panel := c.Split(color, c.Rank())
		if panel.Size() != 4 {
			t.Errorf("panel size = %d", panel.Size())
		}
		// Ranks are ordered by key = world rank.
		want := c.Rank() / 2
		if panel.Rank() != want {
			t.Errorf("panel rank = %d, want %d", panel.Rank(), want)
		}
		// Reduce within the panel only.
		v := []float64{float64(c.Rank())}
		panel.Allreduce(v, OpSum)
		wantSum := 0.0
		for r := color; r < 8; r += 2 {
			wantSum += float64(r)
		}
		if v[0] != wantSum {
			t.Errorf("panel sum = %v, want %v", v[0], wantSum)
		}
		// World communication still works after the split.
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitKeyOrdering(t *testing.T) {
	err := Run(4, func(c *Comm) {
		// Reverse ordering by key.
		sub := c.Split(0, -c.Rank())
		if sub.Rank() != 3-c.Rank() {
			t.Errorf("rank %d got sub rank %d", c.Rank(), sub.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCartCreate(t *testing.T) {
	err := Run(6, func(c *Comm) {
		ct, err := c.CartCreate2D(2, 3)
		if err != nil {
			t.Fatal(err)
		}
		if ct.Coords[0] != c.Rank()/3 || ct.Coords[1] != c.Rank()%3 {
			t.Errorf("coords %v for rank %d", ct.Coords, c.Rank())
		}
		if _, err := c.CartCreate2D(4, 2); err == nil {
			t.Error("bad dims accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCartShiftAndNeighbours(t *testing.T) {
	err := Run(6, func(c *Comm) {
		ct, _ := c.CartCreate2D(2, 3)
		n, s, w, e := ct.Neighbours()
		c0, c1 := ct.Coords[0], ct.Coords[1]
		wantN, wantS, wantW, wantE := -1, -1, -1, -1
		if c0 > 0 {
			wantN = (c0-1)*3 + c1
		}
		if c0 < 1 {
			wantS = (c0+1)*3 + c1
		}
		if c1 > 0 {
			wantW = c0*3 + c1 - 1
		}
		if c1 < 2 {
			wantE = c0*3 + c1 + 1
		}
		if n != wantN || s != wantS || w != wantW || e != wantE {
			t.Errorf("rank %d neighbours (%d,%d,%d,%d), want (%d,%d,%d,%d)",
				c.Rank(), n, s, w, e, wantN, wantS, wantW, wantE)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCartHaloExchangePattern: every rank exchanges a value with each
// existing neighbour, as the solver's halo exchange does.
func TestCartHaloExchangePattern(t *testing.T) {
	err := Run(12, func(c *Comm) {
		ct, _ := c.CartCreate2D(3, 4)
		n, s, w, e := ct.Neighbours()
		neigh := []int{n, s, w, e}
		for _, dst := range neigh {
			if dst >= 0 {
				ct.Send(dst, 1, []float64{float64(ct.Rank())})
			}
		}
		for _, src := range neigh {
			if src >= 0 {
				buf := make([]float64, 1)
				ct.Recv(src, 1, buf)
				if buf[0] != float64(src) {
					t.Errorf("halo from %d carried %v", src, buf[0])
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPanicPropagates(t *testing.T) {
	err := Run(3, func(c *Comm) {
		if c.Rank() == 1 {
			panic("deliberate")
		}
	})
	if err == nil {
		t.Error("panic not reported")
	}
}

// TestDeterministicReduction: sum order at the root is rank order, so
// repeated runs give bitwise-identical results.
func TestDeterministicReduction(t *testing.T) {
	run := func() float64 {
		var out float64
		err := Run(7, func(c *Comm) {
			v := []float64{math.Sqrt(float64(c.Rank()) + 0.1)}
			c.Allreduce(v, OpSum)
			if c.Rank() == 0 {
				out = v[0]
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a := run()
	for i := 0; i < 5; i++ {
		if b := run(); b != a {
			t.Fatalf("nondeterministic reduction: %v vs %v", a, b)
		}
	}
}

// TestManyRanksStress: a 64-rank all-to-neighbour workload completes.
func TestManyRanksStress(t *testing.T) {
	err := Run(64, func(c *Comm) {
		ct, err := c.CartCreate2D(8, 8)
		if err != nil {
			t.Fatal(err)
		}
		for iter := 0; iter < 10; iter++ {
			n, s, w, e := ct.Neighbours()
			for _, dst := range []int{n, s, w, e} {
				if dst >= 0 {
					ct.Send(dst, iter, []float64{1})
				}
			}
			sum := 0.0
			for _, src := range []int{n, s, w, e} {
				if src >= 0 {
					buf := make([]float64, 1)
					ct.Recv(src, iter, buf)
					sum += buf[0]
				}
			}
			v := []float64{sum}
			ct.Allreduce(v, OpSum)
			// Interior ranks have 4 neighbours; 2*edges = total degree.
			if v[0] != 2*(2*8*7) {
				t.Errorf("iter %d: total degree %v", iter, v[0])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRandomTrafficQuick: random message schedules (sizes, tags, pairs)
// always deliver matching payloads, via a deterministic pseudo-random
// pattern derived from the seed.
func TestRandomTrafficQuick(t *testing.T) {
	f := func(seed uint64) bool {
		const ranks = 6
		ok := true
		err := Run(ranks, func(c *Comm) {
			rng := seed ^ uint64(c.Rank())*0x9e3779b97f4a7c15
			next := func(n uint64) uint64 {
				rng = rng*6364136223846793005 + 1442695040888963407
				return (rng >> 33) % n
			}
			// Each rank sends 8 messages to deterministic destinations.
			type sent struct {
				dst, tag, n int
			}
			var mine []sent
			for i := 0; i < 8; i++ {
				// Peers only: the runtime rejects self-sends up front.
				dst := (c.Rank() + 1 + int(next(ranks-1))) % ranks
				tag := int(next(4))
				n := 1 + int(next(64))
				payload := make([]float64, n)
				for j := range payload {
					payload[j] = float64(c.Rank()*1000 + i)
				}
				c.Send(dst, 100+tag*10+c.Rank(), payload)
				mine = append(mine, sent{dst, tag, n})
			}
			// Globally replay the same pseudo-random schedule to know what
			// to receive: every rank recomputes every sender's schedule.
			for src := 0; src < ranks; src++ {
				r2 := seed ^ uint64(src)*0x9e3779b97f4a7c15
				n2 := func(n uint64) uint64 {
					r2 = r2*6364136223846793005 + 1442695040888963407
					return (r2 >> 33) % n
				}
				for i := 0; i < 8; i++ {
					dst := (src + 1 + int(n2(ranks-1))) % ranks
					tag := int(n2(4))
					n := 1 + int(n2(64))
					if dst != c.Rank() {
						continue
					}
					buf := make([]float64, n)
					got := c.Recv(src, 100+tag*10+src, buf)
					if got != n || buf[0] != float64(src*1000+i) {
						ok = false
					}
				}
			}
		})
		return err == nil && ok
	}
	for _, seed := range []uint64{1, 7, 42, 12345, 999999} {
		if !f(seed) {
			t.Errorf("seed %d failed", seed)
		}
	}
}
