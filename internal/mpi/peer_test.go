package mpi

import (
	"strings"
	"testing"
	"time"
)

// TestSendPeerValidation: out-of-range and self destinations fail the
// run with a clear diagnostic instead of wedging a mailbox.
func TestSendPeerValidation(t *testing.T) {
	cases := []struct {
		name string
		dst  int
		want string
	}{
		{"out-of-range", 5, "invalid rank 5 of 2"},
		{"negative", -1, "invalid rank -1 of 2"},
		{"self", 0, "self-messaging"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := RunWith(2, RunConfig{Deadline: time.Second}, func(c *Comm) {
				if c.Rank() == 0 {
					c.Send(tc.dst, 0, []float64{1})
				}
			})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Send(%d): want error containing %q, got %v", tc.dst, tc.want, err)
			}
		})
	}
}

// TestIrecvPeerValidation: Irecv validates its peer up front, in the
// posting rank's goroutine — the failure does not wait for Wait.
func TestIrecvPeerValidation(t *testing.T) {
	cases := []struct {
		name string
		src  int
		want string
	}{
		{"out-of-range", 7, "invalid rank 7 of 2"},
		{"self", 1, "self-messaging"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := RunWith(2, RunConfig{Deadline: time.Second}, func(c *Comm) {
				if c.Rank() == 1 {
					var buf [1]float64
					// Deliberately never Wait: the up-front validation
					// must fail the rank anyway.
					c.Irecv(tc.src, 0, buf[:])
				}
			})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Irecv(%d): want error containing %q, got %v", tc.src, tc.want, err)
			}
		})
	}
}

// TestRecvPeerValidation: blocking Recv rejects a self source, which
// could otherwise block forever waiting on a message only the waiting
// rank itself could send.
func TestRecvPeerValidation(t *testing.T) {
	err := RunWith(2, RunConfig{Deadline: time.Second}, func(c *Comm) {
		if c.Rank() == 0 {
			var buf [1]float64
			c.Recv(0, 0, buf[:])
		}
	})
	if err == nil || !strings.Contains(err.Error(), "self-messaging") {
		t.Fatalf("Recv(self): want self-messaging error, got %v", err)
	}
}
