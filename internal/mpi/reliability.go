package mpi

import (
	"fmt"
	"sync"
	"time"
)

// Reliability configures the runtime's ack/retransmit transport. When
// set on a RunConfig, every point-to-point payload carries a
// per-(comm, src, dst, tag) sequence number; the receiver acknowledges
// each delivery, suppresses duplicates, and releases messages to the
// application strictly in sequence order, while the sender retransmits
// unacked messages with exponential backoff. A scripted (or, on real
// hardware, transient) drop, duplicate or delay then becomes invisible
// to the solver — the delivered value stream is bit-identical to a
// fault-free run — instead of wedging a rank until the watchdog
// deadline. Nil keeps today's fail-fast transport.
type Reliability struct {
	// AckTimeout is the wait before the first retransmission of an
	// unacked message (default 10ms). Each further retransmission waits
	// Backoff times longer than the previous one.
	AckTimeout time.Duration
	// MaxRetries bounds the retransmissions of one message; once
	// exhausted the run aborts with a diagnostic naming the envelope
	// (default 10).
	MaxRetries int
	// Backoff is the retransmission backoff multiplier, >= 1
	// (default 2).
	Backoff float64
}

// withDefaults fills zero fields with the documented defaults.
func (r Reliability) withDefaults() Reliability {
	if r.AckTimeout <= 0 {
		r.AckTimeout = 10 * time.Millisecond
	}
	if r.MaxRetries <= 0 {
		r.MaxRetries = 10
	}
	if r.Backoff < 1 {
		r.Backoff = 2
	}
	return r
}

// relKey identifies one ordered message stream.
type relKey struct {
	comm, src, dst, tag int
}

// relMsgKey identifies one message of a stream.
type relMsgKey struct {
	relKey
	seq int
}

// relPending is an in-flight (sent, not yet acked) message on the
// sender side: the master payload copy retransmissions are cut from,
// the retransmission count, and the armed retransmit timer.
type relPending struct {
	data     []float64
	box      *mailbox
	attempts int
	timer    *time.Timer
}

// relState is the per-run reliable-transport bookkeeping shared by all
// ranks (sender and receiver live in one process, so acks are direct
// state updates rather than wire messages — the control plane is
// lossless, as on the Earth Simulator's crossbar; only payload
// transmissions pass through the fault plan).
type relState struct {
	ctx *context
	cfg Reliability

	mu          sync.Mutex
	nextSeq     map[relKey]int
	outstanding map[relMsgKey]*relPending
	stopped     bool
}

func newRelState(ctx *context, cfg Reliability) *relState {
	return &relState{
		ctx:         ctx,
		cfg:         cfg.withDefaults(),
		nextSeq:     map[relKey]int{},
		outstanding: map[relMsgKey]*relPending{},
	}
}

// send assigns the next sequence number of the stream, registers the
// message as outstanding with its retransmit timer armed, and makes
// the first transmission attempt.
func (rs *relState) send(comm, src, dst, tag int, data []float64, box *mailbox) {
	key := relKey{comm, src, dst, tag}
	master := make([]float64, len(data))
	copy(master, data)
	p := &relPending{data: master, box: box}
	rs.mu.Lock()
	seq := rs.nextSeq[key]
	rs.nextSeq[key] = seq + 1
	mk := relMsgKey{key, seq}
	rs.outstanding[mk] = p
	// Arm the timer before the first transmission so an immediate ack
	// always finds a timer to stop.
	p.timer = time.AfterFunc(rs.cfg.AckTimeout, func() { rs.retransmit(mk) })
	rs.mu.Unlock()
	rs.transmit(mk, p)
}

// transmit cuts a fresh wire copy from the master payload and passes it
// through the (possibly faulty) delivery path. The master copy is never
// mutated, so reading it without rs.mu is safe.
func (rs *relState) transmit(mk relMsgKey, p *relPending) {
	cp := rs.ctx.getBuf(len(p.data))
	copy(cp, p.data)
	rs.ctx.deliver(p.box, message{src: mk.src, tag: mk.tag, seq: mk.seq, rel: true, data: cp})
}

// retransmit is the timer body: resend the message if it is still
// outstanding, with exponentially backed-off rescheduling, aborting the
// run once the retry budget is exhausted.
func (rs *relState) retransmit(mk relMsgKey) {
	rs.mu.Lock()
	p, ok := rs.outstanding[mk]
	if !ok || rs.stopped {
		rs.mu.Unlock()
		return
	}
	if p.attempts >= rs.cfg.MaxRetries {
		delete(rs.outstanding, mk)
		rs.mu.Unlock()
		err := fmt.Errorf("mpi: reliable transport gave up: message (comm=%d, src=%d, dst=%d, tag=%d, seq=%d) unacked after %d retransmissions",
			mk.comm, mk.src, mk.dst, mk.tag, mk.seq, rs.cfg.MaxRetries)
		rs.ctx.eventf("xport.giveup", "comm=%d src=%d dst=%d tag=%d seq=%d attempts=%d",
			mk.comm, mk.src, mk.dst, mk.tag, mk.seq, rs.cfg.MaxRetries)
		rs.ctx.abortFromRel(rs, err)
		return
	}
	p.attempts++
	backoff := rs.cfg.AckTimeout
	for i := 0; i < p.attempts; i++ {
		backoff = time.Duration(float64(backoff) * rs.cfg.Backoff)
	}
	attempt := p.attempts
	rs.mu.Unlock()

	rs.ctx.eventf("xport.retransmit", "comm=%d src=%d dst=%d tag=%d seq=%d attempt=%d",
		mk.comm, mk.src, mk.dst, mk.tag, mk.seq, attempt)
	rs.transmit(mk, p)

	rs.mu.Lock()
	// The retransmission may have been acked synchronously (deliver puts
	// into the mailbox, which acks); only re-arm while still outstanding.
	if _, still := rs.outstanding[mk]; still && !rs.stopped {
		p.timer = time.AfterFunc(backoff, func() { rs.retransmit(mk) })
	}
	rs.mu.Unlock()
}

// ack marks a message delivered (called by the receiving mailbox on
// first insertion and again on every suppressed duplicate, so a
// retransmission racing a delayed original settles cleanly).
func (rs *relState) ack(comm, src, dst, tag, seq int) {
	mk := relMsgKey{relKey{comm, src, dst, tag}, seq}
	rs.mu.Lock()
	p, ok := rs.outstanding[mk]
	if ok {
		delete(rs.outstanding, mk)
	}
	rs.mu.Unlock()
	if ok && p.timer != nil {
		p.timer.Stop()
	}
}

// abortFromRel aborts the run on behalf of a reliable-transport
// instance — unless that instance has been retired by an elastic
// membership fence, in which case the giveup is about a fenced-out
// epoch's message and must not kill the new epoch. (The fence stops the
// old instance's timers, but a giveup already past its stopped check
// can race the fence; the identity check here closes that window.)
func (ctx *context) abortFromRel(rs *relState, err error) {
	ctx.mu.Lock()
	stale := ctx.rel != rs
	ctx.mu.Unlock()
	if stale {
		return
	}
	ctx.abort(err)
}

// stop cancels every armed retransmit timer; called once the run has
// ended (a message still unacked then was simply never received, which
// is legal — it must not abort a completed run).
func (rs *relState) stop() {
	rs.mu.Lock()
	rs.stopped = true
	for mk, p := range rs.outstanding {
		if p.timer != nil {
			p.timer.Stop()
		}
		delete(rs.outstanding, mk)
	}
	rs.mu.Unlock()
}
