package mpi

import (
	"strings"
	"testing"
	"time"
)

// relCfg is a fast reliable-transport config for tests.
func relCfg() *Reliability {
	return &Reliability{AckTimeout: 2 * time.Millisecond, MaxRetries: 20}
}

// TestReliableSurvivesDrop: a scripted drop that fails fast (watchdog
// abort) without reliability is absorbed by a retransmission with it.
func TestReliableSurvivesDrop(t *testing.T) {
	mkPlan := func() *FaultPlan { return NewFaultPlan().Drop(0, 1, 7, 0) }

	// Fail-fast baseline: the dropped message wedges rank 1 until the
	// watchdog fires.
	err := RunWith(2, RunConfig{Deadline: 100 * time.Millisecond, Faults: mkPlan()}, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{3.25})
		} else {
			var buf [1]float64
			c.Recv(0, 7, buf[:])
		}
	})
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("fail-fast run: want deadline abort, got %v", err)
	}

	// Reliable run: same plan, message retransmitted, payload intact.
	events := NewEventLog()
	var got float64
	err = RunWith(2, RunConfig{
		Deadline:    2 * time.Second,
		Faults:      mkPlan(),
		Reliability: relCfg(),
		Events:      events,
	}, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{3.25})
		} else {
			var buf [1]float64
			c.Recv(0, 7, buf[:])
			got = buf[0]
		}
	})
	if err != nil {
		t.Fatalf("reliable run failed: %v", err)
	}
	if got != 3.25 {
		t.Fatalf("payload corrupted across retransmission: got %v", got)
	}
	var sawDrop, sawRetransmit bool
	for _, e := range events.Events() {
		switch e.Kind {
		case "fault.drop":
			sawDrop = true
		case "xport.retransmit":
			sawRetransmit = true
		}
	}
	if !sawDrop || !sawRetransmit {
		t.Fatalf("timeline missing drop/retransmit events:\n%s", events)
	}
}

// TestReliableSuppressesDuplicate: a duplicated message is delivered to
// the application exactly once; the stream stays in order.
func TestReliableSuppressesDuplicate(t *testing.T) {
	plan := NewFaultPlan().Duplicate(0, 1, 5, 0)
	var got []float64
	err := RunWith(2, RunConfig{
		Deadline:    2 * time.Second,
		Faults:      plan,
		Reliability: relCfg(),
	}, func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 3; i++ {
				c.Send(1, 5, []float64{float64(10 + i)})
			}
		} else {
			var buf [1]float64
			for i := 0; i < 3; i++ {
				c.Recv(0, 5, buf[:])
				got = append(got, buf[0])
			}
		}
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	want := []float64{10, 11, 12}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("duplicate leaked into the stream: got %v, want %v", got, want)
		}
	}
}

// TestReliableDelayKeepsOrder: a delayed first message must not let the
// second overtake it — the retransmission of message 0 (or its delayed
// original, whichever lands first) is released before message 1.
func TestReliableDelayKeepsOrder(t *testing.T) {
	plan := NewFaultPlan().DelayMsg(0, 1, 9, 0, 30*time.Millisecond)
	var got []float64
	err := RunWith(2, RunConfig{
		Deadline:    2 * time.Second,
		Faults:      plan,
		Reliability: relCfg(),
	}, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 9, []float64{1})
			c.Send(1, 9, []float64{2})
		} else {
			var buf [1]float64
			for i := 0; i < 2; i++ {
				c.Recv(0, 9, buf[:])
				got = append(got, buf[0])
			}
		}
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("delayed message overtaken: got %v, want [1 2]", got)
	}
}

// TestReliableGivesUp: a message dropped on every (re)transmission
// exhausts the retry budget and aborts with a diagnostic naming the
// envelope, instead of retrying forever.
func TestReliableGivesUp(t *testing.T) {
	plan := NewFaultPlan()
	for epoch := 0; epoch < 10; epoch++ {
		plan.Drop(0, 1, 3, epoch)
	}
	events := NewEventLog()
	err := RunWith(2, RunConfig{
		Deadline:    5 * time.Second,
		Faults:      plan,
		Reliability: &Reliability{AckTimeout: time.Millisecond, MaxRetries: 3},
		Events:      events,
	}, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 3, []float64{1})
		} else {
			var buf [1]float64
			c.Recv(0, 3, buf[:])
		}
	})
	if err == nil || !strings.Contains(err.Error(), "reliable transport gave up") {
		t.Fatalf("want give-up abort, got %v", err)
	}
	for _, frag := range []string{"src=0", "dst=1", "tag=3"} {
		if !strings.Contains(err.Error(), frag) {
			t.Fatalf("give-up diagnostic missing %q: %v", frag, err)
		}
	}
	var sawGiveup bool
	for _, e := range events.Events() {
		if e.Kind == "xport.giveup" {
			sawGiveup = true
		}
	}
	if !sawGiveup {
		t.Fatalf("timeline missing xport.giveup:\n%s", events)
	}
}

// TestReliableCleanRunNoRetransmissions: with no faults the reliable
// transport is pure bookkeeping — no retransmissions, no events, and
// collectives still work (they ride the same sequenced streams).
func TestReliableCleanRunNoRetransmissions(t *testing.T) {
	events := NewEventLog()
	err := RunWith(4, RunConfig{
		Deadline:    2 * time.Second,
		Reliability: relCfg(),
		Events:      events,
	}, func(c *Comm) {
		vals := []float64{float64(c.Rank() + 1)}
		c.Allreduce(vals, OpSum)
		if vals[0] != 10 {
			c.Abort(errAllreduceMismatch)
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatalf("clean reliable run failed: %v", err)
	}
	if n := events.Len(); n != 0 {
		t.Fatalf("clean run recorded %d events:\n%s", n, events)
	}
}

var errAllreduceMismatch = errStr("allreduce mismatch under reliability")

type errStr string

func (e errStr) Error() string { return string(e) }
