package obs

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// TagKey identifies one message stream: a communicator id plus a tag.
// Negative tags are the runtime's internal collective space; user halo,
// rim, overset, scatter and gather traffic uses the non-negative tags
// enumerated by decomp.ExchangeTags.
type TagKey struct {
	Comm int
	Tag  int
}

// histBuckets is the number of log2 buckets in a Hist: bucket i counts
// observations v with bit-length i, i.e. v in [2^(i-1), 2^i), so 63
// buckets cover every non-negative int64.
const histBuckets = 64

// Hist is a lock-free log2-bucketed histogram of non-negative int64
// observations (wait nanoseconds, message bytes). Observe is 0 allocs
// and a handful of atomic adds; it is safe for concurrent use.
type Hist struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one value (negative values are clamped to 0).
func (h *Hist) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Hist) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observations.
func (h *Hist) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns Sum/Count (0 when empty).
func (h *Hist) Mean() float64 {
	c := h.Count()
	if c == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(c)
}

// Quantile returns an upper bound for the q-quantile (0<=q<=1) from the
// log2 buckets: the top edge of the bucket holding the q-th
// observation. Coarse (factor-of-two) but allocation-free and exact
// enough for a run report's p50/p99 columns.
func (h *Hist) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	want := int64(q * float64(total))
	if want >= total {
		want = total - 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen > want {
			if i == 0 {
				return 0
			}
			return 1 << uint(i) // top edge of [2^(i-1), 2^i)
		}
	}
	return 1 << 62
}

// TagStat aggregates one message stream: delivery count and bytes, and
// the receive-wait time histogram. All fields are safe for concurrent
// update.
type TagStat struct {
	Msgs  atomic.Int64
	Bytes atomic.Int64
	Wait  Hist // receive-side blocked time, ns
	Size  Hist // per-message payload bytes
}

// commMetrics maps message streams to their stats. The map is grown
// under the write lock on first sight of a (comm,tag); the steady state
// is an RLock + atomic adds, 0 allocs.
type commMetrics struct {
	mu    sync.RWMutex
	stats map[TagKey]*TagStat
}

func (c *commMetrics) init() { c.stats = map[TagKey]*TagStat{} }

// get returns the stat for k, creating it on first use.
func (c *commMetrics) get(k TagKey) *TagStat {
	c.mu.RLock()
	s := c.stats[k]
	c.mu.RUnlock()
	if s != nil {
		return s
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if s = c.stats[k]; s == nil {
		s = &TagStat{}
		c.stats[k] = s
	}
	return s
}

// CommDelivered records one message of the given payload bytes arriving
// on (comm, tag). Hooked into the runtime's delivery funnel; nil-safe
// and safe from any goroutine.
func (r *Recorder) CommDelivered(comm, tag int, bytes int) {
	if r == nil {
		return
	}
	s := r.comm.get(TagKey{comm, tag})
	s.Msgs.Add(1)
	s.Bytes.Add(int64(bytes))
	s.Size.Observe(int64(bytes))
}

// CommWaited records ns nanoseconds blocked in a receive on (comm,
// tag). Hooked into the runtime's Recv/Wait paths; nil-safe and safe
// from any goroutine.
func (r *Recorder) CommWaited(comm, tag int, ns int64) {
	if r == nil {
		return
	}
	r.comm.get(TagKey{comm, tag}).Wait.Observe(ns)
}

// TagStats returns the recorded message streams keyed by (comm, tag).
// The *TagStat values are live; read them with their atomic accessors
// after the run has quiesced.
func (r *Recorder) TagStats() map[TagKey]*TagStat {
	if r == nil {
		return nil
	}
	r.comm.mu.RLock()
	defer r.comm.mu.RUnlock()
	out := make(map[TagKey]*TagStat, len(r.comm.stats))
	for k, v := range r.comm.stats {
		out[k] = v
	}
	return out
}

// PoolGauge accumulates worker-pool utilization: per-lane busy time,
// the wall time of the parallel regions, and how many regions ran.
// Utilization = Busy / (Wall * Workers). Updated with atomic adds from
// the pool's lanes; one gauge is shared by all ranks' pools (they are
// interchangeable workers of one machine, like the APs of a node).
type PoolGauge struct {
	BusyNS  atomic.Int64 // sum of per-lane busy time
	WallNS  atomic.Int64 // sum of parallel-region wall times
	Calls   atomic.Int64 // parallel regions executed
	Workers atomic.Int64 // max pool width seen
}

// Utilization returns BusyNS / (WallNS * Workers): 1.0 means every lane
// was busy for the whole of every parallel region.
func (g *PoolGauge) Utilization() float64 {
	if g == nil {
		return 0
	}
	w := g.Workers.Load()
	wall := g.WallNS.Load()
	if w == 0 || wall == 0 {
		return 0
	}
	return float64(g.BusyNS.Load()) / (float64(wall) * float64(w))
}

// Pool returns the recorder's shared pool gauge (nil on nil receiver).
func (r *Recorder) Pool() *PoolGauge {
	if r == nil {
		return nil
	}
	return &r.pool
}
