// Package obs is the observability runtime of the live solver: per-rank
// span tracing into preallocated ring buffers, per-(comm,tag) message
// metrics, wall-clock gauges, and the exporters that turn them into a
// Perfetto-loadable Chrome trace and a PROGINF-style plain-text run
// report (the software analogue of the Earth Simulator instrumentation
// behind the paper's Tables II/III and List 1).
//
// Design constraints, in priority order:
//
//  1. Observability must never perturb physics. The recorder only reads
//     clocks and writes into its own preallocated memory; it sends no
//     messages, takes no locks on the solver's hot structures, and a
//     traced run's checkpoint is byte-identical to an untraced one
//     (pinned by a golden test in internal/core).
//  2. Nil is off. Every entry point is safe on a nil *Recorder or nil
//     *RankRec and degrades to a no-op, so call sites need no guards and
//     an untraced run pays only a nil check.
//  3. Zero allocations on the hot path. Span records go into a
//     fixed-capacity per-rank ring (oldest entries are overwritten and
//     counted, never reallocated), and metric observations land in
//     preallocated atomic buckets; 0 allocs/op is pinned by tests and
//     the BENCH_obs.json baseline.
//
// Concurrency contract: a *RankRec belongs to one rank's goroutine (the
// runtime's ranks are goroutines; each records only its own timeline).
// The *Recorder-level metrics (CommDelivered, CommWaited, pool gauges)
// are safe for concurrent use from any goroutine. Exports (Spans,
// WriteTrace, BuildReport) must run after the recorded runs have
// returned.
package obs

import (
	"sync"
	"time"
)

// SpanKind names one instrumented phase of the solver. The kinds mirror
// the phases of a decomposed time step: the step itself, the RHS
// evaluation, the three stages of a halo exchange, the rim refresh, the
// overset donate/wait/receive trio, the collectives, state scatter and
// gather, and checkpoint I/O.
type SpanKind uint8

const (
	SpanStep SpanKind = iota
	SpanSetup
	SpanRHS
	SpanHaloPack
	SpanHaloWait
	SpanHaloUnpack
	SpanRim
	SpanOversetDonate
	SpanOversetWait
	SpanOversetRecv
	SpanCollective
	SpanScatter
	SpanGather
	SpanCkptWrite
	SpanCkptRead
	SpanDiagnose
	// SpanHaloOverlap covers compute done while halo messages are in
	// flight (between posting the receives and completing them); its
	// growth is exactly the wait time the overlapped schedule hides.
	SpanHaloOverlap
	// SpanRHSInterior / SpanRHSRim split the overlapped RHS update into
	// the halo-independent interior evaluation and the seam rim finished
	// after the exchange completes.
	SpanRHSInterior
	SpanRHSRim
	numSpanKinds
)

var spanNames = [numSpanKinds]string{
	SpanStep:          "step",
	SpanSetup:         "setup",
	SpanRHS:           "rhs",
	SpanHaloPack:      "halo.pack",
	SpanHaloWait:      "halo.wait",
	SpanHaloUnpack:    "halo.unpack",
	SpanRim:           "rim",
	SpanOversetDonate: "overset.donate",
	SpanOversetWait:   "overset.wait",
	SpanOversetRecv:   "overset.recv",
	SpanCollective:    "collective",
	SpanScatter:       "scatter",
	SpanGather:        "gather",
	SpanCkptWrite:     "checkpoint.write",
	SpanCkptRead:      "checkpoint.read",
	SpanDiagnose:      "diagnose",
	SpanHaloOverlap:   "halo.overlap",
	SpanRHSInterior:   "rhs.interior",
	SpanRHSRim:        "rhs.rim",
}

// String returns the span's trace name, e.g. "halo.wait".
func (k SpanKind) String() string {
	if int(k) < len(spanNames) {
		return spanNames[k]
	}
	return "unknown"
}

// Class buckets span kinds for the run report's compute/comm/wait
// decomposition.
type Class uint8

const (
	// ClassCompute is numerical work: the step and RHS containers, setup
	// and the diagnostics reductions' local arithmetic.
	ClassCompute Class = iota
	// ClassComm is time spent moving bytes: packing, unpacking,
	// interpolating donations, scattering received rims, state
	// scatter/gather and checkpoint I/O.
	ClassComm
	// ClassWait is time blocked on a peer: halo and overset receive
	// waits and the collectives (which are rendezvous-dominated).
	ClassWait
)

// ClassOf reports the report class of a span kind.
func ClassOf(k SpanKind) Class {
	switch k {
	case SpanHaloWait, SpanOversetWait, SpanCollective:
		return ClassWait
	case SpanHaloPack, SpanHaloUnpack, SpanRim, SpanOversetDonate,
		SpanOversetRecv, SpanScatter, SpanGather, SpanCkptWrite, SpanCkptRead:
		return ClassComm
	}
	return ClassCompute
}

// DriverRank is the pseudo-rank of the campaign driver's timeline (the
// goroutine that runs between segments: checkpoint reads/writes,
// validation). It gets its own track in the exported trace.
const DriverRank = -1

// DefaultSpanCap is the per-rank span ring capacity when Config.SpanCap
// is zero: at a few hundred spans per step it holds tens of steps of
// full detail; beyond that the ring keeps the most recent spans and
// counts the overwritten ones.
const DefaultSpanCap = 1 << 14

// Config sizes a Recorder.
type Config struct {
	// SpanCap is the per-rank span ring capacity (default DefaultSpanCap).
	SpanCap int
}

// spanRec is one completed span in a rank's ring: start/duration in
// nanoseconds since the recorder epoch, the step it belongs to, the
// kind, and the nesting depth at Begin (used to rebuild the exclusive
// self-times for the report without re-deriving containment).
type spanRec struct {
	start, dur int64
	step       int32
	kind       SpanKind
	depth      uint8
}

// RankRec is one rank's span recorder: a preallocated ring plus the
// rank's wall-clock window and gauges. All methods must be called from
// the rank's own goroutine (or, for DriverRank, the driver goroutine);
// they take no locks and allocate nothing in the steady state.
type RankRec struct {
	rec  *Recorder
	rank int

	ring    []spanRec
	head    int // next write position
	n       int // filled entries (<= cap)
	dropped int64

	depth   int32
	step    int32
	maxStep int32

	// window is the rank's observed wall-clock interval: Open stamps the
	// start (keeping the earliest across segments), Close the end.
	winStart, winEnd int64
	winOpen          bool

	gauges map[string]*GaugeStat
}

// Span is an open span; close it with End. The zero Span is valid and
// ends as a no-op, which is what a nil RankRec's Begin returns.
type Span struct {
	rr    *RankRec
	start int64
	kind  SpanKind
	depth uint8
}

// Begin opens a span of the given kind. Nil-safe: on a nil receiver it
// returns the zero Span. Spans on one rank must strictly nest (End in
// LIFO order), which the single-goroutine-per-rank calling convention
// gives for free.
func (rr *RankRec) Begin(k SpanKind) Span {
	if rr == nil {
		return Span{}
	}
	d := rr.depth
	rr.depth++
	return Span{rr: rr, start: rr.rec.now(), kind: k, depth: uint8(d)}
}

// End closes the span, writing one record into the rank's ring. When
// the ring is full the oldest record is overwritten and counted in
// Dropped.
func (s Span) End() {
	rr := s.rr
	if rr == nil {
		return
	}
	rr.depth--
	end := rr.rec.now()
	rec := spanRec{start: s.start, dur: end - s.start, step: rr.step, kind: s.kind, depth: s.depth}
	if rr.n == len(rr.ring) {
		rr.dropped++
	} else {
		rr.n++
	}
	rr.ring[rr.head] = rec
	rr.head++
	if rr.head == len(rr.ring) {
		rr.head = 0
	}
}

// SetStep stamps the current step number onto subsequently recorded
// spans (and tracks the largest step seen, which the report uses as the
// run's step count).
func (rr *RankRec) SetStep(step int) {
	if rr == nil {
		return
	}
	rr.step = int32(step)
	if rr.step > rr.maxStep {
		rr.maxStep = rr.step
	}
}

// Open marks the start of the rank's observed wall-clock window; call
// it when the rank function starts. Across campaign segments the
// earliest Open wins, so the window spans the whole campaign.
func (rr *RankRec) Open() {
	if rr == nil {
		return
	}
	t := rr.rec.now()
	if !rr.winOpen || t < rr.winStart {
		if !rr.winOpen {
			rr.winStart = t
		}
		rr.winOpen = true
	}
}

// Close marks the end of the rank's observed window (the latest Close
// wins).
func (rr *RankRec) Close() {
	if rr == nil {
		return
	}
	t := rr.rec.now()
	if t > rr.winEnd {
		rr.winEnd = t
	}
}

// Dropped reports how many spans were overwritten because the ring was
// full.
func (rr *RankRec) Dropped() int64 {
	if rr == nil {
		return 0
	}
	return rr.dropped
}

// Len reports how many spans the ring currently holds.
func (rr *RankRec) Len() int {
	if rr == nil {
		return 0
	}
	return rr.n
}

// SetGauge records a named scalar observation on this rank (last value,
// min, max, sum and count are retained). Gauges are for per-step
// physics telemetry — dt, CFL, max |div B| — not hot-loop counters.
func (rr *RankRec) SetGauge(name string, v float64) {
	if rr == nil {
		return
	}
	g := rr.gauges[name]
	if g == nil {
		g = &GaugeStat{Min: v, Max: v}
		rr.gauges[name] = g
	}
	g.Last = v
	if v < g.Min {
		g.Min = v
	}
	if v > g.Max {
		g.Max = v
	}
	g.Sum += v
	g.N++
}

// PoolGauge returns the recorder's shared worker-pool utilization gauge
// (nil on a nil recorder), for wiring into par.Pool.
func (rr *RankRec) PoolGauge() *PoolGauge {
	if rr == nil {
		return nil
	}
	return &rr.rec.pool
}

// GaugeStat summarizes one gauge's observations.
type GaugeStat struct {
	Last, Min, Max, Sum float64
	N                   int64
}

// Mean returns Sum/N (0 when empty).
func (g GaugeStat) Mean() float64 {
	if g.N == 0 {
		return 0
	}
	return g.Sum / float64(g.N)
}

// spans returns the ring's records in insertion order (oldest first).
func (rr *RankRec) spans() []spanRec {
	out := make([]spanRec, 0, rr.n)
	start := rr.head - rr.n
	if start < 0 {
		start += len(rr.ring)
	}
	for i := 0; i < rr.n; i++ {
		out = append(out, rr.ring[(start+i)%len(rr.ring)])
	}
	return out
}

// Recorder is the per-run observability runtime: it owns the time
// epoch, the per-rank span recorders, and the run-wide metric state.
// Create one with New, hand it to the runner (core.Config.Obs), and
// export after the run with WriteTrace / BuildReport.
type Recorder struct {
	epoch   time.Time
	spanCap int

	mu    sync.Mutex
	ranks map[int]*RankRec

	comm commMetrics
	pool PoolGauge
}

// New builds a Recorder. The zero Config selects defaults.
func New(cfg Config) *Recorder {
	if cfg.SpanCap <= 0 {
		cfg.SpanCap = DefaultSpanCap
	}
	r := &Recorder{
		epoch:   time.Now(),
		spanCap: cfg.SpanCap,
		ranks:   map[int]*RankRec{},
	}
	r.comm.init()
	return r
}

// Epoch returns the recorder's time origin; trace timestamps are
// nanoseconds since it.
func (r *Recorder) Epoch() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.epoch
}

// now returns nanoseconds since the epoch (monotonic).
func (r *Recorder) now() int64 { return int64(time.Since(r.epoch)) }

// RankFor returns the rank's span recorder, creating (and preallocating)
// it on first use. Idempotent; safe to call concurrently from the rank
// goroutines of one run, and nil-safe (a nil Recorder yields a nil
// RankRec, which no-ops everywhere).
func (r *Recorder) RankFor(rank int) *RankRec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rr := r.ranks[rank]
	if rr == nil {
		rr = &RankRec{
			rec:    r,
			rank:   rank,
			ring:   make([]spanRec, r.spanCap),
			gauges: map[string]*GaugeStat{},
		}
		r.ranks[rank] = rr
	}
	return rr
}

// Driver returns the campaign driver's pseudo-rank recorder (its own
// trace track, used for checkpoint reads/writes between segments).
func (r *Recorder) Driver() *RankRec { return r.RankFor(DriverRank) }

// Ranks returns the recorded rank ids in ascending order (DriverRank
// first when present).
func (r *Recorder) Ranks() []int {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int, 0, len(r.ranks))
	for rank := range r.ranks {
		out = append(out, rank)
	}
	sortInts(out)
	return out
}

// sortInts is a tiny insertion sort (rank lists are short) to avoid
// importing sort into the hot package for one call site.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
