package obs

import (
	"testing"
)

func TestNilSafety(t *testing.T) {
	var r *Recorder
	var rr *RankRec
	// Every entry point must no-op on nil receivers.
	r.CommDelivered(0, 1, 128)
	r.CommWaited(0, 1, 100)
	if r.RankFor(0) != nil {
		t.Fatal("nil Recorder.RankFor must return nil")
	}
	if got := r.Ranks(); got != nil {
		t.Fatalf("nil Recorder.Ranks = %v, want nil", got)
	}
	rr.Open()
	rr.SetStep(3)
	sp := rr.Begin(SpanStep)
	sp.End()
	rr.SetGauge("dt", 1.0)
	rr.Close()
	if rr.Len() != 0 || rr.Dropped() != 0 {
		t.Fatal("nil RankRec must report empty")
	}
	var h *Hist
	h.Observe(5)
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil Hist must report empty")
	}
}

func TestSpanRingOrderAndDrop(t *testing.T) {
	r := New(Config{SpanCap: 4})
	rr := r.RankFor(0)
	for i := 0; i < 7; i++ {
		rr.SetStep(i)
		sp := rr.Begin(SpanStep)
		sp.End()
	}
	if rr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", rr.Len())
	}
	if rr.Dropped() != 3 {
		t.Fatalf("Dropped = %d, want 3", rr.Dropped())
	}
	got := rr.spans()
	for i, s := range got {
		if int(s.step) != 3+i {
			t.Fatalf("span %d has step %d, want %d (oldest-first order)", i, s.step, 3+i)
		}
	}
}

func TestRankForIdempotent(t *testing.T) {
	r := New(Config{})
	a, b := r.RankFor(2), r.RankFor(2)
	if a != b {
		t.Fatal("RankFor must be idempotent")
	}
	r.Driver().Open()
	ranks := r.Ranks()
	if len(ranks) != 2 || ranks[0] != DriverRank || ranks[1] != 2 {
		t.Fatalf("Ranks = %v, want [-1 2]", ranks)
	}
}

func TestSpanNestingDepth(t *testing.T) {
	r := New(Config{})
	rr := r.RankFor(0)
	outer := rr.Begin(SpanStep)
	inner := rr.Begin(SpanRHS)
	innermost := rr.Begin(SpanHaloWait)
	innermost.End()
	inner.End()
	outer.End()
	got := rr.spans()
	if len(got) != 3 {
		t.Fatalf("got %d spans, want 3", len(got))
	}
	// Ring holds End order: innermost first.
	wantDepth := []uint8{2, 1, 0}
	wantKind := []SpanKind{SpanHaloWait, SpanRHS, SpanStep}
	for i := range got {
		if got[i].depth != wantDepth[i] || got[i].kind != wantKind[i] {
			t.Fatalf("span %d = kind %v depth %d, want kind %v depth %d",
				i, got[i].kind, got[i].depth, wantKind[i], wantDepth[i])
		}
	}
}

// TestSpanRecordZeroAlloc pins the hot-path budget: recording a span
// (Begin+End) and observing a histogram value must not allocate.
func TestSpanRecordZeroAlloc(t *testing.T) {
	r := New(Config{SpanCap: 64})
	rr := r.RankFor(0)
	allocs := testing.AllocsPerRun(1000, func() {
		sp := rr.Begin(SpanRHS)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("span record allocates %.1f/op, want 0", allocs)
	}
	// Warm the (comm,tag) entry, then pin the steady state.
	r.CommDelivered(0, 5, 64)
	r.CommWaited(0, 5, 10)
	allocs = testing.AllocsPerRun(1000, func() {
		r.CommDelivered(0, 5, 64)
		r.CommWaited(0, 5, 10)
	})
	if allocs != 0 {
		t.Fatalf("comm metrics allocate %.1f/op, want 0", allocs)
	}
}

func TestHistQuantileAndMean(t *testing.T) {
	var h Hist
	// 90 small values and 10 large ones: p50 must be small, p99 large.
	for i := 0; i < 90; i++ {
		h.Observe(3) // bucket [2,4)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000) // bucket [512,1024)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if got := h.Quantile(0.5); got != 4 {
		t.Fatalf("p50 = %d, want 4 (top edge of [2,4))", got)
	}
	if got := h.Quantile(0.99); got != 1024 {
		t.Fatalf("p99 = %d, want 1024 (top edge of [512,1024))", got)
	}
	wantMean := (90.0*3 + 10*1000) / 100
	if got := h.Mean(); got != wantMean {
		t.Fatalf("Mean = %g, want %g", got, wantMean)
	}
	if h.Quantile(0) != 4 || h.Quantile(1) != 1024 {
		t.Fatalf("quantile edges: q0=%d q1=%d", h.Quantile(0), h.Quantile(1))
	}
}

func TestGauges(t *testing.T) {
	r := New(Config{})
	rr := r.RankFor(0)
	rr.SetGauge("dt", 2.0)
	rr.SetGauge("dt", 1.0)
	rr.SetGauge("dt", 4.0)
	g := rr.gauges["dt"]
	if g.Min != 1 || g.Max != 4 || g.Last != 4 || g.N != 3 {
		t.Fatalf("gauge = %+v", *g)
	}
	if g.Mean() != 7.0/3.0 {
		t.Fatalf("mean = %g", g.Mean())
	}
}

func TestOpenCloseWindowExtends(t *testing.T) {
	r := New(Config{})
	rr := r.RankFor(0)
	rr.Open()
	rr.Close()
	first := rr.winEnd
	// A second segment must extend, not reset, the window.
	rr.Open()
	rr.Close()
	if rr.winEnd < first {
		t.Fatal("Close must keep the latest end")
	}
	if rr.winStart > first {
		t.Fatal("Open must keep the earliest start")
	}
}
